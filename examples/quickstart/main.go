// Quickstart: compile a buggy C program, instrument it with both memory-
// safety mechanisms, and watch the out-of-bounds write get caught.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/vm"
)

const program = `
int main() {
    int i;
    int *prices = (int *)malloc(10 * sizeof(int));
    /* Bug: writes far past the 10-element allocation. SoftBound reports
     * the first write at index 10 (exact bounds); Low-Fat Pointers let
     * indices 10..15 slip into the padding of the 64-byte slot and report
     * the write at index 16 — the padding blind spot of Section 4. */
    for (i = 0; i < 24; i++) {
        prices[i] = 100 + i;
    }
    printf("prices[5] = %d\n", prices[5]);
    free(prices);
    return 0;
}`

func main() {
	fmt.Println("== uninstrumented (plain -O3) ==")
	run(nil, vm.Options{})

	fmt.Println("\n== SoftBound ==")
	sb := core.PaperSoftBound()
	sb.OptDominance = true
	run(&sb, vm.Options{Mechanism: vm.MechSoftBound})

	fmt.Println("\n== Low-Fat Pointers ==")
	lf := core.PaperLowFat()
	lf.OptDominance = true
	run(&lf, vm.Options{
		Mechanism:  vm.MechLowFat,
		LowFatHeap: true, LowFatStack: true, LowFatGlobals: true,
	})
}

func run(cfg *core.Config, vopts vm.Options) {
	m, err := cc.Compile("quickstart", cc.Source{Name: "quickstart.c", Code: program})
	if err != nil {
		log.Fatal(err)
	}
	var hook func(*ir.Module)
	if cfg != nil {
		hook = func(mod *ir.Module) {
			if _, err := core.Instrument(mod, *cfg); err != nil {
				log.Fatal(err)
			}
		}
	}
	opt.RunPipeline(m, opt.EPVectorizerStart, hook, opt.PipelineOptions{Level: 3})

	machine, err := vm.New(m, vopts)
	if err != nil {
		log.Fatal(err)
	}
	code, err := machine.Run()
	fmt.Print(machine.Output())
	switch {
	case err != nil:
		fmt.Printf("-> %v\n", err)
	default:
		fmt.Printf("-> exited with code %d (the bug went unnoticed)\n", code)
	}
	if cfg != nil {
		fmt.Printf("   executed %d checks, %d of them with wide bounds\n",
			machine.Stats.Checks, machine.Stats.WideChecks)
	}
}
