// Swapbug reproduces Figure 7 and Section 4.4 of the paper: a perfectly
// valid C program that swaps two pointers through memory gets mistranslated
// — from the instrumentation's point of view — by an optimization that
// moves the pointer values as i64 integers (LLVM 12 does this at -O1).
// SoftBound's metadata trie is only updated at pointer-typed stores, so the
// bounds for the two slots go stale and a later, perfectly safe dereference
// is reported as a violation. Low-Fat Pointers re-derive the base from the
// loaded value and are unaffected.
//
//	go run ./examples/swapbug
package main

import (
	"fmt"
	"log"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/vm"
)

const program = `
double *slots[4];

/* The swap of Figure 7, through memory; the data-dependent indices keep
 * the optimizer from folding the loads away before the pointer-store
 * obfuscation runs. */
void swap_slots(int i, int j) {
    double *temp = slots[i];
    slots[i] = slots[j];
    slots[j] = temp;
}

int main() {
    double *a = (double *)malloc(4 * sizeof(double));
    double *b = (double *)malloc(16 * sizeof(double));
    int i;
    int x, y;
    for (i = 0; i < 4; i++) a[i] = 1.0 + i;
    for (i = 0; i < 16; i++) b[i] = 100.0 + i;
    slots[0] = a;
    slots[1] = b;
    srand(7);
    x = rand() % 2;
    y = 1 - x;
    swap_slots(x, y);
    /* One of the slots now holds b: accessing its element 10 is perfectly
     * in bounds. */
    if (slots[0][0] > 50.0) {
        printf("slots[0][10] = %g\n", slots[0][10]);
    } else {
        printf("slots[1][10] = %g\n", slots[1][10]);
    }
    free(a);
    free(b);
    return 0;
}`

func main() {
	fmt.Println("== SoftBound, faithful translation (no pointer-store obfuscation) ==")
	run(core.MechSoftBound, false)

	fmt.Println("\n== SoftBound, LLVM-12-style i64 pointer stores (Figure 7) ==")
	run(core.MechSoftBound, true)

	fmt.Println("\n== Low-Fat Pointers, same obfuscated translation ==")
	run(core.MechLowFat, true)
}

func run(mech core.Mech, obfuscate bool) {
	m, err := cc.Compile("swap", cc.Source{Name: "swap.c", Code: program})
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.PaperSoftBound()
	vopts := vm.Options{Mechanism: vm.MechSoftBound}
	if mech == core.MechLowFat {
		cfg = core.PaperLowFat()
		vopts = vm.Options{Mechanism: vm.MechLowFat, LowFatHeap: true, LowFatStack: true, LowFatGlobals: true}
	}
	hook := func(mod *ir.Module) {
		if _, err := core.Instrument(mod, cfg); err != nil {
			log.Fatal(err)
		}
	}
	opt.RunPipeline(m, opt.EPVectorizerStart, hook, opt.PipelineOptions{
		Level:              3,
		ObfuscatePtrStores: obfuscate,
	})

	machine, err := vm.New(m, vopts)
	if err != nil {
		log.Fatal(err)
	}
	_, rerr := machine.Run()
	fmt.Print(machine.Output())
	if rerr != nil {
		fmt.Printf("-> SPURIOUS report (the program has no bug): %v\n", rerr)
	} else {
		fmt.Println("-> ran fine")
	}
}
