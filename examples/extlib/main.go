// Extlib reproduces Section 4.3 of the paper: linking instrumented code
// against an uninstrumented library.
//
// A library function returns a pointer to library-owned storage. SoftBound
// assumes the returned pointer's bounds are on the shadow stack — but the
// uninstrumented callee never wrote them, so the caller picks up STALE
// bounds from an earlier call and reports a spurious violation. The paper's
// fix is a wrapper that knows the real bounds and records them; with the
// wrapper in place the program runs. Low-Fat Pointers need no wrappers: the
// library storage lies outside the low-fat regions, so accesses through it
// get wide bounds — unprotected, but not rejected.
//
//	go run ./examples/extlib
package main

import (
	"fmt"
	"log"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/vm"
)

const program = `
/* ---- uninstrumented library (think: a proprietary .so) ---- */
char lib_buffer[64];

char *lib_get_buffer() {
    return lib_buffer;
}

/* ---- wrapper (the paper's fix): instrumented code that knows the real
 * bounds of the returned storage ---- */
char *lib_get_buffer_wrapped() {
    char *p = lib_get_buffer();
    return lib_buffer + (p - lib_buffer); /* bounds derive from the global */
}

/* ---- instrumented application ---- */
int tiny[2];

int *get_tiny() {
    return tiny;
}

int use_library(int wrapped) {
    char *buf;
    int i;
    int *t = get_tiny(); /* leaves the bounds of "tiny" in the return slot */
    if (wrapped) {
        buf = lib_get_buffer_wrapped();
    } else {
        buf = lib_get_buffer();
    }
    for (i = 0; i < 64; i++) {
        buf[i] = (char)(i + t[0]);
    }
    return buf[63];
}

int main() {
    printf("wrote, last byte = %d\n", use_library(USE_WRAPPER));
    return 0;
}`

func main() {
	fmt.Println("== SoftBound, library call without wrapper ==")
	run(core.MechSoftBound, false)

	fmt.Println("\n== SoftBound, with the wrapper (the paper's fix) ==")
	run(core.MechSoftBound, true)

	fmt.Println("\n== Low-Fat Pointers, no wrapper needed ==")
	run(core.MechLowFat, false)
}

func run(mech core.Mech, wrapped bool) {
	define := "#define USE_WRAPPER 0\n"
	if wrapped {
		define = "#define USE_WRAPPER 1\n"
	}
	m, err := cc.Compile("extlib", cc.Source{Name: "extlib.c", Code: define + program})
	if err != nil {
		log.Fatal(err)
	}
	// Mark the library parts as uninstrumented / library-owned.
	m.Func("lib_get_buffer").IgnoreInstrumentation = true
	m.Global("lib_buffer").ExternalLib = true

	cfg := core.PaperSoftBound()
	vopts := vm.Options{Mechanism: vm.MechSoftBound}
	if mech == core.MechLowFat {
		cfg = core.PaperLowFat()
		vopts = vm.Options{Mechanism: vm.MechLowFat, LowFatHeap: true, LowFatStack: true, LowFatGlobals: true}
	}
	hook := func(mod *ir.Module) {
		if _, err := core.Instrument(mod, cfg); err != nil {
			log.Fatal(err)
		}
	}
	opt.RunPipeline(m, opt.EPVectorizerStart, hook, opt.PipelineOptions{Level: 3})

	machine, err := vm.New(m, vopts)
	if err != nil {
		log.Fatal(err)
	}
	_, rerr := machine.Run()
	fmt.Print(machine.Output())
	switch {
	case rerr != nil:
		fmt.Printf("-> SPURIOUS report (the program has no bug): %v\n", rerr)
	case mech == core.MechLowFat:
		fmt.Printf("-> ran fine; %d of %d checks used wide bounds (unprotected library storage)\n",
			machine.Stats.WideChecks, machine.Stats.Checks)
	default:
		fmt.Println("-> ran fine")
	}
}
