// Pipeline reproduces the Section 5.5 experiment on a single program: the
// same instrumentation inserted at the three compiler-pipeline extension
// points. Early insertion places checks before the optimizer has reduced
// the number of memory accesses — and the inserted checks then block load
// hoisting, unrolling and inlining around them.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/vm"
)

const program = `
#define N 256
#define REPS 40

double *rows[N];

int main() {
    int r, c, rep;
    double sum = 0.0;
    for (r = 0; r < N; r++) {
        int i;
        rows[r] = (double *)malloc(N * sizeof(double));
        for (i = 0; i < N; i++) rows[r][i] = (double)(r * i % 17);
    }
    for (rep = 0; rep < REPS; rep++) {
        for (r = 0; r < N; r++) {
            /* At -O3 the load of rows[r] is hoisted out of this read-only
             * inner loop, so late instrumentation checks it once per row.
             * A check inserted early sits inside the loop, pins the load
             * there, and itself executes once per element. */
            for (c = 0; c < N; c++) {
                sum += rows[r][c];
            }
        }
    }
    printf("sum=%.1f\n", sum);
    return 0;
}`

func main() {
	baseline := run(nil, opt.EPVectorizerStart)
	fmt.Printf("baseline -O3:            cost %12d (1.00x)\n", baseline)

	cfg := core.PaperSoftBound()
	cfg.OptDominance = true
	for _, ep := range []opt.ExtPoint{
		opt.EPModuleOptimizerEarly,
		opt.EPScalarOptimizerLate,
		opt.EPVectorizerStart,
	} {
		cost := run(&cfg, ep)
		fmt.Printf("softbound @%-22s cost %12d (%.2fx)\n", ep.String()+":", cost, float64(cost)/float64(baseline))
	}
}

func run(cfg *core.Config, ep opt.ExtPoint) uint64 {
	m, err := cc.Compile("pipeline", cc.Source{Name: "pipeline.c", Code: program})
	if err != nil {
		log.Fatal(err)
	}
	var hook func(*ir.Module)
	vopts := vm.Options{}
	if cfg != nil {
		vopts.Mechanism = vm.MechSoftBound
		hook = func(mod *ir.Module) {
			if _, err := core.Instrument(mod, *cfg); err != nil {
				log.Fatal(err)
			}
		}
	}
	opt.RunPipeline(m, ep, hook, opt.PipelineOptions{Level: 3})
	machine, err := vm.New(m, vopts)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := machine.Run(); err != nil {
		log.Fatal(err)
	}
	return machine.Stats.Cost
}
