// Package repro's root benchmark suite regenerates every table and figure
// of the paper's evaluation as testing.B benchmarks, plus microbenchmarks of
// the runtime substrates.
//
// The figure benchmarks execute one representative benchmark program per
// configuration and report the dynamic-cost overhead vs. the -O3 baseline as
// the custom metric "overhead_x" (wall-clock ns/op measures the simulator,
// not the simulated program; the overhead metric is what corresponds to the
// paper's y-axes). Run everything with:
//
//	go test -bench=. -benchmem
//
// The full 20-benchmark sweeps behind the figures are produced by
// cmd/mi-bench; the benchmarks here keep a single figure-defining
// configuration each so the suite completes in minutes.
package repro

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/lowfat"
	"repro/internal/mem"
	"repro/internal/opt"
	"repro/internal/softbound"
	"repro/internal/spec"
	"repro/internal/vm"
)

// benchOverhead runs one benchmark under one configuration per b.N
// iteration and reports the overhead metric.
func benchOverhead(b *testing.B, benchName string, cfg harness.RunConfig) {
	sb := spec.ByName(benchName)
	if sb == nil {
		b.Fatalf("unknown benchmark %s", benchName)
	}
	var last float64
	for i := 0; i < b.N; i++ {
		// A fresh runner per iteration: ns/op measures a full
		// compile+instrument+baseline+instrumented-run cycle rather than
		// cache hits.
		r := harness.NewRunner()
		ov, _, err := r.Overhead(sb, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = ov
	}
	b.ReportMetric(last, "overhead_x")
}

// ----- Figure 9: SoftBound vs Low-Fat Pointers runtime -----

func BenchmarkFig9SoftBound(b *testing.B) {
	benchOverhead(b, "183equake", harness.PaperConfig(core.MechSoftBound))
}

func BenchmarkFig9LowFat(b *testing.B) {
	benchOverhead(b, "183equake", harness.PaperConfig(core.MechLowFat))
}

// ----- Figure 10: SoftBound optimized / unoptimized / metadata-only -----

func fig10Config(mode core.Mode, dom bool) harness.RunConfig {
	cfg := harness.PaperConfig(core.MechSoftBound)
	cfg.Core.Mode = mode
	cfg.Core.OptDominance = dom
	cfg.Label = "fig10"
	return cfg
}

func BenchmarkFig10Optimized(b *testing.B) {
	benchOverhead(b, "197parser", fig10Config(core.ModeFull, true))
}

func BenchmarkFig10Unoptimized(b *testing.B) {
	benchOverhead(b, "197parser", fig10Config(core.ModeFull, false))
}

func BenchmarkFig10MetadataOnly(b *testing.B) {
	benchOverhead(b, "197parser", fig10Config(core.ModeGenInvariants, false))
}

// ----- Figure 11: Low-Fat Pointers optimized / unoptimized / invariants -----

func fig11Config(mode core.Mode, dom bool) harness.RunConfig {
	cfg := harness.PaperConfig(core.MechLowFat)
	cfg.Core.Mode = mode
	cfg.Core.OptDominance = dom
	cfg.Label = "fig11"
	return cfg
}

func BenchmarkFig11Optimized(b *testing.B) {
	benchOverhead(b, "464h264ref", fig11Config(core.ModeFull, true))
}

func BenchmarkFig11Unoptimized(b *testing.B) {
	benchOverhead(b, "464h264ref", fig11Config(core.ModeFull, false))
}

func BenchmarkFig11InvariantsOnly(b *testing.B) {
	benchOverhead(b, "464h264ref", fig11Config(core.ModeGenInvariants, false))
}

// ----- Figures 12 & 13: pipeline extension points -----

func epConfig(mech core.Mech, ep opt.ExtPoint) harness.RunConfig {
	cfg := harness.PaperConfig(mech)
	cfg.EP = ep
	cfg.Label = ep.String()
	return cfg
}

func BenchmarkFig12SoftBoundEarly(b *testing.B) {
	benchOverhead(b, "470lbm", epConfig(core.MechSoftBound, opt.EPModuleOptimizerEarly))
}

func BenchmarkFig12SoftBoundScalarLate(b *testing.B) {
	benchOverhead(b, "470lbm", epConfig(core.MechSoftBound, opt.EPScalarOptimizerLate))
}

func BenchmarkFig12SoftBoundVectorizerStart(b *testing.B) {
	benchOverhead(b, "470lbm", epConfig(core.MechSoftBound, opt.EPVectorizerStart))
}

func BenchmarkFig13LowFatEarly(b *testing.B) {
	benchOverhead(b, "470lbm", epConfig(core.MechLowFat, opt.EPModuleOptimizerEarly))
}

func BenchmarkFig13LowFatVectorizerStart(b *testing.B) {
	benchOverhead(b, "470lbm", epConfig(core.MechLowFat, opt.EPVectorizerStart))
}

// ----- Table 2: unsafe dereference percentages -----

func BenchmarkTable2SizeZeroGzip(b *testing.B) {
	sb := spec.ByName("164gzip")
	var pct float64
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner()
		_, res, err := r.Overhead(sb, harness.PaperConfig(core.MechSoftBound))
		if err != nil {
			b.Fatal(err)
		}
		pct = res.Stats.UnsafePercent()
	}
	b.ReportMetric(pct, "unsafe_%")
}

func BenchmarkTable2OversizeMcf(b *testing.B) {
	sb := spec.ByName("429mcf")
	var pct float64
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner()
		_, res, err := r.Overhead(sb, harness.PaperConfig(core.MechLowFat))
		if err != nil {
			b.Fatal(err)
		}
		pct = res.Stats.UnsafePercent()
	}
	b.ReportMetric(pct, "unsafe_%")
}

// ----- Section 5.3: dominance check elimination -----

func BenchmarkElimDominance(b *testing.B) {
	sb := spec.ByName("256bzip2")
	var rate float64
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner()
		_, res, err := r.Overhead(sb, harness.PaperConfig(core.MechSoftBound))
		if err != nil {
			b.Fatal(err)
		}
		rate = res.InstrStats.EliminationRate()
	}
	b.ReportMetric(rate, "eliminated_%")
}

// ----- Substrate microbenchmarks -----

func BenchmarkLowFatCheck(b *testing.B) {
	base := lowfat.RegionStart(3) + 128
	ok := true
	for i := 0; i < b.N; i++ {
		o, _ := lowfat.Check(base+uint64(i%64), 8, base)
		ok = ok && o
	}
	_ = ok
}

func BenchmarkLowFatBaseRecovery(b *testing.B) {
	ptr := lowfat.RegionStart(7) + 12345
	var s uint64
	for i := 0; i < b.N; i++ {
		s += lowfat.Base(ptr + uint64(i&1023))
	}
	_ = s
}

func BenchmarkSoftBoundCheck(b *testing.B) {
	bounds := softbound.Bounds{Base: 1 << 20, Bound: 1<<20 + 4096}
	ok := true
	for i := 0; i < b.N; i++ {
		ok = ok && bounds.Check(1<<20+uint64(i%4000), 8)
	}
	_ = ok
}

func BenchmarkTrieLookup(b *testing.B) {
	tr := softbound.NewTrie()
	for i := uint64(0); i < 1024; i++ {
		tr.Store(0x5000_0000_0000+i*8, softbound.Bounds{Base: i, Bound: i + 64})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(0x5000_0000_0000 + uint64(i%1024)*8)
	}
}

func BenchmarkTrieStore(b *testing.B) {
	tr := softbound.NewTrie()
	for i := 0; i < b.N; i++ {
		tr.Store(0x5000_0000_0000+uint64(i%65536)*8, softbound.Bounds{Base: 1, Bound: 2})
	}
}

func BenchmarkShadowStackFrame(b *testing.B) {
	ss := softbound.NewShadowStack(1 << 12)
	bb := softbound.Bounds{Base: 1, Bound: 2}
	for i := 0; i < b.N; i++ {
		ss.AllocateFrame(2)
		ss.SetArg(1, bb)
		ss.SetArg(2, bb)
		ss.SetRet(bb)
		ss.PopFrame()
	}
}

func BenchmarkAddrSpaceLoadStore(b *testing.B) {
	as := mem.NewAddrSpace()
	for i := 0; i < b.N; i++ {
		addr := 0x1000_0000 + uint64(i%(1<<20))
		_ = as.Store(addr, 8, uint64(i))
		_, _ = as.Load(addr, 8)
	}
}

func BenchmarkLowFatAlloc(b *testing.B) {
	std := mem.NewStdAllocator(mem.HeapBase, mem.HeapLimit)
	a := lowfat.NewAllocator(std)
	for i := 0; i < b.N; i++ {
		p, _, err := a.Alloc(uint64(16 + i%2048))
		if err != nil {
			b.Fatal(err)
		}
		_ = a.Free(p)
	}
}

// ----- Engine comparison: tree-walking vs register bytecode -----

// engineCell is one prepared (benchmark, config) execution: module already
// compiled, optimized and instrumented, so the benchmark times only what
// the engines differ in — execution.
type engineCell struct {
	key  string
	m    *ir.Module
	opts vm.Options
}

func prepareEngineCells(b *testing.B, benches []*spec.Benchmark) []engineCell {
	b.Helper()
	configs := []harness.RunConfig{
		harness.BaselineConfig(),
		harness.PaperConfig(core.MechSoftBound),
		harness.PaperConfig(core.MechLowFat),
	}
	var cells []engineCell
	for _, sb := range benches {
		src, err := sb.Compile()
		if err != nil {
			b.Fatal(err)
		}
		for _, cfg := range configs {
			m := ir.CloneModule(src)
			var hook func(*ir.Module)
			if cfg.Instrument {
				coreCfg := cfg.Core
				hook = func(mod *ir.Module) {
					if _, ierr := core.Instrument(mod, coreCfg); ierr != nil {
						b.Fatal(ierr)
					}
				}
			}
			opt.RunPipeline(m, cfg.EP, hook, opt.PipelineOptions{Level: cfg.OptLevel})
			vopts := vm.Options{}
			if cfg.Instrument {
				switch cfg.Core.Mechanism {
				case core.MechSoftBound:
					vopts.Mechanism = vm.MechSoftBound
				case core.MechLowFat:
					vopts.Mechanism = vm.MechLowFat
					vopts.LowFatHeap = true
					vopts.LowFatStack = true
					vopts.LowFatGlobals = true
				}
			}
			cells = append(cells, engineCell{key: sb.Name + "|" + cfg.Label, m: m, opts: vopts})
		}
	}
	return cells
}

func runEngineCells(b *testing.B, kind bytecode.EngineKind, cells []engineCell) {
	b.Helper()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		instrs = 0
		for _, c := range cells {
			machine, err := vm.New(c.m, c.opts)
			if err != nil {
				b.Fatal(err)
			}
			if _, rerr := bytecode.RunOn(kind, machine, c.key); rerr != nil {
				b.Fatalf("%s: %v", c.key, rerr)
			}
			instrs += machine.Stats.Instrs
		}
	}
	b.ReportMetric(float64(instrs), "sim_instrs")
}

// BenchmarkEngineCampaignTree/Bytecode execute the standard campaign — all
// spec benchmarks under baseline, SoftBound and Low-Fat paper configs —
// on each engine. Compare ns/op between the two (see BENCH_ENGINES.md).
func BenchmarkEngineCampaignTree(b *testing.B) {
	cells := prepareEngineCells(b, spec.All())
	b.ResetTimer()
	runEngineCells(b, bytecode.EngineTree, cells)
}

func BenchmarkEngineCampaignBytecode(b *testing.B) {
	cells := prepareEngineCells(b, spec.All())
	b.ResetTimer()
	runEngineCells(b, bytecode.EngineBytecode, cells)
}

func BenchmarkEngineCampaignCompiler(b *testing.B) {
	cells := prepareEngineCells(b, spec.All())
	b.ResetTimer()
	runEngineCells(b, bytecode.EngineCompiler, cells)
}

// BenchmarkEngineSmoke* are the single-benchmark variants CI runs.
func BenchmarkEngineSmokeTree(b *testing.B) {
	cells := prepareEngineCells(b, []*spec.Benchmark{spec.All()[0]})
	b.ResetTimer()
	runEngineCells(b, bytecode.EngineTree, cells)
}

func BenchmarkEngineSmokeBytecode(b *testing.B) {
	cells := prepareEngineCells(b, []*spec.Benchmark{spec.All()[0]})
	b.ResetTimer()
	runEngineCells(b, bytecode.EngineBytecode, cells)
}

func BenchmarkEngineSmokeCompiler(b *testing.B) {
	cells := prepareEngineCells(b, []*spec.Benchmark{spec.All()[0]})
	b.ResetTimer()
	runEngineCells(b, bytecode.EngineCompiler, cells)
}

// ----- Toolchain microbenchmarks -----

const benchProg = `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { printf("%d\n", fib(18)); return 0; }`

func BenchmarkCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := cc.Compile("b", cc.Source{Name: "b.c", Code: benchProg}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizePipeline(b *testing.B) {
	m, err := cc.Compile("b", cc.Source{Name: "b.c", Code: benchProg})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m2 := ir.CloneModule(m)
		opt.RunPipeline(m2, opt.EPVectorizerStart, nil, opt.PipelineOptions{Level: 3})
	}
}

func BenchmarkInstrumentSoftBound(b *testing.B) {
	m, err := cc.Compile("b", cc.Source{Name: "b.c", Code: benchProg})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m2 := ir.CloneModule(m)
		if _, err := core.Instrument(m2, core.PaperSoftBound()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVMInterpreter(b *testing.B) {
	m, err := cc.Compile("b", cc.Source{Name: "b.c", Code: benchProg})
	if err != nil {
		b.Fatal(err)
	}
	opt.RunPipeline(m, opt.EPVectorizerStart, nil, opt.PipelineOptions{Level: 3})
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		machine, err := vm.New(m, vm.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := machine.Run(); err != nil {
			b.Fatal(err)
		}
		instrs = machine.Stats.Instrs
	}
	b.ReportMetric(float64(instrs), "sim_instrs")
}
