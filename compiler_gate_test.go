package repro

import (
	"testing"
	"time"

	"repro/internal/bytecode"
	"repro/internal/spec"
	"repro/internal/vm"
)

// TestCompilerPerfGate is the CI perf gate for the compiler tier: on the
// smoke set (first spec benchmark, three campaign configs) the compiler
// engine must run at least 3x faster than the bytecode engine. Both sides
// are warmed first — compilation, quickening and the native-plugin build are
// one-time costs amortized across a campaign, and the timed region is
// execution — and each side takes the best of three runs to shed scheduler
// noise. Skipped under -short (the gate needs a quiet machine).
func TestCompilerPerfGate(t *testing.T) {
	if testing.Short() {
		t.Skip("perf gate needs a quiet machine")
	}
	const want = 3.0
	b := &testing.B{}
	cells := prepareEngineCells(b, []*spec.Benchmark{spec.All()[0]})

	run := func(kind bytecode.EngineKind) time.Duration {
		t.Helper()
		var best time.Duration
		for rep := 0; rep < 4; rep++ {
			var d time.Duration
			for _, c := range cells {
				machine, err := vm.New(c.m, c.opts)
				if err != nil {
					t.Fatal(err)
				}
				start := time.Now()
				if _, rerr := bytecode.RunOn(kind, machine, c.key); rerr != nil {
					t.Fatalf("%s: %v", c.key, rerr)
				}
				d += time.Since(start)
			}
			if rep == 0 {
				continue // warm-up: compile, quicken, build native plugins
			}
			if best == 0 || d < best {
				best = d
			}
		}
		return best
	}

	bc := run(bytecode.EngineBytecode)
	comp := run(bytecode.EngineCompiler)
	speedup := float64(bc) / float64(comp)
	t.Logf("smoke set: bytecode=%v compiler=%v speedup=%.2fx (gate %.1fx)", bc, comp, speedup, want)
	if speedup < want {
		t.Fatalf("compiler tier speedup %.2fx below the %.1fx gate (bytecode=%v compiler=%v)", speedup, want, bc, comp)
	}
}
