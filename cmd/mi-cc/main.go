// Command mi-cc compiles C source files with the MemInstrument framework
// and executes the result on the simulated machine. Its flags mirror the
// artifact's compiler plugin options (Appendix A.6 of the paper).
//
// Usage:
//
//	mi-cc [flags] file.c [file2.c ...]
//
//	-mi-config=softbound|lowfat|none   instrumentation mechanism
//	-mi-mode=full|geninvariants        check placement mode
//	-mi-opt-dominance                  dominance-based check elimination
//	-mi-opt-hoist                      loop-aware range-check hoisting
//	-mi-sb-size-zero-wide-upper        wide bounds for size-zero globals
//	-mi-sb-inttoptr-wide-bounds        wide bounds for int-to-pointer casts
//	-mi-lf-transform-common-to-weak-linkage
//	-mi-ep=early|scalarlate|vectorizerstart   pipeline extension point
//	-O                                 optimization level (0 or 3)
//	-emit-ir                           print the final IR instead of running
//	-stats                             print instrumentation and run stats
//	-mi-forensics                      on a violation, print a diagnostic
//	                                   report (allocation site, flight
//	                                   recorder) to stderr
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/version"
	"repro/internal/vm"
)

func main() {
	var (
		config     = flag.String("mi-config", "none", "softbound, lowfat or none")
		mode       = flag.String("mi-mode", "full", "full or geninvariants")
		optDom     = flag.Bool("mi-opt-dominance", false, "dominance-based check elimination")
		optHoist   = flag.Bool("mi-opt-hoist", false, "loop-aware range-check hoisting")
		sbSizeZero = flag.Bool("mi-sb-size-zero-wide-upper", true, "wide bounds for size-zero globals")
		sbIntToPtr = flag.Bool("mi-sb-inttoptr-wide-bounds", true, "wide bounds for inttoptr casts")
		lfCommon   = flag.Bool("mi-lf-transform-common-to-weak-linkage", true, "place common globals low-fat")
		epName     = flag.String("mi-ep", "vectorizerstart", "early, scalarlate or vectorizerstart")
		optLevel   = flag.Int("O", 3, "optimization level (0 or 3)")
		emitIR     = flag.Bool("emit-ir", false, "print final IR instead of executing")
		stats      = flag.Bool("stats", false, "print statistics")
		forensics  = flag.Bool("mi-forensics", false, "violation forensics: on a violation, print a full diagnostic report to stderr")

		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Printf("mi-cc %s\n", version.String())
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "mi-cc: no input files")
		os.Exit(2)
	}

	var m *ir.Module
	if flag.NArg() == 1 && strings.HasSuffix(flag.Arg(0), ".ll") {
		// Textual IR input (the format of -emit-ir / ir.FormatModule).
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		m, err = ir.ParseModule(string(data))
		if err != nil {
			fatal(err)
		}
	} else {
		var sources []cc.Source
		for _, path := range flag.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			sources = append(sources, cc.Source{Name: path, Code: string(data)})
		}
		var err error
		m, err = cc.Compile("a.out", sources...)
		if err != nil {
			fatal(err)
		}
	}

	var ep opt.ExtPoint
	switch *epName {
	case "early":
		ep = opt.EPModuleOptimizerEarly
	case "scalarlate":
		ep = opt.EPScalarOptimizerLate
	case "vectorizerstart":
		ep = opt.EPVectorizerStart
	default:
		fatal(fmt.Errorf("unknown extension point %q", *epName))
	}

	cfg := core.Config{
		OptDominance:            *optDom,
		OptHoist:                *optHoist,
		SBSizeZeroWideUpper:     *sbSizeZero,
		SBIntToPtrWideBounds:    *sbIntToPtr,
		LFTransformCommonToWeak: *lfCommon,
	}
	switch *mode {
	case "full":
		cfg.Mode = core.ModeFull
	case "geninvariants":
		cfg.Mode = core.ModeGenInvariants
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	var hook func(*ir.Module)
	var istats *core.Stats
	vopts := vm.Options{}
	switch *config {
	case "none":
	case "softbound":
		cfg.Mechanism = core.MechSoftBound
		vopts.Mechanism = vm.MechSoftBound
		hook = makeHook(cfg, &istats)
	case "lowfat":
		cfg.Mechanism = core.MechLowFat
		vopts.Mechanism = vm.MechLowFat
		vopts.LowFatHeap = true
		vopts.LowFatStack = true
		vopts.LowFatGlobals = true
		hook = makeHook(cfg, &istats)
	default:
		fatal(fmt.Errorf("unknown config %q", *config))
	}

	opt.RunPipeline(m, ep, hook, opt.PipelineOptions{Level: *optLevel})

	if *emitIR {
		fmt.Print(ir.FormatModule(m))
		return
	}

	if *forensics {
		vopts.Forensics = true
		if istats != nil {
			vopts.Sites = istats.Sites
			vopts.AllocSites = istats.AllocSites
		}
	}
	machine, err := vm.New(m, vopts)
	if err != nil {
		fatal(err)
	}
	code, err := machine.Run()
	fmt.Print(machine.Output())
	if err != nil {
		fmt.Fprintf(os.Stderr, "mi-cc: %v\n", err)
		var viol *vm.ViolationError
		if errors.As(err, &viol) && viol.Report != nil {
			fmt.Fprint(os.Stderr, viol.Report.Render())
		}
		os.Exit(1)
	}
	if *stats {
		s := machine.Stats
		fmt.Fprintf(os.Stderr, "instrs=%d cost=%d loads=%d stores=%d checks=%d wide=%d (%.2f%%) rangeChecks=%d metaLoads=%d metaStores=%d shadowOps=%d\n",
			s.Instrs, s.Cost, s.Loads, s.Stores, s.Checks, s.WideChecks, s.UnsafePercent(), s.RangeChecks, s.MetaLoads, s.MetaStores, s.ShadowOps)
		if istats != nil {
			fmt.Fprintf(os.Stderr, "instrumented funcs=%d derefTargets=%d checksPlaced=%d eliminated=%d hoisted=%d invariants=%d metadataStores=%d\n",
				istats.Functions, istats.DerefTargets, istats.ChecksPlaced, istats.Opt.ChecksEliminated, istats.Opt.ChecksHoisted, istats.InvariantChecks, istats.MetadataStores)
		}
	}
	os.Exit(int(code))
}

func makeHook(cfg core.Config, out **core.Stats) func(*ir.Module) {
	return func(m *ir.Module) {
		s, err := core.Instrument(m, cfg)
		if err != nil {
			fatal(err)
		}
		*out = s
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mi-cc: %v\n", err)
	os.Exit(1)
}
