// Command mi-serve runs the campaign server: a long-running HTTP/JSON
// service that accepts campaign requests (benchmark set x config matrix x
// engine), deduplicates identical cells across concurrent requests via the
// content-addressed result cache, executes them on a worker pool, and
// streams per-cell results as they land followed by a merged PerfReport.
//
// Usage:
//
//	mi-serve -addr :8077                      # serve
//	mi-serve -addr :8077 -journal cells.jsonl # checkpoint completed cells
//	mi-serve -warm cells.jsonl                # warm the cache from a journal
//	mi-serve -replay traffic.jsonl -replay-clients 4
//
// Endpoints:
//
//	POST /campaign  {"benches":[...],"configs":["baseline","softbound"],"engine":"bytecode"}
//	                streams NDJSON cell events (SSE with Accept: text/event-stream),
//	                final event carries the merged PerfReport
//	GET  /healthz   200 ok / 503 draining
//	GET  /statsz    cache hit rate, queue depth, per-status cell counts,
//	                worker utilization, build version, uptime
//	GET  /metricsz  Prometheus text exposition of the campaign metrics
//	                (cells, latencies, cache, queue, retries, watchdog)
//
// Submit campaigns with mi-bench -server URL (which can also -record the
// traffic), and render saved server reports with mi-prof.
//
// Per-cell and per-request structured logs go to stderr (-log-level,
// -log-format json|text, -quiet to suppress); every record carries the
// request's trace ID, which the campaign response's final report event
// echoes back. With -trace FILE the server writes a Chrome trace-event
// JSON at shutdown covering every request, queue wait and cell execution,
// viewable at ui.perfetto.dev.
//
// On SIGINT/SIGTERM the server drains gracefully: new campaigns are rejected
// with 503 (so load balancers fail over), in-flight requests run to
// completion, then the journal is flushed and the process exits. A second
// signal cancels in-flight cells cooperatively and exits immediately.
//
// With -replay, mi-serve instead re-serves a recorded traffic log (written
// by mi-bench -record) against a fresh in-process server for load testing,
// then prints throughput, cache and latency statistics.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/version"
)

func main() {
	var (
		addr      = flag.String("addr", ":8077", "listen address")
		workers   = flag.Int("workers", 0, "cell worker-pool width (0 = GOMAXPROCS)")
		queueCap  = flag.Int("queue-cap", 0, "scheduler queue bound; a full queue backpressures requests (0 = workers*64)")
		journal   = flag.String("journal", "", "checkpoint completed cells to this journal (JSONL, shared format with mi-bench -journal)")
		warm      = flag.String("warm", "", "warm the result cache from this checkpoint journal at startup")
		deadline  = flag.Duration("deadline", 0, "per-cell wall-clock deadline (0 = none)")
		retries   = flag.Int("retries", 0, "max attempts per cell for transient failures (0 = 1)")
		quiet     = flag.Bool("quiet", false, "suppress structured per-cell/per-request logs on stderr")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "log format: text or json")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON of every request/queue/pipeline/execution span to this file at shutdown")

		replay        = flag.String("replay", "", "replay mode: re-serve this recorded traffic log against a fresh in-process server, print load-test stats and exit")
		replayClients = flag.Int("replay-clients", 1, "concurrent replay clients (each replays the full log)")
		replayRounds  = flag.Int("replay-rounds", 1, "times each client replays the log (rounds beyond the first measure cache-hit throughput)")
		replayTiming  = flag.Bool("replay-timing", false, "honor the recorded inter-arrival gaps instead of replaying as fast as possible")
		replayJSON    = flag.String("replay-json", "", "write the replay stats to this JSON file")

		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Printf("mi-serve %s\n", version.String())
		return
	}

	cfg := server.Config{
		Workers:     *workers,
		QueueCap:    *queueCap,
		JournalPath: *journal,
		WarmPath:    *warm,
		Policy:      resilience.Policy{Deadline: *deadline, MaxAttempts: *retries},
	}
	if !*quiet {
		lg, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mi-serve: %v\n", err)
			os.Exit(2)
		}
		cfg.Logger = lg
	}
	var trace *telemetry.Trace
	if *traceOut != "" {
		trace = telemetry.NewTrace()
		cfg.Trace = trace
	}

	if *replay != "" {
		os.Exit(runReplay(cfg, *replay, *replayClients, *replayRounds, *replayTiming, *replayJSON, *quiet))
	}

	s, err := server.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mi-serve: %v\n", err)
		os.Exit(2)
	}
	if *warm != "" {
		fmt.Fprintf(os.Stderr, "mi-serve: warmed %d cell(s) from %s\n", s.Warmed(), *warm)
	}

	hs := &http.Server{Addr: *addr, Handler: s.Handler()}

	// First signal: drain — reject new campaigns (503, /healthz unhealthy),
	// let in-flight requests finish, flush the journal. Second signal:
	// cancel in-flight cells cooperatively and exit now.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	shutdownDone := make(chan struct{})
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "mi-serve: %v: draining (in-flight requests finish; new campaigns get 503)\n", sig)
		s.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		go func() {
			<-sigs
			fmt.Fprintln(os.Stderr, "mi-serve: second signal, canceling in-flight cells")
			s.Runner().Supervisor().Cancel()
			cancel()
		}()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "mi-serve: shutdown: %v\n", err)
		}
		close(shutdownDone)
	}()

	fmt.Fprintf(os.Stderr, "mi-serve: listening on %s (workers=%d)\n", *addr, s.Snapshot().Scheduler.Workers)
	err = hs.ListenAndServe()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "mi-serve: %v\n", err)
		_ = s.Close()
		os.Exit(1)
	}
	// ListenAndServe returns the moment Shutdown *begins*; in-flight
	// requests are still streaming. Wait for Shutdown to finish before
	// stopping the scheduler, or their remaining cells would be rejected.
	<-shutdownDone
	if err := s.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "mi-serve: close: %v\n", err)
		os.Exit(1)
	}
	if *traceOut != "" {
		harness.PublishNativeBuildSpans(trace)
		if err := trace.WriteChromeJSON(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "mi-serve: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mi-serve: trace written to %s\n", *traceOut)
	}
	fmt.Fprintln(os.Stderr, "mi-serve: drained cleanly")
}

// runReplay loads a traffic log and re-serves it for load testing.
func runReplay(cfg server.Config, path string, clients, rounds int, timing bool, jsonOut string, quiet bool) int {
	log, err := server.LoadTraffic(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mi-serve: replay: %v\n", err)
		return 2
	}
	if len(log) == 0 {
		fmt.Fprintf(os.Stderr, "mi-serve: replay: %s holds no requests\n", path)
		return 2
	}
	fmt.Fprintf(os.Stderr, "mi-serve: replaying %d request(s) x %d client(s) x %d round(s)\n",
		len(log), clients, rounds)
	opts := server.ReplayOptions{
		Log:     log,
		Server:  cfg,
		Clients: clients,
		Rounds:  rounds,
		Timing:  timing,
	}
	if !quiet {
		opts.Progress = os.Stderr
	}
	// The replay server's own per-cell log lines would drown the load
	// generator's; keep the server quiet and report per-request.
	opts.Server.Logger = nil
	st, err := server.RunReplay(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mi-serve: replay: %v\n", err)
		return 1
	}
	fmt.Print(st.Render())
	if jsonOut != "" {
		data, err := json.MarshalIndent(st, "", "  ")
		if err == nil {
			err = os.WriteFile(jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mi-serve: replay-json: %v\n", err)
			return 1
		}
	}
	if st.Failed > 0 {
		return 1
	}
	return 0
}
