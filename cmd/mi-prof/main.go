// Command mi-prof renders hot-check tables from a performance report
// produced by mi-bench: which static check sites dominate the dynamic
// instrumentation cost, attributed to their C source locations.
//
// Usage:
//
//	mi-bench -fig9 -siteprofile -json perf.json
//	mi-prof perf.json                # top 10 sites per cell
//	mi-prof -top 25 perf.json        # deeper tables
//	mi-prof -bench gzip perf.json    # one benchmark only
//
// The input is the -json output of mi-bench; without -siteprofile the report
// carries no site tables and mi-prof says so.
//
// With -report, the input is instead a single violation-report JSON (as
// written by mi-bench -reports) and mi-prof renders it as text:
//
//	mi-prof -report reports/fault-000-....json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/telemetry"
)

func main() {
	var (
		topN   = flag.Int("top", 10, "sites per (benchmark, config) cell (0 = all)")
		bench  = flag.String("bench", "", "restrict to one benchmark")
		config = flag.String("config", "", "restrict to one configuration label")
		report = flag.Bool("report", false, "treat the input as a violation-report JSON and render it as text")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mi-prof [flags] perf.json\n       mi-prof -report violation.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	if *report {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "mi-prof: %v\n", err)
			os.Exit(1)
		}
		rep, err := telemetry.ParseReport(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mi-prof: parsing %s: %v\n", flag.Arg(0), err)
			os.Exit(1)
		}
		fmt.Print(rep.Render())
		return
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "mi-prof: %v\n", err)
		os.Exit(1)
	}
	var rep harness.PerfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		fmt.Fprintf(os.Stderr, "mi-prof: parsing %s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}

	if *bench != "" || *config != "" {
		kept := rep.Records[:0]
		for _, rec := range rep.Records {
			if *bench != "" && rec.Bench != *bench {
				continue
			}
			if *config != "" && rec.Config != *config {
				continue
			}
			kept = append(kept, rec)
		}
		rep.Records = kept
	}

	fmt.Print(harness.RenderHotChecks(&rep, *topN))
}
