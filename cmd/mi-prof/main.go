// Command mi-prof renders hot-check tables from a performance report
// produced by mi-bench: which static check sites dominate the dynamic
// instrumentation cost, attributed to their C source locations.
//
// Usage:
//
//	mi-bench -fig9 -siteprofile -json perf.json
//	mi-prof perf.json                # top 10 sites per cell
//	mi-prof -top 25 perf.json        # deeper tables
//	mi-prof -bench gzip perf.json    # one benchmark only
//
// The input is the -json output of mi-bench; without -siteprofile the report
// carries no site tables and mi-prof says so.
//
// With -report, the input is instead a single violation-report JSON (as
// written by mi-bench -reports) and mi-prof renders it as text:
//
//	mi-prof -report reports/fault-000-....json
//
// With -diff, two perf reports are compared in canonical form (wall-clock
// times and backoff delays zeroed, records sorted): exit 0 and no output if
// every cell's counters match, exit 1 with one line per differing or missing
// cell otherwise. This is how the resume-after-kill check verifies that a
// resumed campaign reproduced the uninterrupted campaign's results exactly:
//
//	mi-prof -diff full.json resumed.json
//
// With -overheads, the input perf report (e.g. one saved by
// mi-bench -server ... -json) is re-rendered as the normalized overhead
// figure — the server-side analogue of running the figure locally:
//
//	mi-prof -overheads served.json
//
// With -tiers, the execution-tier attribution a compiler-engine campaign
// embeds in its report is rendered: per function, how many instructions
// retired in quickened superinstructions, trace-fused loops, and generated
// native code, plus the native tier's build ledger and fallback reasons:
//
//	mi-bench -fig9 -engine=compiler -json perf.json
//	mi-prof -tiers perf.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/telemetry"
	"repro/internal/version"
)

func main() {
	var (
		topN   = flag.Int("top", 10, "sites per (benchmark, config) cell (0 = all)")
		bench  = flag.String("bench", "", "restrict to one benchmark")
		config = flag.String("config", "", "restrict to one configuration label")
		report    = flag.Bool("report", false, "treat the input as a violation-report JSON and render it as text")
		diff      = flag.Bool("diff", false, "compare two perf reports in canonical form (wall times zeroed); exit 1 on any difference")
		noStatus  = flag.Bool("ignore-status", false, "with -diff, also ignore cell status and attempt history (compare measurements only: chaos run vs clean run)")
		overheads = flag.Bool("overheads", false, "render the perf report as a normalized overhead figure (for reports saved from mi-bench -server campaigns)")
		metrics   = flag.Bool("metrics", false, "render the campaign metrics snapshot embedded in the perf report (mi-bench -metrics -json)")
		tiers     = flag.Bool("tiers", false, "render the execution-tier attribution table embedded in the perf report (mi-bench -engine=compiler -json)")

		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mi-prof [flags] perf.json\n       mi-prof -report violation.json\n       mi-prof -overheads perf.json\n       mi-prof -diff a.json b.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *showVersion {
		fmt.Printf("mi-prof %s\n", version.String())
		return
	}
	if *diff {
		if flag.NArg() != 2 {
			flag.Usage()
			os.Exit(2)
		}
		diffReports(flag.Arg(0), flag.Arg(1), *noStatus)
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	if *report {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "mi-prof: %v\n", err)
			os.Exit(1)
		}
		rep, err := telemetry.ParseReport(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mi-prof: parsing %s: %v\n", flag.Arg(0), err)
			os.Exit(1)
		}
		fmt.Print(rep.Render())
		return
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "mi-prof: %v\n", err)
		os.Exit(1)
	}
	var rep harness.PerfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		fmt.Fprintf(os.Stderr, "mi-prof: parsing %s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}

	if *metrics {
		if rep.Metrics == nil {
			fmt.Fprintf(os.Stderr, "mi-prof: %s carries no metrics snapshot (rerun mi-bench with -metrics)\n", flag.Arg(0))
			os.Exit(1)
		}
		fmt.Print(rep.Metrics.Render())
		return
	}

	if *tiers {
		if rep.Tiers == nil {
			fmt.Fprintf(os.Stderr, "mi-prof: %s carries no tier attribution (rerun mi-bench with -engine=compiler)\n", flag.Arg(0))
			os.Exit(1)
		}
		fmt.Print(rep.Tiers.Render())
		return
	}

	if *overheads {
		title := fmt.Sprintf("Overheads from %s (engine=%s)", flag.Arg(0), rep.Engine)
		fig := harness.FigureFromReport(&rep, title, nil)
		fmt.Println(fig.Render())
		if len(fig.Failures) > 0 {
			for _, f := range fig.Failures {
				fmt.Fprintf(os.Stderr, "mi-prof: %s\n", f)
			}
			os.Exit(1)
		}
		return
	}

	if *bench != "" || *config != "" {
		kept := rep.Records[:0]
		for _, rec := range rep.Records {
			if *bench != "" && rec.Bench != *bench {
				continue
			}
			if *config != "" && rec.Config != *config {
				continue
			}
			kept = append(kept, rec)
		}
		rep.Records = kept
	}

	fmt.Print(harness.RenderHotChecks(&rep, *topN))
}

// diffReports compares two perf reports cell by cell in canonical form and
// exits nonzero on any difference.
func diffReports(pathA, pathB string, ignoreStatus bool) {
	load := func(path string) map[string]json.RawMessage {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mi-prof: %v\n", err)
			os.Exit(2)
		}
		var rep harness.PerfReport
		if err := json.Unmarshal(data, &rep); err != nil {
			fmt.Fprintf(os.Stderr, "mi-prof: parsing %s: %v\n", path, err)
			os.Exit(2)
		}
		cells := make(map[string]json.RawMessage)
		for _, rec := range rep.Canonical().Records {
			if ignoreStatus {
				rec.Status, rec.Attempts = "", nil
			}
			raw, err := json.Marshal(rec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mi-prof: %s: %v\n", path, err)
				os.Exit(2)
			}
			cells[rec.Key] = raw
		}
		return cells
	}
	a, b := load(pathA), load(pathB)
	differs := 0
	for key, ra := range a {
		rb, ok := b[key]
		switch {
		case !ok:
			fmt.Printf("only in %s: %s\n", pathA, key)
			differs++
		case string(ra) != string(rb):
			fmt.Printf("differs: %s\n  %s: %s\n  %s: %s\n", key, pathA, ra, pathB, rb)
			differs++
		}
	}
	for key := range b {
		if _, ok := a[key]; !ok {
			fmt.Printf("only in %s: %s\n", pathB, key)
			differs++
		}
	}
	if differs > 0 {
		fmt.Printf("%d differing cell(s)\n", differs)
		os.Exit(1)
	}
}
