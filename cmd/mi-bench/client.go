package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
	"repro/internal/server"
)

// clientOptions configures mi-bench's -server mode: the campaign is
// submitted to a running mi-serve instead of executing locally, results
// stream back as cells land, and the merged report is rendered (and written
// to -json) exactly as a local run would have produced it.
type clientOptions struct {
	URL      string // mi-serve base URL
	Record   string // traffic-log path (-record)
	Engine   string
	Fig9     bool     // -fig9: the standard baseline/softbound/lowfat matrix
	Configs  []string // explicit config names (-configs)
	Benches  []string // benchmark subset (-benches, empty = all)
	SiteProf bool
	JSONOut  string
	Progress bool
}

// runClient executes one campaign against a remote server and returns the
// process exit code.
func runClient(opts clientOptions) int {
	configs := opts.Configs
	if opts.Fig9 {
		configs = []string{"baseline", "softbound", "lowfat"}
	}
	if len(configs) == 0 {
		fmt.Fprintf(os.Stderr, "mi-bench: -server needs a campaign: -fig9 or -configs (known: %s)\n",
			strings.Join(harness.ConfigNames(), ","))
		return 2
	}
	hasBaseline := false
	for _, c := range configs {
		if c == "baseline" {
			hasBaseline = true
		}
	}
	if !hasBaseline {
		// Overheads are normalized to the -O3 baseline; a matrix without it
		// could not be rendered (and would not match a local figure run).
		configs = append([]string{"baseline"}, configs...)
	}

	req := server.CampaignRequest{
		Benches:     opts.Benches,
		Configs:     configs,
		Engine:      opts.Engine,
		SiteProfile: opts.SiteProf,
	}
	cl := &server.Client{BaseURL: opts.URL}
	if opts.Record != "" {
		rec, err := server.NewRecorder(opts.Record)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mi-bench: record: %v\n", err)
			return 2
		}
		defer rec.Close()
		cl.Recorder = rec
	}

	onCell := func(ev server.Event) {
		if !opts.Progress {
			return
		}
		switch {
		case ev.Err != "":
			fmt.Fprintf(os.Stderr, "[%s] FAILED: %s\n", ev.Key, ev.Err)
		case ev.Rec != nil:
			from := "computed"
			if ev.Cached {
				from = "cached"
			}
			fmt.Fprintf(os.Stderr, "[%s/%s] %s (%s): cost=%d checks=%d\n",
				ev.Rec.Bench, ev.Rec.Config, ev.Rec.Status, from, ev.Rec.Cost, ev.Rec.Checks)
		}
	}
	rep, err := cl.Submit(req, onCell)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mi-bench: server campaign: %v\n", err)
		return 1
	}

	title := fmt.Sprintf("Server campaign via %s (engine=%s)", opts.URL, rep.Report.Engine)
	if opts.Fig9 {
		title = "Figure 9 (served): Execution Time Comparison (normalized to -O3 baseline)"
	}
	fig := harness.FigureFromReport(rep.Report, title, configs)
	fmt.Println(fig.Render())
	fmt.Fprintf(os.Stderr, "mi-bench: server: %d cell(s): %d computed, %d served from cache, %d failed\n",
		rep.Cells, rep.Computed, rep.Served, rep.Failed)

	if opts.JSONOut != "" {
		if err := rep.Report.WriteFile(opts.JSONOut); err != nil {
			fmt.Fprintf(os.Stderr, "mi-bench: json: %v\n", err)
			return 1
		}
	}
	if rep.Failed > 0 || len(fig.Failures) > 0 {
		return 1
	}
	return 0
}

// splitList parses a comma-separated flag value ("" = nil).
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
