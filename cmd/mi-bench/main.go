// Command mi-bench regenerates the tables and figures of the paper's
// evaluation (Section 5 and Table 2) on the simulated substrate, plus the
// fault-injection detection matrix behind the security analysis (Section 6).
//
// Usage:
//
//	mi-bench -all            # everything
//	mi-bench -fig9           # runtime comparison SoftBound vs Low-Fat
//	mi-bench -fig10 -fig11   # optimization/metadata breakdowns
//	mi-bench -fig12 -fig13   # pipeline extension points
//	mi-bench -table2         # unsafe dereference percentages
//	mi-bench -elim           # Section 5.3 check elimination statistics
//	mi-bench -checkopt       # check-optimization ablation (off/dom/dom+hoist)
//	mi-bench -faults         # fault-injection detection matrix
//
// Cross-cutting flags: -engine=tree|bytecode selects the execution engine
// (default bytecode; tree is the reference interpreter), -j N caps
// concurrent benchmark cells, -json FILE dumps per-cell instruction/check
// counts and wall times, and -cpuprofile/-memprofile write pprof profiles.
//
// Telemetry flags: -siteprofile collects per-check-site execution counters
// (included in -json, rendered by -hotchecks or the mi-prof command),
// -trace FILE writes a Chrome trace-event JSON of the compile/instrument/
// optimize/execute pipeline (load it at ui.perfetto.dev), -top N bounds the
// rendered hot-check table, and -progress streams per-cell completion lines
// to stderr (serialized across -j workers).
//
// Individual experiment failures never abort the run: affected cells are
// annotated in place, all failures are summarized at the end, and the exit
// status is nonzero when anything failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/harness"
	"repro/internal/telemetry"
)

func main() {
	var (
		all    = flag.Bool("all", false, "run every experiment")
		fig9   = flag.Bool("fig9", false, "Figure 9: SB vs LF runtime")
		fig10  = flag.Bool("fig10", false, "Figure 10: SoftBound breakdown")
		fig11  = flag.Bool("fig11", false, "Figure 11: Low-Fat breakdown")
		fig12  = flag.Bool("fig12", false, "Figure 12: SoftBound extension points")
		fig13  = flag.Bool("fig13", false, "Figure 13: Low-Fat extension points")
		table2 = flag.Bool("table2", false, "Table 2: unsafe dereferences")
		elim   = flag.Bool("elim", false, "Section 5.3: check elimination")
		ablate = flag.Bool("ablation", false, "ablation: Low-Fat escape-check elimination (beyond the paper)")

		checkOpt     = flag.Bool("checkopt", false, "ablation: dynamic check counts at off/dominance/dominance+hoist levels")
		checkOptJSON = flag.String("checkopt-json", "", "write the -checkopt report to this JSON file")
		checkOptMD   = flag.String("checkopt-md", "", "write the -checkopt report to this Markdown file")

		faults       = flag.Bool("faults", false, "fault-injection campaign: detection matrix per mechanism")
		faultSeed    = flag.Int64("fault-seed", 1, "seed for fault-site selection")
		faultPerKind = flag.Int("fault-per-kind", 1, "faults planted per kind per benchmark")

		vmMemBudget = flag.Uint64("vm-mem-budget", 1<<30, "per-variant VM memory budget in bytes (0 = unlimited)")
		vmMaxSteps  = flag.Uint64("vm-max-steps", 1<<30, "per-variant VM step limit")

		engineName = flag.String("engine", "bytecode", "execution engine: tree (reference interpreter) or bytecode")
		jobs       = flag.Int("j", 0, "max concurrent benchmark cells (0 = default of 8)")
		jsonOut    = flag.String("json", "", "write per-benchmark counts and wall times to this JSON file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")

		forensics  = flag.Bool("forensics", false, "enable violation forensics (allocation tracking, flight recorder, structured reports) in figure/table runs")
		reportsDir = flag.String("reports", "", "write the violation reports of detected -faults variants as JSON files into this directory (implies -faults)")

		siteProf  = flag.Bool("siteprofile", false, "collect per-check-site execution counters (adds site tables to -json)")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON of the pipeline to this file")
		hotChecks = flag.Bool("hotchecks", false, "render hot-check tables from the collected site profiles (implies -siteprofile)")
		topN      = flag.Int("top", 10, "sites per (benchmark, config) cell in the -hotchecks table (0 = all)")
		progress  = flag.Bool("progress", false, "stream per-cell completion lines to stderr (serialized across -j workers)")
	)
	flag.Parse()

	engine, err := bytecode.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mi-bench: %v\n", err)
		os.Exit(2)
	}

	if *checkOptJSON != "" || *checkOptMD != "" {
		*checkOpt = true
	}
	if *reportsDir != "" {
		*faults = true
	}
	if !(*all || *fig9 || *fig10 || *fig11 || *fig12 || *fig13 || *table2 || *elim || *ablate || *checkOpt || *faults) {
		flag.Usage()
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mi-bench: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mi-bench: cpuprofile: %v\n", err)
			os.Exit(2)
		}
	}
	// os.Exit skips defers, so profile teardown rides the exit path.
	exit := func(code int) {
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mi-bench: memprofile: %v\n", err)
			} else {
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintf(os.Stderr, "mi-bench: memprofile: %v\n", err)
				}
				f.Close()
			}
		}
		os.Exit(code)
	}

	r := harness.NewRunner()
	r.SetEngine(engine)
	r.SetParallelism(*jobs)
	if *hotChecks {
		*siteProf = true
	}
	r.SetSiteProfile(*siteProf)
	r.SetForensics(*forensics)
	var trace *telemetry.Trace
	if *traceOut != "" {
		trace = telemetry.NewTrace()
		r.SetTrace(trace)
	}
	if *progress {
		r.SetProgress(os.Stderr)
	}
	var failures []string
	note := func(what string, msg string) {
		failures = append(failures, what+": "+msg)
	}
	figure := func(enabled bool, name string, gen func() (*harness.Figure, error)) {
		if !enabled && !*all {
			return
		}
		fig, err := gen()
		if err != nil {
			note(name, err.Error())
			return
		}
		fmt.Println(fig.Render())
		for _, f := range fig.Failures {
			note(name, f)
		}
	}

	if *table2 || *all {
		rows, err := r.Table2()
		if err != nil {
			note("table2", err.Error())
		} else {
			fmt.Println(harness.RenderTable2(rows))
			for _, row := range rows {
				if row.Failed != "" {
					note("table2", row.Bench+": "+row.Failed)
				}
			}
		}
	}
	figure(*fig9, "fig9", r.Figure9)
	figure(*fig10, "fig10", r.Figure10)
	figure(*fig11, "fig11", r.Figure11)
	figure(*fig12, "fig12", r.Figure12)
	figure(*fig13, "fig13", r.Figure13)
	figure(*ablate, "ablation", r.AblationInvariantElim)
	if *elim || *all {
		for _, mech := range []core.Mech{core.MechSoftBound, core.MechLowFat} {
			rows, err := r.EliminationStats(mech)
			if err != nil {
				note("elim/"+mech.String(), err.Error())
				continue
			}
			fmt.Println(harness.RenderElimination(rows))
			for _, row := range rows {
				if row.Failed != "" {
					note("elim/"+mech.String(), row.Bench+": "+row.Failed)
				}
			}
		}
	}
	if *checkOpt || *all {
		rep := r.CheckOptAblation(nil)
		fmt.Println(harness.RenderCheckOpt(rep))
		for _, row := range rep.Rows {
			for _, cell := range []harness.CheckOptCell{row.Off, row.Dom, row.Hoist} {
				if cell.Err != "" {
					note("checkopt", row.Bench+"/"+row.Mech+": "+cell.Err)
				}
			}
		}
		if *checkOptJSON != "" {
			if err := harness.WriteCheckOptJSON(rep, *checkOptJSON); err != nil {
				note("checkopt-json", err.Error())
			}
		}
		if *checkOptMD != "" {
			if err := os.WriteFile(*checkOptMD, []byte(harness.RenderCheckOptMarkdown(rep)), 0o644); err != nil {
				note("checkopt-md", err.Error())
			}
		}
	}
	if *faults || *all {
		rep := faultinject.Run(faultinject.Options{
			Seed:      *faultSeed,
			PerKind:   *faultPerKind,
			MaxSteps:  *vmMaxSteps,
			MemBudget: *vmMemBudget,
			NoBudget:  *vmMemBudget == 0,
			Parallel:  *jobs,
			Engine:    engine,
		})
		fmt.Println(rep.Render())
		attributed, attributable := 0, 0
		for _, vr := range rep.Results {
			if vr.Outcome == faultinject.OutDetected && !vr.Fault.Benign && vr.ExpectedAlloc != 0 {
				attributable++
				if vr.Attributed {
					attributed++
				}
			}
		}
		fmt.Printf("attribution: %d/%d detected faults named their allocation site in the violation report\n\n",
			attributed, attributable)
		for _, f := range rep.Failures {
			note("faults", f)
		}
		for _, vr := range rep.Unexpected() {
			note("faults", fmt.Sprintf("unexpected outcome: %s under %s: %s (expected %s)",
				vr.Fault, vr.Mech, vr.Outcome, vr.Expect))
		}
		if *reportsDir != "" {
			if err := writeReports(*reportsDir, rep); err != nil {
				note("reports", err.Error())
			}
		}
	}

	if *hotChecks {
		fmt.Println(harness.RenderHotChecks(r.PerfReport(), *topN))
	}
	if *jsonOut != "" {
		if err := r.WritePerfJSON(*jsonOut); err != nil {
			note("json", err.Error())
		}
	}
	if *traceOut != "" {
		if err := trace.WriteChromeJSON(*traceOut); err != nil {
			note("trace", err.Error())
		}
	}

	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "mi-bench: %d failure(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		exit(1)
	}
	exit(0)
}

// writeReports dumps the violation report of every variant that produced one
// as a JSON file, named deterministically after the fault and mechanism.
func writeReports(dir string, rep *faultinject.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	written := 0
	for i, vr := range rep.Results {
		if vr.Report == nil {
			continue
		}
		data, err := vr.Report.JSON()
		if err != nil {
			return fmt.Errorf("report %d: %w", i, err)
		}
		name := fmt.Sprintf("fault-%03d-%s-%s-%s.json", i, vr.Fault.Bench, vr.Fault.Kind, vr.Mech)
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return err
		}
		written++
	}
	fmt.Printf("wrote %d violation report(s) to %s\n", written, dir)
	return nil
}
