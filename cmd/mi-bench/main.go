// Command mi-bench regenerates the tables and figures of the paper's
// evaluation (Section 5 and Table 2) on the simulated substrate, plus the
// fault-injection detection matrix behind the security analysis (Section 6).
//
// Usage:
//
//	mi-bench -all            # everything
//	mi-bench -fig9           # runtime comparison SoftBound vs Low-Fat
//	mi-bench -fig10 -fig11   # optimization/metadata breakdowns
//	mi-bench -fig12 -fig13   # pipeline extension points
//	mi-bench -table2         # unsafe dereference percentages
//	mi-bench -elim           # Section 5.3 check elimination statistics
//	mi-bench -checkopt       # check-optimization ablation (off/dom/dom+hoist)
//	mi-bench -faults         # fault-injection detection matrix
//
// Cross-cutting flags: -engine=tree|bytecode selects the execution engine
// (default bytecode; tree is the reference interpreter), -j N caps
// concurrent benchmark cells, -json FILE dumps per-cell instruction/check
// counts and wall times, and -cpuprofile/-memprofile write pprof profiles.
//
// Telemetry flags: -siteprofile collects per-check-site execution counters
// (included in -json, rendered by -hotchecks or the mi-prof command),
// -trace FILE writes a Chrome trace-event JSON of the compile/instrument/
// optimize/execute pipeline (load it at ui.perfetto.dev), -top N bounds the
// rendered hot-check table, and -progress streams structured per-cell logs
// to stderr (-log-level/-log-format tune them; -heartbeat periodically
// names the oldest still-running cell so a stuck campaign identifies its
// stuck cell). -metrics attaches a campaign metrics registry: the snapshot
// prints after the figures and embeds in the -json report, where
// mi-prof -metrics renders it.
//
// Robustness flags (long campaigns): -deadline bounds each cell's wall time
// via a cooperative watchdog (hung cells report as "timeout" instead of
// hanging the campaign), -retries N retries transient failures with
// exponential backoff, -journal FILE checkpoints completed cells and
// -resume FILE replays them so a killed campaign restarts in O(remaining
// cells), -mem-budget sheds parallelism (then, as last resort, cells) under
// memory pressure, and -chaos turns the fault injector against the harness
// itself. SIGINT/SIGTERM cancel in-flight cells cooperatively and flush the
// journal and partial -json report before exiting.
//
// Individual experiment failures never abort the run: affected cells are
// annotated in place, all failures are summarized at the end, and the exit
// status is nonzero when anything failed — including any cell whose final
// status is not ok/retried.
//
// Server mode: -server URL submits the campaign to a running mi-serve
// instead of executing locally (-fig9 for the standard matrix, or -configs
// name,name,... with optional -benches), streams per-cell results, and
// renders the merged report exactly as a local run would. -record FILE
// appends each submitted request to a traffic log replayable with
// mi-serve -replay.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"syscall"
	"time"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/version"
)

func main() {
	var (
		all    = flag.Bool("all", false, "run every experiment")
		fig9   = flag.Bool("fig9", false, "Figure 9: SB vs LF runtime")
		fig10  = flag.Bool("fig10", false, "Figure 10: SoftBound breakdown")
		fig11  = flag.Bool("fig11", false, "Figure 11: Low-Fat breakdown")
		fig12  = flag.Bool("fig12", false, "Figure 12: SoftBound extension points")
		fig13  = flag.Bool("fig13", false, "Figure 13: Low-Fat extension points")
		table2 = flag.Bool("table2", false, "Table 2: unsafe dereferences")
		elim   = flag.Bool("elim", false, "Section 5.3: check elimination")
		ablate = flag.Bool("ablation", false, "ablation: Low-Fat escape-check elimination (beyond the paper)")

		checkOpt     = flag.Bool("checkopt", false, "ablation: dynamic check counts at off/dominance/dominance+hoist levels")
		checkOptJSON = flag.String("checkopt-json", "", "write the -checkopt report to this JSON file")
		checkOptMD   = flag.String("checkopt-md", "", "write the -checkopt report to this Markdown file")

		faults       = flag.Bool("faults", false, "fault-injection campaign: detection matrix per mechanism")
		faultSeed    = flag.Int64("fault-seed", 1, "seed for fault-site selection")
		faultPerKind = flag.Int("fault-per-kind", 1, "faults planted per kind per benchmark")

		vmMemBudget = flag.Uint64("vm-mem-budget", 1<<30, "per-variant VM memory budget in bytes (0 = unlimited)")
		vmMaxSteps  = flag.Uint64("vm-max-steps", 1<<30, "per-variant VM step limit")

		engineName = flag.String("engine", "bytecode", "execution engine: tree (reference interpreter) or bytecode")
		jobs       = flag.Int("j", 0, "max concurrent benchmark cells (0 = default of 8)")
		jsonOut    = flag.String("json", "", "write per-benchmark counts and wall times to this JSON file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")

		forensics  = flag.Bool("forensics", false, "enable violation forensics (allocation tracking, flight recorder, structured reports) in figure/table runs")
		reportsDir = flag.String("reports", "", "write the violation reports of detected -faults variants as JSON files into this directory (implies -faults)")

		siteProf  = flag.Bool("siteprofile", false, "collect per-check-site execution counters (adds site tables to -json)")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON of the pipeline to this file")
		hotChecks = flag.Bool("hotchecks", false, "render hot-check tables from the collected site profiles (implies -siteprofile)")
		topN      = flag.Int("top", 10, "sites per (benchmark, config) cell in the -hotchecks table (0 = all)")
		progress  = flag.Bool("progress", false, "stream structured per-cell records to stderr (see -log-level/-log-format)")
		logLevel  = flag.String("log-level", "info", "-progress log level: debug, info, warn, error (debug adds cell-start and instrumentation records)")
		logFormat = flag.String("log-format", "text", "-progress log format: text or json")
		heartbeat = flag.Duration("heartbeat", 10*time.Second, "with -progress, emit a still-running record for the oldest in-flight cell at this interval (0 = off)")
		metrics   = flag.Bool("metrics", false, "collect campaign metrics (counters, latency histograms); snapshotted into -json and rendered at exit")

		deadline   = flag.Duration("deadline", 0, "per-cell wall-clock deadline; a spinning cell is interrupted cooperatively and reported as timeout (0 = none)")
		retries    = flag.Int("retries", 0, "max attempts per cell for transient failures (0 = auto: 1, or 3 under -chaos)")
		backoff    = flag.Duration("backoff", 0, "base retry backoff, doubled per retry with jitter (0 = default 100ms)")
		memBudget  = flag.Uint64("mem-budget", 0, "campaign heap budget in bytes: above 80% the scheduler sheds parallelism, cells are shed (skipped) only as last resort (0 = unlimited)")
		journalOut = flag.String("journal", "", "append completed cells to this checkpoint journal (JSONL)")
		resumeFrom = flag.String("resume", "", "replay completed cells from this checkpoint journal; implies -journal FILE unless set")
		chaos      = flag.Bool("chaos", false, "chaos mode: kill cells mid-run, inject scheduling delays, corrupt journal entries (self-test of the supervision layer)")
		chaosSeed  = flag.Int64("chaos-seed", 1, "seed for the chaos injection schedule")

		serverURL  = flag.String("server", "", "submit the campaign to a running mi-serve at this base URL instead of executing locally")
		record     = flag.String("record", "", "append submitted -server requests to this traffic log (JSONL, replayable with mi-serve -replay)")
		configList = flag.String("configs", "", "server mode: comma-separated named configs for the campaign matrix (see mi-serve; -fig9 is shorthand for baseline,softbound,lowfat)")
		benchList  = flag.String("benches", "", "server mode: comma-separated benchmark subset (empty = all)")

		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Printf("mi-bench %s\n", version.String())
		return
	}

	engine, err := bytecode.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mi-bench: %v\n", err)
		os.Exit(2)
	}

	if *serverURL != "" {
		os.Exit(runClient(clientOptions{
			URL:      *serverURL,
			Record:   *record,
			Engine:   engine.String(),
			Fig9:     *fig9,
			Configs:  splitList(*configList),
			Benches:  splitList(*benchList),
			SiteProf: *siteProf,
			JSONOut:  *jsonOut,
			Progress: *progress,
		}))
	}

	if *checkOptJSON != "" || *checkOptMD != "" {
		*checkOpt = true
	}
	if *reportsDir != "" {
		*faults = true
	}
	if !(*all || *fig9 || *fig10 || *fig11 || *fig12 || *fig13 || *table2 || *elim || *ablate || *checkOpt || *faults) {
		flag.Usage()
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mi-bench: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mi-bench: cpuprofile: %v\n", err)
			os.Exit(2)
		}
	}
	// os.Exit skips defers, so profile and journal teardown ride the exit
	// path.
	var journal *resilience.Journal
	stopHeartbeat := func() {}
	exit := func(code int) {
		stopHeartbeat()
		if err := journal.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "mi-bench: journal: %v\n", err)
		}
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mi-bench: memprofile: %v\n", err)
			} else {
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintf(os.Stderr, "mi-bench: memprofile: %v\n", err)
				}
				f.Close()
			}
		}
		os.Exit(code)
	}

	r := harness.NewRunner()
	r.SetEngine(engine)
	r.SetParallelism(*jobs)
	if *hotChecks {
		*siteProf = true
	}
	r.SetSiteProfile(*siteProf)
	r.SetForensics(*forensics)
	var trace *telemetry.Trace
	if *traceOut != "" {
		trace = telemetry.NewTrace()
		r.SetTrace(trace)
	}
	// One trace ID per campaign: every structured log record and trace span
	// of this run carries it.
	r.SetTraceID(obs.NewTraceID())
	if *progress {
		lg, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mi-bench: %v\n", err)
			exit(2)
		}
		r.SetLogger(lg)
	}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
		r.SetMetrics(reg)
	}

	attempts := *retries
	if attempts <= 0 {
		attempts = 1
		if *chaos {
			// Chaos kills cells on their first attempt; retries are how the
			// campaign converges to zero lost results.
			attempts = 3
		}
	}
	r.SetResilience(resilience.Policy{
		Deadline:    *deadline,
		MaxAttempts: attempts,
		BackoffBase: *backoff,
		MemBudget:   *memBudget,
		Parallel:    *jobs,
	})
	if *chaos {
		r.SetChaos(faultinject.DefaultChaosPlan(*chaosSeed))
	}
	if *resumeFrom != "" {
		if *journalOut == "" {
			*journalOut = *resumeFrom
		}
		st, err := r.Resume(*resumeFrom)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mi-bench: resume: %v\n", err)
			exit(2)
		}
		fmt.Fprintf(os.Stderr, "mi-bench: resume: replaying %d cell(s) from %s (%d corrupt, %d unparsed entries will recompute)\n",
			st.Entries, *resumeFrom, st.Corrupt, st.Unparsed)
	}
	if *journalOut != "" {
		j, err := resilience.OpenJournal(*journalOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mi-bench: journal: %v\n", err)
			exit(2)
		}
		journal = j
		r.SetJournal(j)
	}

	// SIGINT/SIGTERM cancel in-flight cells cooperatively: supervised cells
	// observe the interrupt flag within vm.InterruptStride instructions and
	// surface as skipped, then the main path flushes the journal and the
	// partial -json report before exiting nonzero. A second signal exits
	// immediately.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigs
		fmt.Fprintf(os.Stderr, "mi-bench: %v: canceling in-flight cells (journal and partial report flush before exit)\n", s)
		r.Supervisor().Cancel()
		<-sigs
		fmt.Fprintln(os.Stderr, "mi-bench: second signal, exiting now")
		os.Exit(130)
	}()

	// Progress heartbeat: while cells run, report the oldest in-flight one at
	// a fixed interval, so a long campaign is visibly alive — not hung.
	if *progress && *heartbeat > 0 {
		start := time.Now()
		stopHeartbeat = r.Supervisor().Heartbeat(*heartbeat, func(c resilience.ActiveCell) {
			if lg := r.Logger(); lg != nil {
				lg.Info("still running",
					"key", c.Key,
					"tier", c.Tier,
					"attempt", c.Attempt+1,
					"elapsed", time.Since(c.Started).Round(time.Millisecond).String(),
					"campaign_elapsed", time.Since(start).Round(time.Second).String())
			}
		})
	}

	var failures []string
	note := func(what string, msg string) {
		failures = append(failures, what+": "+msg)
	}
	figure := func(enabled bool, name string, gen func() (*harness.Figure, error)) {
		if !enabled && !*all {
			return
		}
		fig, err := gen()
		if err != nil {
			note(name, err.Error())
			return
		}
		fmt.Println(fig.Render())
		for _, f := range fig.Failures {
			note(name, f)
		}
	}

	if *table2 || *all {
		rows, err := r.Table2()
		if err != nil {
			note("table2", err.Error())
		} else {
			fmt.Println(harness.RenderTable2(rows))
			for _, row := range rows {
				if row.Failed != "" {
					note("table2", row.Bench+": "+row.Failed)
				}
			}
		}
	}
	figure(*fig9, "fig9", r.Figure9)
	figure(*fig10, "fig10", r.Figure10)
	figure(*fig11, "fig11", r.Figure11)
	figure(*fig12, "fig12", r.Figure12)
	figure(*fig13, "fig13", r.Figure13)
	figure(*ablate, "ablation", r.AblationInvariantElim)
	if *elim || *all {
		for _, mech := range []core.Mech{core.MechSoftBound, core.MechLowFat} {
			rows, err := r.EliminationStats(mech)
			if err != nil {
				note("elim/"+mech.String(), err.Error())
				continue
			}
			fmt.Println(harness.RenderElimination(rows))
			for _, row := range rows {
				if row.Failed != "" {
					note("elim/"+mech.String(), row.Bench+": "+row.Failed)
				}
			}
		}
	}
	if *checkOpt || *all {
		rep := r.CheckOptAblation(nil)
		fmt.Println(harness.RenderCheckOpt(rep))
		for _, row := range rep.Rows {
			for _, cell := range []harness.CheckOptCell{row.Off, row.Dom, row.Hoist} {
				if cell.Err != "" {
					note("checkopt", row.Bench+"/"+row.Mech+": "+cell.Err)
				}
			}
		}
		if *checkOptJSON != "" {
			if err := harness.WriteCheckOptJSON(rep, *checkOptJSON); err != nil {
				note("checkopt-json", err.Error())
			}
		}
		if *checkOptMD != "" {
			if err := os.WriteFile(*checkOptMD, []byte(harness.RenderCheckOptMarkdown(rep)), 0o644); err != nil {
				note("checkopt-md", err.Error())
			}
		}
	}
	if *faults || *all {
		rep := faultinject.Run(faultinject.Options{
			Seed:      *faultSeed,
			PerKind:   *faultPerKind,
			MaxSteps:  *vmMaxSteps,
			MemBudget: *vmMemBudget,
			NoBudget:  *vmMemBudget == 0,
			Parallel:  *jobs,
			Engine:    engine,
		})
		fmt.Println(rep.Render())
		attributed, attributable := 0, 0
		for _, vr := range rep.Results {
			if vr.Outcome == faultinject.OutDetected && !vr.Fault.Benign && vr.ExpectedAlloc != 0 {
				attributable++
				if vr.Attributed {
					attributed++
				}
			}
		}
		fmt.Printf("attribution: %d/%d detected faults named their allocation site in the violation report\n\n",
			attributed, attributable)
		for _, f := range rep.Failures {
			note("faults", f)
		}
		for _, vr := range rep.Unexpected() {
			note("faults", fmt.Sprintf("unexpected outcome: %s under %s: %s (expected %s)",
				vr.Fault, vr.Mech, vr.Outcome, vr.Expect))
		}
		if *reportsDir != "" {
			if err := writeReports(*reportsDir, rep); err != nil {
				note("reports", err.Error())
			}
		}
	}

	if *hotChecks {
		fmt.Println(harness.RenderHotChecks(r.PerfReport(), *topN))
	}
	if *jsonOut != "" {
		if err := r.WritePerfJSON(*jsonOut); err != nil {
			note("json", err.Error())
		}
	}
	if *traceOut != "" {
		harness.PublishNativeBuildSpans(trace)
		if err := trace.WriteChromeJSON(*traceOut); err != nil {
			note("trace", err.Error())
		}
	}

	// Final cell-status summary: every supervised cell accounted for, every
	// cell that did not complete cleanly listed, and a nonzero exit if any
	// cell failed, timed out, was shed or was aborted — even when the
	// figure-level reporting absorbed it.
	counts, badCells := r.CellStatuses()
	if len(counts) > 0 {
		var keys []string
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(os.Stderr, "mi-bench: cells:")
		for _, k := range keys {
			fmt.Fprintf(os.Stderr, " %s=%d", k, counts[k])
		}
		fmt.Fprintln(os.Stderr)
	}
	if journal != nil {
		fmt.Fprintf(os.Stderr, "mi-bench: journal: %d cell(s) appended to %s\n", journal.Entries(), journal.Path())
	}
	if reg != nil {
		harness.PublishEngineTierMetrics(reg)
		if snap := reg.Snapshot(); snap != nil {
			fmt.Println(snap.Render())
		}
	}
	if r.Supervisor().Canceled() {
		note("campaign", "canceled by signal before completion")
	}
	if len(badCells) > 0 {
		fmt.Fprintf(os.Stderr, "mi-bench: %d cell(s) did not complete cleanly:\n", len(badCells))
		for _, c := range badCells {
			fmt.Fprintf(os.Stderr, "  %s\n", c)
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "mi-bench: %d failure(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
	}
	if len(failures) > 0 || len(badCells) > 0 {
		exit(1)
	}
	exit(0)
}

// writeReports dumps the violation report of every variant that produced one
// as a JSON file, named deterministically after the fault and mechanism.
func writeReports(dir string, rep *faultinject.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	written := 0
	for i, vr := range rep.Results {
		if vr.Report == nil {
			continue
		}
		data, err := vr.Report.JSON()
		if err != nil {
			return fmt.Errorf("report %d: %w", i, err)
		}
		name := fmt.Sprintf("fault-%03d-%s-%s-%s.json", i, vr.Fault.Bench, vr.Fault.Kind, vr.Mech)
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return err
		}
		written++
	}
	fmt.Printf("wrote %d violation report(s) to %s\n", written, dir)
	return nil
}
