// Command mi-bench regenerates the tables and figures of the paper's
// evaluation (Section 5 and Table 2) on the simulated substrate.
//
// Usage:
//
//	mi-bench -all            # everything
//	mi-bench -fig9           # runtime comparison SoftBound vs Low-Fat
//	mi-bench -fig10 -fig11   # optimization/metadata breakdowns
//	mi-bench -fig12 -fig13   # pipeline extension points
//	mi-bench -table2         # unsafe dereference percentages
//	mi-bench -elim           # Section 5.3 check elimination statistics
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/harness"
)

func main() {
	var (
		all    = flag.Bool("all", false, "run every experiment")
		fig9   = flag.Bool("fig9", false, "Figure 9: SB vs LF runtime")
		fig10  = flag.Bool("fig10", false, "Figure 10: SoftBound breakdown")
		fig11  = flag.Bool("fig11", false, "Figure 11: Low-Fat breakdown")
		fig12  = flag.Bool("fig12", false, "Figure 12: SoftBound extension points")
		fig13  = flag.Bool("fig13", false, "Figure 13: Low-Fat extension points")
		table2 = flag.Bool("table2", false, "Table 2: unsafe dereferences")
		elim   = flag.Bool("elim", false, "Section 5.3: check elimination")
		ablate = flag.Bool("ablation", false, "ablation: Low-Fat escape-check elimination (beyond the paper)")
	)
	flag.Parse()

	if !(*all || *fig9 || *fig10 || *fig11 || *fig12 || *fig13 || *table2 || *elim || *ablate) {
		flag.Usage()
		os.Exit(2)
	}

	r := harness.NewRunner()
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "mi-bench: %v\n", err)
		os.Exit(1)
	}
	figure := func(enabled bool, gen func() (*harness.Figure, error)) {
		if !enabled && !*all {
			return
		}
		fig, err := gen()
		if err != nil {
			fail(err)
		}
		fmt.Println(fig.Render())
	}

	if *table2 || *all {
		rows, err := r.Table2()
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.RenderTable2(rows))
	}
	figure(*fig9, r.Figure9)
	figure(*fig10, r.Figure10)
	figure(*fig11, r.Figure11)
	figure(*fig12, r.Figure12)
	figure(*fig13, r.Figure13)
	figure(*ablate, r.AblationInvariantElim)
	if *elim || *all {
		for _, mech := range []core.Mech{core.MechSoftBound, core.MechLowFat} {
			rows, err := r.EliminationStats(mech)
			if err != nil {
				fail(err)
			}
			fmt.Println(harness.RenderElimination(rows))
		}
	}
}
