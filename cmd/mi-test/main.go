// Command mi-test runs the artifact-style functional suite (Appendix A.5 of
// the paper): hundreds of generated C programs with and without spatial
// safety violations, each executed under SoftBound and Low-Fat Pointers and
// validated against the mechanisms' documented guarantees.
//
// Usage:
//
//	mi-test          # summary matrix
//	mi-test -v       # per-case outcomes
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/functest"
)

func main() {
	verbose := flag.Bool("v", false, "print every case")
	flag.Parse()

	cases := functest.Generate()
	mechs := []core.Mech{core.MechSoftBound, core.MechLowFat}

	type cell struct{ pass, fail int }
	matrix := map[string]*cell{}
	key := func(mech core.Mech, kind string) string { return mech.String() + "/" + kind }

	failures := 0
	for i := range cases {
		c := &cases[i]
		for _, mech := range mechs {
			out, err := functest.Run(c, mech)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mi-test: %v\n", err)
				os.Exit(1)
			}
			want := c.ExpectDetected(mech)
			k := key(mech, c.Kind.String())
			if matrix[k] == nil {
				matrix[k] = &cell{}
			}
			ok := out.Detected == want
			if ok {
				matrix[k].pass++
			} else {
				matrix[k].fail++
				failures++
			}
			if *verbose || !ok {
				status := "ok"
				if !ok {
					status = "MISMATCH"
				}
				fmt.Printf("%-40s %-10s detected=%-5t expected=%-5t %s\n",
					c.Name(), mech, out.Detected, want, status)
			}
		}
	}

	fmt.Printf("\n%-22s%8s%8s\n", "mechanism/storage", "pass", "fail")
	for _, mech := range mechs {
		for _, kind := range []string{"heap", "stack", "global"} {
			c := matrix[key(mech, kind)]
			fmt.Printf("%-22s%8d%8d\n", key(mech, kind), c.pass, c.fail)
		}
	}
	fmt.Printf("\n%d cases x %d mechanisms, %d mismatches\n", len(cases), len(mechs), failures)
	if failures > 0 {
		os.Exit(1)
	}
}
