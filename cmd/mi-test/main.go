// Command mi-test runs the artifact-style functional suite (Appendix A.5 of
// the paper): hundreds of generated C programs with and without spatial
// safety violations, each executed under SoftBound and Low-Fat Pointers and
// validated against the mechanisms' documented guarantees, followed by a
// small fixed-seed fault-injection campaign checking the detection matrix
// and the paper's predicted blind spots.
//
// Usage:
//
//	mi-test          # summary matrix
//	mi-test -v       # per-case outcomes
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/functest"
	"repro/internal/spec"
	"repro/internal/version"
)

func main() {
	verbose := flag.Bool("v", false, "print every case")
	engineName := flag.String("engine", "bytecode", "execution engine: tree (reference interpreter) or bytecode")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Printf("mi-test %s\n", version.String())
		return
	}

	engine, err := bytecode.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mi-test: %v\n", err)
		os.Exit(2)
	}

	cases := functest.Generate()
	mechs := []core.Mech{core.MechSoftBound, core.MechLowFat}

	type cell struct{ pass, fail int }
	matrix := map[string]*cell{}
	key := func(mech core.Mech, kind string) string { return mech.String() + "/" + kind }

	failures := 0
	for i := range cases {
		c := &cases[i]
		for _, mech := range mechs {
			out, err := functest.RunEngine(c, mech, engine)
			k := key(mech, c.Kind.String())
			if matrix[k] == nil {
				matrix[k] = &cell{}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "mi-test: %s under %s: %v\n", c.Name(), mech, err)
				matrix[k].fail++
				failures++
				continue
			}
			want := c.ExpectDetected(mech)
			ok := out.Detected == want
			if ok {
				matrix[k].pass++
			} else {
				matrix[k].fail++
				failures++
			}
			if *verbose || !ok {
				status := "ok"
				if !ok {
					status = "MISMATCH"
				}
				fmt.Printf("%-40s %-10s detected=%-5t expected=%-5t %s\n",
					c.Name(), mech, out.Detected, want, status)
			}
		}
	}

	fmt.Printf("\n%-22s%8s%8s\n", "mechanism/storage", "pass", "fail")
	for _, mech := range mechs {
		for _, kind := range []string{"heap", "stack", "global"} {
			c := matrix[key(mech, kind)]
			fmt.Printf("%-22s%8d%8d\n", key(mech, kind), c.pass, c.fail)
		}
	}
	fmt.Printf("\n%d cases x %d mechanisms, %d mismatches\n", len(cases), len(mechs), failures)

	failures += faultMatrix(engine)
	if failures > 0 {
		os.Exit(1)
	}
}

// faultMatrix runs a small fixed-seed fault-injection campaign and checks
// the detection matrix against the paper's security analysis, including
// both predicted blind spots. It returns the number of failures.
func faultMatrix(engine bytecode.EngineKind) int {
	var benches []*spec.Benchmark
	for _, name := range []string{"462libquantum", "300twolf"} {
		if b := spec.ByName(name); b != nil {
			benches = append(benches, b)
		}
	}
	rep := faultinject.Run(faultinject.Options{Seed: 1, Benches: benches, Engine: engine})
	fmt.Printf("\nfault-injection matrix (seed %d):\n%s\n", rep.Seed, rep.Render())

	attributed, attributable := 0, 0
	for _, vr := range rep.Results {
		if vr.Outcome == faultinject.OutDetected && !vr.Fault.Benign && vr.ExpectedAlloc != 0 {
			attributable++
			if vr.Attributed {
				attributed++
			}
		}
	}
	fmt.Printf("attribution: %d/%d detected faults named their allocation site in the violation report\n",
		attributed, attributable)

	failures := len(rep.Failures) + len(rep.Unexpected())
	sb, lf := core.MechSoftBound, core.MechLowFat
	if c := rep.Cell(lf, faultinject.GEPPadding); c.Missed == 0 {
		fmt.Println("FAIL: low-fat in-padding blind spot not reproduced")
		failures++
	}
	if c := rep.Cell(sb, faultinject.ObfStaleUpdate); c.Missed == 0 {
		fmt.Println("FAIL: softbound stale-metadata blind spot not reproduced")
		failures++
	}
	if failures == 0 {
		fmt.Println("fault matrix: all outcomes match the paper's security analysis")
	}
	return failures
}
