package repro

import (
	"testing"
	"time"

	"repro/internal/bytecode"
	"repro/internal/spec"
	"repro/internal/vm"
)

// TestProfiledCompilerGate is the observability neutrality gate for the
// compiler tier: site profiling must not disqualify the native tier (the
// generated code carries batched site-counter commits instead), so a
// profiled compiler campaign on the smoke set must stay within 2x of the
// unprofiled one. Both sides are warmed first (compilation, quickening and
// the plugin builds — the profiled programs hash to different plugins — are
// one-time costs) and take the best of three runs. Skipped under -short.
func TestProfiledCompilerGate(t *testing.T) {
	if testing.Short() {
		t.Skip("perf gate needs a quiet machine")
	}
	const gate = 2.0
	b := &testing.B{}
	cells := prepareEngineCells(b, []*spec.Benchmark{spec.All()[0]})

	run := func(profile bool) time.Duration {
		t.Helper()
		var best time.Duration
		for rep := 0; rep < 4; rep++ {
			var d time.Duration
			for _, c := range cells {
				opts := c.opts
				opts.SiteProfile = profile
				machine, err := vm.New(c.m, opts)
				if err != nil {
					t.Fatal(err)
				}
				start := time.Now()
				if _, rerr := bytecode.RunOn(bytecode.EngineCompiler, machine, c.key); rerr != nil {
					t.Fatalf("%s: %v", c.key, rerr)
				}
				d += time.Since(start)
			}
			if rep == 0 {
				continue // warm-up: compile, quicken, build native plugins
			}
			if best == 0 || d < best {
				best = d
			}
		}
		return best
	}

	plain := run(false)
	rows0, _ := bytecode.TierStats()
	entries0 := nativeEntries(rows0)
	failures0 := bytecode.NativeStats().Failures
	profiled := run(true)
	rows1, _ := bytecode.TierStats()

	ratio := float64(profiled) / float64(plain)
	t.Logf("smoke set: unprofiled=%v profiled=%v ratio=%.2fx (gate %.1fx)", plain, profiled, ratio, gate)
	if ratio >= gate {
		t.Fatalf("profiled compiler campaign %.2fx of unprofiled, gate is %.1fx (unprofiled=%v profiled=%v)",
			ratio, gate, plain, profiled)
	}
	// The gate only means something if the profiled side actually ran native
	// code — otherwise it compares two interpreter runs.
	if !bytecode.NativeAvailable() || bytecode.NativeStats().Failures > failures0 {
		t.Log("native tier unavailable or builds failed; gate compared interpreter runs only")
		return
	}
	if d := nativeEntries(rows1) - entries0; d == 0 {
		t.Error("profiled compiler runs never entered native code; the gate did not exercise profiled native execution")
	}
}

// nativeEntries sums native-code entries across the tier-attribution rows.
func nativeEntries(rows []bytecode.TierFnStats) uint64 {
	var n uint64
	for _, r := range rows {
		n += r.NativeEntries
	}
	return n
}
