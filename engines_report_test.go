package repro

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/bytecode"
	"repro/internal/spec"
	"repro/internal/vm"
)

// This file regenerates BENCH_ENGINES.json and BENCH_ENGINES.md: the
// per-benchmark engine comparison (tree / bytecode / compiler) that records
// the repo's performance trajectory in machine-readable form. It runs only
// when explicitly requested —
//
//	MI_GEN_BENCH=1 go test -run TestRegenerateBenchEngines -timeout 3600s .
//
// — because it executes the full standard campaign on all three engines on a
// quiet machine. While measuring it also cross-checks that every cell's full
// vm.Stats is bit-identical across engines, so the published speedups are
// guaranteed to compare equal simulated work.

type engineBenchRow struct {
	Name string `json:"name"`
	// Best-of-reps wall time per engine, nanoseconds, summed over the
	// benchmark's three campaign cells (baseline, SoftBound, Low-Fat).
	TreeNS     int64 `json:"tree_ns"`
	BytecodeNS int64 `json:"bytecode_ns"`
	CompilerNS int64 `json:"compiler_ns"`
	// SimInstrs is the summed vm.Stats.Instrs over the cells (identical
	// across engines by construction).
	SimInstrs uint64 `json:"sim_instrs"`

	BytecodeVsTree     float64 `json:"speedup_bytecode_vs_tree"`
	CompilerVsBytecode float64 `json:"speedup_compiler_vs_bytecode"`
	CompilerVsTree     float64 `json:"speedup_compiler_vs_tree"`
}

type engineBenchReport struct {
	Generated  string           `json:"generated"`
	GoVersion  string           `json:"go_version"`
	Reps       int              `json:"reps"`
	Benchmarks []engineBenchRow `json:"benchmarks"`
	Geomean    struct {
		BytecodeVsTree     float64 `json:"bytecode_vs_tree"`
		CompilerVsBytecode float64 `json:"compiler_vs_bytecode"`
		CompilerVsTree     float64 `json:"compiler_vs_tree"`
	} `json:"geomean"`
}

func TestRegenerateBenchEngines(t *testing.T) {
	if os.Getenv("MI_GEN_BENCH") == "" {
		t.Skip("set MI_GEN_BENCH=1 to regenerate BENCH_ENGINES.{json,md}")
	}
	const reps = 3
	engines := []bytecode.EngineKind{bytecode.EngineTree, bytecode.EngineBytecode, bytecode.EngineCompiler}

	rep := engineBenchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Reps:      reps,
	}
	b := &testing.B{}
	for _, sb := range spec.All() {
		cells := prepareEngineCells(b, []*spec.Benchmark{sb})
		row := engineBenchRow{Name: sb.Name}
		var refStats []vm.Stats
		for _, kind := range engines {
			n := reps
			if kind == bytecode.EngineTree {
				n = 1 // the tree engine is ~25x slower; one rep is plenty
			}
			var best time.Duration
			for r := 0; r < n; r++ {
				var d time.Duration
				var stats []vm.Stats
				for _, c := range cells {
					machine, err := vm.New(c.m, c.opts)
					if err != nil {
						t.Fatal(err)
					}
					start := time.Now()
					if _, rerr := bytecode.RunOn(kind, machine, c.key); rerr != nil {
						t.Fatalf("%s on %v: %v", c.key, kind, rerr)
					}
					d += time.Since(start)
					stats = append(stats, machine.Stats)
				}
				if refStats == nil {
					refStats = stats
				} else {
					for i := range stats {
						if stats[i] != refStats[i] {
							t.Fatalf("%s cell %s: engine %v produced different vm.Stats", sb.Name, cells[i].key, kind)
						}
					}
				}
				if best == 0 || d < best {
					best = d
				}
			}
			switch kind {
			case bytecode.EngineTree:
				row.TreeNS = best.Nanoseconds()
			case bytecode.EngineBytecode:
				row.BytecodeNS = best.Nanoseconds()
			case bytecode.EngineCompiler:
				row.CompilerNS = best.Nanoseconds()
			}
		}
		for _, s := range refStats {
			row.SimInstrs += s.Instrs
		}
		row.BytecodeVsTree = float64(row.TreeNS) / float64(row.BytecodeNS)
		row.CompilerVsBytecode = float64(row.BytecodeNS) / float64(row.CompilerNS)
		row.CompilerVsTree = float64(row.TreeNS) / float64(row.CompilerNS)
		rep.Benchmarks = append(rep.Benchmarks, row)
		t.Logf("%-14s tree=%-12v bytecode=%-12v compiler=%-12v compiler/bytecode=%.2fx",
			row.Name, time.Duration(row.TreeNS), time.Duration(row.BytecodeNS), time.Duration(row.CompilerNS), row.CompilerVsBytecode)
	}

	geo := func(pick func(engineBenchRow) float64) float64 {
		sum := 0.0
		for _, r := range rep.Benchmarks {
			sum += math.Log(pick(r))
		}
		return math.Exp(sum / float64(len(rep.Benchmarks)))
	}
	rep.Geomean.BytecodeVsTree = geo(func(r engineBenchRow) float64 { return r.BytecodeVsTree })
	rep.Geomean.CompilerVsBytecode = geo(func(r engineBenchRow) float64 { return r.CompilerVsBytecode })
	rep.Geomean.CompilerVsTree = geo(func(r engineBenchRow) float64 { return r.CompilerVsTree })

	js, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_ENGINES.json", append(js, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_ENGINES.md", []byte(formatBenchEnginesMD(&rep)), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("geomean: bytecode/tree=%.2fx compiler/bytecode=%.2fx compiler/tree=%.2fx",
		rep.Geomean.BytecodeVsTree, rep.Geomean.CompilerVsBytecode, rep.Geomean.CompilerVsTree)
}

func formatBenchEnginesMD(rep *engineBenchReport) string {
	var sb strings.Builder
	ms := func(ns int64) string { return fmt.Sprintf("%.1f ms", float64(ns)/1e6) }
	sb.WriteString("# Engine comparison — tree vs. bytecode vs. compiler\n\n")
	sb.WriteString("Per-benchmark wall time of the standard campaign cells (baseline,\n")
	sb.WriteString("SoftBound, Low-Fat) on each execution tier, measured on the container's\n")
	fmt.Fprintf(&sb, "single CPU (%s, best of %d runs; tree measured once). Machine-readable\n", rep.GoVersion, rep.Reps)
	sb.WriteString("copy: BENCH_ENGINES.json. Regenerate with:\n\n")
	sb.WriteString("```sh\nMI_GEN_BENCH=1 go test -run TestRegenerateBenchEngines -timeout 3600s .\n```\n\n")
	sb.WriteString("| Benchmark | tree | bytecode | compiler | bytecode/tree | compiler/bytecode | compiler/tree |\n")
	sb.WriteString("|---|---|---|---|---|---|---|\n")
	for _, r := range rep.Benchmarks {
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %.2fx | %.2fx | %.2fx |\n",
			r.Name, ms(r.TreeNS), ms(r.BytecodeNS), ms(r.CompilerNS),
			r.BytecodeVsTree, r.CompilerVsBytecode, r.CompilerVsTree)
	}
	fmt.Fprintf(&sb, "| **geomean** | | | | **%.2fx** | **%.2fx** | **%.2fx** |\n",
		rep.Geomean.BytecodeVsTree, rep.Geomean.CompilerVsBytecode, rep.Geomean.CompilerVsTree)
	sb.WriteString("\nThe compiler tier adds three dispatch-elimination layers on top of the\n")
	sb.WriteString("register bytecode: mined superinstruction pairs and superblock traces\n")
	sb.WriteString("executed by fused handlers with batched accounting, in-place opcode\n")
	sb.WriteString("quickening (width/mechanism-specialized memory and GEP ops), and — for\n")
	sb.WriteString("hot code — whole functions lowered to generated Go compiled as a native\n")
	sb.WriteString("plugin (`internal/bytecode/native_gen.go`), where registers are locals,\n")
	sb.WriteString("branches are gotos and statistics commit in per-block batches.\n\n")
	sb.WriteString("Every cell's full `vm.Stats` is asserted bit-identical across the three\n")
	sb.WriteString("engines while these numbers are measured (the generator fails otherwise),\n")
	sb.WriteString("so the speedups compare identical simulated work; exit codes, outputs,\n")
	sb.WriteString("verdicts and site profiles are covered by the differential suite in\n")
	sb.WriteString("`internal/bytecode/diff_test.go`.\n")
	return sb.String()
}
