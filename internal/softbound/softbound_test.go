package softbound

import (
	"testing"
	"testing/quick"
)

func TestBoundsCheck(t *testing.T) {
	b := Bounds{Base: 1000, Bound: 1064}
	cases := []struct {
		ptr, width uint64
		ok         bool
	}{
		{1000, 8, true},
		{1056, 8, true},
		{1057, 8, false}, // crosses the bound
		{1063, 1, true},
		{1064, 1, false}, // one past the end
		{999, 1, false},  // underflow
		{1000, 64, true},
		{1000, 65, false},
	}
	for _, c := range cases {
		if got := b.Check(c.ptr, c.width); got != c.ok {
			t.Errorf("Check(%d, %d) = %t, want %t", c.ptr, c.width, got, c.ok)
		}
	}
}

func TestSentinelBounds(t *testing.T) {
	if !WideBounds.IsWide() || WideBounds.IsNull() {
		t.Error("wide sentinel misclassified")
	}
	if !NullBounds.IsNull() || NullBounds.IsWide() {
		t.Error("null sentinel misclassified")
	}
	if NullBounds.Check(0x1000, 1) {
		t.Error("null bounds admit an access")
	}
	if !WideBounds.Check(0xdeadbeef, 4096) {
		t.Error("wide bounds reject an access")
	}
}

func TestCheckOverflowWrap(t *testing.T) {
	// ptr+width overflowing uint64 must not pass the check.
	b := Bounds{Base: 0, Bound: ^uint64(0)}
	if b.Check(^uint64(0)-1, 8) {
		t.Error("wrapping access accepted")
	}
}

func TestTrieStoreLookup(t *testing.T) {
	tr := NewTrie()
	addr := uint64(0x5000_0000_0000)
	want := Bounds{Base: 0x1000, Bound: 0x2000}
	tr.Store(addr, want)
	got, ok := tr.Lookup(addr)
	if !ok || got != want {
		t.Errorf("Lookup = %+v, %t", got, ok)
	}
	// A different slot misses.
	if _, ok := tr.Lookup(addr + 8); ok {
		t.Error("adjacent slot unexpectedly hit")
	}
	if tr.Misses != 1 || tr.Lookups != 2 || tr.Stores != 1 {
		t.Errorf("stats: %d lookups, %d stores, %d misses", tr.Lookups, tr.Stores, tr.Misses)
	}
}

func TestTrieSlotGranularity(t *testing.T) {
	tr := NewTrie()
	addr := uint64(0x5000_0000_0000)
	tr.Store(addr, Bounds{Base: 1, Bound: 2})
	// Metadata is per 8-byte slot: an unaligned address within the slot
	// maps to the same entry (byte-granular tracking is not possible).
	got, ok := tr.Lookup(addr + 3)
	if !ok || got.Base != 1 {
		t.Error("intra-slot lookup missed")
	}
}

func TestTrieInvalidate(t *testing.T) {
	tr := NewTrie()
	addr := uint64(0x5000_0000_0000)
	tr.Store(addr, Bounds{Base: 1, Bound: 2})
	tr.Invalidate(addr)
	if _, ok := tr.Lookup(addr); ok {
		t.Error("invalidated slot still hits")
	}
	tr.Store(addr, Bounds{Base: 1, Bound: 2})
	tr.Store(addr+16, Bounds{Base: 3, Bound: 4})
	tr.InvalidateRange(addr, 24)
	if _, ok := tr.Lookup(addr); ok {
		t.Error("range invalidation missed first slot")
	}
	if _, ok := tr.Lookup(addr + 16); ok {
		t.Error("range invalidation missed last slot")
	}
}

func TestTrieCopyRange(t *testing.T) {
	tr := NewTrie()
	src := uint64(0x5000_0000_0000)
	dst := uint64(0x6000_0000_0000)
	b1 := Bounds{Base: 0x10, Bound: 0x20}
	b2 := Bounds{Base: 0x30, Bound: 0x40}
	tr.Store(src, b1)
	tr.Store(src+8, b2)
	tr.Store(dst+16, Bounds{Base: 0x99, Bound: 0x9A}) // stale dest metadata

	tr.CopyRange(dst, src, 24)

	if got, ok := tr.Lookup(dst); !ok || got != b1 {
		t.Errorf("slot 0 = %+v, %t", got, ok)
	}
	if got, ok := tr.Lookup(dst + 8); !ok || got != b2 {
		t.Errorf("slot 1 = %+v, %t", got, ok)
	}
	// The third slot's source has no metadata: stale dest entry must go.
	if _, ok := tr.Lookup(dst + 16); ok {
		t.Error("stale destination metadata survived the copy")
	}
}

func TestTrieCopyRangeUnaligned(t *testing.T) {
	tr := NewTrie()
	src := uint64(0x5000_0000_0000)
	tr.Store(src, Bounds{Base: 0x10, Bound: 0x20})
	// A byte-wise (unaligned) copy cannot transport pointer metadata: the
	// destination slots must not inherit bounds.
	dst := uint64(0x6000_0000_0003)
	tr.Store(dst&^uint64(7), Bounds{Base: 0x77, Bound: 0x78})
	tr.CopyRange(dst, src, 16)
	if got, _ := tr.Lookup(dst); got.Base == 0x10 {
		t.Error("unaligned copy transported metadata")
	}
}

// Property: the trie behaves like a map keyed by 8-byte slots.
func TestTrieMapEquivalenceProperty(t *testing.T) {
	tr := NewTrie()
	model := map[uint64]Bounds{}
	f := func(slotRaw uint16, base, bound uint32, del bool) bool {
		addr := 0x5000_0000_0000 + uint64(slotRaw)*8
		if del {
			tr.Invalidate(addr)
			delete(model, addr)
		} else {
			b := Bounds{Base: uint64(base), Bound: uint64(bound)}
			tr.Store(addr, b)
			model[addr] = b
		}
		got, ok := tr.Lookup(addr)
		want, wok := model[addr]
		return ok == wok && (!ok || got == want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestShadowStackArgsAndRet(t *testing.T) {
	ss := NewShadowStack(256)
	caller := Bounds{Base: 100, Bound: 200}
	ss.AllocateFrame(2)
	ss.SetArg(1, caller)
	ss.SetArg(2, Bounds{Base: 300, Bound: 400})
	if ss.Arg(1) != caller {
		t.Error("arg 1 wrong")
	}
	if ss.Arg(2).Base != 300 {
		t.Error("arg 2 wrong")
	}
	ss.SetRet(Bounds{Base: 7, Bound: 8})
	if ss.Ret().Base != 7 {
		t.Error("ret slot wrong")
	}
	ss.PopFrame()
	if ss.Depth() != 0 {
		t.Error("depth after pop")
	}
}

func TestShadowStackNesting(t *testing.T) {
	ss := NewShadowStack(256)
	ss.AllocateFrame(1)
	ss.SetArg(1, Bounds{Base: 1, Bound: 2})
	// Nested call must not clobber the outer frame.
	ss.AllocateFrame(1)
	ss.SetArg(1, Bounds{Base: 3, Bound: 4})
	if ss.Arg(1).Base != 3 {
		t.Error("inner frame arg wrong")
	}
	ss.PopFrame()
	if ss.Arg(1).Base != 1 {
		t.Error("outer frame clobbered by nested call")
	}
	ss.PopFrame()
}

// TestShadowStackStaleness documents the deliberate staleness semantics of
// Section 4.3: frames are not cleared on allocation, so a callee that never
// writes its return slot leaves whatever an earlier call stored there.
func TestShadowStackStaleness(t *testing.T) {
	ss := NewShadowStack(256)
	ss.AllocateFrame(0)
	ss.SetRet(Bounds{Base: 42, Bound: 43}) // instrumented callee
	ss.PopFrame()

	ss.AllocateFrame(0) // uninstrumented callee writes nothing
	if got := ss.Ret(); got.Base != 42 {
		t.Errorf("expected stale bounds from the previous call, got %+v", got)
	}
	ss.PopFrame()
}

// Property: a sequence of balanced frames always restores the previous
// frame's contents after popping.
func TestShadowStackBalanceProperty(t *testing.T) {
	ss := NewShadowStack(64)
	f := func(vals []uint32) bool {
		var stack []Bounds
		for _, v := range vals {
			if len(stack) > 0 && v%4 == 0 {
				// Pop and verify.
				want := stack[len(stack)-1]
				if ss.Arg(1) != want {
					return false
				}
				ss.PopFrame()
				stack = stack[:len(stack)-1]
				continue
			}
			b := Bounds{Base: uint64(v), Bound: uint64(v) + 10}
			ss.AllocateFrame(1)
			ss.SetArg(1, b)
			stack = append(stack, b)
			if len(stack) > 40 {
				return true // avoid exceeding capacity in this property
			}
		}
		for range stack {
			ss.PopFrame()
		}
		return ss.Depth() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
