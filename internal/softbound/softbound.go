// Package softbound implements the SoftBound runtime data structures
// (Nagarakatte et al., PLDI'09, with the data-structure refinements of the
// later CETS/SNAPL work the paper adopts): disjoint bounds metadata for
// in-memory pointers kept in a trie keyed by the pointer's location, and a
// shadow stack that communicates bounds across function calls. Figure 2 of
// the paper shows the check; Figure 6 shows the memcpy wrapper this package's
// wrapper registry models.
package softbound

// Bounds is a (base, bound) pair: the pointer may access [Base, Bound).
type Bounds struct {
	Base  uint64
	Bound uint64
}

// WideBounds allow access to the whole address space. They are used where
// SoftBound cannot know the real bounds but must not reject valid programs:
// size-zero external array declarations and integer-to-pointer casts under
// the -mi-sb-*-wide-* configuration flags (Sections 4.3, 4.4).
var WideBounds = Bounds{Base: 0, Bound: ^uint64(0)}

// NullBounds reject every access; dereferencing a pointer with null bounds
// reports a violation. They are the stricter alternative for inttoptr casts.
var NullBounds = Bounds{}

// IsWide reports whether b is the wide-bounds sentinel.
func (b Bounds) IsWide() bool { return b == WideBounds }

// IsNull reports whether b is the null-bounds sentinel.
func (b Bounds) IsNull() bool { return b == Bounds{} }

// Check validates an access of width bytes at ptr (Figure 2 of the paper):
//
//	ptr >= base && ptr + width <= bound
func (b Bounds) Check(ptr, width uint64) bool {
	return ptr >= b.Base && ptr+width <= b.Bound && ptr+width >= ptr
}

// trie parameters: the bottom level groups pointer-sized slots; the top
// level is the Go map. A real implementation uses a two-level table indexed
// by address bits (Nagarakatte 2012, ch. 3); the VM's cost model charges the
// equivalent two dependent loads per lookup regardless of this host-side
// representation.
const (
	slotShift  = 3 // metadata is keyed per 8-byte-aligned pointer slot
	leafBits   = 10
	leafSize   = 1 << leafBits
	leafMask   = leafSize - 1
	leafShift  = slotShift
	indexShift = leafShift + leafBits
)

type trieLeaf struct {
	bounds [leafSize]Bounds
	valid  [leafSize]bool
}

// Trie stores bounds metadata for pointers held in memory, keyed by the
// address the pointer value is stored at. Loading a pointer from memory
// loads its bounds from here; storing a pointer stores them (Table 1).
type Trie struct {
	leaves map[uint64]*trieLeaf
	// Lookups and Stores count runtime metadata operations.
	Lookups uint64
	Stores  uint64
	// Misses counts lookups for which no metadata was ever recorded; the
	// runtime returns NullBounds then, matching the behaviour that makes
	// uninstrumented pointer stores (e.g. the obfuscated swap of Figure 7)
	// produce stale or missing bounds.
	Misses uint64
}

// NewTrie returns an empty metadata trie.
func NewTrie() *Trie {
	return &Trie{leaves: make(map[uint64]*trieLeaf)}
}

func (t *Trie) slot(addr uint64) (uint64, uint64) {
	s := addr >> slotShift
	return s >> leafBits, s & leafMask
}

// Lookup returns the bounds recorded for the pointer stored at addr. The
// second result is false when no metadata exists (the returned bounds are
// then NullBounds).
func (t *Trie) Lookup(addr uint64) (Bounds, bool) {
	t.Lookups++
	hi, lo := t.slot(addr)
	leaf := t.leaves[hi]
	if leaf == nil || !leaf.valid[lo] {
		t.Misses++
		return NullBounds, false
	}
	return leaf.bounds[lo], true
}

// Store records bounds for the pointer stored at addr.
func (t *Trie) Store(addr uint64, b Bounds) {
	t.Stores++
	hi, lo := t.slot(addr)
	leaf := t.leaves[hi]
	if leaf == nil {
		leaf = &trieLeaf{}
		t.leaves[hi] = leaf
	}
	leaf.bounds[lo] = b
	leaf.valid[lo] = true
}

// Invalidate removes metadata for the slot containing addr. Storing a
// non-pointer value over a pointer slot must invalidate the old bounds;
// otherwise a later pointer load would see stale metadata.
func (t *Trie) Invalidate(addr uint64) {
	hi, lo := t.slot(addr)
	if leaf := t.leaves[hi]; leaf != nil {
		leaf.valid[lo] = false
	}
}

// InvalidateRange removes metadata for all slots overlapping
// [addr, addr+n). Used by memset-style wrappers.
func (t *Trie) InvalidateRange(addr, n uint64) {
	if n == 0 {
		return
	}
	first := addr &^ uint64(1<<slotShift-1)
	for a := first; a < addr+n; a += 1 << slotShift {
		t.Invalidate(a)
	}
}

// CopyRange copies metadata for the pointer slots fully contained in
// [src, src+n) to the corresponding slots at dst. This is the
// copy_metadata of the memcpy wrapper (Figure 6). Slots in the destination
// whose source has no metadata are invalidated.
func (t *Trie) CopyRange(dst, src, n uint64) {
	if n == 0 {
		return
	}
	step := uint64(1) << slotShift
	// Only slot-aligned full-slot copies transport a pointer faithfully; a
	// partial copy destroys the pointer value anyway. Walk the slot-aligned
	// source addresses fully inside [src, src+n).
	start := (src + step - 1) &^ (step - 1)
	for sa := start; sa+step <= src+n; sa += step {
		da := dst + (sa - src)
		if da%step != 0 {
			// Destination not slot-aligned: the copied pointer cannot be
			// tracked; drop metadata for the touched slots.
			t.Invalidate(da)
			t.Invalidate(da + step)
			continue
		}
		if b, ok := t.Lookup(sa); ok {
			t.Store(da, b)
		} else {
			t.Invalidate(da)
		}
	}
}

// ShadowStack propagates bounds across calls. It is a flat array addressed
// relative to a stack pointer; frames are not cleared on allocation, so an
// uninstrumented callee leaves *stale* values in its return slot — exactly
// the failure mode Section 4.3 of the paper describes for external libraries.
type ShadowStack struct {
	slots []Bounds
	sp    int // index of the current frame base
	frame []int
	// Pushes and Pops count runtime operations for the cost model.
	Pushes uint64
	Pops   uint64
}

// NewShadowStack returns a shadow stack with the given capacity in entries.
func NewShadowStack(capacity int) *ShadowStack {
	return &ShadowStack{slots: make([]Bounds, capacity)}
}

// AllocateFrame opens a call frame with nArgs pointer-argument slots and one
// return slot (slot layout: [ret, arg1, arg2, ...], 1-based arg indexing like
// the lookup_bs(1) calls in Figure 6).
func (s *ShadowStack) AllocateFrame(nArgs int) {
	s.frame = append(s.frame, s.sp)
	s.sp += s.frameSize()
	need := s.sp + nArgs + 1
	for len(s.slots) < need {
		s.slots = append(s.slots, Bounds{})
	}
	s.Pushes++
}

// frameSize returns the size of the current frame. Frames are sized lazily:
// the caller knows nArgs; we conservatively keep a fixed maximum per frame.
func (s *ShadowStack) frameSize() int { return maxShadowArgs + 1 }

// maxShadowArgs bounds the number of pointer arguments communicated per call.
const maxShadowArgs = 15

// SetArg records the bounds of the i-th (1-based) pointer argument of the
// frame being set up by the caller.
func (s *ShadowStack) SetArg(i int, b Bounds) {
	s.slots[s.sp+i] = b
}

// Arg returns the bounds of the i-th (1-based) pointer argument of the
// current frame, as read by the callee. Reading a slot the caller never
// wrote yields stale data from a previous, deeper call — not an error.
func (s *ShadowStack) Arg(i int) Bounds {
	return s.slots[s.sp+i]
}

// SetRet records the bounds of the returned pointer (written by the callee).
func (s *ShadowStack) SetRet(b Bounds) { s.slots[s.sp] = b }

// Ret returns the bounds of the returned pointer (read by the caller after
// the call). If the callee was uninstrumented the slot holds stale bounds.
func (s *ShadowStack) Ret() Bounds { return s.slots[s.sp] }

// PopFrame closes the current frame.
func (s *ShadowStack) PopFrame() {
	n := len(s.frame)
	s.sp = s.frame[n-1]
	s.frame = s.frame[:n-1]
	s.Pops++
}

// Depth returns the current frame nesting depth.
func (s *ShadowStack) Depth() int { return len(s.frame) }
