package vm_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cc"
	"repro/internal/ir"
	"repro/internal/vm"
)

func compileAndRun(t *testing.T, src string, opts vm.Options) (*vm.VM, int32, error) {
	t.Helper()
	m, err := cc.Compile("t", cc.Source{Name: "t.c", Code: src})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	machine, err := vm.New(m, opts)
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	code, rerr := machine.Run()
	return machine, code, rerr
}

func TestExitCode(t *testing.T) {
	_, code, err := compileAndRun(t, `int main() { return 42; }`, vm.Options{})
	if err != nil || code != 42 {
		t.Errorf("code=%d err=%v", code, err)
	}
	_, code, err = compileAndRun(t, `int main() { exit(7); return 1; }`, vm.Options{})
	if err != nil || code != 7 {
		t.Errorf("exit(): code=%d err=%v", code, err)
	}
}

func TestNullDereferenceFaults(t *testing.T) {
	_, _, err := compileAndRun(t, `
int main() {
    int *p = NULL;
    return *p;
}`, vm.Options{})
	if err == nil || !strings.Contains(err.Error(), "segmentation fault") {
		t.Errorf("null deref: %v", err)
	}
}

func TestDivisionByZeroTraps(t *testing.T) {
	_, _, err := compileAndRun(t, `
int zero;
int main() { return 5 / zero; }`, vm.Options{})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("div by zero: %v", err)
	}
}

func TestAbortAndStepLimit(t *testing.T) {
	_, _, err := compileAndRun(t, `int main() { abort(); return 0; }`, vm.Options{})
	if err == nil || !strings.Contains(err.Error(), "abort") {
		t.Errorf("abort: %v", err)
	}
	_, _, err = compileAndRun(t, `int main() { while (1) {} return 0; }`, vm.Options{MaxSteps: 1000})
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("step limit: %v", err)
	}
}

func TestSignedUnsignedArithmetic(t *testing.T) {
	machine, _, err := compileAndRun(t, `
int main() {
    int a = -7;
    unsigned int b = 3;
    printf("%d %d %d\n", a / 3, a % 3, a >> 1);
    printf("%u\n", (unsigned int)a / b);
    printf("%d\n", (int)((unsigned int)a >> 1));
    long big = 1l << 40;
    printf("%ld\n", big + 5);
    return 0;
}`, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := "-2 -1 -4\n1431655763\n2147483644\n1099511627781\n"
	if machine.Output() != want {
		t.Errorf("output = %q, want %q", machine.Output(), want)
	}
}

func TestGlobalInitializers(t *testing.T) {
	machine, _, err := compileAndRun(t, `
struct pt { int x; int y; };
int scalars[4] = {10, 20, 30};
struct pt origin = {3, 4};
char msg[] = "hey";
char *ptr_to_msg = msg;
double dval = 2.5;
int main() {
    printf("%d %d %d %d\n", scalars[0], scalars[2], scalars[3], origin.y);
    printf("%s %c %.1f\n", ptr_to_msg, msg[1], dval);
    return 0;
}`, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := "10 30 0 4\nhey e 2.5\n"
	if machine.Output() != want {
		t.Errorf("output = %q, want %q", machine.Output(), want)
	}
}

func TestLibcStringFunctions(t *testing.T) {
	machine, _, err := compileAndRun(t, `
int main() {
    char a[32];
    char b[32];
    strcpy(a, "hello");
    strcat(a, " world");
    strncpy(b, a, 5);
    b[5] = 0;
    printf("%s|%s|%lu|%d|%d\n", a, b, strlen(a), strcmp(a, b) > 0, memcmp("abc", "abd", 3) < 0);
    printf("%s\n", strchr(a, 'w'));
    return 0;
}`, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := "hello world|hello|11|1|1\nworld\n"
	if machine.Output() != want {
		t.Errorf("output = %q, want %q", machine.Output(), want)
	}
}

func TestMallocFreeReallocCalloc(t *testing.T) {
	machine, _, err := compileAndRun(t, `
int main() {
    int *a = (int *)calloc(8, sizeof(int));
    int i, ok = 1;
    for (i = 0; i < 8; i++) ok = ok && (a[i] == 0);
    for (i = 0; i < 8; i++) a[i] = i;
    a = (int *)realloc(a, 16 * sizeof(int));
    for (i = 0; i < 8; i++) ok = ok && (a[i] == i);
    free(a);
    printf("%d\n", ok);
    return 0;
}`, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if machine.Output() != "1\n" {
		t.Errorf("output = %q", machine.Output())
	}
}

func TestDoubleFreeReported(t *testing.T) {
	_, _, err := compileAndRun(t, `
int main() {
    int *p = (int *)malloc(16);
    free(p);
    free(p);
    return 0;
}`, vm.Options{})
	if err == nil || !strings.Contains(err.Error(), "invalid free") {
		t.Errorf("double free: %v", err)
	}
}

func TestDeterministicRand(t *testing.T) {
	src := `
int main() {
    int i;
    long h = 0;
    srand(99);
    for (i = 0; i < 10; i++) h = h * 31 + rand() % 1000;
    printf("%ld\n", h);
    return 0;
}`
	m1, _, err := compileAndRun(t, src, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := compileAndRun(t, src, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Output() != m2.Output() {
		t.Errorf("rand not deterministic: %q vs %q", m1.Output(), m2.Output())
	}
}

func TestMathBuiltins(t *testing.T) {
	machine, _, err := compileAndRun(t, `
int main() {
    printf("%.3f %.3f %.3f %.3f\n", sqrt(16.0), fabs(-2.5), pow(2.0, 10.0), floor(3.7));
    return 0;
}`, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if machine.Output() != "4.000 2.500 1024.000 3.000\n" {
		t.Errorf("output = %q", machine.Output())
	}
}

func TestStackDiscipline(t *testing.T) {
	// Deep-ish recursion with arrays must reuse stack space after return.
	machine, _, err := compileAndRun(t, `
int work(int depth) {
    int buf[64];
    int i;
    for (i = 0; i < 64; i++) buf[i] = depth + i;
    if (depth == 0) return buf[63];
    return work(depth - 1) + buf[0];
}
int main() {
    int r1 = work(100);
    int r2 = work(100);
    printf("%d %d\n", r1, r2);
    return 0;
}`, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	parts := strings.Fields(machine.Output())
	if len(parts) != 2 || parts[0] != parts[1] {
		t.Errorf("stack not reused deterministically: %q", machine.Output())
	}
}

func TestCostAccountingMonotonic(t *testing.T) {
	short, _, err := compileAndRun(t, `int main() { int i, s = 0; for (i = 0; i < 10; i++) s += i; return 0; }`, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	long, _, err := compileAndRun(t, `int main() { int i, s = 0; for (i = 0; i < 10000; i++) s += i; return 0; }`, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if long.Stats.Cost <= short.Stats.Cost || long.Stats.Instrs <= short.Stats.Instrs {
		t.Error("cost accounting not monotone in work")
	}
}

func TestStatsCounters(t *testing.T) {
	machine, _, err := compileAndRun(t, `
int g[4];
int main() {
    g[0] = 1;
    g[1] = g[0] + 1;
    return 0;
}`, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if machine.Stats.Stores < 2 || machine.Stats.Loads < 1 {
		t.Errorf("loads=%d stores=%d", machine.Stats.Loads, machine.Stats.Stores)
	}
	if machine.Stats.Checks != 0 {
		t.Error("uninstrumented run executed checks")
	}
}

func TestLowFatVMOptionsPlaceAllocations(t *testing.T) {
	// The initializer gives g external (non-common) linkage, so it is
	// eligible for low-fat placement without the common-to-weak transform.
	m, err := cc.Compile("t", cc.Source{Name: "t.c", Code: `
int g[100] = {1};
int main() {
    int local[4];
    int *heap = (int *)malloc(100);
    local[0] = 1;
    g[0] = heap[0];
    free(heap);
    return g[0] + local[0];
}`})
	if err != nil {
		t.Fatal(err)
	}
	machine, err := vm.New(m, vm.Options{
		Mechanism:  vm.MechLowFat,
		LowFatHeap: true, LowFatStack: true, LowFatGlobals: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := machine.Run(); err != nil {
		t.Fatal(err)
	}
	if machine.LF.LowFatAllocs == 0 {
		t.Error("no low-fat allocations recorded")
	}
	gaddr := machine.GlobalAddr(m.Global("g"))
	if gaddr < 1<<35 || gaddr >= 28<<35 {
		t.Errorf("global not placed in a low-fat region (addr %#x)", gaddr)
	}
}

// Property: printf of random ints matches Go's rendering of the same value.
func TestPrintfIntProperty(t *testing.T) {
	f := func(v int32) bool {
		src := `int main() { printf("%d", ` + itoa(int64(v)) + `); return 0; }`
		m, err := cc.Compile("t", cc.Source{Name: "t.c", Code: src})
		if err != nil {
			return false
		}
		machine, err := vm.New(m, vm.Options{})
		if err != nil {
			return false
		}
		if _, err := machine.Run(); err != nil {
			return false
		}
		return machine.Output() == itoa(int64(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	var digits []byte
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	for u > 0 {
		digits = append([]byte{byte('0' + u%10)}, digits...)
		u /= 10
	}
	if neg {
		return "-" + string(digits)
	}
	return string(digits)
}

func TestCallByName(t *testing.T) {
	m, err := cc.Compile("t", cc.Source{Name: "t.c", Code: `
int twice(int x) { return 2 * x; }
int main() { return 0; }`})
	if err != nil {
		t.Fatal(err)
	}
	machine, err := vm.New(m, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := machine.CallByName("twice", 21)
	if err != nil || int32(r) != 42 {
		t.Errorf("CallByName = %d, %v", r, err)
	}
	if _, err := machine.CallByName("nope"); err == nil {
		t.Error("missing function not reported")
	}
}

func TestConstPtrEvaluation(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.FuncOf(ir.I32))
	b := ir.NewBuilder(f)
	blk := f.NewBlock("entry")
	b.SetBlock(blk)
	p := ir.NewConstPtr(ir.PointerTo(ir.I8), 0xABCDEF)
	i := b.PtrToInt(p)
	tr := b.Cast(ir.OpTrunc, i, ir.I32)
	b.Ret(tr)
	machine, err := vm.New(m, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	code, err := machine.Run()
	if err != nil || code != 0xABCDEF {
		t.Errorf("code=%#x err=%v", code, err)
	}
}
