package vm_test

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/vm"
)

var updateGolden = flag.Bool("update", false, "rewrite the forensics golden files")

// violate compiles and instruments src under the given mechanism, runs it
// with forensics enabled, and returns the violation report. Everything on
// this path is deterministic — the VM lays out memory identically run to run
// — which is what makes golden-file testing of the rendered report possible.
func violate(t *testing.T, mech core.Mech, src string) *vm.ViolationError {
	t.Helper()
	m, err := cc.Compile("g", cc.Source{Name: "g.c", Code: src})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cfg := core.PaperSoftBound()
	vopts := vm.Options{Mechanism: vm.MechSoftBound}
	if mech == core.MechLowFat {
		cfg = core.PaperLowFat()
		vopts = vm.Options{Mechanism: vm.MechLowFat, LowFatHeap: true, LowFatStack: true, LowFatGlobals: true}
	}
	var stats *core.Stats
	hook := func(mod *ir.Module) {
		s, ierr := core.Instrument(mod, cfg)
		if ierr != nil {
			t.Fatalf("instrument: %v", ierr)
		}
		stats = s
	}
	opt.RunPipeline(m, opt.EPVectorizerStart, hook, opt.PipelineOptions{Level: 3})
	vopts.Forensics = true
	vopts.Sites = stats.Sites
	vopts.AllocSites = stats.AllocSites
	machine, err := vm.New(m, vopts)
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	_, rerr := machine.Run()
	var viol *vm.ViolationError
	if !errors.As(rerr, &viol) {
		t.Fatalf("expected a violation, got %v", rerr)
	}
	if viol.Report == nil {
		t.Fatal("violation carried no forensic report")
	}
	return viol
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("rendered report diverges from %s (re-run with -update if intended):\n--- got ---\n%s--- want ---\n%s",
			path, got, want)
	}
}

// TestReportGoldenSoftBound pins the full rendered report for a SoftBound
// stack-buffer overflow: check-site and allocation-site provenance, bounds,
// distance past the object end, and the flight-recorder tail.
func TestReportGoldenSoftBound(t *testing.T) {
	viol := violate(t, core.MechSoftBound, `
int main() {
  int a[4];
  int i;
  for (i = 0; i <= 4; i++) a[i] = i; /* writes one past the end */
  return a[0];
}
`)
	if viol.Report.Alloc == nil || viol.Report.Alloc.Kind != "alloca" {
		t.Fatalf("expected attribution to a stack allocation, got %+v", viol.Report.Alloc)
	}
	checkGolden(t, "report_softbound.golden", viol.Report.Render())
}

// TestReportGoldenLowFat pins the rendered report for a Low-Fat heap overrun:
// the faulting pointer is attributed to the malloc site via the region map
// (no per-pointer metadata exists), and the report includes the allocator's
// region snapshot.
func TestReportGoldenLowFat(t *testing.T) {
	viol := violate(t, core.MechLowFat, `
int main() {
  int *a = (int *)malloc(4 * sizeof(int));
  int i;
  for (i = 0; i <= 1024; i++) a[i] = i;
  return a[0];
}
`)
	if viol.Report.Alloc == nil || viol.Report.Alloc.Kind != "heap" {
		t.Fatalf("expected attribution to a heap allocation, got %+v", viol.Report.Alloc)
	}
	if len(viol.Report.Regions) == 0 {
		t.Fatal("low-fat report carried no region snapshot")
	}
	checkGolden(t, "report_lowfat.golden", viol.Report.Render())
}
