package vm

import "repro/internal/ir"

// CostModel assigns an abstract cost to every executed operation. The
// absolute unit is arbitrary; figures report ratios of instrumented to
// baseline cost, mirroring how the paper normalizes execution time to the
// clang -O3 binary. Weights approximate x86-64 latencies: one unit per simple
// ALU operation, memory operations several units, division far more.
type CostModel struct {
	ALU    uint64
	Mul    uint64
	Div    uint64
	FAdd   uint64
	FMul   uint64
	FDiv   uint64
	Cmp    uint64
	Branch uint64
	Load   uint64
	Store  uint64
	Call   uint64
	Ret    uint64
	Select uint64
	Cast   uint64
	Alloca uint64

	// Instrumentation runtime operations. The values reflect the
	// instruction sequences of the real runtimes:
	//
	//   SBCheck:    Figure 2 — two comparisons, an or, a branch.
	//   LFBase:     mask computation from the pointer value — shift,
	//               table load, mask.
	//   LFCheck:    Figure 5 — region index shift, size-table load,
	//               subtractions, comparison, branch.
	//   SBMetaLoad: half of a trie lookup (base or bound) — the pair
	//               costs two dependent loads plus index arithmetic.
	//   SBMetaStore: trie store of a (base, bound) pair.
	//   SBShadowOp: one shadow-stack slot access.
	SBCheck     uint64
	LFBase      uint64
	LFCheck     uint64
	SBMetaLoad  uint64
	SBMetaStore uint64
	SBShadowOp  uint64

	// MallocBase is the fixed cost of an allocator call; MallocPerKiB adds
	// cost proportional to the allocation size (page provisioning).
	MallocBase   uint64
	MallocPerKiB uint64
	// MemPerByte is the per-byte cost of bulk memory intrinsics
	// (memcpy/memset/strcpy...), approximating 8-byte-wide copy loops.
	MemPerByte uint64
}

// DefaultCostModel returns the calibrated cost model used by all
// experiments.
func DefaultCostModel() *CostModel {
	return &CostModel{
		ALU: 1, Mul: 3, Div: 22,
		FAdd: 2, FMul: 3, FDiv: 14,
		Cmp: 1, Branch: 1,
		Load: 2, Store: 2,
		Call: 4, Ret: 2, Select: 1, Cast: 1, Alloca: 2,

		SBCheck:     3,
		LFBase:      3,
		LFCheck:     5,
		SBMetaLoad:  6,
		SBMetaStore: 11,
		SBShadowOp:  4,

		MallocBase: 40, MallocPerKiB: 2,
		MemPerByte: 1,
	}
}

// instrCost returns the cost of executing one regular IR instruction.
// Runtime-intrinsic calls are charged by their handlers instead of the
// generic call cost.
func (c *CostModel) instrCost(in *ir.Instr) uint64 {
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr:
		return c.ALU
	case ir.OpMul:
		return c.Mul
	case ir.OpSDiv, ir.OpUDiv, ir.OpSRem, ir.OpURem:
		return c.Div
	case ir.OpFAdd, ir.OpFSub:
		return c.FAdd
	case ir.OpFMul:
		return c.FMul
	case ir.OpFDiv:
		return c.FDiv
	case ir.OpICmp, ir.OpFCmp:
		return c.Cmp
	case ir.OpLoad:
		return c.Load
	case ir.OpStore:
		return c.Store
	case ir.OpBr, ir.OpCondBr:
		return c.Branch
	case ir.OpRet:
		return c.Ret
	case ir.OpSelect:
		return c.Select
	case ir.OpAlloca:
		return c.Alloca
	case ir.OpGEP:
		// Address arithmetic: one multiply-add per index, usually folded
		// into addressing modes; charge one ALU op per index.
		n := len(in.Operands) - 1
		if n < 1 {
			n = 1
		}
		return uint64(n) * c.ALU
	case ir.OpPhi:
		return 0 // resolved on edges; register-allocated in real code
	default:
		if in.IsCast() {
			if in.Op == ir.OpBitcast {
				return 0 // no machine code
			}
			return c.Cast
		}
		return c.ALU
	}
}
