package vm

import (
	"fmt"
	"math"

	"repro/internal/ir"
	"repro/internal/lowfat"
	"repro/internal/mem"
)

// Value representation: every runtime value is a uint64. Integers are stored
// zero-extended from their type width; i1 is 0 or 1; pointers are addresses;
// float values hold their IEEE-754 bit pattern (float32 in the low 32 bits).

func floatBits(ty *ir.Type, f float64) uint64 {
	if ty.Bits == 32 {
		return uint64(math.Float32bits(float32(f)))
	}
	return math.Float64bits(f)
}

func bitsToFloat(ty *ir.Type, b uint64) float64 {
	if ty.Bits == 32 {
		return float64(math.Float32frombits(uint32(b)))
	}
	return math.Float64frombits(b)
}

func signExtend(v uint64, bits int) int64 {
	if bits >= 64 {
		return int64(v)
	}
	v &= 1<<uint(bits) - 1
	if v&(1<<uint(bits-1)) != 0 {
		v |= ^uint64(0) << uint(bits)
	}
	return int64(v)
}

func truncate(v uint64, bits int) uint64 {
	if bits >= 64 {
		return v
	}
	return v & (1<<uint(bits) - 1)
}

// frame is one interpreter activation record.
type frame struct {
	fn   *ir.Func
	regs []uint64
	args []uint64
	// savedSP restores the linear stack on return.
	savedSP uint64
	// lfMark restores the low-fat stack mirror on return.
	lfMark lowfat.Mark
	// fallbackAllocas are oversized mirrored allocas that went to the
	// standard allocator and must be freed on return.
	fallbackAllocas []uint64
	// curBlock/curInstr track the execution position for backtraces.
	curBlock *ir.Block
	curInstr *ir.Instr
}

// val evaluates an operand in the context of a frame.
func (v *VM) val(fr *frame, x ir.Value) uint64 {
	switch y := x.(type) {
	case *ir.Instr:
		return fr.regs[y.ID()]
	case *ir.Param:
		return fr.args[y.Index]
	case *ir.ConstInt:
		return y.Unsigned()
	case *ir.ConstFloat:
		return floatBits(y.Ty, y.V)
	case *ir.ConstNull:
		return 0
	case *ir.ConstPtr:
		return y.Addr
	case *ir.Undef:
		return 0
	case *ir.Global:
		return v.globals[y]
	case *ir.Func:
		return v.funcAddrs[y]
	}
	// Unknown value kinds indicate a malformed module. The panic is typed so
	// that Run's recovery reports it as a structured error with the
	// backtrace of the instruction that referenced the value.
	panic(&RuntimeError{Msg: fmt.Sprintf("cannot evaluate operand of type %T", x), Trace: v.backtrace()})
}

// call runs a function to completion and returns its result.
func (v *VM) call(f *ir.Func, args []uint64) (uint64, error) {
	if f.IsDecl() {
		h, ok := v.externals[f.Name]
		if !ok {
			return 0, &RuntimeError{Msg: "call to unknown external @" + f.Name}
		}
		return h(v, nil, args)
	}
	fr := &frame{
		fn:      f,
		regs:    make([]uint64, f.MaxID()),
		args:    args,
		savedSP: v.sp,
	}
	if v.opts.LowFatStack {
		fr.lfMark = v.LF.Checkpoint()
	}
	v.frames = append(v.frames, fr)
	ret, err := v.exec(fr)
	v.frames = v.frames[:len(v.frames)-1]
	v.sp = fr.savedSP
	if v.opts.LowFatStack {
		v.LF.Release(fr.lfMark)
		for _, a := range fr.fallbackAllocas {
			_ = v.Std.Free(a)
		}
	}
	return ret, err
}

// exec interprets the body of a frame.
func (v *VM) exec(fr *frame) (uint64, error) {
	block := fr.fn.Entry()
	var prev *ir.Block
	cm := v.cost

	for {
		fr.curBlock = block
		// Phase 1: evaluate all phis of the block against prev
		// simultaneously (classic parallel-copy semantics).
		phis := block.Phis()
		if len(phis) > 0 {
			var buf [8]uint64
			vals := buf[:0]
			for _, phi := range phis {
				in := phi.PhiIncomingFor(prev)
				if in == nil {
					return 0, &RuntimeError{Msg: fmt.Sprintf("phi %s in @%s has no incoming for %%%s", phi.Ref(), fr.fn.Name, prev.Name)}
				}
				vals = append(vals, v.val(fr, in))
			}
			for i, phi := range phis {
				fr.regs[phi.ID()] = vals[i]
			}
			v.Stats.Instrs += uint64(len(phis))
		}

		for _, in := range block.Instrs[len(phis):] {
			fr.curInstr = in
			v.steps++
			if v.steps > v.maxSteps {
				return 0, &RuntimeError{Msg: "step limit exceeded", Trace: v.backtrace()}
			}
			v.intrCountdown--
			if v.intrCountdown == 0 {
				v.intrCountdown = InterruptStride
				if r := v.opts.Interrupt.Raised(); r != IntrNone {
					v.opts.Interrupt.MarkObserved()
					return 0, &InterruptError{Reason: r, Steps: v.steps, Trace: v.backtrace()}
				}
			}
			v.Stats.Instrs++
			v.Stats.Cost += cm.instrCost(in)
			if v.opts.CoverInstrs != nil {
				v.opts.CoverInstrs[in] = true
			}

			switch in.Op {
			case ir.OpAdd:
				fr.regs[in.ID()] = truncate(v.val(fr, in.Operands[0])+v.val(fr, in.Operands[1]), in.Ty.Bits)
			case ir.OpSub:
				fr.regs[in.ID()] = truncate(v.val(fr, in.Operands[0])-v.val(fr, in.Operands[1]), in.Ty.Bits)
			case ir.OpMul:
				fr.regs[in.ID()] = truncate(v.val(fr, in.Operands[0])*v.val(fr, in.Operands[1]), in.Ty.Bits)
			case ir.OpSDiv, ir.OpSRem:
				a := signExtend(v.val(fr, in.Operands[0]), in.Ty.Bits)
				b := signExtend(v.val(fr, in.Operands[1]), in.Ty.Bits)
				if b == 0 {
					return 0, &RuntimeError{Msg: "integer division by zero", Trace: v.backtrace()}
				}
				var r int64
				if in.Op == ir.OpSDiv {
					r = a / b
				} else {
					r = a % b
				}
				fr.regs[in.ID()] = truncate(uint64(r), in.Ty.Bits)
			case ir.OpUDiv, ir.OpURem:
				a := truncate(v.val(fr, in.Operands[0]), in.Ty.Bits)
				b := truncate(v.val(fr, in.Operands[1]), in.Ty.Bits)
				if b == 0 {
					return 0, &RuntimeError{Msg: "integer division by zero", Trace: v.backtrace()}
				}
				var r uint64
				if in.Op == ir.OpUDiv {
					r = a / b
				} else {
					r = a % b
				}
				fr.regs[in.ID()] = truncate(r, in.Ty.Bits)
			case ir.OpAnd:
				fr.regs[in.ID()] = truncate(v.val(fr, in.Operands[0])&v.val(fr, in.Operands[1]), in.Ty.Bits)
			case ir.OpOr:
				fr.regs[in.ID()] = truncate(v.val(fr, in.Operands[0])|v.val(fr, in.Operands[1]), in.Ty.Bits)
			case ir.OpXor:
				fr.regs[in.ID()] = truncate(v.val(fr, in.Operands[0])^v.val(fr, in.Operands[1]), in.Ty.Bits)
			case ir.OpShl:
				sh := v.val(fr, in.Operands[1]) & uint64(in.Ty.Bits-1)
				fr.regs[in.ID()] = truncate(v.val(fr, in.Operands[0])<<sh, in.Ty.Bits)
			case ir.OpLShr:
				sh := v.val(fr, in.Operands[1]) & uint64(in.Ty.Bits-1)
				fr.regs[in.ID()] = truncate(v.val(fr, in.Operands[0]), in.Ty.Bits) >> sh
			case ir.OpAShr:
				sh := v.val(fr, in.Operands[1]) & uint64(in.Ty.Bits-1)
				fr.regs[in.ID()] = truncate(uint64(signExtend(v.val(fr, in.Operands[0]), in.Ty.Bits)>>sh), in.Ty.Bits)

			case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
				a := bitsToFloat(in.Ty, v.val(fr, in.Operands[0]))
				b := bitsToFloat(in.Ty, v.val(fr, in.Operands[1]))
				var r float64
				switch in.Op {
				case ir.OpFAdd:
					r = a + b
				case ir.OpFSub:
					r = a - b
				case ir.OpFMul:
					r = a * b
				case ir.OpFDiv:
					r = a / b
				}
				fr.regs[in.ID()] = floatBits(in.Ty, r)

			case ir.OpICmp:
				fr.regs[in.ID()] = v.evalICmp(fr, in)
			case ir.OpFCmp:
				fr.regs[in.ID()] = v.evalFCmp(fr, in)

			case ir.OpTrunc:
				fr.regs[in.ID()] = truncate(v.val(fr, in.Operands[0]), in.Ty.Bits)
			case ir.OpZExt:
				fr.regs[in.ID()] = truncate(v.val(fr, in.Operands[0]), in.Operands[0].Type().Bits)
			case ir.OpSExt:
				fr.regs[in.ID()] = truncate(uint64(signExtend(v.val(fr, in.Operands[0]), in.Operands[0].Type().Bits)), in.Ty.Bits)
			case ir.OpFPTrunc, ir.OpFPExt:
				f := bitsToFloat(in.Operands[0].Type(), v.val(fr, in.Operands[0]))
				fr.regs[in.ID()] = floatBits(in.Ty, f)
			case ir.OpFPToSI:
				f := bitsToFloat(in.Operands[0].Type(), v.val(fr, in.Operands[0]))
				fr.regs[in.ID()] = truncate(uint64(int64(f)), in.Ty.Bits)
			case ir.OpSIToFP:
				i := signExtend(v.val(fr, in.Operands[0]), in.Operands[0].Type().Bits)
				fr.regs[in.ID()] = floatBits(in.Ty, float64(i))
			case ir.OpPtrToInt, ir.OpIntToPtr, ir.OpBitcast:
				fr.regs[in.ID()] = v.val(fr, in.Operands[0])

			case ir.OpAlloca:
				addr, err := v.execAlloca(fr, in)
				if err != nil {
					return 0, err
				}
				fr.regs[in.ID()] = addr

			case ir.OpLoad:
				addr := v.val(fr, in.Operands[0])
				width := in.Ty.Size()
				if in.Ty.IsAggregate() {
					return 0, &RuntimeError{Msg: "aggregate load not supported", Trace: v.backtrace()}
				}
				x, err := v.AS.Load(addr, width)
				if err != nil {
					return 0, err
				}
				v.Stats.Loads++
				fr.regs[in.ID()] = x

			case ir.OpStore:
				val := v.val(fr, in.Operands[0])
				addr := v.val(fr, in.Operands[1])
				vt := in.Operands[0].Type()
				if vt.IsAggregate() {
					return 0, &RuntimeError{Msg: "aggregate store not supported", Trace: v.backtrace()}
				}
				if err := v.AS.Store(addr, vt.Size(), val); err != nil {
					return 0, err
				}
				v.Stats.Stores++
				// A store of a non-pointer value over a tracked pointer
				// slot leaves stale metadata behind in real SoftBound: the
				// trie is keyed by location and only pointer stores update
				// it. We model exactly that by NOT touching the trie here;
				// the instrumentation inserts explicit metadata stores for
				// pointer-typed stores only (Section 4.4's failure mode).

			case ir.OpGEP:
				fr.regs[in.ID()] = v.evalGEP(fr, in)

			case ir.OpSelect:
				if v.val(fr, in.Operands[0]) != 0 {
					fr.regs[in.ID()] = v.val(fr, in.Operands[1])
				} else {
					fr.regs[in.ID()] = v.val(fr, in.Operands[2])
				}

			case ir.OpCall:
				callee := in.Callee()
				if callee == nil {
					return 0, &RuntimeError{Msg: "indirect call not supported", Trace: v.backtrace()}
				}
				args := in.Args()
				argv := make([]uint64, len(args))
				for i, a := range args {
					argv[i] = v.val(fr, a)
				}
				var ret uint64
				var err error
				if callee.IsDecl() {
					h, ok := v.externals[callee.Name]
					if !ok {
						return 0, &RuntimeError{Msg: "call to unknown external @" + callee.Name, Trace: v.backtrace()}
					}
					ret, err = h(v, in, argv)
				} else {
					v.Stats.Cost += cm.Call
					ret, err = v.call(callee, argv)
				}
				if err != nil {
					return 0, err
				}
				if in.Ty != ir.Void {
					fr.regs[in.ID()] = ret
				}

			case ir.OpRet:
				if len(in.Operands) == 0 {
					return 0, nil
				}
				return v.val(fr, in.Operands[0]), nil

			case ir.OpBr:
				prev = block
				block = in.Succs[0]
				goto nextBlock

			case ir.OpCondBr:
				prev = block
				if v.val(fr, in.Operands[0]) != 0 {
					block = in.Succs[0]
				} else {
					block = in.Succs[1]
				}
				goto nextBlock

			case ir.OpUnreachable:
				return 0, &RuntimeError{Msg: "reached unreachable in @" + fr.fn.Name, Trace: v.backtrace()}

			default:
				return 0, &RuntimeError{Msg: "unsupported op " + in.Op.String(), Trace: v.backtrace()}
			}
		}
		return 0, &RuntimeError{Msg: "block %" + block.Name + " fell through without terminator", Trace: v.backtrace()}

	nextBlock:
		continue
	}
}

func (v *VM) evalICmp(fr *frame, in *ir.Instr) uint64 {
	t := in.Operands[0].Type()
	bits := 64
	if t.IsInt() {
		bits = t.Bits
	}
	a := v.val(fr, in.Operands[0])
	b := v.val(fr, in.Operands[1])
	var r bool
	switch in.Pred {
	case ir.PredEQ:
		r = truncate(a, bits) == truncate(b, bits)
	case ir.PredNE:
		r = truncate(a, bits) != truncate(b, bits)
	case ir.PredSLT:
		r = signExtend(a, bits) < signExtend(b, bits)
	case ir.PredSLE:
		r = signExtend(a, bits) <= signExtend(b, bits)
	case ir.PredSGT:
		r = signExtend(a, bits) > signExtend(b, bits)
	case ir.PredSGE:
		r = signExtend(a, bits) >= signExtend(b, bits)
	case ir.PredULT:
		r = truncate(a, bits) < truncate(b, bits)
	case ir.PredULE:
		r = truncate(a, bits) <= truncate(b, bits)
	case ir.PredUGT:
		r = truncate(a, bits) > truncate(b, bits)
	case ir.PredUGE:
		r = truncate(a, bits) >= truncate(b, bits)
	}
	if r {
		return 1
	}
	return 0
}

func (v *VM) evalFCmp(fr *frame, in *ir.Instr) uint64 {
	t := in.Operands[0].Type()
	a := bitsToFloat(t, v.val(fr, in.Operands[0]))
	b := bitsToFloat(t, v.val(fr, in.Operands[1]))
	var r bool
	switch in.Pred {
	case ir.PredOEQ:
		r = a == b
	case ir.PredONE:
		r = a != b
	case ir.PredOLT:
		r = a < b
	case ir.PredOLE:
		r = a <= b
	case ir.PredOGT:
		r = a > b
	case ir.PredOGE:
		r = a >= b
	}
	if r {
		return 1
	}
	return 0
}

func (v *VM) evalGEP(fr *frame, in *ir.Instr) uint64 {
	addr := v.val(fr, in.Operands[0])
	ty := in.SrcTy
	for i, idxOp := range in.Operands[1:] {
		idx := signExtend(v.val(fr, idxOp), idxOp.Type().Bits)
		if i == 0 {
			addr += uint64(idx * int64(ty.Size()))
			continue
		}
		switch ty.Kind {
		case ir.ArrayKind:
			ty = ty.Elem
			addr += uint64(idx * int64(ty.Size()))
		case ir.StructKind:
			addr += uint64(ty.FieldOffset(int(idx)))
			ty = ty.Fields[idx]
		}
	}
	return addr
}

// execAlloca performs a stack allocation, via the linear stack or the
// low-fat stack mirror depending on configuration.
func (v *VM) execAlloca(fr *frame, in *ir.Instr) (uint64, error) {
	count := uint64(1)
	if len(in.Operands) > 0 {
		count = v.val(fr, in.Operands[0])
	}
	size := uint64(in.AllocTy.Size()) * count
	if size == 0 {
		size = 1
	}
	if v.opts.LowFatStack {
		addr, lowFat, err := v.LF.StackAlloc(size)
		if err != nil {
			return 0, err
		}
		if !lowFat {
			fr.fallbackAllocas = append(fr.fallbackAllocas, addr)
		}
		if v.allocs != nil {
			v.TrackAlloc(addr, size, in.AllocSite)
		}
		return addr, nil
	}
	align := uint64(in.AllocTy.Align())
	if align < 8 {
		align = 8
	}
	nsp := (v.sp - size) &^ (align - 1)
	if nsp < mem.StackLimit {
		return 0, &RuntimeError{Msg: "stack overflow", Trace: v.backtrace()}
	}
	v.sp = nsp
	if v.allocs != nil {
		v.TrackAlloc(nsp, size, in.AllocSite)
	}
	return nsp, nil
}
