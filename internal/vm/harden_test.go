package vm_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/vm"
)

func compileModule(t *testing.T, src string) (*ir.Module, error) {
	t.Helper()
	return cc.Compile("t", cc.Source{Name: "t.c", Code: src})
}

// unknownValue is an operand kind the interpreter has no case for.
type unknownValue struct{}

func (unknownValue) Type() *ir.Type { return ir.I64 }
func (unknownValue) Ref() string    { return "<unknown>" }

// A module containing an operand the VM cannot evaluate must fail with a
// structured RuntimeError carrying an IR-level backtrace — not a raw Go
// panic that would take down a whole experiment campaign.
func TestMalformedModuleYieldsErrorNotPanic(t *testing.T) {
	m := ir.NewModule("malformed")
	f := m.NewFunc("main", ir.FuncOf(ir.I32))
	entry := f.NewBlock("entry")
	bld := ir.NewBuilder(f)
	bld.SetBlock(entry)
	slot := bld.Alloca(ir.I64)
	bld.Store(unknownValue{}, slot)
	bld.Ret(ir.NewInt(ir.I32, 0))

	machine, err := vm.New(m, vm.Options{})
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	_, rerr := machine.Run() // must not panic
	var re *vm.RuntimeError
	if !errors.As(rerr, &re) {
		t.Fatalf("want *vm.RuntimeError, got %T: %v", rerr, rerr)
	}
	if !strings.Contains(re.Msg, "cannot evaluate") {
		t.Errorf("unexpected message: %q", re.Msg)
	}
	if len(re.Trace) == 0 {
		t.Fatal("RuntimeError carries no backtrace")
	}
	if re.Trace[0].Func != "main" {
		t.Errorf("innermost frame is %q, want main", re.Trace[0].Func)
	}
}

// Runtime errors from ordinary traps carry the IR backtrace too.
func TestRuntimeErrorBacktrace(t *testing.T) {
	_, _, err := compileAndRun(t, `
int zero;
int helper(int x) { return x / zero; }
int main() { return helper(8); }`, vm.Options{})
	var re *vm.RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("want *vm.RuntimeError, got %T: %v", err, err)
	}
	if len(re.Trace) < 2 {
		t.Fatalf("want at least 2 frames, got %v", re.Trace)
	}
	if re.Trace[0].Func != "helper" || re.Trace[len(re.Trace)-1].Func != "main" {
		t.Errorf("unexpected trace order: %v", re.Trace)
	}
	if !strings.Contains(err.Error(), "at @helper") {
		t.Errorf("rendered error lacks frame: %v", err)
	}
}

// A program that materializes more memory than the budget allows fails with
// a structured BudgetError instead of exhausting the host.
func TestMemBudgetEnforced(t *testing.T) {
	src := `
int main() {
    char *p = malloc(1 << 24);
    long i;
    for (i = 0; i < (1 << 24); i += 4096) p[i] = 1;
    return p[0];
}`
	// Without a budget the program runs fine.
	_, code, err := compileAndRun(t, src, vm.Options{})
	if err != nil || code != 1 {
		t.Fatalf("unbudgeted run: code=%d err=%v", code, err)
	}
	_, _, err = compileAndRun(t, src, vm.Options{MemBudget: 1 << 21})
	var be *mem.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *mem.BudgetError, got %T: %v", err, err)
	}
	if be.Limit != 1<<21 {
		t.Errorf("budget error limit = %d, want %d", be.Limit, 1<<21)
	}
}

// Coverage tracking records executed instructions only.
func TestCoverInstrs(t *testing.T) {
	m, err := compileModule(t, `
int g;
int main() {
    if (g) { g = 2; } else { g = 3; }
    return 0;
}`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cover := make(map[*ir.Instr]bool)
	machine, err := vm.New(m, vm.Options{CoverInstrs: cover})
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	if _, rerr := machine.Run(); rerr != nil {
		t.Fatalf("run: %v", rerr)
	}
	total := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			total += len(b.Instrs)
		}
	}
	if len(cover) == 0 || len(cover) >= total {
		t.Errorf("covered %d of %d instructions; the dead branch should be missing", len(cover), total)
	}
}
