package vm

// Violation forensics: the recorded variants of the runtime check handlers.
// When Options.Forensics is on, the VM tracks live allocations under their
// static allocation-site IDs, feeds a flight recorder of recent memory
// events, and attaches a structured telemetry.ViolationReport to every
// ViolationError. The recorded operations reproduce the plain handlers'
// statistics, costs and violation texts exactly, so verdicts and Stats are
// bit-identical with forensics on or off — only the diagnostics differ.
//
// Both engines share everything here: the tree interpreter registers the
// recorded handlers (registerForensicsHandlers), the bytecode engine calls
// the same *Rec methods from its recorded opcodes. Event order and the
// engine-neutral "pc" (Stats.Instrs at record time) therefore agree across
// engines, which the differential report-equality tests assert.

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/lowfat"
	"repro/internal/rt"
	"repro/internal/softbound"
	"repro/internal/telemetry"
)

// allocRec is the runtime record of one live allocation.
type allocRec struct {
	site int32
	size uint64
}

// ForensicsEnabled reports whether the VM records forensics (engines use it
// to decide between plain and recorded code paths).
func (v *VM) ForensicsEnabled() bool { return v.allocs != nil }

// Flight returns the flight recorder (nil unless forensics is on).
func (v *VM) Flight() *telemetry.Flight { return v.flight }

// bumpSiteID attributes one execution to the given site ID. Nil-safe on
// every axis, so recorded operations call it unconditionally: profiling and
// forensics compose without dedicated Prof+Rec twins.
func (v *VM) bumpSiteID(id int32, wide bool, cost uint64) {
	if v.siteProf == nil || id <= 0 || int(id) >= len(v.siteProf) {
		return
	}
	sc := &v.siteProf[id]
	sc.Execs++
	sc.Cost += cost
	if wide {
		sc.Wide++
	}
}

// TrackAlloc records a new allocation (stack, heap or low-fat) under its
// allocation site. No-op when forensics is off.
func (v *VM) TrackAlloc(addr, size uint64, site int32) {
	if v.allocs == nil {
		return
	}
	v.allocs[addr] = allocRec{site: site, size: size}
	v.flight.Record(telemetry.Event{
		Instr: v.Stats.Instrs, Kind: telemetry.EvAlloc, Site: site, Addr: addr, Size: size,
	})
}

// TrackFree records a heap free. No-op when forensics is off.
func (v *VM) TrackFree(addr uint64) {
	if v.allocs == nil {
		return
	}
	delete(v.allocs, addr)
	v.flight.Record(telemetry.Event{Instr: v.Stats.Instrs, Kind: telemetry.EvFree, Addr: addr})
}

// recordCheck logs a passed check into the flight recorder.
func (v *VM) recordCheck(site int32, ptr uint64) {
	v.flight.Record(telemetry.Event{Instr: v.Stats.Instrs, Kind: telemetry.EvCheck, Site: site, Addr: ptr})
}

// findAlloc resolves the allocation a faulting pointer belongs to: first the
// check's witness base (exact for SoftBound and in-slot Low-Fat pointers),
// then — for Low-Fat out-of-bounds pointers whose witness base is wide or
// stale — the nearest region slot decoded from the pointer value itself.
func (v *VM) findAlloc(base, ptr uint64) (uint64, allocRec, bool) {
	if base != 0 {
		if rec, ok := v.allocs[base]; ok {
			return base, rec, true
		}
	}
	if lfb := lowfat.Base(ptr); lfb != 0 {
		if rec, ok := v.allocs[lfb]; ok {
			return lfb, rec, true
		}
	}
	return 0, allocRec{}, false
}

// violation builds a ViolationError with an attached report.
func (v *VM) violation(mech, kind string, ptr uint64, detail string, site int32, width, base, bound uint64) *ViolationError {
	viol := &ViolationError{Mechanism: mech, Kind: kind, Ptr: ptr, Detail: detail}
	v.attachReport(viol, site, width, base, bound)
	return viol
}

// attachReport synthesizes the structured report for a violation. All inputs
// are shared VM state, so the report is deterministic and engine-neutral.
func (v *VM) attachReport(viol *ViolationError, site int32, width, base, bound uint64) {
	if v.allocs == nil {
		return
	}
	rep := &telemetry.ViolationReport{
		Mechanism: viol.Mechanism,
		Kind:      viol.Kind,
		Ptr:       viol.Ptr,
		Detail:    viol.Detail,
		Access: telemetry.AccessInfo{
			Site: site, Width: int(width), Base: base, Bound: bound,
		},
		Events: v.flight.Events(),
	}
	if total := v.flight.Total(); total > uint64(len(rep.Events)) {
		rep.EventsDropped = total - uint64(len(rep.Events))
	}
	if s := v.opts.Sites.Get(site); s != nil {
		rep.Access.Kind = s.Kind
		rep.Access.Func = s.Func
		rep.Access.Loc = s.Loc.String()
		if rep.Access.Width == 0 {
			rep.Access.Width = s.Width
		}
	}
	if addr, rec, ok := v.findAlloc(base, viol.Ptr); ok {
		ai := &telemetry.AllocInfo{Site: rec.site, Base: addr, Size: rec.size}
		if s := v.opts.AllocSites.Get(rec.site); s != nil {
			ai.Kind, ai.Func, ai.Sym, ai.Loc = s.Kind, s.Func, s.Sym, s.Loc.String()
		}
		if lowfat.IsLowFat(addr) {
			ai.Slot = lowfat.AllocSize(lowfat.RegionIndex(addr))
		}
		switch {
		case viol.Ptr < addr:
			ai.Distance = -int64(addr - viol.Ptr)
		case viol.Ptr >= addr+rec.size:
			ai.Distance = int64(viol.Ptr-(addr+rec.size)) + 1
		}
		rep.Alloc = ai
	}
	if viol.Mechanism == "softbound" && v.Shadow != nil {
		rep.ShadowDepth = v.Shadow.Depth()
	}
	if viol.Mechanism == "lowfat" && v.LF != nil {
		for _, r := range v.LF.Snapshot() {
			rep.Regions = append(rep.Regions, telemetry.RegionState{
				Index: r.Index, SlotSize: r.SlotSize, Next: r.Next,
				StackNext: r.StackNext, FreeSlots: r.FreeSlots,
			})
		}
	}
	viol.Report = rep
}

// --- Recorded runtime operations (shared by both engines) ---

// SBCheckRec is the recorded SoftBound dereference check.
func (v *VM) SBCheckRec(site int32, ptr, width, base, bound uint64) error {
	v.Stats.Checks++
	v.Stats.Cost += v.cost.SBCheck
	b := softbound.Bounds{Base: base, Bound: bound}
	v.bumpSiteID(site, b.IsWide(), v.cost.SBCheck)
	if b.IsWide() {
		v.Stats.WideChecks++
		v.recordCheck(site, ptr)
		return nil
	}
	if !b.Check(ptr, width) {
		return v.violation("softbound", "deref", ptr,
			fmt.Sprintf("access of %d bytes outside bounds [%#x, %#x)", width, base, bound),
			site, width, base, bound)
	}
	v.recordCheck(site, ptr)
	return nil
}

// LFCheckRec is the recorded Low-Fat dereference check.
func (v *VM) LFCheckRec(site int32, ptr, width, base uint64) error {
	v.Stats.Checks++
	v.Stats.Cost += v.cost.LFCheck
	ok, wide := lowfat.Check(ptr, width, base)
	v.bumpSiteID(site, wide, v.cost.LFCheck)
	if wide {
		v.Stats.WideChecks++
		v.recordCheck(site, ptr)
		return nil
	}
	if !ok {
		return v.violation("lowfat", "deref", ptr,
			fmt.Sprintf("access of %d bytes outside object at base %#x (size %d)", width, base, lowfat.AllocSize(lowfat.RegionIndex(base))),
			site, width, base, 0)
	}
	v.recordCheck(site, ptr)
	return nil
}

// LFCheckInvRec is the recorded Low-Fat escape (invariant) check.
func (v *VM) LFCheckInvRec(site int32, ptr, base uint64) error {
	v.Stats.InvariantChecks++
	v.Stats.Cost += v.cost.LFCheck
	v.bumpSiteID(site, false, v.cost.LFCheck)
	ok, wide := lowfat.Check(ptr, 1, base)
	if wide {
		v.recordCheck(site, ptr)
		return nil
	}
	if !ok {
		return v.violation("lowfat", "invariant", ptr,
			fmt.Sprintf("escaping pointer is outside its object at base %#x (size %d)", base, lowfat.AllocSize(lowfat.RegionIndex(base))),
			site, 0, base, 0)
	}
	v.recordCheck(site, ptr)
	return nil
}

// SBStoreMDRec is the recorded SoftBound metadata store.
func (v *VM) SBStoreMDRec(site int32, addr, base, bound uint64) {
	v.Stats.MetaStores++
	v.Stats.Cost += v.cost.SBMetaStore
	v.bumpSiteID(site, false, v.cost.SBMetaStore)
	v.Trie.Store(addr, softbound.Bounds{Base: base, Bound: bound})
	v.flight.Record(telemetry.Event{
		Instr: v.Stats.Instrs, Kind: telemetry.EvMetaStore, Site: site, Addr: addr,
	})
}

// SBCheckRangeRec is the recorded hoisted SoftBound range check.
func (v *VM) SBCheckRangeRec(site int32, lo, hi, width, base, bound, nonempty uint64) error {
	wide, err := SBCheckRangeOp(&v.Stats, v.cost, lo, hi, width, base, bound, nonempty)
	v.bumpSiteID(site, wide, v.cost.SBCheck)
	if err != nil {
		if viol, ok := err.(*ViolationError); ok {
			v.attachReport(viol, site, width, base, bound)
		}
		return err
	}
	v.recordCheck(site, lo)
	return nil
}

// LFCheckRangeRec is the recorded hoisted Low-Fat range check.
func (v *VM) LFCheckRangeRec(site int32, lo, hi, width, base, nonempty uint64) error {
	wide, err := LFCheckRangeOp(&v.Stats, v.cost, lo, hi, width, base, nonempty)
	v.bumpSiteID(site, wide, v.cost.LFCheck)
	if err != nil {
		if viol, ok := err.(*ViolationError); ok {
			v.attachReport(viol, site, width, base, 0)
		}
		return err
	}
	v.recordCheck(site, lo)
	return nil
}

// siteOf extracts the check-site ID of a runtime call (nil-tolerant:
// top-level external invocations pass a nil instruction).
func siteOf(call *ir.Instr) int32 {
	if call == nil {
		return 0
	}
	return call.Site
}

// registerForensicsHandlers overrides the site-bearing runtime intrinsics
// with their recorded variants. Called after registerMIRuntime when
// Options.Forensics is set, so the plain handlers — the disabled path — stay
// byte-for-byte untouched.
func registerForensicsHandlers(v *VM) {
	v.RegisterExternal(rt.SBStoreMD, func(vm *VM, call *ir.Instr, args []uint64) (uint64, error) {
		vm.SBStoreMDRec(siteOf(call), args[0], args[1], args[2])
		return 0, nil
	})
	v.RegisterExternal(rt.SBCheck, func(vm *VM, call *ir.Instr, args []uint64) (uint64, error) {
		return 0, vm.SBCheckRec(siteOf(call), args[0], args[1], args[2], args[3])
	})
	v.RegisterExternal(rt.SBCheckRange, func(vm *VM, call *ir.Instr, args []uint64) (uint64, error) {
		return 0, vm.SBCheckRangeRec(siteOf(call), args[0], args[1], args[2], args[3], args[4], args[5])
	})
	v.RegisterExternal(rt.LFCheck, func(vm *VM, call *ir.Instr, args []uint64) (uint64, error) {
		return 0, vm.LFCheckRec(siteOf(call), args[0], args[1], args[2])
	})
	v.RegisterExternal(rt.LFCheckInv, func(vm *VM, call *ir.Instr, args []uint64) (uint64, error) {
		return 0, vm.LFCheckInvRec(siteOf(call), args[0], args[1])
	})
	v.RegisterExternal(rt.LFCheckRange, func(vm *VM, call *ir.Instr, args []uint64) (uint64, error) {
		return 0, vm.LFCheckRangeRec(siteOf(call), args[0], args[1], args[2], args[3], args[4])
	})
}
