package vm_test

import (
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/vm"
)

// The SoftBound library wrappers (Figure 6 of the paper) can check that the
// accessed allocations are large enough. The paper disables these wrapper
// checks for runtime comparability (Section 5.1.2); both behaviours are
// covered here.

const wrapperOverflowProg = `
int main() {
    char *dst = (char *)malloc(8);
    char *src = (char *)malloc(64);
    int i;
    for (i = 0; i < 64; i++) src[i] = (char)i;
    memcpy(dst, src, 32);          /* overflows dst inside the library */
    printf("%d\n", dst[3]);
    free(dst);
    free(src);
    return 0;
}`

func instrumentSB(t *testing.T, src string, vopts vm.Options) (*vm.VM, error) {
	t.Helper()
	m, err := cc.Compile("t", cc.Source{Name: "t.c", Code: src})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.PaperSoftBound()
	cfg.OptDominance = true
	opt.RunPipeline(m, opt.EPVectorizerStart, func(mod *ir.Module) {
		if _, ierr := core.Instrument(mod, cfg); ierr != nil {
			t.Fatal(ierr)
		}
	}, opt.PipelineOptions{Level: 3})
	machine, err := vm.New(m, vopts)
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := machine.Run()
	return machine, rerr
}

func TestWrapperChecksCatchLibcOverflow(t *testing.T) {
	opts := vm.Options{Mechanism: vm.MechSoftBound, SBCheckWrappers: true}
	_, err := instrumentSB(t, wrapperOverflowProg, opts)
	if err == nil {
		t.Fatal("wrapper check missed the memcpy overflow")
	}
	if !strings.Contains(err.Error(), "wrapper") {
		t.Errorf("expected a wrapper violation, got: %v", err)
	}
}

func TestWrapperChecksDisabledByDefault(t *testing.T) {
	// The paper's comparability configuration: wrappers maintain metadata
	// but do not check (Section 5.1.2); the overflow inside the library
	// goes unnoticed.
	opts := vm.Options{Mechanism: vm.MechSoftBound}
	machine, err := instrumentSB(t, wrapperOverflowProg, opts)
	if err != nil {
		t.Fatalf("disabled wrapper checks still reported: %v", err)
	}
	if machine.Output() != "3\n" {
		t.Errorf("output = %q", machine.Output())
	}
}

func TestWrapperCopiesMetadata(t *testing.T) {
	// memcpy of a pointer-containing struct transports trie metadata
	// (copy_metadata in Figure 6): the copied pointer stays dereferenceable
	// with correct bounds.
	src := `
struct box { int *p; };
int main() {
    int payload[4];
    struct box a;
    struct box b;
    payload[2] = 55;
    a.p = payload;
    memcpy(&b, &a, sizeof(struct box));
    printf("%d\n", b.p[2]);
    /* And the copied bounds are the REAL bounds: going past payload
     * through the copy must still be caught. */
    printf("%d\n", b.p[9]);
    return 0;
}`
	_, err := instrumentSB(t, src, vm.Options{Mechanism: vm.MechSoftBound})
	if err == nil {
		t.Fatal("out-of-bounds access through copied pointer not caught")
	}
	if !strings.Contains(err.Error(), "deref") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestMemsetInvalidatesMetadata(t *testing.T) {
	// Overwriting a stored pointer with memset destroys it; the metadata
	// must not survive, so a later load+deref is rejected rather than
	// silently allowed with stale bounds.
	src := `
int *slot;
int main() {
    int payload[4];
    slot = payload;
    memset(&slot, 0, sizeof(slot));
    if (slot != (int *)0) {
        printf("%d\n", slot[0]);
    } else {
        printf("null\n");
    }
    return 0;
}`
	machine, err := instrumentSB(t, src, vm.Options{Mechanism: vm.MechSoftBound})
	if err != nil {
		t.Fatalf("unexpected violation: %v", err)
	}
	if machine.Output() != "null\n" {
		t.Errorf("output = %q", machine.Output())
	}
}
