// Package vm executes the IR of internal/ir on a simulated 64-bit machine:
// a sparse address space (internal/mem), a standard and a low-fat allocator,
// a small C standard library, and the runtime sides of the SoftBound and
// Low-Fat Pointers instrumentations (trie, shadow stack, low-fat check
// functions).
//
// Besides producing program output, the VM charges every executed operation
// against a CostModel and collects the statistics the paper's evaluation
// needs: dynamic cost (the stand-in for execution time), access checks
// executed, and how many of them ran with wide bounds (Table 2).
package vm

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/ir"
	"repro/internal/lowfat"
	"repro/internal/mem"
	"repro/internal/softbound"
	"repro/internal/telemetry"
)

// Mechanism selects which instrumentation runtime the VM provisions.
type Mechanism int

// Mechanism values.
const (
	MechNone Mechanism = iota
	MechSoftBound
	MechLowFat
)

// String returns the mechanism name.
func (m Mechanism) String() string {
	switch m {
	case MechSoftBound:
		return "softbound"
	case MechLowFat:
		return "lowfat"
	}
	return "none"
}

// Options configure a VM instance.
type Options struct {
	// Mechanism provisions the matching runtime state and library-wrapper
	// behaviour.
	Mechanism Mechanism
	// LowFatHeap routes malloc/calloc/realloc through the low-fat
	// allocator. With Low-Fat Pointers this holds even for allocations
	// made by uninstrumented library code (Section 4.3).
	LowFatHeap bool
	// LowFatStack mirrors allocas into the low-fat regions.
	LowFatStack bool
	// LowFatGlobals places module globals into low-fat sections. Globals
	// with common linkage are only placed low-fat after the
	// common-to-weak-linkage transformation (Appendix A.6).
	LowFatGlobals bool
	// SBCheckWrappers makes the SoftBound library wrappers check that the
	// accessed allocations are large enough (Figure 6). The paper disables
	// these checks for runtime comparability (Section 5.1.2).
	SBCheckWrappers bool
	// Cost overrides the default cost model.
	Cost *CostModel
	// SiteProfile enables per-check-site execution counters: every executed
	// check/metadata operation with a nonzero ir.Instr.Site is attributed to
	// its site (see internal/telemetry). Off by default; when disabled the
	// engines pay nothing for it.
	SiteProfile bool
	// Stdout receives program output; defaults to an internal buffer
	// readable via Output.
	Stdout io.Writer
	// MaxSteps aborts runaway programs (0 means the default of 2^34).
	MaxSteps uint64
	// Interrupt, when non-nil, is polled on the step-count path (every
	// interruptStride instructions): a raised flag stops the run with an
	// InterruptError. Supervisors use it for wall-clock deadlines,
	// campaign cancellation, and chaos-mode kills. Nil costs one counter
	// decrement and branch per dispatch.
	Interrupt *InterruptFlag
	// MemBudget, when nonzero, caps the bytes of address space the program
	// may materialize; exceeding it fails the run with a mem.BudgetError
	// instead of exhausting the host.
	MemBudget uint64
	// CoverInstrs, when non-nil, receives every executed instruction
	// (coverage tracking for the fault-injection campaign). Sharing the map
	// across concurrent VMs is the caller's problem.
	CoverInstrs map[*ir.Instr]bool
	// Forensics enables violation forensics: allocation tracking keyed by
	// ir AllocSite IDs, the flight recorder of recent memory events, and a
	// structured telemetry.ViolationReport attached to every ViolationError.
	// Off by default; the disabled path is untouched (the tree interpreter
	// registers separate recorded handlers, the bytecode engine compiles
	// recorded opcode variants, mirroring SiteProfile).
	Forensics bool
	// FlightSize is the flight-recorder ring capacity (0 means
	// telemetry.DefaultFlightSize). Only meaningful with Forensics.
	FlightSize int
	// Sites resolves check-site IDs to source provenance in reports
	// (optional; reports carry bare IDs without it).
	Sites *telemetry.SiteTable
	// AllocSites resolves allocation-site IDs to source provenance in
	// reports (optional; reports carry bare IDs without it).
	AllocSites *telemetry.AllocTable
}

// Stats aggregates dynamic execution statistics.
type Stats struct {
	// Instrs is the number of executed IR instructions.
	Instrs uint64
	// Cost is the accumulated abstract execution cost.
	Cost uint64
	// Loads and Stores count executed memory accesses.
	Loads  uint64
	Stores uint64
	// Checks counts executed dereference checks; WideChecks those that ran
	// with wide bounds, i.e. the unsafe dereferences of Table 2.
	Checks     uint64
	WideChecks uint64
	// InvariantChecks counts Low-Fat invariant (escape) checks.
	InvariantChecks uint64
	// RangeChecks counts executed hoisted range checks (one per loop
	// entry, replacing Checks that would have run every iteration);
	// WideRangeChecks those that ran with wide bounds.
	RangeChecks     uint64
	WideRangeChecks uint64
	// MetaLoads/MetaStores count SoftBound trie operations; ShadowOps the
	// shadow-stack operations.
	MetaLoads  uint64
	MetaStores uint64
	ShadowOps  uint64
	// Allocs and Frees count heap allocator calls.
	Allocs uint64
	Frees  uint64
}

// SiteCount is the dynamic profile of one check site (Options.SiteProfile):
// how often it executed, how often with wide bounds, and the abstract cost it
// accumulated. The slice returned by VM.SiteProfile is indexed by SiteID.
type SiteCount struct {
	// Execs counts executions of the site's operation.
	Execs uint64 `json:"execs"`
	// Wide counts executions that observed wide bounds (dereference checks
	// only; always 0 for invariant and metadata sites).
	Wide uint64 `json:"wide,omitempty"`
	// Cost is the abstract cost charged by the site's executions.
	Cost uint64 `json:"cost"`
}

// UnsafePercent returns the percentage of executed checks that used wide
// bounds (the metric of Table 2). It returns 0 when no checks ran.
func (s *Stats) UnsafePercent() float64 {
	if s.Checks == 0 {
		return 0
	}
	return 100 * float64(s.WideChecks) / float64(s.Checks)
}

// ViolationError is a memory-safety violation reported by instrumentation
// checks. Note that a reported violation is not necessarily a real bug in
// the program: the paper's usability analysis (Section 4) revolves around
// spurious reports caused by stale metadata or out-of-bounds pointer
// arithmetic.
type ViolationError struct {
	Mechanism string
	Kind      string // "deref", "invariant", "wrapper"
	Ptr       uint64
	Detail    string
	// Report is the structured diagnostic synthesized when forensics is on
	// (nil otherwise). It does not participate in Error(), so verdict
	// strings are identical with and without forensics.
	Report *telemetry.ViolationReport
}

// Error implements the error interface.
func (v *ViolationError) Error() string {
	return fmt.Sprintf("%s: %s violation at pointer %#x: %s", v.Mechanism, v.Kind, v.Ptr, v.Detail)
}

// TraceFrame is one level of an IR-level backtrace: the function, block and
// instruction that were executing when the error was raised.
type TraceFrame struct {
	Func  string
	Block string
	Instr string
}

// String formats the frame like a debugger line.
func (t TraceFrame) String() string {
	s := "@" + t.Func
	if t.Block != "" {
		s += " %" + t.Block
	}
	if t.Instr != "" {
		s += ": " + t.Instr
	}
	return s
}

// RuntimeError is an internal execution error (unsupported operation,
// division by zero, step limit). Trace, when present, is the IR-level
// backtrace from the innermost frame outwards.
type RuntimeError struct {
	Msg   string
	Trace []TraceFrame
}

// Error implements the error interface.
func (e *RuntimeError) Error() string {
	s := "vm: " + e.Msg
	for _, t := range e.Trace {
		s += "\n\tat " + t.String()
	}
	return s
}

// exitSignal unwinds the interpreter on exit().
type exitSignal struct{ code int32 }

func (exitSignal) Error() string { return "exit" }

// ExtFn is the handler signature for external functions.
type ExtFn func(vm *VM, call *ir.Instr, args []uint64) (uint64, error)

// VM is one execution instance. It is single-use: create, Run, inspect.
type VM struct {
	Mod    *ir.Module
	AS     *mem.AddrSpace
	Std    *mem.StdAllocator
	LF     *lowfat.Allocator
	Trie   *softbound.Trie
	Shadow *softbound.ShadowStack
	Stats  Stats

	opts      Options
	cost      *CostModel
	heapSizes map[uint64]uint64
	globals   map[*ir.Global]uint64
	funcAddrs map[*ir.Func]uint64
	externals map[string]ExtFn
	outBuf    *bytes.Buffer
	stdout    io.Writer
	// siteProf is indexed by ir.Instr.Site; nil unless Options.SiteProfile,
	// so the disabled case costs one nil check in the runtime handlers.
	siteProf []SiteCount
	// flight and allocs are the forensics state: nil unless
	// Options.Forensics. allocs maps live allocation bases to their static
	// allocation site and size; stack entries are overwritten on frame
	// reuse rather than popped.
	flight *telemetry.Flight
	allocs map[uint64]allocRec
	sp     uint64 // linear stack pointer (grows down)
	rng      uint64
	steps    uint64
	maxSteps uint64
	// intrCountdown schedules the next InterruptFlag poll: it counts down
	// once per executed instruction and triggers a poll at zero, so a
	// raised flag is observed within interruptStride instructions.
	intrCountdown uint64
	// frames is the active interpreter frame stack, innermost last; it
	// exists purely to produce IR-level backtraces.
	frames []*frame
}

// New creates a VM for the module with the given options and lays out the
// globals. The module must be fully linked (all called functions defined or
// handled as externals).
func New(mod *ir.Module, opts Options) (*VM, error) {
	cm := opts.Cost
	if cm == nil {
		cm = DefaultCostModel()
	}
	v := &VM{
		Mod:       mod,
		AS:        mem.NewAddrSpace(),
		Std:       mem.NewStdAllocator(mem.HeapBase, mem.HeapLimit),
		opts:      opts,
		cost:      cm,
		globals:   make(map[*ir.Global]uint64),
		funcAddrs: make(map[*ir.Func]uint64),
		externals: make(map[string]ExtFn),
		sp:        mem.StackTop,
		rng:       0x2545F4914F6CDD1D,
		maxSteps:  opts.MaxSteps,
	}
	if v.maxSteps == 0 {
		v.maxSteps = 1 << 34
	}
	v.intrCountdown = InterruptStride
	if opts.SiteProfile {
		// The VM is created after instrumentation, so the module already
		// carries its SiteIDs; size the profile to the largest one.
		var maxSite int32
		for _, f := range mod.Funcs {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Site > maxSite {
						maxSite = in.Site
					}
				}
			}
		}
		v.siteProf = make([]SiteCount, maxSite+1)
	}
	if opts.Forensics {
		v.flight = telemetry.NewFlight(opts.FlightSize)
		v.allocs = make(map[uint64]allocRec)
	}
	v.AS.Limit = opts.MemBudget
	v.LF = lowfat.NewAllocator(v.Std)
	if opts.Mechanism == MechSoftBound {
		v.Trie = softbound.NewTrie()
		v.Shadow = softbound.NewShadowStack(1 << 16)
	}
	if opts.Stdout != nil {
		v.stdout = opts.Stdout
	} else {
		v.outBuf = &bytes.Buffer{}
		v.stdout = v.outBuf
	}
	registerLibc(v)
	registerMIRuntime(v)
	if opts.Forensics {
		registerForensicsHandlers(v)
	}
	if err := v.layoutGlobals(); err != nil {
		return nil, err
	}
	return v, nil
}

// Output returns the program output collected so far (empty if a custom
// Stdout writer was supplied).
func (v *VM) Output() string {
	if v.outBuf == nil {
		return ""
	}
	return v.outBuf.String()
}

// RegisterExternal installs (or overrides) the handler for an external
// function.
func (v *VM) RegisterExternal(name string, fn ExtFn) { v.externals[name] = fn }

// GlobalAddr returns the address assigned to a global.
func (v *VM) GlobalAddr(g *ir.Global) uint64 { return v.globals[g] }

// layoutGlobals assigns addresses to all global definitions and materializes
// their initializers. Pass 1 assigns addresses (so initializers may refer to
// any global); pass 2 writes the bytes and, under SoftBound, registers trie
// metadata for pointer-valued initializers.
func (v *VM) layoutGlobals() error {
	stdBase := uint64(mem.GlobalsBase)
	extBase := uint64(mem.ExtLibBase)
	fnBase := uint64(mem.ExtLibBase + 0x1000_0000)

	for _, f := range v.Mod.Funcs {
		v.funcAddrs[f] = fnBase
		fnBase += 16
	}

	for _, g := range v.Mod.Globals {
		if !g.IsDefinition() {
			continue
		}
		size := uint64(g.ValueTy.Size())
		if size == 0 {
			size = 1
		}
		var addr uint64
		switch {
		case g.ExternalLib:
			extBase = alignAddr(extBase, uint64(g.ValueTy.Align()))
			addr = extBase
			extBase += size
		case v.opts.LowFatGlobals && g.Linkage != ir.CommonLinkage:
			a, lowFat, err := v.LF.Alloc(size)
			if err != nil {
				return fmt.Errorf("vm: laying out global @%s: %w", g.Name, err)
			}
			_ = lowFat
			addr = a
		default:
			stdBase = alignAddr(stdBase, uint64(g.ValueTy.Align()))
			addr = stdBase
			stdBase += size
		}
		v.globals[g] = addr
		if v.allocs != nil {
			// Globals are tracked for attribution but not flight-recorded:
			// layout happens before execution and would only flush the ring.
			v.allocs[addr] = allocRec{site: g.AllocSite, size: size}
		}
	}
	// Resolve declarations against definitions of the same name, if any.
	for _, g := range v.Mod.Globals {
		if g.IsDefinition() {
			continue
		}
		if def := v.Mod.Global(g.Name); def != nil && def.IsDefinition() {
			v.globals[g] = v.globals[def]
		}
	}

	for _, g := range v.Mod.Globals {
		if !g.IsDefinition() {
			continue
		}
		if err := v.writeInit(v.globals[g], g.ValueTy, g.Init); err != nil {
			return fmt.Errorf("vm: initializing @%s: %w", g.Name, err)
		}
	}
	return nil
}

func alignAddr(a, align uint64) uint64 {
	if align == 0 {
		return a
	}
	return (a + align - 1) &^ (align - 1)
}

// writeInit materializes one initializer into memory.
func (v *VM) writeInit(addr uint64, ty *ir.Type, init ir.Initializer) error {
	switch iv := init.(type) {
	case nil, ir.ZeroInit:
		return nil // pages are zero on materialization
	case ir.IntInit:
		return v.AS.Store(addr, ty.Size(), uint64(iv.V))
	case ir.FloatInit:
		return v.AS.Store(addr, ty.Size(), floatBits(ty, iv.V))
	case ir.BytesInit:
		return v.AS.WriteBytes(addr, iv.Data)
	case ir.ArrayInit:
		if ty.Kind != ir.ArrayKind {
			return fmt.Errorf("array initializer for %s", ty)
		}
		esz := uint64(ty.Elem.Size())
		for i, e := range iv.Elems {
			if err := v.writeInit(addr+uint64(i)*esz, ty.Elem, e); err != nil {
				return err
			}
		}
		return nil
	case ir.StructInit:
		if ty.Kind != ir.StructKind {
			return fmt.Errorf("struct initializer for %s", ty)
		}
		for i, e := range iv.Fields {
			if err := v.writeInit(addr+uint64(ty.FieldOffset(i)), ty.Fields[i], e); err != nil {
				return err
			}
		}
		return nil
	case ir.GlobalRefInit:
		target := v.globals[iv.G]
		if target == 0 {
			if def := v.Mod.Global(iv.G.Name); def != nil {
				target = v.globals[def]
			}
		}
		val := target + uint64(iv.Offset)
		if err := v.AS.Store(addr, ir.PtrSize, val); err != nil {
			return err
		}
		if v.Trie != nil {
			v.Trie.Store(addr, softbound.Bounds{Base: target, Bound: target + uint64(iv.G.ValueTy.Size())})
		}
		return nil
	case ir.FuncRefInit:
		return v.AS.Store(addr, ir.PtrSize, v.funcAddrs[iv.F])
	}
	return fmt.Errorf("unknown initializer %T", init)
}

// Run executes main() and returns its exit code. Violations, faults and
// runtime errors are returned as errors; internal interpreter panics are
// recovered into RuntimeErrors carrying an IR-level backtrace, so a
// malformed module can never take down the embedding process.
func (v *VM) Run() (code int32, err error) {
	defer v.recoverPanic(&err)
	mainFn := v.Mod.Func("main")
	if mainFn == nil || mainFn.IsDecl() {
		return 0, &RuntimeError{Msg: "no main function"}
	}
	args := make([]uint64, len(mainFn.Params))
	ret, err := v.call(mainFn, args)
	if err != nil {
		if ex, ok := err.(exitSignal); ok {
			return ex.code, nil
		}
		return -1, err
	}
	return int32(ret), nil
}

// CallByName invokes a defined function with the given raw argument values.
// Intended for tests.
func (v *VM) CallByName(name string, args ...uint64) (ret uint64, err error) {
	defer v.recoverPanic(&err)
	f := v.Mod.Func(name)
	if f == nil {
		return 0, &RuntimeError{Msg: "no function " + name}
	}
	ret, err = v.call(f, args)
	if ex, ok := err.(exitSignal); ok {
		return uint64(ex.code), nil
	}
	return ret, err
}

// recoverPanic converts an interpreter panic into a structured RuntimeError
// with the current IR-level backtrace attached.
func (v *VM) recoverPanic(err *error) {
	p := recover()
	if p == nil {
		return
	}
	if re, ok := p.(*RuntimeError); ok {
		*err = re
		return
	}
	*err = &RuntimeError{Msg: fmt.Sprintf("internal panic: %v", p), Trace: v.backtrace()}
}

// backtrace captures the active frame stack, innermost first.
func (v *VM) backtrace() []TraceFrame {
	out := make([]TraceFrame, 0, len(v.frames))
	for i := len(v.frames) - 1; i >= 0; i-- {
		fr := v.frames[i]
		t := TraceFrame{Func: fr.fn.Name}
		if fr.curBlock != nil {
			t.Block = fr.curBlock.Name
		}
		if fr.curInstr != nil {
			t.Instr = ir.FormatInstr(fr.curInstr)
		}
		out = append(out, t)
	}
	return out
}
