package vm

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/lowfat"
	"repro/internal/rt"
	"repro/internal/softbound"
)

// registerMIRuntime installs the handlers for the instrumentation runtime
// intrinsics of internal/rt. Handlers charge the cost of the instruction
// sequence a real runtime executes (see CostModel) rather than a generic
// call cost.
func registerMIRuntime(v *VM) {
	// --- SoftBound ---
	v.RegisterExternal(rt.SBLoadBase, func(vm *VM, _ *ir.Instr, args []uint64) (uint64, error) {
		vm.Stats.MetaLoads++
		vm.Stats.Cost += vm.cost.SBMetaLoad
		b, _ := vm.Trie.Lookup(args[0])
		return b.Base, nil
	})
	v.RegisterExternal(rt.SBLoadBound, func(vm *VM, _ *ir.Instr, args []uint64) (uint64, error) {
		vm.Stats.MetaLoads++
		vm.Stats.Cost += vm.cost.SBMetaLoad
		b, _ := vm.Trie.Lookup(args[0])
		return b.Bound, nil
	})
	v.RegisterExternal(rt.SBStoreMD, func(vm *VM, call *ir.Instr, args []uint64) (uint64, error) {
		vm.Stats.MetaStores++
		vm.Stats.Cost += vm.cost.SBMetaStore
		vm.bumpSite(call, false, vm.cost.SBMetaStore)
		vm.Trie.Store(args[0], softbound.Bounds{Base: args[1], Bound: args[2]})
		return 0, nil
	})
	v.RegisterExternal(rt.SBCheck, func(vm *VM, call *ir.Instr, args []uint64) (uint64, error) {
		ptr, width, base, bound := args[0], args[1], args[2], args[3]
		vm.Stats.Checks++
		vm.Stats.Cost += vm.cost.SBCheck
		b := softbound.Bounds{Base: base, Bound: bound}
		vm.bumpSite(call, b.IsWide(), vm.cost.SBCheck)
		if b.IsWide() {
			vm.Stats.WideChecks++
			return 0, nil
		}
		if !b.Check(ptr, width) {
			return 0, &ViolationError{Mechanism: "softbound", Kind: "deref", Ptr: ptr,
				Detail: fmt.Sprintf("access of %d bytes outside bounds [%#x, %#x)", width, base, bound)}
		}
		return 0, nil
	})
	v.RegisterExternal(rt.SBCheckRange, func(vm *VM, call *ir.Instr, args []uint64) (uint64, error) {
		wide, err := SBCheckRangeOp(&vm.Stats, vm.cost, args[0], args[1], args[2], args[3], args[4], args[5])
		vm.bumpSite(call, wide, vm.cost.SBCheck)
		return 0, err
	})
	v.RegisterExternal(rt.SBSSAlloc, func(vm *VM, _ *ir.Instr, args []uint64) (uint64, error) {
		vm.Stats.ShadowOps++
		vm.Stats.Cost += vm.cost.SBShadowOp
		vm.Shadow.AllocateFrame(int(args[0]))
		return 0, nil
	})
	v.RegisterExternal(rt.SBSSSetArg, func(vm *VM, _ *ir.Instr, args []uint64) (uint64, error) {
		vm.Stats.ShadowOps++
		vm.Stats.Cost += vm.cost.SBShadowOp
		vm.Shadow.SetArg(int(args[0]), softbound.Bounds{Base: args[1], Bound: args[2]})
		return 0, nil
	})
	v.RegisterExternal(rt.SBSSArgBase, func(vm *VM, _ *ir.Instr, args []uint64) (uint64, error) {
		vm.Stats.ShadowOps++
		vm.Stats.Cost += vm.cost.SBShadowOp
		return vm.Shadow.Arg(int(args[0])).Base, nil
	})
	v.RegisterExternal(rt.SBSSArgBound, func(vm *VM, _ *ir.Instr, args []uint64) (uint64, error) {
		vm.Stats.ShadowOps++
		vm.Stats.Cost += vm.cost.SBShadowOp
		return vm.Shadow.Arg(int(args[0])).Bound, nil
	})
	v.RegisterExternal(rt.SBSSSetRet, func(vm *VM, _ *ir.Instr, args []uint64) (uint64, error) {
		vm.Stats.ShadowOps++
		vm.Stats.Cost += vm.cost.SBShadowOp
		vm.Shadow.SetRet(softbound.Bounds{Base: args[0], Bound: args[1]})
		return 0, nil
	})
	v.RegisterExternal(rt.SBSSRetBase, func(vm *VM, _ *ir.Instr, args []uint64) (uint64, error) {
		vm.Stats.ShadowOps++
		vm.Stats.Cost += vm.cost.SBShadowOp
		return vm.Shadow.Ret().Base, nil
	})
	v.RegisterExternal(rt.SBSSRetBound, func(vm *VM, _ *ir.Instr, args []uint64) (uint64, error) {
		vm.Stats.ShadowOps++
		vm.Stats.Cost += vm.cost.SBShadowOp
		return vm.Shadow.Ret().Bound, nil
	})
	v.RegisterExternal(rt.SBSSPop, func(vm *VM, _ *ir.Instr, args []uint64) (uint64, error) {
		vm.Stats.ShadowOps++
		vm.Stats.Cost += vm.cost.SBShadowOp
		vm.Shadow.PopFrame()
		return 0, nil
	})

	// --- Low-Fat Pointers ---
	v.RegisterExternal(rt.LFBase, func(vm *VM, _ *ir.Instr, args []uint64) (uint64, error) {
		vm.Stats.Cost += vm.cost.LFBase
		return lowfat.Base(args[0]), nil
	})
	v.RegisterExternal(rt.LFCheck, func(vm *VM, call *ir.Instr, args []uint64) (uint64, error) {
		ptr, width, base := args[0], args[1], args[2]
		vm.Stats.Checks++
		vm.Stats.Cost += vm.cost.LFCheck
		ok, wide := lowfat.Check(ptr, width, base)
		vm.bumpSite(call, wide, vm.cost.LFCheck)
		if wide {
			vm.Stats.WideChecks++
			return 0, nil
		}
		if !ok {
			return 0, &ViolationError{Mechanism: "lowfat", Kind: "deref", Ptr: ptr,
				Detail: fmt.Sprintf("access of %d bytes outside object at base %#x (size %d)", width, base, lowfat.AllocSize(lowfat.RegionIndex(base)))}
		}
		return 0, nil
	})
	v.RegisterExternal(rt.LFCheckInv, func(vm *VM, call *ir.Instr, args []uint64) (uint64, error) {
		ptr, base := args[0], args[1]
		vm.Stats.InvariantChecks++
		vm.Stats.Cost += vm.cost.LFCheck
		vm.bumpSite(call, false, vm.cost.LFCheck)
		ok, wide := lowfat.Check(ptr, 1, base)
		if wide {
			return 0, nil
		}
		if !ok {
			// The escape check fails for out-of-bounds pointers that are
			// merely passed around — the usability problem of Section 4.2:
			// programmers expect out-of-bounds *arithmetic* to be fine as
			// long as the pointer is brought back in bounds before use.
			return 0, &ViolationError{Mechanism: "lowfat", Kind: "invariant", Ptr: ptr,
				Detail: fmt.Sprintf("escaping pointer is outside its object at base %#x (size %d)", base, lowfat.AllocSize(lowfat.RegionIndex(base)))}
		}
		return 0, nil
	})
	v.RegisterExternal(rt.LFCheckRange, func(vm *VM, call *ir.Instr, args []uint64) (uint64, error) {
		wide, err := LFCheckRangeOp(&vm.Stats, vm.cost, args[0], args[1], args[2], args[3], args[4])
		vm.bumpSite(call, wide, vm.cost.LFCheck)
		return 0, err
	})
}

// SBCheckRangeOp implements the hoisted SoftBound range check: the access
// pointers of a counted loop's iterations are linear in its IV, so the two
// endpoint pointers bound them all, and checking both suffices. nonempty is
// the loop's entry condition — a zero-trip loop performs no accesses, so
// its (garbage) endpoints must pass unconditionally. Exported so the
// bytecode engine's fused opcode shares the exact semantics, stats and
// violation text with the tree interpreter.
func SBCheckRangeOp(st *Stats, cm *CostModel, lo, hi, width, base, bound, nonempty uint64) (wide bool, err error) {
	st.RangeChecks++
	st.Cost += cm.SBCheck
	b := softbound.Bounds{Base: base, Bound: bound}
	if b.IsWide() {
		st.WideRangeChecks++
		return true, nil
	}
	if nonempty == 0 {
		return false, nil
	}
	if hi < lo { // downward-counting loop: normalize the endpoints
		lo, hi = hi, lo
	}
	bad := uint64(0)
	switch {
	case !b.Check(lo, width):
		bad = lo
	case !b.Check(hi, width):
		bad = hi
	default:
		return false, nil
	}
	return false, &ViolationError{Mechanism: "softbound", Kind: "deref", Ptr: bad,
		Detail: fmt.Sprintf("range [%#x, %#x] of %d-byte accesses outside bounds [%#x, %#x)", lo, hi, width, base, bound)}
}

// LFCheckRangeOp is the Low-Fat counterpart of SBCheckRangeOp. Wideness
// depends only on the witness base, exactly as in lowfat.Check.
func LFCheckRangeOp(st *Stats, cm *CostModel, lo, hi, width, base, nonempty uint64) (wide bool, err error) {
	st.RangeChecks++
	st.Cost += cm.LFCheck
	size := lowfat.AllocSize(lowfat.RegionIndex(base))
	if size == ^uint64(0) {
		st.WideRangeChecks++
		return true, nil
	}
	if nonempty == 0 {
		return false, nil
	}
	if hi < lo {
		lo, hi = hi, lo
	}
	bad := uint64(0)
	okLo, _ := lowfat.Check(lo, width, base)
	okHi, _ := lowfat.Check(hi, width, base)
	switch {
	case !okLo:
		bad = lo
	case !okHi:
		bad = hi
	default:
		return false, nil
	}
	return false, &ViolationError{Mechanism: "lowfat", Kind: "deref", Ptr: bad,
		Detail: fmt.Sprintf("range [%#x, %#x] of %d-byte accesses outside object at base %#x (size %d)", lo, hi, width, base, size)}
}
