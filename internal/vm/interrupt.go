package vm

import (
	"fmt"
	"sync/atomic"
)

// Interrupt reasons. A supervisor sets exactly one reason on a flag; the
// first writer wins, so an engine that observes the flag reports a single,
// stable cause even when a deadline and a campaign-wide cancellation race.
const (
	// IntrNone: the flag is not raised.
	IntrNone uint32 = iota
	// IntrDeadline: the cell's wall-clock deadline expired (watchdog).
	IntrDeadline
	// IntrCanceled: the campaign is shutting down (SIGINT/SIGTERM or an
	// explicit supervisor Cancel).
	IntrCanceled
	// IntrChaos: a chaos-mode fault injection killed the cell mid-run.
	IntrChaos
)

// interruptReasonName names a reason for error messages and statuses.
func interruptReasonName(r uint32) string {
	switch r {
	case IntrDeadline:
		return "deadline"
	case IntrCanceled:
		return "canceled"
	case IntrChaos:
		return "chaos-kill"
	}
	return "none"
}

// InterruptFlag is a cooperative cancellation flag shared between a
// supervising goroutine (watchdog timer, signal handler, chaos injector) and
// an executing engine. Engines poll it on their step-count path every
// interruptStride executed instructions, so a raised flag stops a spinning
// cell within a bounded number of instructions — the same machinery that
// enforces MaxSteps, extended to external causes. The zero value is ready to
// use.
type InterruptFlag struct {
	reason atomic.Uint32
	// observed records that an engine actually aborted on the raised flag
	// (as opposed to the cell finishing before its poll noticed). The
	// distinction feeds the watchdog delivery metrics: a deadline that fires
	// after the cell's last instruction is raised but never observed.
	observed atomic.Uint32
}

// Interrupt raises the flag with the given reason. The first reason to land
// sticks; later calls are no-ops, so the engine reports one stable cause.
func (f *InterruptFlag) Interrupt(reason uint32) {
	if reason == IntrNone {
		return
	}
	f.reason.CompareAndSwap(IntrNone, reason)
}

// Raised returns the pending reason, or IntrNone.
func (f *InterruptFlag) Raised() uint32 {
	if f == nil {
		return IntrNone
	}
	return f.reason.Load()
}

// MarkObserved is called by an engine at the moment it aborts execution on
// the raised flag; it is on the abort path only, never the poll path, so the
// hot loop stays untouched.
func (f *InterruptFlag) MarkObserved() {
	if f == nil {
		return
	}
	f.observed.Store(1)
}

// Observed reports whether an engine aborted on this flag.
func (f *InterruptFlag) Observed() bool {
	return f != nil && f.observed.Load() != 0
}

// interruptStride is how many executed instructions may pass between flag
// polls: the bound on how late a raised flag is observed. Polling is one
// counter decrement per dispatch plus an atomic load every stride, so the
// no-deadline path stays within noise (guarded by TestWatchdogNeutrality).
const InterruptStride = 1024

// InterruptError reports that execution was stopped by a raised
// InterruptFlag. It is a terminal verdict for the run, not for the campaign:
// supervisors classify it (timeout / skipped / retried) rather than treating
// it as a program failure.
type InterruptError struct {
	// Reason is the IntrDeadline/IntrCanceled/IntrChaos cause.
	Reason uint32
	// Steps is the engine's executed-instruction count at the stop.
	Steps uint64
	// Trace is the IR-level backtrace at the stop (tree interpreter only;
	// the bytecode engine reports function granularity).
	Trace []TraceFrame
}

// Error implements the error interface.
func (e *InterruptError) Error() string {
	s := fmt.Sprintf("vm: interrupted (%s) after %d steps", ReasonString(e.Reason), e.Steps)
	for _, t := range e.Trace {
		s += "\n\tat " + t.String()
	}
	return s
}

// ReasonString names an interrupt reason ("deadline", "canceled",
// "chaos-kill").
func ReasonString(r uint32) string { return interruptReasonName(r) }

// Interrupted returns the flag the VM polls, or nil. Engines share it so
// the supervisor's single flag stops whichever engine runs the cell.
func (v *VM) Interrupted() *InterruptFlag { return v.opts.Interrupt }
