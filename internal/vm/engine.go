package vm

import "repro/internal/ir"

// This file is the exported surface that alternative execution engines
// (internal/bytecode) build on. The tree-walking interpreter in exec.go
// stays the reference semantics; an engine reuses the VM's entire runtime
// state — address space, allocators, trie, shadow stack, libc handlers,
// statistics — and only replaces the instruction dispatch.

// CostModel returns the cost model the VM charges operations against.
func (v *VM) CostModel() *CostModel { return v.cost }

// Options returns the options the VM was created with.
func (v *VM) Options() Options { return v.opts }

// StepLimit returns the resolved maximum step count (MaxSteps with the
// default applied).
func (v *VM) StepLimit() uint64 { return v.maxSteps }

// SiteProfile returns the per-site counters indexed by SiteID, or nil when
// Options.SiteProfile is off. Engines sharing the VM write into the same
// slice, so both engines' profiles are read the same way.
func (v *VM) SiteProfile() []SiteCount { return v.siteProf }

// bumpSite attributes one execution to the site of call. No-op when profiling
// is off or the instruction carries no site.
func (v *VM) bumpSite(call *ir.Instr, wide bool, cost uint64) {
	if v.siteProf == nil || call == nil {
		return
	}
	v.bumpSiteID(call.Site, wide, cost)
}

// External returns the handler registered for an external function, or nil.
func (v *VM) External(name string) ExtFn { return v.externals[name] }

// FuncAddr returns the address assigned to a function value.
func (v *VM) FuncAddr(f *ir.Func) uint64 { return v.funcAddrs[f] }

// StackPointer returns the current linear stack pointer.
func (v *VM) StackPointer() uint64 { return v.sp }

// SetStackPointer moves the linear stack pointer. Engines that manage their
// own frames use it to keep the VM's view consistent for library calls.
func (v *VM) SetStackPointer(sp uint64) { v.sp = sp }

// AsExit reports whether err is the exit() unwind signal and returns the
// exit code. Engines need it to translate the signal into an exit code the
// same way Run does.
func AsExit(err error) (int32, bool) {
	if ex, ok := err.(exitSignal); ok {
		return ex.code, true
	}
	return 0, false
}

// InstrCost exposes the per-instruction cost used by the interpreter loop so
// that a compiling engine can bake identical costs into its bytecode.
func (c *CostModel) InstrCost(in *ir.Instr) uint64 { return c.instrCost(in) }
