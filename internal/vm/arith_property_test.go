package vm_test

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
	"repro/internal/vm"
)

// buildBinopFunc creates f(a, b) = a OP b over the given integer type.
func buildBinopFunc(op ir.Op, ty *ir.Type) *ir.Module {
	m := ir.NewModule("arith")
	f := m.NewFunc("f", ir.FuncOf(ty, ty, ty), "a", "b")
	b := ir.NewBuilder(f)
	b.SetBlock(f.NewBlock("entry"))
	r := b.Binary(op, f.Params[0], f.Params[1])
	b.Ret(r)
	return m
}

// TestIntegerBinopsMatchGoProperty executes every integer binop on random
// operands at widths 8/32/64 and compares against Go's two's-complement
// arithmetic on the corresponding fixed-width type.
func TestIntegerBinopsMatchGoProperty(t *testing.T) {
	type oracle func(a, b uint64, bits int) (uint64, bool) // result, defined
	mask := func(v uint64, bits int) uint64 {
		if bits >= 64 {
			return v
		}
		return v & (1<<uint(bits) - 1)
	}
	sext := func(v uint64, bits int) int64 {
		v = mask(v, bits)
		if bits < 64 && v&(1<<uint(bits-1)) != 0 {
			v |= ^uint64(0) << uint(bits)
		}
		return int64(v)
	}
	oracles := map[ir.Op]oracle{
		ir.OpAdd: func(a, b uint64, bits int) (uint64, bool) { return mask(a+b, bits), true },
		ir.OpSub: func(a, b uint64, bits int) (uint64, bool) { return mask(a-b, bits), true },
		ir.OpMul: func(a, b uint64, bits int) (uint64, bool) { return mask(a*b, bits), true },
		ir.OpAnd: func(a, b uint64, bits int) (uint64, bool) { return mask(a&b, bits), true },
		ir.OpOr:  func(a, b uint64, bits int) (uint64, bool) { return mask(a|b, bits), true },
		ir.OpXor: func(a, b uint64, bits int) (uint64, bool) { return mask(a^b, bits), true },
		ir.OpShl: func(a, b uint64, bits int) (uint64, bool) {
			return mask(a<<(b&uint64(bits-1)), bits), true
		},
		ir.OpLShr: func(a, b uint64, bits int) (uint64, bool) {
			return mask(mask(a, bits)>>(b&uint64(bits-1)), bits), true
		},
		ir.OpAShr: func(a, b uint64, bits int) (uint64, bool) {
			return mask(uint64(sext(a, bits)>>(b&uint64(bits-1))), bits), true
		},
		ir.OpSDiv: func(a, b uint64, bits int) (uint64, bool) {
			if sext(b, bits) == 0 {
				return 0, false
			}
			return mask(uint64(sext(a, bits)/sext(b, bits)), bits), true
		},
		ir.OpSRem: func(a, b uint64, bits int) (uint64, bool) {
			if sext(b, bits) == 0 {
				return 0, false
			}
			return mask(uint64(sext(a, bits)%sext(b, bits)), bits), true
		},
		ir.OpUDiv: func(a, b uint64, bits int) (uint64, bool) {
			if mask(b, bits) == 0 {
				return 0, false
			}
			return mask(a, bits) / mask(b, bits), true
		},
		ir.OpURem: func(a, b uint64, bits int) (uint64, bool) {
			if mask(b, bits) == 0 {
				return 0, false
			}
			return mask(a, bits) % mask(b, bits), true
		},
	}

	for op, orc := range oracles {
		op, orc := op, orc
		for _, ty := range []*ir.Type{ir.I8, ir.I32, ir.I64} {
			ty := ty
			m := buildBinopFunc(op, ty)
			prop := func(a, b uint64) bool {
				machine, err := vm.New(ir.CloneModule(m), vm.Options{})
				if err != nil {
					return false
				}
				want, defined := orc(a, b, ty.Bits)
				got, rerr := machine.CallByName("f", a, b)
				if !defined {
					return rerr != nil // division by zero must trap
				}
				if rerr != nil {
					return false
				}
				// The VM stores results truncated to the type width.
				return got == want
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
				t.Errorf("%s/%s: %v", op, ty, err)
			}
		}
	}
}

// TestICmpMatchesGoProperty validates all predicates against Go comparisons.
func TestICmpMatchesGoProperty(t *testing.T) {
	preds := []ir.Pred{
		ir.PredEQ, ir.PredNE,
		ir.PredSLT, ir.PredSLE, ir.PredSGT, ir.PredSGE,
		ir.PredULT, ir.PredULE, ir.PredUGT, ir.PredUGE,
	}
	for _, pred := range preds {
		pred := pred
		m := ir.NewModule("cmp")
		f := m.NewFunc("f", ir.FuncOf(ir.I32, ir.I32, ir.I32), "a", "b")
		b := ir.NewBuilder(f)
		b.SetBlock(f.NewBlock("entry"))
		c := b.ICmp(pred, f.Params[0], f.Params[1])
		z := b.Cast(ir.OpZExt, c, ir.I32)
		b.Ret(z)

		prop := func(x, y int32) bool {
			machine, err := vm.New(ir.CloneModule(m), vm.Options{})
			if err != nil {
				return false
			}
			got, rerr := machine.CallByName("f", uint64(uint32(x)), uint64(uint32(y)))
			if rerr != nil {
				return false
			}
			var want bool
			ux, uy := uint32(x), uint32(y)
			switch pred {
			case ir.PredEQ:
				want = x == y
			case ir.PredNE:
				want = x != y
			case ir.PredSLT:
				want = x < y
			case ir.PredSLE:
				want = x <= y
			case ir.PredSGT:
				want = x > y
			case ir.PredSGE:
				want = x >= y
			case ir.PredULT:
				want = ux < uy
			case ir.PredULE:
				want = ux <= uy
			case ir.PredUGT:
				want = ux > uy
			case ir.PredUGE:
				want = ux >= uy
			}
			return (got == 1) == want
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("pred %s: %v", pred, err)
		}
	}
}
