package vm

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/ir"
	"repro/internal/softbound"
)

// registerLibc installs the simulated C standard library. When the VM runs a
// SoftBound-instrumented program, the handlers double as the SoftBound
// wrappers of Figure 6: they keep the bounds trie coherent across bulk
// copies, record return-pointer bounds on the shadow stack and (optionally)
// check the accessed widths. Low-Fat Pointers need no wrappers (Section 4.3):
// heap allocations automatically use the low-fat malloc via Options.
func registerLibc(v *VM) {
	v.heapSizes = make(map[uint64]uint64)

	v.RegisterExternal("malloc", libcMalloc)
	v.RegisterExternal("calloc", libcCalloc)
	v.RegisterExternal("realloc", libcRealloc)
	v.RegisterExternal("free", libcFree)

	v.RegisterExternal("memcpy", libcMemcpy)
	v.RegisterExternal("memmove", libcMemmove)
	v.RegisterExternal("memset", libcMemset)
	v.RegisterExternal("memcmp", libcMemcmp)
	v.RegisterExternal("strlen", libcStrlen)
	v.RegisterExternal("strcpy", libcStrcpy)
	v.RegisterExternal("strncpy", libcStrncpy)
	v.RegisterExternal("strcmp", libcStrcmp)
	v.RegisterExternal("strncmp", libcStrncmp)
	v.RegisterExternal("strcat", libcStrcat)
	v.RegisterExternal("strchr", libcStrchr)

	v.RegisterExternal("printf", libcPrintf)
	v.RegisterExternal("puts", libcPuts)
	v.RegisterExternal("putchar", libcPutchar)

	v.RegisterExternal("exit", func(vm *VM, _ *ir.Instr, args []uint64) (uint64, error) {
		return 0, exitSignal{code: int32(args[0])}
	})
	v.RegisterExternal("abort", func(vm *VM, _ *ir.Instr, _ []uint64) (uint64, error) {
		return 0, &RuntimeError{Msg: "abort() called"}
	})

	v.RegisterExternal("rand", func(vm *VM, _ *ir.Instr, _ []uint64) (uint64, error) {
		// xorshift64*: deterministic across runs, decoupled from Go's rand.
		vm.rng ^= vm.rng >> 12
		vm.rng ^= vm.rng << 25
		vm.rng ^= vm.rng >> 27
		vm.Stats.Cost += 6
		return (vm.rng * 0x2545F4914F6CDD1D) >> 33 & 0x7FFFFFFF, nil
	})
	v.RegisterExternal("srand", func(vm *VM, _ *ir.Instr, args []uint64) (uint64, error) {
		vm.rng = args[0] | 1
		return 0, nil
	})

	mathFn := func(name string, f func(float64) float64) {
		v.RegisterExternal(name, func(vm *VM, _ *ir.Instr, args []uint64) (uint64, error) {
			vm.Stats.Cost += 20
			return math.Float64bits(f(math.Float64frombits(args[0]))), nil
		})
	}
	mathFn("sqrt", math.Sqrt)
	mathFn("fabs", math.Abs)
	mathFn("exp", math.Exp)
	mathFn("log", math.Log)
	mathFn("sin", math.Sin)
	mathFn("cos", math.Cos)
	mathFn("floor", math.Floor)
	mathFn("ceil", math.Ceil)
	v.RegisterExternal("pow", func(vm *VM, _ *ir.Instr, args []uint64) (uint64, error) {
		vm.Stats.Cost += 30
		return math.Float64bits(math.Pow(math.Float64frombits(args[0]), math.Float64frombits(args[1]))), nil
	})
	v.RegisterExternal("abs", func(vm *VM, _ *ir.Instr, args []uint64) (uint64, error) {
		vm.Stats.Cost += 2
		x := int32(args[0])
		if x < 0 {
			x = -x
		}
		return uint64(uint32(x)), nil
	})
}

// heapAlloc allocates from the configured heap and tracks the requested
// size. site is the static allocation site of the requesting call (0 when
// unknown); it feeds the forensics allocation map. Both engines route heap
// allocation through here, so attribution is engine-neutral by construction.
func (v *VM) heapAlloc(size uint64, site int32) (uint64, error) {
	v.Stats.Allocs++
	v.Stats.Cost += v.cost.MallocBase + size/1024*v.cost.MallocPerKiB
	var addr uint64
	var err error
	if v.opts.LowFatHeap {
		addr, _, err = v.LF.Alloc(size)
	} else {
		addr, err = v.Std.Alloc(size)
	}
	if err != nil {
		return 0, err
	}
	v.heapSizes[addr] = size
	if v.allocs != nil {
		v.TrackAlloc(addr, size, site)
	}
	return addr, nil
}

func (v *VM) heapFree(addr uint64) error {
	if addr == 0 {
		return nil
	}
	v.Stats.Frees++
	v.Stats.Cost += v.cost.MallocBase / 2
	if _, ok := v.heapSizes[addr]; !ok {
		return &RuntimeError{Msg: fmt.Sprintf("invalid free of %#x", addr)}
	}
	delete(v.heapSizes, addr)
	if v.allocs != nil {
		v.TrackFree(addr)
	}
	if v.opts.LowFatHeap {
		return v.LF.Free(addr)
	}
	return v.Std.Free(addr)
}

// allocSiteOf extracts the allocation-site ID of a malloc-family call
// (nil-tolerant: top-level external invocations pass a nil instruction).
func allocSiteOf(call *ir.Instr) int32 {
	if call == nil {
		return 0
	}
	return call.AllocSite
}

func libcMalloc(v *VM, call *ir.Instr, args []uint64) (uint64, error) {
	return v.heapAlloc(args[0], allocSiteOf(call))
}

func libcCalloc(v *VM, call *ir.Instr, args []uint64) (uint64, error) {
	n := args[0] * args[1]
	addr, err := v.heapAlloc(n, allocSiteOf(call))
	if err != nil {
		return 0, err
	}
	v.Stats.Cost += n * v.cost.MemPerByte / 8
	return addr, v.AS.Memset(addr, 0, n)
}

func libcRealloc(v *VM, call *ir.Instr, args []uint64) (uint64, error) {
	old, size := args[0], args[1]
	addr, err := v.heapAlloc(size, allocSiteOf(call))
	if err != nil {
		return 0, err
	}
	if old != 0 {
		oldSize := v.heapSizes[old]
		n := oldSize
		if size < n {
			n = size
		}
		if err := v.AS.Memmove(addr, old, n); err != nil {
			return 0, err
		}
		v.Stats.Cost += n * v.cost.MemPerByte
		if v.Trie != nil {
			v.Trie.CopyRange(addr, old, n)
		}
		if err := v.heapFree(old); err != nil {
			return 0, err
		}
	}
	return addr, nil
}

func libcFree(v *VM, _ *ir.Instr, args []uint64) (uint64, error) {
	return 0, v.heapFree(args[0])
}

// sbWrapperCheck implements the check_abort calls of the wrappers (Figure 6)
// when wrapper checking is enabled.
func sbWrapperCheck(v *VM, argIdx int, ptr, width uint64) error {
	if v.Trie == nil || !v.opts.SBCheckWrappers || width == 0 {
		return nil
	}
	b := softbound.Bounds{Base: v.Shadow.Arg(argIdx).Base, Bound: v.Shadow.Arg(argIdx).Bound}
	v.Stats.Checks++
	v.Stats.Cost += v.cost.SBCheck
	if b.IsWide() {
		v.Stats.WideChecks++
		return nil
	}
	if !b.Check(ptr, width) {
		detail := fmt.Sprintf("wrapper access of %d bytes outside [%#x, %#x)", width, b.Base, b.Bound)
		if v.allocs != nil {
			return v.violation("softbound", "wrapper", ptr, detail, 0, width, b.Base, b.Bound)
		}
		return &ViolationError{Mechanism: "softbound", Kind: "wrapper", Ptr: ptr, Detail: detail}
	}
	return nil
}

// sbSetRetFromArg propagates the bounds of pointer argument argIdx to the
// shadow stack's return slot (store_bs_bd_ret in Figure 6).
func sbSetRetFromArg(v *VM, argIdx int) {
	if v.Trie == nil || v.Shadow.Depth() == 0 {
		return
	}
	v.Shadow.SetRet(v.Shadow.Arg(argIdx))
	v.Stats.ShadowOps++
	v.Stats.Cost += v.cost.SBShadowOp
}

func libcMemcpy(v *VM, _ *ir.Instr, args []uint64) (uint64, error) {
	dst, src, n := args[0], args[1], args[2]
	if err := sbWrapperCheck(v, 1, dst, n); err != nil {
		return 0, err
	}
	if err := sbWrapperCheck(v, 2, src, n); err != nil {
		return 0, err
	}
	if err := v.AS.Memmove(dst, src, n); err != nil {
		return 0, err
	}
	v.Stats.Cost += n * v.cost.MemPerByte
	if v.Trie != nil && n > 0 {
		// copy_metadata: walk the pointer slots of the copied range.
		v.Trie.CopyRange(dst, src, n)
		slots := n / 8
		v.Stats.MetaLoads += slots
		v.Stats.MetaStores += slots
		v.Stats.Cost += slots * (v.cost.SBMetaLoad + v.cost.SBMetaStore)
	}
	sbSetRetFromArg(v, 1)
	return dst, nil
}

func libcMemmove(v *VM, call *ir.Instr, args []uint64) (uint64, error) {
	return libcMemcpy(v, call, args)
}

func libcMemset(v *VM, _ *ir.Instr, args []uint64) (uint64, error) {
	dst, c, n := args[0], args[1], args[2]
	if err := sbWrapperCheck(v, 1, dst, n); err != nil {
		return 0, err
	}
	if err := v.AS.Memset(dst, byte(c), n); err != nil {
		return 0, err
	}
	v.Stats.Cost += n * v.cost.MemPerByte
	if v.Trie != nil {
		v.Trie.InvalidateRange(dst, n)
	}
	sbSetRetFromArg(v, 1)
	return dst, nil
}

func libcMemcmp(v *VM, _ *ir.Instr, args []uint64) (uint64, error) {
	a, b, n := args[0], args[1], args[2]
	v.Stats.Cost += n * v.cost.MemPerByte
	for i := uint64(0); i < n; i++ {
		x, err := v.AS.Load(a+i, 1)
		if err != nil {
			return 0, err
		}
		y, err := v.AS.Load(b+i, 1)
		if err != nil {
			return 0, err
		}
		if x != y {
			if x < y {
				return uint64(uint32(0xFFFFFFFF)), nil // -1 as i32
			}
			return 1, nil
		}
	}
	return 0, nil
}

func libcStrlen(v *VM, _ *ir.Instr, args []uint64) (uint64, error) {
	s, err := v.AS.ReadCString(args[0])
	if err != nil {
		return 0, err
	}
	v.Stats.Cost += uint64(len(s)+1) * v.cost.MemPerByte
	return uint64(len(s)), nil
}

func libcStrcpy(v *VM, _ *ir.Instr, args []uint64) (uint64, error) {
	dst := args[0]
	s, err := v.AS.ReadCString(args[1])
	if err != nil {
		return 0, err
	}
	n := uint64(len(s) + 1)
	if err := sbWrapperCheck(v, 1, dst, n); err != nil {
		return 0, err
	}
	v.Stats.Cost += n * v.cost.MemPerByte
	if err := v.AS.WriteBytes(dst, append([]byte(s), 0)); err != nil {
		return 0, err
	}
	if v.Trie != nil {
		v.Trie.InvalidateRange(dst, n)
	}
	sbSetRetFromArg(v, 1)
	return dst, nil
}

func libcStrncpy(v *VM, _ *ir.Instr, args []uint64) (uint64, error) {
	dst, n := args[0], args[2]
	s, err := v.AS.ReadCString(args[1])
	if err != nil {
		return 0, err
	}
	buf := make([]byte, n)
	copy(buf, s)
	if err := sbWrapperCheck(v, 1, dst, n); err != nil {
		return 0, err
	}
	v.Stats.Cost += n * v.cost.MemPerByte
	if err := v.AS.WriteBytes(dst, buf); err != nil {
		return 0, err
	}
	if v.Trie != nil {
		v.Trie.InvalidateRange(dst, n)
	}
	sbSetRetFromArg(v, 1)
	return dst, nil
}

func libcStrcmp(v *VM, _ *ir.Instr, args []uint64) (uint64, error) {
	a, err := v.AS.ReadCString(args[0])
	if err != nil {
		return 0, err
	}
	b, err := v.AS.ReadCString(args[1])
	if err != nil {
		return 0, err
	}
	v.Stats.Cost += uint64(min(len(a), len(b))+1) * v.cost.MemPerByte
	return uint64(uint32(strings.Compare(a, b))), nil
}

func libcStrncmp(v *VM, _ *ir.Instr, args []uint64) (uint64, error) {
	n := args[2]
	a, err := v.AS.ReadCString(args[0])
	if err != nil {
		return 0, err
	}
	b, err := v.AS.ReadCString(args[1])
	if err != nil {
		return 0, err
	}
	if uint64(len(a)) > n {
		a = a[:n]
	}
	if uint64(len(b)) > n {
		b = b[:n]
	}
	v.Stats.Cost += uint64(min(len(a), len(b))+1) * v.cost.MemPerByte
	return uint64(uint32(strings.Compare(a, b))), nil
}

func libcStrcat(v *VM, _ *ir.Instr, args []uint64) (uint64, error) {
	dst := args[0]
	d, err := v.AS.ReadCString(dst)
	if err != nil {
		return 0, err
	}
	s, err := v.AS.ReadCString(args[1])
	if err != nil {
		return 0, err
	}
	n := uint64(len(d) + len(s) + 1)
	if err := sbWrapperCheck(v, 1, dst, n); err != nil {
		return 0, err
	}
	v.Stats.Cost += n * v.cost.MemPerByte
	if err := v.AS.WriteBytes(dst+uint64(len(d)), append([]byte(s), 0)); err != nil {
		return 0, err
	}
	sbSetRetFromArg(v, 1)
	return dst, nil
}

func libcStrchr(v *VM, _ *ir.Instr, args []uint64) (uint64, error) {
	s, err := v.AS.ReadCString(args[0])
	if err != nil {
		return 0, err
	}
	v.Stats.Cost += uint64(len(s)+1) * v.cost.MemPerByte
	c := byte(args[1])
	if i := strings.IndexByte(s, c); i >= 0 {
		// The result derives from the argument; propagate its bounds.
		sbSetRetFromArg(v, 1)
		return args[0] + uint64(i), nil
	}
	if c == 0 {
		sbSetRetFromArg(v, 1)
		return args[0] + uint64(len(s)), nil
	}
	if v.Trie != nil && v.Shadow.Depth() > 0 {
		v.Shadow.SetRet(softbound.NullBounds)
	}
	return 0, nil
}

func libcPuts(v *VM, _ *ir.Instr, args []uint64) (uint64, error) {
	s, err := v.AS.ReadCString(args[0])
	if err != nil {
		return 0, err
	}
	v.Stats.Cost += uint64(len(s)) * v.cost.MemPerByte
	fmt.Fprintln(v.stdout, s)
	return uint64(len(s) + 1), nil
}

func libcPutchar(v *VM, _ *ir.Instr, args []uint64) (uint64, error) {
	fmt.Fprintf(v.stdout, "%c", rune(byte(args[0])))
	return args[0], nil
}

// libcPrintf implements a useful subset of printf: %d %i %u %x %c %s %f %g %e
// %p %% with optional l/ll length modifiers and width like %5d / %-8s / %08x
// and precision for floats.
func libcPrintf(v *VM, call *ir.Instr, args []uint64) (uint64, error) {
	format, err := v.AS.ReadCString(args[0])
	if err != nil {
		return 0, err
	}
	v.Stats.Cost += uint64(len(format)) * 2
	var argTypes []*ir.Type
	if call != nil {
		for _, a := range call.Args() {
			argTypes = append(argTypes, a.Type())
		}
	}
	out := &strings.Builder{}
	ai := 1
	nextArg := func() (uint64, *ir.Type) {
		if ai >= len(args) {
			return 0, ir.I64
		}
		var t *ir.Type
		if ai < len(argTypes) {
			t = argTypes[ai]
		} else {
			t = ir.I64
		}
		val := args[ai]
		ai++
		return val, t
	}

	i := 0
	for i < len(format) {
		c := format[i]
		if c != '%' {
			out.WriteByte(c)
			i++
			continue
		}
		// Collect the conversion specification.
		j := i + 1
		spec := "%"
		for j < len(format) && strings.ContainsRune("-+ 0123456789.", rune(format[j])) {
			spec += string(format[j])
			j++
		}
		// Skip length modifiers.
		for j < len(format) && (format[j] == 'l' || format[j] == 'h' || format[j] == 'z') {
			j++
		}
		if j >= len(format) {
			out.WriteString(spec)
			break
		}
		verb := format[j]
		i = j + 1
		switch verb {
		case '%':
			out.WriteByte('%')
		case 'd', 'i':
			val, t := nextArg()
			bits := 64
			if t.IsInt() {
				bits = t.Bits
			}
			fmt.Fprintf(out, spec+"d", signExtend(val, bits))
		case 'u':
			val, t := nextArg()
			bits := 64
			if t.IsInt() {
				bits = t.Bits
			}
			fmt.Fprintf(out, spec+"d", truncate(val, bits))
		case 'x', 'X', 'o':
			val, t := nextArg()
			bits := 64
			if t.IsInt() {
				bits = t.Bits
			}
			fmt.Fprintf(out, spec+string(verb), truncate(val, bits))
		case 'c':
			val, _ := nextArg()
			fmt.Fprintf(out, spec+"c", rune(byte(val)))
		case 's':
			val, _ := nextArg()
			s, err := v.AS.ReadCString(val)
			if err != nil {
				return 0, err
			}
			fmt.Fprintf(out, spec+"s", s)
		case 'p':
			val, _ := nextArg()
			fmt.Fprintf(out, "%#x", val)
		case 'f', 'F', 'g', 'G', 'e', 'E':
			val, _ := nextArg()
			f := math.Float64frombits(val)
			vspec := spec
			if (verb == 'f' || verb == 'F') && !strings.Contains(spec, ".") {
				vspec += ".6"
			}
			fmt.Fprintf(out, vspec+string(verb|0x20), f)
		default:
			out.WriteString(spec)
			out.WriteByte(verb)
		}
	}
	s := out.String()
	fmt.Fprint(v.stdout, s)
	return uint64(len(s)), nil
}
