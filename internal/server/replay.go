package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

// Traffic log: an append-only JSONL file of campaign requests with their
// inter-arrival offsets, recorded by mi-bench -record and re-served by
// mi-serve -replay for load testing. The log stores requests, not results —
// replaying against a cold server recomputes, against a warmed one measures
// pure cache-service throughput.

// TrafficEntry is one recorded request.
type TrafficEntry struct {
	// AtMS is the request's offset from the start of recording, in
	// milliseconds (replay can honor it with ReplayOptions.Timing).
	AtMS int64 `json:"at_ms"`
	// Req is the campaign request as submitted.
	Req CampaignRequest `json:"req"`
}

// Recorder appends submitted requests to a traffic log.
type Recorder struct {
	mu    sync.Mutex
	f     *os.File
	start time.Time
	n     int
}

// NewRecorder opens (creating or appending to) the traffic log at path.
func NewRecorder(path string) (*Recorder, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Recorder{f: f, start: time.Now()}, nil
}

// Record appends one request, stamped with its offset from the recorder's
// start.
func (r *Recorder) Record(req CampaignRequest) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	line, err := json.Marshal(TrafficEntry{AtMS: time.Since(r.start).Milliseconds(), Req: req})
	if err != nil {
		return err
	}
	if _, err := r.f.Write(append(line, '\n')); err != nil {
		return err
	}
	r.n++
	return nil
}

// Entries reports how many requests this recorder appended.
func (r *Recorder) Entries() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Close closes the log file.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.f.Close()
}

// LoadTraffic reads a traffic log. Unparseable lines (a torn final write)
// are skipped, consistent with the checkpoint journal's loader.
func LoadTraffic(path string) ([]TrafficEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []TrafficEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e TrafficEntry
		if err := json.Unmarshal(line, &e); err != nil {
			continue
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traffic log: reading %s: %w", path, err)
	}
	return out, nil
}

// ReplayOptions configures a replay load test.
type ReplayOptions struct {
	// Log is the recorded traffic to re-serve.
	Log []TrafficEntry
	// Server configures the in-process server under load (Workers is the
	// scaling axis).
	Server Config
	// Clients is the number of concurrent load-generating clients; each
	// replays the full log Rounds times (defaults 1 and 1). Overlapping
	// clients submit identical requests concurrently — the dedup path under
	// test.
	Clients int
	// Rounds repeats the log per client; rounds beyond the first measure
	// cache-hit service throughput.
	Rounds int
	// Timing honors the recorded inter-arrival offsets instead of
	// submitting as fast as possible.
	Timing bool
	// Progress, when non-nil, receives one line per completed request.
	Progress io.Writer
}

// ReplayStats summarizes a replay run.
type ReplayStats struct {
	Requests int           `json:"requests"`
	Failed   int           `json:"failed"`
	Cells    int           `json:"cells"`
	Computed uint64        `json:"computed"`
	Hits     uint64        `json:"cache_hits"`
	HitRate  float64       `json:"hit_rate"`
	Wall     time.Duration `json:"-"`
	WallS    float64       `json:"wall_s"`
	// CellsPerSec is delivered cells (cached included) per second;
	// ComputedPerSec counts only executed cells — the worker-scaling
	// figure of merit.
	CellsPerSec    float64 `json:"cells_per_sec"`
	ComputedPerSec float64 `json:"computed_per_sec"`
	// LatencyP50/P95 are per-request wall times in milliseconds.
	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP95MS float64 `json:"latency_p95_ms"`
}

// RunReplay starts a fresh in-process server, fires the recorded traffic at
// it over real HTTP, and reports throughput. The server listens on a
// loopback ephemeral port, so replay exercises the full serving stack —
// request decoding, scheduling, dedup, streaming — not just the runner.
func RunReplay(opts ReplayOptions) (*ReplayStats, error) {
	if len(opts.Log) == 0 {
		return nil, fmt.Errorf("replay: empty traffic log")
	}
	clients := opts.Clients
	if clients <= 0 {
		clients = 1
	}
	rounds := opts.Rounds
	if rounds <= 0 {
		rounds = 1
	}

	srv, err := New(opts.Server)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	defer func() {
		_ = hs.Close()
		_ = srv.Close()
	}()

	stats := &ReplayStats{}
	var (
		mu        sync.Mutex
		latencies []float64
	)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cl := &Client{BaseURL: base}
			for round := 0; round < rounds; round++ {
				roundStart := time.Now()
				for i, e := range opts.Log {
					if opts.Timing {
						if gap := time.Duration(e.AtMS)*time.Millisecond - time.Since(roundStart); gap > 0 {
							time.Sleep(gap)
						}
					}
					reqStart := time.Now()
					rep, err := cl.Submit(e.Req, nil)
					lat := time.Since(reqStart)
					mu.Lock()
					stats.Requests++
					latencies = append(latencies, float64(lat.Microseconds())/1000.0)
					if err != nil {
						stats.Failed++
					} else {
						stats.Cells += rep.Cells
					}
					mu.Unlock()
					if opts.Progress != nil {
						if err != nil {
							fmt.Fprintf(opts.Progress, "replay: client %d round %d req %d: FAILED: %v\n", ci, round, i, err)
						} else {
							fmt.Fprintf(opts.Progress, "replay: client %d round %d req %d: %d cells (%d computed, %d cached) in %v\n",
								ci, round, i, rep.Cells, rep.Computed, rep.Served, lat.Round(time.Millisecond))
						}
					}
				}
			}
		}(ci)
	}
	wg.Wait()
	stats.Wall = time.Since(start)
	stats.WallS = stats.Wall.Seconds()

	hits, misses := srv.Runner().CacheStats()
	stats.Hits, stats.Computed = hits, misses
	if total := hits + misses; total > 0 {
		stats.HitRate = float64(hits) / float64(total)
	}
	if s := stats.Wall.Seconds(); s > 0 {
		stats.CellsPerSec = float64(stats.Cells) / s
		stats.ComputedPerSec = float64(stats.Computed) / s
	}
	sort.Float64s(latencies)
	if n := len(latencies); n > 0 {
		stats.LatencyP50MS = latencies[n/2]
		stats.LatencyP95MS = latencies[n*95/100]
	}
	return stats, nil
}

// Render formats the replay stats as a human-readable block.
func (st *ReplayStats) Render() string {
	return fmt.Sprintf(
		"replay: %d request(s), %d failed\n"+
			"cells delivered: %d (%.1f/s) | computed: %d (%.1f/s) | cache hits: %d (hit rate %.1f%%)\n"+
			"wall: %v | request latency p50 %.1fms p95 %.1fms\n",
		st.Requests, st.Failed,
		st.Cells, st.CellsPerSec, st.Computed, st.ComputedPerSec, st.Hits, 100*st.HitRate,
		st.Wall.Round(time.Millisecond), st.LatencyP50MS, st.LatencyP95MS)
}
