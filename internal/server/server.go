// Package server turns the batch campaign harness into a long-running
// service: mi-serve accepts campaign requests (benchmark set x config matrix
// x engine) over HTTP/JSON, expands them into content-addressed cells,
// deduplicates identical cells across concurrent requests (scheduler-level
// request batching above the harness's singleflight result cache), executes
// them on a supervisor-admitted worker pool, and streams per-cell results as
// they land (NDJSON, or SSE on request), followed by a merged PerfReport
// that is byte-identical — modulo wall-clock, which mi-prof -diff strips —
// to the same campaign run locally by mi-bench.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/version"
)

// Config configures a campaign server.
type Config struct {
	// Workers is the cell worker-pool width (<=0 = GOMAXPROCS).
	Workers int
	// QueueCap bounds the scheduler queue; a full queue applies
	// backpressure to submitting requests (<=0 = Workers*64).
	QueueCap int
	// JournalPath, when set, checkpoints every completed cell to this
	// journal (the same JSONL format as mi-bench -journal).
	JournalPath string
	// WarmPath, when set, warms the result cache from this checkpoint
	// journal at startup: journaled cells replay instead of executing.
	WarmPath string
	// Policy supervises cells (deadline, retries, memory budget); its
	// Parallel field is overridden by Workers.
	Policy resilience.Policy
	// Logger, when non-nil, receives structured per-cell and per-request
	// records; every record carries the request's trace_id.
	Logger *slog.Logger
	// Trace, when non-nil, records request/queue/pipeline/execution spans
	// (mi-serve -trace writes it out at shutdown).
	Trace *telemetry.Trace
}

// Server is the campaign service: an HTTP handler plus the shared runner,
// scheduler, journal and metrics registry behind it.
type Server struct {
	cfg     Config
	runner  *harness.Runner
	sched   *Scheduler
	journal *resilience.Journal
	reg     *obs.Registry
	warmed  int
	start   time.Time

	draining    atomic.Bool
	reqTotal    atomic.Uint64
	reqActive   atomic.Int64
	reqRejected atomic.Uint64
}

// New builds a server: one shared harness runner (content-addressed result
// cache, supervision policy), warmed from the checkpoint journal if
// configured, and a running worker pool. The server always owns a metrics
// registry — /metricsz is first-class, not opt-in.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	r := harness.NewRunner()
	r.SetParallelism(cfg.Workers)
	pol := cfg.Policy
	pol.Parallel = cfg.Workers
	r.SetResilience(pol)
	reg := obs.NewRegistry()
	r.SetMetrics(reg)
	r.SetLogger(cfg.Logger)
	r.SetTrace(cfg.Trace)
	s := &Server{cfg: cfg, runner: r, reg: reg, start: time.Now()}
	if cfg.WarmPath != "" {
		st, err := warmUp(r, cfg.WarmPath)
		if err != nil {
			return nil, fmt.Errorf("warm-up from %s: %w", cfg.WarmPath, err)
		}
		s.warmed = st.Entries
	}
	if cfg.JournalPath != "" {
		j, err := resilience.OpenJournal(cfg.JournalPath)
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		s.journal = j
		r.SetJournal(j)
	}
	s.sched = NewScheduler(r, cfg.Workers, cfg.QueueCap)
	return s, nil
}

// Metrics returns the server's metrics registry (for tests and embedding).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Runner exposes the shared harness runner (the signal handler cancels its
// supervisor on forced shutdown).
func (s *Server) Runner() *harness.Runner { return s.runner }

// Warmed reports how many journaled cells were armed for replay at startup.
func (s *Server) Warmed() int { return s.warmed }

// Drain puts the server into draining mode: new campaign requests are
// rejected with 503 (and /healthz turns unhealthy, so load balancers stop
// routing here) while in-flight requests run to completion.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the scheduler (draining queued cells) and closes the journal.
// Call after the HTTP server has shut down.
func (s *Server) Close() error {
	s.sched.Stop()
	return s.journal.Close()
}

// Handler returns the server's HTTP handler:
//
//	POST /campaign  submit a campaign; streams NDJSON (or SSE) cell events
//	GET  /healthz   liveness + drain state
//	GET  /statsz    cache hit rate, queue depth, statuses, utilization
//	GET  /metricsz  Prometheus text exposition of the metrics registry
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/campaign", s.handleCampaign)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/metricsz", s.handleMetricsz)
	return mux
}

// Event is one streamed line of a campaign response. Cell events ("cell")
// land as cells complete, in completion order; the final event ("report")
// carries the merged PerfReport over exactly the request's cells.
type Event struct {
	Type string `json:"type"`
	// Cell event fields.
	Key    string              `json:"key,omitempty"`
	Cached bool                `json:"cached,omitempty"`
	Err    string              `json:"err,omitempty"`
	Rec    *harness.PerfRecord `json:"rec,omitempty"`
	// Report event fields.
	Cells    int                 `json:"cells,omitempty"`
	Computed int                 `json:"computed,omitempty"`
	Served   int                 `json:"served_cached,omitempty"`
	Failed   int                 `json:"failed,omitempty"`
	Report   *harness.PerfReport `json:"report,omitempty"`
	// TraceID is the request's trace ID (report event only): the key that
	// joins this response to the server's structured logs and trace spans.
	TraceID string `json:"trace_id,omitempty"`
}

// Stats is the /statsz document.
type Stats struct {
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// WarmedCells is how many journaled cells were armed for replay at
	// startup — replay gates normalize throughput against it.
	WarmedCells int  `json:"warmed_cells"`
	Draining    bool `json:"draining"`
	Requests    struct {
		Total    uint64 `json:"total"`
		Active   int64  `json:"active"`
		Rejected uint64 `json:"rejected"`
	} `json:"requests"`
	Cache     CacheStats `json:"cache"`
	Scheduler SchedStats `json:"scheduler"`
	Journal   struct {
		Path     string `json:"path,omitempty"`
		Appended int    `json:"appended"`
	} `json:"journal"`
}

// Snapshot assembles the current /statsz document.
func (s *Server) Snapshot() Stats {
	var st Stats
	st.Version = version.String()
	st.UptimeSeconds = time.Since(s.start).Seconds()
	st.WarmedCells = s.warmed
	st.Draining = s.draining.Load()
	st.Requests.Total = s.reqTotal.Load()
	st.Requests.Active = s.reqActive.Load()
	st.Requests.Rejected = s.reqRejected.Load()
	st.Cache = cacheStats(s.runner, s.warmed)
	st.Scheduler = s.sched.Stats()
	st.Journal.Path = s.journal.Path()
	st.Journal.Appended = s.journal.Entries()
	return st
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Snapshot())
}

func (s *Server) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	harness.PublishEngineTierMetrics(s.reg)
	s.reg.WritePrometheus(w)
}

// httpError writes a one-line JSON error.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// maxRequestBody bounds a campaign request body (a name matrix, not data).
const maxRequestBody = 1 << 20

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a CampaignRequest to /campaign")
		return
	}
	if s.draining.Load() {
		s.reqRejected.Add(1)
		s.reg.Counter("mi_requests_total", "Campaign requests, by outcome.", obs.L("outcome", "rejected")).Inc()
		httpError(w, http.StatusServiceUnavailable, "draining: not accepting new campaigns")
		return
	}
	traceID := obs.NewTraceID()
	lg := s.cfg.Logger
	if lg != nil {
		lg = lg.With("trace_id", traceID)
	}
	outcome := "ok"
	defer func() {
		s.reg.Counter("mi_requests_total", "Campaign requests, by outcome.", obs.L("outcome", outcome)).Inc()
	}()
	var req CampaignRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxRequestBody)).Decode(&req); err != nil {
		outcome = "bad_request"
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	cells, axes, err := expand(req)
	if err != nil {
		outcome = "bad_request"
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.reqTotal.Add(1)
	s.reqActive.Add(1)
	s.reg.Gauge("mi_requests_active", "Campaign requests currently streaming.").Inc()
	defer func() {
		s.reqActive.Add(-1)
		s.reg.Gauge("mi_requests_active", "Campaign requests currently streaming.").Dec()
	}()
	reqTID := s.cfg.Trace.Track("req:" + traceID)
	reqSpan := s.cfg.Trace.Begin("http:/campaign", reqTID)
	reqSpan.Arg("trace_id", traceID)
	reqSpan.Arg("cells", len(cells))
	defer reqSpan.End()
	if lg != nil {
		lg.Info("campaign accepted", "cells", len(cells), "engine", axes.Engine.String())
	}

	// Submit every cell before streaming anything: overlapping requests
	// coalesce in the scheduler, and the pool starts on the whole set at
	// once instead of discovering it cell by cell. Release gives our
	// references back on every exit path: an abandoned request cancels the
	// queued cells only it was waiting for.
	tasks := make([]*task, len(cells))
	defer func() { s.sched.Release(tasks) }()
	for i, c := range cells {
		t, _, err := s.sched.Submit(c, traceID)
		if err != nil {
			outcome = "rejected"
			httpError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		tasks[i] = t
	}

	sse := r.Header.Get("Accept") == "text/event-stream"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	flusher, _ := w.(http.Flusher)
	emit := func(ev Event) error {
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if sse {
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(w, "%s\n", data); err != nil {
				return err
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	// Fan-in: one waiter per task funnels completion order into done. The
	// channel is buffered to len(tasks), so waiters never block and exit
	// even when the client disconnects mid-stream.
	ctx := r.Context()
	doneCh := make(chan int, len(tasks))
	for i, t := range tasks {
		go func(i int, t *task) {
			select {
			case <-t.done:
				doneCh <- i
			case <-ctx.Done():
			}
		}(i, t)
	}

	computed, served, failed := 0, 0, 0
	for range tasks {
		var i int
		select {
		case i = <-doneCh:
		case <-ctx.Done():
			// Client gone. The deferred Release cancels queued cells only this
			// request was waiting for; cells already running (or shared with
			// other requests) finish into the shared cache.
			outcome = "aborted"
			if lg != nil {
				lg.Warn("campaign aborted: client disconnected mid-stream",
					"delivered", computed+served, "cells", len(tasks))
			}
			return
		}
		t := tasks[i]
		ev := Event{Type: "cell", Key: t.cell.key, Cached: t.cached}
		switch {
		case t.err != nil:
			// Infrastructure failure (e.g. the benchmark does not compile):
			// there is no result record, only a cause.
			ev.Err = t.err.Error()
			failed++
		default:
			rec := harness.RecordOf(t.cell.key, t.res)
			ev.Rec = &rec
			if t.res.Err != nil {
				failed++
			}
		}
		if t.cached {
			served++
		} else {
			computed++
		}
		if err := emit(ev); err != nil {
			outcome = "aborted"
			if lg != nil {
				lg.Warn("campaign aborted: write failed mid-stream", "err", err.Error())
			}
			return
		}
	}

	report := s.runner.ReportForKeys(axes.Engine.String(), axes.SiteProfile, keysOf(cells))
	if lg != nil {
		lg.Info("campaign complete", "cells", len(cells), "computed", computed, "served_cached", served, "failed", failed)
	}
	_ = emit(Event{
		Type:     "report",
		Cells:    len(cells),
		Computed: computed,
		Served:   served,
		Failed:   failed,
		Report:   report,
		TraceID:  traceID,
	})
}
