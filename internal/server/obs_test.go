package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bytecode"
	"repro/internal/obs"
)

// syncBuffer is a goroutine-safe log sink for test servers.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// scrapeMetrics fetches /metricsz as Prometheus text.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metricsz")
	if err != nil {
		t.Fatalf("GET /metricsz: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /metricsz: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metricsz: status %d", resp.StatusCode)
	}
	return string(data)
}

// promSum sums every series of one family in Prometheus text (counters and
// gauges; pass the _count suffix explicitly for histogram counts).
func promSum(t *testing.T, text, family string) float64 {
	t.Helper()
	sum := 0.0
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		if !strings.HasPrefix(rest, "{") && !strings.HasPrefix(rest, " ") {
			continue // longer family name sharing the prefix
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		sum += v
	}
	return sum
}

// TestMetricszInvariants is the reconciliation gate: after campaigns run,
// the /metricsz exposition must agree with itself (hits+misses == lookups,
// histogram counts == cell counts) and with /statsz (cell count == computed
// cells).
func TestMetricszInvariants(t *testing.T) {
	srv, cl := startTestServer(t, Config{Workers: 2})
	req := testRequest("bytecode")
	cells, _, err := expand(req)
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	for round := 0; round < 2; round++ { // round 2 is all cache hits
		ev, err := cl.Submit(req, nil)
		if err != nil {
			t.Fatalf("Submit round %d: %v", round, err)
		}
		if ev.Failed != 0 || ev.Cells != len(cells) {
			t.Fatalf("round %d: cells=%d failed=%d, want cells=%d failed=0", round, ev.Cells, ev.Failed, len(cells))
		}
		if ev.TraceID == "" {
			t.Errorf("round %d: report event carries no trace_id", round)
		}
	}

	text := scrapeMetrics(t, cl.BaseURL)
	for _, want := range []string{
		"# TYPE mi_cells_total counter",
		"# TYPE mi_cell_execute_seconds histogram",
		"# TYPE mi_queue_depth gauge",
		"# TYPE mi_requests_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metricsz missing %q", want)
		}
	}

	cellsTotal := promSum(t, text, "mi_cells_total")
	computed := float64(srv.Snapshot().Cache.Computed)
	if cellsTotal != computed {
		t.Errorf("sum(mi_cells_total) = %v, /statsz cache.computed = %v", cellsTotal, computed)
	}
	hits := promSum(t, text, "mi_cache_hits_total")
	misses := promSum(t, text, "mi_cache_misses_total")
	lookups := promSum(t, text, "mi_cache_lookups_total")
	if hits+misses != lookups {
		t.Errorf("hits(%v) + misses(%v) != lookups(%v)", hits, misses, lookups)
	}
	if misses != computed {
		t.Errorf("mi_cache_misses_total = %v, computed = %v", misses, computed)
	}
	for _, h := range []string{"mi_cell_execute_seconds_count", "mi_cell_total_seconds_count"} {
		if n := promSum(t, text, h); n != cellsTotal {
			t.Errorf("%s = %v, want %v (one observation per cell)", h, n, cellsTotal)
		}
	}
	if n := promSum(t, text, "mi_cell_queue_wait_seconds_count"); n != promSum(t, text, "mi_cells_scheduled_total") {
		t.Errorf("queue-wait observations = %v, scheduled = %v", n, promSum(t, text, "mi_cells_scheduled_total"))
	}
	if got := promSum(t, text, "mi_requests_total"); got != 2 {
		t.Errorf("mi_requests_total = %v, want 2", got)
	}
	if depth := promSum(t, text, "mi_queue_depth"); depth != 0 {
		t.Errorf("mi_queue_depth = %v after campaigns drained, want 0", depth)
	}
}

// TestClientDisconnectMidStream is the abandonment gate: when the only
// client of a campaign disconnects mid-stream, the queued cells it
// exclusively owns must be canceled (never executed), the queue gauges must
// drain to zero, and the abort must be logged — all observable via
// /metricsz. A later identical campaign must still complete cleanly by
// recomputing the canceled cells.
func TestClientDisconnectMidStream(t *testing.T) {
	logBuf := &syncBuffer{}
	lg, err := obs.NewLogger(logBuf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	srv, cl := startTestServer(t, Config{Workers: 1, Logger: lg})
	req := testRequest("bytecode")
	cells, _, err := expand(req)
	if err != nil {
		t.Fatalf("expand: %v", err)
	}

	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(cl.BaseURL+"/campaign", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /campaign: %v", err)
	}
	// Read exactly one streamed cell event, then vanish.
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading first event: %v", err)
	}
	var first Event
	if err := json.Unmarshal([]byte(line), &first); err != nil {
		t.Fatalf("first event %q: %v", line, err)
	}
	if first.Type != "cell" {
		t.Fatalf("first event type %q, want cell", first.Type)
	}
	resp.Body.Close()

	// The disconnect must cancel the queued cells only this request held,
	// and the queue gauges must drain.
	deadline := time.Now().Add(15 * time.Second)
	var canceled, depth, busy float64
	for {
		text := scrapeMetrics(t, cl.BaseURL)
		canceled = promSum(t, text, "mi_cells_canceled_total")
		depth = promSum(t, text, "mi_queue_depth")
		busy = promSum(t, text, "mi_workers_busy")
		if canceled >= 1 && depth == 0 && busy == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("after disconnect: canceled=%v queue_depth=%v workers_busy=%v, want canceled>=1 and drained gauges", canceled, depth, busy)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := srv.Snapshot().Scheduler.Canceled; got < 1 {
		t.Errorf("scheduler stats canceled = %d, want >= 1", got)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "campaign aborted") {
		t.Errorf("logs carry no campaign-abort record:\n%s", logs)
	}
	if !strings.Contains(logs, "cell canceled") {
		t.Errorf("logs carry no cell-cancel record:\n%s", logs)
	}

	// Canceled cells were never executed and never cached: the same campaign
	// must now complete by computing them.
	ev, err := cl.Submit(req, nil)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if ev.Failed != 0 || ev.Cells != len(cells) {
		t.Fatalf("resubmit: cells=%d failed=%d, want cells=%d failed=0", ev.Cells, ev.Failed, len(cells))
	}
	if ev.Computed < 1 {
		t.Errorf("resubmit computed %d cells, want >= 1 (the canceled ones recompute)", ev.Computed)
	}
}

// TestMetricszTierInvariants is the compiler-tier reconciliation gate: after
// a compiler-engine campaign, /metricsz must expose the tier-attribution
// gauges and they must reconcile — quickened + fused + native + interpreted
// instructions sum exactly to the total retired by compiler-tier engines, the
// native tier actually engaged (entries and native instructions nonzero when
// the platform supports it), and no fallback reason fired on the happy path.
func TestMetricszTierInvariants(t *testing.T) {
	_, cl := startTestServer(t, Config{Workers: 2})
	req := testRequest("compiler")
	cells, _, err := expand(req)
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	ev, err := cl.Submit(req, nil)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if ev.Failed != 0 || ev.Cells != len(cells) {
		t.Fatalf("cells=%d failed=%d, want cells=%d failed=0", ev.Cells, ev.Failed, len(cells))
	}

	text := scrapeMetrics(t, cl.BaseURL)
	for _, want := range []string{
		"# TYPE mi_tier_instrs gauge",
		"# TYPE mi_tier_total_instrs gauge",
		"# TYPE mi_native_fallbacks gauge",
		"# TYPE mi_native_build_ms gauge",
		`mi_tier_instrs{tier="quickened"}`,
		`mi_tier_instrs{tier="fused"}`,
		`mi_tier_instrs{tier="native"}`,
		`mi_tier_instrs{tier="interpreted"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metricsz missing %q", want)
		}
	}

	total := promSum(t, text, "mi_tier_total_instrs")
	if total <= 0 {
		t.Fatal("mi_tier_total_instrs = 0 after a compiler-engine campaign")
	}
	if sum := promSum(t, text, "mi_tier_instrs"); sum != total {
		t.Errorf("sum(mi_tier_instrs) = %v, mi_tier_total_instrs = %v (every instruction must land in exactly one tier)", sum, total)
	}
	if !bytecode.NativeAvailable() {
		t.Log("native tier disabled on this platform; skipping native-engagement assertions")
		return
	}
	if fails := promSum(t, text, "mi_native_failures"); fails > 0 {
		t.Logf("native builds failed in this environment (%v); skipping native-engagement assertions", fails)
		return
	}
	if entries := promSum(t, text, "mi_native_entries"); entries <= 0 {
		t.Error("mi_native_entries = 0: the native tier never engaged on a happy-path compiler campaign")
	}
	if native := promSum(t, text, `mi_tier_instrs{tier="native"}`); native <= 0 {
		t.Error("mi_tier_instrs{tier=\"native\"} = 0: native code retired no instructions")
	}
	if fb := promSum(t, text, "mi_native_fallbacks"); fb != 0 {
		t.Errorf("mi_native_fallbacks sum = %v, want 0 on the happy path:\n%s", fb, text)
	}
}

// TestStatszVersionAndWarmed pins the /statsz additions: build version,
// uptime and warmed-cell count.
func TestStatszVersionAndWarmed(t *testing.T) {
	_, cl := startTestServer(t, Config{Workers: 1})
	resp, err := http.Get(cl.BaseURL + "/statsz")
	if err != nil {
		t.Fatalf("GET /statsz: %v", err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding /statsz: %v", err)
	}
	if st.Version == "" {
		t.Error("statsz version is empty")
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("statsz uptime_seconds = %v, want > 0", st.UptimeSeconds)
	}
	if st.WarmedCells != 0 {
		t.Errorf("statsz warmed_cells = %d, want 0 (no warm journal)", st.WarmedCells)
	}
}
