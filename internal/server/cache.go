package server

import (
	"fmt"
	"sort"

	"repro/internal/bytecode"
	"repro/internal/harness"
	"repro/internal/resilience"
	"repro/internal/spec"
)

// The server's result cache IS the harness runner's content-addressed
// singleflight cache — this file is the glue that turns HTTP campaign
// requests into content-addressed cells, warms the cache from a checkpoint
// journal, and snapshots cache statistics for /statsz. Keying by
// harness.CacheKey (source benchmark x config x engine x cost model) is what
// makes identical cells across requests the common case: a fleet of users
// re-running the standard matrix shares one computation per cell.

// CampaignRequest is the JSON body of POST /campaign: a benchmark set, a
// configuration matrix (named — see harness.ConfigNames — so server and
// client provably agree on every config field and hence on the cache key),
// an engine, and the VM instrumentation axes.
type CampaignRequest struct {
	// Benches selects benchmarks by name; empty means the full suite.
	Benches []string `json:"benches,omitempty"`
	// Configs names the configurations of the matrix (required).
	Configs []string `json:"configs"`
	// Engine is "tree" or "bytecode" (default).
	Engine string `json:"engine,omitempty"`
	// SiteProfile and Forensics toggle the instrumented VM variants.
	SiteProfile bool `json:"site_profile,omitempty"`
	Forensics   bool `json:"forensics,omitempty"`
}

// expand resolves a request into its cells (bench x config, each keyed) and
// the request's execution axes. Every name is validated up front so a bad
// request fails as one 400, not as a half-executed campaign.
func expand(req CampaignRequest) ([]cell, harness.RunAxes, error) {
	var axes harness.RunAxes
	if len(req.Configs) == 0 {
		return nil, axes, fmt.Errorf("request names no configs (known: %v)", harness.ConfigNames())
	}
	engineName := req.Engine
	if engineName == "" {
		engineName = "bytecode"
	}
	engine, err := bytecode.ParseEngine(engineName)
	if err != nil {
		return nil, axes, err
	}
	axes = harness.RunAxes{Engine: engine, SiteProfile: req.SiteProfile, Forensics: req.Forensics}

	benches := spec.All()
	if len(req.Benches) > 0 {
		byName := make(map[string]*spec.Benchmark, len(benches))
		for _, b := range benches {
			byName[b.Name] = b
		}
		picked := make([]*spec.Benchmark, 0, len(req.Benches))
		seen := make(map[string]bool)
		for _, name := range req.Benches {
			b, ok := byName[name]
			if !ok {
				return nil, axes, fmt.Errorf("unknown benchmark %q", name)
			}
			if seen[name] {
				continue
			}
			seen[name] = true
			picked = append(picked, b)
		}
		benches = picked
	}

	configs := make([]harness.RunConfig, 0, len(req.Configs))
	seenCfg := make(map[string]bool)
	for _, name := range req.Configs {
		cfg, err := harness.ConfigByName(name)
		if err != nil {
			return nil, axes, err
		}
		if seenCfg[name] {
			continue
		}
		seenCfg[name] = true
		configs = append(configs, cfg)
	}

	cells := make([]cell, 0, len(benches)*len(configs))
	for _, b := range benches {
		for _, cfg := range configs {
			cells = append(cells, cell{
				bench: b,
				cfg:   cfg,
				axes:  axes,
				key:   axes.Key(b.Name, cfg).String(),
			})
		}
	}
	return cells, axes, nil
}

// keysOf lists the cells' cache keys in submission order.
func keysOf(cells []cell) []string {
	keys := make([]string, len(cells))
	for i, c := range cells {
		keys[i] = c.key
	}
	return keys
}

// warmUp loads a checkpoint journal into the runner: journaled cells replay
// from it instead of executing, so a server restarted over an existing
// journal serves its whole prior working set without recomputation. The
// journal format and keys are shared with mi-bench (-journal/-resume), so a
// batch campaign's checkpoints warm the server and vice versa.
func warmUp(r *harness.Runner, path string) (resilience.LoadStats, error) {
	return r.Resume(path)
}

// CacheStats is the /statsz cache section: the content-addressed result
// cache's hit economics plus the per-status outcome of every cell computed
// so far.
type CacheStats struct {
	// Hits were served without executing (including coalesced singleflight
	// waiters); Computed cells executed. HitRate is Hits/(Hits+Computed).
	Hits     uint64  `json:"hits"`
	Computed uint64  `json:"computed"`
	HitRate  float64 `json:"hit_rate"`
	// Warmed is how many journaled cells were armed for replay at startup.
	Warmed int `json:"warmed"`
	// ByStatus counts completed cells per supervision status (ok, retried,
	// timeout, oom, panic, failed, skipped).
	ByStatus map[string]int `json:"by_status,omitempty"`
	// BadCells lists cells that did not complete cleanly, sorted.
	BadCells []string `json:"bad_cells,omitempty"`
}

// cacheStats snapshots the runner's cache counters and cell statuses.
func cacheStats(r *harness.Runner, warmed int) CacheStats {
	hits, misses := r.CacheStats()
	st := CacheStats{Hits: hits, Computed: misses, Warmed: warmed}
	if total := hits + misses; total > 0 {
		st.HitRate = float64(hits) / float64(total)
	}
	counts, bad := r.CellStatuses()
	if len(counts) > 0 {
		st.ByStatus = counts
	}
	sort.Strings(bad)
	st.BadCells = bad
	return st
}
