package server

import (
	"os"
	"runtime"
	"testing"
)

// TestRecordLoadRoundtrip pins the traffic-log format: recorded requests
// load back intact, and a torn trailing line is skipped (consistent with the
// checkpoint journal's loader) instead of failing the whole log.
func TestRecordLoadRoundtrip(t *testing.T) {
	path := t.TempDir() + "/traffic.jsonl"
	rec, err := NewRecorder(path)
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	reqs := []CampaignRequest{
		{Benches: []string{"164gzip"}, Configs: []string{"baseline", "softbound"}},
		{Configs: []string{"lowfat"}, Engine: "tree", SiteProfile: true},
	}
	for _, r := range reqs {
		if err := rec.Record(r); err != nil {
			t.Fatalf("Record: %v", err)
		}
	}
	if rec.Entries() != len(reqs) {
		t.Fatalf("Entries() = %d, want %d", rec.Entries(), len(reqs))
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A torn final write (half a JSON line) must not poison the log.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"at_ms":12,"req":{"conf`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	log, err := LoadTraffic(path)
	if err != nil {
		t.Fatalf("LoadTraffic: %v", err)
	}
	if len(log) != len(reqs) {
		t.Fatalf("loaded %d entries, want %d (torn line skipped)", len(log), len(reqs))
	}
	if got := log[0].Req; got.Benches[0] != "164gzip" || len(got.Configs) != 2 {
		t.Errorf("entry 0 = %+v, want %+v", got, reqs[0])
	}
	if got := log[1].Req; got.Engine != "tree" || !got.SiteProfile {
		t.Errorf("entry 1 = %+v, want %+v", got, reqs[1])
	}
}

// TestReplay drives a recorded log through a fresh in-process server with
// overlapping clients and repeated rounds: every request must succeed, each
// distinct cell must compute exactly once (rounds beyond the first measure
// cache-hit throughput), and the stats must account for every delivery.
func TestReplay(t *testing.T) {
	log := []TrafficEntry{
		{Req: CampaignRequest{Benches: []string{"164gzip"}, Configs: []string{"baseline", "softbound"}}},
		{AtMS: 1, Req: CampaignRequest{Benches: []string{"179art"}, Configs: []string{"baseline", "lowfat"}}},
	}
	const distinctCells = 4
	st, err := RunReplay(ReplayOptions{
		Log:     log,
		Server:  Config{Workers: 2},
		Clients: 2,
		Rounds:  2,
	})
	if err != nil {
		t.Fatalf("RunReplay: %v", err)
	}
	wantReqs := len(log) * 2 * 2
	if st.Requests != wantReqs || st.Failed != 0 {
		t.Fatalf("requests=%d failed=%d, want %d/0", st.Requests, st.Failed, wantReqs)
	}
	if st.Computed != distinctCells {
		t.Errorf("computed %d cells, want exactly %d (cross-round dedup)", st.Computed, distinctCells)
	}
	if wantCells := wantReqs * 2; st.Cells != wantCells {
		t.Errorf("delivered %d cells, want %d", st.Cells, wantCells)
	}
	if st.Hits == 0 || st.HitRate <= 0 {
		t.Errorf("hits=%d rate=%.2f, want cache hits from repeated rounds", st.Hits, st.HitRate)
	}
	if st.CellsPerSec <= 0 || st.WallS <= 0 || st.LatencyP95MS <= 0 {
		t.Errorf("degenerate stats: %+v", st)
	}
	if st.Render() == "" {
		t.Error("empty Render")
	}
}

// TestReplayThroughputScaling is the load-test acceptance gate: on a
// distinct-cell-heavy log, computed-cell throughput must scale with the
// worker pool. Meaningless on a single-CPU host, so it skips there; the
// threshold is deliberately lenient (well under linear) and the comparison
// retried once to keep CI off the flake list.
func TestReplayThroughputScaling(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 {
		t.Skipf("GOMAXPROCS=%d: no parallelism to measure", procs)
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	wide := procs
	if wide > 4 {
		wide = 4
	}
	// Enough distinct cells to keep `wide` workers busy: 6 benches x 3
	// configs = 18 cells in one request.
	log := []TrafficEntry{{Req: CampaignRequest{
		Benches: []string{"164gzip", "179art", "181mcf", "183equake", "186crafty", "197parser"},
		Configs: []string{"baseline", "softbound", "lowfat"},
	}}}
	run := func(workers int) float64 {
		st, err := RunReplay(ReplayOptions{Log: log, Server: Config{Workers: workers}})
		if err != nil {
			t.Fatalf("RunReplay(workers=%d): %v", workers, err)
		}
		if st.Failed != 0 {
			t.Fatalf("RunReplay(workers=%d): %d failed requests", workers, st.Failed)
		}
		return st.ComputedPerSec
	}
	const wantSpeedup = 1.25
	for attempt := 0; ; attempt++ {
		narrow, broad := run(1), run(wide)
		if broad >= wantSpeedup*narrow {
			return
		}
		if attempt == 1 {
			t.Fatalf("computed-cell throughput did not scale: %d workers %.1f/s vs 1 worker %.1f/s (want >= %.2fx)",
				wide, broad, narrow, wantSpeedup)
		}
	}
}
