package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client submits campaigns to a running mi-serve and consumes its streamed
// responses. mi-bench's -server mode and the replay load generator are both
// built on it.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8077".
	BaseURL string
	// HTTP is the transport (nil = a default client with no timeout;
	// campaign streams are long-lived, so the zero http.Client timeout is
	// correct).
	HTTP *http.Client
	// Recorder, when non-nil, appends every submitted request to a traffic
	// log for later replay.
	Recorder *Recorder
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{}
}

// Submit posts the campaign and streams its NDJSON events; onCell (optional)
// is called for every cell event as it lands. The final report event is
// returned.
func (c *Client) Submit(req CampaignRequest, onCell func(Event)) (*Event, error) {
	if c.Recorder != nil {
		if err := c.Recorder.Record(req); err != nil {
			return nil, fmt.Errorf("recording request: %w", err)
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Post(strings.TrimSuffix(c.BaseURL, "/")+"/campaign",
		"application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("server: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return nil, fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}

	sc := bufio.NewScanner(resp.Body)
	// Report events carry a full PerfReport (sites included under
	// -siteprofile); size the line buffer like the journal reader does.
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	var report *Event
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("decoding stream: %w", err)
		}
		switch ev.Type {
		case "cell":
			if onCell != nil {
				onCell(ev)
			}
		case "report":
			report = &ev
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading stream: %w", err)
	}
	if report == nil {
		return nil, fmt.Errorf("stream ended without a report event (connection cut mid-campaign?)")
	}
	return report, nil
}

// Statsz fetches and decodes /statsz.
func (c *Client) Statsz() (*Stats, error) {
	resp, err := c.http().Get(strings.TrimSuffix(c.BaseURL, "/") + "/statsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("statsz: HTTP %d", resp.StatusCode)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// WaitHealthy polls /healthz until the server answers ok or the timeout
// expires — the startup handshake of the e2e smoke tests.
func (c *Client) WaitHealthy(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	url := strings.TrimSuffix(c.BaseURL, "/") + "/healthz"
	var last error
	for time.Now().Before(deadline) {
		resp, err := c.http().Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
		} else {
			last = err
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("server not healthy after %v: %w", timeout, last)
}
