package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
)

// testBenches are small, fast suite members: these tests exercise the
// serving machinery, not the benchmarks.
var testBenches = []string{"164gzip", "179art"}

func testRequest(engine string) CampaignRequest {
	return CampaignRequest{
		Benches: testBenches,
		Configs: []string{"baseline", "softbound", "lowfat"},
		Engine:  engine,
	}
}

// startTestServer builds a server over the full HTTP stack (real listener,
// real client) and tears it down with the test.
func startTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hts.Close()
		_ = srv.Close()
	})
	return srv, &Client{BaseURL: hts.URL}
}

func canonicalJSON(t *testing.T, rep *harness.PerfReport) string {
	t.Helper()
	data, err := json.Marshal(rep.Canonical())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(data)
}

// TestServerMatchesLocalRun is the fidelity gate: the report a campaign
// request streams back must be byte-identical — in canonical form, which is
// what mi-prof -diff compares — to the same campaign executed locally by a
// plain harness runner, on both engines.
func TestServerMatchesLocalRun(t *testing.T) {
	for _, engine := range []string{"bytecode", "tree"} {
		t.Run(engine, func(t *testing.T) {
			req := testRequest(engine)
			cells, axes, err := expand(req)
			if err != nil {
				t.Fatalf("expand: %v", err)
			}

			_, cl := startTestServer(t, Config{Workers: 2})
			ev, err := cl.Submit(req, nil)
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			if ev.Failed != 0 || ev.Cells != len(cells) {
				t.Fatalf("report event: cells=%d failed=%d, want cells=%d failed=0",
					ev.Cells, ev.Failed, len(cells))
			}

			local := harness.NewRunner()
			local.SetEngine(axes.Engine)
			for _, c := range cells {
				if _, err := local.Run(c.bench, c.cfg); err != nil {
					t.Fatalf("local run %s: %v", c.key, err)
				}
			}
			localRep := local.ReportForKeys(axes.Engine.String(), false, keysOf(cells))

			got, want := canonicalJSON(t, ev.Report), canonicalJSON(t, localRep)
			if got != want {
				t.Errorf("served report differs from local run\nserved: %s\nlocal:  %s", got, want)
			}
		})
	}
}

// TestConcurrentSameKeyRequests is the dedup gate: N concurrent requests for
// the same matrix must compute each distinct cell exactly once between the
// scheduler's in-flight coalescing and the runner's singleflight cache —
// observable via /statsz. Run under -race this also proves cross-request
// isolation of the whole serving stack.
func TestConcurrentSameKeyRequests(t *testing.T) {
	_, cl := startTestServer(t, Config{Workers: 4})
	req := testRequest("bytecode")
	cells, _, err := expand(req)
	if err != nil {
		t.Fatalf("expand: %v", err)
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			own := &Client{BaseURL: cl.BaseURL}
			ev, err := own.Submit(req, nil)
			if err == nil && (ev.Failed != 0 || ev.Cells != len(cells)) {
				err = fmt.Errorf("cells=%d failed=%d, want cells=%d failed=0", ev.Cells, ev.Failed, len(cells))
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	st, err := cl.Statsz()
	if err != nil {
		t.Fatalf("Statsz: %v", err)
	}
	if st.Cache.Computed != uint64(len(cells)) {
		t.Errorf("computed %d cells for %d identical concurrent requests, want exactly %d (each cell once)",
			st.Cache.Computed, clients, len(cells))
	}
	if st.Requests.Total != clients {
		t.Errorf("requests.total = %d, want %d", st.Requests.Total, clients)
	}
	if got := st.Scheduler.Scheduled + st.Scheduler.Coalesced; got < uint64(len(cells)) {
		t.Errorf("scheduled+coalesced = %d, want >= %d", got, len(cells))
	}
}

// TestRepeatRequestServedFromCache: a repeated identical request must be
// served at least 90% from the content-addressed cache (the acceptance
// criterion; in practice 100%), with no recomputation visible in /statsz.
func TestRepeatRequestServedFromCache(t *testing.T) {
	_, cl := startTestServer(t, Config{Workers: 2})
	req := testRequest("bytecode")

	first, err := cl.Submit(req, nil)
	if err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	st1, err := cl.Statsz()
	if err != nil {
		t.Fatalf("Statsz: %v", err)
	}

	second, err := cl.Submit(req, nil)
	if err != nil {
		t.Fatalf("second Submit: %v", err)
	}
	if second.Cells != first.Cells {
		t.Fatalf("second request saw %d cells, first saw %d", second.Cells, first.Cells)
	}
	if frac := float64(second.Served) / float64(second.Cells); frac < 0.9 {
		t.Errorf("repeat request served %d/%d = %.0f%% from cache, want >= 90%%",
			second.Served, second.Cells, 100*frac)
	}
	st2, err := cl.Statsz()
	if err != nil {
		t.Fatalf("Statsz: %v", err)
	}
	if st2.Cache.Computed != st1.Cache.Computed {
		t.Errorf("repeat request recomputed cells: computed %d -> %d", st1.Cache.Computed, st2.Cache.Computed)
	}
	if st2.Cache.Hits <= st1.Cache.Hits {
		t.Errorf("repeat request did not register cache hits: %d -> %d", st1.Cache.Hits, st2.Cache.Hits)
	}
}

// TestBadRequestsFailAsOne400 pins expand's up-front validation: a bad name
// anywhere in the matrix rejects the whole request before any cell runs.
func TestBadRequestsFailAsOne400(t *testing.T) {
	_, cl := startTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		req  CampaignRequest
		want string
	}{
		{"no configs", CampaignRequest{Benches: testBenches}, "no configs"},
		{"unknown config", CampaignRequest{Benches: testBenches, Configs: []string{"baseline", "nonsense"}}, "unknown config"},
		{"unknown bench", CampaignRequest{Benches: []string{"999nope"}, Configs: []string{"baseline"}}, "unknown benchmark"},
		{"unknown engine", CampaignRequest{Benches: testBenches, Configs: []string{"baseline"}, Engine: "quantum"}, "quantum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := cl.Submit(tc.req, nil)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Submit = %v, want error containing %q", err, tc.want)
			}
			if !strings.Contains(err.Error(), "400") {
				t.Fatalf("Submit = %v, want HTTP 400", err)
			}
		})
	}

	resp, err := http.Get(cl.BaseURL + "/campaign")
	if err != nil {
		t.Fatalf("GET /campaign: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /campaign = HTTP %d, want 405", resp.StatusCode)
	}
}

// TestDrain pins graceful-drain semantics: after Drain, /healthz turns
// unhealthy (load balancers stop routing) and new campaigns get 503.
func TestDrain(t *testing.T) {
	srv, cl := startTestServer(t, Config{Workers: 1})
	if err := cl.WaitHealthy(2 * time.Second); err != nil {
		t.Fatalf("WaitHealthy: %v", err)
	}
	resp, err := http.Get(cl.BaseURL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = HTTP %d, want 200", resp.StatusCode)
	}

	srv.Drain()
	if !srv.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	resp, err = http.Get(cl.BaseURL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = HTTP %d, want 503", resp.StatusCode)
	}

	_, err = cl.Submit(CampaignRequest{Benches: testBenches[:1], Configs: []string{"baseline"}}, nil)
	if err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("Submit while draining = %v, want draining rejection", err)
	}
	st, err := cl.Statsz()
	if err != nil {
		t.Fatalf("Statsz: %v", err)
	}
	if !st.Draining || st.Requests.Rejected != 1 {
		t.Errorf("statsz: draining=%t rejected=%d, want true/1", st.Draining, st.Requests.Rejected)
	}
}

// TestJournalWarmUp proves the checkpoint round trip: a server journaling its
// cells can be restarted with -warm over the same file and serve the prior
// working set without recomputing, byte-identically.
func TestJournalWarmUp(t *testing.T) {
	journal := t.TempDir() + "/cells.jsonl"
	req := CampaignRequest{Benches: testBenches[:1], Configs: []string{"baseline", "softbound"}}

	srvA, err := New(Config{Workers: 1, JournalPath: journal})
	if err != nil {
		t.Fatalf("New A: %v", err)
	}
	htsA := httptest.NewServer(srvA.Handler())
	first, err := (&Client{BaseURL: htsA.URL}).Submit(req, nil)
	htsA.Close()
	if err != nil {
		t.Fatalf("Submit A: %v", err)
	}
	if err := srvA.Close(); err != nil {
		t.Fatalf("Close A: %v", err)
	}

	srvB, cl := startTestServer(t, Config{Workers: 1, WarmPath: journal})
	if srvB.Warmed() != first.Cells {
		t.Fatalf("Warmed() = %d, want %d", srvB.Warmed(), first.Cells)
	}
	second, err := cl.Submit(req, nil)
	if err != nil {
		t.Fatalf("Submit B: %v", err)
	}
	got, want := canonicalJSON(t, second.Report), canonicalJSON(t, first.Report)
	if got != want {
		t.Errorf("warmed report differs from original\nwarmed:   %s\noriginal: %s", got, want)
	}
}

// TestSSEStream: a client sending Accept: text/event-stream gets the same
// events framed as SSE.
func TestSSEStream(t *testing.T) {
	_, cl := startTestServer(t, Config{Workers: 1})
	body, _ := json.Marshal(CampaignRequest{Benches: testBenches[:1], Configs: []string{"baseline"}})
	hreq, err := http.NewRequest(http.MethodPost, cl.BaseURL+"/campaign", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"event: cell", "event: report", "data: "} {
		if !strings.Contains(out, want) {
			t.Errorf("SSE stream missing %q:\n%s", want, out)
		}
	}
}

// TestSchedulerStop pins shutdown behavior: Stop drains and further Submits
// are rejected instead of panicking on a closed queue.
func TestSchedulerStop(t *testing.T) {
	r := harness.NewRunner()
	s := NewScheduler(r, 1, 0)
	cells, _, err := expand(CampaignRequest{Benches: testBenches[:1], Configs: []string{"baseline"}})
	if err != nil {
		t.Fatal(err)
	}
	tk, coalesced, err := s.Submit(cells[0], "t-test")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if coalesced {
		t.Fatal("first Submit reported coalesced")
	}
	<-tk.done
	if tk.err != nil {
		t.Fatalf("task: %v", tk.err)
	}
	s.Stop()
	s.Stop() // idempotent
	if _, _, err := s.Submit(cells[0], "t-test"); err == nil {
		t.Fatal("Submit after Stop succeeded, want error")
	}
}
