package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/spec"
)

// The scheduler is the server's batching layer: every campaign request is
// expanded into cells, and cells are submitted here. Identical cells from
// overlapping requests — the common case for a fleet of users re-running the
// standard matrix — coalesce onto one in-flight task (request batching), and
// the worker pool drains the shared queue, so N requests for the same
// campaign cost one campaign. Below the scheduler, the harness runner's
// singleflight result cache guarantees the same property per key even for
// cells that raced past the in-flight map, and serves completed cells in
// O(1) forever after.

// cell is one schedulable unit: a benchmark under a configuration and a set
// of execution axes, content-addressed by its harness.CacheKey.
type cell struct {
	bench *spec.Benchmark
	cfg   harness.RunConfig
	axes  harness.RunAxes
	key   string
}

// task is the scheduled execution of one cell. Multiple requests may hold
// the same task; done is closed exactly once, after res/cached/err are set.
type task struct {
	cell cell
	done chan struct{}
	res  *harness.Result
	// cached reports that the runner served the cell from its result cache
	// without executing it (warm-up replays count as computed: they run
	// through supervision, just instantly).
	cached bool
	err    error

	// traceID is the submitting request's trace ID (the first submitter
	// wins; coalesced requests share its spans). enqueued feeds the
	// queue-wait histogram and span; tid is the telemetry track the cell's
	// whole pipeline lands on.
	traceID  string
	enqueued time.Time
	tid      int

	// refs counts requests currently holding this task; started marks worker
	// pickup; canceled marks a queued task released by its last holder before
	// pickup (the worker skips it). All three are guarded by Scheduler.mu.
	refs     int
	started  bool
	canceled bool
}

// Scheduler owns the worker pool and the in-flight dedup map.
type Scheduler struct {
	runner  *harness.Runner
	queue   chan *task
	workers int

	mu       sync.Mutex
	inflight map[string]*task

	// sendMu is held shared across queue sends and exclusively by Stop, so
	// the queue is never closed while a Submit is mid-send. closed is read
	// under sendMu (either mode).
	sendMu sync.RWMutex
	closed bool

	busy      atomic.Int64
	queued    atomic.Int64
	scheduled atomic.Uint64
	coalesced atomic.Uint64
	canceled  atomic.Uint64
	detached  atomic.Uint64

	wg sync.WaitGroup
}

// SchedStats is the scheduler's /statsz contribution.
type SchedStats struct {
	// Workers is the pool size; Busy how many are executing a cell right
	// now; Utilization is Busy/Workers.
	Workers     int     `json:"workers"`
	Busy        int     `json:"busy"`
	Utilization float64 `json:"utilization"`
	// QueueDepth is the number of submitted tasks not yet picked up.
	QueueDepth int `json:"queue_depth"`
	// Scheduled counts tasks enqueued; Coalesced counts submissions that
	// attached to an already in-flight task instead of enqueueing a new one
	// (request batching at work).
	Scheduled uint64 `json:"scheduled"`
	Coalesced uint64 `json:"coalesced"`
	// Canceled counts queued tasks whose only holders disconnected before a
	// worker picked them up; Detached counts running tasks abandoned by
	// every holder (they finish into the shared cache).
	Canceled uint64 `json:"canceled"`
	Detached uint64 `json:"detached"`
}

// NewScheduler starts a worker pool of the given width over the shared
// runner. queueCap bounds the submission queue; a full queue applies
// backpressure to submitting requests rather than growing without bound.
// Observability (metrics registry, trace, logger) is read off the runner, so
// configure the runner before constructing the scheduler.
func NewScheduler(r *harness.Runner, workers, queueCap int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	if queueCap < workers {
		queueCap = workers * 64
	}
	s := &Scheduler{
		runner:   r,
		queue:    make(chan *task, queueCap),
		workers:  workers,
		inflight: make(map[string]*task),
	}
	r.Metrics().Gauge("mi_workers", "Cell worker-pool width.").Set(int64(workers))
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for t := range s.queue {
		reg := s.runner.Metrics()
		s.mu.Lock()
		if t.canceled {
			// Released by every holder while queued: Release already removed
			// it from inflight and drained the queue gauges.
			s.mu.Unlock()
			close(t.done)
			continue
		}
		t.started = true
		s.mu.Unlock()
		s.queued.Add(-1)
		reg.Gauge("mi_queue_depth", "Submitted cells not yet picked up by a worker.").Dec()
		wait := time.Since(t.enqueued)
		reg.Histogram("mi_cell_queue_wait_seconds", "Time a cell spent queued before a worker picked it up.",
			obs.DefBuckets,
			obs.L("engine", t.cell.axes.Engine.String()),
			obs.L("mechanism", mechanismLabel(t.cell.cfg))).Observe(wait.Seconds())
		s.runner.Trace().Event("queue-wait", t.tid, t.enqueued, wait,
			map[string]any{"trace_id": t.traceID, "key": t.cell.key})
		s.busy.Add(1)
		reg.Gauge("mi_workers_busy", "Workers currently executing a cell.").Inc()
		t.res, t.cached, t.err = s.runner.RunCellCtx(t.cell.bench, t.cell.cfg, t.cell.axes,
			harness.RunCtx{TraceID: t.traceID, TID: t.tid})
		s.busy.Add(-1)
		reg.Gauge("mi_workers_busy", "Workers currently executing a cell.").Dec()
		s.mu.Lock()
		// Delete only our own entry: a canceled task's key may have been
		// resubmitted as a fresh task in the meantime.
		if s.inflight[t.cell.key] == t {
			delete(s.inflight, t.cell.key)
		}
		s.mu.Unlock()
		close(t.done)
	}
}

// mechanismLabel is the metric label for a cell's instrumentation mechanism
// ("none" for uninstrumented baselines).
func mechanismLabel(cfg harness.RunConfig) string {
	if !cfg.Instrument {
		return "none"
	}
	return cfg.Core.Mechanism.String()
}

// Submit schedules one cell for the request identified by traceID,
// coalescing onto an identical in-flight task if one exists (reported by
// coalesced). The returned task's done channel closes when the cell has a
// result; the submitter holds a reference it must give back via Release.
// Submit blocks only when the queue is full (backpressure).
func (s *Scheduler) Submit(c cell, traceID string) (t *task, coalesced bool, err error) {
	s.sendMu.RLock()
	defer s.sendMu.RUnlock()
	if s.closed {
		return nil, false, fmt.Errorf("scheduler stopped")
	}
	reg := s.runner.Metrics()
	s.mu.Lock()
	if t, ok := s.inflight[c.key]; ok {
		t.refs++
		s.coalesced.Add(1)
		s.mu.Unlock()
		reg.Counter("mi_cells_coalesced_total", "Submissions that attached to an already in-flight cell.").Inc()
		return t, true, nil
	}
	t = &task{cell: c, done: make(chan struct{}), traceID: traceID, enqueued: time.Now(), refs: 1}
	t.tid = s.runner.Trace().Track(c.bench.Name + "/" + c.cfg.Label)
	s.inflight[c.key] = t
	s.mu.Unlock()
	s.scheduled.Add(1)
	s.queued.Add(1)
	reg.Counter("mi_cells_scheduled_total", "Cells enqueued on the worker pool.").Inc()
	reg.Gauge("mi_queue_depth", "Submitted cells not yet picked up by a worker.").Inc()
	s.queue <- t
	return t, false, nil
}

// Release gives back one request's references on its tasks (nil entries — a
// failed submission loop — are skipped). A queued task whose last holder
// disconnects is canceled: it leaves the queue gauge and the in-flight map
// without executing, so an abandoned request costs nothing beyond what
// already ran. A running task is never canceled — interrupting it would
// poison the shared result cache — but losing its last holder counts it as
// detached (it finishes into the cache for the next request).
func (s *Scheduler) Release(tasks []*task) {
	reg := s.runner.Metrics()
	lg := s.runner.Logger()
	for _, t := range tasks {
		if t == nil {
			continue
		}
		s.mu.Lock()
		t.refs--
		abandoned := t.refs <= 0 && !t.canceled
		select {
		case <-t.done:
			abandoned = false // already complete: nothing to cancel or detach
		default:
		}
		if !abandoned {
			s.mu.Unlock()
			continue
		}
		if t.started {
			s.detached.Add(1)
			s.mu.Unlock()
			reg.Counter("mi_cells_detached_total", "Running cells abandoned by every holder (they finish into the shared cache).").Inc()
			if lg != nil {
				lg.Info("cell detached: all requests gone, finishing into cache",
					"key", t.cell.key, "trace_id", t.traceID)
			}
			continue
		}
		t.canceled = true
		t.err = fmt.Errorf("canceled: every submitting request disconnected before execution")
		if s.inflight[t.cell.key] == t {
			delete(s.inflight, t.cell.key)
		}
		s.canceled.Add(1)
		s.mu.Unlock()
		s.queued.Add(-1)
		reg.Gauge("mi_queue_depth", "Submitted cells not yet picked up by a worker.").Dec()
		reg.Counter("mi_cells_canceled_total", "Queued cells canceled because every submitting request disconnected.").Inc()
		if lg != nil {
			lg.Warn("cell canceled: all requests gone before execution",
				"key", t.cell.key, "trace_id", t.traceID)
		}
	}
}

// Stats snapshots the scheduler counters.
func (s *Scheduler) Stats() SchedStats {
	busy := int(s.busy.Load())
	return SchedStats{
		Workers:     s.workers,
		Busy:        busy,
		Utilization: float64(busy) / float64(s.workers),
		QueueDepth:  int(s.queued.Load()),
		Scheduled:   s.scheduled.Load(),
		Coalesced:   s.coalesced.Load(),
		Canceled:    s.canceled.Load(),
		Detached:    s.detached.Load(),
	}
}

// Stop rejects further submissions, drains the queue and waits for the
// workers to finish their in-flight cells. Idempotent.
func (s *Scheduler) Stop() {
	s.sendMu.Lock()
	if s.closed {
		s.sendMu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.sendMu.Unlock()
	s.wg.Wait()
}
