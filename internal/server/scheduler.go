package server

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/harness"
	"repro/internal/spec"
)

// The scheduler is the server's batching layer: every campaign request is
// expanded into cells, and cells are submitted here. Identical cells from
// overlapping requests — the common case for a fleet of users re-running the
// standard matrix — coalesce onto one in-flight task (request batching), and
// the worker pool drains the shared queue, so N requests for the same
// campaign cost one campaign. Below the scheduler, the harness runner's
// singleflight result cache guarantees the same property per key even for
// cells that raced past the in-flight map, and serves completed cells in
// O(1) forever after.

// cell is one schedulable unit: a benchmark under a configuration and a set
// of execution axes, content-addressed by its harness.CacheKey.
type cell struct {
	bench *spec.Benchmark
	cfg   harness.RunConfig
	axes  harness.RunAxes
	key   string
}

// task is the scheduled execution of one cell. Multiple requests may hold
// the same task; done is closed exactly once, after res/cached/err are set.
type task struct {
	cell cell
	done chan struct{}
	res  *harness.Result
	// cached reports that the runner served the cell from its result cache
	// without executing it (warm-up replays count as computed: they run
	// through supervision, just instantly).
	cached bool
	err    error
}

// Scheduler owns the worker pool and the in-flight dedup map.
type Scheduler struct {
	runner  *harness.Runner
	queue   chan *task
	workers int

	mu       sync.Mutex
	inflight map[string]*task

	// sendMu is held shared across queue sends and exclusively by Stop, so
	// the queue is never closed while a Submit is mid-send. closed is read
	// under sendMu (either mode).
	sendMu sync.RWMutex
	closed bool

	busy      atomic.Int64
	queued    atomic.Int64
	scheduled atomic.Uint64
	coalesced atomic.Uint64

	wg sync.WaitGroup
}

// SchedStats is the scheduler's /statsz contribution.
type SchedStats struct {
	// Workers is the pool size; Busy how many are executing a cell right
	// now; Utilization is Busy/Workers.
	Workers     int     `json:"workers"`
	Busy        int     `json:"busy"`
	Utilization float64 `json:"utilization"`
	// QueueDepth is the number of submitted tasks not yet picked up.
	QueueDepth int `json:"queue_depth"`
	// Scheduled counts tasks enqueued; Coalesced counts submissions that
	// attached to an already in-flight task instead of enqueueing a new one
	// (request batching at work).
	Scheduled uint64 `json:"scheduled"`
	Coalesced uint64 `json:"coalesced"`
}

// NewScheduler starts a worker pool of the given width over the shared
// runner. queueCap bounds the submission queue; a full queue applies
// backpressure to submitting requests rather than growing without bound.
func NewScheduler(r *harness.Runner, workers, queueCap int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	if queueCap < workers {
		queueCap = workers * 64
	}
	s := &Scheduler{
		runner:   r,
		queue:    make(chan *task, queueCap),
		workers:  workers,
		inflight: make(map[string]*task),
	}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for t := range s.queue {
		s.queued.Add(-1)
		s.busy.Add(1)
		t.res, t.cached, t.err = s.runner.RunCell(t.cell.bench, t.cell.cfg, t.cell.axes)
		s.busy.Add(-1)
		s.mu.Lock()
		delete(s.inflight, t.cell.key)
		s.mu.Unlock()
		close(t.done)
	}
}

// Submit schedules one cell, coalescing onto an identical in-flight task if
// one exists. The returned task's done channel closes when the cell has a
// result. Submit blocks only when the queue is full (backpressure).
func (s *Scheduler) Submit(c cell) (*task, error) {
	s.sendMu.RLock()
	defer s.sendMu.RUnlock()
	if s.closed {
		return nil, fmt.Errorf("scheduler stopped")
	}
	s.mu.Lock()
	if t, ok := s.inflight[c.key]; ok {
		s.coalesced.Add(1)
		s.mu.Unlock()
		return t, nil
	}
	t := &task{cell: c, done: make(chan struct{})}
	s.inflight[c.key] = t
	s.mu.Unlock()
	s.scheduled.Add(1)
	s.queued.Add(1)
	s.queue <- t
	return t, nil
}

// Stats snapshots the scheduler counters.
func (s *Scheduler) Stats() SchedStats {
	busy := int(s.busy.Load())
	return SchedStats{
		Workers:     s.workers,
		Busy:        busy,
		Utilization: float64(busy) / float64(s.workers),
		QueueDepth:  int(s.queued.Load()),
		Scheduled:   s.scheduled.Load(),
		Coalesced:   s.coalesced.Load(),
	}
}

// Stop rejects further submissions, drains the queue and waits for the
// workers to finish their in-flight cells. Idempotent.
func (s *Scheduler) Stop() {
	s.sendMu.Lock()
	if s.closed {
		s.sendMu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.sendMu.Unlock()
	s.wg.Wait()
}
