// Package core implements the MemInstrument instrumentation framework — the
// paper's primary contribution. The framework abstracts the tasks every
// pointer-tracking memory-safety instrumentation shares (Table 1):
//
//   - discovering instrumentation targets: dereferences that need checks and
//     program points where a mechanism's invariant must be established;
//   - propagating witnesses (the values carrying a pointer's bounds) through
//     phi, select, gep and casts, and deriving them from allocations or from
//     the mechanism's invariant at loads, calls and function entries;
//   - approach-independent check optimizations, such as the dominance-based
//     redundant-check elimination of Section 5.3.
//
// Two mechanisms are provided: SoftBound (disjoint metadata; Section 3.2)
// and Low-Fat Pointers (pointer-derived bounds; Section 3.3). New mechanisms
// implement the mechanism interface in witness.go.
package core

import "repro/internal/telemetry"

// Mech selects the instrumentation mechanism (-mi-config in the artifact).
type Mech int

// The implemented mechanisms.
const (
	// MechSoftBound selects SoftBound (-mi-config=softbound).
	MechSoftBound Mech = iota
	// MechLowFat selects Low-Fat Pointers (-mi-config=lowfat).
	MechLowFat
)

// String returns the artifact's configuration name.
func (m Mech) String() string {
	if m == MechLowFat {
		return "lowfat"
	}
	return "softbound"
}

// Mode selects how much instrumentation is generated (-mi-mode).
type Mode int

// Modes.
const (
	// ModeFull places dereference checks and establishes invariants.
	ModeFull Mode = iota
	// ModeGenInvariants establishes the mechanism's invariants and
	// propagates witnesses, but places no dereference checks — the
	// "metadata" configuration of Figures 10 and 11, used to attribute
	// overhead to metadata maintenance (Section 5.4).
	ModeGenInvariants
)

// String returns the mode name.
func (m Mode) String() string {
	if m == ModeGenInvariants {
		return "geninvariants"
	}
	return "full"
}

// Config mirrors the artifact's command-line flags (Appendix A.6).
type Config struct {
	// Mechanism is the instrumentation approach.
	Mechanism Mech
	// Mode selects full checking or invariant generation only.
	Mode Mode
	// OptDominance enables the dominance-based check elimination
	// (-mi-opt-dominance): a check is removed when the same pointer is
	// checked with at least the same width at a dominating location.
	OptDominance bool
	// OptDominanceInvariants extends the dominance elimination to
	// invariant (escape) checks: a Low-Fat escape check is redundant when
	// the same pointer VALUE was already escape-checked at a dominating
	// location, because the check depends only on the value. This is an
	// extension in the spirit of the paper's conclusion ("we see the
	// potential for further check optimizations here"); it is off in all
	// paper-reproducing configurations and evaluated as an ablation.
	OptDominanceInvariants bool
	// OptHoist enables loop-aware check hoisting (opt.HoistChecks): a
	// per-iteration check whose pointer is affine in a counted loop's
	// induction variable is replaced by one widened range check in the
	// preheader. Like OptDominanceInvariants this goes beyond the paper's
	// Section 5.3 comparison (which stops at dominance) and is evaluated
	// as an ablation; it preserves verdicts exactly — a hoisted check may
	// only report the same violation earlier.
	OptHoist bool

	// SBSizeZeroWideUpper (-mi-sb-size-zero-wide-upper) makes SoftBound
	// use wide bounds for globals declared without size information;
	// otherwise it uses NULL bounds, which reject every access
	// (Section 4.3).
	SBSizeZeroWideUpper bool
	// SBIntToPtrWideBounds (-mi-sb-inttoptr-wide-bounds) makes SoftBound
	// use wide bounds for pointers cast from integers; otherwise NULL
	// bounds (Section 4.4).
	SBIntToPtrWideBounds bool

	// LFTransformCommonToWeak (-mi-lf-transform-common-to-weak-linkage)
	// rewrites common-linkage globals to weak definitions so they can be
	// placed in low-fat sections. Without it, tentative C definitions stay
	// outside the low-fat regions and their accesses get wide bounds.
	LFTransformCommonToWeak bool
}

// PaperSoftBound returns the SoftBound configuration used for the paper's
// runtime evaluation (Appendix A.6), minus the mode/optimization axes that
// the experiments vary.
func PaperSoftBound() Config {
	return Config{
		Mechanism:            MechSoftBound,
		SBSizeZeroWideUpper:  true,
		SBIntToPtrWideBounds: true,
	}
}

// PaperLowFat returns the Low-Fat Pointers configuration used for the
// paper's runtime evaluation (Appendix A.6).
func PaperLowFat() Config {
	return Config{
		Mechanism:               MechLowFat,
		LFTransformCommonToWeak: true,
	}
}

// Stats reports what the instrumentation did, feeding the evaluation
// (Sections 4.6 and 5.3).
type Stats struct {
	// Functions is the number of instrumented function definitions.
	Functions int
	// DerefTargets is the number of dereference check targets discovered
	// before any elimination.
	DerefTargets int
	// Opt groups what the check optimizations removed or transformed.
	Opt OptStats
	// ChecksPlaced counts dereference checks actually inserted.
	ChecksPlaced int
	// InvariantChecks counts Low-Fat escape checks inserted.
	InvariantChecks int
	// MetadataStores counts SoftBound trie-store calls inserted.
	MetadataStores int
	// ShadowFrames counts instrumented call sites with shadow-stack
	// frames.
	ShadowFrames int
	// WitnessPhis and WitnessSelects count propagation instructions.
	WitnessPhis    int
	WitnessSelects int
	// Sites registers every placed check/metadata operation with a stable
	// SiteID, mechanism, kind, width and source provenance; the engines
	// count executions per site when vm.Options.SiteProfile is enabled.
	Sites *telemetry.SiteTable
	// AllocSites registers every allocation (alloca, global, malloc-family
	// call) with a stable ID and source provenance; violation reports
	// resolve faulting pointers against it when vm.Options.Forensics is
	// enabled.
	AllocSites *telemetry.AllocTable
}

// OptStats collects the effect of every framework-level check optimization
// under one consistently named struct (it used to be loose fields on Stats,
// which drifted as optimizations were added). mi-bench -json serializes it
// per cell.
type OptStats struct {
	// ChecksEliminated counts dereference targets removed by the dominance
	// filter (OptDominance).
	ChecksEliminated int `json:"checks_eliminated"`
	// InvariantsEliminated counts invariant targets removed by the
	// extended dominance filter (OptDominanceInvariants).
	InvariantsEliminated int `json:"invariants_eliminated"`
	// ChecksHoisted counts per-iteration checks replaced by widened
	// preheader range checks (OptHoist).
	ChecksHoisted int `json:"checks_hoisted"`
	// RangeChecksPlaced counts the widened range checks inserted.
	RangeChecksPlaced int `json:"range_checks_placed"`
}

// EliminationRate returns the fraction of dereference targets removed by the
// dominance optimization, in percent.
func (s *Stats) EliminationRate() float64 {
	if s.DerefTargets == 0 {
		return 0
	}
	return 100 * float64(s.Opt.ChecksEliminated) / float64(s.DerefTargets)
}
