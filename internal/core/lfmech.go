package core

import (
	"repro/internal/ir"
	"repro/internal/rt"
)

// lfMech implements the Low-Fat Pointers instrumentation (Section 3.3): a
// witness is the base pointer of the allocation, derived from the pointer
// value itself for pointers covered by the in-bounds invariant; the
// invariant is established by checking pointers whenever they escape the
// function (stores, calls, returns) or are cast to integers.
type lfMech struct {
	cfg   *Config
	stats *Stats

	base, check, checkInv *ir.Func
	null                  ir.Value
}

func newLFMech(m *ir.Module, cfg *Config, stats *Stats) *lfMech {
	return &lfMech{
		cfg:      cfg,
		stats:    stats,
		base:     rt.Declare(m, rt.LFBase),
		check:    rt.Declare(m, rt.LFCheck),
		checkInv: rt.Declare(m, rt.LFCheckInv),
		null:     ir.NewNull(witnessComponentType()),
	}
}

func (l *lfMech) name() string    { return "lowfat" }
func (l *lfMech) components() int { return 1 }

// deriveBase inserts a base recomputation from the pointer value, relying on
// the invariant that the value is in bounds.
func (l *lfMech) deriveBase(b *ir.Builder, ptr ir.Value) witness {
	c := b.Call(l.base, ptr)
	c.Tag = "witness"
	return w1(c)
}

// allocaWitness: with the stack mirror, the alloca's result is the
// allocation base itself — no code needed.
func (l *lfMech) allocaWitness(b *ir.Builder, al *ir.Instr) witness { return w1(al) }

// globalWitness: the global's address is the base. Globals that could not be
// placed into low-fat sections (common linkage without the transformation,
// or external-library storage) decode to region 0 and get wide bounds at
// runtime — no compile-time special case is needed.
func (l *lfMech) globalWitness(b *ir.Builder, g *ir.Global) witness { return w1(g) }

// allocCallWitness: the low-fat malloc returns the allocation base.
func (l *lfMech) allocCallWitness(b *ir.Builder, call *ir.Instr) witness { return w1(call) }

// loadWitness: pointers loaded from memory are in bounds by the invariant;
// recompute the base from the value.
func (l *lfMech) loadWitness(b *ir.Builder, ld *ir.Instr) witness {
	return l.deriveBase(b, ld)
}

// paramWitness: incoming pointers are in bounds by the invariant.
func (l *lfMech) paramWitness(b *ir.Builder, p *ir.Param, ptrIdx int) witness {
	return l.deriveBase(b, p)
}

// intToPtrWitness: the integer is trusted to be an in-bounds pointer (the
// value was checked when it was cast away, but nothing protects it in
// between — the gap discussed in Section 4.4).
func (l *lfMech) intToPtrWitness(b *ir.Builder, in *ir.Instr) witness {
	return l.deriveBase(b, in)
}

func (l *lfMech) nullWitness() witness { return w1(l.null) }

// callRetWitness: returned pointers are in bounds by the invariant.
func (l *lfMech) callRetWitness(b *ir.Builder, call *ir.Instr) witness {
	return l.deriveBase(b, call)
}

// instrumentCall establishes the invariant for pointers passed to the
// callee: each escaping pointer argument is checked to be in bounds
// (Table 1). This is the check that fires on out-of-bounds pointer
// arithmetic escaping into calls — valid C programs can be rejected here
// (Section 4.2).
func (l *lfMech) instrumentCall(fi *funcInstrumenter, call *ir.Instr) {
	for _, a := range call.Args() {
		if !a.Type().IsPointer() {
			continue
		}
		w := fi.getWitness(a)
		fi.bld.SetBefore(call)
		c := fi.bld.Call(l.checkInv, a, w.vals[0])
		c.Tag = "invariant"
		fi.site(c, "invariant", 0, call)
		l.stats.InvariantChecks++
	}
	if call.Ty.IsPointer() {
		fi.bld.SetAfter(call)
		fi.retWitness[call] = l.deriveBase(fi.bld, call)
		fi.cache[call] = fi.retWitness[call]
	}
}

// placeCheck inserts the dereference check of Figure 5 before the access.
func (l *lfMech) placeCheck(fi *funcInstrumenter, t ITarget) {
	w := fi.getWitness(t.Ptr)
	fi.bld.SetBefore(t.Instr)
	c := fi.bld.Call(l.check, t.Ptr, ir.NewInt(ir.I64, int64(t.Width)), w.vals[0])
	c.Tag = "check"
	fi.site(c, "check", t.Width, t.Instr)
	l.stats.ChecksPlaced++
}

// establishStore checks the escaping pointer value before it is written to
// memory.
func (l *lfMech) establishStore(fi *funcInstrumenter, t ITarget) {
	w := fi.getWitness(t.Ptr)
	fi.bld.SetBefore(t.Instr)
	c := fi.bld.Call(l.checkInv, t.Ptr, w.vals[0])
	c.Tag = "invariant"
	fi.site(c, "invariant", 0, t.Instr)
	l.stats.InvariantChecks++
}

// establishReturn checks the returned pointer.
func (l *lfMech) establishReturn(fi *funcInstrumenter, t ITarget) {
	w := fi.getWitness(t.Ptr)
	fi.bld.SetBefore(t.Instr)
	c := fi.bld.Call(l.checkInv, t.Ptr, w.vals[0])
	c.Tag = "invariant"
	fi.site(c, "invariant", 0, t.Instr)
	l.stats.InvariantChecks++
}

// establishPtrToInt checks the pointer before its value disappears into an
// integer (Section 4.4).
func (l *lfMech) establishPtrToInt(fi *funcInstrumenter, t ITarget) {
	w := fi.getWitness(t.Ptr)
	fi.bld.SetBefore(t.Instr)
	c := fi.bld.Call(l.checkInv, t.Ptr, w.vals[0])
	c.Tag = "invariant"
	fi.site(c, "invariant", 0, t.Instr)
	l.stats.InvariantChecks++
}
