package core

import (
	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/rt"
)

// ITargetKind classifies instrumentation targets (Table 1).
type ITargetKind int

// Target kinds.
const (
	// CheckTarget marks a dereference that needs an in-bounds check.
	CheckTarget ITargetKind = iota
	// InvariantStore marks a store of a pointer value to memory: SoftBound
	// records metadata, Low-Fat Pointers check the escaping value.
	InvariantStore
	// InvariantReturn marks a return of a pointer value.
	InvariantReturn
	// InvariantCall marks a call with pointer arguments or a pointer
	// result.
	InvariantCall
	// InvariantPtrToInt marks a pointer-to-integer cast; Low-Fat Pointers
	// check the value so the re-materialized pointer can be trusted
	// (Section 4.4).
	InvariantPtrToInt
)

// ITarget is one instrumentation target: a code location plus the pointer
// the mechanism must act on.
type ITarget struct {
	Kind ITargetKind
	// Instr is the anchoring instruction (the access, store, call, ret or
	// cast).
	Instr *ir.Instr
	// Ptr is the relevant pointer value: the accessed pointer for checks,
	// the escaping value for stores/returns/casts. For InvariantCall the
	// pointer arguments are taken from the call directly.
	Ptr ir.Value
	// Width is the access width in bytes for CheckTarget.
	Width int
}

// DiscoverITargets scans a function and returns its instrumentation targets
// in program order. Calls to runtime intrinsics and to functions excluded
// from instrumentation are not treated as call targets.
func DiscoverITargets(f *ir.Func) []ITarget {
	var targets []ITarget
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpLoad, ir.OpStore:
				targets = append(targets, ITarget{
					Kind:  CheckTarget,
					Instr: in,
					Ptr:   in.AccessedPointer(),
					Width: in.AccessWidth(),
				})
				if in.Op == ir.OpStore && in.StoredValue().Type().IsPointer() {
					targets = append(targets, ITarget{
						Kind:  InvariantStore,
						Instr: in,
						Ptr:   in.StoredValue(),
					})
				}
			case ir.OpRet:
				if len(in.Operands) == 1 && in.Operands[0].Type().IsPointer() {
					targets = append(targets, ITarget{
						Kind:  InvariantReturn,
						Instr: in,
						Ptr:   in.Operands[0],
					})
				}
			case ir.OpCall:
				callee := in.Callee()
				// Runtime intrinsics and allocation functions are not call
				// targets; calls to uninstrumented (library) functions ARE:
				// the caller cannot know the callee ignores the protocol —
				// which is exactly how stale shadow-stack bounds arise
				// (Section 4.3).
				if callee == nil || rt.IsIntrinsic(callee.Name) || isAllocFn(callee.Name) {
					continue
				}
				if callHasPointers(in) {
					targets = append(targets, ITarget{Kind: InvariantCall, Instr: in})
				}
			case ir.OpPtrToInt:
				targets = append(targets, ITarget{
					Kind:  InvariantPtrToInt,
					Instr: in,
					Ptr:   in.Operands[0],
				})
			}
		}
	}
	return targets
}

// isAllocFn reports whether name is an allocation function whose result
// bounds derive from its size argument rather than from the shadow stack.
func isAllocFn(name string) bool {
	switch name {
	case "malloc", "calloc", "realloc":
		return true
	}
	return false
}

func callHasPointers(call *ir.Instr) bool {
	if call.Ty.IsPointer() {
		return true
	}
	for _, a := range call.Args() {
		if a.Type().IsPointer() {
			return true
		}
	}
	return false
}

// ElimRecord attributes one eliminated check target to the surviving check
// that made it redundant, so telemetry can report which site absorbed it.
type ElimRecord struct {
	// Target is the eliminated check target.
	Target ITarget
	// By is the anchoring instruction of the surviving dominating check.
	By *ir.Instr
}

// FilterDominated implements the dominance-based check elimination of
// Section 5.3: a CheckTarget is redundant if another CheckTarget on the same
// pointer with at least the same width dominates it. Non-check targets pass
// through unchanged. It returns the surviving targets and one record per
// eliminated check, in target order.
func FilterDominated(f *ir.Func, targets []ITarget) ([]ITarget, []ElimRecord) {
	dt := analysis.NewDomTree(f)

	// Group check targets by pointer identity to keep the pairwise
	// comparison cheap.
	group := make(map[ir.Value][]int)
	for i, t := range targets {
		if t.Kind == CheckTarget {
			group[t.Ptr] = append(group[t.Ptr], i)
		}
	}
	elimBy := make(map[int]int)
	for _, idxs := range group {
		for _, i := range idxs {
			if _, gone := elimBy[i]; gone {
				continue
			}
			for _, j := range idxs {
				if i == j {
					continue
				}
				if _, gone := elimBy[j]; gone {
					continue
				}
				ti, tj := targets[i], targets[j]
				if ti.Width >= tj.Width && dt.InstrDominates(ti.Instr, tj.Instr) {
					elimBy[j] = i
				}
			}
		}
	}
	if len(elimBy) == 0 {
		return targets, nil
	}
	var elims []ElimRecord
	for i, t := range targets {
		d, gone := elimBy[i]
		if !gone {
			continue
		}
		// The dominator recorded at elimination time may itself have been
		// eliminated later; dominance and the width ordering are
		// transitive, so attribute to the surviving end of the chain.
		for {
			next, alsoGone := elimBy[d]
			if !alsoGone {
				break
			}
			d = next
		}
		elims = append(elims, ElimRecord{Target: t, By: targets[d].Instr})
	}
	// Compact in place only after every By above has been resolved: out
	// shares the backing array with targets.
	out := targets[:0]
	for i, t := range targets {
		if _, gone := elimBy[i]; !gone {
			out = append(out, t)
		}
	}
	return out, elims
}

// FilterDominatedInvariants removes InvariantStore, InvariantReturn and
// InvariantPtrToInt targets whose pointer value was already covered by a
// dominating invariant target on the same value. The Low-Fat escape check
// depends only on the pointer value (Figure 5 with width 1), so checking the
// same SSA value twice is redundant; SoftBound's corresponding actions
// (metadata stores keyed by *location*) are NOT value-idempotent, so this
// filter must only run for mechanisms whose establishment is a pure check.
// Call targets are left alone: their per-argument handling lives in the
// mechanism.
//
// This optimization is not part of any paper configuration; it explores the
// "further check optimizations" the paper's conclusion calls for, and the
// ablation benchmarks quantify it.
func FilterDominatedInvariants(f *ir.Func, targets []ITarget) ([]ITarget, int) {
	dt := analysis.NewDomTree(f)
	group := make(map[ir.Value][]int)
	for i, t := range targets {
		switch t.Kind {
		case InvariantStore, InvariantReturn, InvariantPtrToInt:
			group[t.Ptr] = append(group[t.Ptr], i)
		}
	}
	eliminated := make(map[int]bool)
	for _, idxs := range group {
		for _, i := range idxs {
			if eliminated[i] {
				continue
			}
			for _, j := range idxs {
				if i == j || eliminated[j] {
					continue
				}
				if dt.InstrDominates(targets[i].Instr, targets[j].Instr) {
					eliminated[j] = true
				}
			}
		}
	}
	if len(eliminated) == 0 {
		return targets, 0
	}
	out := targets[:0]
	for i, t := range targets {
		if !eliminated[i] {
			out = append(out, t)
		}
	}
	return out, len(eliminated)
}
