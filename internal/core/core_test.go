package core_test

import (
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/rt"
	"repro/internal/vm"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := cc.Compile("t", cc.Source{Name: "t.c", Code: src})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func countCalls(m *ir.Module, name string) int {
	n := 0
	m.Definitions(func(f *ir.Func) {
		f.Instrs(func(in *ir.Instr) bool {
			if in.Op == ir.OpCall {
				if c := in.Callee(); c != nil && c.Name == name {
					n++
				}
			}
			return true
		})
	})
	return n
}

func TestDiscoverITargets(t *testing.T) {
	m := compile(t, `
int g[4];
int *mk() { return g; }
void sink(int *p) {}
int main() {
    int *p = mk();
    g[0] = 1;          /* store check */
    int x = g[1];      /* load check */
    sink(p);           /* call with pointer arg */
    long l = (long)p;  /* ptrtoint */
    return x + (int)l;
}`)
	f := m.Func("main")
	targets := core.DiscoverITargets(f)
	var checks, calls, p2i int
	for _, tg := range targets {
		switch tg.Kind {
		case core.CheckTarget:
			checks++
			if tg.Width == 0 {
				t.Error("check target with zero width")
			}
		case core.InvariantCall:
			calls++
		case core.InvariantPtrToInt:
			p2i++
		}
	}
	// Unoptimized code has alloca spills; at minimum the two global
	// accesses plus spill traffic are check targets.
	if checks < 2 {
		t.Errorf("found %d check targets", checks)
	}
	if calls < 2 { // mk() returns a pointer; sink takes one
		t.Errorf("found %d call targets, want >= 2", calls)
	}
	if p2i != 1 {
		t.Errorf("found %d ptrtoint targets, want 1", p2i)
	}
	// Pointer stores (spilling p) must yield InvariantStore targets.
	var stores int
	for _, tg := range targets {
		if tg.Kind == core.InvariantStore {
			stores++
		}
	}
	if stores == 0 {
		t.Error("no pointer-store invariant targets")
	}
}

func TestDiscoverSkipsAllocAndIntrinsicCalls(t *testing.T) {
	m := compile(t, `
int main() {
    int *p = (int *)malloc(8);
    free(p);
    return 0;
}`)
	f := m.Func("main")
	for _, tg := range core.DiscoverITargets(f) {
		if tg.Kind != core.InvariantCall {
			continue
		}
		callee := tg.Instr.Callee()
		if callee.Name == "malloc" {
			t.Error("malloc treated as a protocol call")
		}
	}
}

func TestFilterDominated(t *testing.T) {
	// Two accesses to the same location in one block: the second check is
	// dominated and removable; the narrower dominating width must NOT
	// shadow a wider dominated one.
	m := ir.NewModule("t")
	g8 := m.NewGlobal("g", ir.I64, nil)
	f := m.NewFunc("f", ir.FuncOf(ir.Void))
	b := ir.NewBuilder(f)
	blk := f.NewBlock("entry")
	b.SetBlock(blk)
	g32 := b.Bitcast(g8, ir.PointerTo(ir.I32))
	b.Load(g32) // width 4
	b.Load(g32) // width 4: dominated
	b.Load(g8)  // width 8 through a different pointer value: kept
	b.Load(g32) // width 4: dominated
	b.Ret(nil)

	targets := core.DiscoverITargets(f)
	filtered, elims := core.FilterDominated(f, targets)
	if len(elims) != 2 {
		t.Errorf("removed %d checks, want 2", len(elims))
	}
	var counts int
	for _, tg := range filtered {
		if tg.Kind == core.CheckTarget {
			counts++
		}
	}
	if counts != 2 {
		t.Errorf("%d checks remain, want 2", counts)
	}
}

func TestFilterDominatedWidths(t *testing.T) {
	m := ir.NewModule("t")
	g := m.NewGlobal("g", ir.I64, nil)
	f := m.NewFunc("f", ir.FuncOf(ir.Void))
	b := ir.NewBuilder(f)
	blk := f.NewBlock("entry")
	b.SetBlock(blk)
	g32 := b.Bitcast(g, ir.PointerTo(ir.I32))
	b.Load(g32) // width 4 first
	b.Load(g32) // width 4, dominated -> removed
	b.Ret(nil)
	_, elims := core.FilterDominated(f, core.DiscoverITargets(f))
	if len(elims) != 1 {
		t.Errorf("removed = %d, want 1", len(elims))
	}

	// Reversed widths via i64 load after i32 load on *different* SSA
	// values must not remove anything.
	m2 := ir.NewModule("t2")
	g2 := m2.NewGlobal("g", ir.I64, nil)
	f2 := m2.NewFunc("f", ir.FuncOf(ir.Void))
	b2 := ir.NewBuilder(f2)
	blk2 := f2.NewBlock("entry")
	b2.SetBlock(blk2)
	n32 := b2.Bitcast(g2, ir.PointerTo(ir.I32))
	b2.Load(n32)
	b2.Load(g2)
	b2.Ret(nil)
	_, elims2 := core.FilterDominated(f2, core.DiscoverITargets(f2))
	if len(elims2) != 0 {
		t.Errorf("removed %d checks across distinct pointers", len(elims2))
	}
}

func TestInstrumentSoftBoundPlacesRuntimeCalls(t *testing.T) {
	m := compile(t, `
int g[8];
int take(int *p) { return p[1]; }
int main() {
    int *h = (int *)malloc(32);
    h[0] = g[0];
    int r = take(h);
    free(h);
    return r;
}`)
	stats, err := core.Instrument(m, core.PaperSoftBound())
	if err != nil {
		t.Fatal(err)
	}
	if stats.ChecksPlaced == 0 || stats.MetadataStores == 0 || stats.ShadowFrames == 0 {
		t.Errorf("stats: %+v", stats)
	}
	if countCalls(m, rt.SBCheck) != stats.ChecksPlaced {
		t.Error("check call count mismatch")
	}
	if countCalls(m, rt.SBSSAlloc) != countCalls(m, rt.SBSSPop) {
		t.Error("unbalanced shadow-stack frames")
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
}

func TestInstrumentLowFatPlacesRuntimeCalls(t *testing.T) {
	m := compile(t, `
int g[8];
void sink(int *p) {}
int *pass(int *p) { return p; }
int main() {
    int *h = (int *)malloc(32);
    h[0] = g[0];
    sink(pass(h));
    free(h);
    return 0;
}`)
	stats, err := core.Instrument(m, core.PaperLowFat())
	if err != nil {
		t.Fatal(err)
	}
	if stats.ChecksPlaced == 0 || stats.InvariantChecks == 0 {
		t.Errorf("stats: %+v", stats)
	}
	if countCalls(m, rt.LFCheck) != stats.ChecksPlaced {
		t.Error("check call count mismatch")
	}
	if countCalls(m, rt.LFCheckInv) != stats.InvariantChecks {
		t.Error("invariant call count mismatch")
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
}

func TestGenInvariantsModePlacesNoChecks(t *testing.T) {
	src := `
int main() {
    int *h = (int *)malloc(32);
    h[0] = 1;
    int *k = h;
    h[1] = k[0];
    free(h);
    return 0;
}`
	for _, mech := range []core.Mech{core.MechSoftBound, core.MechLowFat} {
		m := compile(t, src)
		cfg := core.PaperSoftBound()
		if mech == core.MechLowFat {
			cfg = core.PaperLowFat()
		}
		cfg.Mode = core.ModeGenInvariants
		stats, err := core.Instrument(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if stats.ChecksPlaced != 0 {
			t.Errorf("%s: %d deref checks placed in geninvariants mode", mech, stats.ChecksPlaced)
		}
		if countCalls(m, rt.SBCheck)+countCalls(m, rt.LFCheck) != 0 {
			t.Errorf("%s: deref check calls present", mech)
		}
	}
}

func TestWitnessPhiMirroring(t *testing.T) {
	// A pointer phi requires witness phis (Table 1): two for SoftBound,
	// one for Low-Fat Pointers.
	src := `
int a[4];
int b[8];
int main() {
    int *p;
    int c = a[0];
    if (c) { p = a; } else { p = b; }
    return p[1];
}`
	m := compile(t, src)
	// Promote the locals so p becomes a phi.
	opt.RunSequence(m, opt.SimplifyCFG{}, opt.Mem2Reg{})
	stats, err := core.Instrument(m, core.PaperSoftBound())
	if err != nil {
		t.Fatal(err)
	}
	if stats.WitnessPhis == 0 {
		t.Error("no witness phis created for the pointer phi")
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}

	m2 := compile(t, src)
	opt.RunSequence(m2, opt.SimplifyCFG{}, opt.Mem2Reg{})
	stats2, err := core.Instrument(m2, core.PaperLowFat())
	if err != nil {
		t.Fatal(err)
	}
	if stats2.WitnessPhis == 0 {
		t.Error("no witness phis for lowfat")
	}
}

func TestCommonToWeakTransform(t *testing.T) {
	m := compile(t, `
int tentative[64];
int main() { return tentative[0]; }`)
	g := m.Global("tentative")
	if g.Linkage != ir.CommonLinkage {
		t.Fatal("precondition: tentative must be common")
	}
	cfg := core.PaperLowFat() // has the transform enabled
	if _, err := core.Instrument(m, cfg); err != nil {
		t.Fatal(err)
	}
	if g.Linkage != ir.WeakLinkage {
		t.Error("common linkage not transformed to weak")
	}

	m2 := compile(t, `
int tentative[64];
int main() { return tentative[0]; }`)
	cfg2 := core.PaperLowFat()
	cfg2.LFTransformCommonToWeak = false
	if _, err := core.Instrument(m2, cfg2); err != nil {
		t.Fatal(err)
	}
	if m2.Global("tentative").Linkage != ir.CommonLinkage {
		t.Error("linkage transformed despite disabled flag")
	}
}

// runInstrumented instruments at VectorizerStart and runs.
func runInstrumented(t *testing.T, src string, cfg core.Config, vopts vm.Options) (*vm.VM, error) {
	t.Helper()
	m := compile(t, src)
	opt.RunPipeline(m, opt.EPVectorizerStart, func(mod *ir.Module) {
		if _, err := core.Instrument(mod, cfg); err != nil {
			t.Fatal(err)
		}
	}, opt.PipelineOptions{Level: 3})
	machine, err := vm.New(m, vopts)
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := machine.Run()
	return machine, rerr
}

func TestSizeZeroConfigAxis(t *testing.T) {
	// With wide upper bounds the access is allowed (and counted wide);
	// with NULL bounds every access to the size-zero global is rejected —
	// the "overly restrictive" option of Section 4.3.
	srcs := []cc.Source{
		{Name: "a.c", Code: `extern int data[]; int peek(int i) { return data[i]; }`},
		{Name: "b.c", Code: `int data[16]; int peek(int i); int main() { return peek(3); }`},
	}
	build := func(cfg core.Config) (*vm.VM, error) {
		m, err := cc.Compile("t", srcs...)
		if err != nil {
			t.Fatal(err)
		}
		opt.RunPipeline(m, opt.EPVectorizerStart, func(mod *ir.Module) {
			if _, err := core.Instrument(mod, cfg); err != nil {
				t.Fatal(err)
			}
		}, opt.PipelineOptions{Level: 3})
		machine, err := vm.New(m, vm.Options{Mechanism: vm.MechSoftBound})
		if err != nil {
			t.Fatal(err)
		}
		_, rerr := machine.Run()
		return machine, rerr
	}

	wide := core.PaperSoftBound() // SBSizeZeroWideUpper = true
	machine, err := build(wide)
	if err != nil {
		t.Errorf("wide bounds: unexpected error %v", err)
	} else if machine.Stats.WideChecks == 0 {
		t.Error("wide bounds: no wide checks counted")
	}

	null := core.PaperSoftBound()
	null.SBSizeZeroWideUpper = false
	if _, err := build(null); err == nil {
		t.Error("NULL bounds: access to size-zero global not rejected")
	}
}

func TestIntToPtrConfigAxis(t *testing.T) {
	src := `
int main() {
    int x = 9;
    long addr = (long)&x;
    int *p = (int *)addr;
    return *p - 9;
}`
	wide := core.PaperSoftBound() // SBIntToPtrWideBounds = true
	machine, err := runInstrumented(t, src, wide, vm.Options{Mechanism: vm.MechSoftBound})
	if err != nil {
		t.Errorf("wide: unexpected error %v", err)
	} else if machine.Stats.WideChecks == 0 {
		t.Error("wide: inttoptr access not counted wide")
	}

	null := core.PaperSoftBound()
	null.SBIntToPtrWideBounds = false
	_, err = runInstrumented(t, src, null, vm.Options{Mechanism: vm.MechSoftBound})
	if err == nil || !strings.Contains(err.Error(), "violation") {
		t.Errorf("null: expected violation, got %v", err)
	}
}

func TestInstrumentIdempotence(t *testing.T) {
	m := compile(t, `int g; int main() { g = 1; return g; }`)
	if _, err := core.Instrument(m, core.PaperSoftBound()); err != nil {
		t.Fatal(err)
	}
	first := countCalls(m, rt.SBCheck)
	// A second Instrument call must not double-instrument.
	if _, err := core.Instrument(m, core.PaperSoftBound()); err != nil {
		t.Fatal(err)
	}
	if got := countCalls(m, rt.SBCheck); got != first {
		t.Errorf("re-instrumentation changed check count: %d -> %d", first, got)
	}
}

func TestEliminationRateStat(t *testing.T) {
	m := compile(t, `
long g;
int main() {
    g = 1;
    g = g + 1;
    g = g + 2;
    return (int)g;
}`)
	cfg := core.PaperSoftBound()
	cfg.OptDominance = true
	stats, err := core.Instrument(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Opt.ChecksEliminated == 0 {
		t.Error("no dominated checks eliminated")
	}
	if stats.EliminationRate() <= 0 || stats.EliminationRate() > 100 {
		t.Errorf("elimination rate %f out of range", stats.EliminationRate())
	}
}

func TestFilterDominatedInvariants(t *testing.T) {
	// Storing the same pointer value twice: the second Low-Fat escape
	// check is redundant (value-idempotent).
	src := `
int *slot1;
int *slot2;
int arr[4];
int main() {
    int *p = arr;
    slot1 = p;
    slot2 = p;
    return 0;
}`
	m := compile(t, src)
	opt.RunSequence(m, opt.SimplifyCFG{}, opt.Mem2Reg{})
	cfg := core.PaperLowFat()
	cfg.OptDominanceInvariants = true
	stats, err := core.Instrument(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Opt.InvariantsEliminated == 0 {
		t.Error("no dominated invariant checks eliminated")
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantFilterDisabledForSoftBound(t *testing.T) {
	// SoftBound metadata stores are location-keyed: the filter must not
	// touch them even when requested.
	src := `
int *slot1;
int *slot2;
int arr[4];
int main() {
    int *p = arr;
    slot1 = p;
    slot2 = p;
    return 0;
}`
	m := compile(t, src)
	opt.RunSequence(m, opt.SimplifyCFG{}, opt.Mem2Reg{})
	cfg := core.PaperSoftBound()
	cfg.OptDominanceInvariants = true
	stats, err := core.Instrument(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Opt.InvariantsEliminated != 0 {
		t.Error("softbound metadata stores were eliminated (unsound)")
	}
	if stats.MetadataStores < 2 {
		t.Errorf("expected both metadata stores, got %d", stats.MetadataStores)
	}
}

func TestInvariantFilterPreservesDetection(t *testing.T) {
	// Even with the filter on, the FIRST escape of an out-of-bounds
	// pointer is still checked.
	src := `
int *slot1;
int *slot2;
int arr[4];
int main() {
    int *oob = arr + 24;
    slot1 = oob;
    slot2 = oob;
    return 0;
}`
	m := compile(t, src)
	cfg := core.PaperLowFat()
	cfg.OptDominanceInvariants = true
	opt.RunPipeline(m, opt.EPVectorizerStart, func(mod *ir.Module) {
		if _, err := core.Instrument(mod, cfg); err != nil {
			t.Fatal(err)
		}
	}, opt.PipelineOptions{Level: 3})
	machine, err := vm.New(m, lfOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, rerr := machine.Run(); rerr == nil {
		t.Error("escaping out-of-bounds pointer not detected with invariant filter on")
	}
}
