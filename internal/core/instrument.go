package core

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/telemetry"
)

// Instrument applies the configured memory-safety instrumentation to every
// function definition in the module (in place) and returns statistics. The
// framework performs the shared tasks — target discovery, witness
// propagation, check-redundancy filtering — and delegates the
// approach-specific code generation to the mechanism (Section 3.1).
//
// The function is the MemInstrument "module pass"; to reproduce the paper's
// pipeline experiments, pass it as the hook of opt.RunPipeline at the
// desired extension point.
func Instrument(m *ir.Module, cfg Config) (*Stats, error) {
	stats := &Stats{Sites: &telemetry.SiteTable{}, AllocSites: &telemetry.AllocTable{}}
	var mech mechanism
	switch cfg.Mechanism {
	case MechSoftBound:
		mech = newSBMech(m, &cfg, stats)
	case MechLowFat:
		mech = newLFMech(m, &cfg, stats)
	default:
		return nil, fmt.Errorf("core: unknown mechanism %d", cfg.Mechanism)
	}

	if cfg.Mechanism == MechLowFat && cfg.LFTransformCommonToWeak {
		for _, g := range m.Globals {
			if g.Linkage == ir.CommonLinkage {
				g.Linkage = ir.WeakLinkage
			}
		}
	}

	var fns []*ir.Func
	m.Definitions(func(f *ir.Func) {
		if !f.IgnoreInstrumentation && !f.Instrumented {
			fns = append(fns, f)
		}
	})

	assignAllocSites(m, fns, stats)

	for _, f := range fns {
		if err := instrumentFunc(f, &cfg, mech, stats); err != nil {
			return stats, fmt.Errorf("core: instrumenting @%s: %w", f.Name, err)
		}
		f.Instrumented = true
		stats.Functions++
	}

	// Loop-aware check hoisting runs over the fully instrumented module:
	// it needs the check calls in place to recognize which of them guard
	// affine accesses in counted loops.
	if cfg.OptHoist && cfg.Mode == ModeFull {
		hs := opt.HoistChecks(m, stats.Sites)
		stats.Opt.ChecksHoisted += hs.Hoisted
		stats.Opt.RangeChecksPlaced += hs.RangeChecks
	}

	if err := ir.VerifyModule(m); err != nil {
		return stats, fmt.Errorf("core: instrumented module is malformed: %w", err)
	}
	return stats, nil
}

// assignAllocSites walks the module in deterministic order (globals, then
// each function's blocks and instructions) and registers every allocation —
// global definitions, allocas, malloc-family calls — in the AllocTable,
// stamping the producing Global/Instr with the resulting ID. Both engines
// track runtime allocations under these IDs when forensics is on, which is
// what lets a violation report name the allocation a faulting pointer
// belongs to.
func assignAllocSites(m *ir.Module, fns []*ir.Func, stats *Stats) {
	if stats.AllocSites == nil {
		return
	}
	for _, g := range m.Globals {
		if g.AllocSite == 0 {
			g.AllocSite = stats.AllocSites.Add("global", "", g.Name, ir.Loc{})
		}
	}
	for _, f := range fns {
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if in.AllocSite != 0 {
					continue
				}
				switch in.Op {
				case ir.OpAlloca:
					in.AllocSite = stats.AllocSites.Add("alloca", f.Name, "", in.Loc)
				case ir.OpCall:
					if callee := in.Callee(); callee != nil && isAllocFn(callee.Name) {
						in.AllocSite = stats.AllocSites.Add("heap", f.Name, "", in.Loc)
					}
				}
			}
		}
	}
}

func instrumentFunc(f *ir.Func, cfg *Config, mech mechanism, stats *Stats) error {
	targets := DiscoverITargets(f)
	for _, t := range targets {
		if t.Kind == CheckTarget {
			stats.DerefTargets++
		}
	}
	var elims []ElimRecord
	if cfg.OptDominance {
		targets, elims = FilterDominated(f, targets)
		stats.Opt.ChecksEliminated += len(elims)
	}
	// The invariant filter only applies to mechanisms whose invariant
	// establishment is a value-idempotent check (Low-Fat Pointers);
	// SoftBound's metadata stores are keyed by location and must all stay.
	if cfg.OptDominanceInvariants && cfg.Mechanism == MechLowFat {
		var n int
		targets, n = FilterDominatedInvariants(f, targets)
		stats.Opt.InvariantsEliminated += n
	}

	fi := newFuncInstrumenter(cfg, mech, f, stats)

	// Phase 1: call sites, in program order, so witnesses for call results
	// are registered (and frame management is placed) before anything asks
	// for them.
	for _, t := range targets {
		if t.Kind == InvariantCall {
			mech.instrumentCall(fi, t.Instr)
		}
	}

	// Phase 2: dereference checks (suppressed in invariant-only mode).
	if cfg.Mode == ModeFull {
		for _, t := range targets {
			if t.Kind == CheckTarget {
				mech.placeCheck(fi, t)
			}
		}
		// Eliminated targets still get a (never-executed) site so the
		// telemetry can attribute each elimination to the dominating
		// check that covers it.
		if stats.Sites != nil {
			for _, e := range elims {
				loc := e.Target.Instr.Loc
				id := stats.Sites.Add("check", mech.name(), e.Target.Width, f.Name, loc)
				s := stats.Sites.Get(id)
				s.Status = "eliminated"
				s.By = fi.checkSiteOf[e.By]
			}
		}
	}

	// Phase 3: remaining invariants.
	for _, t := range targets {
		switch t.Kind {
		case InvariantStore:
			mech.establishStore(fi, t)
		case InvariantReturn:
			mech.establishReturn(fi, t)
		case InvariantPtrToInt:
			mech.establishPtrToInt(fi, t)
		}
	}
	return nil
}
