package core_test

// This file reproduces the usability case studies of Section 4 of the
// paper: valid C programs that one instrumentation rejects (spurious
// reports) and buggy programs whose errors one instrumentation misses.
// Each test documents which paper section it reproduces.

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/vm"
)

func sbOptions() vm.Options {
	return vm.Options{Mechanism: vm.MechSoftBound}
}

func lfOptions() vm.Options {
	return vm.Options{Mechanism: vm.MechLowFat, LowFatHeap: true, LowFatStack: true, LowFatGlobals: true}
}

func runCase(t *testing.T, src string, mech core.Mech, popts opt.PipelineOptions) (*vm.VM, error) {
	t.Helper()
	m := compile(t, src)
	cfg := core.PaperSoftBound()
	vopts := sbOptions()
	if mech == core.MechLowFat {
		cfg = core.PaperLowFat()
		vopts = lfOptions()
	}
	cfg.OptDominance = true
	opt.RunPipeline(m, opt.EPVectorizerStart, func(mod *ir.Module) {
		if _, err := core.Instrument(mod, cfg); err != nil {
			t.Fatal(err)
		}
	}, popts)
	machine, err := vm.New(m, vopts)
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := machine.Run()
	return machine, rerr
}

func o3() opt.PipelineOptions { return opt.PipelineOptions{Level: 3} }

// Section 4.2: out-of-bounds pointer arithmetic. 73% of C programmers
// believe a pointer may go out of bounds as long as it is brought back
// before the dereference (Memarian et al.). SoftBound only checks
// dereferences and accepts the program; Low-Fat Pointers must establish
// their in-bounds invariant when the pointer escapes into the call and
// report a spurious violation.
const oobArithmeticProg = `
int data[8];

/* The never-taken recursive guard keeps the function out of line, like the
 * translation-unit boundary in the original benchmarks. */
int peek(int *p, int adjust) {
    if (p == (int *)0) return peek(p, adjust);
    return p[adjust];    /* brought back in bounds before the access */
}

int main() {
    int *oob = data + 24;           /* far past the end: UB in C, but common */
    printf("%d\n", peek(oob, -20)); /* accesses data[4]: fine */
    return 0;
}`

func TestOOBPointerArithmeticSoftBoundAccepts(t *testing.T) {
	machine, err := runCase(t, oobArithmeticProg, core.MechSoftBound, o3())
	if err != nil {
		t.Fatalf("SoftBound rejected out-of-bounds arithmetic (it must not): %v", err)
	}
	if machine.Output() != "0\n" {
		t.Errorf("output = %q", machine.Output())
	}
}

func TestOOBPointerArithmeticLowFatRejects(t *testing.T) {
	_, err := runCase(t, oobArithmeticProg, core.MechLowFat, o3())
	if err == nil {
		t.Fatal("Low-Fat Pointers accepted an escaping out-of-bounds pointer (Section 4.2 says it must not)")
	}
	if !strings.Contains(err.Error(), "invariant") {
		t.Errorf("expected an invariant (escape) violation, got: %v", err)
	}
}

// Section 4.2 footnote 3: one-past-the-end pointers are legal C and must
// survive escapes under both mechanisms (allocations are padded by one
// byte).
func TestOnePastTheEndIsAccepted(t *testing.T) {
	src := `
long sum_range(long *begin, long *end) {
    long s = 0;
    while (begin < end) { s += *begin; begin++; }
    return s;
}
int main() {
    long *a = (long *)malloc(7 * sizeof(long));
    int i;
    for (i = 0; i < 7; i++) a[i] = i;
    printf("%ld\n", sum_range(a, a + 7)); /* a+7 is one past the end */
    free(a);
    return 0;
}`
	for _, mech := range []core.Mech{core.MechSoftBound, core.MechLowFat} {
		machine, err := runCase(t, src, mech, o3())
		if err != nil {
			t.Errorf("%v: one-past-the-end pointer rejected: %v", mech, err)
			continue
		}
		if machine.Output() != "21\n" {
			t.Errorf("%v: output = %q", mech, machine.Output())
		}
	}
}

// Section 4.4 / Figure 7: pointer values that travel through memory as
// integers leave SoftBound's metadata stale. The faithful translation works;
// the obfuscated one produces a spurious report. Low-Fat Pointers are
// unaffected either way.
const swapProg = `
double *slots[4];
void swap_slots(int i, int j) {
    double *t = slots[i];
    slots[i] = slots[j];
    slots[j] = t;
}
int main() {
    double *a = (double *)malloc(4 * sizeof(double));
    double *b = (double *)malloc(16 * sizeof(double));
    int i, x, y;
    for (i = 0; i < 16; i++) b[i] = 100.0 + i;
    for (i = 0; i < 4; i++) a[i] = 1.0 + i;
    slots[0] = a;
    slots[1] = b;
    srand(3);
    x = rand() % 2;
    y = 1 - x;
    swap_slots(x, y);
    if (slots[0][0] > 50.0) {
        printf("%g\n", slots[0][10]);
    } else {
        printf("%g\n", slots[1][10]);
    }
    return 0;
}`

func TestSwapObfuscationBreaksSoftBound(t *testing.T) {
	// Faithful translation: fine.
	if _, err := runCase(t, swapProg, core.MechSoftBound, o3()); err != nil {
		t.Fatalf("faithful translation rejected: %v", err)
	}
	// LLVM-12-style i64 pointer stores: spurious violation.
	obf := o3()
	obf.ObfuscatePtrStores = true
	_, err := runCase(t, swapProg, core.MechSoftBound, obf)
	if err == nil {
		t.Fatal("stale metadata did not produce the Figure 7 spurious report")
	}
	if !strings.Contains(err.Error(), "softbound") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestSwapObfuscationLowFatUnaffected(t *testing.T) {
	obf := o3()
	obf.ObfuscatePtrStores = true
	machine, err := runCase(t, swapProg, core.MechLowFat, obf)
	if err != nil {
		t.Fatalf("lowfat rejected the obfuscated swap: %v", err)
	}
	if machine.Output() != "110\n" {
		t.Errorf("output = %q", machine.Output())
	}
}

// Section 4.5: byte-wise copying of a struct containing pointers. The
// pointer is never stored as a pointer, so SoftBound's metadata for the
// destination is missing and the later dereference is (spuriously)
// rejected. Low-Fat Pointers re-derive bounds from the copied value and
// accept the program. This is the 300.twolf issue the paper fixed with
// memcpy (Section 5.1.2).
const byteWiseCopyProg = `
struct holder {
    int tag;
    int *payload;
};

int main() {
    struct holder src;
    struct holder dst;
    char *from;
    char *to;
    unsigned long k;
    int arr[6];
    int i;
    for (i = 0; i < 6; i++) arr[i] = i * 3;
    src.tag = 1;
    src.payload = arr;
    from = (char *)&src;
    to = (char *)&dst;
    for (k = 0; k < sizeof(struct holder); k++) {
        to[k] = from[k];          /* byte-wise struct copy */
    }
    printf("%d\n", dst.payload[2]);
    return 0;
}`

func TestByteWiseCopyBreaksSoftBound(t *testing.T) {
	_, err := runCase(t, byteWiseCopyProg, core.MechSoftBound, o3())
	if err == nil {
		t.Fatal("byte-wise pointer copy did not break SoftBound's metadata (Section 4.5 says it must)")
	}
}

func TestByteWiseCopyLowFatFine(t *testing.T) {
	machine, err := runCase(t, byteWiseCopyProg, core.MechLowFat, o3())
	if err != nil {
		t.Fatalf("lowfat rejected the byte-wise copy: %v", err)
	}
	if machine.Output() != "6\n" {
		t.Errorf("output = %q", machine.Output())
	}
}

// Section 4.5 remedy: the same copy through memcpy keeps SoftBound's
// metadata coherent (the wrapper's copy_metadata, Figure 6).
func TestMemcpyKeepsSoftBoundMetadata(t *testing.T) {
	src := strings.Replace(byteWiseCopyProg,
		`for (k = 0; k < sizeof(struct holder); k++) {
        to[k] = from[k];          /* byte-wise struct copy */
    }`,
		`memcpy(to, from, sizeof(struct holder));`, 1)
	machine, err := runCase(t, src, core.MechSoftBound, o3())
	if err != nil {
		t.Fatalf("memcpy'd struct copy rejected: %v", err)
	}
	if machine.Output() != "6\n" {
		t.Errorf("output = %q", machine.Output())
	}
}

// Section 5.1.1: pseudo-base-one arrays (the perl/254.gap pattern): a
// pointer placed one element BEFORE an array so that indexing starts at 1.
// Escaping that pointer violates the Low-Fat invariant.
const baseOneProg = `
double storage[10];

double get(double *base1, int i) {
    if (base1 == (double *)0) return get(base1, i); /* keep out of line */
    return base1[i];   /* i in 1..10 lands inside storage */
}

int main() {
    double *base1 = storage - 1;   /* one BEFORE the start: UB */
    int i;
    double s = 0.0;
    for (i = 0; i < 10; i++) storage[i] = (double)i;
    for (i = 1; i <= 10; i++) s += get(base1, i);
    printf("%.0f\n", s);
    return 0;
}`

func TestPseudoBaseOneArrayLowFatRejects(t *testing.T) {
	_, err := runCase(t, baseOneProg, core.MechLowFat, o3())
	if err == nil {
		t.Fatal("lowfat accepted a pseudo-base-one array (the perl/gap failure of Section 5.1.1)")
	}
}

func TestPseudoBaseOneArraySoftBoundAccepts(t *testing.T) {
	machine, err := runCase(t, baseOneProg, core.MechSoftBound, o3())
	if err != nil {
		t.Fatalf("softbound rejected the pseudo-base-one array: %v", err)
	}
	if machine.Output() != "45\n" {
		t.Errorf("output = %q", machine.Output())
	}
}

// Section 5.1.2: the original 181.mcf stores a pointer in a struct member
// of integer type. The store does not update SoftBound's metadata; under
// the paper's wide-inttoptr configuration the later accesses run with wide
// bounds (silently unprotected). Low-Fat Pointers re-derive the base from
// the value and keep full protection.
const mcfIntFieldProg = `
struct arc {
    long cost;
    long head_as_int;   /* actually holds a struct arc* */
};

int main() {
    struct arc *a = (struct arc *)malloc(sizeof(struct arc));
    struct arc *b = (struct arc *)malloc(sizeof(struct arc));
    b->cost = 77;
    a->head_as_int = (long)b;
    {
        struct arc *h = (struct arc *)a->head_as_int;
        printf("%ld\n", h->cost);
    }
    free(a);
    free(b);
    return 0;
}`

func TestIntFieldPointerSoftBoundLosesProtection(t *testing.T) {
	machine, err := runCase(t, mcfIntFieldProg, core.MechSoftBound, o3())
	if err != nil {
		t.Fatalf("wide-inttoptr config must accept the program: %v", err)
	}
	if machine.Stats.WideChecks == 0 {
		t.Error("accesses through the integer field were not wide (protection silently lost)")
	}
}

func TestIntFieldPointerLowFatKeepsProtection(t *testing.T) {
	machine, err := runCase(t, mcfIntFieldProg, core.MechLowFat, o3())
	if err != nil {
		t.Fatalf("lowfat rejected the program: %v", err)
	}
	if machine.Stats.WideChecks != 0 {
		t.Error("lowfat used wide bounds despite pointer-derived bases")
	}
	if machine.Output() != "77\n" {
		t.Errorf("output = %q", machine.Output())
	}
}

// Appendix B: intra-object overflows. Neither mechanism (as configured in
// the paper: no bounds narrowing) detects an overflow from one struct
// member into the next — the witness covers the whole allocation.
const intraObjectProg = `
struct simple_pair {
    int x[2];
    int y;
};

int main() {
    struct simple_pair p;
    p.y = 99;
    p.x[2] = 7;   /* overflows x into y: stays inside the struct */
    printf("%d\n", p.y);
    return 0;
}`

func TestIntraObjectOverflowUndetected(t *testing.T) {
	for _, mech := range []core.Mech{core.MechSoftBound, core.MechLowFat} {
		machine, err := runCase(t, intraObjectProg, mech, o3())
		if err != nil {
			t.Errorf("%v: intra-object overflow reported (Appendix B: it is not detectable without narrowing): %v", mech, err)
			continue
		}
		if machine.Output() != "7\n" {
			t.Errorf("%v: output = %q (the overflow must clobber y)", mech, machine.Output())
		}
	}
}

// Section 4: the headline guarantee difference. SoftBound detects an
// overflow into the allocator padding; Low-Fat Pointers cannot (padded
// allocation), but both stop the access from reaching ANOTHER allocation.
func TestPaddingBlindSpotContrast(t *testing.T) {
	src := `
int main() {
    char *p = (char *)malloc(20);  /* 20 -> 32-byte low-fat slot */
    p[24] = 1;                     /* in padding: lowfat misses, softbound reports */
    free(p);
    return 0;
}`
	if _, err := runCase(t, src, core.MechSoftBound, o3()); err == nil {
		t.Error("softbound missed the padding overflow")
	}
	if _, err := runCase(t, src, core.MechLowFat, o3()); err != nil {
		t.Errorf("lowfat reported a padding access (it cannot): %v", err)
	}

	farther := `
int main() {
    char *p = (char *)malloc(20);
    p[40] = 1;                     /* beyond the 32-byte slot */
    free(p);
    return 0;
}`
	if _, err := runCase(t, farther, core.MechLowFat, o3()); err == nil {
		t.Error("lowfat missed an overflow beyond the slot")
	}
}

// Section 4.6: a Low-Fat region running dry is handled by falling back to
// the standard allocator; the program still runs, just unprotected there.
func TestLowFatOversizeFallbackRuns(t *testing.T) {
	src := `
int main() {
    /* Larger than the 1 GiB maximum region size: standard allocator. */
    char *big = (char *)malloc(1100000000);
    big[1099999999] = 42;      /* in bounds; checked wide */
    printf("%d\n", big[1099999999]);
    free(big);
    return 0;
}`
	machine, err := runCase(t, src, core.MechLowFat, o3())
	if err != nil {
		t.Fatalf("oversized allocation failed: %v", err)
	}
	if machine.Stats.WideChecks == 0 {
		t.Error("accesses to the fallback allocation were not wide")
	}
	if machine.Output() != "42\n" {
		t.Errorf("output = %q", machine.Output())
	}
}
