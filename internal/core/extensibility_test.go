package core

// White-box test of the framework's extensibility claim: the paper
// open-sources MemInstrument so researchers can implement new mechanisms on
// top of the shared target discovery, witness propagation and check
// optimizations. This test implements a third, minimal mechanism — a
// "tripwire" that carries a single witness component (the allocation base,
// like Low-Fat) but consumes it through its own runtime call — purely in
// terms of the mechanism interface, and runs the shared machinery over it.

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/ir"
	"repro/internal/opt"
)

type tripwireMech struct {
	check *ir.Func
	null  ir.Value
	// placed counts inserted dereference probes.
	placed int
}

func newTripwireMech(m *ir.Module) *tripwireMech {
	sig := ir.FuncOf(ir.Void, ir.PointerTo(ir.I8), ir.I64, ir.PointerTo(ir.I8))
	f := m.EnsureDecl("tripwire_probe", sig)
	f.IgnoreInstrumentation = true
	return &tripwireMech{check: f, null: ir.NewNull(ir.PointerTo(ir.I8))}
}

func (tw *tripwireMech) name() string    { return "tripwire" }
func (tw *tripwireMech) components() int { return 1 }

func (tw *tripwireMech) allocaWitness(b *ir.Builder, al *ir.Instr) witness { return w1(al) }
func (tw *tripwireMech) globalWitness(b *ir.Builder, g *ir.Global) witness { return w1(g) }
func (tw *tripwireMech) allocCallWitness(b *ir.Builder, call *ir.Instr) witness {
	return w1(call)
}
func (tw *tripwireMech) loadWitness(b *ir.Builder, ld *ir.Instr) witness { return w1(ld) }
func (tw *tripwireMech) paramWitness(b *ir.Builder, p *ir.Param, ptrIdx int) witness {
	return w1(p)
}
func (tw *tripwireMech) intToPtrWitness(b *ir.Builder, in *ir.Instr) witness { return w1(in) }
func (tw *tripwireMech) nullWitness() witness                                { return w1(tw.null) }
func (tw *tripwireMech) callRetWitness(b *ir.Builder, call *ir.Instr) witness {
	return w1(call)
}

func (tw *tripwireMech) instrumentCall(fi *funcInstrumenter, call *ir.Instr) {
	if call.Ty.IsPointer() {
		fi.retWitness[call] = w1(call)
		fi.cache[call] = fi.retWitness[call]
	}
}

func (tw *tripwireMech) placeCheck(fi *funcInstrumenter, t ITarget) {
	w := fi.getWitness(t.Ptr)
	fi.bld.SetBefore(t.Instr)
	c := fi.bld.Call(tw.check, t.Ptr, ir.NewInt(ir.I64, int64(t.Width)), w.vals[0])
	c.Tag = "check"
	tw.placed++
}

func (tw *tripwireMech) establishStore(fi *funcInstrumenter, t ITarget)    {}
func (tw *tripwireMech) establishReturn(fi *funcInstrumenter, t ITarget)   {}
func (tw *tripwireMech) establishPtrToInt(fi *funcInstrumenter, t ITarget) {}

// TestThirdMechanismPlugsIn drives the shared framework machinery with the
// tripwire mechanism and validates the result structurally.
func TestThirdMechanismPlugsIn(t *testing.T) {
	m, err := cc.Compile("t", cc.Source{Name: "t.c", Code: `
int g[8];
int pick(int *p, int c) {
    int *q;
    if (c) { q = p; } else { q = g; }
    return q[1];
}
int main() {
    int local[4];
    local[0] = g[0];
    return pick(local, local[0]);
}`})
	if err != nil {
		t.Fatal(err)
	}
	// Promote locals so the pointer select in pick becomes a phi.
	opt.RunSequence(m, opt.SimplifyCFG{}, opt.Mem2Reg{})
	cfg := Config{OptDominance: true}
	mech := newTripwireMech(m)
	stats := &Stats{}

	var fns []*ir.Func
	m.Definitions(func(f *ir.Func) { fns = append(fns, f) })
	for _, f := range fns {
		if err := instrumentFunc(f, &cfg, mech, stats); err != nil {
			t.Fatal(err)
		}
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("instrumented module malformed: %v", err)
	}
	if mech.placed == 0 {
		t.Fatal("tripwire placed no probes")
	}
	// The shared machinery must have mirrored the pointer phi in pick with
	// a single-component witness phi.
	if stats.WitnessPhis == 0 {
		t.Error("witness propagation did not create phis for the third mechanism")
	}
	// And the shared dominance filter must have been applied.
	if stats.DerefTargets == 0 {
		t.Error("no targets discovered")
	}
	probeCalls := 0
	m.Definitions(func(f *ir.Func) {
		f.Instrs(func(in *ir.Instr) bool {
			if in.Op == ir.OpCall && in.Callee() != nil && in.Callee().Name == "tripwire_probe" {
				probeCalls++
			}
			return true
		})
	})
	if probeCalls != mech.placed {
		t.Errorf("probe calls %d != placed %d", probeCalls, mech.placed)
	}
}
