package core

import (
	"repro/internal/ir"
	"repro/internal/rt"
)

// sbMech implements the SoftBound instrumentation (Section 3.2): witnesses
// are (base, bound) pairs propagated alongside pointers, stored to a
// metadata trie when pointers escape to memory, and communicated across
// calls via a shadow stack.
type sbMech struct {
	cfg   *Config
	stats *Stats

	loadBase, loadBound, storeMD, check         *ir.Func
	ssAlloc, ssSetArg, ssArgBase, ssArgBound    *ir.Func
	ssSetRet, ssRetBase, ssRetBound, ssPop      *ir.Func
	wideBase, wideBound, nullBase, nullBoundVal ir.Value
}

func newSBMech(m *ir.Module, cfg *Config, stats *Stats) *sbMech {
	vp := witnessComponentType()
	return &sbMech{
		cfg:        cfg,
		stats:      stats,
		loadBase:   rt.Declare(m, rt.SBLoadBase),
		loadBound:  rt.Declare(m, rt.SBLoadBound),
		storeMD:    rt.Declare(m, rt.SBStoreMD),
		check:      rt.Declare(m, rt.SBCheck),
		ssAlloc:    rt.Declare(m, rt.SBSSAlloc),
		ssSetArg:   rt.Declare(m, rt.SBSSSetArg),
		ssArgBase:  rt.Declare(m, rt.SBSSArgBase),
		ssArgBound: rt.Declare(m, rt.SBSSArgBound),
		ssSetRet:   rt.Declare(m, rt.SBSSSetRet),
		ssRetBase:  rt.Declare(m, rt.SBSSRetBase),
		ssRetBound: rt.Declare(m, rt.SBSSRetBound),
		ssPop:      rt.Declare(m, rt.SBSSPop),

		wideBase:     ir.NewNull(vp),
		wideBound:    ir.NewConstPtr(vp, ^uint64(0)),
		nullBase:     ir.NewNull(vp),
		nullBoundVal: ir.NewNull(vp),
	}
}

func (s *sbMech) name() string    { return "softbound" }
func (s *sbMech) components() int { return 2 }

func (s *sbMech) wide() witness { return w2(s.wideBase, s.wideBound) }

// boundsFromSize builds (ptr, ptr+size) with size given as an i64 value.
func (s *sbMech) boundsFromSize(b *ir.Builder, ptr ir.Value, size ir.Value) witness {
	p8 := b.Bitcast(ptr, witnessComponentType())
	p8.Tag = "witness"
	bound := b.GEP(p8, size)
	bound.Tag = "witness"
	return w2(p8, bound)
}

// toI64 widens an integer value to i64 if needed.
func toI64(b *ir.Builder, v ir.Value, tag string) ir.Value {
	if v.Type().Equal(ir.I64) {
		return v
	}
	c := b.Cast(ir.OpZExt, v, ir.I64)
	c.Tag = tag
	return c
}

func (s *sbMech) allocaWitness(b *ir.Builder, al *ir.Instr) witness {
	elemSize := int64(al.AllocTy.Size())
	if len(al.Operands) == 0 {
		return s.boundsFromSize(b, al, ir.NewInt(ir.I64, elemSize))
	}
	cnt := toI64(b, al.Operands[0], "witness")
	size := b.Mul(cnt, ir.NewInt(ir.I64, elemSize))
	size.Tag = "witness"
	return s.boundsFromSize(b, al, size)
}

func (s *sbMech) globalWitness(b *ir.Builder, g *ir.Global) witness {
	if g.SizeZeroDecl {
		// Separate compilation hid the array's size (Section 4.3). The
		// configuration decides between wide bounds (access never
		// reported) and NULL bounds (every access reported).
		if s.cfg.SBSizeZeroWideUpper {
			return s.wide()
		}
		return w2(s.nullBase, s.nullBoundVal)
	}
	return s.boundsFromSize(b, g, ir.NewInt(ir.I64, int64(g.ValueTy.Size())))
}

func (s *sbMech) allocCallWitness(b *ir.Builder, call *ir.Instr) witness {
	args := call.Args()
	var size ir.Value
	switch call.Callee().Name {
	case "malloc":
		size = toI64(b, args[0], "witness")
	case "calloc":
		n := toI64(b, args[0], "witness")
		e := toI64(b, args[1], "witness")
		m := b.Mul(n, e)
		m.Tag = "witness"
		size = m
	case "realloc":
		size = toI64(b, args[1], "witness")
	default:
		return s.wide()
	}
	return s.boundsFromSize(b, call, size)
}

func (s *sbMech) loadWitness(b *ir.Builder, ld *ir.Instr) witness {
	loc := ld.Operands[0]
	base := b.Call(s.loadBase, loc)
	base.Tag = "witness"
	bound := b.Call(s.loadBound, loc)
	bound.Tag = "witness"
	return w2(base, bound)
}

func (s *sbMech) paramWitness(b *ir.Builder, p *ir.Param, ptrIdx int) witness {
	idx := ir.NewInt(ir.I64, int64(ptrIdx))
	base := b.Call(s.ssArgBase, idx)
	base.Tag = "witness"
	bound := b.Call(s.ssArgBound, idx)
	bound.Tag = "witness"
	return w2(base, bound)
}

func (s *sbMech) intToPtrWitness(b *ir.Builder, in *ir.Instr) witness {
	if s.cfg.SBIntToPtrWideBounds {
		return s.wide()
	}
	return w2(s.nullBase, s.nullBoundVal)
}

func (s *sbMech) nullWitness() witness { return w2(s.nullBase, s.nullBoundVal) }

func (s *sbMech) callRetWitness(b *ir.Builder, call *ir.Instr) witness {
	base := b.Call(s.ssRetBase)
	base.Tag = "witness"
	bound := b.Call(s.ssRetBound)
	bound.Tag = "witness"
	return w2(base, bound)
}

// instrumentCall wraps a call site with the shadow-stack protocol: the
// caller allocates a frame, records the bounds of pointer arguments, and
// after the call reads the returned pointer's bounds before releasing the
// frame.
func (s *sbMech) instrumentCall(fi *funcInstrumenter, call *ir.Instr) {
	b := fi.bld

	// Bounds of pointer arguments (materialized at their defs).
	type argW struct {
		idx int
		w   witness
	}
	var argWs []argW
	ptrIdx := 0
	for _, a := range call.Args() {
		if !a.Type().IsPointer() {
			continue
		}
		ptrIdx++
		argWs = append(argWs, argW{idx: ptrIdx, w: fi.getWitness(a)})
	}

	b.SetBefore(call)
	al := b.Call(s.ssAlloc, ir.NewInt(ir.I64, int64(ptrIdx)))
	al.Tag = "invariant"
	for _, aw := range argWs {
		c := b.Call(s.ssSetArg, ir.NewInt(ir.I64, int64(aw.idx)), aw.w.vals[0], aw.w.vals[1])
		c.Tag = "invariant"
	}

	b.SetAfter(call)
	if call.Ty.IsPointer() {
		base := b.Call(s.ssRetBase)
		base.Tag = "witness"
		bound := b.Call(s.ssRetBound)
		bound.Tag = "witness"
		fi.retWitness[call] = w2(base, bound)
		fi.cache[call] = fi.retWitness[call]
	}
	pop := b.Call(s.ssPop)
	pop.Tag = "invariant"
	s.stats.ShadowFrames++
}

// placeCheck inserts the dereference check of Figure 2 before the access.
func (s *sbMech) placeCheck(fi *funcInstrumenter, t ITarget) {
	w := fi.getWitness(t.Ptr)
	fi.bld.SetBefore(t.Instr)
	c := fi.bld.Call(s.check, t.Ptr, ir.NewInt(ir.I64, int64(t.Width)), w.vals[0], w.vals[1])
	c.Tag = "check"
	fi.site(c, "check", t.Width, t.Instr)
	s.stats.ChecksPlaced++
}

// establishStore records metadata for a pointer stored to memory (Table 1).
func (s *sbMech) establishStore(fi *funcInstrumenter, t ITarget) {
	w := fi.getWitness(t.Ptr)
	fi.bld.SetAfter(t.Instr)
	c := fi.bld.Call(s.storeMD, t.Instr.Operands[1], w.vals[0], w.vals[1])
	c.Tag = "invariant"
	fi.site(c, "metastore", 0, t.Instr)
	s.stats.MetadataStores++
}

// establishReturn records the returned pointer's bounds on the shadow stack.
func (s *sbMech) establishReturn(fi *funcInstrumenter, t ITarget) {
	w := fi.getWitness(t.Ptr)
	fi.bld.SetBefore(t.Instr)
	c := fi.bld.Call(s.ssSetRet, w.vals[0], w.vals[1])
	c.Tag = "invariant"
}

// establishPtrToInt does nothing for SoftBound: casting a pointer to an
// integer loses the metadata association; the cast back is handled by
// intToPtrWitness.
func (s *sbMech) establishPtrToInt(fi *funcInstrumenter, t ITarget) {}
