package core

import (
	"fmt"

	"repro/internal/ir"
)

// witness carries the values that describe a pointer's allocation bounds at
// runtime. SoftBound uses two components (base, bound); Low-Fat Pointers use
// one (the allocation base). Components are pointer-typed ir.Values.
type witness struct {
	vals [2]ir.Value
	n    int
}

func w1(base ir.Value) witness { return witness{vals: [2]ir.Value{base}, n: 1} }

func w2(base, bound ir.Value) witness { return witness{vals: [2]ir.Value{base, bound}, n: 2} }

// mechanism is the per-approach strategy the generic witness propagation
// calls into. It creates witnesses at pointer sources (allocations) and at
// the points where the approach relies on its invariant (loads of pointers,
// call results, function arguments, integer-to-pointer casts; Table 1).
//
// All methods receive a builder whose insertion point is already set to the
// place where witness code may be inserted.
type mechanism interface {
	name() string
	// components is 1 for Low-Fat Pointers, 2 for SoftBound.
	components() int

	// allocaWitness creates the witness for a stack allocation; the
	// builder inserts after the alloca.
	allocaWitness(b *ir.Builder, al *ir.Instr) witness
	// globalWitness creates the witness for a global; the builder inserts
	// at the function entry.
	globalWitness(b *ir.Builder, g *ir.Global) witness
	// allocCallWitness creates the witness for a malloc-like call result;
	// the builder inserts after the call.
	allocCallWitness(b *ir.Builder, call *ir.Instr) witness
	// loadWitness creates the witness for a pointer loaded from memory;
	// the builder inserts after the load.
	loadWitness(b *ir.Builder, ld *ir.Instr) witness
	// paramWitness creates the witness for a pointer parameter; the
	// builder inserts at the function entry. ptrIdx is the 1-based index
	// among the function's pointer parameters.
	paramWitness(b *ir.Builder, p *ir.Param, ptrIdx int) witness
	// intToPtrWitness creates the witness for a pointer cast from an
	// integer; the builder inserts after the cast.
	intToPtrWitness(b *ir.Builder, in *ir.Instr) witness
	// nullWitness is the witness for null/undef pointers.
	nullWitness() witness
	// callRetWitness creates the witness for a non-allocation call result.
	// It is invoked by the call protocol, which guarantees the insertion
	// point is after the call and before any frame teardown.
	callRetWitness(b *ir.Builder, call *ir.Instr) witness

	// instrumentCall applies the mechanism's call-site handling
	// (shadow-stack protocol for SoftBound; argument escape checks for
	// Low-Fat Pointers) and registers the call-result witness.
	instrumentCall(fi *funcInstrumenter, call *ir.Instr)
	// placeCheck inserts a dereference check for a CheckTarget.
	placeCheck(fi *funcInstrumenter, t ITarget)
	// establishStore handles a pointer store (metadata store / escape
	// check).
	establishStore(fi *funcInstrumenter, t ITarget)
	// establishReturn handles a pointer return.
	establishReturn(fi *funcInstrumenter, t ITarget)
	// establishPtrToInt handles a pointer-to-integer cast.
	establishPtrToInt(fi *funcInstrumenter, t ITarget)
}

// funcInstrumenter instruments one function with one mechanism.
type funcInstrumenter struct {
	cfg   *Config
	mech  mechanism
	fn    *ir.Func
	bld   *ir.Builder
	cache map[ir.Value]witness
	stats *Stats
	// ptrParamIdx maps a pointer param to its 1-based pointer-arg index.
	ptrParamIdx map[*ir.Param]int
	// retWitness holds pre-materialized witnesses for call results,
	// populated by the call protocol before witness resolution runs.
	retWitness map[*ir.Instr]witness
	// checkSiteOf maps the anchoring access of each placed dereference
	// check to its site ID, so eliminated targets can attribute the
	// dominating check that covers them.
	checkSiteOf map[*ir.Instr]int32
}

// site registers check/metadata call c as a telemetry site: it gets a stable
// SiteID and inherits the source location of the instruction it guards, so
// dynamic per-site counts resolve back to the C source.
func (fi *funcInstrumenter) site(c *ir.Instr, kind string, width int, anchor *ir.Instr) {
	if anchor != nil && c.Loc.IsZero() {
		c.Loc = anchor.Loc
	}
	if fi.stats.Sites == nil {
		return
	}
	c.Site = fi.stats.Sites.Add(kind, fi.mech.name(), width, fi.fn.Name, c.Loc)
	if kind == "check" && anchor != nil {
		fi.checkSiteOf[anchor] = c.Site
	}
}

func newFuncInstrumenter(cfg *Config, mech mechanism, f *ir.Func, stats *Stats) *funcInstrumenter {
	fi := &funcInstrumenter{
		cfg:         cfg,
		mech:        mech,
		fn:          f,
		bld:         ir.NewBuilder(f),
		cache:       make(map[ir.Value]witness),
		stats:       stats,
		ptrParamIdx: make(map[*ir.Param]int),
		retWitness:  make(map[*ir.Instr]witness),
		checkSiteOf: make(map[*ir.Instr]int32),
	}
	idx := 0
	for _, p := range f.Params {
		if p.Ty.IsPointer() {
			idx++
			fi.ptrParamIdx[p] = idx
		}
	}
	return fi
}

// entryPoint positions the builder at the start of the entry block (after
// any phis, of which the entry has none).
func (fi *funcInstrumenter) entryPoint() {
	entry := fi.fn.Entry()
	if first := entry.FirstNonPhi(); first != nil {
		fi.bld.SetBefore(first)
	} else {
		fi.bld.SetBlock(entry)
	}
}

// getWitness returns (materializing if needed) the witness for a pointer
// value. Witness code is inserted at the definition of the value, so the
// returned components dominate every use of the pointer.
func (fi *funcInstrumenter) getWitness(v ir.Value) witness {
	if w, ok := fi.cache[v]; ok {
		return w
	}
	w := fi.buildWitness(v)
	fi.cache[v] = w
	return w
}

func (fi *funcInstrumenter) buildWitness(v ir.Value) witness {
	switch x := v.(type) {
	case *ir.ConstNull, *ir.Undef:
		return fi.mech.nullWitness()
	case *ir.ConstPtr:
		return fi.mech.nullWitness()
	case *ir.Global:
		fi.entryPoint()
		return fi.mech.globalWitness(fi.bld, x)
	case *ir.Func:
		return fi.mech.nullWitness()
	case *ir.Param:
		fi.entryPoint()
		return fi.mech.paramWitness(fi.bld, x, fi.ptrParamIdx[x])
	case *ir.Instr:
		return fi.buildInstrWitness(x)
	}
	panic(fmt.Sprintf("core: no witness strategy for %T", v))
}

func (fi *funcInstrumenter) buildInstrWitness(in *ir.Instr) witness {
	switch in.Op {
	case ir.OpAlloca:
		fi.bld.SetAfter(in)
		return fi.mech.allocaWitness(fi.bld, in)

	case ir.OpGEP:
		// Pointer arithmetic inherits the source pointer's witness.
		return fi.getWitness(in.Operands[0])

	case ir.OpBitcast:
		return fi.getWitness(in.Operands[0])

	case ir.OpSelect:
		// Pre-register a placeholder to terminate cycles (selects cannot
		// be cyclic, but keep the pattern uniform), then mirror the select
		// for each witness component (Table 1).
		wt := fi.getWitness(in.Operands[1])
		wf := fi.getWitness(in.Operands[2])
		fi.bld.SetBefore(in)
		var out witness
		out.n = fi.mech.components()
		for c := 0; c < out.n; c++ {
			sel := fi.bld.Select(in.Operands[0], wt.vals[c], wf.vals[c])
			sel.Tag = "witness"
			out.vals[c] = sel
		}
		fi.stats.WitnessSelects++
		return out

	case ir.OpPhi:
		// Create the witness phis up front and memoize them so recursive
		// lookups through loops terminate; fill incomings afterwards.
		fi.bld.SetBlock(in.Block)
		var out witness
		out.n = fi.mech.components()
		phis := make([]*ir.Instr, out.n)
		for c := 0; c < out.n; c++ {
			phi := fi.bld.Phi(witnessComponentType())
			phi.Tag = "witness"
			phis[c] = phi
			out.vals[c] = phi
		}
		fi.cache[in] = out
		for i, inc := range in.Operands {
			wInc := fi.getWitness(inc)
			for c := 0; c < out.n; c++ {
				phis[c].AddPhiIncoming(wInc.vals[c], in.PhiBlocks[i])
			}
		}
		fi.stats.WitnessPhis++
		return out

	case ir.OpCall:
		if w, ok := fi.retWitness[in]; ok {
			return w
		}
		callee := in.Callee()
		if callee != nil && isAllocFn(callee.Name) {
			fi.bld.SetAfter(in)
			return fi.mech.allocCallWitness(fi.bld, in)
		}
		// A call result without a protocol-produced witness: the call was
		// not an invariant target (e.g. mechanisms' own intrinsics); fall
		// back to the invariant witness right after the call.
		fi.bld.SetAfter(in)
		return fi.mech.callRetWitness(fi.bld, in)

	case ir.OpLoad:
		fi.bld.SetAfter(in)
		return fi.mech.loadWitness(fi.bld, in)

	case ir.OpIntToPtr:
		fi.bld.SetAfter(in)
		return fi.mech.intToPtrWitness(fi.bld, in)
	}
	panic(fmt.Sprintf("core: no witness strategy for instruction %s", ir.FormatInstr(in)))
}

// witnessComponentType is the type of witness component values.
func witnessComponentType() *ir.Type { return ir.PointerTo(ir.I8) }
