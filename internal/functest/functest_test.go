package functest

import (
	"testing"

	"repro/internal/core"
)

// TestSuiteMatrix runs the whole generated suite under both mechanisms and
// validates every outcome against the documented guarantees — the
// reproduction of the artifact's functional test battery (Appendix A.5).
func TestSuiteMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("long functional suite")
	}
	cases := Generate()
	if len(cases) < 200 {
		t.Fatalf("suite has only %d cases, want >= 200", len(cases))
	}
	var ran, detected int
	for i := range cases {
		c := &cases[i]
		for _, mech := range []core.Mech{core.MechSoftBound, core.MechLowFat} {
			out, err := Run(c, mech)
			if err != nil {
				t.Fatalf("%s under %s: %v", c.Name(), mech, err)
			}
			ran++
			want := c.ExpectDetected(mech)
			if out.Detected != want {
				t.Errorf("%s under %s: detected=%t, want %t (err: %v)",
					c.Name(), mech, out.Detected, want, out.Err)
			}
			if out.Detected {
				detected++
			}
			if !out.Detected && out.Err != nil {
				t.Errorf("%s under %s: crashed without detection: %v", c.Name(), mech, out.Err)
			}
		}
	}
	t.Logf("ran %d executions, %d detections", ran, detected)
}

func TestExpectations(t *testing.T) {
	// Spot-check the expectation model itself.
	inBounds := Case{Kind: Heap, Elem: ElemTypes[1], Count: 16, Index: 7}
	if inBounds.ExpectDetected(core.MechSoftBound) || inBounds.ExpectDetected(core.MechLowFat) {
		t.Error("in-bounds access expected detected")
	}
	onePast := Case{Kind: Heap, Elem: ElemTypes[1], Count: 16, Index: 16}
	if !onePast.ExpectDetected(core.MechSoftBound) {
		t.Error("softbound must detect one-past-the-end")
	}
	// 16 ints = 64 bytes -> 128-byte slot: index 16 (offset 64) is padding.
	if onePast.ExpectDetected(core.MechLowFat) {
		t.Error("lowfat cannot detect a padding access")
	}
	farPast := Case{Kind: Heap, Elem: ElemTypes[1], Count: 16, Index: 41}
	if !farPast.ExpectDetected(core.MechLowFat) {
		t.Error("lowfat must detect an access beyond the slot")
	}
	before := Case{Kind: Stack, Elem: ElemTypes[0], Count: 5, Index: -1}
	if !before.ExpectDetected(core.MechSoftBound) || !before.ExpectDetected(core.MechLowFat) {
		t.Error("underflow must be detected by both")
	}
}

func TestCaseNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Generate() {
		n := c.Name()
		if seen[n] {
			t.Fatalf("duplicate case name %s", n)
		}
		seen[n] = true
	}
}
