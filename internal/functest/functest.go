// Package functest generates and runs the artifact-style functional suite:
// small C programs with and without spatial memory-safety violations, each
// executed under both instrumentations and validated against the expected
// outcome (Appendix A.5 of the paper: "programs which contain memory safety
// violations such as heap, stack or global variable out-of-bounds accesses
// are correctly identified and no error is reported on C programs without
// out-of-bounds accesses").
//
// The expected outcome is computed from the mechanisms' documented
// guarantees:
//
//   - SoftBound detects every access outside the exact allocation bounds.
//   - Low-Fat Pointers detect accesses outside the padded power-of-two slot
//     (allocations are padded by one byte for one-past-the-end pointers);
//     overflows into the padding are missed by design (Section 4).
package functest

import (
	"fmt"

	"repro/internal/bytecode"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/lowfat"
	"repro/internal/opt"
	"repro/internal/vm"
)

// AllocKind is where the accessed object lives.
type AllocKind int

// Allocation kinds.
const (
	Heap AllocKind = iota
	Stack
	Global
)

// String names the kind.
func (k AllocKind) String() string {
	switch k {
	case Heap:
		return "heap"
	case Stack:
		return "stack"
	}
	return "global"
}

// ElemType is the element type of the accessed array.
type ElemType struct {
	// C is the C type name; Size its size in bytes.
	C    string
	Size int
}

// The element types the suite covers.
var ElemTypes = []ElemType{
	{"char", 1},
	{"int", 4},
	{"long", 8},
}

// Case is one generated program.
type Case struct {
	Kind AllocKind
	Elem ElemType
	// Count is the number of array elements.
	Count int
	// Index is the accessed element index (may be negative or past the
	// end).
	Index int
	// Write selects a store (true) or a load (false).
	Write bool
}

// Name renders a stable identifier.
func (c *Case) Name() string {
	op := "read"
	if c.Write {
		op = "write"
	}
	return fmt.Sprintf("%s_%s%d_idx%+d_%s", c.Kind, c.Elem.C, c.Count, c.Index, op)
}

// InBounds reports whether the access is within the C object.
func (c *Case) InBounds() bool {
	return c.Index >= 0 && c.Index < c.Count
}

// Source generates the C program. The access index is laundered through an
// opaque global so the optimizer cannot fold the access away or prove
// anything about it.
func (c *Case) Source() string {
	decl := ""
	setup := ""
	switch c.Kind {
	case Heap:
		setup = fmt.Sprintf("%s *a = (%s *)malloc(%d * sizeof(%s));", c.Elem.C, c.Elem.C, c.Count, c.Elem.C)
	case Stack:
		setup = fmt.Sprintf("%s a[%d];", c.Elem.C, c.Count)
	case Global:
		decl = fmt.Sprintf("%s garr[%d] = {1};\n", c.Elem.C, c.Count)
		setup = fmt.Sprintf("%s *a = garr;", c.Elem.C)
	}
	access := "sink = (long)a[idx];"
	if c.Write {
		access = fmt.Sprintf("a[idx] = (%s)sink;", c.Elem.C)
	}
	return fmt.Sprintf(`%s
int opaque_index = %d;
long sink = 7;
int main() {
    int idx;
    %s
    idx = opaque_index;
    %s
    printf("done %%ld\n", sink);
    return 0;
}`, decl, c.Index, setup, access)
}

// ExpectDetected reports whether the given mechanism must report the access.
func (c *Case) ExpectDetected(mech core.Mech) bool {
	if c.InBounds() {
		return false
	}
	if mech == core.MechSoftBound {
		return true
	}
	// Low-Fat Pointers: detected iff the access leaves the padded
	// power-of-two slot.
	objSize := c.Count * c.Elem.Size
	slot := int(lowfat.AllocSize(lowfat.RegionForSize(uint64(objSize))))
	if slot <= 0 { // oversized fallback: wide bounds, never detected
		return false
	}
	offset := c.Index * c.Elem.Size
	return offset < 0 || offset+c.Elem.Size > slot
}

// Generate enumerates the suite: every allocation kind, element type and a
// spread of in-bounds and out-of-bounds indices.
func Generate() []Case {
	var cases []Case
	counts := []int{5, 16}
	for _, kind := range []AllocKind{Heap, Stack, Global} {
		for _, et := range ElemTypes {
			for _, n := range counts {
				indices := []int{
					0, n / 2, n - 1, // in bounds
					n,         // one past the end
					n + 1,     // just past
					2*n + 9,   // far past (beyond any padding)
					-1,        // just before
					-(n + 17), // far before
				}
				for _, idx := range indices {
					for _, write := range []bool{false, true} {
						cases = append(cases, Case{
							Kind: kind, Elem: et, Count: n, Index: idx, Write: write,
						})
					}
				}
			}
		}
	}
	return cases
}

// Outcome is the result of running one case under one mechanism.
type Outcome struct {
	Detected bool
	Err      error
}

// Run compiles, instruments and executes the case under the mechanism on
// the reference tree interpreter.
func Run(c *Case, mech core.Mech) (Outcome, error) {
	return RunEngine(c, mech, bytecode.EngineTree)
}

// RunEngine is Run with an explicit execution engine.
func RunEngine(c *Case, mech core.Mech, engine bytecode.EngineKind) (Outcome, error) {
	m, err := cc.Compile(c.Name(), cc.Source{Name: "case.c", Code: c.Source()})
	if err != nil {
		return Outcome{}, fmt.Errorf("compile %s: %w", c.Name(), err)
	}
	cfg := core.PaperSoftBound()
	vopts := vm.Options{Mechanism: vm.MechSoftBound}
	if mech == core.MechLowFat {
		cfg = core.PaperLowFat()
		vopts = vm.Options{Mechanism: vm.MechLowFat, LowFatHeap: true, LowFatStack: true, LowFatGlobals: true}
	}
	cfg.OptDominance = true
	var ierr error
	opt.RunPipeline(m, opt.EPVectorizerStart, func(mod *ir.Module) {
		_, ierr = core.Instrument(mod, cfg)
	}, opt.PipelineOptions{Level: 3})
	if ierr != nil {
		return Outcome{}, fmt.Errorf("instrument %s: %w", c.Name(), ierr)
	}
	machine, err := vm.New(m, vopts)
	if err != nil {
		return Outcome{}, err
	}
	_, rerr := bytecode.RunOn(engine, machine, "")
	if rerr != nil {
		if _, ok := rerr.(*vm.ViolationError); ok {
			return Outcome{Detected: true, Err: rerr}, nil
		}
		// Hardware faults (e.g. far-out-of-bounds reads hitting the null
		// guard) count as crashes, not detections.
		return Outcome{Detected: false, Err: rerr}, nil
	}
	return Outcome{}, nil
}
