// Chaos mode: the fault-injection campaign turned against the harness
// itself. Where the rest of this package plants memory-safety faults in the
// *instrumented program* to certify the mechanisms' detection matrix, the
// chaos plan plants operational faults in the *campaign execution* — cells
// killed mid-run, scheduling delays, corrupted checkpoint-journal entries —
// to certify that the supervision layer (internal/resilience) loses no
// results and mislabels no cell. Decisions are a pure function of
// (seed, cell key, attempt), so a chaos campaign is exactly reproducible.
package faultinject

import (
	"hash/fnv"
	"math/rand"
	"time"
)

// ChaosPlan configures the operational-fault injections of `mi-bench
// -chaos`. Probabilities are per cell; the zero value injects nothing.
type ChaosPlan struct {
	// Seed drives every decision; the same seed over the same cell keys
	// yields the identical injection schedule.
	Seed int64 `json:"seed"`
	// KillProb is the probability that a cell's first attempt is killed
	// mid-run (cooperative vm.IntrChaos interrupt after KillAfter).
	// Kills hit only attempt 0, so a supervisor with retries always
	// converges to the real result — chaos must never lose a cell.
	KillProb float64 `json:"kill_prob"`
	// MaxKillAfter bounds the delay before the kill fires (default 2ms:
	// long enough for the cell to be genuinely mid-run, short enough that
	// most cells are still running).
	MaxKillAfter time.Duration `json:"max_kill_after"`
	// DelayProb is the probability of a scheduling delay before an
	// attempt; MaxDelay bounds it (default 2ms).
	DelayProb float64       `json:"delay_prob"`
	MaxDelay  time.Duration `json:"max_delay"`
	// CorruptProb is the probability that a cell's checkpoint-journal
	// entry is written with flipped payload bytes. The journal's content
	// hash must detect it at resume and recompute the cell.
	CorruptProb float64 `json:"corrupt_prob"`
}

// DefaultChaosPlan is the `mi-bench -chaos` configuration: every injection
// class on, aggressively enough that a standard campaign exercises all of
// them.
func DefaultChaosPlan(seed int64) ChaosPlan {
	return ChaosPlan{
		Seed:         seed,
		KillProb:     0.3,
		MaxKillAfter: 2 * time.Millisecond,
		DelayProb:    0.3,
		MaxDelay:     2 * time.Millisecond,
		CorruptProb:  0.25,
	}
}

// Enabled reports whether the plan injects anything at all.
func (p ChaosPlan) Enabled() bool {
	return p.KillProb > 0 || p.DelayProb > 0 || p.CorruptProb > 0
}

// ChaosAction is the plan's verdict for one cell attempt.
type ChaosAction struct {
	// Kill, when true, schedules a cooperative chaos kill KillAfter into
	// the attempt.
	Kill      bool
	KillAfter time.Duration
	// Delay is a scheduling delay to sleep before the attempt (0 = none).
	Delay time.Duration
	// CorruptJournal, when true, mangles this cell's journal payload.
	CorruptJournal bool
}

// rng returns the deterministic per-(key, attempt) stream. Mixing the key
// hash into the seed makes decisions independent of campaign order and of
// which other cells run.
func (p ChaosPlan) rng(key string, attempt int) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(key))
	return rand.New(rand.NewSource(p.Seed ^ int64(h.Sum64()) ^ int64(uint64(attempt)*0x9e3779b97f4a7c15)))
}

// Decide returns the injections for one attempt at a cell. Kills and
// delays target only attempt 0: retries run clean, so every chaos-killed
// cell still completes with its true result.
func (p ChaosPlan) Decide(key string, attempt int) ChaosAction {
	var a ChaosAction
	if !p.Enabled() {
		return a
	}
	rng := p.rng(key, attempt)
	// Draw in a fixed order so adding one injection class never reshuffles
	// the others' schedule.
	kill := rng.Float64() < p.KillProb
	delay := rng.Float64() < p.DelayProb
	corrupt := rng.Float64() < p.CorruptProb
	if attempt > 0 {
		return a
	}
	if kill {
		max := p.MaxKillAfter
		if max <= 0 {
			max = 2 * time.Millisecond
		}
		a.Kill = true
		a.KillAfter = time.Duration(rng.Int63n(int64(max))) + 1
	}
	if delay {
		max := p.MaxDelay
		if max <= 0 {
			max = 2 * time.Millisecond
		}
		a.Delay = time.Duration(rng.Int63n(int64(max))) + 1
	}
	a.CorruptJournal = corrupt
	return a
}

// CorruptPayload deterministically mangles a journal payload for a cell
// whose Decide verdict set CorruptJournal. Exported so the harness can
// install it as the journal's corruptor. The mangling mimics silent data
// corruption rather than a torn write: it rewrites digits inside numbers,
// so the payload still parses as JSON but its bytes no longer match the
// recorded content hash — exactly the case only hashing can catch. (A digit
// is only touched when it follows another digit, so no "0123"-style
// invalid number literals can arise.) Payloads without such a digit are
// returned unchanged.
func (p ChaosPlan) CorruptPayload(key string, payload []byte) []byte {
	var spots []int
	for i := 1; i < len(payload); i++ {
		if payload[i] >= '0' && payload[i] <= '9' && payload[i-1] >= '0' && payload[i-1] <= '9' {
			spots = append(spots, i)
		}
	}
	if len(spots) == 0 {
		return payload
	}
	rng := p.rng(key, 1<<20) // distinct stream from attempt decisions
	out := append([]byte(nil), payload...)
	flips := 1 + rng.Intn(3)
	for i := 0; i < flips; i++ {
		at := spots[rng.Intn(len(spots))]
		out[at] = '0' + byte((int(out[at]-'0')+1+rng.Intn(9))%10)
	}
	return out
}
