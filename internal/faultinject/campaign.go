// Campaign driver: plans a deterministic set of faults per benchmark,
// builds each mutated variant from a pristine clone, replays it under both
// mechanisms, and aggregates the per-mechanism detection matrix. A variant
// that panics the VM, trips the memory budget, or corrupts itself only marks
// its own cell: the campaign always runs to completion.
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/spec"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// Expect is the outcome the paper's security analysis predicts for a
// (kind, mechanism) pair.
type Expect int

const (
	// ExpDetect: the mechanism reports a violation.
	ExpDetect Expect = iota
	// ExpMiss: a true violation passes undetected (a blind spot).
	ExpMiss
	// ExpFalsePos: benign behaviour is reported as a violation.
	ExpFalsePos
	// ExpPass: benign behaviour passes silently.
	ExpPass
	// ExpAny: the analysis makes no prediction (e.g. collateral damage of
	// an uninstrumented library write may or may not crash the program).
	ExpAny
)

// String names the expectation.
func (e Expect) String() string {
	switch e {
	case ExpDetect:
		return "detect"
	case ExpMiss:
		return "miss"
	case ExpFalsePos:
		return "falsepos"
	case ExpPass:
		return "pass"
	case ExpAny:
		return "any"
	}
	return fmt.Sprintf("expect(%d)", int(e))
}

// Expected returns the paper-predicted outcome for a fault kind under a
// mechanism (Section 6: Table 4's qualitative claims).
func Expected(k Kind, mech core.Mech) Expect {
	sb := mech == core.MechSoftBound
	switch k {
	case GEPOverflow, GEPUnderflow:
		return ExpDetect
	case GEPPadding, AllocShrink:
		// In-padding accesses are provably invisible to Low-Fat Pointers.
		if sb {
			return ExpDetect
		}
		return ExpMiss
	case LibcallLen:
		// Only the SoftBound wrappers see library-internal accesses; under
		// Low-Fat the corrupted write lands unchecked and may or may not
		// take the program down.
		if sb {
			return ExpDetect
		}
		return ExpAny
	case ObfStaleUpdate:
		// The integer re-store leaves SoftBound's metadata stale (wide);
		// Low-Fat re-derives bounds from the pointer value itself.
		if sb {
			return ExpMiss
		}
		return ExpDetect
	case ObfBenignInt, BytewiseCopy:
		if sb {
			return ExpFalsePos
		}
		return ExpPass
	}
	return ExpAny
}

// Outcome classifies what actually happened when a variant ran.
type Outcome int

const (
	// OutDetected: the mechanism reported a violation for a true fault.
	OutDetected Outcome = iota
	// OutMissed: a true fault ran to completion undetected.
	OutMissed
	// OutFalsePos: the mechanism reported a violation for benign code.
	OutFalsePos
	// OutPassed: benign code ran to completion unreported.
	OutPassed
	// OutCrashed: the variant failed for an unrelated reason (VM runtime
	// error, memory budget, nonzero exit, build failure).
	OutCrashed
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutDetected:
		return "detected"
	case OutMissed:
		return "missed"
	case OutFalsePos:
		return "falsepos"
	case OutPassed:
		return "passed"
	case OutCrashed:
		return "crashed"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Matches reports whether the outcome satisfies the expectation.
func (o Outcome) Matches(e Expect) bool {
	switch e {
	case ExpDetect:
		return o == OutDetected
	case ExpMiss:
		return o == OutMissed
	case ExpFalsePos:
		return o == OutFalsePos
	case ExpPass:
		return o == OutPassed
	}
	return true
}

// Options configures a campaign.
type Options struct {
	// Seed drives site selection; the same seed over the same benchmarks
	// yields an identical plan and, the VM being deterministic, an
	// identical matrix.
	Seed int64
	// PerKind is the number of faults planted per kind per benchmark
	// (default 1; fewer if the benchmark lacks eligible covered sites).
	PerKind int
	// Kinds are the fault classes to plant (default DefaultKinds()).
	Kinds []Kind
	// Benches are the targets (default spec.All()).
	Benches []*spec.Benchmark
	// MaxSteps caps each variant run; corrupted variants may loop
	// (default 1<<30).
	MaxSteps uint64
	// MemBudget caps each variant's materialized memory so a corrupted
	// length cannot exhaust the host (default 1 GiB; 0 keeps the default,
	// use NoBudget for genuinely unlimited runs).
	MemBudget uint64
	// NoBudget disables the memory budget entirely.
	NoBudget bool
	// Parallel is the worker count (default GOMAXPROCS, capped at 8).
	Parallel int
	// Engine selects the execution engine for coverage and variant runs
	// (default bytecode.EngineTree).
	Engine bytecode.EngineKind
	// Hoist enables loop-aware check hoisting (core.Config.OptHoist) in
	// every variant build, for differential security runs of the widened
	// range checks against the per-iteration baseline.
	Hoist bool
}

func (o Options) withDefaults() Options {
	if o.PerKind <= 0 {
		o.PerKind = 1
	}
	if len(o.Kinds) == 0 {
		o.Kinds = DefaultKinds()
	}
	if len(o.Benches) == 0 {
		o.Benches = spec.All()
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 1 << 30
	}
	if o.MemBudget == 0 {
		o.MemBudget = 1 << 30
	}
	if o.NoBudget {
		o.MemBudget = 0
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
		if o.Parallel > 8 {
			o.Parallel = 8
		}
	}
	return o
}

// Mechs are the instrumentations the campaign replays each variant under.
var Mechs = []core.Mech{core.MechSoftBound, core.MechLowFat}

// VariantResult is the outcome of one fault under one mechanism.
type VariantResult struct {
	Fault   Fault
	Mech    core.Mech
	Expect  Expect
	Outcome Outcome
	// Detail carries the violation or error text, if any.
	Detail string
	// ExpectedAlloc is the allocation-site ID the instrumenter assigned to
	// the faulted object (0 when the fault's base is not an allocation).
	ExpectedAlloc int32
	// ReportedAlloc is the allocation site the violation report attributed
	// the faulting pointer to (0 when there was no report or no resolution).
	ReportedAlloc int32
	// Attributed reports whether the violation report named the faulted
	// allocation site (only meaningful for detected faults).
	Attributed bool
	// Report is the structured forensic report of the violation, if any.
	Report *telemetry.ViolationReport
}

// Report is the campaign's aggregate result.
type Report struct {
	Seed    int64
	Results []VariantResult
	// Failures records benchmark-level problems (compile or coverage-run
	// errors) that prevented planting; the campaign proceeds without
	// those benchmarks.
	Failures []string
}

// Run executes the campaign. It never fails as a whole: per-benchmark and
// per-variant problems are recorded in the report.
func Run(o Options) *Report {
	o = o.withDefaults()
	rep := &Report{Seed: o.Seed}

	type benchPlan struct {
		pristine *ir.Module
		faults   []Fault
		err      error
	}
	plans := make([]benchPlan, len(o.Benches))
	sem := make(chan struct{}, o.Parallel)
	var wg sync.WaitGroup
	for i, b := range o.Benches {
		wg.Add(1)
		go func(i int, b *spec.Benchmark) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			p := &plans[i]
			defer func() {
				if r := recover(); r != nil {
					p.err = fmt.Errorf("planning panicked: %v", r)
				}
			}()
			p.pristine, p.faults, p.err = planBench(b, o)
		}(i, b)
	}
	wg.Wait()

	type job struct {
		plan  *benchPlan
		fault Fault
		mech  core.Mech
	}
	var jobs []job
	for i, b := range o.Benches {
		if plans[i].err != nil {
			rep.Failures = append(rep.Failures, fmt.Sprintf("%s: %v", b.Name, plans[i].err))
			continue
		}
		for _, f := range plans[i].faults {
			for _, mech := range Mechs {
				jobs = append(jobs, job{plan: &plans[i], fault: f, mech: mech})
			}
		}
	}

	rep.Results = make([]VariantResult, len(jobs))
	for ji, j := range jobs {
		wg.Add(1)
		go func(ji int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rep.Results[ji] = runVariant(j.plan.pristine, j.fault, j.mech, o)
		}(ji, j)
	}
	wg.Wait()

	// Attribution validation: every detected (non-benign) fault whose base
	// is a registered allocation must carry a report naming that allocation
	// site. A mismatch is a campaign failure, not just a curiosity — it
	// means the forensics pointed an investigator at the wrong object.
	for _, vr := range rep.Results {
		if vr.Outcome != OutDetected || vr.Fault.Benign || vr.ExpectedAlloc == 0 {
			continue
		}
		if !vr.Attributed {
			rep.Failures = append(rep.Failures, fmt.Sprintf(
				"attribution: %s under %s: expected allocation site #%d, report named #%d",
				vr.Fault, vr.Mech, vr.ExpectedAlloc, vr.ReportedAlloc))
		}
	}
	return rep
}

// planBench compiles the benchmark, runs it once uninstrumented with
// instruction coverage, and picks fault sites that the run actually executes
// (a fault at dead code would prove nothing).
func planBench(b *spec.Benchmark, o Options) (*ir.Module, []Fault, error) {
	pristine, err := b.Compile()
	if err != nil {
		return nil, nil, err
	}
	cov := ir.CloneModule(pristine)
	var sites []*site
	opt.RunPipeline(cov, opt.EPVectorizerStart, func(mod *ir.Module) {
		sites = enumerateSites(mod)
	}, opt.PipelineOptions{Level: 3})

	cover := make(map[*ir.Instr]bool)
	machine, err := vm.New(cov, vm.Options{
		MaxSteps: o.MaxSteps, MemBudget: o.MemBudget, CoverInstrs: cover,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("coverage vm: %w", err)
	}
	code, err := bytecode.RunOn(o.Engine, machine, "")
	if err != nil {
		return nil, nil, fmt.Errorf("coverage run: %w", err)
	}
	if code != 0 {
		return nil, nil, fmt.Errorf("coverage run exited with code %d", code)
	}

	var covered []*site
	for _, s := range sites {
		if cover[s.instr] {
			covered = append(covered, s)
		}
	}

	// The per-benchmark stream makes the plan independent of the benchmark
	// list the campaign happens to run with.
	h := fnv.New64a()
	h.Write([]byte(b.Name))
	rng := rand.New(rand.NewSource(o.Seed ^ int64(h.Sum64())))

	var faults []Fault
	for _, k := range o.Kinds {
		var elig []*site
		for _, s := range covered {
			if eligible(s, k) {
				elig = append(elig, s)
			}
		}
		rng.Shuffle(len(elig), func(i, j int) { elig[i], elig[j] = elig[j], elig[i] })
		n := o.PerKind
		if n > len(elig) {
			n = len(elig)
		}
		for _, s := range elig[:n] {
			faults = append(faults, makeFault(b.Name, k, s))
		}
	}
	return pristine, faults, nil
}

// BuildVariant clones the pristine module, runs the optimization pipeline
// with a hook that plants the fault and instruments under the mechanism's
// paper configuration (plus check hoisting when hoist is set), and returns
// the executable variant.
func BuildVariant(pristine *ir.Module, f Fault, mech core.Mech, hoist bool) (*ir.Module, error) {
	m, _, _, err := BuildVariantForensic(pristine, f, mech, hoist)
	return m, err
}

// BuildVariantForensic is BuildVariant plus the forensic context the
// campaign's attribution validation needs: the instrumentation stats (whose
// Sites/AllocSites tables resolve the IDs in a violation report) and the
// allocation-site ID assigned to the faulted object (0 when the fault's base
// is not an allocation the instrumenter registered).
func BuildVariantForensic(pristine *ir.Module, f Fault, mech core.Mech, hoist bool) (*ir.Module, *core.Stats, int32, error) {
	m := ir.CloneModule(pristine)
	cfg := core.PaperSoftBound()
	if mech == core.MechLowFat {
		cfg = core.PaperLowFat()
	}
	cfg.OptDominance = true
	cfg.OptHoist = hoist

	var hookErr error
	var istats *core.Stats
	var expected int32
	hook := func(mod *ir.Module) {
		s := findSite(enumerateSites(mod), f.Site)
		if s == nil {
			hookErr = fmt.Errorf("site %s not found", f.Site)
			return
		}
		if f.Kind.postInstrument() {
			if istats, hookErr = core.Instrument(mod, cfg); hookErr != nil {
				return
			}
			hookErr = applyFault(s, f)
		} else {
			if hookErr = applyFault(s, f); hookErr != nil {
				return
			}
			istats, hookErr = core.Instrument(mod, cfg)
		}
		// The instrumenter has assigned allocation-site IDs by now (in both
		// orderings), so the faulted object's base carries the ID the
		// violation report is expected to name.
		switch base := s.base.(type) {
		case *ir.Global:
			expected = base.AllocSite
		case *ir.Instr:
			expected = base.AllocSite
		}
	}
	opt.RunPipeline(m, opt.EPVectorizerStart, hook, opt.PipelineOptions{Level: 3})
	if hookErr != nil {
		return nil, nil, 0, hookErr
	}
	return m, istats, expected, nil
}

// runVariant builds and executes one variant, classifying the result. Any
// panic along the way becomes an OutCrashed cell.
func runVariant(pristine *ir.Module, f Fault, mech core.Mech, o Options) (vr VariantResult) {
	vr = VariantResult{Fault: f, Mech: mech, Expect: Expected(f.Kind, mech)}
	defer func() {
		if p := recover(); p != nil {
			vr.Outcome = OutCrashed
			vr.Detail = fmt.Sprintf("panic: %v", p)
		}
	}()

	m, istats, expected, err := BuildVariantForensic(pristine, f, mech, o.Hoist)
	if err != nil {
		vr.Outcome = OutCrashed
		vr.Detail = "build: " + err.Error()
		return
	}
	vr.ExpectedAlloc = expected

	// Forensics is always on in the campaign: every detected fault must
	// carry a report that names the faulted allocation site (validated by
	// Run), and Stats/verdicts are bit-identical with forensics on or off.
	vopts := vm.Options{MaxSteps: o.MaxSteps, MemBudget: o.MemBudget, Forensics: true}
	if istats != nil {
		vopts.Sites = istats.Sites
		vopts.AllocSites = istats.AllocSites
	}
	switch mech {
	case core.MechSoftBound:
		vopts.Mechanism = vm.MechSoftBound
		// The campaign measures security, so the wrapper checks the paper
		// disables for runtime comparability are on (Section 5.1.2).
		vopts.SBCheckWrappers = true
	case core.MechLowFat:
		vopts.Mechanism = vm.MechLowFat
		vopts.LowFatHeap = true
		vopts.LowFatStack = true
		vopts.LowFatGlobals = true
	}
	machine, err := vm.New(m, vopts)
	if err != nil {
		vr.Outcome = OutCrashed
		vr.Detail = "vm: " + err.Error()
		return
	}
	code, rerr := bytecode.RunOn(o.Engine, machine, "")

	var viol *vm.ViolationError
	switch {
	case errors.As(rerr, &viol):
		if f.Benign {
			vr.Outcome = OutFalsePos
		} else {
			vr.Outcome = OutDetected
		}
		vr.Detail = viol.Error()
		vr.Report = viol.Report
		if viol.Report != nil && viol.Report.Alloc != nil {
			vr.ReportedAlloc = viol.Report.Alloc.Site
		}
		vr.Attributed = vr.ReportedAlloc != 0 && vr.ReportedAlloc == vr.ExpectedAlloc
	case rerr != nil:
		vr.Outcome = OutCrashed
		vr.Detail = rerr.Error()
	case code != 0:
		vr.Outcome = OutCrashed
		vr.Detail = fmt.Sprintf("exit code %d", code)
	default:
		if f.Benign {
			vr.Outcome = OutPassed
		} else {
			vr.Outcome = OutMissed
		}
	}
	return
}

// Cell aggregates outcomes for one (mechanism, kind) pair.
type Cell struct {
	Planted  int
	Detected int
	Missed   int
	FalsePos int
	Passed   int
	Crashed  int
	// Matched counts results consistent with the paper's prediction.
	Matched int
}

func (c *Cell) add(vr VariantResult) {
	c.Planted++
	switch vr.Outcome {
	case OutDetected:
		c.Detected++
	case OutMissed:
		c.Missed++
	case OutFalsePos:
		c.FalsePos++
	case OutPassed:
		c.Passed++
	case OutCrashed:
		c.Crashed++
	}
	if vr.Outcome.Matches(vr.Expect) {
		c.Matched++
	}
}

// Matrix aggregates the report into per-(mechanism, kind) cells.
func (r *Report) Matrix() map[core.Mech]map[Kind]*Cell {
	mx := make(map[core.Mech]map[Kind]*Cell)
	for _, mech := range Mechs {
		mx[mech] = make(map[Kind]*Cell)
	}
	for _, vr := range r.Results {
		cell := mx[vr.Mech][vr.Fault.Kind]
		if cell == nil {
			cell = &Cell{}
			mx[vr.Mech][vr.Fault.Kind] = cell
		}
		cell.add(vr)
	}
	return mx
}

// Unexpected returns the results that contradict the paper's predictions.
func (r *Report) Unexpected() []VariantResult {
	var out []VariantResult
	for _, vr := range r.Results {
		if !vr.Outcome.Matches(vr.Expect) {
			out = append(out, vr)
		}
	}
	return out
}

// Cell lookup helper for tests: the aggregate cell for (mech, kind).
func (r *Report) Cell(mech core.Mech, k Kind) Cell {
	var c Cell
	for _, vr := range r.Results {
		if vr.Mech == mech && vr.Fault.Kind == k {
			c.add(vr)
		}
	}
	return c
}

// Render formats the detection matrix like the paper's tables: one row per
// fault kind, one column group per mechanism, plus the predicted outcome so
// blind spots read directly off the table.
func (r *Report) Render() string {
	var sb strings.Builder
	benches := map[string]bool{}
	for _, vr := range r.Results {
		benches[vr.Fault.Bench] = true
	}
	fmt.Fprintf(&sb, "Fault-injection campaign: seed %d, %d variants over %d benchmarks\n",
		r.Seed, len(r.Results), len(benches))
	fmt.Fprintf(&sb, "ground truth: violation kinds should be detected, benign kinds should pass\n\n")

	mx := r.Matrix()
	var kinds []Kind
	seen := map[Kind]bool{}
	for _, vr := range r.Results {
		if !seen[vr.Fault.Kind] {
			seen[vr.Fault.Kind] = true
			kinds = append(kinds, vr.Fault.Kind)
		}
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })

	fmt.Fprintf(&sb, "%-14s %-9s", "kind", "truth")
	for _, mech := range Mechs {
		fmt.Fprintf(&sb, " | %-9s det miss  fp pass crsh  ok", mech)
	}
	sb.WriteString("\n")
	for _, k := range kinds {
		truth := "violation"
		if k.Benign() {
			truth = "benign"
		}
		fmt.Fprintf(&sb, "%-14s %-9s", k, truth)
		for _, mech := range Mechs {
			c := mx[mech][k]
			if c == nil {
				c = &Cell{}
			}
			fmt.Fprintf(&sb, " | %-9s %3d  %3d %3d  %3d  %3d %3d",
				"exp:"+Expected(k, mech).String(),
				c.Detected, c.Missed, c.FalsePos, c.Passed, c.Crashed, c.Matched)
		}
		sb.WriteString("\n")
	}

	if un := r.Unexpected(); len(un) > 0 {
		fmt.Fprintf(&sb, "\n%d results contradict the paper's predictions:\n", len(un))
		for _, vr := range un {
			fmt.Fprintf(&sb, "  %s under %s: expected %s, got %s (%s)\n",
				vr.Fault, vr.Mech, vr.Expect, vr.Outcome, vr.Detail)
		}
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&sb, "\nFAILED: %s\n", f)
	}
	return sb.String()
}
