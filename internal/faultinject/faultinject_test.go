package faultinject

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/spec"
)

// fastBenches are small benchmarks that cover all three site categories
// between them (300twolf is the only program with constant-length library
// calls).
func fastBenches(t *testing.T) []*spec.Benchmark {
	t.Helper()
	var out []*spec.Benchmark
	for _, name := range []string{"462libquantum", "300twolf"} {
		b := spec.ByName(name)
		if b == nil {
			t.Fatalf("benchmark %s missing", name)
		}
		out = append(out, b)
	}
	return out
}

// TestFaultMatrix replays the standard fault kinds under both mechanisms and
// asserts the paper's security analysis (Section 6): everything detects plain
// over/underflows; Low-Fat Pointers provably misses in-padding accesses and
// shrunken allocations that stay in their slot; SoftBound misses accesses
// through pointers whose metadata went stale after an integer-typed update,
// and false-positives on benign integer-laundered or byte-copied pointers.
func TestFaultMatrix(t *testing.T) {
	rep := Run(Options{Seed: 1, Benches: fastBenches(t)})
	if len(rep.Failures) != 0 {
		t.Fatalf("campaign failures: %v", rep.Failures)
	}
	t.Logf("\n%s", rep.Render())

	sb, lf := core.MechSoftBound, core.MechLowFat
	type want struct {
		mech    core.Mech
		kind    Kind
		outcome Outcome
	}
	// Every planted variant of these kinds must land in exactly this cell.
	wants := []want{
		{sb, GEPOverflow, OutDetected},
		{lf, GEPOverflow, OutDetected},
		{sb, GEPUnderflow, OutDetected},
		{lf, GEPUnderflow, OutDetected},

		// The low-fat padding blind spot: SoftBound sees it, Low-Fat cannot.
		{sb, GEPPadding, OutDetected},
		{lf, GEPPadding, OutMissed},
		{sb, AllocShrink, OutDetected},
		{lf, AllocShrink, OutMissed},

		// Only the SoftBound wrappers see inside library calls.
		{sb, LibcallLen, OutDetected},

		// The SoftBound stale-metadata blind spot: the integer-typed
		// pointer update leaves wide bounds behind; Low-Fat re-derives
		// bounds from the pointer value and catches the stray access.
		{sb, ObfStaleUpdate, OutMissed},
		{lf, ObfStaleUpdate, OutDetected},

		// Benign integer laundering: false positive for the trie, silent
		// pass for value-derived bounds.
		{sb, ObfBenignInt, OutFalsePos},
		{lf, ObfBenignInt, OutPassed},
		{sb, BytewiseCopy, OutFalsePos},
		{lf, BytewiseCopy, OutPassed},
	}
	for _, w := range wants {
		c := rep.Cell(w.mech, w.kind)
		if c.Planted == 0 {
			t.Errorf("%s/%s: no variants planted", w.mech, w.kind)
			continue
		}
		var got int
		switch w.outcome {
		case OutDetected:
			got = c.Detected
		case OutMissed:
			got = c.Missed
		case OutFalsePos:
			got = c.FalsePos
		case OutPassed:
			got = c.Passed
		}
		if got != c.Planted {
			t.Errorf("%s/%s: want all %d variants %s, got cell %+v",
				w.mech, w.kind, c.Planted, w.outcome, c)
		}
	}
	// Both mechanisms' blind spots must actually have been exercised.
	if c := rep.Cell(lf, GEPPadding); c.Missed == 0 {
		t.Error("low-fat padding blind spot not exercised")
	}
	if c := rep.Cell(sb, ObfStaleUpdate); c.Missed == 0 {
		t.Error("softbound stale-metadata blind spot not exercised")
	}
}

// TestCampaignDeterministic runs the same seeded campaign twice; the VM, the
// pipeline and the planner are all deterministic, so the full result lists
// must be identical.
func TestCampaignDeterministic(t *testing.T) {
	b := spec.ByName("462libquantum")
	opts := Options{Seed: 7, Benches: []*spec.Benchmark{b}}
	r1 := Run(opts)
	r2 := Run(opts)
	if !reflect.DeepEqual(r1.Results, r2.Results) {
		t.Errorf("same seed produced different results:\n%s\nvs\n%s", r1.Render(), r2.Render())
	}
	if len(r1.Results) == 0 {
		t.Fatal("campaign planted nothing")
	}
}

// TestVariantModuleDeterministic builds the same fault variant from two
// independent compiles; the mutated, instrumented modules must be
// byte-identical.
func TestVariantModuleDeterministic(t *testing.T) {
	b := spec.ByName("462libquantum")
	rep := Run(Options{Seed: 3, Benches: []*spec.Benchmark{b}, Kinds: []Kind{GEPPadding, ObfStaleUpdate}})
	if len(rep.Results) == 0 {
		t.Fatal("no variants planted")
	}
	f := rep.Results[0].Fault
	var texts []string
	for i := 0; i < 2; i++ {
		m, err := b.Compile()
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		variant, err := BuildVariant(m, f, core.MechSoftBound, false)
		if err != nil {
			t.Fatalf("build variant: %v", err)
		}
		texts = append(texts, ir.FormatModule(variant))
	}
	if texts[0] != texts[1] {
		t.Error("same fault produced different variant modules")
	}
}

// TestCampaignSurvivesHostileVariants plants variants that panic the VM
// evaluator and blow through the memory budget; the campaign must complete
// with those cells marked crashed and everything else intact.
func TestCampaignSurvivesHostileVariants(t *testing.T) {
	b := spec.ByName("462libquantum")
	rep := Run(Options{
		Seed:      1,
		Benches:   []*spec.Benchmark{b},
		Kinds:     []Kind{CrashOperand, MemHog, GEPPadding},
		MemBudget: 1 << 22,
	})
	if len(rep.Failures) != 0 {
		t.Fatalf("campaign failures: %v", rep.Failures)
	}
	t.Logf("\n%s", rep.Render())

	for _, vr := range rep.Results {
		switch vr.Fault.Kind {
		case CrashOperand:
			if vr.Outcome != OutCrashed {
				t.Errorf("crash-operand under %s: outcome %s, want crashed", vr.Mech, vr.Outcome)
			}
			if !strings.Contains(vr.Detail, "cannot evaluate") {
				t.Errorf("crash-operand under %s: detail %q lacks structured VM error", vr.Mech, vr.Detail)
			}
		case MemHog:
			// SoftBound's wrappers flag the oversized memset before it
			// runs; without them the write hits the memory budget.
			switch vr.Mech {
			case core.MechLowFat:
				if vr.Outcome != OutCrashed || !strings.Contains(vr.Detail, "memory budget exceeded") {
					t.Errorf("mem-hog under lowfat: got %s (%s), want budget crash", vr.Outcome, vr.Detail)
				}
			case core.MechSoftBound:
				if vr.Outcome != OutDetected && vr.Outcome != OutCrashed {
					t.Errorf("mem-hog under softbound: got %s (%s)", vr.Outcome, vr.Detail)
				}
			}
		case GEPPadding:
			// The healthy variant in the same campaign still classifies.
			if vr.Outcome == OutCrashed {
				t.Errorf("gep-padding under %s crashed: %s", vr.Mech, vr.Detail)
			}
		}
	}
	if got := len(rep.Results); got != 6 {
		t.Errorf("want 6 variant results, got %d", got)
	}
}

// TestSiteEnumerationSkipsUninstrumented makes sure payloads never land in
// functions the instrumentation would skip (their accesses would be
// unchecked, breaking every expectation).
func TestSiteEnumerationSkipsUninstrumented(t *testing.T) {
	b := spec.ByName("462libquantum")
	m, err := b.Compile()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, s := range enumerateSites(m) {
		if s.fn.External || s.fn.IgnoreInstrumentation {
			t.Errorf("site %s anchors in uninstrumentable function", s.ref)
		}
	}
}
