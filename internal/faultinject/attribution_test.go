package faultinject

import (
	"testing"

	"repro/internal/bytecode"
)

// TestCampaignAttribution is the acceptance gate for violation forensics:
// every detected (non-benign) fault in a campaign run must come back with a
// ViolationReport whose allocation-site attribution names the exact site the
// fault was injected at — on both engines. Run() already appends attribution
// mismatches to Failures; this test additionally checks the reports directly
// so a regression cannot hide behind an empty failure list.
func TestCampaignAttribution(t *testing.T) {
	benches := fastBenches(t)
	for _, kind := range []bytecode.EngineKind{bytecode.EngineTree, bytecode.EngineBytecode} {
		t.Run(kind.String(), func(t *testing.T) {
			rep := Run(Options{Seed: 3, Benches: benches, Engine: kind})
			for _, f := range rep.Failures {
				t.Errorf("campaign failure: %s", f)
			}
			attributable := 0
			for _, vr := range rep.Results {
				if vr.Outcome != OutDetected || vr.Fault.Benign {
					continue
				}
				if vr.Report == nil {
					t.Errorf("%s under %s: detected but no violation report", vr.Fault, vr.Mech)
					continue
				}
				if vr.ExpectedAlloc == 0 {
					// Fault kinds without an allocation base (e.g. pure GEP
					// skews on unregistered storage) cannot be attributed.
					continue
				}
				attributable++
				if !vr.Attributed {
					t.Errorf("%s under %s: expected allocation site #%d, report named #%d",
						vr.Fault, vr.Mech, vr.ExpectedAlloc, vr.ReportedAlloc)
				}
				if vr.Report.Alloc == nil || vr.Report.Alloc.Site != vr.ExpectedAlloc {
					t.Errorf("%s under %s: report alloc block disagrees with recorded attribution: %+v",
						vr.Fault, vr.Mech, vr.Report.Alloc)
				}
				if len(vr.Report.Events) == 0 {
					t.Errorf("%s under %s: report carried no flight-recorder events", vr.Fault, vr.Mech)
				}
			}
			if attributable == 0 {
				t.Fatal("campaign produced no attributable detected faults; the gate is vacuous")
			}
			t.Logf("%s: %d attributable detected faults, all named their allocation site", kind, attributable)
		})
	}
}
