package faultinject

import (
	"encoding/json"
	"testing"
	"time"
)

func TestChaosDecideDeterministic(t *testing.T) {
	p := DefaultChaosPlan(42)
	keys := []string{"a|baseline", "a|softbound", "b|lowfat", "long|key|with|axes"}
	for _, key := range keys {
		for attempt := 0; attempt < 3; attempt++ {
			x := p.Decide(key, attempt)
			y := p.Decide(key, attempt)
			if x != y {
				t.Errorf("%s attempt %d: nondeterministic: %+v vs %+v", key, attempt, x, y)
			}
		}
	}
	// Different seeds must produce different schedules somewhere.
	q := DefaultChaosPlan(43)
	same := 0
	for _, key := range keys {
		if p.Decide(key, 0) == q.Decide(key, 0) {
			same++
		}
	}
	if same == len(keys) {
		t.Error("seed does not influence the schedule")
	}
}

func TestChaosKillsOnlyFirstAttempt(t *testing.T) {
	p := ChaosPlan{Seed: 1, KillProb: 1, DelayProb: 1, CorruptProb: 1,
		MaxKillAfter: time.Millisecond, MaxDelay: time.Millisecond}
	a0 := p.Decide("cell", 0)
	if !a0.Kill || a0.Delay <= 0 || !a0.CorruptJournal {
		t.Fatalf("probability-1 plan injected nothing on attempt 0: %+v", a0)
	}
	if a0.KillAfter <= 0 || a0.KillAfter > time.Millisecond+1 {
		t.Fatalf("KillAfter %v outside (0, MaxKillAfter]", a0.KillAfter)
	}
	for attempt := 1; attempt < 4; attempt++ {
		a := p.Decide("cell", attempt)
		if a.Kill || a.Delay > 0 {
			t.Fatalf("attempt %d injected %+v; retries must run clean so chaos never loses a cell", attempt, a)
		}
	}
}

func TestChaosZeroPlanInjectsNothing(t *testing.T) {
	var p ChaosPlan
	if p.Enabled() {
		t.Fatal("zero plan enabled")
	}
	if a := p.Decide("cell", 0); a != (ChaosAction{}) {
		t.Fatalf("zero plan injected %+v", a)
	}
}

func TestCorruptPayloadStaysJSONButChangesBytes(t *testing.T) {
	p := DefaultChaosPlan(7)
	payload := []byte(`{"rec":{"cost":13479824,"checks":1051898},"output":"ok 42\n"}`)
	out := p.CorruptPayload("cell", payload)
	if string(out) == string(payload) {
		t.Fatal("payload with multi-digit numbers not corrupted")
	}
	if !json.Valid(out) {
		t.Fatalf("corrupted payload is not valid JSON: %s", out)
	}
	// Deterministic: the same key corrupts the same way.
	again := p.CorruptPayload("cell", payload)
	if string(out) != string(again) {
		t.Fatal("corruption is nondeterministic")
	}
	// The original buffer must not be mutated.
	if string(payload) != `{"rec":{"cost":13479824,"checks":1051898},"output":"ok 42\n"}` {
		t.Fatal("CorruptPayload mutated its input")
	}
}

func TestCorruptPayloadNoDigitsNoChange(t *testing.T) {
	p := DefaultChaosPlan(7)
	payload := []byte(`{"name":"x"}`)
	if out := p.CorruptPayload("cell", payload); string(out) != string(payload) {
		t.Fatalf("payload without digit runs changed: %s", out)
	}
}
