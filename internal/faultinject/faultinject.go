// Package faultinject plants spatial memory-safety faults into compiled
// benchmark modules and replays the mutated variants under both
// instrumentations. Each fault is seeded deterministically, tagged with its
// ground truth (true violation or benign-but-suspicious), and paired with the
// outcome each mechanism should produce according to the paper's security
// analysis (Section 6): SoftBound misses pointer updates that travel through
// integers, Low-Fat Pointers misses accesses that stay inside the allocation
// padding.
package faultinject

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/lowfat"
	"repro/internal/rt"
)

// Kind enumerates the fault classes the campaign can plant.
type Kind int

const (
	// GEPOverflow plants a one-byte access one slot past the allocation:
	// outside both the object and the low-fat padding. Every mechanism
	// should catch it.
	GEPOverflow Kind = iota
	// GEPUnderflow plants a one-byte access just below the allocation base.
	GEPUnderflow
	// GEPPadding plants a one-byte access past the object but inside the
	// low-fat slot padding: a true violation that Low-Fat Pointers provably
	// cannot see (Section 6.2).
	GEPPadding
	// AllocShrink shrinks a constant malloc size by one and accesses the
	// now-lost last byte. SoftBound's bounds follow the requested size;
	// the low-fat slot usually does not shrink.
	AllocShrink
	// LibcallLen corrupts the constant length of a library call (memcpy,
	// memmove, memset, strncpy) so it writes past the destination object.
	// Only the SoftBound wrappers (Figure 6) can catch it.
	LibcallLen
	// ObfStaleUpdate stores a pointer properly once (metadata recorded),
	// then re-stores a strayed copy through an integer type. SoftBound's
	// metadata goes stale and the out-of-slot access passes its (wide)
	// check; Low-Fat derives bounds from the value itself and catches it.
	ObfStaleUpdate
	// ObfBenignInt stores an in-bounds pointer only through an integer
	// type, then dereferences the loaded copy in bounds. SoftBound finds
	// no metadata for the slot and raises a false positive; the access is
	// benign.
	ObfBenignInt
	// BytewiseCopy copies a properly-stored pointer byte-by-byte into a
	// second slot and dereferences the copy in bounds. The trie metadata
	// does not follow byte stores, so SoftBound raises a false positive.
	BytewiseCopy
	// CrashOperand plants (after instrumentation) a store whose operand
	// the VM cannot evaluate. The variant must die with a structured
	// RuntimeError, not take the campaign down. Test-only: not in
	// DefaultKinds.
	CrashOperand
	// MemHog plants a memset of 2^40 bytes so the variant exceeds any
	// reasonable VM memory budget. Test-only: not in DefaultKinds.
	MemHog

	numKinds
)

// String names the kind as it appears in reports.
func (k Kind) String() string {
	switch k {
	case GEPOverflow:
		return "gep-overflow"
	case GEPUnderflow:
		return "gep-underflow"
	case GEPPadding:
		return "gep-padding"
	case AllocShrink:
		return "alloc-shrink"
	case LibcallLen:
		return "libcall-len"
	case ObfStaleUpdate:
		return "obf-stale"
	case ObfBenignInt:
		return "obf-benign"
	case BytewiseCopy:
		return "bytewise-copy"
	case CrashOperand:
		return "crash-operand"
	case MemHog:
		return "mem-hog"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Benign reports whether the planted behaviour is legal C: the interesting
// outcome is then a false positive, not a detection.
func (k Kind) Benign() bool { return k == ObfBenignInt || k == BytewiseCopy }

// postInstrument reports whether the fault is applied after instrumentation
// (hostile variants that attack the harness, not the mechanisms).
func (k Kind) postInstrument() bool { return k == CrashOperand }

// DefaultKinds returns the fault classes of the standard campaign, in the
// order they are planted and reported. The hostile harness-attack kinds
// (CrashOperand, MemHog) are excluded; tests plant those explicitly.
func DefaultKinds() []Kind {
	return []Kind{
		GEPOverflow, GEPUnderflow, GEPPadding, AllocShrink,
		LibcallLen, ObfStaleUpdate, ObfBenignInt, BytewiseCopy,
	}
}

// Category classifies injection sites by the program construct they anchor to.
type Category int

const (
	// CatGEP anchors to a pointer arithmetic instruction whose base
	// resolves to an allocation of statically known size.
	CatGEP Category = iota
	// CatAlloc anchors to a malloc call with a constant size.
	CatAlloc
	// CatLibcall anchors to a memcpy/memmove/memset/strncpy call with a
	// constant length and a resolvable destination object.
	CatLibcall
)

// String names the category.
func (c Category) String() string {
	switch c {
	case CatGEP:
		return "gep"
	case CatAlloc:
		return "alloc"
	case CatLibcall:
		return "libcall"
	}
	return fmt.Sprintf("cat(%d)", int(c))
}

// SiteRef identifies an injection site across module clones: the ord-th site
// of the category in the named function, counting in block/instruction order.
// Re-enumerating a fresh clone of the same module yields the same refs, which
// is what lets the campaign plan once and build each variant from scratch.
type SiteRef struct {
	Func string
	Cat  Category
	Ord  int
}

// String renders the ref, e.g. "quantum_new_matrix/gep#3".
func (s SiteRef) String() string { return fmt.Sprintf("%s/%s#%d", s.Func, s.Cat, s.Ord) }

// site is a resolved injection site in one particular module clone.
type site struct {
	ref     SiteRef
	fn      *ir.Func
	instr   *ir.Instr
	base    ir.Value // allocation base (nil for CatAlloc: the call itself)
	objSize uint64   // statically known object size in bytes
	lenIdx  int      // CatLibcall: operand index of the length constant
}

// maxObjSize caps eligible objects so planted offsets stay modest.
const maxObjSize = 1 << 20

// libcallNames are the wrapped library calls whose last operand is a length.
var libcallNames = map[string]bool{
	"memcpy": true, "memmove": true, "memset": true, "strncpy": true,
}

// resolveBase walks a pointer value through bitcasts and pointer arithmetic
// to an allocation whose size is statically known: a fixed-size alloca, a
// defined non-library global, or a constant-size malloc/calloc. The returned
// value dominates any instruction the chain's head dominates.
func resolveBase(v ir.Value) (ir.Value, uint64, bool) {
	for depth := 0; depth < 32; depth++ {
		switch x := v.(type) {
		case *ir.Global:
			if x.ExternalLib || x.SizeZeroDecl || !x.IsDefinition() {
				return nil, 0, false
			}
			sz := uint64(x.ValueTy.Size())
			if sz == 0 {
				return nil, 0, false
			}
			return x, sz, true
		case *ir.Instr:
			switch x.Op {
			case ir.OpAlloca:
				if len(x.Operands) != 0 { // array alloca: dynamic size
					return nil, 0, false
				}
				sz := uint64(x.AllocTy.Size())
				if sz == 0 {
					return nil, 0, false
				}
				return x, sz, true
			case ir.OpBitcast, ir.OpGEP:
				v = x.Operands[0]
				continue
			case ir.OpCall:
				sz, ok := constAllocSize(x)
				if !ok {
					return nil, 0, false
				}
				return x, sz, true
			default:
				return nil, 0, false
			}
		default:
			return nil, 0, false
		}
	}
	return nil, 0, false
}

// constAllocSize returns the statically known size of a malloc/calloc call.
func constAllocSize(call *ir.Instr) (uint64, bool) {
	callee := call.Callee()
	if callee == nil {
		return 0, false
	}
	args := call.Args()
	switch callee.Name {
	case "malloc":
		if len(args) == 1 {
			if ci, ok := args[0].(*ir.ConstInt); ok && ci.Signed() > 0 {
				return ci.Unsigned(), true
			}
		}
	case "calloc":
		if len(args) == 2 {
			n, ok1 := args[0].(*ir.ConstInt)
			e, ok2 := args[1].(*ir.ConstInt)
			if ok1 && ok2 && n.Signed() > 0 && e.Signed() > 0 {
				return n.Unsigned() * e.Unsigned(), true
			}
		}
	}
	return 0, false
}

// usableSize accepts object sizes the payload builders can work with: ones
// that fit a low-fat region (so slot arithmetic is meaningful) and stay small.
func usableSize(sz uint64) bool {
	return sz >= 1 && sz <= maxObjSize && lowfat.RegionForSize(sz) != 0
}

// enumerateSites walks the module in deterministic order (function, block,
// instruction) and collects every eligible injection site. Running it on two
// clones of the same module produces sites with identical refs.
func enumerateSites(m *ir.Module) []*site {
	var sites []*site
	for _, fn := range m.Funcs {
		if fn.External || fn.IgnoreInstrumentation {
			continue
		}
		ord := map[Category]int{}
		add := func(s *site, cat Category) {
			s.ref = SiteRef{Func: fn.Name, Cat: cat, Ord: ord[cat]}
			s.fn = fn
			ord[cat]++
			sites = append(sites, s)
		}
		for _, blk := range fn.Blocks {
			for _, in := range blk.Instrs {
				switch in.Op {
				case ir.OpGEP:
					base, sz, ok := resolveBase(in.Operands[0])
					if ok && usableSize(sz) {
						add(&site{instr: in, base: base, objSize: sz}, CatGEP)
					}
				case ir.OpCall:
					callee := in.Callee()
					if callee == nil {
						break
					}
					if sz, ok := constAllocSize(in); ok && callee.Name == "malloc" && sz >= 2 && usableSize(sz) {
						add(&site{instr: in, base: in, objSize: sz}, CatAlloc)
					}
					if libcallNames[callee.Name] {
						args := in.Args()
						if len(args) == 0 {
							break
						}
						n, isConst := args[len(args)-1].(*ir.ConstInt)
						base, sz, ok := resolveBase(args[0])
						if isConst && n.Signed() >= 1 && ok && usableSize(sz) {
							add(&site{
								instr: in, base: base, objSize: sz,
								lenIdx: len(in.Operands) - 1,
							}, CatLibcall)
						}
					}
				}
			}
		}
	}
	return sites
}

// findSite locates the site with the given ref among freshly enumerated ones.
func findSite(sites []*site, ref SiteRef) *site {
	for _, s := range sites {
		if s.ref == ref {
			return s
		}
	}
	return nil
}

// category returns the site category a kind anchors to.
func (k Kind) category() Category {
	switch k {
	case AllocShrink:
		return CatAlloc
	case LibcallLen:
		return CatLibcall
	}
	return CatGEP
}

// eligible reports whether a fault of kind k can be planted at site s.
func eligible(s *site, k Kind) bool {
	if s.ref.Cat != k.category() {
		return false
	}
	switch k {
	case AllocShrink:
		return s.objSize >= 2
	case ObfStaleUpdate, ObfBenignInt, BytewiseCopy:
		// The obfuscation payloads stash a full 8-byte pointer.
		return slotFor(s.objSize) >= 8
	}
	return true
}

// slotFor returns the low-fat slot size backing an object of the given size.
func slotFor(objSize uint64) uint64 {
	return lowfat.AllocSize(lowfat.RegionForSize(objSize))
}

// Fault is one planted fault: a kind, an anchor site, and its ground truth.
type Fault struct {
	Bench string
	Kind  Kind
	Site  SiteRef
	// ObjSize is the statically known size of the target object and Slot
	// the low-fat slot backing it; together they define where the planted
	// access lands relative to the paper's two bounds notions.
	ObjSize uint64
	Slot    uint64
	// Benign records the ground truth: true means the planted behaviour
	// is legal and any report is a false positive.
	Benign bool
}

// String renders the fault for reports.
func (f Fault) String() string {
	truth := "violation"
	if f.Benign {
		truth = "benign"
	}
	return fmt.Sprintf("%s %s at %s (obj %d, slot %d, %s)",
		f.Bench, f.Kind, f.Site, f.ObjSize, f.Slot, truth)
}

// makeFault records a fault of kind k anchored at site s.
func makeFault(bench string, k Kind, s *site) Fault {
	return Fault{
		Bench:   bench,
		Kind:    k,
		Site:    s.ref,
		ObjSize: s.objSize,
		Slot:    slotFor(s.objSize),
		Benign:  k.Benign(),
	}
}

// bogusValue is an operand the VM cannot evaluate. CrashOperand plants it to
// prove a malformed variant dies with a structured error instead of killing
// the campaign.
type bogusValue struct{}

func (bogusValue) Type() *ir.Type { return ir.I64 }
func (bogusValue) Ref() string    { return "<bogus>" }

// applyFault mutates the module at site s according to the fault's kind.
// Faults are planted before instrumentation (so the payload accesses are
// checked like program code), except for the postInstrument kinds.
func applyFault(s *site, f Fault) error {
	bld := ir.NewBuilder(s.fn)
	slot := int64(f.Slot)
	switch f.Kind {
	case GEPOverflow:
		bld.SetBefore(s.instr)
		plantDeref(bld, s.base, slot, 1)
	case GEPUnderflow:
		bld.SetBefore(s.instr)
		plantDeref(bld, s.base, -1, 1)
	case GEPPadding:
		// objSize <= slot-1 always holds: the allocator pads by at least
		// one byte (footnote 3), so this lands past the object but inside
		// the slot — exactly the low-fat blind spot.
		bld.SetBefore(s.instr)
		plantDeref(bld, s.base, int64(f.ObjSize), 1)
	case AllocShrink:
		old, ok := s.instr.Operands[1].(*ir.ConstInt)
		if !ok {
			return fmt.Errorf("alloc-shrink site %s: size is not constant", s.ref)
		}
		s.instr.Operands[1] = ir.NewInt(old.Ty, old.Signed()-1)
		bld.SetAfter(s.instr)
		plantDeref(bld, s.instr, int64(f.ObjSize)-1, 1)
	case LibcallLen:
		old, ok := s.instr.Operands[s.lenIdx].(*ir.ConstInt)
		if !ok {
			return fmt.Errorf("libcall-len site %s: length is not constant", s.ref)
		}
		// Any length beyond the destination object spills; +64 makes the
		// spill unambiguous regardless of the original length.
		s.instr.Operands[s.lenIdx] = ir.NewInt(old.Ty, int64(f.ObjSize)+64)
	case ObfStaleUpdate:
		slotA := entryAlloca(bld, s.fn)
		bld.SetBefore(s.instr)
		b8 := bld.Bitcast(s.base, rt.VoidPtr)
		pi := bld.PtrToInt(b8)
		wp := bld.IntToPtr(pi, rt.VoidPtr)
		bld.Store(wp, slotA) // proper pointer store: metadata recorded
		pj := bld.Add(pi, ir.NewInt(ir.I64, slot-4))
		ai := bld.Bitcast(slotA, ir.PointerTo(ir.I64))
		bld.Store(pj, ai) // integer store: metadata now stale
		q := bld.Load(slotA)
		q64 := bld.Bitcast(q, ir.PointerTo(ir.I64))
		x := bld.Load(q64) // 8 bytes at slot-4: crosses the slot end
		bld.Store(x, q64)
	case ObfBenignInt:
		slotB := entryAlloca(bld, s.fn)
		bld.SetBefore(s.instr)
		b8 := bld.Bitcast(s.base, rt.VoidPtr)
		pi := bld.PtrToInt(b8)
		bi := bld.Bitcast(slotB, ir.PointerTo(ir.I64))
		bld.Store(pi, bi) // only ever stored as an integer
		q := bld.Load(slotB)
		x := bld.Load(q) // one byte at the base: in bounds
		bld.Store(x, q)
	case BytewiseCopy:
		slotA := entryAlloca(bld, s.fn)
		slotB := entryAlloca(bld, s.fn)
		bld.SetBefore(s.instr)
		b8 := bld.Bitcast(s.base, rt.VoidPtr)
		bld.Store(b8, slotA) // proper store: slotA has exact metadata
		a8 := bld.Bitcast(slotA, rt.VoidPtr)
		c8 := bld.Bitcast(slotB, rt.VoidPtr)
		for i := int64(0); i < 8; i++ {
			pa := bld.GEP(a8, ir.NewInt(ir.I64, i))
			x := bld.Load(pa)
			pb := bld.GEP(c8, ir.NewInt(ir.I64, i))
			bld.Store(x, pb)
		}
		q := bld.Load(slotB)
		x := bld.Load(q) // in bounds; the copy carried no metadata
		bld.Store(x, q)
	case CrashOperand:
		bld.SetBefore(s.instr)
		b8 := bld.Bitcast(s.base, rt.VoidPtr)
		c64 := bld.Bitcast(b8, ir.PointerTo(ir.I64))
		bld.Store(bogusValue{}, c64)
	case MemHog:
		memset := s.fn.Parent.Func("memset")
		if memset == nil {
			memset = s.fn.Parent.NewDecl("memset",
				ir.FuncOf(rt.VoidPtr, rt.VoidPtr, ir.I32, ir.I64))
		}
		bld.SetBefore(s.instr)
		b8 := bld.Bitcast(s.base, rt.VoidPtr)
		bld.Call(memset, b8, ir.NewInt(ir.I32, 0), ir.NewInt(ir.I64, 1<<40))
	default:
		return fmt.Errorf("unknown fault kind %v", f.Kind)
	}
	return nil
}

// plantDeref inserts a memory-neutral access (load + store-back of the same
// bytes) of the given width at base+off, built from a fresh bitcast/GEP chain
// so the instrumentation derives the payload's witness from the true
// allocation.
func plantDeref(bld *ir.Builder, base ir.Value, off int64, width int) {
	b8 := bld.Bitcast(base, rt.VoidPtr)
	p := bld.GEP(b8, ir.NewInt(ir.I64, off))
	var q ir.Value = p
	if width == 8 {
		q = bld.Bitcast(p, ir.PointerTo(ir.I64))
	}
	x := bld.Load(q)
	bld.Store(x, q)
}

// entryAlloca creates a fresh pointer-sized stack slot in the entry block,
// where it dominates every use and is allocated once per call.
func entryAlloca(bld *ir.Builder, fn *ir.Func) *ir.Instr {
	bld.SetBefore(fn.Entry().FirstNonPhi())
	return bld.Alloca(rt.VoidPtr)
}
