// Package lowfat implements the Low-Fat Pointers address-space scheme of
// Duck and Yap (CC'16, NDSS'17) as evaluated by the paper: the virtual
// address space is partitioned into regions dedicated to one power-of-two
// allocation size each, so that a pointer's value alone determines the base
// and size of the object it points into (Figures 3–5 of the paper).
//
// Pointer layout (Figure 4):
//
//	| region index (29 bits) | object id | object offset |
//	                          \----- 35 bits together ----/
//
// Region i (1-based) spans [i<<35, (i+1)<<35) and holds objects of
// size 16<<(i-1) bytes, from 2^4 = 16 B (region 1) to 2^30 = 1 GiB
// (region 27). Masking away log2(size) low bits of a pointer yields the
// object base. Addresses outside regions 1..27 are not low-fat; accesses
// through them are checked with wide bounds, i.e. effectively unchecked
// (Section 4.6).
package lowfat

import (
	"fmt"
	"math/bits"
)

const (
	// RegionBits is the width of the per-region address range (32 GiB).
	RegionBits = 35
	// NumRegions is the number of low-fat size regions.
	NumRegions = 27
	// MinSize is the smallest low-fat allocation size (region 1).
	MinSize = 16
	// MaxSize is the largest low-fat allocation size (region 27, 1 GiB).
	// Allocations larger than this fall back to the standard allocator and
	// are unprotected — the cause of 429.mcf's unchecked accesses in
	// Table 2 of the paper.
	MaxSize = 1 << 30
)

// RegionIndex returns the region index encoded in a pointer value (the top
// 29 bits; Figure 4).
func RegionIndex(ptr uint64) uint64 { return ptr >> RegionBits }

// IsLowFat reports whether ptr lies inside a low-fat region.
func IsLowFat(ptr uint64) bool {
	idx := RegionIndex(ptr)
	return idx >= 1 && idx <= NumRegions
}

// AllocSize returns the object size of the region with the given index. For
// indices outside 1..NumRegions it returns the wide-bound sentinel ^uint64(0):
// the check degenerates to "allow everything", mirroring how the
// implementation handles non-low-fat pointers (Section 4.3).
func AllocSize(regionIdx uint64) uint64 {
	if regionIdx < 1 || regionIdx > NumRegions {
		return ^uint64(0)
	}
	return MinSize << (regionIdx - 1)
}

// Base recovers the allocation base from a pointer value by masking away the
// offset bits. For non-low-fat pointers it returns 0 (wide base).
func Base(ptr uint64) uint64 {
	size := AllocSize(RegionIndex(ptr))
	if size == ^uint64(0) {
		return 0
	}
	return ptr &^ (size - 1)
}

// RegionForSize returns the index of the region whose object size is the
// smallest power of two >= size, or 0 if size exceeds MaxSize. Allocations
// are padded by one byte so that one-past-the-end pointers still decode to
// the same object (footnote 3 of the paper); callers pass the raw requested
// size and RegionForSize accounts for the padding byte.
func RegionForSize(size uint64) uint64 {
	padded := size + 1
	if padded < MinSize {
		padded = MinSize
	}
	if padded > MaxSize {
		return 0
	}
	log := bits.Len64(padded - 1) // ceil(log2(padded))
	idx := uint64(log) - 3        // log2(16)=4 -> region 1
	if idx < 1 {
		idx = 1
	}
	return idx
}

// RegionStart returns the first address of region idx.
func RegionStart(idx uint64) uint64 { return idx << RegionBits }

// Check validates an access of width bytes at ptr against the low-fat bounds
// derived from the witness base pointer (Figure 5 of the paper):
//
//	offset = ptr - base
//	ok     = offset <= allocSize - width
//
// The comparison is unsigned, so an underflow (ptr below base) fails too.
// For non-low-fat bases the check passes unconditionally (wide bounds); the
// second result reports whether the check was wide.
func Check(ptr, width, base uint64) (ok, wide bool) {
	size := AllocSize(RegionIndex(base))
	if size == ^uint64(0) {
		return true, true
	}
	if width == 0 {
		width = 1
	}
	return ptr-base <= size-width, false
}

type region struct {
	// Heap allocations bump up from the region start; the stack mirror
	// bumps down from the region end. The two meet only under absurd
	// memory pressure, in which case allocation falls back to the
	// standard allocator (producing unprotected pointers, Section 4.6).
	next      uint64
	stackNext uint64
	free      []uint64
	end       uint64
}

// FallbackAllocator abstracts the standard allocator used for allocations
// the low-fat scheme cannot serve.
type FallbackAllocator interface {
	Alloc(size uint64) (uint64, error)
	Free(addr uint64) error
}

// Allocator is the low-fat memory allocator: one bump+free-list allocator
// per size region, with a standard-allocator fallback for oversized requests.
type Allocator struct {
	regions  [NumRegions + 1]region
	fallback FallbackAllocator
	// Stats
	LowFatAllocs   uint64
	FallbackAllocs uint64
}

// NewAllocator returns a low-fat allocator using fallback for oversized
// allocations.
func NewAllocator(fallback FallbackAllocator) *Allocator {
	a := &Allocator{fallback: fallback}
	for i := uint64(1); i <= NumRegions; i++ {
		a.regions[i].next = RegionStart(i)
		a.regions[i].end = RegionStart(i + 1)
		a.regions[i].stackNext = RegionStart(i + 1)
	}
	return a
}

// Alloc reserves size bytes. The second result reports whether the
// allocation is low-fat (in a region, size- and alignment-guaranteed) or a
// fallback allocation with no low-fat protection.
func (a *Allocator) Alloc(size uint64) (addr uint64, lowFat bool, err error) {
	idx := RegionForSize(size)
	if idx == 0 {
		p, err := a.fallback.Alloc(size)
		if err != nil {
			return 0, false, err
		}
		a.FallbackAllocs++
		return p, false, nil
	}
	r := &a.regions[idx]
	if n := len(r.free); n > 0 {
		addr = r.free[n-1]
		r.free = r.free[:n-1]
		a.LowFatAllocs++
		return addr, true, nil
	}
	slot := AllocSize(idx)
	if r.next+slot > r.stackNext {
		// Region exhausted: resort to the standard allocator, producing a
		// non-low-fat (unprotected) pointer, exactly as described in
		// Section 4.6.
		p, err := a.fallback.Alloc(size)
		if err != nil {
			return 0, false, err
		}
		a.FallbackAllocs++
		return p, false, nil
	}
	addr = r.next
	r.next += slot
	a.LowFatAllocs++
	return addr, true, nil
}

// Free releases an allocation made by Alloc.
func (a *Allocator) Free(addr uint64) error {
	if !IsLowFat(addr) {
		return a.fallback.Free(addr)
	}
	idx := RegionIndex(addr)
	if Base(addr) != addr {
		return fmt.Errorf("lowfat: free of interior pointer %#x", addr)
	}
	a.regions[idx].free = append(a.regions[idx].free, addr)
	return nil
}

// Mark is a stack-frame checkpoint for stack mirroring: alloca'd memory is
// carved from the top end of the low-fat regions and released wholesale when
// the frame returns (the "mirror, replace" strategy of Table 1 for stack
// protection, following Duck, Yap and Cavallaro, NDSS'17).
type Mark struct {
	stackNext [NumRegions + 1]uint64
}

// Checkpoint captures the stack-mirror frontiers for later release.
func (a *Allocator) Checkpoint() Mark {
	var m Mark
	for i := 1; i <= NumRegions; i++ {
		m.stackNext[i] = a.regions[i].stackNext
	}
	return m
}

// StackAlloc reserves size bytes from the stack-mirror side of the proper
// region. The second result reports whether the allocation is low-fat;
// oversized stack objects fall back to the standard allocator (and are
// released on Release via the pending list kept by the caller).
func (a *Allocator) StackAlloc(size uint64) (addr uint64, lowFat bool, err error) {
	idx := RegionForSize(size)
	if idx == 0 {
		p, err := a.fallback.Alloc(size)
		if err != nil {
			return 0, false, err
		}
		a.FallbackAllocs++
		return p, false, nil
	}
	r := &a.regions[idx]
	slot := AllocSize(idx)
	next := r.stackNext - slot
	if next < r.next || next >= r.stackNext {
		p, err := a.fallback.Alloc(size)
		if err != nil {
			return 0, false, err
		}
		a.FallbackAllocs++
		return p, false, nil
	}
	r.stackNext = next
	a.LowFatAllocs++
	return next, true, nil
}

// Release rolls the stack-mirror frontiers back to the checkpoint, freeing
// every stack allocation made since. Heap-side state is untouched.
func (a *Allocator) Release(m Mark) {
	for i := 1; i <= NumRegions; i++ {
		a.regions[i].stackNext = m.stackNext[i]
	}
}

// RegionState describes one region's allocator state for diagnostics (the
// region-map snapshot of a violation report).
type RegionState struct {
	// Index is the 1-based region index; SlotSize its object size.
	Index    int
	SlotSize uint64
	// Next and StackNext are the heap-side and stack-side bump frontiers.
	Next      uint64
	StackNext uint64
	// FreeSlots is the length of the heap-side free list.
	FreeSlots int
}

// Snapshot returns the state of every region that has served at least one
// allocation (heap or stack side), in region order. The result is
// deterministic for identical allocation histories, which the differential
// report-equality tests rely on.
func (a *Allocator) Snapshot() []RegionState {
	var out []RegionState
	for i := uint64(1); i <= NumRegions; i++ {
		r := &a.regions[i]
		if r.next == RegionStart(i) && r.stackNext == RegionStart(i+1) && len(r.free) == 0 {
			continue
		}
		out = append(out, RegionState{
			Index:     int(i),
			SlotSize:  AllocSize(i),
			Next:      r.next,
			StackNext: r.stackNext,
			FreeSlots: len(r.free),
		})
	}
	return out
}
