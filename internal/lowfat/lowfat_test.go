package lowfat

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestRegionEncoding(t *testing.T) {
	// Region 1 holds 16-byte objects, region 27 holds 1 GiB objects.
	if AllocSize(1) != 16 {
		t.Errorf("AllocSize(1) = %d", AllocSize(1))
	}
	if AllocSize(27) != 1<<30 {
		t.Errorf("AllocSize(27) = %d", AllocSize(27))
	}
	if AllocSize(0) != ^uint64(0) || AllocSize(28) != ^uint64(0) {
		t.Error("out-of-range regions must be wide")
	}
	ptr := RegionStart(3) + 100
	if RegionIndex(ptr) != 3 {
		t.Errorf("RegionIndex = %d", RegionIndex(ptr))
	}
	if !IsLowFat(ptr) {
		t.Error("in-region pointer not low-fat")
	}
	if IsLowFat(0) || IsLowFat(mem.HeapBase) || IsLowFat(mem.GlobalsBase) {
		t.Error("non-region addresses reported low-fat")
	}
}

func TestBaseRecovery(t *testing.T) {
	// A pointer into the middle of a 64-byte object decodes to its base
	// (Figure 4: mask away the offset bits).
	base := RegionStart(3) + 5*64 // region 3 = 64-byte objects
	for off := uint64(0); off < 64; off++ {
		if got := Base(base + off); got != base {
			t.Fatalf("Base(%#x) = %#x, want %#x", base+off, got, base)
		}
	}
	if Base(mem.HeapBase) != 0 {
		t.Error("non-low-fat base must be 0 (wide)")
	}
}

func TestRegionForSize(t *testing.T) {
	cases := []struct {
		size uint64
		want uint64
	}{
		{1, 1},          // tiny -> 16 B region
		{15, 1},         // 15+1 = 16 fits region 1
		{16, 2},         // padding byte forces the 32 B region
		{31, 2},         // 32 exactly
		{100, 4},        // -> 128 B
		{1 << 20, 18},   // 1 MiB + pad -> 2 MiB region
		{1<<30 - 1, 27}, // just fits the largest region
		{1 << 30, 0},    // 1 GiB + pad exceeds it: fallback
		{1 << 31, 0},
	}
	for _, c := range cases {
		if got := RegionForSize(c.size); got != c.want {
			t.Errorf("RegionForSize(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestCheckSemantics(t *testing.T) {
	base := RegionStart(3) + 64 // 64-byte object
	// In-bounds accesses of various widths.
	if ok, wide := Check(base, 8, base); !ok || wide {
		t.Error("base access rejected")
	}
	if ok, _ := Check(base+56, 8, base); !ok {
		t.Error("last full word rejected")
	}
	if ok, _ := Check(base+57, 8, base); ok {
		t.Error("access crossing the object end accepted")
	}
	if ok, _ := Check(base+64, 1, base); ok {
		t.Error("one-past-the-end access accepted")
	}
	// Underflow: pointer below base.
	if ok, _ := Check(base-1, 1, base); ok {
		t.Error("underflow accepted")
	}
	// Wide base: everything passes, reported as wide.
	if ok, wide := Check(0x123456, 8, 0); !ok || !wide {
		t.Error("wide check must pass and report wide")
	}
}

// Property: Base is idempotent and never exceeds the pointer; a pointer and
// its base always share a region.
func TestBaseProperty(t *testing.T) {
	f := func(raw uint64) bool {
		ptr := raw % (RegionStart(NumRegions + 1))
		b := Base(ptr)
		if b == 0 {
			return !IsLowFat(ptr) || ptr == 0
		}
		return b <= ptr && Base(b) == b && RegionIndex(b) == RegionIndex(ptr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for every low-fat allocation, the allocator returns a
// slot-aligned pointer whose decoded size covers the request plus the
// padding byte.
func TestAllocatorProperty(t *testing.T) {
	std := mem.NewStdAllocator(mem.HeapBase, mem.HeapLimit)
	a := NewAllocator(std)
	f := func(szRaw uint32) bool {
		size := uint64(szRaw%100000) + 1
		p, lowFat, err := a.Alloc(size)
		if err != nil {
			return false
		}
		if !lowFat {
			return size+1 > MaxSize || !IsLowFat(p)
		}
		slot := AllocSize(RegionIndex(p))
		return Base(p) == p && slot >= size+1 && p%slot == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAllocatorReuseAndFree(t *testing.T) {
	std := mem.NewStdAllocator(mem.HeapBase, mem.HeapLimit)
	a := NewAllocator(std)
	p1, lf, err := a.Alloc(50)
	if err != nil || !lf {
		t.Fatalf("alloc: %v", err)
	}
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	p2, _, _ := a.Alloc(50)
	if p2 != p1 {
		t.Errorf("freed slot not reused: %#x vs %#x", p2, p1)
	}
	if err := a.Free(p2 + 8); err == nil {
		t.Error("interior free not rejected")
	}
}

func TestOversizedFallback(t *testing.T) {
	std := mem.NewStdAllocator(mem.HeapBase, mem.HeapLimit)
	a := NewAllocator(std)
	// The 429.mcf case: an allocation beyond the largest region size.
	p, lowFat, err := a.Alloc(1_181_116_006)
	if err != nil {
		t.Fatal(err)
	}
	if lowFat || IsLowFat(p) {
		t.Error("oversized allocation must fall back to the standard allocator")
	}
	if ok, wide := Check(p+12345, 8, Base(p)); !ok || !wide {
		t.Error("accesses through the fallback allocation must be wide")
	}
	if a.FallbackAllocs != 1 {
		t.Errorf("FallbackAllocs = %d", a.FallbackAllocs)
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
}

func TestStackMirror(t *testing.T) {
	std := mem.NewStdAllocator(mem.HeapBase, mem.HeapLimit)
	a := NewAllocator(std)
	mark := a.Checkpoint()
	p1, lf1, _ := a.StackAlloc(40)
	p2, lf2, _ := a.StackAlloc(40)
	if !lf1 || !lf2 {
		t.Fatal("stack allocations not low-fat")
	}
	if p1 == p2 {
		t.Error("stack allocations overlap")
	}
	if Base(p1) != p1 || Base(p2) != p2 {
		t.Error("stack allocations not slot-aligned")
	}
	a.Release(mark)
	p3, _, _ := a.StackAlloc(40)
	if p3 != p1 {
		t.Errorf("release did not roll back the frontier: %#x vs %#x", p3, p1)
	}
	// Heap allocations are unaffected by stack release.
	h1, _, _ := a.Alloc(40)
	mark2 := a.Checkpoint()
	_, _, _ = a.StackAlloc(40)
	a.Release(mark2)
	h2, _, _ := a.Alloc(40)
	if h1 == h2 {
		t.Error("heap allocation reused despite being live")
	}
}

// Property: interleaved heap and stack allocations in the same region never
// overlap.
func TestHeapStackDisjointProperty(t *testing.T) {
	std := mem.NewStdAllocator(mem.HeapBase, mem.HeapLimit)
	a := NewAllocator(std)
	f := func(stack bool, szRaw uint16) bool {
		size := uint64(szRaw%200) + 1
		var p uint64
		var lf bool
		var err error
		if stack {
			p, lf, err = a.StackAlloc(size)
		} else {
			p, lf, err = a.Alloc(size)
		}
		if err != nil || !lf {
			return false
		}
		idx := RegionIndex(p)
		// All heap slots below the stack frontier; all stack slots at or
		// above it.
		return p >= RegionStart(idx) && p < RegionStart(idx+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
