// Package version reports the build identity of the CLIs: the module
// version and the VCS revision stamped by the Go toolchain at build time.
// Every binary answers -version with it, so a report or journal can be tied
// back to the exact build that produced it.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// String renders the build identity: module version, VCS revision (short),
// a "+dirty" marker for builds from a modified tree, and the toolchain.
// Binaries built without VCS metadata (go run, test binaries) degrade to
// whatever the build info carries.
func String() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown (no build info)"
	}
	ver := bi.Main.Version
	if ver == "" {
		ver = "(devel)"
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
		case "vcs.modified":
			if s.Value == "true" {
				modified = "+dirty"
			}
		}
	}
	out := ver
	// Go 1.24+ stamps a pseudo-version that already embeds the short
	// revision (and "+dirty"); only append the revision when it adds
	// information.
	if rev != "" && !strings.Contains(ver, rev) {
		out = fmt.Sprintf("%s %s%s", ver, rev, modified)
	}
	return fmt.Sprintf("%s (%s, %s/%s)", out, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
