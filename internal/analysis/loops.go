package analysis

import "repro/internal/ir"

// Loop is a natural loop: a header block and the set of blocks that reach a
// back edge to the header without leaving the loop.
type Loop struct {
	Header *ir.Block
	Blocks map[*ir.Block]bool
	// Body lists the loop's blocks in deterministic discovery order
	// (header first). Passes that move or create instructions must
	// iterate Body, not Blocks: ranging over the map lets Go's random
	// iteration order leak into the output program (observed as hoisted
	// instructions swapping places in LICM preheaders between runs).
	Body []*ir.Block
	// Parent is the innermost enclosing loop, if any.
	Parent *Loop
	// Depth is the nesting depth (1 for top-level loops).
	Depth int
}

// Contains reports whether the loop contains block b.
func (l *Loop) Contains(b *ir.Block) bool { return l.Blocks[b] }

// LoopInfo holds the natural loops of a function.
type LoopInfo struct {
	Loops []*Loop
	// ByHeader maps a header block to its loop.
	ByHeader map[*ir.Block]*Loop
	// innermost maps each block to the innermost loop containing it.
	innermost map[*ir.Block]*Loop
}

// InnermostLoop returns the innermost loop containing b, or nil.
func (li *LoopInfo) InnermostLoop(b *ir.Block) *Loop { return li.innermost[b] }

// Depth returns the loop nesting depth of b (0 outside loops).
func (li *LoopInfo) Depth(b *ir.Block) int {
	if l := li.innermost[b]; l != nil {
		return l.Depth
	}
	return 0
}

// FindLoops detects the natural loops of f using back edges of the dominator
// tree: an edge t->h where h dominates t identifies a loop with header h.
// Loops sharing a header are merged.
func FindLoops(f *ir.Func, dt *DomTree) *LoopInfo {
	li := &LoopInfo{
		ByHeader:  make(map[*ir.Block]*Loop),
		innermost: make(map[*ir.Block]*Loop),
	}
	preds := Predecessors(f)

	for _, b := range dt.Blocks() {
		for _, s := range b.Succs() {
			if !dt.Dominates(s, b) {
				continue
			}
			// b -> s is a back edge; s is the header.
			loop := li.ByHeader[s]
			if loop == nil {
				loop = &Loop{Header: s, Blocks: map[*ir.Block]bool{s: true}, Body: []*ir.Block{s}}
				li.ByHeader[s] = loop
				li.Loops = append(li.Loops, loop)
			}
			// Walk backwards from the latch collecting the body.
			work := []*ir.Block{b}
			for len(work) > 0 {
				x := work[len(work)-1]
				work = work[:len(work)-1]
				if loop.Blocks[x] {
					continue
				}
				loop.Blocks[x] = true
				loop.Body = append(loop.Body, x)
				work = append(work, preds[x]...)
			}
		}
	}

	// Establish nesting: loop A is inside B if B contains A's header and
	// A != B. Pick the smallest strict superset as parent.
	for _, a := range li.Loops {
		var best *Loop
		for _, b := range li.Loops {
			if a == b || !b.Blocks[a.Header] {
				continue
			}
			if best == nil || len(b.Blocks) < len(best.Blocks) {
				best = b
			}
		}
		a.Parent = best
	}
	for _, l := range li.Loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	// Innermost loop per block: the smallest loop containing it.
	for _, l := range li.Loops {
		for b := range l.Blocks {
			cur := li.innermost[b]
			if cur == nil || len(l.Blocks) < len(cur.Blocks) {
				li.innermost[b] = l
			}
		}
	}
	return li
}
