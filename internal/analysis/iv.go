package analysis

import "repro/internal/ir"

// CountedLoop is the result of recognizing a counted loop with a single
// affine induction variable:
//
//	pre:    ... br header
//	header: iv = phi [start, pre] [next, latch]; ...
//	        c = icmp pred iv, bound        ; bound loop-invariant
//	        br c, body, exit               ; (or inverted / swapped)
//	body*  -> latch -> header              ; latch is the unique back edge
//
// After normalization the loop body executes exactly while Pred(IV, Bound)
// holds when evaluated at header entry, and IV advances by Step (±1) per
// iteration. The header is the loop's only exiting block, so every block
// dominating the latch executes on every iteration that enters the body —
// the guarantee loop-check hoisting builds on.
type CountedLoop struct {
	Loop      *Loop
	Preheader *ir.Block
	Latch     *ir.Block
	Exit      *ir.Block
	// IV is the induction phi in the header; Next its in-loop increment.
	IV   *ir.Instr
	Next *ir.Instr
	// Start is IV's (loop-invariant) value on loop entry.
	Start ir.Value
	// Step is the per-iteration increment, +1 or -1.
	Step int64
	// Bound is the loop-invariant comparison limit: the body executes
	// while Pred(IV, Bound) holds.
	Bound ir.Value
	Pred  ir.Pred
}

// LastDelta returns d such that Bound+d is the IV value of the final
// iteration that executes (for a non-empty loop). For example a step-+1
// loop guarded by `iv < bound` last executes iv = bound-1, so d = -1.
func (cl *CountedLoop) LastDelta() int64 {
	switch cl.Pred {
	case ir.PredSLT, ir.PredULT:
		return -1
	case ir.PredSGT, ir.PredUGT:
		return 1
	default: // SLE, ULE, SGE, UGE: the bound itself is executed last.
		return 0
	}
}

// LoopInvariant reports whether v is invariant with respect to loop l:
// constants, parameters and globals always are; an instruction is invariant
// iff it is defined outside the loop.
func LoopInvariant(l *Loop, v ir.Value) bool {
	in, ok := v.(*ir.Instr)
	return !ok || !l.Contains(in.Block)
}

// CountedLoopsOf filters li down to the loops AnalyzeCountedLoop accepts,
// preserving the deterministic FindLoops order. It is the shared handoff
// between the IR-level loop clients: the check-hoisting pass consumes it to
// place preheader range checks, and the bytecode compiler tier consumes it
// to trace-fuse the same loops behind those hoisted checks.
func CountedLoopsOf(li *LoopInfo) []*CountedLoop {
	var out []*CountedLoop
	for _, l := range li.Loops {
		if cl, ok := AnalyzeCountedLoop(l); ok {
			out = append(out, cl)
		}
	}
	return out
}

// CountedLoops recognizes every counted loop of f from scratch
// (dominator tree + natural-loop discovery + AnalyzeCountedLoop).
func CountedLoops(f *ir.Func) []*CountedLoop {
	if len(f.Blocks) == 0 {
		return nil
	}
	return CountedLoopsOf(FindLoops(f, NewDomTree(f)))
}

// AnalyzeCountedLoop recognizes l as a counted loop. It is deliberately
// conservative: every rejection below errs towards "not counted" so that
// clients may rely on the exact-trip semantics documented on CountedLoop.
func AnalyzeCountedLoop(l *Loop) (*CountedLoop, bool) {
	h := l.Header

	// Preheader: unique predecessor outside the loop, branching
	// unconditionally to the header. Latch: unique back-edge predecessor.
	var pre, latch *ir.Block
	for _, p := range ir.Preds(h) {
		if l.Contains(p) {
			if latch != nil {
				return nil, false // multiple back edges (e.g. continue)
			}
			latch = p
			continue
		}
		if pre != nil {
			return nil, false
		}
		pre = p
	}
	if pre == nil || latch == nil {
		return nil, false
	}
	if t := pre.Terminator(); t == nil || t.Op != ir.OpBr {
		return nil, false
	}

	// The header must be the only exiting block: a break elsewhere would
	// let iterations that entered the body stop before reaching the latch.
	for _, b := range l.Body {
		if b == h {
			continue
		}
		for _, s := range b.Succs() {
			if !l.Contains(s) {
				return nil, false
			}
		}
	}

	// Header exits on an icmp of the IV phi against an invariant bound.
	term := h.Terminator()
	if term == nil || term.Op != ir.OpCondBr {
		return nil, false
	}
	cond, ok := term.Operands[0].(*ir.Instr)
	if !ok || cond.Op != ir.OpICmp || cond.Block != h {
		return nil, false
	}
	var exit *ir.Block
	pred := cond.Pred
	if l.Contains(term.Succs[0]) && !l.Contains(term.Succs[1]) {
		exit = term.Succs[1]
	} else if l.Contains(term.Succs[1]) && !l.Contains(term.Succs[0]) {
		// Inverted: the loop continues while the condition is false.
		exit = term.Succs[0]
		pred = negatedPred(pred)
	} else {
		return nil, false
	}

	// Put the IV phi on the left of the comparison.
	var iv *ir.Instr
	var bound ir.Value
	if p, ok := cond.Operands[0].(*ir.Instr); ok && p.Op == ir.OpPhi && p.Block == h {
		iv, bound = p, cond.Operands[1]
	} else if p, ok := cond.Operands[1].(*ir.Instr); ok && p.Op == ir.OpPhi && p.Block == h {
		iv, bound = p, cond.Operands[0]
		pred = swappedPred(pred)
	} else {
		return nil, false
	}
	if !LoopInvariant(l, bound) {
		return nil, false
	}

	// The phi advances by ±1 through an add/sub inside the loop.
	if len(iv.Operands) != 2 {
		return nil, false
	}
	start := iv.PhiIncomingFor(pre)
	next, nok := iv.PhiIncomingFor(latch).(*ir.Instr)
	if start == nil || !nok || !l.Contains(next.Block) {
		return nil, false
	}
	var stepC *ir.ConstInt
	switch {
	case next.Op == ir.OpAdd && next.Operands[0] == iv:
		stepC, ok = next.Operands[1].(*ir.ConstInt)
	case next.Op == ir.OpAdd && next.Operands[1] == iv:
		stepC, ok = next.Operands[0].(*ir.ConstInt)
	case next.Op == ir.OpSub && next.Operands[0] == iv:
		if stepC, ok = next.Operands[1].(*ir.ConstInt); ok {
			stepC = ir.NewInt(stepC.Ty, -stepC.Signed())
		}
	default:
		return nil, false
	}
	if !ok {
		return nil, false
	}
	step := stepC.Signed()
	if step != 1 && step != -1 {
		return nil, false
	}

	// Predicate and step must agree so the loop counts towards its bound
	// and stops exactly when the comparison first fails. Non-strict
	// predicates additionally require a constant bound away from the
	// extremal value of the width: `iv <= MAX` (resp. `iv >= MIN`) never
	// goes false, the IV wraps, and iterations outside [start, bound]
	// execute — breaking the exact-coverage guarantee.
	bits := iv.Ty.Bits
	switch {
	case step == 1 && (pred == ir.PredSLT || pred == ir.PredULT):
	case step == -1 && (pred == ir.PredSGT || pred == ir.PredUGT):
	case step == 1 && (pred == ir.PredSLE || pred == ir.PredULE),
		step == -1 && (pred == ir.PredSGE || pred == ir.PredUGE):
		c, ok := bound.(*ir.ConstInt)
		if !ok || c.Unsigned() == extremalBound(pred, bits) {
			return nil, false
		}
	default:
		return nil, false
	}

	return &CountedLoop{
		Loop:      l,
		Preheader: pre,
		Latch:     latch,
		Exit:      exit,
		IV:        iv,
		Next:      next,
		Start:     start,
		Step:      step,
		Bound:     bound,
		Pred:      pred,
	}, true
}

// extremalBound returns the bound value (as the width-truncated bit
// pattern) at which the given non-strict continue-predicate can never go
// false, making the loop infinite.
func extremalBound(p ir.Pred, bits int) uint64 {
	switch p {
	case ir.PredSLE: // iv <= SMAX
		return truncToBits(1<<uint(bits-1)-1, bits)
	case ir.PredULE: // iv <= UMAX
		return truncToBits(^uint64(0), bits)
	case ir.PredSGE: // iv >= SMIN
		return truncToBits(1<<uint(bits-1), bits)
	case ir.PredUGE: // iv >= 0
		return 0
	}
	panic("extremalBound: not a non-strict predicate")
}

func truncToBits(v uint64, bits int) uint64 {
	if bits >= 64 {
		return v
	}
	return v & (1<<uint(bits) - 1)
}

// swappedPred returns p' such that `a p b` == `b p' a`.
func swappedPred(p ir.Pred) ir.Pred {
	switch p {
	case ir.PredSLT:
		return ir.PredSGT
	case ir.PredSGT:
		return ir.PredSLT
	case ir.PredSLE:
		return ir.PredSGE
	case ir.PredSGE:
		return ir.PredSLE
	case ir.PredULT:
		return ir.PredUGT
	case ir.PredUGT:
		return ir.PredULT
	case ir.PredULE:
		return ir.PredUGE
	case ir.PredUGE:
		return ir.PredULE
	default: // EQ, NE are symmetric
		return p
	}
}

// negatedPred returns p' such that `a p b` == !(a p' b).
func negatedPred(p ir.Pred) ir.Pred {
	switch p {
	case ir.PredEQ:
		return ir.PredNE
	case ir.PredNE:
		return ir.PredEQ
	case ir.PredSLT:
		return ir.PredSGE
	case ir.PredSGE:
		return ir.PredSLT
	case ir.PredSLE:
		return ir.PredSGT
	case ir.PredSGT:
		return ir.PredSLE
	case ir.PredULT:
		return ir.PredUGE
	case ir.PredUGE:
		return ir.PredULT
	case ir.PredULE:
		return ir.PredUGT
	default: // PredUGT
		return ir.PredULE
	}
}

// EvalPred evaluates an integer predicate on width-truncated bit patterns,
// interpreting them as bits-wide values. Exported for tests that simulate
// loops the analysis claims to understand.
func EvalPred(p ir.Pred, a, b uint64, bits int) bool {
	ua, ub := truncToBits(a, bits), truncToBits(b, bits)
	sa, sb := signExtend(ua, bits), signExtend(ub, bits)
	switch p {
	case ir.PredEQ:
		return ua == ub
	case ir.PredNE:
		return ua != ub
	case ir.PredSLT:
		return sa < sb
	case ir.PredSLE:
		return sa <= sb
	case ir.PredSGT:
		return sa > sb
	case ir.PredSGE:
		return sa >= sb
	case ir.PredULT:
		return ua < ub
	case ir.PredULE:
		return ua <= ub
	case ir.PredUGT:
		return ua > ub
	case ir.PredUGE:
		return ua >= ub
	}
	panic("EvalPred: unknown predicate")
}

func signExtend(v uint64, bits int) int64 {
	if bits >= 64 {
		return int64(v)
	}
	if v&(1<<uint(bits-1)) != 0 {
		v |= ^uint64(0) << uint(bits)
	}
	return int64(v)
}
