package analysis

import (
	"testing"

	"repro/internal/ir"
)

// buildLoopFunc creates:
//
//	entry -> header -> body -> latch -> header
//	                 \-> exit
func buildLoopFunc() (*ir.Func, map[string]*ir.Block) {
	m := ir.NewModule("t")
	f := m.NewFunc("loop", ir.FuncOf(ir.I32, ir.I32), "n")
	b := ir.NewBuilder(f)
	entry := f.NewBlock("entry")
	header := f.NewBlock("header")
	body := f.NewBlock("body")
	latch := f.NewBlock("latch")
	exit := f.NewBlock("exit")

	b.SetBlock(entry)
	b.Br(header)

	b.SetBlock(header)
	i := b.Phi(ir.I32)
	cmp := b.ICmp(ir.PredSLT, i, f.Params[0])
	b.CondBr(cmp, body, exit)

	b.SetBlock(body)
	b.Br(latch)

	b.SetBlock(latch)
	inc := b.Add(i, ir.NewInt(ir.I32, 1))
	b.Br(header)

	i.AddPhiIncoming(ir.NewInt(ir.I32, 0), entry)
	i.AddPhiIncoming(inc, latch)

	b.SetBlock(exit)
	b.Ret(i)

	blocks := map[string]*ir.Block{
		"entry": entry, "header": header, "body": body, "latch": latch, "exit": exit,
	}
	return f, blocks
}

func TestReversePostOrder(t *testing.T) {
	f, blocks := buildLoopFunc()
	rpo := ReversePostOrder(f)
	if len(rpo) != 5 {
		t.Fatalf("rpo has %d blocks, want 5", len(rpo))
	}
	if rpo[0] != blocks["entry"] {
		t.Error("entry not first in RPO")
	}
	pos := map[*ir.Block]int{}
	for i, b := range rpo {
		pos[b] = i
	}
	if pos[blocks["header"]] > pos[blocks["body"]] {
		t.Error("header after body in RPO")
	}
}

func TestDominators(t *testing.T) {
	f, blocks := buildLoopFunc()
	dt := NewDomTree(f)

	cases := []struct {
		a, b string
		want bool
	}{
		{"entry", "exit", true},
		{"header", "body", true},
		{"header", "exit", true},
		{"body", "latch", true},
		{"body", "exit", false},
		{"latch", "header", false},
		{"exit", "entry", false},
		{"header", "header", true},
	}
	for _, c := range cases {
		if got := dt.Dominates(blocks[c.a], blocks[c.b]); got != c.want {
			t.Errorf("Dominates(%s, %s) = %t, want %t", c.a, c.b, got, c.want)
		}
	}
	if dt.IDom(blocks["entry"]) != nil {
		t.Error("entry has an idom")
	}
	if dt.IDom(blocks["exit"]) != blocks["header"] {
		t.Error("exit's idom is not header")
	}
	if dt.IDom(blocks["latch"]) != blocks["body"] {
		t.Error("latch's idom is not body")
	}
}

func TestInstrDominance(t *testing.T) {
	f, blocks := buildLoopFunc()
	dt := NewDomTree(f)
	header := blocks["header"]
	phi := header.Instrs[0]
	cmp := header.Instrs[1]
	if !dt.InstrDominates(phi, cmp) {
		t.Error("phi should dominate the later cmp in the same block")
	}
	if dt.InstrDominates(cmp, phi) {
		t.Error("cmp should not dominate the earlier phi")
	}
	if dt.InstrDominates(cmp, cmp) {
		t.Error("an instruction must not dominate itself")
	}
	latchAdd := blocks["latch"].Instrs[0]
	if !dt.InstrDominates(cmp, latchAdd) {
		t.Error("header instr should dominate latch instr")
	}
	exitRet := blocks["exit"].Instrs[0]
	if dt.InstrDominates(latchAdd, exitRet) {
		t.Error("latch should not dominate exit")
	}
}

func TestDominanceFrontiers(t *testing.T) {
	f, blocks := buildLoopFunc()
	dt := NewDomTree(f)
	df := dt.DominanceFrontiers()
	// The latch's frontier contains the header (back edge); so does the
	// header's own frontier (it does not strictly dominate itself).
	has := func(b *ir.Block, x *ir.Block) bool {
		for _, y := range df[b] {
			if y == x {
				return true
			}
		}
		return false
	}
	if !has(blocks["latch"], blocks["header"]) {
		t.Error("DF(latch) missing header")
	}
	if !has(blocks["header"], blocks["header"]) {
		t.Error("DF(header) missing header (self-frontier of loop header)")
	}
	if has(blocks["entry"], blocks["header"]) {
		t.Error("DF(entry) wrongly contains header")
	}
}

func TestFindLoops(t *testing.T) {
	f, blocks := buildLoopFunc()
	dt := NewDomTree(f)
	li := FindLoops(f, dt)
	if len(li.Loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(li.Loops))
	}
	l := li.Loops[0]
	if l.Header != blocks["header"] {
		t.Error("wrong loop header")
	}
	for _, name := range []string{"header", "body", "latch"} {
		if !l.Contains(blocks[name]) {
			t.Errorf("loop missing %s", name)
		}
	}
	if l.Contains(blocks["exit"]) || l.Contains(blocks["entry"]) {
		t.Error("loop contains non-loop block")
	}
	if li.Depth(blocks["body"]) != 1 || li.Depth(blocks["exit"]) != 0 {
		t.Error("wrong loop depths")
	}
}

func TestNestedLoops(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("nest", ir.FuncOf(ir.Void))
	b := ir.NewBuilder(f)
	entry := f.NewBlock("entry")
	oh := f.NewBlock("outer")
	ih := f.NewBlock("inner")
	il := f.NewBlock("ilatch")
	ol := f.NewBlock("olatch")
	exit := f.NewBlock("exit")

	b.SetBlock(entry)
	b.Br(oh)
	b.SetBlock(oh)
	c1 := b.ICmp(ir.PredEQ, ir.NewInt(ir.I32, 0), ir.NewInt(ir.I32, 0))
	b.CondBr(c1, ih, exit)
	b.SetBlock(ih)
	c2 := b.ICmp(ir.PredEQ, ir.NewInt(ir.I32, 1), ir.NewInt(ir.I32, 1))
	b.CondBr(c2, il, ol)
	b.SetBlock(il)
	b.Br(ih)
	b.SetBlock(ol)
	b.Br(oh)
	b.SetBlock(exit)
	b.Ret(nil)

	dt := NewDomTree(f)
	li := FindLoops(f, dt)
	if len(li.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(li.Loops))
	}
	inner := li.ByHeader[ih]
	outer := li.ByHeader[oh]
	if inner == nil || outer == nil {
		t.Fatal("loop headers not identified")
	}
	if inner.Parent != outer {
		t.Error("inner loop's parent is not the outer loop")
	}
	if inner.Depth != 2 || outer.Depth != 1 {
		t.Errorf("depths inner=%d outer=%d, want 2 and 1", inner.Depth, outer.Depth)
	}
	if li.InnermostLoop(il) != inner {
		t.Error("innermost loop of ilatch is not the inner loop")
	}
}

func TestVerifySSA(t *testing.T) {
	f, blocks := buildLoopFunc()
	if bad := VerifySSA(f); bad != nil {
		t.Fatalf("valid SSA reported bad: %s", ir.FormatInstr(bad))
	}
	// Break SSA: use the latch's add in the entry block.
	latchAdd := blocks["latch"].Instrs[0]
	b := ir.NewBuilder(f)
	b.SetBefore(blocks["entry"].Terminator())
	b.Add(latchAdd, ir.NewInt(ir.I32, 1))
	if bad := VerifySSA(f); bad == nil {
		t.Error("SSA violation not detected")
	}
}

func TestUnreachableBlocksIgnored(t *testing.T) {
	f, _ := buildLoopFunc()
	// Add an unreachable block; analyses must not include it.
	dead := f.NewBlock("dead")
	b := ir.NewBuilder(f)
	b.SetBlock(dead)
	b.Unreachable()
	rpo := ReversePostOrder(f)
	for _, blk := range rpo {
		if blk == dead {
			t.Error("unreachable block in RPO")
		}
	}
	dt := NewDomTree(f)
	if dt.Dominates(f.Entry(), dead) {
		t.Error("entry dominates unreachable block")
	}
}
