// Package analysis provides control-flow analyses over the IR: reverse
// post-order, dominator trees (Cooper–Harvey–Kennedy) and natural-loop
// detection. The instrumentation framework uses dominance both to place
// witnesses and for the dominance-based redundant-check elimination the paper
// evaluates in Section 5.3; the optimizer uses loops for LICM.
package analysis

import "repro/internal/ir"

// ReversePostOrder returns the blocks of f reachable from the entry in
// reverse post-order. Unreachable blocks are omitted.
func ReversePostOrder(f *ir.Func) []*ir.Block {
	if f.Entry() == nil {
		return nil
	}
	var post []*ir.Block
	visited := make(map[*ir.Block]bool, len(f.Blocks))
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		visited[b] = true
		for _, s := range b.Succs() {
			if !visited[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry())
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Predecessors computes the predecessor map for all reachable blocks.
func Predecessors(f *ir.Func) map[*ir.Block][]*ir.Block {
	preds := make(map[*ir.Block][]*ir.Block, len(f.Blocks))
	for _, b := range ReversePostOrder(f) {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}
