package analysis

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
)

// ivLoopSpec parameterizes a randomly generated counted-loop candidate.
// The generator deliberately produces both recognizable and unrecognizable
// shapes: the property under test is that whenever AnalyzeCountedLoop
// accepts, brute-force simulation of the actual IR semantics executes
// exactly the IV values the analysis claims are covered.
type ivLoopSpec struct {
	ty           *ir.Type
	start, bound uint64
	pred         ir.Pred
	stepOp       ir.Op // OpAdd or OpSub
	stepVal      int64 // raw constant operand of the step instruction
	stepOnLeft   bool  // emit add(step, iv) instead of add(iv, step)
	swapCmp      bool  // emit icmp pred, bound, iv
	invertBr     bool  // emit condbr c, exit, body
	breakEdge    bool  // body conditionally branches to the exit
	extraBlock   bool  // body is a two-block chain
}

// effStep is the signed per-iteration increment the generated loop applies.
func (s ivLoopSpec) effStep() int64 {
	if s.stepOp == ir.OpSub {
		return -s.stepVal
	}
	return s.stepVal
}

func randIVSpec(rng *rand.Rand) ivLoopSpec {
	types := []*ir.Type{ir.I8, ir.I8, ir.I16, ir.I32}
	preds := []ir.Pred{
		ir.PredEQ, ir.PredNE,
		ir.PredSLT, ir.PredSLE, ir.PredSGT, ir.PredSGE,
		ir.PredULT, ir.PredULE, ir.PredUGT, ir.PredUGE,
	}
	s := ivLoopSpec{
		ty:         types[rng.Intn(len(types))],
		pred:       preds[rng.Intn(len(preds))],
		stepVal:    int64(rng.Intn(5)) - 2, // -2..2, including broken 0
		swapCmp:    rng.Intn(4) == 0,
		invertBr:   rng.Intn(3) == 0,
		breakEdge:  rng.Intn(8) == 0,
		extraBlock: rng.Intn(3) == 0,
	}
	if rng.Intn(2) == 0 {
		s.stepOp = ir.OpAdd
		s.stepOnLeft = rng.Intn(4) == 0
	} else {
		s.stepOp = ir.OpSub
	}
	// Bias the bound towards interesting corners (0, extremes) half the
	// time so the non-strict-predicate wrap guard gets exercised.
	mask := uint64(1)<<uint(s.ty.Bits) - 1
	corner := []uint64{0, 1, mask, mask >> 1, (mask >> 1) + 1}
	if rng.Intn(2) == 0 {
		s.bound = corner[rng.Intn(len(corner))]
	} else {
		s.bound = rng.Uint64() & mask
	}
	s.start = rng.Uint64() & mask
	return s
}

// buildIVLoop materializes the spec as IR:
//
//	entry:  br header
//	header: iv = phi [start, entry] [next, latch]
//	        c = icmp pred iv, bound        (operands per swapCmp)
//	        condbr c, body, exit           (order per invertBr)
//	body:   [condbr false, latch, exit | br latch]   (per breakEdge/extraBlock)
//	latch:  next = add/sub ...
//	        br header
//	exit:   ret
func buildIVLoop(s ivLoopSpec) *ir.Func {
	m := ir.NewModule("iv")
	f := m.NewFunc("f", ir.FuncOf(ir.Void))
	entry := f.NewBlock("entry")
	header := f.NewBlock("header")
	latch := f.NewBlock("latch")
	exit := f.NewBlock("exit")
	bodyFirst := latch
	if s.extraBlock || s.breakEdge {
		bodyFirst = f.NewBlock("body")
	}

	b := ir.NewBuilder(f)
	b.SetBlock(entry)
	b.Br(header)

	b.SetBlock(header)
	iv := b.Phi(s.ty)
	startC := ir.NewInt(s.ty, int64(s.start))
	boundC := ir.NewInt(s.ty, int64(s.bound))
	var cmp *ir.Instr
	if s.swapCmp {
		cmp = b.ICmp(s.pred, boundC, iv)
	} else {
		cmp = b.ICmp(s.pred, iv, boundC)
	}
	if s.invertBr {
		b.CondBr(cmp, exit, bodyFirst)
	} else {
		b.CondBr(cmp, bodyFirst, exit)
	}

	if bodyFirst != latch {
		b.SetBlock(bodyFirst)
		if s.breakEdge {
			b.CondBr(ir.NewBool(false), latch, exit)
		} else {
			b.Br(latch)
		}
	}

	b.SetBlock(latch)
	stepC := ir.NewInt(s.ty, s.stepVal)
	var next *ir.Instr
	if s.stepOnLeft && s.stepOp == ir.OpAdd {
		next = b.Binary(ir.OpAdd, stepC, iv)
	} else {
		next = b.Binary(s.stepOp, iv, stepC)
	}
	b.Br(header)

	b.SetBlock(exit)
	b.Ret(nil)

	iv.AddPhiIncoming(startC, entry)
	iv.AddPhiIncoming(next, latch)
	return f
}

// simulate brute-forces the generated loop by direct interpretation of its
// semantics: evaluate the comparison with the generator's raw operand order
// and branch orientation, record the IV value of every iteration that
// enters the body, and advance with width truncation. Returns false for
// terminated when the step cap is exceeded (an infinite loop).
func simulate(s ivLoopSpec, maxSteps int) (executed []uint64, terminated bool) {
	bits := s.ty.Bits
	mask := uint64(1)<<uint(bits) - 1
	v := s.start & mask
	for steps := 0; steps <= maxSteps; steps++ {
		a, b := v, s.bound
		if s.swapCmp {
			a, b = b, a
		}
		cont := EvalPred(s.pred, a, b, bits)
		if s.invertBr {
			cont = !cont
		}
		if !cont {
			return executed, true
		}
		executed = append(executed, v)
		v = (v + uint64(s.effStep())) & mask
	}
	return executed, false
}

// coveredRange lists the IV values the analysis claims execute: start,
// start+step, ..., bound+LastDelta inclusive (empty when the entry
// comparison fails). Returns ok=false if the walk does not reach the
// claimed last value within cap steps.
func coveredRange(cl *CountedLoop, start, bound uint64, maxSteps int) (vals []uint64, ok bool) {
	bits := cl.IV.Ty.Bits
	mask := uint64(1)<<uint(bits) - 1
	if !EvalPred(cl.Pred, start, bound, bits) {
		return nil, true
	}
	last := (bound + uint64(cl.LastDelta())) & mask
	v := start & mask
	for steps := 0; steps <= maxSteps; steps++ {
		vals = append(vals, v)
		if v == last {
			return vals, true
		}
		v = (v + uint64(cl.Step)) & mask
	}
	return vals, false
}

// TestCountedLoopCoverageProperty is the soundness contract behind check
// hoisting: for every accepted loop, the sequence of IV values executed by
// the real program equals exactly the range the analysis reports. A value
// executing outside [start, last] would mean a widened range check covers
// less than the original per-iteration checks (missed detection); a value
// inside the range never executing would mean it covers more (false
// positive).
func TestCountedLoopCoverageProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	accepted := 0
	for trial := 0; trial < 2000; trial++ {
		s := randIVSpec(rng)
		f := buildIVLoop(s)
		dt := NewDomTree(f)
		li := FindLoops(f, dt)
		if len(li.Loops) != 1 {
			t.Fatalf("trial %d: found %d loops, want 1\n%s", trial, len(li.Loops), ir.FormatFunc(f))
		}
		cl, ok := AnalyzeCountedLoop(li.Loops[0])

		// Shapes the analysis must never accept.
		normPred := s.pred
		if s.swapCmp {
			normPred = swappedPred(normPred)
		}
		if s.invertBr {
			normPred = negatedPred(normPred)
		}
		switch {
		case s.breakEdge && ok:
			t.Fatalf("trial %d: accepted a loop with a second exit\n%s", trial, ir.FormatFunc(f))
		case (s.effStep() != 1 && s.effStep() != -1) && ok:
			t.Fatalf("trial %d: accepted step %d\n%s", trial, s.effStep(), ir.FormatFunc(f))
		case (normPred == ir.PredEQ || normPred == ir.PredNE) && ok:
			t.Fatalf("trial %d: accepted predicate %v\n%s", trial, normPred, ir.FormatFunc(f))
		}
		if !ok {
			continue
		}
		accepted++

		if cl.Step != s.effStep() {
			t.Fatalf("trial %d: analysis step %d, generator step %d", trial, cl.Step, s.effStep())
		}
		startC, sok := cl.Start.(*ir.ConstInt)
		boundC, bok := cl.Bound.(*ir.ConstInt)
		if !sok || !bok {
			t.Fatalf("trial %d: non-constant start/bound from a constant generator", trial)
		}

		maxSteps := 1<<uint(s.ty.Bits) + 4
		if s.ty.Bits > 16 {
			// Wide types would take 2^32 steps to wrap; bound the walk to
			// what a terminating run of this generator can need.
			maxSteps = 1 << 17
		}
		executed, terminated := simulate(s, maxSteps)
		if !terminated {
			if s.ty.Bits > 16 {
				continue // can't distinguish "long" from "infinite" cheaply
			}
			t.Fatalf("trial %d: accepted loop did not terminate\n%s", trial, ir.FormatFunc(f))
		}
		covered, cok := coveredRange(cl, startC.Unsigned(), boundC.Unsigned(), maxSteps)
		if !cok {
			if s.ty.Bits > 16 {
				continue
			}
			t.Fatalf("trial %d: covered range did not reach its last value\n%s", trial, ir.FormatFunc(f))
		}
		if len(executed) != len(covered) {
			t.Fatalf("trial %d: executed %d iterations, analysis covers %d\nexecuted=%v\ncovered=%v\n%s",
				trial, len(executed), len(covered), executed, covered, ir.FormatFunc(f))
		}
		for i := range executed {
			if executed[i] != covered[i] {
				t.Fatalf("trial %d: iteration %d executed iv=%d, analysis covers %d\n%s",
					trial, i, executed[i], covered[i], ir.FormatFunc(f))
			}
		}
		nonempty := EvalPred(cl.Pred, startC.Unsigned(), boundC.Unsigned(), s.ty.Bits)
		if nonempty != (len(executed) > 0) {
			t.Fatalf("trial %d: nonempty predicate says %t but %d iterations executed\n%s",
				trial, nonempty, len(executed), ir.FormatFunc(f))
		}
	}
	if accepted < 100 {
		t.Fatalf("only %d/2000 random loops were accepted; the property test is near-vacuous", accepted)
	}
}
