package analysis

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
)

// randomCFG builds a function with n blocks and pseudo-random branches.
// Block 0 is the entry; every block ends in ret, br or condbr chosen from
// the rng, with successors drawn from the block set.
func randomCFG(rng *rand.Rand, n int) *ir.Func {
	m := ir.NewModule("r")
	f := m.NewFunc("f", ir.FuncOf(ir.Void))
	b := ir.NewBuilder(f)
	blocks := make([]*ir.Block, n)
	for i := range blocks {
		blocks[i] = f.NewBlock("b")
	}
	for _, blk := range blocks {
		b.SetBlock(blk)
		switch rng.Intn(4) {
		case 0:
			b.Ret(nil)
		case 1:
			b.Br(blocks[rng.Intn(n)])
		default:
			cond := ir.NewBool(rng.Intn(2) == 0)
			b.CondBr(cond, blocks[rng.Intn(n)], blocks[rng.Intn(n)])
		}
	}
	return f
}

// naiveDominators computes dominator sets by the classic iterative data-flow
// definition: dom(entry) = {entry}; dom(b) = {b} ∪ ∩ dom(preds).
func naiveDominators(f *ir.Func) map[*ir.Block]map[*ir.Block]bool {
	rpo := ReversePostOrder(f)
	preds := Predecessors(f)
	dom := make(map[*ir.Block]map[*ir.Block]bool, len(rpo))
	all := make(map[*ir.Block]bool, len(rpo))
	for _, b := range rpo {
		all[b] = true
	}
	for i, b := range rpo {
		if i == 0 {
			dom[b] = map[*ir.Block]bool{b: true}
			continue
		}
		s := make(map[*ir.Block]bool, len(all))
		for k := range all {
			s[k] = true
		}
		dom[b] = s
	}
	changed := true
	for changed {
		changed = false
		for i, b := range rpo {
			if i == 0 {
				continue
			}
			var inter map[*ir.Block]bool
			for _, p := range preds[b] {
				pd, ok := dom[p]
				if !ok {
					continue // unreachable pred
				}
				if inter == nil {
					inter = make(map[*ir.Block]bool, len(pd))
					for k := range pd {
						inter[k] = true
					}
					continue
				}
				for k := range inter {
					if !pd[k] {
						delete(inter, k)
					}
				}
			}
			if inter == nil {
				inter = map[*ir.Block]bool{}
			}
			inter[b] = true
			if len(inter) != len(dom[b]) {
				dom[b] = inter
				changed = true
				continue
			}
			for k := range inter {
				if !dom[b][k] {
					dom[b] = inter
					changed = true
					break
				}
			}
		}
	}
	return dom
}

// TestDomTreeMatchesNaiveProperty cross-checks the Cooper-Harvey-Kennedy
// implementation against the set-based definition on random CFGs.
func TestDomTreeMatchesNaiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20250706))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(12)
		f := randomCFG(rng, n)
		dt := NewDomTree(f)
		want := naiveDominators(f)
		blocks := dt.Blocks()
		for _, a := range blocks {
			for _, b := range blocks {
				got := dt.Dominates(a, b)
				exp := want[b][a]
				if got != exp {
					t.Fatalf("trial %d: Dominates(%s, %s) = %t, want %t\n%s",
						trial, a.Name, b.Name, got, exp, ir.FormatFunc(f))
				}
			}
		}
		// IDom consistency: the immediate dominator is a strict dominator
		// and every other strict dominator dominates it.
		for _, b := range blocks {
			id := dt.IDom(b)
			if b == f.Entry() {
				if id != nil {
					t.Fatalf("entry has idom")
				}
				continue
			}
			if id == nil || !want[b][id] || id == b {
				t.Fatalf("trial %d: bad idom for %s", trial, b.Name)
			}
			for d := range want[b] {
				if d == b || d == id {
					continue
				}
				if !want[id][d] {
					t.Fatalf("trial %d: %s strictly dominates %s but not its idom %s",
						trial, d.Name, b.Name, id.Name)
				}
			}
		}
	}
}

// TestLoopsAreCyclesProperty: every detected natural loop contains a cycle
// through its header, and every block of the loop can reach the header
// within the loop.
func TestLoopsAreCyclesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(10)
		f := randomCFG(rng, n)
		dt := NewDomTree(f)
		li := FindLoops(f, dt)
		for _, l := range li.Loops {
			if !l.Contains(l.Header) {
				t.Fatalf("trial %d: loop does not contain its header", trial)
			}
			// Every loop block reaches the header without leaving the loop.
			for b := range l.Blocks {
				if !reachesWithin(b, l.Header, l.Blocks) {
					t.Fatalf("trial %d: %s cannot reach header %s inside the loop",
						trial, b.Name, l.Header.Name)
				}
			}
			// The header dominates every loop block.
			for b := range l.Blocks {
				if !dt.Dominates(l.Header, b) {
					t.Fatalf("trial %d: header does not dominate %s", trial, b.Name)
				}
			}
		}
	}
}

func reachesWithin(from, to *ir.Block, within map[*ir.Block]bool) bool {
	if from == to {
		return true
	}
	seen := map[*ir.Block]bool{from: true}
	work := []*ir.Block{from}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs() {
			if s == to {
				return true
			}
			if within[s] && !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return false
}
