package analysis

import "repro/internal/ir"

// DomTree is the dominator tree of a function, built with the
// Cooper–Harvey–Kennedy iterative algorithm ("A Simple, Fast Dominance
// Algorithm"). It answers block- and instruction-level dominance queries.
type DomTree struct {
	fn    *ir.Func
	rpo   []*ir.Block
	index map[*ir.Block]int // position in rpo
	idom  []int             // immediate dominator, by rpo index; idom[0] == 0
	// instrPos caches the position of each instruction inside its block for
	// same-block dominance queries.
	instrPos map[*ir.Instr]int
	children map[*ir.Block][]*ir.Block
}

// NewDomTree computes the dominator tree of f. Unreachable blocks are not in
// the tree; queries involving them return false.
func NewDomTree(f *ir.Func) *DomTree {
	rpo := ReversePostOrder(f)
	dt := &DomTree{
		fn:    f,
		rpo:   rpo,
		index: make(map[*ir.Block]int, len(rpo)),
		idom:  make([]int, len(rpo)),
	}
	for i, b := range rpo {
		dt.index[b] = i
	}
	if len(rpo) == 0 {
		return dt
	}

	preds := Predecessors(f)
	const undef = -1
	for i := range dt.idom {
		dt.idom[i] = undef
	}
	dt.idom[0] = 0

	changed := true
	for changed {
		changed = false
		for i := 1; i < len(rpo); i++ {
			b := rpo[i]
			newIdom := undef
			for _, p := range preds[b] {
				pi, ok := dt.index[p]
				if !ok || dt.idom[pi] == undef {
					continue
				}
				if newIdom == undef {
					newIdom = pi
				} else {
					newIdom = dt.intersect(pi, newIdom)
				}
			}
			if newIdom != undef && dt.idom[i] != newIdom {
				dt.idom[i] = newIdom
				changed = true
			}
		}
	}

	dt.children = make(map[*ir.Block][]*ir.Block)
	for i := 1; i < len(rpo); i++ {
		if dt.idom[i] != undef {
			p := rpo[dt.idom[i]]
			dt.children[p] = append(dt.children[p], rpo[i])
		}
	}

	dt.instrPos = make(map[*ir.Instr]int, f.NumInstrs())
	for _, b := range rpo {
		for pos, in := range b.Instrs {
			dt.instrPos[in] = pos
		}
	}
	return dt
}

func (dt *DomTree) intersect(a, b int) int {
	for a != b {
		for a > b {
			a = dt.idom[a]
		}
		for b > a {
			b = dt.idom[b]
		}
	}
	return a
}

// IDom returns the immediate dominator of b, or nil for the entry block and
// unreachable blocks.
func (dt *DomTree) IDom(b *ir.Block) *ir.Block {
	i, ok := dt.index[b]
	if !ok || i == 0 {
		return nil
	}
	return dt.rpo[dt.idom[i]]
}

// Children returns the blocks immediately dominated by b.
func (dt *DomTree) Children(b *ir.Block) []*ir.Block { return dt.children[b] }

// Dominates reports whether block a dominates block b (reflexively).
func (dt *DomTree) Dominates(a, b *ir.Block) bool {
	ai, aok := dt.index[a]
	bi, bok := dt.index[b]
	if !aok || !bok {
		return false
	}
	for bi > ai {
		bi = dt.idom[bi]
	}
	return bi == ai
}

// StrictlyDominates reports whether a dominates b and a != b.
func (dt *DomTree) StrictlyDominates(a, b *ir.Block) bool {
	return a != b && dt.Dominates(a, b)
}

// InstrDominates reports whether instruction a dominates instruction b: a
// strictly precedes b in the same block, or a's block strictly dominates b's.
// An instruction does not dominate itself.
func (dt *DomTree) InstrDominates(a, b *ir.Instr) bool {
	if a == b {
		return false
	}
	if a.Block == b.Block {
		return dt.instrPos[a] < dt.instrPos[b]
	}
	return dt.StrictlyDominates(a.Block, b.Block)
}

// ValueDominates reports whether the definition of value v dominates
// instruction user. Constants, parameters, globals and functions dominate
// everything; instruction definitions follow InstrDominates.
func (dt *DomTree) ValueDominates(v ir.Value, user *ir.Instr) bool {
	in, ok := v.(*ir.Instr)
	if !ok {
		return true
	}
	return dt.InstrDominates(in, user)
}

// Blocks returns the reachable blocks in reverse post-order.
func (dt *DomTree) Blocks() []*ir.Block { return dt.rpo }

// DominanceFrontiers computes the dominance frontier of every reachable
// block (Cooper–Harvey–Kennedy): DF(a) contains b iff a dominates a
// predecessor of b but not b strictly. mem2reg places phis at iterated
// frontiers of store blocks.
func (dt *DomTree) DominanceFrontiers() map[*ir.Block][]*ir.Block {
	df := make(map[*ir.Block][]*ir.Block, len(dt.rpo))
	preds := Predecessors(dt.fn)
	for _, b := range dt.rpo {
		ps := preds[b]
		if len(ps) < 2 {
			continue
		}
		bi := dt.index[b]
		for _, p := range ps {
			pi, ok := dt.index[p]
			if !ok {
				continue
			}
			runner := pi
			for runner != dt.idom[bi] {
				rb := dt.rpo[runner]
				df[rb] = append(df[rb], b)
				runner = dt.idom[runner]
			}
		}
	}
	return df
}

// VerifySSA checks that every instruction operand's definition dominates its
// use (phi uses are checked against the incoming edge's terminator). It
// returns the first violating instruction, or nil.
func VerifySSA(f *ir.Func) *ir.Instr {
	dt := NewDomTree(f)
	for _, b := range dt.rpo {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi {
				for i, op := range in.Operands {
					def, ok := op.(*ir.Instr)
					if !ok {
						continue
					}
					pred := in.PhiBlocks[i]
					term := pred.Terminator()
					if term == nil || (!dt.InstrDominates(def, term) && def != term) {
						return in
					}
				}
				continue
			}
			for _, op := range in.Operands {
				if !dt.ValueDominates(op, in) {
					return in
				}
			}
		}
	}
	return nil
}
