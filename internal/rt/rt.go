// Package rt names the runtime intrinsics that the instrumentation framework
// (internal/core) inserts and the VM (internal/vm) implements. Keeping the
// contract in one place mirrors how MemInstrument links instrumented code
// against its runtime library (Figure 8 of the paper).
package rt

import "repro/internal/ir"

// SoftBound runtime intrinsics.
const (
	// SBLoadBase / SBLoadBound load the bounds recorded for a pointer
	// stored at the given location from the metadata trie. They are pure:
	// unused metadata loads may be optimized away, which is why the
	// metadata-only configuration underapproximates propagation cost
	// (Section 5.4).
	SBLoadBase  = "mi_sb_load_base"
	SBLoadBound = "mi_sb_load_bound"
	// SBStoreMD records bounds for a pointer stored at a location.
	SBStoreMD = "mi_sb_store_md"
	// SBCheck validates an access: ptr >= base && ptr+width <= bound
	// (Figure 2).
	SBCheck = "mi_sb_check"
	// SBCheckRange validates a whole affine access range [lo, hi] at once:
	// the loop-check hoisting pass replaces a per-iteration SBCheck with a
	// single preheader call covering every iteration. The trailing i1 is
	// the loop's entry condition; when false (zero-trip loop) the check
	// passes unconditionally.
	SBCheckRange = "mi_sb_check_range"
	// Shadow-stack operations (Section 3.2): a frame carries the bounds of
	// pointer arguments and of the returned pointer.
	SBSSAlloc    = "mi_sb_ss_alloc"
	SBSSSetArg   = "mi_sb_ss_setarg"
	SBSSArgBase  = "mi_sb_ss_arg_base"
	SBSSArgBound = "mi_sb_ss_arg_bound"
	SBSSSetRet   = "mi_sb_ss_setret"
	SBSSRetBase  = "mi_sb_ss_ret_base"
	SBSSRetBound = "mi_sb_ss_ret_bound"
	SBSSPop      = "mi_sb_ss_pop"
)

// Low-Fat Pointers runtime intrinsics.
const (
	// LFBase recovers the allocation base from a pointer value (Figure 4).
	LFBase = "mi_lf_base"
	// LFCheck validates an access of the given width against the witness
	// base (Figure 5).
	LFCheck = "mi_lf_check"
	// LFCheckInv is the invariant check applied to pointers escaping via
	// stores, calls and returns (Table 1, bottom right).
	LFCheckInv = "mi_lf_check_inv"
	// LFCheckRange is the hoisted-range counterpart of LFCheck; see
	// SBCheckRange.
	LFCheckRange = "mi_lf_check_range"
)

// VoidPtr is the generic pointer type used in intrinsic signatures.
var VoidPtr = ir.PointerTo(ir.I8)

// Declare ensures the intrinsic declaration exists in the module and returns
// it. Pure intrinsics are marked Pure so that dead-code elimination may
// remove unused metadata loads, but never checks or metadata stores.
func Declare(m *ir.Module, name string) *ir.Func {
	var sig *ir.Type
	pure := false
	switch name {
	case SBLoadBase, SBLoadBound:
		sig, pure = ir.FuncOf(VoidPtr, VoidPtr), true
	case SBStoreMD:
		sig = ir.FuncOf(ir.Void, VoidPtr, VoidPtr, VoidPtr)
	case SBCheck:
		sig = ir.FuncOf(ir.Void, VoidPtr, ir.I64, VoidPtr, VoidPtr)
	case SBCheckRange:
		// (lo, hi, width, base, bound, nonempty)
		sig = ir.FuncOf(ir.Void, VoidPtr, VoidPtr, ir.I64, VoidPtr, VoidPtr, ir.I1)
	case SBSSAlloc:
		sig = ir.FuncOf(ir.Void, ir.I64)
	case SBSSSetArg:
		sig = ir.FuncOf(ir.Void, ir.I64, VoidPtr, VoidPtr)
	case SBSSArgBase, SBSSArgBound:
		sig, pure = ir.FuncOf(VoidPtr, ir.I64), true
	case SBSSSetRet:
		sig = ir.FuncOf(ir.Void, VoidPtr, VoidPtr)
	case SBSSRetBase, SBSSRetBound:
		sig, pure = ir.FuncOf(VoidPtr), true
	case SBSSPop:
		sig = ir.FuncOf(ir.Void)
	case LFBase:
		sig, pure = ir.FuncOf(VoidPtr, VoidPtr), true
	case LFCheck:
		sig = ir.FuncOf(ir.Void, VoidPtr, ir.I64, VoidPtr)
	case LFCheckInv:
		sig = ir.FuncOf(ir.Void, VoidPtr, VoidPtr)
	case LFCheckRange:
		// (lo, hi, width, base, nonempty)
		sig = ir.FuncOf(ir.Void, VoidPtr, VoidPtr, ir.I64, VoidPtr, ir.I1)
	default:
		panic("rt: unknown intrinsic " + name)
	}
	f := m.EnsureDecl(name, sig)
	f.Pure = pure
	f.IgnoreInstrumentation = true
	return f
}

// IsIntrinsic reports whether name is one of the runtime intrinsics.
func IsIntrinsic(name string) bool {
	switch name {
	case SBLoadBase, SBLoadBound, SBStoreMD, SBCheck, SBCheckRange,
		SBSSAlloc, SBSSSetArg, SBSSArgBase, SBSSArgBound,
		SBSSSetRet, SBSSRetBase, SBSSRetBound, SBSSPop,
		LFBase, LFCheck, LFCheckInv, LFCheckRange:
		return true
	}
	return false
}
