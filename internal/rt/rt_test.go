package rt

import (
	"testing"

	"repro/internal/ir"
)

func TestDeclareCreatesExpectedSignatures(t *testing.T) {
	m := ir.NewModule("t")
	cases := []struct {
		name   string
		params int
		retPtr bool
		pure   bool
	}{
		{SBLoadBase, 1, true, true},
		{SBLoadBound, 1, true, true},
		{SBStoreMD, 3, false, false},
		{SBCheck, 4, false, false},
		{SBSSAlloc, 1, false, false},
		{SBSSSetArg, 3, false, false},
		{SBSSArgBase, 1, true, true},
		{SBSSArgBound, 1, true, true},
		{SBSSSetRet, 2, false, false},
		{SBSSRetBase, 0, true, true},
		{SBSSRetBound, 0, true, true},
		{SBSSPop, 0, false, false},
		{LFBase, 1, true, true},
		{LFCheck, 3, false, false},
		{LFCheckInv, 2, false, false},
	}
	for _, c := range cases {
		f := Declare(m, c.name)
		if f == nil || !f.External {
			t.Errorf("%s: not an external declaration", c.name)
			continue
		}
		if len(f.Sig.Params) != c.params {
			t.Errorf("%s: %d params, want %d", c.name, len(f.Sig.Params), c.params)
		}
		if got := f.Sig.Ret.IsPointer(); got != c.retPtr {
			t.Errorf("%s: pointer result = %t, want %t", c.name, got, c.retPtr)
		}
		if f.Pure != c.pure {
			t.Errorf("%s: Pure = %t, want %t", c.name, f.Pure, c.pure)
		}
		if !f.IgnoreInstrumentation {
			t.Errorf("%s: intrinsic must be excluded from instrumentation", c.name)
		}
		if !IsIntrinsic(c.name) {
			t.Errorf("IsIntrinsic(%s) = false", c.name)
		}
	}
	if IsIntrinsic("malloc") || IsIntrinsic("anything") {
		t.Error("IsIntrinsic too permissive")
	}
}

func TestDeclareIsIdempotent(t *testing.T) {
	m := ir.NewModule("t")
	a := Declare(m, SBCheck)
	b := Declare(m, SBCheck)
	if a != b {
		t.Error("second Declare created a new function")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown intrinsic did not panic")
		}
	}()
	Declare(m, "mi_unknown")
}
