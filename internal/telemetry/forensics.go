// Violation forensics: allocation-site provenance, a flight recorder of
// recent memory events, and the structured ViolationReport both execution
// engines synthesize when a check fires. The paper's usability study (§4)
// shows that diagnosing *why* a check fired — real spatial violation or
// C-vs-IR semantic gap — is the hard part of deploying either mechanism;
// this file is the data model for answering that question.
package telemetry

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/ir"
)

// AllocSite is one static allocation site: a stack alloca, a global
// definition, or a malloc-family call, with enough context to name it in a
// report. Like check Sites, IDs are 1-based indices in registration order,
// so a module instrumented twice from the same clone gets identical tables.
type AllocSite struct {
	// ID is the stable allocation-site identifier (1-based; 0 = unknown).
	ID int32 `json:"id"`
	// Kind classifies the allocation: "alloca", "global" or "heap".
	Kind string `json:"kind"`
	// Func is the containing function ("" for globals).
	Func string `json:"func,omitempty"`
	// Sym is the symbol name for globals ("" otherwise).
	Sym string `json:"sym,omitempty"`
	// Loc is the C source location of the allocation.
	Loc ir.Loc `json:"-"`
	// LocStr is Loc rendered for JSON serialization.
	LocStr string `json:"loc,omitempty"`
}

// Describe renders the site for reports, e.g. `heap in main at x.c:5:10`.
func (s *AllocSite) Describe() string {
	if s == nil {
		return "unknown"
	}
	where := s.Func
	if s.Kind == "global" {
		where = s.Sym
	}
	if where == "" {
		where = "?"
	}
	return fmt.Sprintf("%s %q at %s", s.Kind, where, s.Loc)
}

// AllocTable assigns stable identifiers to allocation sites at
// instrumentation time. Lookups are O(1): the table is a dense slice indexed
// by ID (see BenchmarkAllocTableGet), never a linear scan, so synthesizing a
// report costs O(1) per resolved site.
type AllocTable struct {
	sites []AllocSite
}

// Add registers a new allocation site and returns its ID.
func (t *AllocTable) Add(kind, fn, sym string, loc ir.Loc) int32 {
	id := int32(len(t.sites) + 1)
	t.sites = append(t.sites, AllocSite{
		ID: id, Kind: kind, Func: fn, Sym: sym, Loc: loc, LocStr: loc.String(),
	})
	return id
}

// Len returns the number of registered allocation sites.
func (t *AllocTable) Len() int {
	if t == nil {
		return 0
	}
	return len(t.sites)
}

// Get returns the allocation site with the given ID, or nil. The receiver
// may be nil (forensics enabled without a site registry).
func (t *AllocTable) Get(id int32) *AllocSite {
	if t == nil || id < 1 || int(id) > len(t.sites) {
		return nil
	}
	return &t.sites[id-1]
}

// Sites returns all registered allocation sites in ID order.
func (t *AllocTable) Sites() []AllocSite {
	if t == nil {
		return nil
	}
	return t.sites
}

// EventKind classifies flight-recorder events.
type EventKind uint8

const (
	// EvAlloc: an allocation was created (Site = allocation site, Addr =
	// base, Size = byte size).
	EvAlloc EventKind = iota
	// EvFree: a heap allocation was released (Addr = base).
	EvFree
	// EvCheck: a dereference/invariant/range check passed (Site = check
	// site, Addr = checked pointer).
	EvCheck
	// EvMetaStore: SoftBound stored bounds metadata (Site = metastore site,
	// Addr = the pointer slot written).
	EvMetaStore
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvAlloc:
		return "alloc"
	case EvFree:
		return "free"
	case EvCheck:
		return "check"
	case EvMetaStore:
		return "metastore"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// MarshalJSON serializes the kind by name.
func (k EventKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses the kind by name.
func (k *EventKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for _, c := range []EventKind{EvAlloc, EvFree, EvCheck, EvMetaStore} {
		if c.String() == s {
			*k = c
			return nil
		}
	}
	return fmt.Errorf("unknown event kind %q", s)
}

// Event is one flight-recorder entry. Instr is the VM's instruction counter
// at record time — an engine-neutral program counter that both the tree
// interpreter and the bytecode engine advance identically, which is what
// lets diff tests require byte-identical reports.
type Event struct {
	Instr uint64    `json:"instr"`
	Kind  EventKind `json:"kind"`
	// Site is the check site (EvCheck/EvMetaStore) or allocation site
	// (EvAlloc); 0 for EvFree and unattributed operations.
	Site int32  `json:"site"`
	Addr uint64 `json:"addr"`
	// Size is the allocation size for EvAlloc (0 otherwise).
	Size uint64 `json:"size,omitempty"`
}

// String renders the event as one report line.
func (e Event) String() string {
	switch e.Kind {
	case EvAlloc:
		return fmt.Sprintf("[%8d] alloc     site#%-4d addr=%#x size=%d", e.Instr, e.Site, e.Addr, e.Size)
	case EvFree:
		return fmt.Sprintf("[%8d] free      %10s addr=%#x", e.Instr, "", e.Addr)
	case EvMetaStore:
		return fmt.Sprintf("[%8d] metastore site#%-4d addr=%#x", e.Instr, e.Site, e.Addr)
	}
	return fmt.Sprintf("[%8d] check     site#%-4d ptr=%#x", e.Instr, e.Site, e.Addr)
}

// DefaultFlightSize is the ring capacity used when forensics is enabled
// without an explicit size.
const DefaultFlightSize = 16

// Flight is a fixed-size ring buffer of recent memory events — the flight
// recorder a violation report replays. Recording is O(1) and allocation-free
// after construction; all methods are nil-safe so callers can record
// unconditionally on the instrumented path.
type Flight struct {
	ring  []Event
	next  int
	total uint64
}

// NewFlight returns a flight recorder keeping the last n events (n < 1 uses
// DefaultFlightSize).
func NewFlight(n int) *Flight {
	if n < 1 {
		n = DefaultFlightSize
	}
	return &Flight{ring: make([]Event, n)}
}

// Record appends an event, evicting the oldest once the ring is full.
func (f *Flight) Record(e Event) {
	if f == nil {
		return
	}
	f.ring[f.next] = e
	f.next = (f.next + 1) % len(f.ring)
	f.total++
}

// Len returns the number of retained events (at most the ring capacity).
func (f *Flight) Len() int {
	if f == nil {
		return 0
	}
	if f.total < uint64(len(f.ring)) {
		return int(f.total)
	}
	return len(f.ring)
}

// Total returns the number of events ever recorded (including evicted ones).
func (f *Flight) Total() uint64 {
	if f == nil {
		return 0
	}
	return f.total
}

// Events returns the retained events, oldest first.
func (f *Flight) Events() []Event {
	n := f.Len()
	if n == 0 {
		return nil
	}
	out := make([]Event, 0, n)
	start := (f.next - n + len(f.ring)) % len(f.ring)
	for i := 0; i < n; i++ {
		out = append(out, f.ring[(start+i)%len(f.ring)])
	}
	return out
}

// AccessInfo describes the faulting access of a ViolationReport.
type AccessInfo struct {
	// Site is the check-site ID that fired (0 for wrapper checks, which are
	// placed by the runtime rather than the instrumentation).
	Site int32 `json:"site"`
	// Kind/Width/Func/Loc are resolved from the check-site registry when one
	// was supplied to the VM (empty otherwise).
	Kind  string `json:"kind,omitempty"`
	Width int    `json:"width,omitempty"`
	Func  string `json:"func,omitempty"`
	Loc   string `json:"loc,omitempty"`
	// Base/Bound are the bounds the check ran against (Bound is 0 for
	// Low-Fat checks, whose bound is implied by the slot size).
	Base  uint64 `json:"base"`
	Bound uint64 `json:"bound,omitempty"`
}

// AllocInfo is the allocation a violation report attributes the faulting
// pointer to.
type AllocInfo struct {
	// Site is the allocation-site ID (0 when the allocation could not be
	// resolved; the rest of the fields are then zero too).
	Site int32 `json:"site"`
	// Kind/Func/Sym/Loc are resolved from the allocation-site registry when
	// one was supplied to the VM.
	Kind string `json:"kind,omitempty"`
	Func string `json:"func,omitempty"`
	Sym  string `json:"sym,omitempty"`
	Loc  string `json:"loc,omitempty"`
	// Base/Size are the runtime placement of the allocation.
	Base uint64 `json:"base"`
	Size uint64 `json:"size"`
	// Slot is the low-fat slot size backing the allocation (0 when the
	// allocation is not low-fat).
	Slot uint64 `json:"slot,omitempty"`
	// Distance is the signed byte distance of the faulting pointer from the
	// object: negative below the base, positive past the last valid byte,
	// 0 when the pointer itself is inside the object (the access width then
	// spilled past the end).
	Distance int64 `json:"distance"`
}

// RegionState is one low-fat region's allocator state at violation time.
type RegionState struct {
	Index     int    `json:"index"`
	SlotSize  uint64 `json:"slotSize"`
	Next      uint64 `json:"next"`
	StackNext uint64 `json:"stackNext"`
	FreeSlots int    `json:"freeSlots"`
}

// ViolationReport is the structured diagnostic both engines synthesize when
// a check fires: the faulting access, the allocation the pointer belongs (or
// nearly belongs) to, a snapshot of the mechanism's runtime state, and the
// tail of the flight recorder.
type ViolationReport struct {
	// Mechanism/Kind/Ptr/Detail mirror the ViolationError the report rides.
	Mechanism string `json:"mechanism"`
	Kind      string `json:"kind"`
	Ptr       uint64 `json:"ptr"`
	Detail    string `json:"detail"`
	Access    AccessInfo `json:"access"`
	// Alloc is nil when no allocation could be attributed (e.g. SoftBound
	// null-bounds false positives, where the metadata miss *is* the story).
	Alloc *AllocInfo `json:"alloc,omitempty"`
	// ShadowDepth is the SoftBound shadow-stack nesting depth (SoftBound
	// violations only).
	ShadowDepth int `json:"shadowDepth,omitempty"`
	// Regions is the Low-Fat allocator snapshot: every region with at least
	// one allocation (Low-Fat violations only).
	Regions []RegionState `json:"regions,omitempty"`
	// Events is the flight-recorder tail, oldest first.
	Events []Event `json:"events"`
	// EventsDropped counts older events the ring had already evicted.
	EventsDropped uint64 `json:"eventsDropped,omitempty"`
}

// JSON serializes the report (indented, trailing newline), the format the
// campaign's -reports directory and CI artifacts use.
func (r *ViolationReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ParseReport deserializes a report produced by JSON (mi-prof -report).
func ParseReport(data []byte) (*ViolationReport, error) {
	var r ViolationReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Render formats the report for humans. The output is deterministic given
// identical VM state, so the differential tests require it byte-identical
// across engines.
func (r *ViolationReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== memory-safety violation: %s/%s ==\n", r.Mechanism, r.Kind)
	fmt.Fprintf(&sb, "pointer %#x: %s\n", r.Ptr, r.Detail)

	a := r.Access
	fmt.Fprintf(&sb, "check site #%d", a.Site)
	if a.Kind != "" {
		fmt.Fprintf(&sb, ": %s", a.Kind)
		if a.Width > 0 {
			fmt.Fprintf(&sb, "[w%d]", a.Width)
		}
		fmt.Fprintf(&sb, " in %s at %s", a.Func, a.Loc)
	} else if a.Site == 0 {
		sb.WriteString(" (runtime wrapper check)")
	}
	sb.WriteString("\n")
	if a.Bound != 0 || a.Base != 0 {
		fmt.Fprintf(&sb, "checked against base %#x", a.Base)
		if a.Bound != 0 {
			fmt.Fprintf(&sb, ", bound %#x", a.Bound)
		}
		sb.WriteString("\n")
	}

	if al := r.Alloc; al != nil {
		fmt.Fprintf(&sb, "allocation site #%d", al.Site)
		if al.Kind != "" {
			loc := al.Loc
			if loc == "" {
				loc = "?"
			}
			if al.Kind == "global" {
				fmt.Fprintf(&sb, ": global @%s", al.Sym)
			} else {
				fmt.Fprintf(&sb, ": %s in %s at %s", al.Kind, al.Func, loc)
			}
		}
		sb.WriteString("\n")
		fmt.Fprintf(&sb, "  base %#x size %d", al.Base, al.Size)
		if al.Slot != 0 {
			fmt.Fprintf(&sb, " (low-fat slot %d)", al.Slot)
		}
		switch {
		case al.Distance > 0:
			fmt.Fprintf(&sb, ", pointer %+d byte(s) past the object end", al.Distance)
		case al.Distance < 0:
			fmt.Fprintf(&sb, ", pointer %d byte(s) below the object base", al.Distance)
		default:
			sb.WriteString(", pointer inside the object (access width spills past the end)")
		}
		sb.WriteString("\n")
	} else {
		sb.WriteString("allocation: unresolved (no tracked allocation covers this pointer;\n" +
			"  for SoftBound this usually means missing or stale metadata, cf. Figure 7)\n")
	}

	if r.Mechanism == "softbound" {
		fmt.Fprintf(&sb, "shadow-stack depth: %d\n", r.ShadowDepth)
	}
	if len(r.Regions) > 0 {
		sb.WriteString("low-fat regions in use:\n")
		for _, reg := range r.Regions {
			fmt.Fprintf(&sb, "  region %2d: slot %10d next=%#x stackNext=%#x free=%d\n",
				reg.Index, reg.SlotSize, reg.Next, reg.StackNext, reg.FreeSlots)
		}
	}

	if len(r.Events) == 0 {
		sb.WriteString("flight recorder: no events\n")
	} else {
		fmt.Fprintf(&sb, "flight recorder (last %d event(s), %d older dropped):\n",
			len(r.Events), r.EventsDropped)
		for _, e := range r.Events {
			fmt.Fprintf(&sb, "  %s\n", e)
		}
	}
	return sb.String()
}
