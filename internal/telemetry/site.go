// Package telemetry provides the observability substrate for the
// reproduction: a registry of static check sites (so dynamic counts can be
// attributed to the C source line that caused a check), and a Chrome
// trace-event recorder for the compile/instrument/optimize pipeline.
//
// The package sits below core and opt (it depends only on ir), mirroring how
// instrumentation frameworks expose their per-rule instrumentation points:
// every check or metadata operation the instrumentation places is one Site,
// and both execution engines count executions per Site when profiling is
// enabled.
package telemetry

import "repro/internal/ir"

// Site is one static check site: a check or metadata operation placed by the
// instrumentation, with enough context to attribute dynamic cost back to the
// mechanism, kind and C source location.
type Site struct {
	// ID is the stable site identifier (1-based; 0 means "no site").
	ID int32 `json:"id"`
	// Kind classifies the operation: "check" (dereference check),
	// "invariant" (escape/shadow-stack check), or "metastore" (SoftBound
	// metadata store).
	Kind string `json:"kind"`
	// Mech is the mechanism that placed the site ("softbound", "lowfat").
	Mech string `json:"mech"`
	// Width is the access width in bytes for dereference checks (0 for
	// invariant and metadata sites).
	Width int `json:"width,omitempty"`
	// Func is the function the site was placed in.
	Func string `json:"func"`
	// Loc is the C source location of the instruction the site guards.
	Loc ir.Loc `json:"-"`
	// Status records what a check optimization did to the site: ""
	// (live), "eliminated" (removed as dominated by another check) or
	// "hoisted" (replaced by a preheader range check). Optimized-away
	// sites stay in the table with zero executions so telemetry can
	// attribute the effect of each optimization.
	Status string `json:"status,omitempty"`
	// By is the site that subsumed this one: the dominating check for
	// "eliminated", the range-check site for "hoisted" (0 if unknown).
	By int32 `json:"by,omitempty"`
}

// SiteTable assigns stable identifiers to check sites at instrumentation
// time. IDs are 1-based indices in placement order, so a module instrumented
// twice from the same clone gets identical tables.
type SiteTable struct {
	sites []Site
}

// Add registers a new site and returns its ID.
func (t *SiteTable) Add(kind, mech string, width int, fn string, loc ir.Loc) int32 {
	id := int32(len(t.sites) + 1)
	t.sites = append(t.sites, Site{ID: id, Kind: kind, Mech: mech, Width: width, Func: fn, Loc: loc})
	return id
}

// Len returns the number of registered sites.
func (t *SiteTable) Len() int {
	if t == nil {
		return 0
	}
	return len(t.sites)
}

// Get returns the site with the given ID, or nil.
func (t *SiteTable) Get(id int32) *Site {
	if t == nil || id < 1 || int(id) > len(t.sites) {
		return nil
	}
	return &t.sites[id-1]
}

// Sites returns all registered sites in ID order.
func (t *SiteTable) Sites() []Site {
	if t == nil {
		return nil
	}
	return t.sites
}
