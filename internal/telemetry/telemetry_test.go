package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ir"
)

func TestSiteTable(t *testing.T) {
	var tab SiteTable
	loc := ir.Loc{File: "a.c", Line: 3, Col: 7}
	id1 := tab.Add("check", "softbound", 8, "main", loc)
	id2 := tab.Add("metastore", "softbound", 0, "f", ir.Loc{})
	if id1 != 1 || id2 != 2 {
		t.Fatalf("IDs not 1-based sequential: %d, %d", id1, id2)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	s := tab.Get(id1)
	if s == nil || s.Kind != "check" || s.Width != 8 || s.Loc != loc {
		t.Fatalf("Get(%d) = %+v", id1, s)
	}
	for _, id := range []int32{0, -1, 3} {
		if tab.Get(id) != nil {
			t.Errorf("Get(%d) should be nil", id)
		}
	}
}

// A nil table (uninstrumented runs) and a nil trace (tracing off) must both
// be inert: every caller relies on not having to guard.
func TestNilReceivers(t *testing.T) {
	var tab *SiteTable
	if tab.Len() != 0 || tab.Get(1) != nil || tab.Sites() != nil {
		t.Error("nil SiteTable is not inert")
	}
	var tr *Trace
	if tr.Enabled() {
		t.Error("nil Trace reports enabled")
	}
	if tid := tr.Track("x"); tid != 0 {
		t.Errorf("nil Trace allocated track %d", tid)
	}
	sp := tr.Begin("span", 1)
	sp.Arg("k", "v")
	sp.End()
	if tr.Events() != nil {
		t.Error("nil Trace recorded events")
	}
}

func TestTraceChromeJSON(t *testing.T) {
	tr := NewTrace()
	tid := tr.Track("bench/config")
	sp := tr.Begin("instrument", tid)
	sp.Arg("checks_placed", 42)
	sp.End()

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteChromeJSON(path); err != nil {
		t.Fatalf("WriteChromeJSON: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got chromeTrace
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("output is not valid trace JSON: %v", err)
	}
	if len(got.TraceEvents) != 2 {
		t.Fatalf("got %d events, want metadata + span", len(got.TraceEvents))
	}
	meta, span := got.TraceEvents[0], got.TraceEvents[1]
	if meta.Ph != "M" || meta.Name != "thread_name" || meta.TID != tid {
		t.Errorf("metadata event: %+v", meta)
	}
	if span.Ph != "X" || span.Name != "instrument" || span.TID != tid {
		t.Errorf("span event: %+v", span)
	}
	if v, ok := span.Args["checks_placed"].(float64); !ok || v != 42 {
		t.Errorf("span args: %+v", span.Args)
	}
}
