package telemetry

import (
	"encoding/json"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// TraceEvent is one Chrome trace-event record ("X" complete events plus "M"
// metadata events), loadable in Perfetto / chrome://tracing.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Trace records pipeline span events. It is safe for concurrent use; a nil
// *Trace is a valid no-op recorder, so callers never need to guard their
// instrumentation points.
type Trace struct {
	mu     sync.Mutex
	events []TraceEvent
	start  time.Time
	tids   int64
}

// NewTrace returns an empty trace whose timestamps are relative to now.
func NewTrace() *Trace {
	return &Trace{start: time.Now()}
}

// Enabled reports whether spans are being recorded.
func (t *Trace) Enabled() bool { return t != nil }

// Track allocates a track (Chrome "thread") for one logical flow — e.g. one
// benchmark/config pipeline run — and names it with a metadata event.
func (t *Trace) Track(name string) int {
	if t == nil {
		return 0
	}
	tid := int(atomic.AddInt64(&t.tids, 1))
	t.mu.Lock()
	t.events = append(t.events, TraceEvent{
		Name: "thread_name", Ph: "M", PID: 1, TID: tid,
		Args: map[string]any{"name": name},
	})
	t.mu.Unlock()
	return tid
}

// Span is an in-progress span; End records it as a complete ("X") event.
type Span struct {
	t     *Trace
	name  string
	tid   int
	begin time.Time
	args  map[string]any
}

// Begin starts a span on the given track. Safe on a nil Trace (returns a nil
// Span whose methods are no-ops).
func (t *Trace) Begin(name string, tid int) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, tid: tid, begin: time.Now()}
}

// Arg attaches one argument to the span.
func (s *Span) Arg(key string, v any) {
	if s == nil {
		return
	}
	if s.args == nil {
		s.args = map[string]any{}
	}
	s.args[key] = v
}

// End records the span.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.t.mu.Lock()
	s.t.events = append(s.t.events, TraceEvent{
		Name: s.name, Ph: "X",
		TS:  float64(s.begin.Sub(s.t.start).Nanoseconds()) / 1e3,
		Dur: float64(end.Sub(s.begin).Nanoseconds()) / 1e3,
		PID: 1, TID: s.tid, Args: s.args,
	})
	s.t.mu.Unlock()
}

// Event records a complete span with explicit timing — for callers measuring
// an interval that began before they could call Begin (queue wait, which
// starts at Submit time in one goroutine and is observed at pickup in
// another). Safe on a nil Trace.
func (t *Trace) Event(name string, tid int, begin time.Time, d time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	ts := float64(begin.Sub(t.start).Nanoseconds()) / 1e3
	if ts < 0 {
		ts = 0
	}
	t.mu.Lock()
	t.events = append(t.events, TraceEvent{
		Name: name, Ph: "X",
		TS:  ts,
		Dur: float64(d.Nanoseconds()) / 1e3,
		PID: 1, TID: tid, Args: args,
	})
	t.mu.Unlock()
}

// chromeTrace is the JSON object format of the trace-event specification.
type chromeTrace struct {
	TraceEvents []TraceEvent `json:"traceEvents"`
}

// Events returns a snapshot of the recorded events.
func (t *Trace) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// WriteChromeJSON writes the trace in Chrome trace-event JSON object format,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func (t *Trace) WriteChromeJSON(path string) error {
	events := t.Events()
	if events == nil {
		events = []TraceEvent{}
	}
	data, err := json.MarshalIndent(chromeTrace{TraceEvents: events}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
