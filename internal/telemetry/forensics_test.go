package telemetry

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ir"
)

func TestAllocTable(t *testing.T) {
	var tab AllocTable
	loc := ir.Loc{File: "a.c", Line: 3, Col: 7}
	id1 := tab.Add("alloca", "main", "", loc)
	id2 := tab.Add("global", "", "buf", ir.Loc{})
	id3 := tab.Add("heap", "f", "", loc)
	if id1 != 1 || id2 != 2 || id3 != 3 {
		t.Fatalf("IDs not 1-based sequential: %d, %d, %d", id1, id2, id3)
	}
	if tab.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tab.Len())
	}
	s := tab.Get(id1)
	if s == nil || s.Kind != "alloca" || s.Func != "main" || s.Loc != loc {
		t.Fatalf("Get(%d) = %+v", id1, s)
	}
	if g := tab.Get(id2); g == nil || g.Sym != "buf" {
		t.Fatalf("Get(%d) = %+v", id2, g)
	}
	for _, id := range []int32{0, -1, 4} {
		if tab.Get(id) != nil {
			t.Errorf("Get(%d) should be nil", id)
		}
	}
}

// A nil allocation table and a nil flight recorder must both be inert: the
// VM's recorded paths call them unconditionally.
func TestForensicsNilReceivers(t *testing.T) {
	var tab *AllocTable
	if tab.Len() != 0 || tab.Get(1) != nil || tab.Sites() != nil {
		t.Error("nil AllocTable is not inert")
	}
	var site *AllocSite
	if site.Describe() != "unknown" {
		t.Errorf("nil AllocSite describes as %q", site.Describe())
	}
	var f *Flight
	f.Record(Event{Kind: EvAlloc})
	if f.Len() != 0 || f.Total() != 0 || f.Events() != nil {
		t.Error("nil Flight is not inert")
	}
}

// TestFlightWraparound drives the ring past its capacity and checks the
// recorder keeps exactly the newest events in order and counts the evicted
// ones.
func TestFlightWraparound(t *testing.T) {
	f := NewFlight(4)
	if f.Len() != 0 || f.Events() != nil {
		t.Fatalf("fresh recorder not empty: len=%d", f.Len())
	}
	for i := 0; i < 3; i++ {
		f.Record(Event{Instr: uint64(i), Kind: EvCheck, Addr: uint64(0x1000 + i)})
	}
	if f.Len() != 3 || f.Total() != 3 {
		t.Fatalf("before wrap: len=%d total=%d", f.Len(), f.Total())
	}
	for i := 3; i < 11; i++ {
		f.Record(Event{Instr: uint64(i), Kind: EvCheck, Addr: uint64(0x1000 + i)})
	}
	if f.Len() != 4 {
		t.Fatalf("after wrap: len=%d, want capacity 4", f.Len())
	}
	if f.Total() != 11 {
		t.Fatalf("after wrap: total=%d, want 11", f.Total())
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("Events() returned %d events", len(evs))
	}
	for i, e := range evs {
		want := uint64(7 + i) // events 7..10 survive, oldest first
		if e.Instr != want {
			t.Errorf("event %d: instr=%d, want %d", i, e.Instr, want)
		}
	}
	if dropped := f.Total() - uint64(f.Len()); dropped != 7 {
		t.Errorf("dropped=%d, want 7", dropped)
	}
}

func TestFlightDefaultSize(t *testing.T) {
	for _, n := range []int{0, -5} {
		f := NewFlight(n)
		for i := 0; i < DefaultFlightSize+3; i++ {
			f.Record(Event{Instr: uint64(i)})
		}
		if f.Len() != DefaultFlightSize {
			t.Errorf("NewFlight(%d): len=%d, want %d", n, f.Len(), DefaultFlightSize)
		}
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Instr: 7, Kind: EvAlloc, Site: 2, Addr: 0x10, Size: 32}, "alloc"},
		{Event{Instr: 8, Kind: EvFree, Addr: 0x10}, "free"},
		{Event{Instr: 9, Kind: EvCheck, Site: 3, Addr: 0x14}, "check"},
		{Event{Instr: 10, Kind: EvMetaStore, Site: 4, Addr: 0x18}, "metastore"},
	}
	for _, c := range cases {
		if got := c.e.String(); !strings.Contains(got, c.want) {
			t.Errorf("%+v renders as %q, missing %q", c.e, got, c.want)
		}
	}
	if EvAlloc.String() != "alloc" || EventKind(99).String() != "event(99)" {
		t.Error("EventKind.String naming broken")
	}
}

// TestReportRoundtrip serializes a fully-populated report and checks the
// parse-back renders identically — the contract behind mi-prof -report.
func TestReportRoundtrip(t *testing.T) {
	rep := &ViolationReport{
		Mechanism: "lowfat",
		Kind:      "deref",
		Ptr:       0x800000010,
		Detail:    "access of 4 bytes outside object at base 0x800000000 (size 16)",
		Access:    AccessInfo{Site: 5, Kind: "check", Width: 4, Func: "main", Loc: "a.c:9:3", Base: 0x800000000},
		Alloc: &AllocInfo{
			Site: 2, Kind: "heap", Func: "main", Loc: "a.c:4:20",
			Base: 0x800000000, Size: 16, Slot: 16, Distance: 1,
		},
		Regions: []RegionState{{Index: 1, SlotSize: 16, Next: 0x800000020, StackNext: 0, FreeSlots: 3}},
		Events: []Event{
			{Instr: 3, Kind: EvAlloc, Site: 2, Addr: 0x800000000, Size: 16},
			{Instr: 9, Kind: EvCheck, Site: 5, Addr: 0x800000000},
		},
		EventsDropped: 2,
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if data[len(data)-1] != '\n' {
		t.Error("JSON output missing trailing newline")
	}
	back, err := ParseReport(data)
	if err != nil {
		t.Fatalf("ParseReport: %v", err)
	}
	if back.Render() != rep.Render() {
		t.Errorf("roundtrip changed the rendering:\n--- before ---\n%s--- after ---\n%s",
			rep.Render(), back.Render())
	}
	if _, err := ParseReport([]byte("{broken")); err == nil {
		t.Error("ParseReport accepted malformed input")
	}
}

// TestRenderUnresolved covers the SoftBound stale-metadata shape: no
// allocation could be attributed, and the report says so rather than
// inventing one.
func TestRenderUnresolved(t *testing.T) {
	rep := &ViolationReport{
		Mechanism: "softbound",
		Kind:      "deref",
		Ptr:       0xdead,
		Detail:    "access of 8 bytes outside bounds [0x0, 0x0)",
		Access:    AccessInfo{Site: 1, Kind: "check", Width: 8, Func: "main", Loc: "a.c:3:1"},
	}
	out := rep.Render()
	for _, want := range []string{"allocation: unresolved", "Figure 7", "shadow-stack depth: 0", "flight recorder: no events"} {
		if !strings.Contains(out, want) {
			t.Errorf("unresolved rendering missing %q:\n%s", want, out)
		}
	}
}

// The report machinery resolves sites on the violation path, but the tables
// are also consulted per flight event when rendering: both lookups must be
// O(1) index operations, not scans. A scan over 100k sites would show up here
// as microseconds per op instead of sub-nanoseconds.
func BenchmarkSiteTableGet(b *testing.B) {
	var tab SiteTable
	for i := 0; i < 100000; i++ {
		tab.Add("check", "softbound", 8, fmt.Sprintf("f%d", i), ir.Loc{File: "a.c", Line: int32(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tab.Get(int32(i%100000+1)) == nil {
			b.Fatal("lookup failed")
		}
	}
}

func BenchmarkAllocTableGet(b *testing.B) {
	var tab AllocTable
	for i := 0; i < 100000; i++ {
		tab.Add("heap", fmt.Sprintf("f%d", i), "", ir.Loc{File: "a.c", Line: int32(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tab.Get(int32(i%100000+1)) == nil {
			b.Fatal("lookup failed")
		}
	}
}
