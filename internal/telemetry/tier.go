package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// TierRow is one function's execution-tier attribution under the compiler
// engine: how many instructions it retired in each acceleration tier, and how
// often it crossed the native-tier boundary.
type TierRow struct {
	Func string `json:"func"`
	// QuickInstrs/FusedInstrs count instructions retired inside fused
	// regions, attributed by the entry unit's kind (superinstruction segment
	// vs trace-fused loop).
	QuickInstrs uint64 `json:"quick_instrs,omitempty"`
	FusedInstrs uint64 `json:"fused_instrs,omitempty"`
	// NativeInstrs counts instructions retired by the function's generated
	// native code, gate intervals excluded.
	NativeInstrs uint64 `json:"native_instrs,omitempty"`
	// NativeEntries/NativeBails count transitions into native code and
	// bail-outs back to the interpreter; GateOps counts one-op gate round
	// trips (ops the native code defers to the interpreter).
	NativeEntries uint64 `json:"native_entries,omitempty"`
	NativeBails   uint64 `json:"native_bails,omitempty"`
	GateOps       uint64 `json:"gate_ops,omitempty"`
}

// TierTable is the compiler tier's attribution telemetry: where retired
// instructions actually executed (quickened, fused, native, or plain
// interpreted), per function, plus the native tier's build accounting and
// the reasons it fell back to the fused interpreter. The counters are
// process-wide and cumulative, so the table is stripped by canonical report
// diffs the same way wall-clock times are.
type TierTable struct {
	// TotalInstrs is the total instruction count retired by compiler-tier
	// engines; InterpretedInstrs is the residual not claimed by any faster
	// tier (generic dispatch, gated ops, functions below the fusion
	// thresholds).
	TotalInstrs       uint64 `json:"total_instrs"`
	InterpretedInstrs uint64 `json:"interpreted_instrs"`
	// Native plugin build accounting: compilations run, content-addressed
	// cache hits, failed builds/loads, and cumulative go-build wall time.
	NativeBuilds    uint64  `json:"native_builds,omitempty"`
	NativeCacheHits uint64  `json:"native_cache_hits,omitempty"`
	NativeFailures  uint64  `json:"native_failures,omitempty"`
	BuildWallMS     float64 `json:"build_wall_ms,omitempty"`
	// Fallbacks counts, per reason, the programs that wanted the native tier
	// and did not get it: "build_error", "plugin_load", "MI_NATIVE=0",
	// "policy" (forensics recording stays interpreter-only).
	Fallbacks map[string]uint64 `json:"fallbacks,omitempty"`
	// Rows is the per-function attribution, sorted by function name.
	Rows []TierRow `json:"rows,omitempty"`
}

// TieredInstrs sums the instructions claimed by the accelerated tiers.
func (t *TierTable) TieredInstrs() (quick, fused, native uint64) {
	for _, r := range t.Rows {
		quick += r.QuickInstrs
		fused += r.FusedInstrs
		native += r.NativeInstrs
	}
	return
}

// Render formats the table as text for mi-prof -tiers: an overall tier mix
// line, the native build ledger, fallback reasons, and the per-function rows
// sorted hottest first.
func (t *TierTable) Render() string {
	var sb strings.Builder
	quick, fused, native := t.TieredInstrs()
	fmt.Fprintf(&sb, "Execution tier attribution: %d instrs total\n", t.TotalInstrs)
	fmt.Fprintf(&sb, "  quickened %d (%.1f%%)  fused %d (%.1f%%)  native %d (%.1f%%)  interpreted %d (%.1f%%)\n",
		quick, tierPct(quick, t.TotalInstrs),
		fused, tierPct(fused, t.TotalInstrs),
		native, tierPct(native, t.TotalInstrs),
		t.InterpretedInstrs, tierPct(t.InterpretedInstrs, t.TotalInstrs))
	fmt.Fprintf(&sb, "  native plugins: %d built (%.1f ms wall), %d cache hits, %d failures\n",
		t.NativeBuilds, t.BuildWallMS, t.NativeCacheHits, t.NativeFailures)
	if len(t.Fallbacks) > 0 {
		reasons := make([]string, 0, len(t.Fallbacks))
		for r := range t.Fallbacks {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		parts := make([]string, 0, len(reasons))
		for _, r := range reasons {
			if n := t.Fallbacks[r]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", r, n))
			}
		}
		if len(parts) > 0 {
			fmt.Fprintf(&sb, "  fallbacks: %s\n", strings.Join(parts, "  "))
		}
	}
	if len(t.Rows) == 0 {
		sb.WriteString("no tiered execution recorded (engine was not -engine=compiler?)\n")
		return sb.String()
	}
	rows := append([]TierRow(nil), t.Rows...)
	sort.Slice(rows, func(i, j int) bool {
		a := rows[i].QuickInstrs + rows[i].FusedInstrs + rows[i].NativeInstrs
		b := rows[j].QuickInstrs + rows[j].FusedInstrs + rows[j].NativeInstrs
		if a != b {
			return a > b
		}
		return rows[i].Func < rows[j].Func
	})
	fmt.Fprintf(&sb, "  %-20s  %14s  %14s  %14s  %8s  %6s  %8s\n",
		"func", "quick", "fused", "native", "entries", "bails", "gates")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-20s  %14d  %14d  %14d  %8d  %6d  %8d\n",
			r.Func, r.QuickInstrs, r.FusedInstrs, r.NativeInstrs,
			r.NativeEntries, r.NativeBails, r.GateOps)
	}
	return sb.String()
}

func tierPct(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
