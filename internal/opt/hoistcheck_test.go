package opt_test

import (
	"errors"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/vm"
)

// hoistProg is loop-heavy and hoist-friendly: affine accesses in counted
// loops (upward and downward), no calls inside the loops, invariant bounds.
const hoistProg = `
int a[100];
int b[100];

int main() {
    long i;
    long s = 0;
    for (i = 0; i < 100; i++) {
        a[i] = (int)i;
    }
    for (i = 99; i >= 0; i--) {
        b[i] = a[i] * 2;
    }
    for (i = 0; i < 100; i++) {
        s += b[i];
    }
    printf("%ld\n", s);
    return 0;
}`

// instrumentProg compiles src, instruments it with the paper configuration
// of mech (plus hoisting if requested) at the paper's pipeline extension
// point, and returns the optimized module with its instrumentation stats.
func instrumentProg(t *testing.T, src string, mech core.Mech, hoist bool) (*ir.Module, *core.Stats) {
	t.Helper()
	m, err := cc.Compile("t", cc.Source{Name: "t.c", Code: src})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cfg := core.PaperSoftBound()
	if mech == core.MechLowFat {
		cfg = core.PaperLowFat()
	}
	cfg.OptDominance = true
	cfg.OptHoist = hoist
	var stats *core.Stats
	opt.RunPipeline(m, opt.EPVectorizerStart, func(mod *ir.Module) {
		s, ierr := core.Instrument(mod, cfg)
		if ierr != nil {
			t.Fatalf("instrument: %v", ierr)
		}
		stats = s
	}, opt.PipelineOptions{Level: 3})
	verifyAll(t, m)
	return m, stats
}

// runInstrumented executes an instrumented module under mech's VM options.
func runInstrumented(t *testing.T, m *ir.Module, mech core.Mech) (string, vm.Stats, error) {
	t.Helper()
	vopts := vm.Options{Mechanism: vm.MechSoftBound}
	if mech == core.MechLowFat {
		vopts = vm.Options{Mechanism: vm.MechLowFat,
			LowFatHeap: true, LowFatStack: true, LowFatGlobals: true}
	}
	machine, err := vm.New(m, vopts)
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := machine.Run()
	return machine.Output(), machine.Stats, rerr
}

var hoistMechs = []core.Mech{core.MechSoftBound, core.MechLowFat}

// TestHoistChecksReducesDynamicChecks verifies the end-to-end effect on both
// mechanisms: hoisting fires, the program's output is unchanged, and the
// dynamic per-iteration check count drops while range checks appear.
func TestHoistChecksReducesDynamicChecks(t *testing.T) {
	for _, mech := range hoistMechs {
		t.Run(mech.String(), func(t *testing.T) {
			mOff, _ := instrumentProg(t, hoistProg, mech, false)
			outOff, stOff, errOff := runInstrumented(t, mOff, mech)
			if errOff != nil {
				t.Fatalf("hoist-off run failed: %v", errOff)
			}
			mOn, stats := instrumentProg(t, hoistProg, mech, true)
			outOn, stOn, errOn := runInstrumented(t, mOn, mech)
			if errOn != nil {
				t.Fatalf("hoist-on run failed: %v", errOn)
			}
			if outOn != outOff {
				t.Errorf("hoisting changed output: off=%q on=%q", outOff, outOn)
			}
			if stats.Opt.ChecksHoisted == 0 {
				t.Fatalf("no checks hoisted:\n%s", ir.FormatModule(mOn))
			}
			if stats.Opt.RangeChecksPlaced != stats.Opt.ChecksHoisted {
				t.Errorf("hoisted %d checks but placed %d range checks",
					stats.Opt.ChecksHoisted, stats.Opt.RangeChecksPlaced)
			}
			if stOn.Checks >= stOff.Checks {
				t.Errorf("dynamic checks did not drop: off=%d on=%d", stOff.Checks, stOn.Checks)
			}
			if stOn.RangeChecks == 0 {
				t.Error("no range checks executed")
			}
			if stOn.RangeChecks > stOn.Checks+stOff.Checks {
				t.Errorf("implausible range-check count %d", stOn.RangeChecks)
			}
		})
	}
}

// TestHoistZeroTripLoop: the bound comes from main's argc (0 under the VM),
// so the loop body never runs and the rematerialized endpoint pointers are
// out of bounds. The range check must pass via its loop-entry condition —
// a report here would be a false positive on a correct program.
func TestHoistZeroTripLoop(t *testing.T) {
	const src = `
int a[10];

int main(int argc, char **argv) {
    long i;
    for (i = 0; i < argc - 1; i++) {
        a[i] = 1;
    }
    printf("%d\n", a[0]);
    return 0;
}`
	for _, mech := range hoistMechs {
		t.Run(mech.String(), func(t *testing.T) {
			m, stats := instrumentProg(t, src, mech, true)
			out, st, err := runInstrumented(t, m, mech)
			if err != nil {
				t.Fatalf("zero-trip loop reported a violation (false positive): %v", err)
			}
			if out != "0\n" {
				t.Errorf("output = %q, want %q", out, "0\n")
			}
			if stats.Opt.ChecksHoisted == 0 {
				t.Fatalf("loop was not hoisted; test is vacuous:\n%s", ir.FormatModule(m))
			}
			if st.RangeChecks == 0 {
				t.Error("hoisted range check never executed")
			}
		})
	}
}

// TestHoistStillDetectsOverflow: a loop running well past the array must
// still be reported, with the same mechanism and verdict kind as the
// unhoisted per-iteration check (the widened check may fire earlier). The
// overrun is 2x the array so it escapes Low-Fat's rounded allocation size,
// not just the precise SoftBound bounds.
func TestHoistStillDetectsOverflow(t *testing.T) {
	const src = `
int a[100];

int main() {
    long i;
    for (i = 0; i < 200; i++) {
        a[i] = (int)i;
    }
    return a[0];
}`
	for _, mech := range hoistMechs {
		t.Run(mech.String(), func(t *testing.T) {
			verdict := func(hoist bool) *vm.ViolationError {
				m, stats := instrumentProg(t, src, mech, hoist)
				if hoist && stats.Opt.ChecksHoisted == 0 {
					t.Fatalf("overflowing loop was not hoisted; test is vacuous:\n%s", ir.FormatModule(m))
				}
				_, _, err := runInstrumented(t, m, mech)
				var ve *vm.ViolationError
				if !errors.As(err, &ve) {
					t.Fatalf("hoist=%t: want a violation, got %v", hoist, err)
				}
				return ve
			}
			off, on := verdict(false), verdict(true)
			if on.Mechanism != off.Mechanism || on.Kind != off.Kind {
				t.Errorf("verdict class changed: off=%s/%s on=%s/%s",
					off.Mechanism, off.Kind, on.Mechanism, on.Kind)
			}
		})
	}
}
