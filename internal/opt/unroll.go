package opt

import (
	"repro/internal/analysis"
	"repro/internal/ir"
)

// Unroll fully unrolls innermost counted loops with a small constant trip
// count and a straight-line body. Together with the block merging of
// SimplifyCFG and the store-to-load forwarding of LoadElim, unrolling is a
// major reducer of memory accesses in the -O3 pipeline — and exactly the
// kind of loop transformation that inserted safety checks block (the check
// call sits in the body, so LoadElim cannot merge the unrolled accesses and
// the check count stays multiplied): Section 5.5's extension-point gap is
// largely made of this effect.
type Unroll struct {
	// MaxTrip bounds the constant trip count (default 16).
	MaxTrip int
	// MaxGrowth bounds body-instructions * trip count (default 320).
	MaxGrowth int
	// Unrolled counts the loops removed.
	Unrolled int
}

// Name returns the pass name.
func (*Unroll) Name() string { return "unroll" }

// Run executes the pass.
func (p *Unroll) Run(f *ir.Func) bool {
	if p.MaxTrip == 0 {
		p.MaxTrip = 24
	}
	if p.MaxGrowth == 0 {
		p.MaxGrowth = 480
	}
	changed := false
	// Unrolling invalidates the loop analysis; iterate a few rounds so
	// newly-innermost loops get a chance too.
	for round := 0; round < 3; round++ {
		dt := analysis.NewDomTree(f)
		li := analysis.FindLoops(f, dt)
		done := false
		for _, loop := range li.Loops {
			if p.tryUnroll(f, loop) {
				changed = true
				done = true
				break // analyses are stale; restart
			}
		}
		if !done {
			return changed
		}
	}
	return changed
}

// loopShape captures the recognized counted-loop pattern:
//
//	pre:    ... br header
//	header: i = phi [init, pre] [next, latch]; (phis...)
//	        c = icmp pred i, limit
//	        br c, body1, exit      (or inverted)
//	body1 -> body2 -> ... -> latch -> header   (linear chain)
type loopShape struct {
	pre, header, exit *ir.Block
	chain             []*ir.Block // body blocks in order, last is the latch
	condPhi           *ir.Instr
	trip              int
}

func (p *Unroll) tryUnroll(f *ir.Func, loop *analysis.Loop) bool {
	shape, ok := p.matchLoop(loop)
	if !ok {
		return false
	}
	size := 0
	for _, b := range shape.chain {
		size += len(b.Instrs)
		for _, in := range b.Instrs {
			// Unrolling loops with calls multiplies code size for little
			// gain; LLVM's heuristics behave the same. This also means an
			// instrumented loop (whose body contains check calls) stays
			// rolled — part of the Section 5.5 effect.
			if in.Op == ir.OpCall {
				return false
			}
		}
	}
	size += len(shape.header.Instrs)
	if size*shape.trip > p.MaxGrowth {
		return false
	}
	p.expand(f, shape)
	p.Unrolled++
	return true
}

// matchLoop recognizes the counted-loop pattern and computes the trip count.
func (p *Unroll) matchLoop(loop *analysis.Loop) (*loopShape, bool) {
	h := loop.Header
	term := h.Terminator()
	if term == nil || term.Op != ir.OpCondBr {
		return nil, false
	}
	cond, ok := term.Operands[0].(*ir.Instr)
	if !ok || cond.Op != ir.OpICmp || cond.Block != h {
		return nil, false
	}
	var bodyFirst, exit *ir.Block
	if loop.Contains(term.Succs[0]) && !loop.Contains(term.Succs[1]) {
		bodyFirst, exit = term.Succs[0], term.Succs[1]
	} else if loop.Contains(term.Succs[1]) && !loop.Contains(term.Succs[0]) {
		// Inverted: loop continues when the condition is false. Supported
		// by evaluating the negated predicate during trip counting.
		bodyFirst, exit = term.Succs[1], term.Succs[0]
	} else {
		return nil, false
	}
	if exit == h || len(exit.Phis()) > 0 {
		return nil, false
	}

	// The body must be a linear chain back to the header.
	var chain []*ir.Block
	cur := bodyFirst
	for {
		if cur == h || !loop.Contains(cur) || len(cur.Phis()) > 0 {
			return nil, false
		}
		chain = append(chain, cur)
		t := cur.Terminator()
		if t == nil || t.Op != ir.OpBr {
			return nil, false
		}
		next := t.Succs[0]
		if next == h {
			break
		}
		cur = next
		if len(chain) > 8 {
			return nil, false
		}
	}
	latch := chain[len(chain)-1]

	// Preheader: unique predecessor outside the loop.
	var pre *ir.Block
	for _, pb := range ir.Preds(h) {
		if loop.Contains(pb) {
			if pb != latch {
				return nil, false // multiple latches
			}
			continue
		}
		if pre != nil {
			return nil, false
		}
		pre = pb
	}
	if pre == nil {
		return nil, false
	}

	// The condition compares a header phi against a constant; the phi
	// advances by a constant each iteration.
	phi, ok := cond.Operands[0].(*ir.Instr)
	limit, lok := cond.Operands[1].(*ir.ConstInt)
	if !ok || !lok || phi.Op != ir.OpPhi || phi.Block != h {
		return nil, false
	}
	init, iok := phi.PhiIncomingFor(pre).(*ir.ConstInt)
	next, nok := phi.PhiIncomingFor(latch).(*ir.Instr)
	if !iok || !nok || next.Op != ir.OpAdd && next.Op != ir.OpSub {
		return nil, false
	}
	var step *ir.ConstInt
	if next.Operands[0] == phi {
		step, ok = next.Operands[1].(*ir.ConstInt)
	} else if next.Operands[1] == phi && next.Op == ir.OpAdd {
		step, ok = next.Operands[0].(*ir.ConstInt)
	} else {
		return nil, false
	}
	if !ok || step.Unsigned() == 0 {
		return nil, false
	}

	// Simulate to find the constant trip count.
	bits := phi.Ty.Bits
	stepV := step.Signed()
	if next.Op == ir.OpSub {
		stepV = -stepV
	}
	continueWhen := true
	if bodyFirst == term.Succs[1] {
		continueWhen = false
	}
	_ = bits
	v := ir.NewInt(phi.Ty, init.Signed())
	trips := 0
	for trips <= p.MaxTrip {
		taken := evalIntPred(cond.Pred, v, limit)
		if taken != continueWhen {
			break
		}
		trips++
		v = ir.NewInt(phi.Ty, v.Signed()+stepV)
	}
	if trips == 0 || trips > p.MaxTrip {
		return nil, false
	}

	// All header phis must have incomings exactly from pre and latch.
	for _, ph := range h.Phis() {
		if len(ph.Operands) != 2 || ph.PhiIncomingFor(pre) == nil || ph.PhiIncomingFor(latch) == nil {
			return nil, false
		}
	}

	return &loopShape{pre: pre, header: h, exit: exit, chain: chain, condPhi: phi, trip: trips}, true
}

// expand replaces the loop with trip straight-line copies of
// header-tail + body chain.
func (p *Unroll) expand(f *ir.Func, s *loopShape) {
	phis := s.header.Phis()
	latch := s.chain[len(s.chain)-1]

	// cur maps each header phi (and loop instruction of the current
	// iteration) to its value in the iteration being emitted.
	cur := make(map[ir.Value]ir.Value)
	for _, ph := range phis {
		cur[ph] = ph.PhiIncomingFor(s.pre)
	}

	mapVal := func(v ir.Value) ir.Value {
		if nv, ok := cur[v]; ok {
			return nv
		}
		return v
	}

	// Emission target: start in the preheader (replacing its branch), and
	// append everything into one long block, finally branching to exit.
	emitB := s.pre
	emitB.Remove(emitB.Terminator())

	cloneInto := func(src *ir.Block) {
		for _, in := range src.Instrs {
			if in.Op == ir.OpPhi {
				continue
			}
			if in.IsTerminator() {
				continue
			}
			ni := &ir.Instr{
				Op: in.Op, Ty: in.Ty, Pred: in.Pred, AllocTy: in.AllocTy,
				SrcTy: in.SrcTy, Name: in.Name, Tag: in.Tag,
				Loc: in.Loc, Site: in.Site,
			}
			f.AdoptInstr(ni)
			for _, op := range in.Operands {
				ni.Operands = append(ni.Operands, mapVal(op))
			}
			emitB.Append(ni)
			cur[in] = ni
		}
	}

	for it := 0; it < s.trip; it++ {
		// Header tail (address computations etc. between phis and the
		// terminator; the icmp itself becomes dead and DCE removes it).
		cloneInto(s.header)
		for _, b := range s.chain {
			cloneInto(b)
		}
		// Advance phi values to the latch incomings of this iteration.
		nextVals := make([]ir.Value, len(phis))
		for i, ph := range phis {
			nextVals[i] = mapVal(ph.PhiIncomingFor(latch))
		}
		for i, ph := range phis {
			cur[ph] = nextVals[i]
		}
	}

	// Final header-tail evaluation feeds exit users of header phis and of
	// header-tail instructions (the header executes once more to decide
	// exit; its non-phi values may be used in the exit block).
	cloneInto(s.header)

	br := &ir.Instr{Op: ir.OpBr, Ty: ir.Void, Succs: []*ir.Block{s.exit}}
	f.AdoptInstr(br)
	emitB.Append(br)

	// Replace external uses of loop values with their final copies.
	inLoop := make(map[*ir.Instr]bool)
	for _, b := range append([]*ir.Block{s.header}, s.chain...) {
		for _, in := range b.Instrs {
			inLoop[in] = true
		}
	}
	f.Instrs(func(user *ir.Instr) bool {
		if inLoop[user] {
			return true
		}
		for i, op := range user.Operands {
			def, ok := op.(*ir.Instr)
			if !ok || !inLoop[def] {
				continue
			}
			if fin, ok := cur[def]; ok {
				user.Operands[i] = fin
			}
		}
		return true
	})

	// Delete the old loop blocks.
	for _, b := range append([]*ir.Block{s.header}, s.chain...) {
		b.Instrs = nil
		f.RemoveBlock(b)
	}
}
