package opt

import (
	"repro/internal/analysis"
	"repro/internal/ir"
)

// SimplifyCFG removes unreachable blocks, merges blocks with a single
// unconditional-branch predecessor, and threads branches through empty
// forwarding blocks.
type SimplifyCFG struct{}

// Name returns the pass name.
func (SimplifyCFG) Name() string { return "simplifycfg" }

// Run executes the pass.
func (SimplifyCFG) Run(f *ir.Func) bool {
	if f.Entry() == nil {
		return false
	}
	changed := false
	for {
		c := removeUnreachable(f)
		c = mergeBlocks(f) || c
		c = threadEmptyBlocks(f) || c
		if !c {
			return changed
		}
		changed = true
	}
}

func removeUnreachable(f *ir.Func) bool {
	reachable := make(map[*ir.Block]bool)
	for _, b := range analysis.ReversePostOrder(f) {
		reachable[b] = true
	}
	var dead []*ir.Block
	for _, b := range f.Blocks {
		if !reachable[b] {
			dead = append(dead, b)
		}
	}
	if len(dead) == 0 {
		return false
	}
	for _, b := range dead {
		// Remove phi edges from dead predecessors.
		for _, s := range b.Succs() {
			if reachable[s] {
				removePhiEdge(s, b)
			}
		}
	}
	for _, b := range dead {
		f.RemoveBlock(b)
	}
	return true
}

// mergeBlocks merges b into its single predecessor p when p ends in an
// unconditional branch to b and b is p's only successor target.
func mergeBlocks(f *ir.Func) bool {
	changed := false
	for {
		merged := false
		for _, b := range f.Blocks {
			if b == f.Entry() {
				continue
			}
			preds := ir.Preds(b)
			if len(preds) != 1 {
				continue
			}
			p := preds[0]
			t := p.Terminator()
			if t == nil || t.Op != ir.OpBr || t.Succs[0] != b {
				continue
			}
			if len(b.Phis()) > 0 {
				// Single-pred phis are trivial; fold them first.
				for _, phi := range b.Phis() {
					ir.ReplaceAllUses(f, phi, phi.Operands[0])
					b.Remove(phi)
				}
			}
			// Splice b's instructions after removing p's branch.
			p.Remove(t)
			for _, in := range b.Instrs {
				in.Block = p
				p.Instrs = append(p.Instrs, in)
			}
			b.Instrs = nil
			// Phis in b's successors must refer to p now.
			for _, s := range p.Succs() {
				for _, phi := range s.Phis() {
					for i, pb := range phi.PhiBlocks {
						if pb == b {
							phi.PhiBlocks[i] = p
						}
					}
				}
			}
			f.RemoveBlock(b)
			merged = true
			changed = true
			break
		}
		if !merged {
			return changed
		}
	}
}

// threadEmptyBlocks redirects branches that target a block containing only
// an unconditional branch, when the final target has no phis that would need
// disambiguation.
func threadEmptyBlocks(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		if b == f.Entry() || len(b.Instrs) != 1 {
			continue
		}
		t := b.Terminator()
		if t == nil || t.Op != ir.OpBr {
			continue
		}
		target := t.Succs[0]
		if target == b || len(target.Phis()) > 0 {
			continue
		}
		for _, p := range ir.Preds(b) {
			pt := p.Terminator()
			already := false
			for _, s := range pt.Succs {
				if s == target {
					already = true
				}
			}
			if already {
				continue // avoid creating duplicate edges into phi-less blocks is fine, but keep it simple
			}
			for i, s := range pt.Succs {
				if s == b {
					pt.Succs[i] = target
					changed = true
				}
			}
		}
	}
	if changed {
		removeUnreachable(f)
	}
	return changed
}
