package opt

import "repro/internal/ir"

// DCE removes instructions whose results are unused and that have no side
// effects, including unused allocas and unused calls to pure functions
// (e.g. SoftBound metadata loads). Checks and metadata stores are calls to
// non-pure functions and are never removed.
type DCE struct{}

// Name returns the pass name.
func (DCE) Name() string { return "dce" }

// Run executes the pass.
func (DCE) Run(f *ir.Func) bool {
	changed := false
	for {
		users := ir.ComputeUsers(f)
		var dead []*ir.Instr
		f.Instrs(func(in *ir.Instr) bool {
			if in.IsTerminator() {
				return true
			}
			if users.HasUses(in) {
				return true
			}
			if in.Op == ir.OpAlloca {
				dead = append(dead, in)
				return true
			}
			if !in.HasSideEffects() {
				dead = append(dead, in)
			}
			return true
		})
		if len(dead) == 0 {
			return changed
		}
		for _, in := range dead {
			in.Block.Remove(in)
		}
		changed = true
	}
}
