package opt

import "repro/internal/ir"

// ConstFold folds constant expressions, simplifies algebraic identities and
// turns conditional branches on constants into unconditional ones (fixing up
// phis on the removed edge).
type ConstFold struct{}

// Name returns the pass name.
func (ConstFold) Name() string { return "constfold" }

// Run executes the pass.
func (ConstFold) Run(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
			if v := foldInstr(in); v != nil {
				ir.ReplaceAllUses(f, in, v)
				b.Remove(in)
				changed = true
			}
		}
		if t := b.Terminator(); t != nil && t.Op == ir.OpCondBr {
			if c, ok := t.Operands[0].(*ir.ConstInt); ok {
				then, els := t.Succs[0], t.Succs[1]
				live, dead := then, els
				if c.Unsigned() == 0 {
					live, dead = els, then
				}
				b.Remove(t)
				nb := &ir.Instr{Op: ir.OpBr, Ty: ir.Void, Succs: []*ir.Block{live}}
				b.Append(nb)
				if dead != live {
					removePhiEdge(dead, b)
				}
				changed = true
			}
		}
	}
	return changed
}

// removePhiEdge drops the incoming entries for predecessor pred from the
// phis of block b.
func removePhiEdge(b *ir.Block, pred *ir.Block) {
	for _, phi := range b.Phis() {
		for i, pb := range phi.PhiBlocks {
			if pb == pred {
				phi.Operands = append(phi.Operands[:i], phi.Operands[i+1:]...)
				phi.PhiBlocks = append(phi.PhiBlocks[:i], phi.PhiBlocks[i+1:]...)
				break
			}
		}
	}
}

func foldInstr(in *ir.Instr) ir.Value {
	switch {
	case in.IsBinaryOp():
		return foldBinary(in)
	case in.Op == ir.OpICmp:
		a, aok := in.Operands[0].(*ir.ConstInt)
		c, cok := in.Operands[1].(*ir.ConstInt)
		if aok && cok {
			return ir.NewBool(evalIntPred(in.Pred, a, c))
		}
	case in.Op == ir.OpSelect:
		if c, ok := in.Operands[0].(*ir.ConstInt); ok {
			if c.Unsigned() != 0 {
				return in.Operands[1]
			}
			return in.Operands[2]
		}
		if ir.SameValue(in.Operands[1], in.Operands[2]) {
			return in.Operands[1]
		}
	case in.Op == ir.OpPhi:
		// A phi whose incomings are all the same value is that value.
		if len(in.Operands) > 0 {
			first := in.Operands[0]
			same := true
			for _, op := range in.Operands[1:] {
				if op != first && op != in {
					same = false
					break
				}
			}
			if same && first != in {
				return first
			}
		}
	case in.Op == ir.OpZExt, in.Op == ir.OpSExt, in.Op == ir.OpTrunc:
		if c, ok := in.Operands[0].(*ir.ConstInt); ok {
			switch in.Op {
			case ir.OpTrunc, ir.OpZExt:
				return ir.NewInt(in.Ty, int64(c.Unsigned()))
			case ir.OpSExt:
				return ir.NewInt(in.Ty, c.Signed())
			}
		}
	case in.Op == ir.OpBitcast:
		// bitcast to the identical type is a no-op.
		if in.Operands[0].Type().Equal(in.Ty) {
			return in.Operands[0]
		}
	}
	return nil
}

func foldBinary(in *ir.Instr) ir.Value {
	a, aok := in.Operands[0].(*ir.ConstInt)
	b, bok := in.Operands[1].(*ir.ConstInt)
	ty := in.Ty
	if !ty.IsInt() {
		return nil
	}
	if aok && bok {
		av, bv := a.Signed(), b.Signed()
		au, bu := a.Unsigned(), b.Unsigned()
		switch in.Op {
		case ir.OpAdd:
			return ir.NewInt(ty, av+bv)
		case ir.OpSub:
			return ir.NewInt(ty, av-bv)
		case ir.OpMul:
			return ir.NewInt(ty, av*bv)
		case ir.OpSDiv:
			if bv != 0 {
				return ir.NewInt(ty, av/bv)
			}
		case ir.OpSRem:
			if bv != 0 {
				return ir.NewInt(ty, av%bv)
			}
		case ir.OpUDiv:
			if bu != 0 {
				return ir.NewInt(ty, int64(au/bu))
			}
		case ir.OpURem:
			if bu != 0 {
				return ir.NewInt(ty, int64(au%bu))
			}
		case ir.OpAnd:
			return ir.NewInt(ty, int64(au&bu))
		case ir.OpOr:
			return ir.NewInt(ty, int64(au|bu))
		case ir.OpXor:
			return ir.NewInt(ty, int64(au^bu))
		case ir.OpShl:
			return ir.NewInt(ty, int64(au<<(bu&uint64(ty.Bits-1))))
		case ir.OpLShr:
			return ir.NewInt(ty, int64(au>>(bu&uint64(ty.Bits-1))))
		case ir.OpAShr:
			return ir.NewInt(ty, av>>(bu&uint64(ty.Bits-1)))
		}
		return nil
	}
	// Algebraic identities with one constant.
	if bok {
		switch {
		case in.Op == ir.OpAdd && b.Unsigned() == 0,
			in.Op == ir.OpSub && b.Unsigned() == 0,
			in.Op == ir.OpMul && b.Signed() == 1,
			in.Op == ir.OpSDiv && b.Signed() == 1,
			in.Op == ir.OpUDiv && b.Signed() == 1,
			in.Op == ir.OpOr && b.Unsigned() == 0,
			in.Op == ir.OpXor && b.Unsigned() == 0,
			in.Op == ir.OpShl && b.Unsigned() == 0,
			in.Op == ir.OpLShr && b.Unsigned() == 0,
			in.Op == ir.OpAShr && b.Unsigned() == 0:
			return in.Operands[0]
		case in.Op == ir.OpMul && b.Unsigned() == 0,
			in.Op == ir.OpAnd && b.Unsigned() == 0:
			return ir.NewInt(ty, 0)
		}
	}
	if aok {
		switch {
		case in.Op == ir.OpAdd && a.Unsigned() == 0,
			in.Op == ir.OpOr && a.Unsigned() == 0,
			in.Op == ir.OpXor && a.Unsigned() == 0:
			return in.Operands[1]
		case in.Op == ir.OpMul && a.Signed() == 1:
			return in.Operands[1]
		case in.Op == ir.OpMul && a.Unsigned() == 0,
			in.Op == ir.OpAnd && a.Unsigned() == 0:
			return ir.NewInt(ty, 0)
		}
	}
	return nil
}

func evalIntPred(p ir.Pred, a, b *ir.ConstInt) bool {
	as, bs := a.Signed(), b.Signed()
	au, bu := a.Unsigned(), b.Unsigned()
	switch p {
	case ir.PredEQ:
		return au == bu
	case ir.PredNE:
		return au != bu
	case ir.PredSLT:
		return as < bs
	case ir.PredSLE:
		return as <= bs
	case ir.PredSGT:
		return as > bs
	case ir.PredSGE:
		return as >= bs
	case ir.PredULT:
		return au < bu
	case ir.PredULE:
		return au <= bu
	case ir.PredUGT:
		return au > bu
	case ir.PredUGE:
		return au >= bu
	}
	return false
}
