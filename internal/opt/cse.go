package opt

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/ir"
)

// CSE performs dominator-scoped common-subexpression elimination over pure
// instructions (arithmetic, comparisons, casts, geps, selects). Calls are
// never merged — even pure runtime calls read state that may change between
// call sites (e.g. the SoftBound shadow stack).
type CSE struct{}

// Name returns the pass name.
func (CSE) Name() string { return "cse" }

// Run executes the pass.
func (CSE) Run(f *ir.Func) bool {
	if f.Entry() == nil {
		return false
	}
	dt := analysis.NewDomTree(f)
	changed := false

	var walk func(b *ir.Block, table map[string]*ir.Instr)
	walk = func(b *ir.Block, table map[string]*ir.Instr) {
		var added []string
		for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
			key, ok := cseKey(in)
			if !ok {
				continue
			}
			if prev, have := table[key]; have {
				ir.ReplaceAllUses(f, in, prev)
				b.Remove(in)
				changed = true
				continue
			}
			table[key] = in
			added = append(added, key)
		}
		for _, c := range dt.Children(b) {
			walk(c, table)
		}
		for _, k := range added {
			delete(table, k)
		}
	}
	walk(f.Entry(), make(map[string]*ir.Instr))
	return changed
}

// cseKey builds a structural key for pure, CSE-able instructions.
func cseKey(in *ir.Instr) (string, bool) {
	switch {
	case in.IsBinaryOp(), in.Op == ir.OpICmp, in.Op == ir.OpFCmp,
		in.Op == ir.OpGEP, in.Op == ir.OpSelect:
	case in.IsCast():
	default:
		return "", false
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d/%d/%s", in.Op, in.Pred, in.Ty)
	if in.SrcTy != nil {
		sb.WriteString(in.SrcTy.String())
	}
	for _, op := range in.Operands {
		sb.WriteByte('|')
		sb.WriteString(valueKey(op))
	}
	return sb.String(), true
}

func valueKey(v ir.Value) string {
	switch x := v.(type) {
	case *ir.Instr:
		return fmt.Sprintf("i%p", x)
	case *ir.Param:
		return fmt.Sprintf("p%d", x.Index)
	case *ir.ConstInt:
		return fmt.Sprintf("c%s#%d", x.Ty, x.Unsigned())
	case *ir.ConstFloat:
		return fmt.Sprintf("f%s#%x", x.Ty, x.V)
	case *ir.ConstNull:
		return "null"
	case *ir.ConstPtr:
		return fmt.Sprintf("cp#%x", x.Addr)
	case *ir.Undef:
		return fmt.Sprintf("u%p", x)
	case *ir.Global:
		return "g" + x.Name
	case *ir.Func:
		return "@" + x.Name
	}
	return "?"
}
