package opt

import "repro/internal/ir"

// Inline is a bottom-up function inliner for small, non-recursive callees.
// LLVM's inliner is a module pass running after EP_ModuleOptimizerEarly, so
// instrumentation inserted at the early extension point is inlined along
// with the callee — checks, shadow-stack protocol and all — while later
// extension points see the already-flattened code and insert fewer
// witness-propagation operations across call boundaries.
type Inline struct {
	// Threshold is the maximum callee size in instructions (default 40).
	Threshold int
	// Inlined counts performed inlinings.
	Inlined int
}

// Name returns the pass name.
func (*Inline) Name() string { return "inline" }

// RunModule inlines across the whole module (bounded rounds).
func (p *Inline) RunModule(m *ir.Module) bool {
	if p.Threshold == 0 {
		p.Threshold = 56
	}
	changed := false
	for round := 0; round < 4; round++ {
		any := false
		m.Definitions(func(f *ir.Func) {
			if p.runOnFunc(f) {
				any = true
			}
		})
		if !any {
			return changed
		}
		changed = true
	}
	return changed
}

// Run implements FuncPass on the containing module's function; inlining into
// one function at a time.
func (p *Inline) Run(f *ir.Func) bool {
	if p.Threshold == 0 {
		p.Threshold = 56
	}
	return p.runOnFunc(f)
}

func (p *Inline) runOnFunc(caller *ir.Func) bool {
	changed := false
	for {
		var site *ir.Instr
		caller.Instrs(func(in *ir.Instr) bool {
			if in.Op == ir.OpCall {
				callee := in.Callee()
				if p.inlinable(caller, callee) {
					site = in
					return false
				}
			}
			return true
		})
		if site == nil {
			return changed
		}
		inlineCall(caller, site)
		p.Inlined++
		changed = true
	}
}

func (p *Inline) inlinable(caller, callee *ir.Func) bool {
	if callee == nil || callee.IsDecl() || callee == caller {
		return false
	}
	if callee.Sig.Variadic {
		return false
	}
	// Functions of uninstrumented libraries live behind a link boundary;
	// the compiler never sees their bodies (Section 4.3).
	if callee.IgnoreInstrumentation {
		return false
	}
	if inlineCost(callee) > p.Threshold {
		return false
	}
	// Reject (mutually) recursive callees: anything reachable back to the
	// callee through direct calls.
	if reachesFunc(callee, callee, make(map[*ir.Func]bool)) {
		return false
	}
	return true
}

// inlineCost estimates a callee's size the way LLVM's cost model does:
// calls weigh far more than simple instructions. A consequence the paper's
// extension-point experiment depends on: a function instrumented at
// ModuleOptimizerEarly is full of check calls and usually no longer
// inlinable, while the same function at a later extension point was inlined
// before the instrumentation ran.
func inlineCost(f *ir.Func) int {
	cost := 0
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpCall {
			cost += 10
		} else {
			cost++
		}
		return true
	})
	return cost
}

func reachesFunc(from, target *ir.Func, seen map[*ir.Func]bool) bool {
	if seen[from] {
		return false
	}
	seen[from] = true
	found := false
	from.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpCall {
			if c := in.Callee(); c != nil && !c.IsDecl() {
				if c == target || reachesFunc(c, target, seen) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// inlineCall splices a clone of the callee body in place of the call.
func inlineCall(caller *ir.Func, call *ir.Instr) {
	callee := call.Callee()
	args := append([]ir.Value(nil), call.Args()...)

	// Split the block at the call: everything after the call moves to a
	// continuation block.
	callBlock := call.Block
	idx := -1
	for i, in := range callBlock.Instrs {
		if in == call {
			idx = i
			break
		}
	}
	cont := caller.NewBlock(callBlock.Name + ".cont")
	tail := callBlock.Instrs[idx+1:]
	callBlock.Instrs = callBlock.Instrs[:idx]
	for _, in := range tail {
		in.Block = cont
		cont.Instrs = append(cont.Instrs, in)
	}
	// Phi edges that referred to callBlock via its (moved) terminator now
	// come from cont.
	for _, s := range cont.Succs() {
		for _, phi := range s.Phis() {
			for i, pb := range phi.PhiBlocks {
				if pb == callBlock {
					phi.PhiBlocks[i] = cont
				}
			}
		}
	}

	// Clone the callee body into the caller.
	bmap := make(map[*ir.Block]*ir.Block, len(callee.Blocks))
	imap := make(map[*ir.Instr]*ir.Instr)
	for _, b := range callee.Blocks {
		bmap[b] = caller.NewBlock(callee.Name + "." + b.Name)
	}
	mapValue := func(v ir.Value) ir.Value {
		switch x := v.(type) {
		case *ir.Instr:
			return imap[x]
		case *ir.Param:
			return args[x.Index]
		default:
			return v
		}
	}

	var retVals []ir.Value
	var retBlocks []*ir.Block
	var allocas []*ir.Instr

	for _, b := range callee.Blocks {
		nb := bmap[b]
		for _, in := range b.Instrs {
			ni := &ir.Instr{
				Op: in.Op, Ty: in.Ty, Pred: in.Pred, AllocTy: in.AllocTy,
				SrcTy: in.SrcTy, Name: in.Name, Tag: in.Tag,
				Loc: in.Loc, Site: in.Site,
			}
			caller.AdoptInstr(ni)
			imap[in] = ni
			nb.Append(ni)
		}
	}
	for _, b := range callee.Blocks {
		for _, in := range b.Instrs {
			ni := imap[in]
			for _, op := range in.Operands {
				ni.Operands = append(ni.Operands, mapValue(op))
			}
			for _, pb := range in.PhiBlocks {
				ni.PhiBlocks = append(ni.PhiBlocks, bmap[pb])
			}
			for _, s := range in.Succs {
				ni.Succs = append(ni.Succs, bmap[s])
			}
			if ni.Op == ir.OpRet {
				// Rewrite returns into branches to the continuation.
				if len(ni.Operands) > 0 {
					retVals = append(retVals, ni.Operands[0])
					retBlocks = append(retBlocks, ni.Block)
				} else {
					retVals = append(retVals, nil)
					retBlocks = append(retBlocks, ni.Block)
				}
				ni.Op = ir.OpBr
				ni.Operands = nil
				ni.Succs = []*ir.Block{cont}
			}
			if ni.Op == ir.OpAlloca && len(ni.Operands) == 0 {
				allocas = append(allocas, ni)
			}
		}
	}

	// Static allocas move to the caller's entry block so loops around the
	// call site do not grow the stack (LLVM does the same).
	entry := caller.Entry()
	for _, al := range allocas {
		al.Block.Remove(al)
		if first := entry.FirstNonPhi(); first != nil {
			entry.InsertBefore(al, first)
		} else {
			entry.Append(al)
		}
	}

	// Branch from the call block into the inlined entry.
	br := &ir.Instr{Op: ir.OpBr, Ty: ir.Void, Succs: []*ir.Block{bmap[callee.Entry()]}}
	caller.AdoptInstr(br)
	callBlock.Append(br)

	// Merge return values at the continuation.
	if call.Ty != ir.Void {
		var repl ir.Value
		switch len(retVals) {
		case 0:
			repl = ir.NewUndef(call.Ty)
		case 1:
			repl = retVals[0]
		default:
			phi := &ir.Instr{Op: ir.OpPhi, Ty: call.Ty, Name: call.Name + ".ret"}
			caller.AdoptInstr(phi)
			for i, v := range retVals {
				if v == nil {
					v = ir.NewUndef(call.Ty)
				}
				phi.Operands = append(phi.Operands, v)
				phi.PhiBlocks = append(phi.PhiBlocks, retBlocks[i])
			}
			if first := cont.FirstNonPhi(); first != nil {
				cont.InsertBefore(phi, first)
			} else {
				cont.Append(phi)
			}
			repl = phi
		}
		ir.ReplaceAllUses(caller, call, repl)
	}
	// The call itself is gone; cont holds the rest of the original block.
	// (The call was removed from callBlock when the block was split.)
}
