// Package opt implements the optimization pipeline the instrumented code
// passes through. It stands in for the LLVM -O pipeline of the paper's setup
// (Figure 8): a sequence of scalar optimizations with three extension points
// (ModuleOptimizerEarly, ScalarOptimizerLate, VectorizerStart) at which the
// MemInstrument pass can be inserted, followed by a link-time cleanup stage.
//
// Two properties of the pipeline matter for the paper's results and are
// modelled faithfully:
//
//  1. Optimizations run *after* the instrumentation hook see the inserted
//     code. Checks and metadata stores have side effects and survive; unused
//     metadata loads are pure and are removed by DCE, which is why the
//     metadata-only configuration underestimates propagation cost
//     (Section 5.4). The cleanup stage also removes checks that are
//     literally redundant with a dominating identical check — the reason
//     the explicit dominance optimization has only minor runtime impact
//     (Section 5.3).
//
//  2. Optimizations running *before* the hook reduce the number of memory
//     accesses (mem2reg, store-to-load forwarding, LICM, CSE), so later
//     extension points see fewer accesses and place fewer checks
//     (Section 5.5). Conversely, checks inserted early block those
//     optimizations, because the compiler cannot prove the potential abort
//     is not executed.
package opt

import "repro/internal/ir"

// FuncPass transforms one function and reports whether it changed anything.
type FuncPass interface {
	Name() string
	Run(f *ir.Func) bool
}

// RunOnModule applies a function pass to every definition in the module.
func RunOnModule(m *ir.Module, p FuncPass) bool {
	changed := false
	m.Definitions(func(f *ir.Func) {
		if p.Run(f) {
			changed = true
		}
	})
	return changed
}

// RunSequence applies passes in order to the module.
func RunSequence(m *ir.Module, passes ...FuncPass) {
	for _, p := range passes {
		RunOnModule(m, p)
	}
}

// RunToFixpoint applies the pass sequence repeatedly until no pass changes
// anything (bounded by maxIter rounds).
func RunToFixpoint(m *ir.Module, maxIter int, passes ...FuncPass) {
	for i := 0; i < maxIter; i++ {
		changed := false
		for _, p := range passes {
			if RunOnModule(m, p) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}
