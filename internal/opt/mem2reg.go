package opt

import (
	"repro/internal/analysis"
	"repro/internal/ir"
)

// Mem2Reg promotes allocas whose address does not escape into SSA values,
// inserting phis at iterated dominance frontiers. It is the single most
// important pass for the extension-point experiment (Section 5.5): when the
// instrumentation runs before mem2reg (ModuleOptimizerEarly), every local
// variable access is a checked memory access and, worse, the check calls
// take the alloca's address, which blocks the promotion entirely.
type Mem2Reg struct{}

// Name returns the pass name.
func (Mem2Reg) Name() string { return "mem2reg" }

// Run executes the pass.
func (Mem2Reg) Run(f *ir.Func) bool {
	if f.Entry() == nil {
		return false
	}
	var promotable []*ir.Instr
	users := ir.ComputeUsers(f)
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpAlloca && isPromotable(in, users) {
			promotable = append(promotable, in)
		}
		return true
	})
	if len(promotable) == 0 {
		return false
	}

	dt := analysis.NewDomTree(f)
	df := dt.DominanceFrontiers()
	bld := ir.NewBuilder(f)

	// phiFor maps inserted phis to the alloca they merge.
	phiFor := make(map[*ir.Instr]*ir.Instr)

	for _, al := range promotable {
		// Blocks containing stores to the alloca.
		defBlocks := make(map[*ir.Block]bool)
		for _, u := range users[al] {
			if u.Op == ir.OpStore {
				defBlocks[u.Block] = true
			}
		}
		// Iterated dominance frontier.
		placed := make(map[*ir.Block]bool)
		work := make([]*ir.Block, 0, len(defBlocks))
		for b := range defBlocks {
			work = append(work, b)
		}
		inWork := make(map[*ir.Block]bool)
		for _, b := range work {
			inWork[b] = true
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, fb := range df[b] {
				if placed[fb] {
					continue
				}
				placed[fb] = true
				bld.SetBlock(fb)
				phi := bld.Phi(al.AllocTy)
				phiFor[phi] = al
				if !inWork[fb] {
					inWork[fb] = true
					work = append(work, fb)
				}
			}
		}
	}

	// Renaming walk over the dominator tree.
	cur := make(map[*ir.Instr]ir.Value) // alloca -> current value
	isProm := make(map[*ir.Instr]bool, len(promotable))
	for _, al := range promotable {
		isProm[al] = true
	}

	type saved struct {
		al   *ir.Instr
		prev ir.Value
		had  bool
	}

	var rename func(b *ir.Block)
	rename = func(b *ir.Block) {
		var undo []saved
		set := func(al *ir.Instr, v ir.Value) {
			prev, had := cur[al]
			undo = append(undo, saved{al, prev, had})
			cur[al] = v
		}

		for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
			switch in.Op {
			case ir.OpPhi:
				if al, ok := phiFor[in]; ok {
					set(al, in)
				}
			case ir.OpStore:
				if al, ok := in.Operands[1].(*ir.Instr); ok && isProm[al] {
					set(al, in.Operands[0])
					b.Remove(in)
				}
			case ir.OpLoad:
				if al, ok := in.Operands[0].(*ir.Instr); ok && isProm[al] {
					v, have := cur[al]
					if !have {
						v = ir.NewUndef(al.AllocTy)
					}
					ir.ReplaceAllUses(f, in, v)
					b.Remove(in)
				}
			}
		}

		// Fill phi operands of successors.
		for _, s := range b.Succs() {
			for _, phi := range s.Phis() {
				al, ok := phiFor[phi]
				if !ok {
					continue
				}
				if phi.PhiIncomingFor(b) != nil {
					continue
				}
				v, have := cur[al]
				if !have {
					v = ir.NewUndef(al.AllocTy)
				}
				phi.AddPhiIncoming(v, b)
			}
		}

		for _, c := range dt.Children(b) {
			rename(c)
		}
		for i := len(undo) - 1; i >= 0; i-- {
			u := undo[i]
			if u.had {
				cur[u.al] = u.prev
			} else {
				delete(cur, u.al)
			}
		}
	}
	rename(f.Entry())

	for _, al := range promotable {
		al.Block.Remove(al)
	}
	// Phis placed in blocks with duplicate-free preds may still miss edges
	// from unreachable predecessors; those blocks are cleaned by
	// SimplifyCFG. Remove trivially dead phis (no uses) now.
	DCE{}.Run(f)
	return true
}

// isPromotable reports whether an alloca can be promoted: a scalar,
// non-array alloca whose only uses are loads of the full value and stores
// where it is the address (never the stored value, never a gep/cast/call
// operand).
func isPromotable(al *ir.Instr, users ir.Users) bool {
	if len(al.Operands) != 0 {
		return false // array alloca
	}
	switch al.AllocTy.Kind {
	case ir.IntKind, ir.FloatKind, ir.PointerKind:
	default:
		return false
	}
	for _, u := range users[al] {
		switch u.Op {
		case ir.OpLoad:
			// ok
		case ir.OpStore:
			if u.Operands[0] == al {
				return false // address escapes as stored value
			}
		default:
			return false
		}
	}
	return true
}
