package opt

import "repro/internal/ir"

// LoadElim performs block-local store-to-load forwarding and redundant-load
// elimination. It is deliberately conservative: any store through a pointer
// other than the tracked one, and any call that may write memory,
// invalidates all tracked values (no alias analysis).
//
// This pass is part of what makes later extension points cheaper to
// instrument: fewer loads reach the instrumentation, so fewer checks are
// placed (Section 5.5).
type LoadElim struct{}

// Name returns the pass name.
func (LoadElim) Name() string { return "loadelim" }

// Run executes the pass.
func (LoadElim) Run(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		type slot struct {
			val ir.Value
			ty  *ir.Type
		}
		avail := make(map[ir.Value]slot) // pointer value -> known content
		for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
			switch in.Op {
			case ir.OpLoad:
				ptr := in.Operands[0]
				if s, ok := avail[ptr]; ok && s.ty.Equal(in.Ty) {
					ir.ReplaceAllUses(f, in, s.val)
					b.Remove(in)
					changed = true
					continue
				}
				avail[ptr] = slot{val: in, ty: in.Ty}
			case ir.OpStore:
				ptr := in.Operands[1]
				v := in.Operands[0]
				// Drop entries the store may alias. Two distinct globals
				// (or distinct constant-index geps of distinct globals)
				// cannot alias; everything else is dropped conservatively.
				for k := range avail {
					if k != ptr && mayAlias(k, ptr) {
						delete(avail, k)
					}
				}
				avail[ptr] = slot{val: v, ty: v.Type()}
			case ir.OpCall:
				callee := in.Callee()
				if callee != nil && callee.Pure {
					continue
				}
				for k := range avail {
					delete(avail, k)
				}
			}
		}
	}
	return changed
}

// rootObject returns the distinct allocated object a pointer value is
// statically known to point into, or nil.
func rootObject(v ir.Value) ir.Value {
	for {
		switch x := v.(type) {
		case *ir.Global:
			return x
		case *ir.Instr:
			switch x.Op {
			case ir.OpGEP, ir.OpBitcast:
				v = x.Operands[0]
				continue
			case ir.OpAlloca:
				return x
			}
			return nil
		default:
			return nil
		}
	}
}

// mayAlias reports whether two pointer values may address overlapping
// memory. It only disambiguates pointers rooted in distinct globals or
// allocas; everything else may alias.
func mayAlias(a, b ir.Value) bool {
	ra, rb := rootObject(a), rootObject(b)
	if ra == nil || rb == nil {
		return true
	}
	return ra == rb
}
