package opt_test

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/vm"
)

// compile builds a module from C source (unoptimized).
func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := cc.Compile("t", cc.Source{Name: "t.c", Code: src})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

// runModule executes a module and returns its output.
func runModule(t *testing.T, m *ir.Module) string {
	t.Helper()
	machine, err := vm.New(m, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := machine.Run(); err != nil {
		t.Fatalf("run: %v\n%s", err, ir.FormatModule(m))
	}
	return machine.Output()
}

// countOps counts instructions with the given opcode across the module.
func countOps(m *ir.Module, op ir.Op) int {
	n := 0
	m.Definitions(func(f *ir.Func) {
		f.Instrs(func(in *ir.Instr) bool {
			if in.Op == op {
				n++
			}
			return true
		})
	})
	return n
}

// verifyAll fails the test if any function is malformed or violates SSA.
func verifyAll(t *testing.T, m *ir.Module) {
	t.Helper()
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

const testProg = `
int tab[8] = {1, 2, 3, 4, 5, 6, 7, 8};

int mul3(int x) { return x * 3; }

int compute(int n) {
    int sum = 0;
    int i;
    for (i = 0; i < n; i++) {
        sum += tab[i & 7] * 2 + mul3(i);
    }
    return sum;
}

int main() {
    printf("%d\n", compute(50));
    return 0;
}`

func TestPipelinePreservesSemantics(t *testing.T) {
	m0 := compile(t, testProg)
	out0 := runModule(t, m0)

	m3 := compile(t, testProg)
	opt.RunPipeline(m3, opt.EPVectorizerStart, nil, opt.PipelineOptions{Level: 3})
	verifyAll(t, m3)
	out3 := runModule(t, m3)
	if out0 != out3 {
		t.Errorf("O0 output %q != O3 output %q", out0, out3)
	}
}

func TestMem2RegPromotesLocals(t *testing.T) {
	m := compile(t, `
int f(int a, int b) {
    int x = a + b;
    int y = x * 2;
    if (y > 10) { y = y - a; }
    return y;
}
int main() { printf("%d\n", f(3, 4)); return 0; }`)
	before := countOps(m, ir.OpAlloca)
	if before == 0 {
		t.Fatal("expected allocas in unoptimized code")
	}
	out0 := runModule(t, m)
	opt.RunSequence(m, opt.SimplifyCFG{}, opt.Mem2Reg{})
	verifyAll(t, m)
	if got := countOps(m, ir.OpAlloca); got != 0 {
		t.Errorf("%d allocas survive mem2reg", got)
	}
	if countOps(m, ir.OpPhi) == 0 {
		t.Error("mem2reg placed no phis for the diamond")
	}
	if out := runModule(t, m); out != out0 {
		t.Errorf("mem2reg changed output: %q vs %q", out, out0)
	}
}

func TestMem2RegSkipsEscapingAllocas(t *testing.T) {
	m := compile(t, `
void set(int *p) { *p = 42; }
int main() {
    int x = 0;
    set(&x);
    printf("%d\n", x);
    return 0;
}`)
	opt.RunSequence(m, opt.SimplifyCFG{}, opt.Mem2Reg{})
	verifyAll(t, m)
	if countOps(m, ir.OpAlloca) == 0 {
		t.Error("escaping alloca was wrongly promoted")
	}
	if out := runModule(t, m); out != "42\n" {
		t.Errorf("output = %q", out)
	}
}

func TestConstFold(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.FuncOf(ir.I32))
	b := ir.NewBuilder(f)
	blk := f.NewBlock("entry")
	b.SetBlock(blk)
	v := b.Add(ir.NewInt(ir.I32, 2), ir.NewInt(ir.I32, 3))
	w := b.Mul(v, ir.NewInt(ir.I32, 4))
	b.Ret(w)
	opt.RunToFixpoint(m, 3, opt.ConstFold{}, opt.DCE{})
	verifyAll(t, m)
	ret := f.Entry().Terminator()
	c, ok := ret.Operands[0].(*ir.ConstInt)
	if !ok || c.Signed() != 20 {
		t.Errorf("not folded to 20: %s", ir.FormatInstr(ret))
	}
	if f.NumInstrs() != 1 {
		t.Errorf("%d instructions remain, want 1", f.NumInstrs())
	}
}

func TestConstFoldBranch(t *testing.T) {
	m := compile(t, `
int main() {
    if (1 + 1 == 2) { printf("yes\n"); } else { printf("no\n"); }
    return 0;
}`)
	opt.RunPipeline(m, opt.EPVectorizerStart, nil, opt.PipelineOptions{Level: 3})
	verifyAll(t, m)
	if countOps(m, ir.OpCondBr) != 0 {
		t.Error("constant branch not folded")
	}
	if out := runModule(t, m); out != "yes\n" {
		t.Errorf("output = %q", out)
	}
}

func TestDCERemovesDeadPureCalls(t *testing.T) {
	m := compile(t, `int main() { return 0; }`)
	pure := m.NewDecl("pure_fn", ir.FuncOf(ir.I32))
	pure.Pure = true
	effectful := m.NewDecl("effect_fn", ir.FuncOf(ir.I32))
	f := m.Func("main")
	b := ir.NewBuilder(f)
	b.SetBefore(f.Entry().Terminator())
	b.Call(pure)
	b.Call(effectful)
	opt.DCE{}.Run(f)
	verifyAll(t, m)
	if countOps(m, ir.OpCall) != 1 {
		t.Errorf("want only the effectful call to survive, have %d calls", countOps(m, ir.OpCall))
	}
}

func TestCSE(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.FuncOf(ir.I32, ir.I32), "x")
	b := ir.NewBuilder(f)
	blk := f.NewBlock("entry")
	b.SetBlock(blk)
	x := f.Params[0]
	a1 := b.Add(x, ir.NewInt(ir.I32, 1))
	a2 := b.Add(x, ir.NewInt(ir.I32, 1)) // duplicate
	s := b.Add(a1, a2)
	b.Ret(s)
	opt.CSE{}.Run(f)
	verifyAll(t, m)
	adds := 0
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpAdd {
			adds++
		}
		return true
	})
	if adds != 2 { // a1 and s remain
		t.Errorf("%d adds remain, want 2", adds)
	}
}

func TestCSEDominanceScoped(t *testing.T) {
	// An expression in one branch must not be CSE'd with the same
	// expression in the sibling branch.
	m := compile(t, `
int f(int x, int c) {
    int r;
    if (c) { r = x * 7; } else { r = x * 7; }
    return r;
}
int main() { printf("%d %d\n", f(3, 1), f(4, 0)); return 0; }`)
	opt.RunSequence(m, opt.SimplifyCFG{}, opt.Mem2Reg{})
	before := countOps(m, ir.OpMul)
	opt.CSE{}.Run(m.Func("f"))
	verifyAll(t, m)
	if got := countOps(m, ir.OpMul); got != before {
		t.Errorf("CSE across sibling branches: %d muls, want %d", got, before)
	}
	if out := runModule(t, m); out != "21 28\n" {
		t.Errorf("output = %q", out)
	}
}

func TestLoadElimForwarding(t *testing.T) {
	m := compile(t, `
int g;
int main() {
    int *p = &g;
    *p = 5;
    printf("%d\n", *p + *p);
    return 0;
}`)
	opt.RunSequence(m, opt.SimplifyCFG{}, opt.Mem2Reg{}, opt.LoadElim{}, opt.DCE{})
	verifyAll(t, m)
	if got := countOps(m, ir.OpLoad); got != 0 {
		t.Errorf("%d loads survive store-to-load forwarding", got)
	}
	if out := runModule(t, m); out != "10\n" {
		t.Errorf("output = %q", out)
	}
}

func TestLoadElimBlockedByCalls(t *testing.T) {
	m := compile(t, `
int g;
void opaque(void) {}
int main() {
    g = 5;
    opaque();
    printf("%d\n", g);
    return 0;
}`)
	opt.RunSequence(m, opt.SimplifyCFG{}, opt.Mem2Reg{}, opt.LoadElim{})
	verifyAll(t, m)
	if countOps(m, ir.OpLoad) == 0 {
		t.Error("load forwarded across an opaque call")
	}
}

func TestLoadElimAliasRefinement(t *testing.T) {
	// Stores to a distinct global must not kill knowledge about another.
	m := compile(t, `
int a;
int b;
int main() {
    a = 1;
    b = 2;
    printf("%d\n", a + b);
    return 0;
}`)
	opt.RunSequence(m, opt.SimplifyCFG{}, opt.Mem2Reg{}, opt.LoadElim{}, opt.DCE{})
	verifyAll(t, m)
	if got := countOps(m, ir.OpLoad); got != 0 {
		t.Errorf("%d loads survive despite distinct globals", got)
	}
	if out := runModule(t, m); out != "3\n" {
		t.Errorf("output = %q", out)
	}
}

func TestSimplifyCFGMergesChains(t *testing.T) {
	m := compile(t, `
int main() {
    int x = 1;
    x = x + 1;
    { x = x + 2; }
    { { x = x + 3; } }
    printf("%d\n", x);
    return 0;
}`)
	opt.RunPipeline(m, opt.EPVectorizerStart, nil, opt.PipelineOptions{Level: 3})
	verifyAll(t, m)
	f := m.Func("main")
	if len(f.Blocks) != 1 {
		t.Errorf("main has %d blocks after simplification, want 1", len(f.Blocks))
	}
	if out := runModule(t, m); out != "7\n" {
		t.Errorf("output = %q", out)
	}
}

func TestLICMHoistsInvariants(t *testing.T) {
	m := compile(t, `
int main() {
    int i, n = 100;
    long sum = 0;
    int a = 7, b = 9;
    for (i = 0; i < n; i++) {
        sum += (long)(a * b) + i;
    }
    printf("%ld\n", sum);
    return 0;
}`)
	out0 := runModule(t, m)
	opt.RunSequence(m, opt.SimplifyCFG{}, opt.Mem2Reg{}, opt.ConstFold{}, opt.LICM{})
	verifyAll(t, m)
	if out := runModule(t, m); out != out0 {
		t.Errorf("LICM changed output: %q vs %q", out, out0)
	}
}

func TestLICMHoistsLoadsFromReadOnlyLoops(t *testing.T) {
	m := compile(t, `
double *rows[4];
double f() {
    double s = 0.0;
    int i;
    for (i = 0; i < 100; i++) {
        s += rows[2][i % 8];
    }
    return s;
}
int main() {
    int i;
    rows[2] = (double *)malloc(8 * sizeof(double));
    for (i = 0; i < 8; i++) rows[2][i] = 1.0;
    printf("%.0f\n", f());
    return 0;
}`)
	opt.RunSequence(m, opt.SimplifyCFG{}, opt.Mem2Reg{}, opt.ConstFold{}, opt.CSE{}, opt.LICM{})
	verifyAll(t, m)
	// The load of rows[2] must have been hoisted out of the loop in f.
	f := m.Func("f")
	var loopLoads int
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.OpLoad && in.Ty.IsPointer() {
				// Pointer load still inside a block that participates in
				// the loop (has a phi or is dominated by the header).
				if len(blk.Phis()) > 0 {
					loopLoads++
				}
			}
		}
	}
	if loopLoads != 0 {
		t.Errorf("pointer load not hoisted out of the read-only loop")
	}
	if out := runModule(t, m); out != "100\n" {
		t.Errorf("output = %q", out)
	}
}

func TestLICMDoesNotHoistPastChecks(t *testing.T) {
	// A loop containing a call (e.g. an inserted check) must keep its
	// loads inside.
	m := compile(t, `
int *data;
void check_stub(void) {}
int main() {
    int i;
    long s = 0;
    data = (int *)malloc(8 * sizeof(int));
    for (i = 0; i < 8; i++) data[i] = i;
    for (i = 0; i < 100; i++) {
        check_stub();
        s += data[i % 8];
    }
    printf("%ld\n", s);
    return 0;
}`)
	// Prevent inlining of the stub from removing the call.
	m.Func("check_stub").IgnoreInstrumentation = true
	opt.RunSequence(m, opt.SimplifyCFG{}, opt.Mem2Reg{}, opt.LICM{})
	verifyAll(t, m)
	f := m.Func("main")
	hoistedPtrLoad := false
	// data's pointer load must still be inside the second loop (a block
	// with phis or reachable from it), not in the entry.
	for _, in := range f.Entry().Instrs {
		if in.Op == ir.OpLoad && in.Ty.IsPointer() {
			hoistedPtrLoad = true
		}
	}
	if hoistedPtrLoad {
		t.Error("load hoisted past a call that may abort")
	}
}

func TestInline(t *testing.T) {
	m := compile(t, `
int add3(int a, int b, int c) { return a + b + c; }
int main() {
    printf("%d\n", add3(1, 2, 3) + add3(4, 5, 6));
    return 0;
}`)
	opt.RunSequence(m, opt.SimplifyCFG{}, opt.Mem2Reg{})
	inl := &opt.Inline{}
	inl.RunModule(m)
	verifyAll(t, m)
	if inl.Inlined != 2 {
		t.Errorf("inlined %d calls, want 2", inl.Inlined)
	}
	if got := countOps(m, ir.OpCall); got != 1 { // only printf remains
		t.Errorf("%d calls remain, want 1", got)
	}
	if out := runModule(t, m); out != "21\n" {
		t.Errorf("output = %q", out)
	}
}

func TestInlineSkipsRecursion(t *testing.T) {
	m := compile(t, `
int fac(int n) { return n <= 1 ? 1 : n * fac(n - 1); }
int main() { printf("%d\n", fac(5)); return 0; }`)
	opt.RunSequence(m, opt.SimplifyCFG{}, opt.Mem2Reg{})
	inl := &opt.Inline{}
	inl.RunModule(m)
	verifyAll(t, m)
	if out := runModule(t, m); out != "120\n" {
		t.Errorf("output = %q", out)
	}
}

func TestInlineMovesAllocasToEntry(t *testing.T) {
	m := compile(t, `
int worker(int seed) {
    int buf[4];
    int i, s = 0;
    for (i = 0; i < 4; i++) buf[i] = seed + i;
    for (i = 0; i < 4; i++) s += buf[i];
    return s;
}
int main() {
    int i;
    long total = 0;
    for (i = 0; i < 1000; i++) total += worker(i);
    printf("%ld\n", total);
    return 0;
}`)
	opt.RunSequence(m, opt.SimplifyCFG{}, opt.Mem2Reg{})
	inl := &opt.Inline{Threshold: 500}
	inl.RunModule(m)
	verifyAll(t, m)
	f := m.Func("main")
	// Every remaining alloca must live in the entry block; otherwise the
	// 1000-iteration loop would overflow the simulated stack.
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpAlloca && in.Block != f.Entry() {
			t.Errorf("alloca outside entry after inlining")
		}
		return true
	})
	machine, err := vm.New(m, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := machine.Run(); err != nil {
		t.Fatalf("run after inlining: %v", err)
	}
	if machine.Output() != "2004000\n" {
		t.Errorf("output = %q", machine.Output())
	}
}

func TestUnrollFullyUnrollsSmallLoop(t *testing.T) {
	m := compile(t, `
int main() {
    int a[4];
    int i, s = 0;
    for (i = 0; i < 4; i++) a[i] = i * i;
    for (i = 0; i < 4; i++) s += a[i];
    printf("%d\n", s);
    return 0;
}`)
	opt.RunSequence(m, opt.SimplifyCFG{}, opt.Mem2Reg{}, opt.ConstFold{})
	u := &opt.Unroll{}
	u.Run(m.Func("main"))
	verifyAll(t, m)
	if u.Unrolled == 0 {
		t.Error("no loop unrolled")
	}
	if out := runModule(t, m); out != "14\n" {
		t.Errorf("output = %q", out)
	}
}

func TestUnrollSkipsLoopsWithCalls(t *testing.T) {
	m := compile(t, `
void opaque(void) {}
int main() {
    int i, s = 0;
    for (i = 0; i < 4; i++) { opaque(); s += i; }
    printf("%d\n", s);
    return 0;
}`)
	m.Func("opaque").IgnoreInstrumentation = true
	opt.RunSequence(m, opt.SimplifyCFG{}, opt.Mem2Reg{}, opt.ConstFold{})
	u := &opt.Unroll{}
	u.Run(m.Func("main"))
	if u.Unrolled != 0 {
		t.Error("loop with a call was unrolled")
	}
}

func TestCheckCSERemovesDominatedDuplicates(t *testing.T) {
	m := compile(t, `int main() { return 0; }`)
	f := m.Func("main")
	chk := m.NewDecl("mi_sb_check", ir.FuncOf(ir.Void, ir.PointerTo(ir.I8), ir.I64, ir.PointerTo(ir.I8), ir.PointerTo(ir.I8)))
	g := m.NewGlobal("g", ir.I64, nil)
	b := ir.NewBuilder(f)
	b.SetBefore(f.Entry().Terminator())
	args := []ir.Value{g, ir.NewInt(ir.I64, 8), g, g}
	b.Call(chk, args...)
	b.Call(chk, args...)                                           // identical: removable
	b.Call(chk, g, ir.NewInt(ir.I64, 4), ir.Value(g), ir.Value(g)) // different width: kept
	ccse := &opt.CheckCSE{}
	ccse.Run(f)
	verifyAll(t, m)
	if ccse.Removed != 1 {
		t.Errorf("removed %d checks, want 1", ccse.Removed)
	}
	if got := countOps(m, ir.OpCall); got != 2 {
		t.Errorf("%d calls remain, want 2", got)
	}
}

func TestPtrObfuscateRewritesSwap(t *testing.T) {
	m := compile(t, `
double *slots[2];
void swap(int i, int j) {
    double *t = slots[i];
    slots[i] = slots[j];
    slots[j] = t;
}
int main() {
    double a = 1.0, b = 2.0;
    slots[0] = &a;
    slots[1] = &b;
    swap(0, 1);
    printf("%g\n", *slots[0]);
    return 0;
}`)
	opt.RunSequence(m, opt.SimplifyCFG{}, opt.Mem2Reg{})
	po := &opt.PtrObfuscate{}
	opt.RunOnModule(m, po)
	verifyAll(t, m)
	if po.Rewritten == 0 {
		t.Fatal("no pointer load/store pair rewritten")
	}
	// Pointer-typed stores in swap must be gone, replaced by i64 stores.
	swapFn := m.Func("swap")
	swapFn.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpStore && in.StoredValue().Type().IsPointer() {
			t.Errorf("pointer store survived: %s", ir.FormatInstr(in))
		}
		return true
	})
	// Semantics must be unchanged.
	if out := runModule(t, m); out != "2\n" {
		t.Errorf("output = %q", out)
	}
}

// TestPipelineO0VsO3OnAllExamples compiles a set of tricky programs at O0
// and O3 and requires identical output — the optimizer's end-to-end
// correctness property.
func TestPipelineO0VsO3(t *testing.T) {
	progs := []string{
		// Short-circuit evaluation with side effects.
		`int n; int bump() { n++; return n; }
		 int main() { int r = (n > 0) && bump(); printf("%d %d\n", r, n); return 0; }`,
		// Pointer arithmetic and comparisons.
		`int main() {
		    int a[10]; int *p = a, *q = &a[10]; int c = 0;
		    while (p < q) { *p = c++; p++; }
		    printf("%d %ld\n", a[9], (long)(q - a));
		    return 0; }`,
		// Nested loops with break/continue.
		`int main() {
		    int i, j, s = 0;
		    for (i = 0; i < 10; i++) {
		        for (j = 0; j < 10; j++) {
		            if (j == 5) break;
		            if ((i + j) % 3 == 0) continue;
		            s += i * j;
		        }
		    }
		    printf("%d\n", s); return 0; }`,
		// Switch with fallthrough.
		`int main() {
		    int i, s = 0;
		    for (i = 0; i < 8; i++) {
		        switch (i % 4) {
		        case 0: s += 1;
		        case 1: s += 10; break;
		        case 2: s += 100; break;
		        default: s += 1000;
		        }
		    }
		    printf("%d\n", s); return 0; }`,
		// Recursion plus globals.
		`int depth;
		 int collatz(long n) { depth++; if (n == 1) return 0; return 1 + collatz(n % 2 ? 3 * n + 1 : n / 2); }
		 int main() { printf("%d %d\n", collatz(27), depth); return 0; }`,
		// Floats and conversions.
		`int main() {
		    float f = 0.0f; double d = 0.0; int i;
		    for (i = 0; i < 100; i++) { f += 0.5f; d += (double)f / 8.0; }
		    printf("%.2f %.2f %d\n", (double)f, d, (int)d); return 0; }`,
	}
	for i, src := range progs {
		m0 := compile(t, src)
		out0 := runModule(t, m0)
		m3 := compile(t, src)
		opt.RunPipeline(m3, opt.EPVectorizerStart, nil, opt.PipelineOptions{Level: 3})
		verifyAll(t, m3)
		out3 := runModule(t, m3)
		if out0 != out3 {
			t.Errorf("program %d: O0 %q != O3 %q", i, out0, out3)
		}
	}
}

// TestPipelineObfuscationPreservesSemantics checks that the Figure 7
// transformation, while fatal for SoftBound's metadata, is semantics-
// preserving for the program itself.
func TestPipelineObfuscationPreservesSemantics(t *testing.T) {
	src := `
int *cells[4];
int main() {
    int a = 5, b = 6;
    int *t;
    cells[0] = &a; cells[1] = &b;
    t = cells[0];
    cells[0] = cells[1];
    cells[1] = t;
    printf("%d %d\n", *cells[0], *cells[1]);
    return 0;
}`
	m := compile(t, src)
	out0 := runModule(t, m)
	m2 := compile(t, src)
	opt.RunPipeline(m2, opt.EPVectorizerStart, nil, opt.PipelineOptions{Level: 3, ObfuscatePtrStores: true})
	verifyAll(t, m2)
	if out := runModule(t, m2); out != out0 {
		t.Errorf("obfuscation changed semantics: %q vs %q", out, out0)
	}
}

func TestExtPointNames(t *testing.T) {
	names := map[opt.ExtPoint]string{
		opt.EPModuleOptimizerEarly: "ModuleOptimizerEarly",
		opt.EPScalarOptimizerLate:  "ScalarOptimizerLate",
		opt.EPVectorizerStart:      "VectorizerStart",
	}
	for ep, want := range names {
		if ep.String() != want {
			t.Errorf("%d.String() = %q", ep, ep.String())
		}
	}
}

func TestHookRunsAtRequestedPoint(t *testing.T) {
	for _, ep := range []opt.ExtPoint{opt.EPModuleOptimizerEarly, opt.EPScalarOptimizerLate, opt.EPVectorizerStart} {
		m := compile(t, `int main() { return 0; }`)
		ran := 0
		opt.RunPipeline(m, ep, func(*ir.Module) { ran++ }, opt.PipelineOptions{Level: 3})
		if ran != 1 {
			t.Errorf("%s: hook ran %d times", ep, ran)
		}
	}
}
