package opt

import (
	"strings"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/rt"
)

// CheckCSE removes a safety-check call when an identical check (same
// intrinsic, same operands) precedes it within the same extended basic
// block (straight-line code plus single-predecessor chains). Checks are
// idempotent and have no effect other than aborting, so the duplicate can
// never fire if the first one passed — removing it is semantics-preserving
// for the compiler even without knowing what the call does beyond
// purity-modulo-abort.
//
// This models the observation of Duck and Yap cited in Section 5.3: "the
// compiler can optimize away these checks on its own" — LLVM's value
// numbering catches the straight-line duplicates of inlined check code. The
// framework-level dominance optimization (-mi-opt-dominance) is strictly
// stronger (it also crosses join points and loop headers), which is why it
// removes many checks while changing the runtime only a little.
type CheckCSE struct {
	// Removed counts the check calls deleted by the last Run.
	Removed int
}

// Name returns the pass name.
func (*CheckCSE) Name() string { return "checkcse" }

// Run executes the pass.
func (p *CheckCSE) Run(f *ir.Func) bool {
	changed := false
	preds := analysis.Predecessors(f)
	tables := make(map[*ir.Block]map[string]bool, len(f.Blocks))
	for _, b := range analysis.ReversePostOrder(f) {
		var seen map[string]bool
		if ps := preds[b]; len(ps) == 1 && tables[ps[0]] != nil {
			// Single-pred extension: inherit the predecessor's checks.
			seen = make(map[string]bool, len(tables[ps[0]]))
			for k := range tables[ps[0]] {
				seen[k] = true
			}
		} else {
			seen = make(map[string]bool)
		}
		for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
			key, ok := checkKey(in)
			if !ok {
				continue
			}
			if seen[key] {
				b.Remove(in)
				p.Removed++
				changed = true
				continue
			}
			seen[key] = true
		}
		tables[b] = seen
	}
	return changed
}

func checkKey(in *ir.Instr) (string, bool) {
	if in.Op != ir.OpCall {
		return "", false
	}
	callee := in.Callee()
	if callee == nil {
		return "", false
	}
	switch callee.Name {
	case rt.SBCheck, rt.LFCheck, rt.LFCheckInv:
	default:
		return "", false
	}
	var sb strings.Builder
	sb.WriteString(callee.Name)
	for _, op := range in.Args() {
		sb.WriteByte('|')
		sb.WriteString(valueKey(op))
	}
	return sb.String(), true
}
