package opt

import (
	"repro/internal/ir"
	"repro/internal/telemetry"
)

// ExtPoint names a compiler-pipeline extension point at which the
// instrumentation hook runs (Figure 8 of the paper; the artifact selects
// them in RegisterPasses.cpp).
type ExtPoint int

// The three extension points evaluated in Section 5.5.
const (
	// EPModuleOptimizerEarly instruments before the main optimizations.
	EPModuleOptimizerEarly ExtPoint = iota
	// EPScalarOptimizerLate instruments after the scalar optimizations.
	EPScalarOptimizerLate
	// EPVectorizerStart instruments just before vectorization (the last
	// point before codegen; the configuration used for Figures 9-11).
	EPVectorizerStart
)

// String returns the extension-point name as used in the artifact.
func (ep ExtPoint) String() string {
	switch ep {
	case EPModuleOptimizerEarly:
		return "ModuleOptimizerEarly"
	case EPScalarOptimizerLate:
		return "ScalarOptimizerLate"
	case EPVectorizerStart:
		return "VectorizerStart"
	}
	return "?"
}

// PipelineOptions configure the optimization pipeline.
type PipelineOptions struct {
	// Level 0 disables all optimizations (the hook still runs); levels
	// 1..3 run the full pipeline (the distinction mirrors -O0 vs -O3; the
	// pipeline does not further differentiate 1..3).
	Level int
	// ObfuscatePtrStores enables the PtrObfuscate pass in the late scalar
	// phase, reproducing the LLVM 12 behaviour of Figure 7.
	ObfuscatePtrStores bool
	// Stats, when non-nil, receives pipeline statistics.
	Stats *PipelineStats
	// Trace, when non-nil, records one span per pipeline stage (wall time,
	// instruction and check counts before/after) on track TraceTID. Counting
	// walks the module only while tracing, so disabled runs pay nothing.
	Trace *telemetry.Trace
	// TraceTID is the trace track the spans are recorded on (see
	// telemetry.Trace.Track).
	TraceTID int
}

// PipelineStats reports what the pipeline did.
type PipelineStats struct {
	// ChecksRemovedByCompiler counts instrumentation checks deleted by the
	// compiler's own redundancy elimination (CheckCSE), as opposed to the
	// framework's dominance filter.
	ChecksRemovedByCompiler int
}

// RunPipeline optimizes the module, invoking hook (if non-nil) at the given
// extension point. The stages mirror the paper's setup (LLVM 12 legacy pass
// manager, Figure 8):
//
//	per-function early simplification (SROA/mem2reg, early folding) —
//	    LLVM runs this function pass manager before any module pass, so
//	    even EP_ModuleOptimizerEarly sees promoted scalars
//	[EP ModuleOptimizerEarly]
//	module optimizations: folding, CSE, store-to-load forwarding, LICM
//	[EP ScalarOptimizerLate]
//	late scalar optimizations (optionally incl. pointer-store obfuscation)
//	[EP VectorizerStart]
//	(vectorization - not modelled) and link-time cleanup: folding, CSE,
//	check-redundancy elimination, DCE, simplifycfg
//
// Instrumentation inserted at an early point is optimized by everything
// after it; checks survive (they have side effects), but they also block
// store-to-load forwarding and access CSE around them (a call that may
// abort kills the tracked memory state), which is what makes early
// instrumentation slow (Section 5.5).
func RunPipeline(m *ir.Module, ep ExtPoint, hook func(*ir.Module), o PipelineOptions) {
	// stage runs one pipeline stage, recording a span with before/after
	// module shape when tracing is on. extra, when non-nil, may attach
	// stage-specific arguments before the span is closed.
	stage := func(name string, f func() func(*telemetry.Span)) {
		if !o.Trace.Enabled() {
			f()
			return
		}
		i0, c0 := countInstrsChecks(m)
		sp := o.Trace.Begin(name, o.TraceTID)
		extra := f()
		i1, c1 := countInstrsChecks(m)
		sp.Arg("instrs_before", i0)
		sp.Arg("instrs_after", i1)
		sp.Arg("checks_before", c0)
		sp.Arg("checks_after", c1)
		if extra != nil {
			extra(sp)
		}
		sp.End()
	}
	plain := func(f func()) func() func(*telemetry.Span) {
		return func() func(*telemetry.Span) { f(); return nil }
	}
	runHook := func(p ExtPoint) {
		if hook != nil && ep == p {
			stage("hook:"+p.String(), plain(func() { hook(m) }))
		}
	}

	if o.Level > 0 {
		// Function-level early simplification (SROA/EarlyCSE analog).
		stage("early-simplify", plain(func() {
			RunSequence(m, SimplifyCFG{}, Mem2Reg{}, ConstFold{}, DCE{})
		}))
	}

	runHook(EPModuleOptimizerEarly)

	if o.Level > 0 {
		// Module optimizations: the inliner runs first (as in LLVM's
		// module pass manager), then scalar cleanup over the flattened
		// code.
		stage("module-opt", plain(func() {
			inl := &Inline{}
			inl.RunModule(m)
			RunSequence(m, Mem2Reg{})
			RunToFixpoint(m, 4, ConstFold{}, CSE{}, LoadElim{}, DCE{}, SimplifyCFG{})
			RunSequence(m, LICM{}, ConstFold{}, CSE{}, LoadElim{}, DCE{})
			// Loop unrolling plus the cleanup that merges the unrolled
			// accesses. An instrumented loop body contains check calls and is
			// not unrolled (Section 5.5).
			RunSequence(m, &Unroll{}, SimplifyCFG{})
			RunToFixpoint(m, 3, ConstFold{}, CSE{}, LoadElim{}, DCE{}, SimplifyCFG{})
			RunSequence(m, LICM{}, ConstFold{}, CSE{}, DCE{})
		}))
	}

	runHook(EPScalarOptimizerLate)

	if o.Level > 0 {
		stage("late-scalar", plain(func() {
			if o.ObfuscatePtrStores {
				RunSequence(m, &PtrObfuscate{})
			}
			RunToFixpoint(m, 3, ConstFold{}, CSE{}, LoadElim{}, DCE{})
			RunSequence(m, SimplifyCFG{})
		}))
	}

	runHook(EPVectorizerStart)

	// Link-time cleanup stage (the paper links with LTO enabled).
	if o.Level > 0 {
		stage("link-cleanup", func() func(*telemetry.Span) {
			ccse := &CheckCSE{}
			RunToFixpoint(m, 3, ConstFold{}, CSE{}, ccse, DCE{})
			RunSequence(m, SimplifyCFG{})
			if o.Stats != nil {
				o.Stats.ChecksRemovedByCompiler += ccse.Removed
			}
			return func(sp *telemetry.Span) { sp.Arg("checks_removed_by_compiler", ccse.Removed) }
		})
	}
}

// countInstrsChecks sizes the module for trace spans: total instructions and
// placed instrumentation checks (Tag "check" runtime calls).
func countInstrsChecks(m *ir.Module) (instrs, checks int) {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				instrs++
				if in.Op == ir.OpCall && in.Tag == "check" {
					checks++
				}
			}
		}
	}
	return instrs, checks
}
