package opt

import "repro/internal/ir"

// PtrObfuscate models the LLVM 12 translation shown in Figure 7 of the
// paper: a load of a pointer value that is immediately stored back to memory
// is rewritten to go through i64 — the pointer locations are bitcast to
// i64*, the value travels as an integer.
//
// The transformation is semantics-preserving for the program, but it is
// devastating for memory-safety instrumentations (Section 4.4): SoftBound
// only updates its metadata trie at *pointer-typed* stores, so the integer
// store leaves the bounds for the destination slot stale — a later load of
// the pointer picks up wrong bounds, producing spurious violations (or
// missed ones). Low-Fat Pointers lose their escape check at the store but
// re-derive the base from the value on the later load, so nothing breaks as
// long as the value itself was in bounds.
//
// The pass is not part of the default -O3 pipeline; the swapbug example and
// the usability test suite enable it explicitly to reproduce the paper's
// case study.
type PtrObfuscate struct {
	// Rewritten counts transformed load/store pairs.
	Rewritten int
}

// Name returns the pass name.
func (*PtrObfuscate) Name() string { return "ptrobfuscate" }

// Run executes the pass.
func (p *PtrObfuscate) Run(f *ir.Func) bool {
	changed := false
	users := ir.ComputeUsers(f)
	i64ptr := ir.PointerTo(ir.I64)
	bld := ir.NewBuilder(f)

	// Collect candidates first; the rewrite mutates the blocks.
	var candidates []*ir.Instr
	f.Instrs(func(ld *ir.Instr) bool {
		if ld.Op != ir.OpLoad || !ld.Ty.IsPointer() {
			return true
		}
		uses := users[ld]
		if len(uses) == 0 {
			return true
		}
		// All uses must be stores of the loaded value (not through it).
		for _, u := range uses {
			if u.Op != ir.OpStore || u.StoredValue() != ld {
				return true
			}
		}
		candidates = append(candidates, ld)
		return true
	})

	for _, ld := range candidates {
		// Rewrite: load i64 from a bitcast source, store i64 to bitcast
		// destinations.
		bld.SetBefore(ld)
		srcCast := bld.Bitcast(ld.Operands[0], i64ptr)
		intLoad := bld.Load(srcCast)
		for _, st := range users[ld] {
			bld.SetBefore(st)
			dstCast := bld.Bitcast(st.Operands[1], i64ptr)
			bld.Store(intLoad, dstCast)
			st.Block.Remove(st)
		}
		ld.Block.Remove(ld)
		p.Rewritten++
		changed = true
	}
	return changed
}
