package opt

import (
	"repro/internal/analysis"
	"repro/internal/ir"
)

// LICM hoists loop-invariant pure computations (arithmetic, comparisons,
// casts, geps, selects) into the loop preheader. It never hoists memory
// accesses or calls: an inserted safety check is a call that may abort, so
// instrumented loops keep their checks inside — the mechanism behind the
// slow ModuleOptimizerEarly extension point (Section 5.5).
type LICM struct{}

// Name returns the pass name.
func (LICM) Name() string { return "licm" }

// Run executes the pass.
func (LICM) Run(f *ir.Func) bool {
	if f.Entry() == nil {
		return false
	}
	dt := analysis.NewDomTree(f)
	li := analysis.FindLoops(f, dt)
	changed := false

	for _, loop := range li.Loops {
		pre := preheader(loop)
		if pre == nil {
			continue
		}
		// Loads may be hoisted only out of loops that contain no stores
		// and no calls at all: a call might write the loaded location, and
		// even a non-writing call might abort — moving a potentially
		// faulting load above it changes behaviour. Inserted safety checks
		// are calls, so they pin loads inside the loop; this is the "checks
		// are very effective at preventing optimizations" effect of
		// Section 5.5.
		loadsSafe := loopIsReadOnly(loop)
		// Iterate to a fixpoint within the loop: hoisting one instruction
		// can make its users invariant.
		for {
			hoisted := false
			for _, b := range loop.Body {
				for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
					if in.Op == ir.OpLoad {
						if !loadsSafe || !speculatableAddress(in.Operands[0]) {
							continue
						}
					} else if !hoistable(in) {
						continue
					}
					if !operandsInvariant(in, loop) {
						continue
					}
					b.Remove(in)
					pre.InsertBefore(in, pre.Terminator())
					hoisted = true
					changed = true
				}
			}
			if !hoisted {
				break
			}
		}
	}
	return changed
}

// loopIsReadOnly reports whether the loop contains no stores and no calls.
func loopIsReadOnly(l *analysis.Loop) bool {
	for b := range l.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpStore || in.Op == ir.OpCall {
				return false
			}
		}
	}
	return true
}

// speculatableAddress reports whether loading from v cannot fault when
// executed speculatively in the preheader: any address rooted in a global
// or an alloca (gep/bitcast chains included).
func speculatableAddress(v ir.Value) bool {
	return rootObject(v) != nil
}

// preheader returns the unique predecessor of the loop header outside the
// loop, provided it branches unconditionally to the header.
func preheader(l *analysis.Loop) *ir.Block {
	var pre *ir.Block
	for _, p := range ir.Preds(l.Header) {
		if l.Contains(p) {
			continue
		}
		if pre != nil {
			return nil
		}
		pre = p
	}
	if pre == nil {
		return nil
	}
	if t := pre.Terminator(); t == nil || t.Op != ir.OpBr {
		return nil
	}
	return pre
}

func hoistable(in *ir.Instr) bool {
	switch {
	case in.IsBinaryOp():
		// Division may trap; do not speculate it.
		switch in.Op {
		case ir.OpSDiv, ir.OpUDiv, ir.OpSRem, ir.OpURem:
			return false
		}
		return true
	case in.Op == ir.OpICmp, in.Op == ir.OpFCmp, in.Op == ir.OpGEP, in.Op == ir.OpSelect:
		return true
	case in.IsCast():
		return true
	}
	return false
}

func operandsInvariant(in *ir.Instr, l *analysis.Loop) bool {
	for _, op := range in.Operands {
		if def, ok := op.(*ir.Instr); ok {
			if def.Block != nil && l.Contains(def.Block) {
				return false
			}
		}
	}
	return true
}
