package opt

import (
	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/rt"
	"repro/internal/telemetry"
)

// HoistStats reports what HoistChecks changed.
type HoistStats struct {
	// Hoisted counts per-iteration checks removed from loop bodies.
	Hoisted int
	// RangeChecks counts preheader range checks placed. It can be lower
	// than Hoisted only in theory (every hoisted check currently gets its
	// own range check; later cleanup CSE may merge identical ones).
	RangeChecks int
}

// HoistChecks replaces per-iteration dereference checks in counted loops
// with a single widened range check in the loop preheader. For a check
// guarding an access whose pointer is an affine function of the loop's
// induction variable, the pointers of the first and last iteration bound
// the pointers of every iteration, so checking the two endpoints covers the
// whole loop (both mechanisms check contiguous [base, bound) style regions).
//
// Soundness — no false positives — rests on only hoisting checks whose
// every covered iteration is guaranteed to execute:
//
//   - analysis.AnalyzeCountedLoop accepts only loops whose executed IV
//     values are exactly {start, start+step, ..., bound+LastDelta}, with
//     the header as the only exit (see its property test);
//   - the check's block must dominate the latch, so it executes on every
//     iteration that enters the body;
//   - the loop must contain no calls besides runtime intrinsics and no
//     division: a callee that exits or a trap before the violating
//     iteration would otherwise turn a clean exit into a detection;
//   - the emitted range check carries the loop's entry condition, so a
//     zero-trip loop checks nothing.
//
// Pointer arithmetic is assumed non-wrapping across the iteration space,
// the IR-level equivalent of LLVM's inbounds/nsw flags (C makes signed
// index overflow undefined); the endpoint pointers themselves are
// rematerialized through the original instruction chain, so they match the
// real first/last-iteration pointers bit for bit.
//
// A widened check may report a violation on loop entry that the original
// program would have reported some iterations later: the verdict class is
// identical (same mechanism, same "deref" kind), only earlier.
func HoistChecks(m *ir.Module, sites *telemetry.SiteTable) HoistStats {
	var st HoistStats
	for _, f := range m.Funcs {
		if len(f.Blocks) == 0 || f.IgnoreInstrumentation {
			continue
		}
		hoistFunc(m, f, sites, &st)
	}
	return st
}

func hoistFunc(m *ir.Module, f *ir.Func, sites *telemetry.SiteTable, st *HoistStats) {
	dt := analysis.NewDomTree(f)
	li := analysis.FindLoops(f, dt)
	for _, cl := range analysis.CountedLoopsOf(li) {
		loop := cl.Loop
		if !loopAbortsOnlyOnChecks(loop) {
			continue
		}
		h := &hoister{m: m, f: f, cl: cl, sites: sites}
		for _, b := range loop.Body {
			// A check hoists only if it executes on every iteration that
			// enters the body: its block must dominate the latch. Header
			// checks are excluded — the header runs once more than the
			// body (and once even for zero-trip loops), so they guard
			// accesses outside the covered range.
			if b == cl.Loop.Header || !dt.Dominates(b, cl.Latch) {
				continue
			}
			for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
				if h.tryHoist(in) {
					st.Hoisted++
					st.RangeChecks++
				}
			}
		}
	}
}

// loopAbortsOnlyOnChecks reports whether every early termination the loop
// can cause comes from an inserted check: no calls to anything but runtime
// intrinsics (a callee could exit) and no division (a divide trap). Either
// could stop the program before the iteration a hoisted check reports on.
func loopAbortsOnlyOnChecks(l *analysis.Loop) bool {
	for _, b := range l.Body {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpCall:
				callee := in.Callee()
				if callee == nil || !rt.IsIntrinsic(callee.Name) {
					return false
				}
			case ir.OpSDiv, ir.OpUDiv, ir.OpSRem, ir.OpURem:
				return false
			}
		}
	}
	return true
}

// hoister carries the per-loop state of the transformation.
type hoister struct {
	m     *ir.Module
	f     *ir.Func
	cl    *analysis.CountedLoop
	sites *telemetry.SiteTable
}

// tryHoist hoists one eligible check call, returning whether it did.
func (h *hoister) tryHoist(in *ir.Instr) bool {
	if in.Op != ir.OpCall || in.Tag != "check" {
		return false
	}
	callee := in.Callee()
	if callee == nil {
		return false
	}
	var rangeName string
	switch callee.Name {
	case rt.SBCheck:
		rangeName = rt.SBCheckRange
	case rt.LFCheck:
		rangeName = rt.LFCheckRange
	default:
		return false
	}
	args := in.Args()
	ptr := args[0]
	// Width and the witness operands (base, and bound for SoftBound) must
	// not vary across iterations; the pointer must be affine in the IV —
	// and actually use it, or hoisting is LICM's job, not ours.
	for _, a := range args[1:] {
		if !analysis.LoopInvariant(h.cl.Loop, a) {
			return false
		}
	}
	usesIV, affine := h.affine(ptr, make(map[ir.Value]bool))
	if !affine || !usesIV {
		return false
	}

	bld := ir.NewBuilder(h.f)
	bld.SetBefore(h.cl.Preheader.Terminator())
	bld.SetLoc(in.Loc)

	// The IV value of the last executed iteration, and the loop's entry
	// condition (false => zero-trip => the range check must pass).
	ivTy := h.cl.IV.Ty
	var lastVal ir.Value
	switch h.cl.LastDelta() {
	case 0:
		lastVal = h.cl.Bound
	case -1:
		lastVal = bld.Sub(h.cl.Bound, ir.NewInt(ivTy, 1))
	default:
		lastVal = bld.Add(h.cl.Bound, ir.NewInt(ivTy, 1))
	}
	nonempty := bld.ICmp(h.cl.Pred, h.cl.Start, h.cl.Bound)

	pLo := h.remat(bld, ptr, h.cl.Start, make(map[ir.Value]ir.Value))
	pHi := h.remat(bld, ptr, lastVal, make(map[ir.Value]ir.Value))

	rangeFn := rt.Declare(h.m, rangeName)
	var c *ir.Instr
	if rangeName == rt.SBCheckRange {
		c = bld.Call(rangeFn, pLo, pHi, args[1], args[2], args[3], nonempty)
	} else {
		c = bld.Call(rangeFn, pLo, pHi, args[1], args[2], nonempty)
	}
	c.Tag = "check"
	if h.sites != nil {
		width := 0
		if w, ok := args[1].(*ir.ConstInt); ok {
			width = int(w.Signed())
		}
		old := h.sites.Get(in.Site)
		mech := "softbound"
		if rangeName == rt.LFCheckRange {
			mech = "lowfat"
		}
		c.Site = h.sites.Add("rangecheck", mech, width, h.f.Name, in.Loc)
		if old != nil {
			old.Status = "hoisted"
			old.By = c.Site
		}
	}
	in.Block.Remove(in)
	return true
}

// affine reports whether v is an affine (degree-one) function of the loop's
// IV, and whether the IV actually occurs in it. visiting breaks cycles
// through in-loop phis (which are never affine here anyway).
func (h *hoister) affine(v ir.Value, visiting map[ir.Value]bool) (usesIV, ok bool) {
	if v == h.cl.IV {
		return true, true
	}
	if analysis.LoopInvariant(h.cl.Loop, v) {
		return false, true
	}
	in, isInstr := v.(*ir.Instr)
	if !isInstr || visiting[v] {
		return false, false
	}
	visiting[v] = true
	defer delete(visiting, v)
	switch in.Op {
	case ir.OpAdd, ir.OpSub:
		u0, ok0 := h.affine(in.Operands[0], visiting)
		u1, ok1 := h.affine(in.Operands[1], visiting)
		return u0 || u1, ok0 && ok1
	case ir.OpMul:
		// Affine times invariant stays affine; IV*IV would not.
		u0, ok0 := h.affine(in.Operands[0], visiting)
		u1, ok1 := h.affine(in.Operands[1], visiting)
		return u0 || u1, ok0 && ok1 && !(u0 && u1)
	case ir.OpSExt, ir.OpZExt, ir.OpBitcast:
		return h.affine(in.Operands[0], visiting)
	case ir.OpGEP:
		uses := false
		for _, op := range in.Operands {
			u, ok := h.affine(op, visiting)
			if !ok {
				return false, false
			}
			uses = uses || u
		}
		return uses, true
	}
	return false, false
}

// remat rebuilds the pointer chain of v in the preheader with the IV
// replaced by ivVal, cloning exactly the instructions the affine walk
// accepted. memo keeps shared subexpressions shared.
func (h *hoister) remat(bld *ir.Builder, v ir.Value, ivVal ir.Value, memo map[ir.Value]ir.Value) ir.Value {
	if v == h.cl.IV {
		return ivVal
	}
	if analysis.LoopInvariant(h.cl.Loop, v) {
		return v
	}
	if r, ok := memo[v]; ok {
		return r
	}
	in := v.(*ir.Instr)
	ni := &ir.Instr{
		Op: in.Op, Ty: in.Ty, Pred: in.Pred, AllocTy: in.AllocTy,
		SrcTy: in.SrcTy, Name: in.Name, Tag: in.Tag, Loc: in.Loc,
	}
	h.f.AdoptInstr(ni)
	for _, op := range in.Operands {
		ni.Operands = append(ni.Operands, h.remat(bld, op, ivVal, memo))
	}
	h.cl.Preheader.InsertBefore(ni, h.cl.Preheader.Terminator())
	memo[v] = ni
	return ni
}
