package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mi_test_total", "test counter", L("kind", "a"))
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
	// Same name+labels returns the same series.
	if again := r.Counter("mi_test_total", "test counter", L("kind", "a")); again.Value() != 3 {
		t.Errorf("re-lookup = %d, want 3", again.Value())
	}
	// Different labels are a distinct series.
	if other := r.Counter("mi_test_total", "test counter", L("kind", "b")); other.Value() != 0 {
		t.Errorf("other series = %d, want 0", other.Value())
	}

	g := r.Gauge("mi_test_depth", "test gauge")
	g.Set(5)
	g.Dec()
	g.Add(-2)
	if g.Value() != 2 {
		t.Errorf("gauge = %d, want 2", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mi_test_seconds", "test histogram", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if got := h.Sum(); got < 5.55 || got > 5.56 {
		t.Errorf("sum = %g, want 5.555", got)
	}
	var b bytes.Buffer
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`mi_test_seconds_bucket{le="0.01"} 1`,
		`mi_test_seconds_bucket{le="0.1"} 2`,
		`mi_test_seconds_bucket{le="1"} 3`,
		`mi_test_seconds_bucket{le="+Inf"} 4`,
		`mi_test_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramBoundaryIsInclusive pins le semantics: an observation equal
// to a bound lands in that bound's bucket, as in Prometheus.
func TestHistogramBoundaryIsInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mi_edge_seconds", "edge", []float64{1, 2})
	h.Observe(1)
	var b bytes.Buffer
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `mi_edge_seconds_bucket{le="1"} 1`) {
		t.Errorf("observation at bound not counted in its bucket:\n%s", b.String())
	}
}

func TestPrometheusDeterministicAndEscaped(t *testing.T) {
	r := NewRegistry()
	r.Counter("mi_b_total", "b", L("x", "1")).Inc()
	r.Counter("mi_a_total", "a", L("engine", "tree"), L("status", `quo"ted`)).Inc()
	r.Gauge("mi_a_gauge", "g").Set(7)

	var first, second bytes.Buffer
	r.WritePrometheus(&first)
	r.WritePrometheus(&second)
	if first.String() != second.String() {
		t.Error("exposition is not deterministic across scrapes")
	}
	out := first.String()
	if !strings.Contains(out, `mi_a_total{engine="tree",status="quo\"ted"} 1`) {
		t.Errorf("label escaping/order wrong:\n%s", out)
	}
	if strings.Index(out, "mi_a_gauge") > strings.Index(out, "mi_b_total") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
	for _, want := range []string{"# HELP mi_a_total a", "# TYPE mi_a_total counter", "# TYPE mi_a_gauge gauge"} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestMismatchedRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("mi_x_total", "x")
	for name, re := range map[string]func(){
		"type": func() { r.Gauge("mi_x_total", "x") },
		"labels": func() {
			r.Counter("mi_x_total", "x", L("new", "label"))
		},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("mismatched registration did not panic")
				}
			}()
			re()
		})
	}
}

func TestNilRegistryIsNeutral(t *testing.T) {
	var r *Registry
	c := r.Counter("mi_nil_total", "nil")
	g := r.Gauge("mi_nil_gauge", "nil")
	h := r.Histogram("mi_nil_seconds", "nil", nil)
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Dec()
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil instruments must no-op")
	}
	var b bytes.Buffer
	r.WritePrometheus(&b)
	if b.Len() != 0 {
		t.Error("nil registry wrote exposition")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot != nil")
	}
}

func TestSnapshotRoundTripAndAggregates(t *testing.T) {
	r := NewRegistry()
	r.Counter("mi_cells_total", "cells", L("status", "ok")).Add(10)
	r.Counter("mi_cells_total", "cells", L("status", "failed")).Add(2)
	r.Histogram("mi_exec_seconds", "exec", []float64{1}, L("engine", "tree")).Observe(0.5)
	r.Histogram("mi_exec_seconds", "exec", []float64{1}, L("engine", "bytecode")).Observe(2)

	snap := r.Snapshot()
	if got := snap.SumCounter("mi_cells_total"); got != 12 {
		t.Errorf("SumCounter = %g, want 12", got)
	}
	if got := snap.SumHistogramCount("mi_exec_seconds"); got != 2 {
		t.Errorf("SumHistogramCount = %d, want 2", got)
	}
	p := snap.Find("mi_cells_total", map[string]string{"status": "ok"})
	if p == nil || p.Value != 10 {
		t.Fatalf("Find(ok) = %+v, want value 10", p)
	}

	// JSON round trip preserves every point.
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.SumCounter("mi_cells_total") != 12 || back.SumHistogramCount("mi_exec_seconds") != 2 {
		t.Error("snapshot did not survive the JSON round trip")
	}
	if !strings.Contains(back.Render(), "mi_cells_total") {
		t.Error("rendered table missing series")
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("mi_conc_total", "c", L("w", "x")).Inc()
				r.Histogram("mi_conc_seconds", "h", nil).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("mi_conc_total", "c", L("w", "x")).Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("mi_conc_seconds", "h", nil).Count(); got != 8000 {
		t.Errorf("concurrent histogram count = %d, want 8000", got)
	}
}

func TestTraceIDs(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace id %q: want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

func TestLoggerConstruction(t *testing.T) {
	var b bytes.Buffer
	l, err := NewLogger(&b, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("hello", "trace_id", "abc123")
	var rec map[string]any
	if err := json.Unmarshal(b.Bytes(), &rec); err != nil {
		t.Fatalf("json log record: %v (%q)", err, b.String())
	}
	if rec["msg"] != "hello" || rec["trace_id"] != "abc123" {
		t.Errorf("record = %v", rec)
	}

	b.Reset()
	l, err = NewLogger(&b, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("dropped")
	l.Warn("kept")
	if out := b.String(); strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Errorf("level filtering wrong: %q", out)
	}

	if _, err := NewLogger(&b, "nope", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(&b, "info", "xml"); err == nil {
		t.Error("bad format accepted")
	}
}
