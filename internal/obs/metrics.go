// Package obs is the repo's dependency-free observability plane: a metrics
// registry (atomic counters, gauges and fixed-bucket histograms with label
// support, exposed in Prometheus text format and snapshottable into JSON
// reports), trace-ID minting for end-to-end request tracing, and log/slog
// construction for structured logging. Every type is nil-safe in the same
// way telemetry.Trace is: a nil *Registry hands out nil instruments whose
// methods are no-ops, so instrumented code paths need no conditionals and
// the default (observability off) path stays neutral.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to a metric series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing integer. The zero value is ready to
// use; a nil *Counter no-ops.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable integer (queue depths, busy workers). A nil *Gauge
// no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefBuckets are the default latency histogram buckets, in seconds: 1ms to
// 10s, roughly exponential — cell executions span from sub-millisecond cache
// hits to multi-second instrumented runs.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Histogram is a fixed-bucket distribution. Buckets are cumulative upper
// bounds (an implicit +Inf bucket catches the rest). A nil *Histogram
// no-ops.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family is one named metric: a type, a help string, a label schema, and the
// series instantiated under it.
type family struct {
	name       string
	help       string
	typ        string
	labelNames []string
	bounds     []float64 // histograms only
	series     map[string]*series
}

type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds metric families and hands out their series. Safe for
// concurrent use; a nil *Registry hands out nil instruments, so callers
// instrument unconditionally and pay nothing when observability is off.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// seriesKey is the canonical identity of a label set within a family.
func seriesKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + "=" + l.Value
	}
	sort.Strings(parts)
	return strings.Join(parts, "\xff")
}

// labelSchema extracts the sorted label names of a set.
func labelSchema(labels []Label) []string {
	names := make([]string, len(labels))
	for i, l := range labels {
		names[i] = l.Name
	}
	sort.Strings(names)
	return names
}

// lookup finds or creates the family and series for one instrument request.
// Mismatched reuse of a name (different type or label schema) is a
// programming error and panics with the conflict spelled out.
func (r *Registry) lookup(name, help, typ string, bounds []float64, labels []Label) *series {
	schema := labelSchema(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name: name, help: help, typ: typ,
			labelNames: schema, bounds: bounds,
			series: make(map[string]*series),
		}
		r.families[name] = f
	} else {
		if f.typ != typ {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
		}
		if strings.Join(f.labelNames, ",") != strings.Join(schema, ",") {
			panic(fmt.Sprintf("obs: metric %q has labels %v, requested with %v", name, f.labelNames, schema))
		}
	}
	key := seriesKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: append([]Label(nil), labels...)}
		switch typ {
		case typeCounter:
			s.c = &Counter{}
		case typeGauge:
			s.g = &Gauge{}
		case typeHistogram:
			s.h = &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}
		}
		f.series[key] = s
	}
	return s
}

// Counter returns (creating on first use) the counter series under name with
// the given labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeCounter, nil, labels).c
}

// Gauge returns (creating on first use) the gauge series under name with the
// given labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeGauge, nil, labels).g
}

// Histogram returns (creating on first use) the histogram series under name
// with the given labels. buckets (nil = DefBuckets) must be ascending; the
// first registration of a name fixes its buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.lookup(name, help, typeHistogram, buckets, labels).h
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// renderLabels renders a label set ({a="x",b="y"}), with extra appended last
// (the histogram le bound). Labels render in sorted-name order so the
// exposition is deterministic.
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = l.Name + `="` + escapeLabel(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// formatBound renders a bucket upper bound the way Prometheus expects
// (trailing zeros trimmed, "+Inf" for the overflow bucket).
func formatBound(b float64) string {
	if math.IsInf(b, +1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", b)
}

// WritePrometheus writes every family in Prometheus text exposition format,
// families sorted by name and series by label set, so scrapes are
// deterministic and diffable.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		f.writeSeries(w)
	}
}

// sortedSeries snapshots a family's series in deterministic order.
func (f *family) sortedSeries() []*series {
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, len(keys))
	for i, k := range keys {
		out[i] = f.series[k]
	}
	return out
}

func (f *family) writeSeries(w io.Writer) {
	for _, s := range f.sortedSeries() {
		switch f.typ {
		case typeCounter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(s.labels), s.c.Value())
		case typeGauge:
			fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(s.labels), s.g.Value())
		case typeHistogram:
			cum := uint64(0)
			for i, b := range f.bounds {
				cum += s.h.counts[i].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(s.labels, L("le", formatBound(b))), cum)
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(s.labels, L("le", "+Inf")), s.h.Count())
			fmt.Fprintf(w, "%s_sum%s %g\n", f.name, renderLabels(s.labels), s.h.Sum())
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(s.labels), s.h.Count())
		}
	}
}
