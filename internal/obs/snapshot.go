package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Snapshot is a point-in-time copy of a registry, JSON-shaped for embedding
// in offline reports (mi-bench -metrics puts one in the PerfReport;
// mi-prof -metrics renders it back as a table).
type Snapshot struct {
	Metrics []MetricPoint `json:"metrics"`
}

// MetricPoint is one series of the snapshot.
type MetricPoint struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value carries counters and gauges.
	Value float64 `json:"value,omitempty"`
	// Count/Sum/Buckets carry histograms; bucket counts are cumulative,
	// matching the Prometheus exposition.
	Count   uint64        `json:"count,omitempty"`
	Sum     float64       `json:"sum,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one cumulative histogram bucket.
type BucketCount struct {
	LE string `json:"le"`
	N  uint64 `json:"n"`
}

// Snapshot copies the registry's current state in deterministic order.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	snap := &Snapshot{Metrics: []MetricPoint{}}
	for _, f := range fams {
		for _, s := range f.sortedSeries() {
			p := MetricPoint{Name: f.name, Type: f.typ}
			if len(s.labels) > 0 {
				p.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					p.Labels[l.Name] = l.Value
				}
			}
			switch f.typ {
			case typeCounter:
				p.Value = float64(s.c.Value())
			case typeGauge:
				p.Value = float64(s.g.Value())
			case typeHistogram:
				p.Count = s.h.Count()
				p.Sum = s.h.Sum()
				cum := uint64(0)
				for i, b := range f.bounds {
					cum += s.h.counts[i].Load()
					p.Buckets = append(p.Buckets, BucketCount{LE: formatBound(b), N: cum})
				}
				p.Buckets = append(p.Buckets, BucketCount{LE: "+Inf", N: p.Count})
			}
			snap.Metrics = append(snap.Metrics, p)
		}
	}
	return snap
}

// labelString renders a point's labels as {a="x",b="y"} in sorted order.
func (p MetricPoint) labelString() string {
	if len(p.Labels) == 0 {
		return ""
	}
	names := make([]string, 0, len(p.Labels))
	for n := range p.Labels {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%q", n, p.Labels[n])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Render formats the snapshot as an aligned text table: one row per series,
// histograms summarized as count/sum/mean.
func (s *Snapshot) Render() string {
	if s == nil || len(s.Metrics) == 0 {
		return "no metrics in snapshot (collect with mi-bench -metrics)\n"
	}
	rows := make([][2]string, 0, len(s.Metrics))
	width := 0
	for _, p := range s.Metrics {
		name := p.Name + p.labelString()
		var val string
		switch p.Type {
		case typeHistogram:
			mean := 0.0
			if p.Count > 0 {
				mean = p.Sum / float64(p.Count)
			}
			val = fmt.Sprintf("count=%d sum=%.3fs mean=%.1fms", p.Count, p.Sum, 1000*mean)
		default:
			val = fmt.Sprintf("%g", p.Value)
		}
		rows = append(rows, [2]string{name, val})
		if len(name) > width {
			width = len(name)
		}
	}
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s  %s\n", width, r[0], r[1])
	}
	return b.String()
}

// Find returns the first point matching name and (subset) labels, or nil —
// test and tooling convenience.
func (s *Snapshot) Find(name string, labels map[string]string) *MetricPoint {
	if s == nil {
		return nil
	}
	for i := range s.Metrics {
		p := &s.Metrics[i]
		if p.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if p.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return p
		}
	}
	return nil
}

// SumCounter totals every series of a counter family — the cross-label
// aggregate the CI invariants compare against report cell counts.
func (s *Snapshot) SumCounter(name string) float64 {
	if s == nil {
		return 0
	}
	total := 0.0
	for _, p := range s.Metrics {
		if p.Name == name && p.Type == typeCounter {
			total += p.Value
		}
	}
	return total
}

// SumHistogramCount totals the observation counts of every series of a
// histogram family.
func (s *Snapshot) SumHistogramCount(name string) uint64 {
	if s == nil {
		return 0
	}
	var total uint64
	for _, p := range s.Metrics {
		if p.Name == name && p.Type == typeHistogram {
			total += p.Count
		}
	}
	return total
}
