package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	mrand "math/rand"
	"strings"
	"sync"
)

// Structured logging: every CLI builds its logger here from the shared
// -log-level / -log-format flag vocabulary, so server, harness and
// supervisor records look the same everywhere and always carry the same
// keys (bench, config, engine, trace_id).

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (debug, info, warn, error)", s)
}

// NewLogger builds a slog.Logger writing to w. format is "text" (default) or
// "json"; level is parsed by ParseLevel. Timestamps are kept — these are
// operational logs, not report artifacts.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (text, json)", format)
}

// TextLogger is NewLogger(w, "info", "text") without the error plumbing —
// the default for -progress style writers.
func TextLogger(w io.Writer) *slog.Logger {
	l, _ := NewLogger(w, "info", "text")
	return l
}

// traceFallback seeds a process-local generator used only if crypto/rand
// fails (it effectively never does); guarded because math/rand sources are
// not concurrency-safe.
var (
	traceMu       sync.Mutex
	traceFallback = mrand.New(mrand.NewSource(0x7ace))
)

// NewTraceID mints a 16-hex-character request trace ID. IDs are minted at
// the HTTP boundary (one per campaign request) or per campaign in mi-bench,
// stamped on every span and log record the request touches, so one grep (or
// one Perfetto query) follows a request across scheduler, supervisor and
// engine.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		traceMu.Lock()
		traceFallback.Read(b[:])
		traceMu.Unlock()
	}
	return hex.EncodeToString(b[:])
}
