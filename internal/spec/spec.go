// Package spec provides the benchmark suite of the evaluation: 20 synthetic
// C programs standing in for the C benchmarks of SPEC CPU2000/2006 that the
// paper evaluates (Section 5.1.1). SPEC is proprietary, so each program here
// is modelled on the *memory-access profile* of its namesake and on the
// specific feature the paper attributes its behaviour to:
//
//   - 164.gzip declares its large work arrays as size-zero externs in a
//     second translation unit (Section 4.3) — SoftBound loses their bounds.
//   - 429.mcf makes one allocation beyond the largest low-fat region size —
//     Low-Fat Pointers cannot protect it (Section 4.6).
//   - 183.equake loads pointers inside its hot loop — SoftBound pays trie
//     lookups where Low-Fat Pointers just recompute the base (Section 5.2).
//   - 186.crafty performs dense, provably-in-bounds array accesses — the
//     cheaper SoftBound check wins (Section 5.2).
//   - 197.parser and 464.h264ref store many pointers to memory — SoftBound's
//     metadata maintenance dominates (Section 5.4).
//   - 177.mesa, 188.ammp, 197.parser and 300.twolf access storage owned by
//     an uninstrumented library — wide bounds for Low-Fat Pointers
//     (Section 4.3).
//
// The per-benchmark parameters were chosen so that the distribution of
// dereference kinds (heap/stack/global, pointer loads, pointer stores)
// roughly tracks the published profiles of the originals; absolute run times
// are meaningless here, only relative overheads are reported.
package spec

import (
	"embed"
	"fmt"
	"strings"

	"repro/internal/cc"
	"repro/internal/ir"
)

//go:embed progs/*.c
var progFS embed.FS

// Benchmark describes one benchmark program.
type Benchmark struct {
	// Name is the SPEC-style benchmark name, e.g. "164gzip".
	Name string
	// Suite is "cpu2000" or "cpu2006".
	Suite string
	// Files are the program's translation units (paths under progs/).
	Files []string
	// ExtLibGlobals lists globals owned by an uninstrumented library: the
	// VM places them outside the low-fat regions (Section 4.3).
	ExtLibGlobals []string
	// ExtLibFuncs lists functions belonging to an uninstrumented library;
	// they are excluded from instrumentation.
	ExtLibFuncs []string
	// Expect is the program's full expected output (self-checksumming);
	// empty disables the check.
	Expect string
}

// Compile builds the benchmark into a fresh linked module and applies the
// external-library markings.
func (b *Benchmark) Compile() (*ir.Module, error) {
	var sources []cc.Source
	for _, f := range b.Files {
		data, err := progFS.ReadFile("progs/" + f)
		if err != nil {
			return nil, fmt.Errorf("spec: %s: %w", b.Name, err)
		}
		sources = append(sources, cc.Source{Name: f, Code: string(data)})
	}
	m, err := cc.Compile(b.Name, sources...)
	if err != nil {
		return nil, fmt.Errorf("spec: %s: %w", b.Name, err)
	}
	for _, name := range b.ExtLibGlobals {
		g := m.Global(name)
		if g == nil {
			return nil, fmt.Errorf("spec: %s: extlib global %q not found", b.Name, name)
		}
		g.ExternalLib = true
	}
	for _, name := range b.ExtLibFuncs {
		f := m.Func(name)
		if f == nil {
			return nil, fmt.Errorf("spec: %s: extlib function %q not found", b.Name, name)
		}
		f.IgnoreInstrumentation = true
	}
	return m, nil
}

// All returns the 20 benchmarks of the evaluation in the paper's order
// (Table 2).
func All() []*Benchmark { return benchmarks }

// ByName returns the benchmark with the given name, or nil.
func ByName(name string) *Benchmark {
	for _, b := range benchmarks {
		if b.Name == name || strings.TrimLeft(b.Name, "0123456789") == name {
			return b
		}
	}
	return nil
}

// InfLoop is a non-terminating fixture for the supervision layer's watchdog
// tests: it spins forever, so only a step budget or a raised interrupt flag
// ends it. Deliberately not in the campaign benchmark list (All/ByName).
var InfLoop = &Benchmark{Name: "infloop", Suite: "fixture", Files: []string{"infloop.c"}}

var benchmarks = []*Benchmark{
	{Name: "164gzip", Suite: "cpu2000", Files: []string{"gzip_main.c", "gzip_tables.c"}},
	{Name: "177mesa", Suite: "cpu2000", Files: []string{"mesa.c"},
		ExtLibGlobals: []string{"gl_dispatch_table"}},
	{Name: "179art", Suite: "cpu2000", Files: []string{"art.c"}},
	{Name: "181mcf", Suite: "cpu2000", Files: []string{"mcf2000.c"}},
	{Name: "183equake", Suite: "cpu2000", Files: []string{"equake.c"}},
	{Name: "186crafty", Suite: "cpu2000", Files: []string{"crafty.c"}},
	{Name: "188ammp", Suite: "cpu2000", Files: []string{"ammp.c"},
		ExtLibGlobals: []string{"vendor_units"}},
	{Name: "197parser", Suite: "cpu2000", Files: []string{"parser.c"},
		ExtLibGlobals: []string{"dict_pool"}},
	{Name: "256bzip2", Suite: "cpu2000", Files: []string{"bzip2_2000.c"}},
	{Name: "300twolf", Suite: "cpu2000", Files: []string{"twolf.c"},
		ExtLibGlobals: []string{"pad_library"}},
	{Name: "401bzip2", Suite: "cpu2006", Files: []string{"bzip2_2006.c"}},
	{Name: "429mcf", Suite: "cpu2006", Files: []string{"mcf2006.c"}},
	{Name: "433milc", Suite: "cpu2006", Files: []string{"milc_main.c", "milc_tables.c"}},
	{Name: "445gobmk", Suite: "cpu2006", Files: []string{"gobmk_main.c", "gobmk_tables.c"}},
	{Name: "456hmmer", Suite: "cpu2006", Files: []string{"hmmer_main.c", "hmmer_tables.c"}},
	{Name: "458sjeng", Suite: "cpu2006", Files: []string{"sjeng_main.c", "sjeng_tables.c"}},
	{Name: "462libquantum", Suite: "cpu2006", Files: []string{"libquantum.c"}},
	{Name: "464h264ref", Suite: "cpu2006", Files: []string{"h264ref.c"}},
	{Name: "470lbm", Suite: "cpu2006", Files: []string{"lbm.c"}},
	{Name: "482sphinx3", Suite: "cpu2006", Files: []string{"sphinx3.c"}},
}
