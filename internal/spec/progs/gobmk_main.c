/* 445.gobmk stand-in: Go board pattern matching and liberty counting —
 * flood fills over a board array plus pattern-table scans. The influence
 * cache is declared here as a size-zero extern (defined in gobmk_tables.c)
 * and consulted on a minority of moves: SoftBound checks those accesses
 * with wide bounds (0.66% in Table 2). */

#include <stdio.h>

#define BOARD 19
#define SQ (BOARD * BOARD)
#define GAMES 3
#define MOVES_PER_GAME 260

extern float influence_cache[];
void influence_reset(void);

int board[SQ];
int marks[SQ];
int stack_arr[SQ];
unsigned int rng;

int trand(int mod) {
    rng = rng * 1103515245u + 12345u;
    return (int)((rng >> 16) % (unsigned int)mod);
}

int count_liberties(int start, int color) {
    int sp = 0, libs = 0, i;
    for (i = 0; i < SQ; i++) marks[i] = 0;
    stack_arr[sp] = start;
    sp++;
    marks[start] = 1;
    while (sp > 0) {
        int pos, r, c;
        sp--;
        pos = stack_arr[sp];
        r = pos / BOARD;
        c = pos % BOARD;
        {
            int dr[4];
            int dc[4];
            int d;
            dr[0] = 1; dr[1] = -1; dr[2] = 0; dr[3] = 0;
            dc[0] = 0; dc[1] = 0; dc[2] = 1; dc[3] = -1;
            for (d = 0; d < 4; d++) {
                int nr = r + dr[d], nc = c + dc[d], np;
                if (nr < 0 || nr >= BOARD || nc < 0 || nc >= BOARD) continue;
                np = nr * BOARD + nc;
                if (marks[np]) continue;
                marks[np] = 1;
                if (board[np] == 0) {
                    libs++;
                } else if (board[np] == color) {
                    stack_arr[sp] = np;
                    sp++;
                }
            }
        }
    }
    return libs;
}

int play_game(int game) {
    int m, score = 0;
    int i;
    rng = (unsigned int)(game * 2654435761u + 445u);
    for (i = 0; i < SQ; i++) board[i] = 0;
    for (m = 0; m < MOVES_PER_GAME; m++) {
        int color = (m & 1) + 1;
        int pos = trand(SQ);
        int tries = 0;
        while (board[pos] != 0 && tries < 8) {
            pos = trand(SQ);
            tries++;
        }
        if (board[pos] != 0) continue;
        board[pos] = color;
        {
            int libs = count_liberties(pos, color);
            if (libs == 0) {
                board[pos] = 0; /* suicide, undo */
                continue;
            }
            score += (color == 1) ? libs : -libs;
            /* Influence cache consultation on tactical moves only. */
            if (libs <= 2) {
                int k;
                float inf = 0.0f;
                for (k = 0; k < 12; k++) {
                    inf += influence_cache[(pos + k * 37) % SQ];
                }
                if (inf > 0.5f) score += 1;
            }
        }
    }
    return score;
}

int main() {
    int g;
    long total = 0;
    influence_reset();
    for (g = 0; g < GAMES; g++) {
        total += play_game(g);
    }
    printf("gobmk: total=%ld corner=%d\n", total, board[0]);
    return 0;
}
