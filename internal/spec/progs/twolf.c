/* 300.twolf stand-in: standard-cell placement by simulated annealing —
 * cells and nets in structs, cost re-evaluation on every proposed move.
 * Two paper-relevant features:
 *
 *   - Pad/site geometry lives in library-owned storage ("pad_library",
 *     marked external by the harness): wide bounds for Low-Fat Pointers
 *     (2.08% in Table 2).
 *   - A rare configuration-save path round-trips a pointer through long
 *     (Section 4.4): wide bounds for SoftBound (0.37% in Table 2).
 *
 * The original benchmark also copied structs byte-by-byte, which breaks
 * SoftBound's metadata (Section 4.5); like the paper's evaluation
 * (Section 5.1.2) this version uses memcpy instead. The byte-wise variant is
 * exercised by the usability test suite. */

#include <stdio.h>

#define NCELLS 260
#define NNETS 420
#define PINS 4
#define MOVES 2400

struct cell {
    int x, y;
    int width;
    struct cell *group;
};

struct net {
    struct cell *pin[PINS];
    int weight;
};

struct cell cells[NCELLS];
struct net nets[NNETS];

/* Pad geometry owned by the (uninstrumented) cell library. */
int pad_library[1024];

unsigned int rng_state;

int trand(int mod) {
    rng_state = rng_state * 1103515245u + 12345u;
    return (int)((rng_state >> 16) % (unsigned int)mod);
}

void setup(void) {
    int i, j;
    rng_state = 90125u;
    for (i = 0; i < 1024; i++) pad_library[i] = (i * 7) % 64 - 32;
    for (i = 0; i < NCELLS; i++) {
        cells[i].x = trand(512);
        cells[i].y = trand(512);
        cells[i].width = 4 + trand(12);
        cells[i].group = &cells[trand(NCELLS)];
    }
    for (i = 0; i < NNETS; i++) {
        for (j = 0; j < PINS; j++) {
            nets[i].pin[j] = &cells[trand(NCELLS)];
        }
        nets[i].weight = 1 + trand(3);
    }
}

int net_cost(struct net *n) {
    int minx = 100000, maxx = -100000, miny = 100000, maxy = -100000;
    int j;
    /* Pad-geometry lookup for heavyweight nets only: library-owned
     * storage Low-Fat Pointers cannot bound (Section 4.3). */
    int pad = 0;
    if (n->weight == 3) pad = pad_library[(n->weight * 37) & 1023];
    for (j = 0; j < PINS; j++) {
        struct cell *c = n->pin[j];
        int px = c->x + ((c->width + pad) & 15);
        int py = c->y + ((c->width - pad) & 15);
        if (px < minx) minx = px;
        if (px > maxx) maxx = px;
        if (py < miny) miny = py;
        if (py > maxy) maxy = py;
    }
    return (maxx - minx + maxy - miny) * n->weight;
}

long total_cost(void) {
    long c = 0;
    int i;
    for (i = 0; i < NNETS; i++) c += net_cost(&nets[i]);
    return c;
}

/* Save a cell snapshot; the original used byte-wise struct copies here
 * (Section 4.5) — this "fixed" version uses memcpy, and the diagnostic
 * path reconstructs the snapshot pointer through a long (Section 4.4), so
 * SoftBound checks these reads with wide bounds (0.37% in Table 2). */
int snapshot_buf[64];
long snapshot_diag(struct cell *c) {
    long addr = (long)(void *)snapshot_buf;
    int *s = (int *)addr;
    int k;
    long sum = 0;
    memcpy(snapshot_buf, c, sizeof(struct cell));
    /* Words 4 and 5 hold the copied group pointer: its numeric value
     * depends on the allocator, so the checksum skips it. */
    for (k = 0; k < 16; k++) {
        if (k == 4 || k == 5) continue;
        sum += s[k];
    }
    return sum;
}

int main() {
    int m;
    long cost, accepted = 0, diag = 0;
    setup();
    cost = total_cost();
    for (m = 0; m < MOVES; m++) {
        int ci = trand(NCELLS);
        struct cell *c = &cells[ci];
        int oldx = c->x, oldy = c->y;
        long delta = 0;
        int i;
        c->x = (c->x + trand(64) - 32 + 512) % 512;
        c->y = (c->y + trand(64) - 32 + 512) % 512;
        /* Incremental cost over the nets touching this cell (scan). */
        for (i = ci % 16; i < NNETS; i += 16) {
            delta += net_cost(&nets[i]);
        }
        if (delta % 100 < 55 + (m % 20)) {
            accepted++;
            if ((m & 7) == 7) diag += snapshot_diag(c);
        } else {
            c->x = oldx;
            c->y = oldy;
        }
    }
    cost = total_cost();
    printf("twolf: cost=%ld accepted=%ld diag=%ld\n", cost, accepted, diag);
    return 0;
}
