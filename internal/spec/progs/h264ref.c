/* 464.h264ref stand-in: video encoding — motion estimation over macroblock
 * rows with a picture structure built of row-pointer arrays. Every frame
 * rebuilds the row-pointer tables (many pointer STORES to memory), so
 * SoftBound spends a large share of its overhead maintaining the metadata
 * trie — 464.h264ref is one of the two benchmarks where Figure 10 shows
 * invariants dominating. Clean in Table 2 (0.00%* / 0.00). */

#include <stdio.h>

#define W 96
#define H 64
#define BLK 8
#define FRAMES 2
#define SEARCH 6

unsigned char frame_data[2][H][W];
unsigned char *cur_rows[H];
unsigned char *ref_rows[H];

void gen_frame(int f, int t) {
    int x, y;
    unsigned int s = (unsigned int)(t * 2654435761u + 464u);
    for (y = 0; y < H; y++) {
        for (x = 0; x < W; x++) {
            int base = (x + t * 3) & 63;
            s = s * 1103515245u + 12345u;
            frame_data[f][y][x] = (unsigned char)(base + ((s >> 20) & 15));
        }
    }
}

/* Rebuild the row-pointer tables: H pointer stores per frame per table. */
void setup_rows(int cur, int ref) {
    int y;
    for (y = 0; y < H; y++) {
        cur_rows[y] = &frame_data[cur][y][0];
        ref_rows[y] = &frame_data[ref][y][0];
    }
}

/* Per-candidate line cache, re-pointed before every SAD computation the way
 * the reference encoder repopulates its UMV line pointers. The 2*BLK pointer
 * stores per candidate are what make SoftBound's metadata maintenance (and
 * Low-Fat's escape checks) dominate this benchmark's overhead (Figures 10
 * and 11 of the paper). */
unsigned char *line_cache[2 * BLK];

void point_lines(int cy, int ry) {
    int dy;
    for (dy = 0; dy < BLK; dy++) {
        line_cache[dy] = cur_rows[cy + dy];
        line_cache[BLK + dy] = ref_rows[ry + dy];
    }
}

int sad_block(int cx, int rx) {
    int dx, dy, sad = 0;
    for (dy = 0; dy < BLK; dy++) {
        unsigned char *c = line_cache[dy];
        unsigned char *r = line_cache[BLK + dy];
        for (dx = 0; dx < BLK; dx++) {
            int d = (int)c[cx + dx] - (int)r[rx + dx];
            sad += d < 0 ? -d : d;
        }
    }
    return sad;
}

long motion_estimate(void) {
    int bx, by;
    long total = 0;
    for (by = 0; by + BLK <= H; by += BLK) {
        for (bx = 0; bx + BLK <= W; bx += BLK) {
            int best = 1 << 30;
            int mx, my;
            for (my = -SEARCH; my <= SEARCH; my += 2) {
                for (mx = -SEARCH; mx <= SEARCH; mx += 2) {
                    int rx = bx + mx, ry = by + my;
                    int sad;
                    if (rx < 0 || ry < 0 || rx + BLK > W || ry + BLK > H) continue;
                    point_lines(by, ry);
                    sad = sad_block(bx, rx);
                    if (sad < best) best = sad;
                }
            }
            total += best;
        }
    }
    return total;
}

int main() {
    int t;
    long bits = 0;
    gen_frame(0, 0);
    for (t = 1; t <= FRAMES; t++) {
        gen_frame(t & 1, t);
        setup_rows(t & 1, (t + 1) & 1);
        bits += motion_estimate();
    }
    printf("h264ref: bits=%ld probe=%d\n", bits, (int)cur_rows[1][2]);
    return 0;
}
