/* 456.hmmer stand-in: profile HMM sequence search — the Viterbi dynamic
 * programming recurrence over match/insert/delete state matrices. A
 * size-zero extern array (the null-model table in hmmer_tables.c) is
 * consulted only once per sequence: its unsafe dereferences exist but round
 * to 0.00% (Table 2 prints the benchmark bold with 0.00, no asterisk). */

#include <stdio.h>

#define MODEL_LEN 60
#define SEQ_LEN 180
#define SEQUENCES 14
#define ALPHA 20

extern int null_model[];

int match_score[MODEL_LEN + 1][ALPHA];
int mmx[SEQ_LEN + 1][MODEL_LEN + 1];
int imx[SEQ_LEN + 1][MODEL_LEN + 1];
int dmx[SEQ_LEN + 1][MODEL_LEN + 1];
unsigned char seq[SEQ_LEN];

int max2(int a, int b) { return a > b ? a : b; }

void setup_model(void) {
    int k, a;
    unsigned int s = 456u;
    for (k = 0; k <= MODEL_LEN; k++) {
        for (a = 0; a < ALPHA; a++) {
            s = s * 1103515245u + 12345u;
            match_score[k][a] = (int)((s >> 16) & 31) - 12;
        }
    }
}

void gen_seq(int n) {
    int i;
    unsigned int s = (unsigned int)(n * 2654435761u + 17u);
    for (i = 0; i < SEQ_LEN; i++) {
        s = s * 1103515245u + 12345u;
        seq[i] = (unsigned char)((s >> 16) % ALPHA);
    }
}

int viterbi(void) {
    int i, k;
    int best = -1000000;
    for (k = 0; k <= MODEL_LEN; k++) {
        mmx[0][k] = -100000;
        imx[0][k] = -100000;
        dmx[0][k] = -100000;
    }
    mmx[0][0] = 0;
    for (i = 1; i <= SEQ_LEN; i++) {
        mmx[i][0] = 0;
        imx[i][0] = -100000;
        dmx[i][0] = -100000;
        for (k = 1; k <= MODEL_LEN; k++) {
            int m = max2(max2(mmx[i - 1][k - 1], imx[i - 1][k - 1]),
                         dmx[i - 1][k - 1]) + match_score[k][seq[i - 1]];
            int ins = max2(mmx[i - 1][k] - 3, imx[i - 1][k] - 1);
            int del = max2(mmx[i][k - 1] - 4, dmx[i][k - 1] - 1);
            mmx[i][k] = m;
            imx[i][k] = ins;
            dmx[i][k] = del;
        }
        if (mmx[i][MODEL_LEN] > best) best = mmx[i][MODEL_LEN];
    }
    return best;
}

int main() {
    int n;
    long total = 0;
    setup_model();
    for (n = 0; n < SEQUENCES; n++) {
        int raw;
        gen_seq(n);
        raw = viterbi();
        /* One null-model correction per sequence: the only accesses to the
         * size-zero-declared array. */
        total += raw - null_model[seq[0]];
    }
    printf("hmmer: total=%ld\n", total);
    return 0;
}
