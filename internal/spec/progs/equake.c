/* 183.equake stand-in: earthquake wave propagation — sparse matrix-vector
 * products over a 3D structure accessed through pointer-to-pointer arrays
 * (disp[i][j] is a double*). The hot loop LOADS POINTERS FROM MEMORY on
 * every iteration: SoftBound must look up bounds in its metadata trie for
 * each loaded pointer, while Low-Fat Pointers just recompute the base from
 * the value — this benchmark is where SoftBound loses most clearly in
 * Figure 9 of the paper. */

#include <stdio.h>

#define NODES 600
#define DEGREE 9
#define TIMESTEPS 45

/* K[i] -> array of row pointers; each row is a double[DEGREE]. */
double **K;
int **col_index;
double *disp;
double *disp_new;
double *vel;

void setup(void) {
    int i, j;
    unsigned int s = 4242u;
    K = (double **)malloc(NODES * sizeof(double *));
    col_index = (int **)malloc(NODES * sizeof(int *));
    disp = (double *)malloc(NODES * sizeof(double));
    disp_new = (double *)malloc(NODES * sizeof(double));
    vel = (double *)malloc(NODES * sizeof(double));
    for (i = 0; i < NODES; i++) {
        K[i] = (double *)malloc(DEGREE * sizeof(double));
        col_index[i] = (int *)malloc(DEGREE * sizeof(int));
        for (j = 0; j < DEGREE; j++) {
            s = s * 1103515245u + 12345u;
            K[i][j] = ((double)((s >> 16) & 255) - 128.0) / 2048.0;
            s = s * 1103515245u + 12345u;
            col_index[i][j] = (int)((s >> 16) % NODES);
        }
        disp[i] = (double)(i % 17) * 0.01;
        disp_new[i] = 0.0;
        vel[i] = 0.0;
    }
}

/* One simulation step: y = K * x, then integrate. The inner loop loads the
 * row pointers K[i] and col_index[i] from memory each iteration. */
void smvp_step(double dt) {
    int i, j;
    for (i = 0; i < NODES; i++) {
        double *row = K[i];
        int *cols = col_index[i];
        double sum = 0.0;
        for (j = 0; j < DEGREE; j++) {
            sum += row[j] * disp[cols[j]];
        }
        vel[i] = vel[i] * 0.98 + sum * dt;
        disp_new[i] = disp[i] + vel[i] * dt;
    }
    /* Swap displacement vectors (pointer values travel through memory). */
    {
        double *tmp = disp;
        disp = disp_new;
        disp_new = tmp;
    }
}

int main() {
    int t, i;
    double energy = 0.0;
    setup();
    for (t = 0; t < TIMESTEPS; t++) {
        smvp_step(0.04);
    }
    for (i = 0; i < NODES; i++) energy += disp[i] * disp[i] + vel[i] * vel[i];
    printf("equake: energy=%.6f disp0=%.6f\n", energy, disp[0]);
    return 0;
}
