/* 433.milc stand-in: lattice QCD — SU(3)-flavoured complex matrix algebra
 * over a 4D site lattice. A size-zero extern array IS DECLARED in this unit
 * (the staging buffer defined in milc_tables.c) but never accessed during
 * the benchmark run, so SoftBound's entry in Table 2 is 0.00%* despite the
 * declaration — the paper singles 433.milc out for exactly this. */

#include <stdio.h>

#define DIM 6
#define SITES (DIM * DIM * DIM * DIM)
#define SWEEPS 2

/* Declared without size; defined in milc_tables.c; never used here. */
extern double staging_buffer[];

struct complex3 {
    double re[3];
    double im[3];
};

struct complex3 *lattice;
struct complex3 *momenta;

void setup(void) {
    int i, c;
    unsigned int s = 433u;
    lattice = (struct complex3 *)malloc(SITES * sizeof(struct complex3));
    momenta = (struct complex3 *)malloc(SITES * sizeof(struct complex3));
    for (i = 0; i < SITES; i++) {
        for (c = 0; c < 3; c++) {
            s = s * 1103515245u + 12345u;
            lattice[i].re[c] = (double)((s >> 16) & 255) / 256.0 - 0.5;
            s = s * 1103515245u + 12345u;
            lattice[i].im[c] = (double)((s >> 16) & 255) / 256.0 - 0.5;
            momenta[i].re[c] = 0.0;
            momenta[i].im[c] = 0.0;
        }
    }
}

int neighbor_site(int site, int dir) {
    int coords[4];
    int i, rebuilt = 0, scale = 1;
    for (i = 0; i < 4; i++) {
        coords[i] = site % DIM;
        site /= DIM;
    }
    coords[dir] = (coords[dir] + 1) % DIM;
    for (i = 0; i < 4; i++) {
        rebuilt += coords[i] * scale;
        scale *= DIM;
    }
    return rebuilt;
}

void mult_add(struct complex3 *dst, struct complex3 *a, struct complex3 *b) {
    int c;
    for (c = 0; c < 3; c++) {
        double ar = a->re[c], ai = a->im[c];
        double br = b->re[(c + 1) % 3], bi = b->im[(c + 1) % 3];
        dst->re[c] += ar * br - ai * bi;
        dst->im[c] += ar * bi + ai * br;
    }
}

double sweep(void) {
    int site, dir;
    double action = 0.0;
    for (site = 0; site < SITES; site++) {
        for (dir = 0; dir < 4; dir++) {
            int n = neighbor_site(site, dir);
            mult_add(&momenta[site], &lattice[site], &lattice[n]);
        }
        action += momenta[site].re[0] * momenta[site].re[0] +
                  momenta[site].im[0] * momenta[site].im[0];
    }
    return action;
}

int main() {
    int s;
    double action = 0.0;
    setup();
    for (s = 0; s < SWEEPS; s++) {
        action = sweep();
    }
    printf("milc: action=%.4f re=%.4f\n", action, lattice[SITES / 2].re[1]);
    free(lattice);
    free(momenta);
    return 0;
}
