/* 256.bzip2 stand-in: block-sorting compression front end — suffix-style
 * sorting, move-to-front and run-length coding over a block buffer. The
 * sorting inner loops touch the same buffer locations repeatedly inside one
 * basic block, which is why the dominance-based check elimination removes
 * around half of this benchmark's checks (Section 5.3 reports up to 50%). */

#include <stdio.h>

#define BLOCK 9000
#define RADIX 256

unsigned char block[BLOCK + 64];
int ptr_arr[BLOCK];
int ftab[RADIX + 1];
unsigned char mtf_table[RADIX];

void fill_block(void) {
    int i;
    unsigned int s = 616u;
    for (i = 0; i < BLOCK; i++) {
        s = s * 1103515245u + 12345u;
        if ((s >> 29) < 3 && i > 64) {
            block[i] = block[i - 33];
        } else {
            block[i] = (unsigned char)('a' + ((s >> 16) % 16));
        }
    }
    for (i = BLOCK; i < BLOCK + 64; i++) block[i] = 0;
}

/* Bucket sort on the first byte, then insertion-sort small buckets by
 * comparing suffixes. Each comparison re-reads block[a+k] and block[b+k] in
 * the same basic block — dominated checks galore. */
void sort_block(void) {
    int i, b;
    for (i = 0; i <= RADIX; i++) ftab[i] = 0;
    for (i = 0; i < BLOCK; i++) ftab[block[i] + 1]++;
    for (i = 1; i <= RADIX; i++) ftab[i] += ftab[i - 1];
    for (i = 0; i < BLOCK; i++) {
        int c = block[i];
        ptr_arr[ftab[c]] = i;
        ftab[c]++;
    }
    /* Restore ftab starts. */
    for (i = RADIX; i > 0; i--) ftab[i] = ftab[i - 1];
    ftab[0] = 0;

    for (b = 0; b < RADIX; b++) {
        int lo = ftab[b], hi = (b + 1 <= RADIX) ? ftab[b + 1] : BLOCK;
        int j, k;
        if (hi - lo > 400) { hi = lo + 400; } /* cap pathological buckets */
        for (j = lo + 1; j < hi; j++) {
            int v = ptr_arr[j];
            k = j - 1;
            while (k >= lo) {
                int a = ptr_arr[k];
                int depth = 0;
                int cmp = 0;
                while (depth < 24) {
                    int ca = block[a + depth];
                    int cb = block[v + depth];
                    if (ca != cb) { cmp = ca - cb; break; }
                    depth++;
                }
                if (cmp <= 0) break;
                ptr_arr[k + 1] = a;
                k--;
            }
            ptr_arr[k + 1] = v;
        }
    }
}

long mtf_and_rle(void) {
    int i;
    long out = 0;
    int run = 0;
    for (i = 0; i < RADIX; i++) mtf_table[i] = (unsigned char)i;
    for (i = 0; i < BLOCK; i++) {
        unsigned char c = block[ptr_arr[i] % BLOCK];
        int j = 0;
        while (mtf_table[j] != c) j++;
        /* Move to front. */
        while (j > 0) {
            mtf_table[j] = mtf_table[j - 1];
            j--;
        }
        mtf_table[0] = c;
        if (c == mtf_table[0] && i > 0 && block[ptr_arr[i] % BLOCK] == block[ptr_arr[i - 1] % BLOCK]) {
            run++;
        } else {
            out += run > 3 ? 2 : run;
            run = 0;
            out++;
        }
    }
    return out + run;
}

int main() {
    long out;
    long check = 0;
    int i;
    fill_block();
    sort_block();
    out = mtf_and_rle();
    for (i = 0; i < BLOCK; i += 97) check += ptr_arr[i] * (long)(i % 7 + 1);
    printf("bzip2: out=%ld check=%ld first=%d\n", out, check, ptr_arr[0]);
    return 0;
}
