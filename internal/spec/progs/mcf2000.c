/* 181.mcf stand-in: minimum-cost-flow-style network traversal over node and
 * arc structs. The original stores a pointer in a struct member of integer
 * type; Section 5.1.2 of the paper describes fixing the member to a proper
 * pointer type so SoftBound's metadata stays coherent. This is the FIXED
 * version (the broken pattern lives in the usability test suite). Both
 * columns of Table 2 are 0.00 for this benchmark. */

#include <stdio.h>

#define NNODES 1200
#define NARCS 7000
#define ITERATIONS 30

struct node {
    long potential;
    int depth;
    struct node *parent;
    struct arc *basic_arc;   /* was "long basic_arc" in the original */
    struct arc *first_out;
};

struct arc {
    long cost;
    long flow;
    struct node *tail;
    struct node *head;
    struct arc *next_out;
};

struct node *nodes;
struct arc *arcs;

void build_network(void) {
    int i;
    unsigned int s = 777u;
    nodes = (struct node *)malloc(NNODES * sizeof(struct node));
    arcs = (struct arc *)malloc(NARCS * sizeof(struct arc));
    for (i = 0; i < NNODES; i++) {
        nodes[i].potential = 0;
        nodes[i].depth = 0;
        nodes[i].parent = NULL;
        nodes[i].basic_arc = NULL;
        nodes[i].first_out = NULL;
    }
    for (i = 0; i < NARCS; i++) {
        int t, h;
        s = s * 1103515245u + 12345u;
        t = (int)((s >> 16) % NNODES);
        s = s * 1103515245u + 12345u;
        h = (int)((s >> 16) % NNODES);
        if (h == t) h = (h + 1) % NNODES;
        arcs[i].cost = (long)((s >> 8) & 1023) - 512;
        arcs[i].flow = 0;
        arcs[i].tail = &nodes[t];
        arcs[i].head = &nodes[h];
        arcs[i].next_out = nodes[t].first_out;
        nodes[t].first_out = &arcs[i];
    }
}

/* Price out all arcs against node potentials; pick the most negative. */
struct arc *find_entering(void) {
    int i;
    long best = -1;
    struct arc *entering = NULL;
    for (i = 0; i < NARCS; i++) {
        struct arc *a = &arcs[i];
        long reduced = a->cost + a->tail->potential - a->head->potential;
        if (reduced < 0) {
            long mag = -reduced;
            if (mag > best) {
                best = mag;
                entering = a;
            }
        }
    }
    return entering;
}

/* Push flow along the entering arc and update tree potentials by walking
 * parent chains. */
void pivot(struct arc *enter, int round) {
    struct node *n = enter->head;
    int hops = 0;
    enter->flow += 1;
    enter->head->parent = enter->tail;
    enter->head->basic_arc = enter;
    while (n != NULL && hops < 64) {
        n->potential += enter->cost / (hops + 1);
        n->depth = hops;
        n = n->parent;
        hops++;
        if (n == enter->head) break; /* cycle guard */
    }
    /* Re-price the outgoing arcs of the entering arc's tail. */
    {
        struct arc *a = enter->tail->first_out;
        while (a != NULL) {
            a->cost += (round & 3) - 1;
            a = a->next_out;
        }
    }
}

int main() {
    int it;
    long checksum = 0;
    build_network();
    for (it = 0; it < ITERATIONS; it++) {
        struct arc *enter = find_entering();
        if (enter == NULL) break;
        pivot(enter, it);
        checksum += enter->cost;
    }
    {
        int i;
        long flowsum = 0, potsum = 0;
        for (i = 0; i < NARCS; i++) flowsum += arcs[i].flow;
        for (i = 0; i < NNODES; i++) potsum += nodes[i].potential;
        printf("mcf2000: flow=%ld pot=%ld check=%ld\n", flowsum, potsum, checksum);
    }
    free(nodes);
    free(arcs);
    return 0;
}
