/* 429.mcf stand-in: the CPU2006 vehicle-scheduling variant, whose defining
 * property for this paper is ONE ALLOCATION LARGER THAN THE LARGEST LOW-FAT
 * REGION SIZE (1 GiB): the arc array below is ~1.1 GiB, so the low-fat
 * malloc falls back to the standard allocator and every access through it
 * is checked with wide bounds — Table 2 attributes ~54% unsafe dereferences
 * to exactly this allocation (Section 4.6). SoftBound keeps precise bounds
 * (0.00%*). The program only touches a window of the giant array, the way
 * the real benchmark's working set is a fraction of its address space. */

#include <stdio.h>

#define ARC_BYTES 1181116006   /* ~1.1 GiB, beyond the 1 GiB max region */
#define ARCS_USED 26000
#define NNODES 900
#define PASSES 7

struct arc6 {
    long cost;
    long flow;
    int tail;
    int head;
    int ident;
    int pad;
};

struct arc6 *arcs;
long node_potential[NNODES];
int node_depth[NNODES];

void build(void) {
    int i;
    unsigned int s = 2006u;
    arcs = (struct arc6 *)malloc(ARC_BYTES);
    for (i = 0; i < ARCS_USED; i++) {
        s = s * 1103515245u + 12345u;
        arcs[i].tail = (int)((s >> 16) % NNODES);
        s = s * 1103515245u + 12345u;
        arcs[i].head = (int)((s >> 16) % NNODES);
        arcs[i].cost = (long)((s >> 8) & 2047) - 1024;
        arcs[i].flow = 0;
        arcs[i].ident = i;
        arcs[i].pad = 0;
    }
    for (i = 0; i < NNODES; i++) {
        node_potential[i] = 0;
        node_depth[i] = 0;
    }
}

long price_out(void) {
    int i;
    long pushed = 0;
    for (i = 0; i < ARCS_USED; i++) {
        struct arc6 *a = &arcs[i];
        long red = a->cost + node_potential[a->tail] - node_potential[a->head];
        if (red < 0) {
            a->flow += 1;
            node_potential[a->head] += red / 2 - 1;
            node_depth[a->head] = node_depth[a->tail] + 1;
            pushed++;
        }
    }
    return pushed;
}

int main() {
    int p, i;
    long pushed = 0, flowsum = 0;
    build();
    for (p = 0; p < PASSES; p++) {
        pushed += price_out();
    }
    for (i = 0; i < ARCS_USED; i++) flowsum += arcs[i].flow;
    printf("mcf2006: pushed=%ld flow=%ld pot0=%ld\n", pushed, flowsum, node_potential[0]);
    free(arcs);
    return 0;
}
