/* 197.parser stand-in: link-grammar-style dictionary parsing — hash table
 * and linked lists built from a custom pool allocator, with many pointers
 * stored into memory. Two paper-relevant features:
 *
 *   - The pool is carved out of library-owned storage ("dict_pool", marked
 *     external by the harness), so Low-Fat Pointers use wide bounds for
 *     accesses through it (7.14% in Table 2).
 *   - One alignment fixup casts a pointer through long and back; with
 *     -mi-sb-inttoptr-wide-bounds SoftBound gives such pointers wide bounds
 *     (0.27% in Table 2; Section 4.4).
 *
 * The heavy pointer-store traffic makes SoftBound's metadata maintenance a
 * large share of its overhead here (Figure 10 of the paper). */

#include <stdio.h>

#define POOL_SIZE 262144
#define HASH_SIZE 4096
#define WORDS 2600
#define LOOKUPS 9000

/* Storage owned by the (uninstrumented) dictionary library. */
char dict_pool[POOL_SIZE];
long pool_used;

struct entry {
    char word[20];
    int count;
    struct entry *next;
};

struct entry *hash_table[HASH_SIZE];

char *pool_alloc(long n) {
    char *p = dict_pool + pool_used;
    pool_used += (n + 7) & ~7l;
    if (pool_used > POOL_SIZE) {
        printf("parser: pool exhausted\n");
        exit(1);
    }
    return p;
}

/* Occasional pool audit: reconstructs a pool pointer through a long, the
 * integer-to-pointer round trip of Section 4.4. With the paper's
 * -mi-sb-inttoptr-wide-bounds configuration SoftBound checks these reads
 * with wide bounds (the 0.27% of Table 2). */
long pool_audit(void) {
    long addr = (long)dict_pool;
    char *p;
    long sum = 0;
    int i;
    addr = (addr + 63) & ~63l;
    p = (char *)addr;
    for (i = 0; i < 256; i++) sum += p[i];
    return sum;
}

void make_word(char *buf, unsigned int seed) {
    int len = 3 + (int)(seed % 9);
    int i;
    unsigned int s = seed;
    for (i = 0; i < len; i++) {
        s = s * 1103515245u + 12345u;
        buf[i] = (char)('a' + (s >> 16) % 26);
    }
    buf[len] = 0;
}

unsigned int hash_word(char *w) {
    unsigned int h = 5381;
    while (*w) {
        h = h * 33 + (unsigned int)*w;
        w++;
    }
    return h;
}

struct entry *lookup(char *w, int insert) {
    unsigned int h = hash_word(w) & (HASH_SIZE - 1);
    struct entry *e = hash_table[h];
    while (e != NULL) {
        if (strcmp(e->word, w) == 0) return e;
        e = e->next;
    }
    if (!insert) return NULL;
    e = (struct entry *)pool_alloc((long)sizeof(struct entry));
    strcpy(e->word, w);
    e->count = 0;
    e->next = hash_table[h];
    hash_table[h] = e;
    return e;
}

int main() {
    int i;
    long hits = 0, total = 0, audits = 0;
    char buf[24];
    for (i = 0; i < WORDS; i++) {
        make_word(buf, (unsigned int)(i * 2654435761u + 99u));
        lookup(buf, 1)->count++;
        if ((i & 1023) == 1023) audits += pool_audit();
    }
    for (i = 0; i < LOOKUPS; i++) {
        struct entry *e;
        make_word(buf, (unsigned int)((i % (WORDS * 2)) * 2654435761u + 99u));
        e = lookup(buf, 0);
        if (e != NULL) {
            hits++;
            total += e->count;
        }
    }
    printf("parser: hits=%ld total=%ld used=%ld audits=%ld\n", hits, total, pool_used, audits);
    return 0;
}
