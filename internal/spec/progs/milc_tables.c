/* 433.milc stand-in, translation unit 2: defines the staging buffer that
 * the main unit declares without size. The benchmark run never touches it
 * (it belongs to the I/O path of the original), which is why the size-zero
 * declaration does not show up as unsafe dereferences in Table 2. */

double staging_buffer[4096];

/* Fill routine for the I/O path; not called during the benchmark run. */
void fill_staging(double v) {
    int i;
    for (i = 0; i < 4096; i++) staging_buffer[i] = v;
}
