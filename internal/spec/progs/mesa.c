/* 177.mesa stand-in: software rasterization of shaded triangles into a
 * framebuffer, with per-vertex transformation — the float-heavy, mostly
 * array-based access profile of Mesa's software renderer.
 *
 * The "GL dispatch table" global is marked as external-library storage by
 * the harness: Mesa applications poke at driver-owned state the same way
 * programs use stdout/stderr (Section 4.3). Low-Fat Pointers give such
 * storage wide bounds (1.57% of checks in Table 2); SoftBound knows its
 * bounds from the declaration and stays fully precise (0.00%*). */

#include <stdio.h>

#define W 128
#define H 96
#define NTRI 90
#define FRAMES 1

float framebuffer[W * H];
float depthbuffer[W * H];

/* Driver-owned state (uninstrumented library storage). */
int gl_dispatch_table[256];

/* Texture memory: a regular application global. */
float texture[1024];

struct vertex {
    float x, y, z;
    float shade;
};

struct vertex verts[NTRI * 3];

float fmin3(float a, float b, float c) {
    float m = a;
    if (b < m) m = b;
    if (c < m) m = c;
    return m;
}

float fmax3(float a, float b, float c) {
    float m = a;
    if (b > m) m = b;
    if (c > m) m = c;
    return m;
}

void gen_vertices(int frame) {
    int i;
    unsigned int s = (unsigned int)(frame * 2246822519u + 3u);
    for (i = 0; i < NTRI * 3; i++) {
        s = s * 1103515245u + 12345u;
        verts[i].x = (float)((s >> 16) % W);
        s = s * 1103515245u + 12345u;
        verts[i].y = (float)((s >> 16) % H);
        s = s * 1103515245u + 12345u;
        verts[i].z = (float)((s >> 16) & 1023) * 0.001f;
        verts[i].shade = 0.25f + (float)(i % 7) * 0.1f;
        /* Occasional dispatch-table consultation, like state queries. */
        if ((i & 31) == 0) {
            gl_dispatch_table[(i >> 5) & 255] = (int)s;
        }
    }
}

int edge(float ax, float ay, float bx, float by, float px, float py) {
    float v = (bx - ax) * (py - ay) - (by - ay) * (px - ax);
    return v >= 0.0f;
}

int raster_triangle(struct vertex *a, struct vertex *b, struct vertex *c) {
    int x0 = (int)fmin3(a->x, b->x, c->x);
    int y0 = (int)fmin3(a->y, b->y, c->y);
    int x1 = (int)fmax3(a->x, b->x, c->x);
    int y1 = (int)fmax3(a->y, b->y, c->y);
    int x, y, filled = 0;
    if (x0 < 0) x0 = 0;
    if (y0 < 0) y0 = 0;
    if (x1 >= W) x1 = W - 1;
    if (y1 >= H) y1 = H - 1;
    for (y = y0; y <= y1; y++) {
        /* Per-scanline scissor/state consultation in driver-owned storage
         * (wide bounds for Low-Fat Pointers, Section 4.3). */
        int scissor = gl_dispatch_table[y & 255];
        if (scissor == 0x7fffffff) continue;
        for (x = x0; x <= x1; x++) {
            float px = (float)x + 0.5f;
            float py = (float)y + 0.5f;
            if (edge(a->x, a->y, b->x, b->y, px, py) &&
                edge(b->x, b->y, c->x, c->y, px, py) &&
                edge(c->x, c->y, a->x, a->y, px, py)) {
                float z = (a->z + b->z + c->z) * 0.3333f;
                int idx = y * W + x;
                if (z < depthbuffer[idx]) {
                    float tex = texture[(x * 7 + y * 13) & 1023];
                    depthbuffer[idx] = z;
                    framebuffer[idx] = a->shade * (0.5f + tex);
                    filled++;
                }
            }
        }
    }
    /* State update through the driver table. */
    gl_dispatch_table[filled & 255] += 1;
    return filled;
}

int main() {
    int frame, i;
    long pixels = 0;
    double sum = 0.0;
    for (i = 0; i < 1024; i++) texture[i] = (float)((i * 97) & 255) / 256.0f;
    for (frame = 0; frame < FRAMES; frame++) {
        for (i = 0; i < W * H; i++) {
            framebuffer[i] = 0.0f;
            depthbuffer[i] = 1.0e9f;
        }
        gen_vertices(frame);
        for (i = 0; i < NTRI; i++) {
            pixels += raster_triangle(&verts[i * 3], &verts[i * 3 + 1], &verts[i * 3 + 2]);
        }
    }
    for (i = 0; i < W * H; i++) sum += (double)framebuffer[i];
    printf("mesa: pixels=%ld sum=%.2f state=%d\n", pixels, sum, gl_dispatch_table[0]);
    return 0;
}
