/* 462.libquantum stand-in: quantum register simulation — a sparse state
 * vector of basis states in heap structs, with gate application loops that
 * rewrite amplitudes and basis indices. Clean benchmark (0.00%* / 0.00 in
 * Table 2). */

#include <stdio.h>

#define QUBITS 10
#define STATES (1 << QUBITS)
#define GATES 320

struct qstate {
    double amp_re;
    double amp_im;
    unsigned long basis;
};

struct qstate *reg;
int reg_size;

void qreg_init(void) {
    int i;
    reg_size = STATES / 4;
    reg = (struct qstate *)malloc(reg_size * sizeof(struct qstate));
    for (i = 0; i < reg_size; i++) {
        reg[i].amp_re = 1.0 / (double)(i + 1);
        reg[i].amp_im = 0.0;
        reg[i].basis = (unsigned long)(i * 4 + 1);
    }
}

void sigma_x(int target) {
    int i;
    unsigned long mask = 1ul << target;
    for (i = 0; i < reg_size; i++) {
        reg[i].basis ^= mask;
    }
}

void controlled_not(int control, int target) {
    int i;
    unsigned long cmask = 1ul << control;
    unsigned long tmask = 1ul << target;
    for (i = 0; i < reg_size; i++) {
        if (reg[i].basis & cmask) {
            reg[i].basis ^= tmask;
        }
    }
}

void hadamard_ish(int target) {
    int i;
    unsigned long mask = 1ul << target;
    double norm = 0.70710678;
    for (i = 0; i < reg_size; i++) {
        double re = reg[i].amp_re, im = reg[i].amp_im;
        if (reg[i].basis & mask) {
            reg[i].amp_re = (re - im) * norm;
            reg[i].amp_im = (im + re) * norm;
        } else {
            reg[i].amp_re = (re + im) * norm;
            reg[i].amp_im = (im - re) * norm;
        }
    }
}

double probability_sum(void) {
    double p = 0.0;
    int i;
    for (i = 0; i < reg_size; i++) {
        p += reg[i].amp_re * reg[i].amp_re + reg[i].amp_im * reg[i].amp_im;
    }
    return p;
}

int main() {
    int g;
    unsigned int s = 462u;
    double p = 0.0;
    unsigned long basis_check = 0;
    int i;
    qreg_init();
    for (g = 0; g < GATES; g++) {
        int kind;
        s = s * 1103515245u + 12345u;
        kind = (int)((s >> 16) % 3);
        if (kind == 0) {
            sigma_x((int)((s >> 8) % QUBITS));
        } else if (kind == 1) {
            int c = (int)((s >> 8) % QUBITS);
            controlled_not(c, (c + 3) % QUBITS);
        } else {
            hadamard_ish((int)((s >> 8) % QUBITS));
        }
    }
    p = probability_sum();
    for (i = 0; i < reg_size; i += 17) basis_check ^= reg[i].basis;
    printf("libquantum: p=%.5f basis=%lu\n", p, basis_check);
    free(reg);
    return 0;
}
