/* 179.art stand-in: Adaptive Resonance Theory neural network for image
 * recognition — double-precision weight matrices scanned repeatedly, the
 * classic clean float workload. No unsafe features: both instrumentations
 * keep every access fully checked (Table 2: 0.00%* / 0.00%). */

#include <stdio.h>

#define F1_SIZE 400
#define F2_SIZE 24
#define SCANS 40

double f1_activation[F1_SIZE];
double bus[F2_SIZE][F1_SIZE];  /* bottom-up weights */
double tds[F2_SIZE][F1_SIZE];  /* top-down weights */
double f2_out[F2_SIZE];

void init_weights(void) {
    int i, j;
    unsigned int s = 12345u;
    for (i = 0; i < F2_SIZE; i++) {
        for (j = 0; j < F1_SIZE; j++) {
            s = s * 1103515245u + 12345u;
            bus[i][j] = (double)((s >> 16) & 1023) / 1024.0;
            tds[i][j] = bus[i][j] * 0.5;
        }
    }
}

void load_input(int scan) {
    int i;
    unsigned int s = (unsigned int)(scan * 2654435761u + 7u);
    for (i = 0; i < F1_SIZE; i++) {
        s = s * 1103515245u + 12345u;
        f1_activation[i] = (double)((s >> 16) & 255) / 256.0;
    }
}

int find_winner(void) {
    int i, j, winner = 0;
    double best = -1.0;
    for (i = 0; i < F2_SIZE; i++) {
        double sum = 0.0;
        for (j = 0; j < F1_SIZE; j++) {
            sum += bus[i][j] * f1_activation[j];
        }
        f2_out[i] = sum;
        if (sum > best) {
            best = sum;
            winner = i;
        }
    }
    return winner;
}

double match_degree(int winner) {
    int j;
    double num = 0.0, den = 1e-9;
    for (j = 0; j < F1_SIZE; j++) {
        double t = tds[winner][j] * f1_activation[j];
        num += t;
        den += f1_activation[j];
    }
    return num / den;
}

void learn(int winner) {
    int j;
    double m = match_degree(winner);
    for (j = 0; j < F1_SIZE; j++) {
        tds[winner][j] = 0.8 * tds[winner][j] + 0.2 * f1_activation[j];
        bus[winner][j] = tds[winner][j] / (0.5 + m * 0.01);
    }
}

int main() {
    int scan;
    long histogram[F2_SIZE];
    double vigilance_sum = 0.0;
    int i;
    for (i = 0; i < F2_SIZE; i++) histogram[i] = 0;
    init_weights();
    for (scan = 0; scan < SCANS; scan++) {
        int winner;
        load_input(scan);
        winner = find_winner();
        vigilance_sum += match_degree(winner);
        if (match_degree(winner) > 0.3) {
            learn(winner);
        }
        histogram[winner]++;
    }
    {
        long spread = 0;
        for (i = 0; i < F2_SIZE; i++) spread += histogram[i] * (long)(i + 1);
        printf("art: vigilance=%.4f spread=%ld\n", vigilance_sum, spread);
    }
    return 0;
}
