/* 188.ammp stand-in: molecular dynamics — atoms in linked structs, pairwise
 * short-range force computation with a neighbour list, double precision.
 * A small amount of state lives in library-owned storage ("vendor_units",
 * marked external by the harness): Low-Fat Pointers give those accesses wide
 * bounds (0.24% in Table 2), SoftBound stays precise. */

#include <stdio.h>

#define NATOMS 220
#define NEIGHBORS 12
#define STEPS 30

struct atom {
    double x, y, z;
    double fx, fy, fz;
    double q;
    struct atom *next;
    int serial;
};

struct atom *atoms;
int neighbor[NATOMS][NEIGHBORS];

/* Unit-conversion constants owned by an uninstrumented physics library. */
double vendor_units[16];

void setup(void) {
    int i, j;
    unsigned int s = 31337u;
    atoms = (struct atom *)malloc(NATOMS * sizeof(struct atom));
    for (i = 0; i < NATOMS; i++) {
        s = s * 1103515245u + 12345u;
        atoms[i].x = (double)((s >> 16) & 1023) * 0.05;
        s = s * 1103515245u + 12345u;
        atoms[i].y = (double)((s >> 16) & 1023) * 0.05;
        s = s * 1103515245u + 12345u;
        atoms[i].z = (double)((s >> 16) & 1023) * 0.05;
        atoms[i].q = ((i & 1) ? 1.0 : -1.0) * 0.4;
        atoms[i].fx = 0.0;
        atoms[i].fy = 0.0;
        atoms[i].fz = 0.0;
        atoms[i].serial = i;
        atoms[i].next = (i + 1 < NATOMS) ? &atoms[i + 1] : NULL;
        for (j = 0; j < NEIGHBORS; j++) {
            s = s * 1103515245u + 12345u;
            neighbor[i][j] = (int)((s >> 16) % NATOMS);
        }
    }
    for (i = 0; i < 16; i++) vendor_units[i] = 1.0 + (double)i * 0.125;
}

void forces(void) {
    int i, j;
    for (i = 0; i < NATOMS; i++) {
        struct atom *a = &atoms[i];
        double fx = 0.0, fy = 0.0, fz = 0.0;
        for (j = 0; j < NEIGHBORS; j++) {
            struct atom *b = &atoms[neighbor[i][j]];
            double dx = a->x - b->x;
            double dy = a->y - b->y;
            double dz = a->z - b->z;
            double r2 = dx * dx + dy * dy + dz * dz + 0.01;
            double inv = a->q * b->q / (r2 * r2);
            fx += dx * inv;
            fy += dy * inv;
            fz += dz * inv;
        }
        /* Occasional unit conversion through the vendor library's table
         * (library-owned storage, wide bounds for Low-Fat Pointers). */
        if ((i & 3) == 0) {
            double conv = vendor_units[i & 15];
            fx *= conv;
            fy *= conv;
            fz *= conv;
        }
        a->fx = fx;
        a->fy = fy;
        a->fz = fz;
    }
}

void integrate(double dt) {
    struct atom *a = atoms;
    while (a != NULL) {
        a->x += a->fx * dt;
        a->y += a->fy * dt;
        a->z += a->fz * dt;
        a = a->next;
    }
}

int main() {
    int t, i;
    double energy = 0.0;
    setup();
    for (t = 0; t < STEPS; t++) {
        forces();
        integrate(0.002);
    }
    for (i = 0; i < NATOMS; i++) {
        energy += atoms[i].x + atoms[i].y + atoms[i].z;
    }
    printf("ammp: energy=%.5f serial=%d\n", energy, atoms[NATOMS - 1].serial);
    free(atoms);
    return 0;
}
