/* 456.hmmer stand-in, translation unit 2: null-model table declared
 * size-zero in the main unit. */

int null_model[20] = {
    1, -2, 3, -1, 2, 0, -3, 1, 2, -1,
    0, 3, -2, 1, -1, 2, 0, -2, 1, 3,
};
