/* 164.gzip stand-in, translation unit 2: definitions of the work arrays.
 * The companion unit declares these arrays as size-zero externs, the
 * pattern that deprives SoftBound of bounds information (Section 4.3 of
 * the paper). */

#define WSIZE 32768
#define HASH_SIZE 8192

unsigned char window[WSIZE];
unsigned short prev[WSIZE];
int head[HASH_SIZE];

/* CRC table: a regular sized global, initialized at startup. */
unsigned int crc_table[256];

void init_crc_table(void) {
    unsigned int c;
    int n, k;
    for (n = 0; n < 256; n++) {
        c = (unsigned int)n;
        for (k = 0; k < 8; k++) {
            if (c & 1) {
                c = 0xedb88320u ^ (c >> 1);
            } else {
                c = c >> 1;
            }
        }
        crc_table[n] = c;
    }
}
