/* 186.crafty stand-in: bitboard chess move generation — 64-bit integer
 * manipulation against fixed-size global lookup tables. Nearly every checked
 * access has a global-allocation witness that both approaches derive for
 * free, so the benchmark isolates pure check cost; the SoftBound check
 * (Figure 2) needs fewer instructions than the Low-Fat check (Figure 5),
 * which is why SoftBound outperforms Low-Fat Pointers here (Section 5.2). */

#include <stdio.h>

#define POSITIONS 60
#define PLY 3

unsigned long knight_attacks[64];
unsigned long king_attacks[64];
unsigned long file_mask[8];
unsigned long rank_mask[8];
int center_bonus[64];
int popcount_table[65536];

int popcnt(unsigned long b) {
    return popcount_table[b & 0xffff] +
           popcount_table[(b >> 16) & 0xffff] +
           popcount_table[(b >> 32) & 0xffff] +
           popcount_table[(b >> 48) & 0xffff];
}

void init_tables(void) {
    int sq, i;
    for (i = 0; i < 65536; i++) {
        int c = 0, v = i;
        while (v) { c += v & 1; v >>= 1; }
        popcount_table[i] = c;
    }
    for (i = 0; i < 8; i++) {
        file_mask[i] = 0x0101010101010101ul << i;
        rank_mask[i] = 0xfful << (i * 8);
    }
    for (sq = 0; sq < 64; sq++) {
        int r = sq / 8, f = sq % 8;
        unsigned long n = 0, k = 0;
        int dr, df;
        for (dr = -2; dr <= 2; dr++) {
            for (df = -2; df <= 2; df++) {
                int rr = r + dr, ff = f + df;
                if (rr < 0 || rr > 7 || ff < 0 || ff > 7) continue;
                if (dr * dr + df * df == 5) n |= 1ul << (rr * 8 + ff);
                if (dr >= -1 && dr <= 1 && df >= -1 && df <= 1 && (dr || df))
                    k |= 1ul << (rr * 8 + ff);
            }
        }
        knight_attacks[sq] = n;
        king_attacks[sq] = k;
        center_bonus[sq] = 8 - (abs(2 * r - 7) + abs(2 * f - 7)) / 2;
    }
}

int evaluate(unsigned long own, unsigned long enemy) {
    int score = 0, sq;
    unsigned long b = own;
    while (b) {
        sq = popcnt((b & (0ul - b)) - 1ul); /* index of lowest set bit */
        score += center_bonus[sq];
        score += popcnt(knight_attacks[sq] & ~own) * 2;
        score += popcnt(king_attacks[sq] & enemy) * 3;
        score -= popcnt(file_mask[sq % 8] & enemy);
        b &= b - 1ul;
    }
    return score;
}

int search(unsigned long own, unsigned long enemy, int depth) {
    int best = -32768, moves = 0, sq;
    unsigned long b;
    if (depth == 0) return evaluate(own, enemy);
    b = own;
    while (b && moves < 6) {
        unsigned long from = b & (0ul - b);
        unsigned long targets;
        sq = popcnt(from - 1ul);
        targets = knight_attacks[sq] & ~own;
        while (targets && moves < 6) {
            unsigned long to = targets & (0ul - targets);
            int v = -search((enemy & ~to), (own & ~from) | to, depth - 1);
            if (v > best) best = v;
            moves++;
            targets &= targets - 1ul;
        }
        b &= b - 1ul;
    }
    if (moves == 0) return evaluate(own, enemy);
    return best;
}

int main() {
    int pos;
    long total = 0;
    unsigned int s = 20251u;
    init_tables();
    for (pos = 0; pos < POSITIONS; pos++) {
        unsigned long own, enemy;
        s = s * 1103515245u + 12345u;
        own = ((unsigned long)s << 32) | (s * 2654435761u);
        s = s * 1103515245u + 12345u;
        enemy = (((unsigned long)s << 32) | (s * 40503u)) & ~own;
        own &= 0x00fffffffffff00ul;
        enemy &= 0x00fffffffffff00ul & ~own;
        total += search(own, enemy, PLY);
    }
    printf("crafty: total=%ld\n", total);
    return 0;
}
