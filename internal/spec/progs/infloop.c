/* Watchdog fixture: spins forever mutating a small buffer, so every
 * instruction is real work the optimizer cannot delete. Not part of the
 * campaign benchmark list — it exists to prove that the supervision layer's
 * cooperative interrupt stops a hung cell within a bounded number of
 * instructions on both engines. */

#include <stdio.h>

#define N 16

int buf[N];

int main(void) {
    int i = 0;
    int spin = 1;
    while (spin) {
        buf[i % N] = buf[(i + 1) % N] + i;
        i = i + 1;
        if (i < 0) {
            spin = 0;
        }
    }
    printf("unreachable %d\n", buf[0]);
    return 0;
}
