/* 482.sphinx3 stand-in: speech decoding — Gaussian mixture scoring of
 * feature frames against a senone codebook plus a Viterbi-ish token pass.
 * Float-heavy with indirection through senone index arrays; clean in
 * Table 2 (0.00%* / 0.00). */

#include <stdio.h>

#define FRAMES 50
#define FEAT 13
#define SENONES 120
#define MIX 4
#define TOKENS 64

float means[SENONES][MIX][FEAT];
float vars_inv[SENONES][MIX][FEAT];
float feat[FEAT];
float senone_score[SENONES];
int token_state[TOKENS];
float token_score[TOKENS];
int transitions[TOKENS][3];

void setup(void) {
    int s, m, f, t;
    unsigned int r = 482u;
    for (s = 0; s < SENONES; s++) {
        for (m = 0; m < MIX; m++) {
            for (f = 0; f < FEAT; f++) {
                r = r * 1103515245u + 12345u;
                means[s][m][f] = (float)((r >> 16) & 255) / 64.0f - 2.0f;
                vars_inv[s][m][f] = 0.5f + (float)((r >> 24) & 3) * 0.25f;
            }
        }
    }
    for (t = 0; t < TOKENS; t++) {
        token_state[t] = t % SENONES;
        token_score[t] = 0.0f;
        for (m = 0; m < 3; m++) {
            r = r * 1103515245u + 12345u;
            transitions[t][m] = (int)((r >> 16) % TOKENS);
        }
    }
}

void gen_feat(int frame) {
    int f;
    unsigned int r = (unsigned int)(frame * 2654435761u + 31u);
    for (f = 0; f < FEAT; f++) {
        r = r * 1103515245u + 12345u;
        feat[f] = (float)((r >> 16) & 255) / 64.0f - 2.0f;
    }
}

void score_senones(void) {
    int s, m, f;
    for (s = 0; s < SENONES; s++) {
        float best = -1.0e30f;
        for (m = 0; m < MIX; m++) {
            float d = 0.0f;
            for (f = 0; f < FEAT; f++) {
                float diff = feat[f] - means[s][m][f];
                d -= diff * diff * vars_inv[s][m][f];
            }
            if (d > best) best = d;
        }
        senone_score[s] = best;
    }
}

void token_pass(void) {
    int t, j;
    float new_score[TOKENS];
    int new_state[TOKENS];
    for (t = 0; t < TOKENS; t++) {
        new_score[t] = -1.0e30f;
        new_state[t] = token_state[t];
    }
    for (t = 0; t < TOKENS; t++) {
        float base = token_score[t] + senone_score[token_state[t]];
        for (j = 0; j < 3; j++) {
            int dst = transitions[t][j];
            float sc = base - (float)j * 0.5f;
            if (sc > new_score[dst]) {
                new_score[dst] = sc;
                new_state[dst] = (token_state[t] + j + 1) % SENONES;
            }
        }
    }
    for (t = 0; t < TOKENS; t++) {
        token_score[t] = new_score[t] * 0.999f;
        token_state[t] = new_state[t];
    }
}

int main() {
    int frame, t;
    float best = -1.0e30f;
    setup();
    for (frame = 0; frame < FRAMES; frame++) {
        gen_feat(frame);
        score_senones();
        token_pass();
    }
    for (t = 0; t < TOKENS; t++) {
        if (token_score[t] > best) best = token_score[t];
    }
    printf("sphinx3: best=%.3f state=%d\n", best, token_state[0]);
    return 0;
}
