/* 401.bzip2 stand-in: the CPU2006 variant of block compression — Huffman
 * cost modelling over grouped symbol frequencies plus run-length encoding.
 * A clean benchmark: 0.00%* unsafe dereferences for SoftBound and 0.00 for
 * Low-Fat Pointers in Table 2. */

#include <stdio.h>

#define DATA 30000
#define SYMS 258
#define GROUPS 6
#define ROUNDS 3

unsigned char data[DATA];
int freq[GROUPS][SYMS];
unsigned char len_table[GROUPS][SYMS];
int rfreq[SYMS];

void gen_data(int round) {
    int i;
    unsigned int s = (unsigned int)(round * 2654435761u + 13u);
    for (i = 0; i < DATA; i++) {
        s = s * 1103515245u + 12345u;
        if ((s >> 28) < 9 && i > 8) {
            data[i] = data[i - 5];
        } else {
            data[i] = (unsigned char)((s >> 16) & 63);
        }
    }
}

long rle_pass(void) {
    int i = 0;
    long out = 0;
    for (i = 0; i < SYMS; i++) rfreq[i] = 0;
    i = 0;
    while (i < DATA) {
        int run = 1;
        while (i + run < DATA && data[i + run] == data[i] && run < 255) run++;
        if (run >= 4) {
            rfreq[data[i]] += 4;
            rfreq[256] += 1; /* run marker */
            out += 5;
        } else {
            rfreq[data[i]] += run;
            out += run;
        }
        i += run;
    }
    return out;
}

void assign_lengths(void) {
    int g, s;
    for (g = 0; g < GROUPS; g++) {
        for (s = 0; s < SYMS; s++) {
            int f = rfreq[s] + g * 3;
            int bits = 1;
            while (f > 0) { f >>= 2; bits++; }
            len_table[g][s] = (unsigned char)(16 - (bits > 15 ? 15 : bits));
            freq[g][s] = 0;
        }
    }
}

long code_cost(void) {
    long cost = 0;
    int i, g;
    int group = 0;
    for (i = 0; i < DATA; i += 50) {
        int end = i + 50 < DATA ? i + 50 : DATA;
        long best = 1 << 30;
        int bestg = 0, j;
        for (g = 0; g < GROUPS; g++) {
            long c = 0;
            for (j = i; j < end; j++) c += len_table[g][data[j]];
            if (c < best) { best = c; bestg = g; }
        }
        group = bestg;
        for (j = i; j < end; j++) freq[group][data[j]]++;
        cost += best;
    }
    return cost;
}

int main() {
    int round;
    long total = 0;
    for (round = 0; round < ROUNDS; round++) {
        gen_data(round);
        total += rle_pass();
        assign_lengths();
        total += code_cost();
    }
    printf("bzip2_06: total=%ld marker=%d\n", total, rfreq[256]);
    return 0;
}
