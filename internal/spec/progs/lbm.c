/* 470.lbm stand-in: lattice Boltzmann fluid dynamics — regular streaming
 * sweeps over a large double grid with a 19-point stencil collapsed to 9
 * directions here. Perfectly regular, provably in-bounds accesses: clean in
 * Table 2 (0.00%* / 0.00) and a benchmark where both instrumentations add
 * mostly raw check cost. */

#include <stdio.h>

#define NX 34
#define NY 34
#define QD 9
#define STEPS 12

double *grid_src;
double *grid_dst;
int offs[QD];
double weight[QD];

int idx3(int x, int y, int q) {
    return (y * NX + x) * QD + q;
}

void setup(void) {
    int x, y, q;
    int dx[QD];
    int dy[QD];
    grid_src = (double *)malloc(NX * NY * QD * sizeof(double));
    grid_dst = (double *)malloc(NX * NY * QD * sizeof(double));
    dx[0] = 0; dy[0] = 0;
    dx[1] = 1; dy[1] = 0;
    dx[2] = -1; dy[2] = 0;
    dx[3] = 0; dy[3] = 1;
    dx[4] = 0; dy[4] = -1;
    dx[5] = 1; dy[5] = 1;
    dx[6] = -1; dy[6] = 1;
    dx[7] = 1; dy[7] = -1;
    dx[8] = -1; dy[8] = -1;
    for (q = 0; q < QD; q++) {
        offs[q] = (dy[q] * NX + dx[q]) * QD;
        weight[q] = (q == 0) ? 0.4444 : (q < 5 ? 0.1111 : 0.0278);
    }
    for (y = 0; y < NY; y++) {
        for (x = 0; x < NX; x++) {
            for (q = 0; q < QD; q++) {
                grid_src[idx3(x, y, q)] = weight[q] * (1.0 + 0.01 * (double)((x * 7 + y * 3) % 5));
                grid_dst[idx3(x, y, q)] = 0.0;
            }
        }
    }
}

void stream_collide(void) {
    int x, y, q;
    for (y = 1; y < NY - 1; y++) {
        for (x = 1; x < NX - 1; x++) {
            int base = idx3(x, y, 0);
            double rho = 0.0;
            for (q = 0; q < QD; q++) {
                rho += grid_src[base + q];
            }
            for (q = 0; q < QD; q++) {
                double f = grid_src[base + q];
                double eq = weight[q] * rho;
                grid_dst[base + offs[q] + q] = f + 0.6 * (eq - f);
            }
        }
    }
    {
        double *tmp = grid_src;
        grid_src = grid_dst;
        grid_dst = tmp;
    }
}

int main() {
    int t, i;
    double mass = 0.0;
    setup();
    for (t = 0; t < STEPS; t++) {
        stream_collide();
    }
    for (i = 0; i < NX * NY * QD; i++) mass += grid_src[i];
    printf("lbm: mass=%.4f probe=%.6f\n", mass, grid_src[idx3(NX / 2, NY / 2, 1)]);
    free(grid_src);
    free(grid_dst);
    return 0;
}
