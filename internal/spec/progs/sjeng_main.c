/* 458.sjeng stand-in: mailbox chess search — 0x88-style board scanning,
 * piece-square evaluation and a small alpha-beta. The opening book hash
 * (defined in sjeng_tables.c) is declared size-zero here and probed a
 * handful of times at the root: nonzero but rounding-to-0.00% unsafe
 * dereferences for SoftBound (Table 2 prints 458.sjeng bold with 0.00). */

#include <stdio.h>

#define POSITIONS 26
#define DEPTH 3

extern unsigned int book_hash[];

int board[128];
int piece_value[7];
int pst[7][128];
unsigned int rng;

int trand(int mod) {
    rng = rng * 1103515245u + 12345u;
    return (int)((rng >> 16) % (unsigned int)mod);
}

void setup_tables(void) {
    int p, sq;
    piece_value[0] = 0;
    piece_value[1] = 100;
    piece_value[2] = 300;
    piece_value[3] = 310;
    piece_value[4] = 500;
    piece_value[5] = 900;
    piece_value[6] = 10000;
    for (p = 0; p < 7; p++) {
        for (sq = 0; sq < 128; sq++) {
            int r = sq >> 4, f = sq & 7;
            pst[p][sq] = (7 - abs(2 * r - 7)) + (7 - abs(2 * f - 7)) + p;
        }
    }
}

void setup_board(int n) {
    int sq, placed = 0;
    rng = (unsigned int)(n * 2654435761u + 458u);
    for (sq = 0; sq < 128; sq++) board[sq] = 0;
    while (placed < 18) {
        int s = trand(128);
        if ((s & 0x88) || board[s] != 0) continue;
        board[s] = (trand(6) + 1) * (placed & 1 ? 1 : -1);
        placed++;
    }
}

int evaluate(int side) {
    int sq, score = 0;
    for (sq = 0; sq < 128; sq++) {
        int p;
        if (sq & 0x88) continue;
        p = board[sq];
        if (p == 0) continue;
        if (p > 0) {
            score += piece_value[p] + pst[p][sq];
        } else {
            score -= piece_value[-p] + pst[-p][sq];
        }
    }
    return side > 0 ? score : -score;
}

int search(int side, int depth, int alpha, int beta) {
    int sq, tried = 0;
    if (depth == 0) return evaluate(side);
    for (sq = 0; sq < 128 && tried < 5; sq++) {
        int p, dir, to, cap, v;
        if (sq & 0x88) continue;
        p = board[sq];
        if (p == 0 || (p > 0) != (side > 0)) continue;
        dir = (p > 0) ? 16 : -16;
        to = sq + dir;
        if (to & 0x88) continue;
        if (to < 0 || to >= 128) continue;
        cap = board[to];
        if (cap != 0 && (cap > 0) == (side > 0)) continue;
        board[to] = p;
        board[sq] = 0;
        v = -search(-side, depth - 1, -beta, -alpha);
        board[sq] = p;
        board[to] = cap;
        tried++;
        if (v > alpha) {
            alpha = v;
            if (alpha >= beta) break;
        }
    }
    if (tried == 0) return evaluate(side);
    return alpha;
}

int main() {
    int n;
    long total = 0;
    setup_tables();
    for (n = 0; n < POSITIONS; n++) {
        setup_board(n);
        /* Root book probe: the only accesses through the size-zero
         * declaration. */
        if (book_hash[(unsigned int)n & 15] % 7 == 0) {
            total += 5;
            continue;
        }
        total += search(1, DEPTH, -100000, 100000);
    }
    printf("sjeng: total=%ld\n", total);
    return 0;
}
