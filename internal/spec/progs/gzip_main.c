/* 164.gzip stand-in: LZ77-style compression over a deterministic input.
 * The work arrays live in gzip_tables.c and are declared here WITHOUT size
 * information ("extern unsigned char window[];"), as the original gzip
 * sources do. When compiled separately, SoftBound cannot derive bounds for
 * them and (with -mi-sb-size-zero-wide-upper) uses wide bounds — Table 2 of
 * the paper reports 61.71% unsafe dereferences for this benchmark. Low-Fat
 * Pointers place the defining unit's arrays into low-fat sections and keep
 * full protection. */

#include <stdio.h>

#define WSIZE 32768
#define WMASK (WSIZE - 1)
#define HASH_SIZE 8192
#define HASH_MASK (HASH_SIZE - 1)
#define MIN_MATCH 3
#define MAX_MATCH 64
#define INPUT_ROUNDS 2

extern unsigned char window[];
extern unsigned short prev[];
extern int head[];
extern unsigned int crc_table[];
void init_crc_table(void);

unsigned int crc;
long total_in;
long total_out;

/* Staging input and token output buffers: regular sized globals, fully
 * protected by both approaches (unlike the size-zero-declared work arrays
 * above). */
unsigned char inbuf[WSIZE];
unsigned char outbuf[WSIZE];
long outpos;

int hash3(int pos) {
    int h = window[pos & WMASK];
    h = ((h << 5) ^ window[(pos + 1) & WMASK]) & HASH_MASK;
    h = ((h << 5) ^ window[(pos + 2) & WMASK]) & HASH_MASK;
    return h;
}

void fill_window(unsigned int seed, int n) {
    int i;
    unsigned int state = seed;
    for (i = 0; i < n; i++) {
        state = state * 1103515245u + 12345u;
        /* Mix in runs so the matcher actually finds matches. */
        if ((state >> 28) < 6 && i > 256) {
            inbuf[i & WMASK] = inbuf[(i - 200) & WMASK];
        } else {
            inbuf[i & WMASK] = (unsigned char)((state >> 16) & 0x3f);
        }
    }
    for (i = 0; i < n; i++) {
        window[i & WMASK] = inbuf[i & WMASK];
    }
}

void emit_token(unsigned char tag, unsigned char payload) {
    outbuf[outpos & WMASK] = tag;
    outbuf[(outpos + 1) & WMASK] = payload;
    outpos += 2;
}

int longest_match(int pos, int chain_head, int *match_start) {
    int best = MIN_MATCH - 1;
    int cur = chain_head;
    int chain = 24;
    while (cur > 0 && chain-- > 0) {
        int len = 0;
        while (len < MAX_MATCH &&
               window[(cur + len) & WMASK] == window[(pos + len) & WMASK]) {
            len++;
        }
        if (len > best) {
            best = len;
            *match_start = cur;
            if (len >= MAX_MATCH) break;
        }
        cur = prev[cur & WMASK];
    }
    return best;
}

int deflate_block(int n) {
    int pos = 0;
    int literals = 0;
    int matches = 0;
    while (pos < n - MAX_MATCH) {
        int h = hash3(pos);
        int cand = head[h];
        prev[pos & WMASK] = (unsigned short)(cand > 0 ? cand : 0);
        head[h] = pos;
        if (cand > 0 && pos - cand < WSIZE - MAX_MATCH) {
            int start = 0;
            int len = longest_match(pos, cand, &start);
            if (len >= MIN_MATCH) {
                matches++;
                total_out += 3;
                emit_token(255, (unsigned char)len);
                crc = crc_table[(crc ^ (unsigned int)len) & 0xff] ^ (crc >> 8);
                pos += len;
                continue;
            }
        }
        literals++;
        total_out += 1;
        emit_token(0, window[pos & WMASK]);
        crc = crc_table[(crc ^ window[pos & WMASK]) & 0xff] ^ (crc >> 8);
        pos++;
    }
    total_in += pos;
    return matches * 65536 + literals;
}

int main() {
    int round;
    long checksum = 0;
    init_crc_table();
    crc = 0xffffffffu;
    for (round = 0; round < INPUT_ROUNDS; round++) {
        int i;
        for (i = 0; i < HASH_SIZE; i++) head[i] = 0;
        fill_window((unsigned int)(round * 2654435761u + 1u), WSIZE);
        checksum += deflate_block(WSIZE);
    }
    printf("gzip: in=%ld out=%ld crc=%u check=%ld\n", total_in, total_out, crc, checksum);
    return 0;
}
