/* 458.sjeng stand-in, translation unit 2: opening-book hash declared
 * size-zero in the main unit. Statically initialized, so the only dynamic
 * accesses are the rare root probes. */

unsigned int book_hash[16] = {
    0x9e3779b9u, 0x7f4a7c15u, 0x85ebca6bu, 0xc2b2ae35u,
    0x27d4eb2fu, 0x165667b1u, 0xd3a2646cu, 0xfd7046c5u,
    0xb55a4f09u, 0x8f462907u, 0x2545f491u, 0x4f6cdd1du,
    0x69c2f211u, 0x39ab5c41u, 0x1b873593u, 0xcc9e2d51u,
};
