/* 445.gobmk stand-in, translation unit 2: the influence cache that the main
 * unit declares without size information. */

#define SQ (19 * 19)

float influence_cache[SQ];

void influence_reset(void) {
    int i;
    for (i = 0; i < SQ; i++) {
        influence_cache[i] = (float)((i * 31) % 100) * 0.01f;
    }
}
