package spec_test

import (
	"testing"

	"repro/internal/spec"
	"repro/internal/vm"
)

// TestBenchmarksRunClean compiles and executes every benchmark without
// instrumentation and checks it completes successfully and deterministically.
func TestBenchmarksRunClean(t *testing.T) {
	for _, b := range spec.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			m, err := b.Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			machine, err := vm.New(m, vm.Options{})
			if err != nil {
				t.Fatalf("vm: %v", err)
			}
			code, err := machine.Run()
			if err != nil {
				t.Fatalf("run: %v (output: %s)", err, machine.Output())
			}
			if code != 0 {
				t.Fatalf("exit code %d (output: %s)", code, machine.Output())
			}
			out1 := machine.Output()
			if out1 == "" {
				t.Fatalf("benchmark produced no output")
			}
			if b.Expect != "" && out1 != b.Expect {
				t.Errorf("output = %q, want %q", out1, b.Expect)
			}
			t.Logf("instrs=%d cost=%d output=%s", machine.Stats.Instrs, machine.Stats.Cost, out1)
		})
	}
}

// TestByName checks benchmark lookup by full and short names.
func TestByName(t *testing.T) {
	if spec.ByName("164gzip") == nil || spec.ByName("gzip") == nil {
		t.Error("lookup by name failed")
	}
	if spec.ByName("nope") != nil {
		t.Error("lookup of unknown benchmark succeeded")
	}
}

// TestSuiteComposition pins the benchmark list to the paper's 20 programs.
func TestSuiteComposition(t *testing.T) {
	all := spec.All()
	if len(all) != 20 {
		t.Fatalf("%d benchmarks, want 20", len(all))
	}
	counts := map[string]int{}
	for _, b := range all {
		counts[b.Suite]++
	}
	if counts["cpu2000"] != 10 || counts["cpu2006"] != 10 {
		t.Errorf("suite split %v, want 10/10", counts)
	}
}

// TestFeatureAnnotations verifies that the paper-relevant source features
// are present in the right benchmarks.
func TestFeatureAnnotations(t *testing.T) {
	sizeZero := map[string]bool{
		"164gzip": true, "433milc": true, "445gobmk": true,
		"456hmmer": true, "458sjeng": true,
	}
	extLib := map[string]bool{
		"177mesa": true, "188ammp": true, "197parser": true, "300twolf": true,
	}
	for _, b := range spec.All() {
		m, err := b.Compile()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		var hasSizeZero, hasExtLib bool
		for _, g := range m.Globals {
			if g.SizeZeroDecl {
				hasSizeZero = true
			}
			if g.ExternalLib {
				hasExtLib = true
			}
		}
		if hasSizeZero != sizeZero[b.Name] {
			t.Errorf("%s: size-zero arrays = %t, want %t", b.Name, hasSizeZero, sizeZero[b.Name])
		}
		if hasExtLib != extLib[b.Name] {
			t.Errorf("%s: extlib globals = %t, want %t", b.Name, hasExtLib, extLib[b.Name])
		}
	}
}

// TestDeterministicOutput runs each benchmark twice and requires identical
// output (the whole evaluation depends on it).
func TestDeterministicOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	for _, b := range []string{"181mcf", "462libquantum", "197parser"} {
		bench := spec.ByName(b)
		var outs [2]string
		for i := 0; i < 2; i++ {
			m, err := bench.Compile()
			if err != nil {
				t.Fatal(err)
			}
			machine, err := vm.New(m, vm.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := machine.Run(); err != nil {
				t.Fatal(err)
			}
			outs[i] = machine.Output()
		}
		if outs[0] != outs[1] {
			t.Errorf("%s: nondeterministic output", b)
		}
	}
}
