// Package bytecode is the compiled execution engine: it lowers an ir.Module
// to a flat, register-based bytecode and interprets it in a tight dispatch
// loop. The tree-walking interpreter of internal/vm re-dispatches on operand
// kinds (instruction result? constant? global?) for every operand of every
// executed instruction; here that resolution happens once, at compile time:
//
//   - instruction results, parameters and constants become register slots
//     (constants, globals and function addresses are materialized into a
//     per-function constant pool bound at engine-creation time),
//   - blocks become jump offsets,
//   - phis become pre-resolved parallel-copy plans executed on edges,
//   - runtime-intrinsic calls (mi_sb_check, mi_lf_check, ...) become fused
//     opcodes, and a check that immediately guards a load or store fuses
//     with the access into a single combined opcode,
//   - the per-instruction cost of the vm.CostModel is baked into each op.
//
// The engine drives an ordinary *vm.VM for all runtime state — address
// space, allocators, metadata trie, shadow stack, libc handlers, statistics
// — so program-visible semantics, statistics and error classification are
// identical to the reference interpreter by construction. A differential
// test (diff_test.go) holds the two engines to byte-identical outputs and
// statistics over every spec benchmark and the fault-injection matrix.
package bytecode

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/ir"
	"repro/internal/vm"
)

// EngineKind selects the execution engine for code paths (harness,
// fault-injection campaign, functional suite, campaign server) that support
// more than one.
type EngineKind int

// Engine kinds.
const (
	// EngineTree is the tree-walking reference interpreter (internal/vm).
	EngineTree EngineKind = iota
	// EngineBytecode is the compiled register-bytecode engine.
	EngineBytecode
	// EngineCompiler is the optimizing tier on top of the bytecode engine:
	// the same lowering plus a per-function quickening pass that rewrites
	// generic opcodes to specialized variants, fuses straight-line opcode
	// runs into superinstructions with batched accounting, and trace-fuses
	// counted loops into mega-ops (see quicken.go).
	EngineCompiler
)

// String names the engine.
func (k EngineKind) String() string {
	switch k {
	case EngineBytecode:
		return "bytecode"
	case EngineCompiler:
		return "compiler"
	}
	return "tree"
}

// EngineNames lists the valid -engine flag values in parse order. All CLIs
// and the campaign server share this set through ParseEngine, so an unknown
// name is rejected everywhere with the same message.
func EngineNames() []string { return []string{"tree", "bytecode", "compiler"} }

// ParseEngine parses an -engine flag value, rejecting unknown names with a
// message that lists the valid set.
func ParseEngine(s string) (EngineKind, error) {
	switch s {
	case "tree":
		return EngineTree, nil
	case "bytecode":
		return EngineBytecode, nil
	case "compiler":
		return EngineCompiler, nil
	}
	return EngineTree, fmt.Errorf("unknown engine %q (valid engines: %s)", s, strings.Join(EngineNames(), ", "))
}

// opcode enumerates the bytecode operations. Opcodes below opPhiCopy
// correspond one-to-one to a counted IR instruction and share the step /
// instruction-count / cost / coverage preamble; opPhiCopy and opErrRaw are
// synthetic (edge copies, deferred compile diagnostics) and do their own
// accounting.
type opcode uint16

const (
	// Integer arithmetic: dst = (a OP b) & imm.
	opAdd opcode = iota
	opSub
	opMul
	opSDiv
	opSRem
	opUDiv
	opURem
	opAnd
	opOr
	opXor
	opShl
	opLShr
	opAShr

	// Float arithmetic on wbits-wide floats.
	opFAdd
	opFSub
	opFMul
	opFDiv

	// Integer comparisons (predicate baked into the opcode, parallel to
	// ir.PredEQ..PredUGE).
	opEQ
	opNE
	opSLT
	opSLE
	opSGT
	opSGE
	opULT
	opULE
	opUGT
	opUGE

	// Ordered float comparisons (parallel to ir.PredOEQ..PredOGE).
	opFOEQ
	opFONE
	opFOLT
	opFOLE
	opFOGT
	opFOGE

	// Conversions.
	opTrunc  // dst = a & imm (also zext: imm is the source mask)
	opSExt   // dst = sext(a, wbits) & imm
	opFPCvt  // dst = floatBits(imm, bitsToFloat(wbits, a))
	opFPToSI // dst = int64(bitsToFloat(wbits, a)) & imm
	opSIToFP // dst = floatBits(imm, float64(sext(a, wbits)))
	opMove   // dst = a (ptrtoint, inttoptr, bitcast)

	// Memory.
	opLoad   // dst = mem[a], wbits bytes
	opStore  // mem[b] = a, wbits bytes
	opAlloca // dst = alloca(imm * (a<0 ? 1 : regs[a])), align x
	opGEP    // dst = a + plan geps[x]
	opGEPDyn // dst via runtime type walk gepDyns[x]

	opSelect // dst = a != 0 ? b : c

	// Calls.
	opCallInt // intCalls[x]
	opCallExt // extCalls[x]

	// Fused runtime intrinsics (replicating internal/vm's mirt.go handlers,
	// charged the call-instruction cost plus the handler cost).
	opSBLoadBase  // dst = trie[a].base
	opSBLoadBound // dst = trie[a].bound
	opSBStoreMD   // trie[a] = {b, c}
	opSBCheck     // check(ptr=a, width=b, base=c, bound=d)
	opSBSSAlloc
	opSBSSSetArg
	opSBSSArgBase
	opSBSSArgBound
	opSBSSSetRet
	opSBSSRetBase
	opSBSSRetBound
	opSBSSPop
	opLFBase     // dst = lowfat.Base(a)
	opLFCheck    // check(ptr=a, width=b, base=c)
	opLFCheckInv // invariant check(ptr=a, base=b)

	// Hoisted range checks (opt.HoistChecks). The calls are void, so the
	// dst slot is free to carry the loop's entry condition register.
	opSBCheckRange // check(lo=a, hi=b, width=x, base=c, bound=d, nonempty=dst)
	opLFCheckRange // check(lo=a, hi=b, width=x, base=c, nonempty=dst)

	// Fused check + access: the check above plus an immediately following
	// load/store of the same pointer register, one dispatch. Counts as two
	// instructions (aux[x] carries the access half's identity and cost).
	opSBCheckLoad  // check(a,b,c,d), then dst = mem[a] (wbits bytes)
	opSBCheckStore // check(a,b,c,d), then mem[a] = regs[dst]
	opLFCheckLoad  // check(a,b,c), then dst = mem[a]
	opLFCheckStore // check(a,b,c), then mem[a] = regs[dst]

	// Site-profiling twins of the check/metadata opcodes above, selected at
	// compile time when vm.Options.SiteProfile is on: identical semantics
	// plus a per-site counter bump keyed by imm (the SiteID baked in from
	// ir.Instr.Site). Keeping them separate opcodes keeps the non-profiling
	// dispatch loop entirely untouched.
	opSBStoreMDProf
	opSBCheckProf
	opLFCheckProf
	opLFCheckInvProf
	opSBCheckLoadProf
	opSBCheckStoreProf
	opLFCheckLoadProf
	opLFCheckStoreProf
	opSBCheckRangeProf
	opLFCheckRangeProf

	// Forensic-recording twins, selected at compile time when
	// vm.Options.Forensics is on. The check/metadata halves delegate to the
	// VM's recorded operations (internal/vm forensics.go), so flight-recorder
	// events, allocation tracking and violation-report synthesis are shared
	// with the tree interpreter and reports come out byte-identical across
	// engines. opAllocaRec additionally registers the allocation under the
	// instruction's AllocSite. As with the profiling twins, the plain
	// dispatch loop stays entirely untouched when forensics is off.
	opAllocaRec
	opSBStoreMDRec
	opSBCheckRec
	opLFCheckRec
	opLFCheckInvRec
	opSBCheckLoadRec
	opSBCheckStoreRec
	opLFCheckLoadRec
	opLFCheckStoreRec
	opSBCheckRangeRec
	opLFCheckRangeRec

	// Control flow.
	opBr     // pc = b
	opCondBr // pc = a != 0 ? b : c
	opRet    // return a < 0 ? 0 : regs[a]

	// Counted runtime-error op: a lowering-time diagnosis (unsupported op,
	// aggregate access, indirect call, unreachable) deferred to execution so
	// unexecuted malformed code stays free, exactly like the reference
	// interpreter.
	opErrInstr

	// --- uncounted ops below this point ---

	// opPhiCopy performs the parallel copy phis[x] and jumps to b. It adds
	// len(phis) to Stats.Instrs (as the reference interpreter does on block
	// entry) but no steps or cost.
	opPhiCopy
	// opErrRaw raises errs[x] without instruction accounting (fell-through
	// block, phi without incoming).
	opErrRaw

	// --- quickened opcodes below this point ---
	//
	// Specialized variants produced by the compiler tier's quickening pass
	// (quicken.go). They only ever appear inside a quickened overlay's
	// superinstruction groups, executed by the group runner (quickrun.go);
	// the generic dispatch loop never sees them. Each is semantically
	// identical to its generic origin with type/width/shape baked in.

	// Width-specialized loads/stores (suffix is the access width in bits):
	// the page-cache fast path is inlined with a constant width, the
	// address-space slow path keeps exact fault semantics.
	opQLoad8  // dst = mem[a], 1 byte
	opQLoad16 // dst = mem[a], 2 bytes
	opQLoad32 // dst = mem[a], 4 bytes
	opQLoad64 // dst = mem[a], 8 bytes
	opQStore8
	opQStore16
	opQStore32
	opQStore64

	// Shape-specialized GEPs.
	opQGEPC  // dst = a + imm (single constant offset)
	opQGEPRC // dst = a + sext(b, wbits)*imm + x (scaled index + constant)

	// Superinstruction micro-fusions: a shape-specialized GEP immediately
	// feeding a width-specialized access of its result. The GEP result is
	// still written (to register c) in case it has further uses.
	opQLoadIdx8 // c = a + sext(b,wbits)*imm + x; dst = mem[c]
	opQLoadIdx16
	opQLoadIdx32
	opQLoadIdx64
	opQStoreIdx8 // c = a + sext(b,wbits)*imm + x; mem[c] = regs[dst]
	opQStoreIdx16
	opQStoreIdx32
	opQStoreIdx64
	opQLoadOff8 // c = a + imm; dst = mem[c]
	opQLoadOff16
	opQLoadOff32
	opQLoadOff64
	opQStoreOff8 // c = a + imm; mem[c] = regs[dst]
	opQStoreOff16
	opQStoreOff32
	opQStoreOff64

	// opTExit is a mid-trace conditional branch. While the branch stays on
	// trace, execution falls through to the next slot; when it leaves, the
	// trace's pre-committed suffix statics (instructions, cost, steps) are
	// rolled back and the fused executor exits at the off-trace target.
	// a = condition register, b = off-trace pc, x = 1 when the on-trace
	// direction is the true edge.
	opTExit
)

// opUncountedStart splits counted from synthetic opcodes for the dispatch
// preamble.
const opUncountedStart = opPhiCopy

// op is one bytecode operation. Field meaning is opcode-specific (see the
// opcode comments); dst/a/b/c/d are register indices (-1 when absent), imm
// carries masks and immediates, x indexes a per-function side table.
type op struct {
	imm   uint64
	cost  uint64
	dst   int32
	a     int32
	b     int32
	c     int32
	d     int32
	x     int32
	instr *ir.Instr
	code  opcode
	wbits uint8
}

type constKind uint8

const (
	constRaw constKind = iota
	constGlobal
	constFunc
)

// constEntry is one constant-pool slot. Globals and functions are
// relocations: their addresses are resolved per VM when an Engine binds the
// program.
type constEntry struct {
	kind constKind
	val  uint64
	g    *ir.Global
	f    *ir.Func
}

// gepStep is one pre-resolved GEP index: either a constant byte offset
// (reg < 0) or a register scaled by a constant element size.
type gepStep struct {
	reg   int32
	sh    uint8 // sign-extension shift for the index register
	off   int64
	scale int64
}

type gepPlan struct{ steps []gepStep }

// gepDynPlan is the slow-path GEP: a runtime type walk, used only when a
// struct field index is not a compile-time constant (the reference
// interpreter resolves it dynamically, so we must too).
type gepDynPlan struct {
	srcTy *ir.Type
	idx   []dynIdx
}

type dynIdx struct {
	reg int32
	sh  uint8
}

// phiPlan is the parallel copy for one CFG edge: all sources are read
// before any destination is written.
type phiPlan struct{ srcs, dsts []int32 }

type intCall struct {
	callee *ir.Func
	fn     *Fn
	args   []int32
}

type extCall struct {
	name  string
	instr *ir.Instr
	args  []int32
}

// fusedAux is the access half of a fused check+access op.
type fusedAux struct {
	in2   *ir.Instr
	cost2 uint64
}

type errInfo struct {
	msg   string
	trace bool
}

// Fn is one compiled function.
type Fn struct {
	idx int
	ir  *ir.Func
	ops []op
	// Register file layout: [0, nparams) parameters, then instruction
	// results, then the constant pool at [constBase, nregs).
	nparams   int
	constBase int
	nregs     int
	consts    []constEntry

	geps     []gepPlan
	gepDyns  []gepDynPlan
	phis     []phiPlan
	intCalls []intCall
	extCalls []extCall
	aux      []fusedAux
	errs     []errInfo

	// Compiler-tier quickening state. loops carries the counted-loop pc
	// geometry recorded at compile time (compiler tier only); quick holds
	// the lazily built quickened overlay, published atomically so a Program
	// shared across concurrent Engines quickens each function exactly once.
	loops    []loopMeta
	quick    atomic.Pointer[quickFn]
	quickGen sync.Mutex
}

// Program is a compiled module. The bytecode itself is immutable after
// Compile and may be shared by any number of Engines (each Engine binds its
// own per-VM state); under the compiler tier each Fn additionally carries a
// race-safe, build-once quickened overlay (see Fn.quick).
type Program struct {
	mod    *ir.Module
	cm     vm.CostModel
	prof   bool
	rec    bool
	tier   EngineKind
	fns    []*Fn
	byFunc map[*ir.Func]*Fn
	main   *Fn

	// Native-tier state (compiler tier only): the build-once outcome of
	// lowering this program to a Go plugin (native.go). Published atomically
	// so concurrent Engines sharing the program build it exactly once; a nil
	// natState.prog records a failed build so it is not retried.
	nat   atomic.Pointer[natState]
	natMu sync.Mutex
}

// Tier reports the engine tier the program was compiled for (EngineBytecode
// or EngineCompiler).
func (p *Program) Tier() EngineKind { return p.tier }

// Module returns the module the program was compiled from. Bytecode
// references the module's instruction and global objects, so an Engine may
// only bind the program to a VM created for this exact module.
func (p *Program) Module() *ir.Module { return p.mod }

// NumOps returns the total op count across all functions (diagnostics).
func (p *Program) NumOps() int {
	n := 0
	for _, fn := range p.fns {
		n += len(fn.ops)
	}
	return n
}

// RunOn executes the VM's module under the selected engine. Under
// EngineTree it is machine.Run(). Under EngineBytecode and EngineCompiler
// the module is compiled for that tier (through the compiled-module cache
// when cacheKey is non-empty) and executed by a fresh Engine bound to the VM.
func RunOn(kind EngineKind, machine *vm.VM, cacheKey string) (int32, error) {
	if kind != EngineBytecode && kind != EngineCompiler {
		return machine.Run()
	}
	prof := machine.Options().SiteProfile
	rec := machine.Options().Forensics
	var prog *Program
	if cacheKey != "" {
		// Profiled/recorded and plain compilations of the same module differ
		// in their opcodes, so they must not share a cache slot; the compiler
		// tier carries quickening state on its Fns, so it must not share a
		// slot with the bytecode tier either (a quickened program must never
		// be served to a run keyed for the plain tier, and vice versa).
		if prof {
			cacheKey += "|siteprofile"
		}
		if rec {
			cacheKey += "|forensics"
		}
		if kind == EngineCompiler {
			cacheKey += "|tier=compiler"
		}
		prog = CompileCached(cacheKey, machine.Mod, machine.CostModel(), prof, rec, kind)
	} else {
		prog = compileTier(machine.Mod, machine.CostModel(), prof, rec, kind)
	}
	eng, err := NewEngine(prog, machine)
	if err != nil {
		return 0, err
	}
	return eng.Run()
}
