package bytecode

import (
	"sort"
	"sync"
)

// Per-function tier attribution for the compiler execution tier.
//
// Every instruction a compiler-tier engine retires lands in exactly one
// bucket: quick (fused regions entered through a superinstruction segment),
// fused (fused regions entered through a trace-fused loop), native
// (instructions the generated plugin code retired, excluding its gate
// intervals), or interpreted (the residual: generic dispatch, gated ops, and
// everything on engines where a faster tier declined). The engine collects
// the first three per function with cheap delta measurements at tier
// boundaries — fused regions contain no calls and native gate intervals are
// subtracted — and merges them here at the end of every Run; the residual is
// computed against the total so the generic dispatch loop pays nothing.

// tierCount is one function's per-engine accumulator.
type tierCount struct {
	quick, fused, native, entries, bails, gates uint64
}

// TierFnStats is one function's process-wide tier attribution.
type TierFnStats struct {
	// Func is the IR function name.
	Func string
	// QuickInstrs/FusedInstrs count instructions retired in fused regions,
	// attributed to the entry unit's kind (superinstruction segment vs
	// trace-fused loop; a chain that crosses kinds stays with its entry).
	QuickInstrs uint64
	FusedInstrs uint64
	// NativeInstrs counts instructions the generated native code retired
	// (gate intervals excluded — gated ops and nested calls attribute to
	// the interpreter and the callees respectively).
	NativeInstrs uint64
	// NativeEntries/NativeBails count transitions into native code and
	// bail-outs back to the interpreter (step-limit proximity, interrupt
	// polls); GateOps counts one-op gate round trips.
	NativeEntries uint64
	NativeBails   uint64
	GateOps       uint64
}

var (
	tierMu          sync.Mutex
	tierFnAgg       = map[string]*TierFnStats{}
	tierTotalInstrs uint64
)

// tierMerge folds one engine's per-function counters and its total retired
// instruction count into the process-wide table.
func (e *Engine) tierMerge(total uint64) {
	tierMu.Lock()
	defer tierMu.Unlock()
	tierTotalInstrs += total
	for i := range e.tierFns {
		tc := &e.tierFns[i]
		if tc.quick|tc.fused|tc.native|tc.entries|tc.bails|tc.gates == 0 {
			continue
		}
		name := e.p.fns[i].ir.Name
		row := tierFnAgg[name]
		if row == nil {
			row = &TierFnStats{Func: name}
			tierFnAgg[name] = row
		}
		row.QuickInstrs += tc.quick
		row.FusedInstrs += tc.fused
		row.NativeInstrs += tc.native
		row.NativeEntries += tc.entries
		row.NativeBails += tc.bails
		row.GateOps += tc.gates
	}
}

// TierStats returns the process-wide per-function tier attribution (sorted
// by function name) and the total instruction count retired by compiler-tier
// engines. Functions with no tiered execution are omitted.
func TierStats() ([]TierFnStats, uint64) {
	tierMu.Lock()
	defer tierMu.Unlock()
	rows := make([]TierFnStats, 0, len(tierFnAgg))
	for _, r := range tierFnAgg {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Func < rows[j].Func })
	return rows, tierTotalInstrs
}

// ResetTierStats clears the process-wide tier-attribution table (tests).
func ResetTierStats() {
	tierMu.Lock()
	defer tierMu.Unlock()
	tierFnAgg = map[string]*TierFnStats{}
	tierTotalInstrs = 0
}
