package bytecode_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/spec"
	"repro/internal/vm"
)

// engines under test for the watchdog: the cooperative interrupt must work
// identically on the reference interpreter and the bytecode engine.
var watchdogEngines = []bytecode.EngineKind{bytecode.EngineTree, bytecode.EngineBytecode}

// TestWatchdogInterruptsInfiniteLoop is the tentpole acceptance check: a
// benchmark that never terminates is stopped by a raised interrupt flag on
// both engines, surfacing as a structured InterruptError instead of a hang.
func TestWatchdogInterruptsInfiniteLoop(t *testing.T) {
	for _, kind := range watchdogEngines {
		for _, cfg := range []harness.RunConfig{
			harness.BaselineConfig(),
			harness.PaperConfig(core.MechSoftBound),
			harness.PaperConfig(core.MechLowFat),
		} {
			t.Run(kind.String()+"/"+cfg.Label, func(t *testing.T) {
				m, vopts, _ := prepare(t, spec.InfLoop, cfg)
				flag := &vm.InterruptFlag{}
				vopts.Interrupt = flag
				timer := time.AfterFunc(20*time.Millisecond, func() { flag.Interrupt(vm.IntrDeadline) })
				defer timer.Stop()

				done := make(chan runOutcome, 1)
				go func() { done <- runUnder(t, kind, m, vopts) }()
				var out runOutcome
				select {
				case out = <-done:
				case <-time.After(30 * time.Second):
					t.Fatal("watchdog did not stop the infinite loop")
				}
				var intr *vm.InterruptError
				if !errors.As(out.err, &intr) {
					t.Fatalf("expected InterruptError, got %v", out.err)
				}
				if intr.Reason != vm.IntrDeadline {
					t.Fatalf("reason = %s, want deadline", vm.ReasonString(intr.Reason))
				}
				if intr.Steps == 0 {
					t.Fatal("interrupt fired before the program ran at all")
				}
			})
		}
	}
}

// TestWatchdogInterruptLatencyBounded verifies the instruction-budget bound:
// a flag raised before the run starts stops both engines within one poll
// stride (plus the handful of uncounted bookkeeping instructions a fused
// opcode may add), not after millions of instructions.
func TestWatchdogInterruptLatencyBounded(t *testing.T) {
	for _, kind := range watchdogEngines {
		t.Run(kind.String(), func(t *testing.T) {
			m, vopts, _ := prepare(t, spec.InfLoop, harness.BaselineConfig())
			flag := &vm.InterruptFlag{}
			flag.Interrupt(vm.IntrCanceled)
			vopts.Interrupt = flag
			out := runUnder(t, kind, m, vopts)
			var intr *vm.InterruptError
			if !errors.As(out.err, &intr) {
				t.Fatalf("expected InterruptError, got %v", out.err)
			}
			if intr.Reason != vm.IntrCanceled {
				t.Fatalf("reason = %s, want canceled", vm.ReasonString(intr.Reason))
			}
			const slack = 64 // fused opcodes bump steps in small bursts between polls
			if intr.Steps > vm.InterruptStride+slack {
				t.Fatalf("pre-raised flag observed after %d steps; poll stride is %d",
					intr.Steps, vm.InterruptStride)
			}
		})
	}
}

// TestWatchdogNeutrality mirrors TestSiteProfileNeutrality for the interrupt
// poll: running with an armed-but-never-raised flag must not change any
// verdict, output or statistic versus running with no flag at all, and must
// not measurably slow either engine — the countdown poll is the only cost a
// campaign without -deadline pays for the watchdog.
func TestWatchdogNeutrality(t *testing.T) {
	b := spec.All()[0]
	for _, kind := range watchdogEngines {
		for _, cfg := range []harness.RunConfig{
			harness.BaselineConfig(),
			harness.PaperConfig(core.MechSoftBound),
		} {
			t.Run(kind.String()+"/"+cfg.Label, func(t *testing.T) {
				m, vopts, _ := prepare(t, b, cfg)
				timeOnce := func(withFlag bool) (runOutcome, time.Duration) {
					o := vopts
					if withFlag {
						o.Interrupt = &vm.InterruptFlag{}
					}
					start := time.Now()
					out := runUnder(t, kind, m, o)
					return out, time.Since(start)
				}
				// Interleave the off/on trials and take each side's minimum:
				// concurrent test binaries ramp load mid-test, and
				// back-to-back blocks would bill that ramp to one side only.
				var off, on runOutcome
				var offT, onT time.Duration
				for i := 0; i < 5; i++ {
					var d time.Duration
					off, d = timeOnce(false)
					if offT == 0 || d < offT {
						offT = d
					}
					on, d = timeOnce(true)
					if onT == 0 || d < onT {
						onT = d
					}
				}
				if off.code != on.code {
					t.Errorf("exit code changed: off=%d on=%d", off.code, on.code)
				}
				if off.output != on.output {
					t.Errorf("output changed:\noff: %q\non:  %q", off.output, on.output)
				}
				if oe, ne := describeErr(off.err), describeErr(on.err); oe != ne {
					t.Errorf("verdict changed: off=%s on=%s", oe, ne)
				}
				if off.stats != on.stats {
					t.Errorf("stats changed:\noff: %+v\non:  %+v", off.stats, on.stats)
				}
				ratio := float64(onT) / float64(offT)
				t.Logf("%s/%s: off=%v on=%v (%.3fx)", kind, cfg.Label, offT, onT, ratio)
				// The poll costs ~one predictable branch per instruction;
				// measured overhead sits well under 2%. The hard gate is
				// looser only to absorb shared-runner timing noise.
				if ratio > 1.10 {
					t.Errorf("armed watchdog slowed %s by %.1f%% (>10%%): off=%v on=%v",
						kind, 100*(ratio-1), offT, onT)
				}
			})
		}
	}
}
