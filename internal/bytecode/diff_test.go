package bytecode_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/spec"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// diffEngines are the engines the differential tests sweep against the tree
// reference: the plain bytecode tier and the optimizing compiler tier.
func diffEngines() []bytecode.EngineKind {
	return []bytecode.EngineKind{bytecode.EngineBytecode, bytecode.EngineCompiler}
}

// diffConfigs are the execution configurations the differential test sweeps:
// the -O3 baseline and both instrumented paper configurations.
func diffConfigs() []harness.RunConfig {
	return []harness.RunConfig{
		harness.BaselineConfig(),
		harness.PaperConfig(core.MechSoftBound),
		harness.PaperConfig(core.MechLowFat),
		harness.HoistConfig(core.MechSoftBound),
		harness.HoistConfig(core.MechLowFat),
	}
}

// prepare compiles and instruments one (benchmark, config) module. The
// returned stats are nil for uninstrumented configurations.
func prepare(t *testing.T, b *spec.Benchmark, cfg harness.RunConfig) (*ir.Module, vm.Options, *core.Stats) {
	t.Helper()
	m, err := b.Compile()
	if err != nil {
		t.Fatalf("compile %s: %v", b.Name, err)
	}
	return instrumentModule(t, b.Name, ir.CloneModule(m), cfg)
}

// prepareSource is prepare for an ad-hoc C program instead of a spec
// benchmark.
func prepareSource(t *testing.T, name, code string, cfg harness.RunConfig) (*ir.Module, vm.Options, *core.Stats) {
	t.Helper()
	m, err := cc.Compile(name, cc.Source{Name: name + ".c", Code: code})
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return instrumentModule(t, name, m, cfg)
}

func instrumentModule(t *testing.T, name string, m *ir.Module, cfg harness.RunConfig) (*ir.Module, vm.Options, *core.Stats) {
	t.Helper()
	var stats *core.Stats
	var hook func(*ir.Module)
	if cfg.Instrument {
		hook = func(mod *ir.Module) {
			s, ierr := core.Instrument(mod, cfg.Core)
			if ierr != nil {
				t.Fatalf("instrument %s: %v", name, ierr)
			}
			stats = s
		}
	}
	opt.RunPipeline(m, cfg.EP, hook, opt.PipelineOptions{Level: cfg.OptLevel})
	vopts := vm.Options{}
	if cfg.Instrument {
		switch cfg.Core.Mechanism {
		case core.MechSoftBound:
			vopts.Mechanism = vm.MechSoftBound
		case core.MechLowFat:
			vopts.Mechanism = vm.MechLowFat
			vopts.LowFatHeap = true
			vopts.LowFatStack = true
			vopts.LowFatGlobals = true
		}
	}
	return m, vopts, stats
}

type runOutcome struct {
	code   int32
	output string
	stats  vm.Stats
	sites  []vm.SiteCount
	err    error
}

func runUnder(t *testing.T, kind bytecode.EngineKind, m *ir.Module, vopts vm.Options) runOutcome {
	t.Helper()
	machine, err := vm.New(m, vopts)
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	code, rerr := bytecode.RunOn(kind, machine, "")
	return runOutcome{code: code, output: machine.Output(), stats: machine.Stats,
		sites: machine.SiteProfile(), err: rerr}
}

// describeErr classifies an execution error for equivalence comparison:
// violations must agree on every structured field, runtime errors on the
// message (backtraces can differ in synthetic-frame detail).
func describeErr(err error) string {
	if err == nil {
		return "ok"
	}
	var ve *vm.ViolationError
	if errors.As(err, &ve) {
		return fmt.Sprintf("violation|%s|%s|%#x|%s", ve.Mechanism, ve.Kind, ve.Ptr, ve.Detail)
	}
	var re *vm.RuntimeError
	if errors.As(err, &re) {
		return "runtime|" + re.Msg
	}
	return "error|" + err.Error()
}

// TestDifferentialSpec runs every spec benchmark under baseline, SoftBound
// and Low-Fat configurations on all three engines and requires identical
// exit codes, outputs, error verdicts and full execution statistics.
func TestDifferentialSpec(t *testing.T) {
	for _, b := range spec.All() {
		for _, cfg := range diffConfigs() {
			t.Run(b.Name+"/"+cfg.Label, func(t *testing.T) {
				m, vopts, _ := prepare(t, b, cfg)
				tree := runUnder(t, bytecode.EngineTree, m, vopts)
				for _, kind := range diffEngines() {
					bc := runUnder(t, kind, m, vopts)
					if tree.code != bc.code {
						t.Errorf("exit code: tree=%d %v=%d", tree.code, kind, bc.code)
					}
					if tree.output != bc.output {
						t.Errorf("output differs:\ntree: %q\n%v: %q", tree.output, kind, bc.output)
					}
					if te, be := describeErr(tree.err), describeErr(bc.err); te != be {
						t.Errorf("verdict: tree=%s %v=%s", te, kind, be)
					}
					if tree.stats != bc.stats {
						t.Errorf("stats differ:\ntree: %+v\n%v: %+v", tree.stats, kind, bc.stats)
					}
				}
			})
		}
	}
}

// TestDifferentialSiteProfile runs every spec benchmark under both
// instrumented configurations with site profiling enabled and requires:
// (1) both engines produce identical per-site profiles, (2) the per-site
// sums reproduce the aggregate statistics exactly, and (3) every site that
// executed resolves to a C source location.
func TestDifferentialSiteProfile(t *testing.T) {
	for _, b := range spec.All() {
		for _, cfg := range diffConfigs()[1:] {
			t.Run(b.Name+"/"+cfg.Label, func(t *testing.T) {
				m, vopts, stats := prepare(t, b, cfg)
				if stats == nil || stats.Sites == nil {
					t.Fatal("instrumentation produced no site table")
				}
				vopts.SiteProfile = true
				tree := runUnder(t, bytecode.EngineTree, m, vopts)
				for _, kind := range diffEngines() {
					bc := runUnder(t, kind, m, vopts)
					if len(tree.sites) != len(bc.sites) {
						t.Fatalf("profile length: tree=%d %v=%d", len(tree.sites), kind, len(bc.sites))
					}
					for id := range tree.sites {
						if tree.sites[id] != bc.sites[id] {
							t.Errorf("site %d: tree=%+v %v=%+v", id, tree.sites[id], kind, bc.sites[id])
						}
					}
				}
				cm := vm.DefaultCostModel()
				var checks, wide, inv, meta, rng, rngWide uint64
				for id := 1; id < len(tree.sites); id++ {
					sc := tree.sites[id]
					s := stats.Sites.Get(int32(id))
					if s == nil {
						t.Fatalf("site %d executed but is missing from the registry", id)
					}
					if sc.Execs > 0 && s.Loc.IsZero() {
						t.Errorf("site %d (%s in %s) executed %d times but has no source location",
							id, s.Kind, s.Func, sc.Execs)
					}
					if s.Status != "" && sc.Execs > 0 {
						t.Errorf("site %d is %s (by %d) but executed %d times",
							id, s.Status, s.By, sc.Execs)
					}
					var unit uint64
					switch s.Kind {
					case "check":
						checks += sc.Execs
						wide += sc.Wide
						unit = cm.SBCheck
						if s.Mech == "lowfat" {
							unit = cm.LFCheck
						}
					case "invariant":
						inv += sc.Execs
						unit = cm.LFCheck
					case "metastore":
						meta += sc.Execs
						unit = cm.SBMetaStore
					case "rangecheck":
						rng += sc.Execs
						rngWide += sc.Wide
						unit = cm.SBCheck
						if s.Mech == "lowfat" {
							unit = cm.LFCheck
						}
					}
					if sc.Cost != sc.Execs*unit {
						t.Errorf("site %d (%s): cost %d != execs %d x unit %d",
							id, s.Kind, sc.Cost, sc.Execs, unit)
					}
				}
				st := tree.stats
				if checks != st.Checks || wide != st.WideChecks || inv != st.InvariantChecks {
					t.Errorf("per-site sums diverge from aggregates:\n"+
						"sums:       checks=%d wide=%d invariant=%d\n"+
						"aggregates: checks=%d wide=%d invariant=%d",
						checks, wide, inv, st.Checks, st.WideChecks, st.InvariantChecks)
				}
				if rng != st.RangeChecks || rngWide != st.WideRangeChecks {
					t.Errorf("per-site range-check sums diverge from aggregates: "+
						"sums rng=%d wide=%d, aggregates rng=%d wide=%d",
						rng, rngWide, st.RangeChecks, st.WideRangeChecks)
				}
				// Metadata stores from the memcpy/memmove wrappers (the runtime's
				// copy_metadata walk) have no static site, so the sited sum is a
				// lower bound on the aggregate.
				if meta > st.MetaStores {
					t.Errorf("sited metastores %d exceed aggregate %d", meta, st.MetaStores)
				}
			})
		}
	}
}

// TestProfiledNativeEngages pins the guarantee behind the site-profile sweep
// above: a site-profiled compiler-tier run actually retires instructions in
// native code (the lowering policy no longer disqualifies SiteProfile), so
// the bit-identical profiles cover the native tier rather than holding
// vacuously on the fused interpreter.
func TestProfiledNativeEngages(t *testing.T) {
	if !bytecode.NativeAvailable() {
		t.Skip("native tier disabled on this platform")
	}
	b := spec.All()[0]
	m, vopts, _ := prepare(t, b, harness.PaperConfig(core.MechSoftBound))
	vopts.SiteProfile = true
	before, _ := bytecode.TierStats()
	entries := func(rows []bytecode.TierFnStats) (n, native uint64) {
		for _, r := range rows {
			n += r.NativeEntries
			native += r.NativeInstrs
		}
		return
	}
	e0, n0 := entries(before)
	failures0 := bytecode.NativeStats().Failures
	runUnder(t, bytecode.EngineCompiler, m, vopts)
	after, _ := bytecode.TierStats()
	e1, n1 := entries(after)
	if bytecode.NativeStats().Failures > failures0 {
		t.Skipf("native build unavailable in this environment (failures %d -> %d)",
			failures0, bytecode.NativeStats().Failures)
	}
	if e1 == e0 || n1 == n0 {
		t.Fatalf("profiled compiler run retired no native code: entries %d -> %d, native instrs %d -> %d",
			e0, e1, n0, n1)
	}
	t.Logf("profiled native execution: %d entries, %d native instrs", e1-e0, n1-n0)
}

// TestDifferentialCoverage checks that the engines agree on which
// instructions executed (the fault campaign's site-selection input).
func TestDifferentialCoverage(t *testing.T) {
	b := spec.All()[0]
	cfg := harness.PaperConfig(core.MechSoftBound)
	m, vopts, _ := prepare(t, b, cfg)

	coverOf := func(kind bytecode.EngineKind) map[*ir.Instr]bool {
		o := vopts
		o.CoverInstrs = make(map[*ir.Instr]bool)
		machine, err := vm.New(m, o)
		if err != nil {
			t.Fatalf("vm.New: %v", err)
		}
		if _, rerr := bytecode.RunOn(kind, machine, ""); rerr != nil {
			t.Fatalf("%v run: %v", kind, rerr)
		}
		return o.CoverInstrs
	}
	tree := coverOf(bytecode.EngineTree)
	for _, kind := range diffEngines() {
		bc := coverOf(kind)
		if len(tree) != len(bc) {
			t.Fatalf("coverage size: tree=%d %v=%d", len(tree), kind, len(bc))
		}
		for in := range tree {
			if !bc[in] {
				t.Errorf("instruction covered by tree only, missed by %v: %s", kind, ir.FormatInstr(in))
			}
		}
	}
}

// TestDifferentialFaultMatrix runs a fixed-seed slice of the fault-injection
// campaign under both engines and requires identical per-variant outcomes.
func TestDifferentialFaultMatrix(t *testing.T) {
	benches := spec.All()[:2]
	run := func(kind bytecode.EngineKind) *faultinject.Report {
		return faultinject.Run(faultinject.Options{Seed: 7, Benches: benches, Engine: kind})
	}
	tree := run(bytecode.EngineTree)
	for _, kind := range diffEngines() {
		bc := run(kind)
		if len(tree.Results) != len(bc.Results) {
			t.Fatalf("result count: tree=%d %v=%d", len(tree.Results), kind, len(bc.Results))
		}
		for i := range tree.Results {
			tr, br := tree.Results[i], bc.Results[i]
			if tr.Fault.Kind != br.Fault.Kind || tr.Mech != br.Mech {
				t.Fatalf("variant %d identity mismatch: tree=%v/%v %v=%v/%v",
					i, tr.Fault.Kind, tr.Mech, kind, br.Fault.Kind, br.Mech)
			}
			if tr.Outcome != br.Outcome {
				t.Errorf("variant %d (%s, %v, %v): outcome tree=%v %v=%v",
					i, tr.Fault.Bench, tr.Fault.Kind, tr.Mech, tr.Outcome, kind, br.Outcome)
			}
		}
	}
}

// TestDifferentialFaultMatrixHoist replays the fixed-seed fault-matrix slice
// with check hoisting enabled and requires (1) both engines agree on every
// outcome and (2) hoisting changes no verdict relative to the per-iteration
// baseline: a widened range check may fire earlier, but never in a different
// class (detected stays detected, benign stays benign).
func TestDifferentialFaultMatrixHoist(t *testing.T) {
	benches := spec.All()[:2]
	run := func(kind bytecode.EngineKind, hoist bool) *faultinject.Report {
		return faultinject.Run(faultinject.Options{Seed: 7, Benches: benches, Engine: kind, Hoist: hoist})
	}
	base := run(bytecode.EngineTree, false)
	tree := run(bytecode.EngineTree, true)
	if len(tree.Results) != len(base.Results) {
		t.Fatalf("result count: base=%d tree=%d", len(base.Results), len(tree.Results))
	}
	for i := range tree.Results {
		br, tr := base.Results[i], tree.Results[i]
		if tr.Fault.Kind != br.Fault.Kind || tr.Mech != br.Mech {
			t.Fatalf("variant %d identity mismatch across configurations", i)
		}
		if tr.Outcome != br.Outcome {
			t.Errorf("variant %d (%s, %v, %v): hoisting changed the verdict: base=%v hoist=%v",
				i, tr.Fault.Bench, tr.Fault.Kind, tr.Mech, br.Outcome, tr.Outcome)
		}
	}
	for _, kind := range diffEngines() {
		bc := run(kind, true)
		if len(tree.Results) != len(bc.Results) {
			t.Fatalf("result count: tree=%d %v=%d", len(tree.Results), kind, len(bc.Results))
		}
		for i := range tree.Results {
			tr, cr := tree.Results[i], bc.Results[i]
			if tr.Outcome != cr.Outcome {
				t.Errorf("variant %d (%s, %v, %v): hoisted outcome tree=%v %v=%v",
					i, tr.Fault.Bench, tr.Fault.Kind, tr.Mech, tr.Outcome, kind, cr.Outcome)
			}
		}
	}
}

// TestBytecodeMaxSteps verifies the engine enforces the step budget with the
// interpreter's exact error.
func TestBytecodeMaxSteps(t *testing.T) {
	m, err := cc.Compile("t", cc.Source{Name: "t.c", Code: `
int main() {
  long i = 0;
  while (1) { i++; }
  return (int)i;
}
`})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, kind := range []bytecode.EngineKind{bytecode.EngineTree, bytecode.EngineBytecode, bytecode.EngineCompiler} {
		machine, err := vm.New(m, vm.Options{MaxSteps: 10000})
		if err != nil {
			t.Fatalf("vm.New: %v", err)
		}
		code, rerr := bytecode.RunOn(kind, machine, "")
		var re *vm.RuntimeError
		if !errors.As(rerr, &re) || re.Msg != "step limit exceeded" {
			t.Fatalf("%v: want step limit error, got code=%d err=%v", kind, code, rerr)
		}
		if machine.Stats.Instrs == 0 {
			t.Fatalf("%v: no instructions accounted before the limit", kind)
		}
	}
}

// TestBytecodeMemBudget verifies the engine surfaces the address-space
// budget error.
func TestBytecodeMemBudget(t *testing.T) {
	m, err := cc.Compile("t", cc.Source{Name: "t.c", Code: `
int main() {
  long i;
  for (i = 0; i < 1024; i++) {
    char *p = (char *)malloc(1 << 20);
    long j;
    for (j = 0; j < (1 << 20); j += 4096) p[j] = 1;
  }
  return 0;
}
`})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, kind := range []bytecode.EngineKind{bytecode.EngineTree, bytecode.EngineBytecode, bytecode.EngineCompiler} {
		machine, err := vm.New(m, vm.Options{MemBudget: 64 << 20})
		if err != nil {
			t.Fatalf("vm.New: %v", err)
		}
		_, rerr := bytecode.RunOn(kind, machine, "")
		if rerr == nil {
			t.Fatalf("%v: expected an error under a 64 MiB budget", kind)
		}
		if got := rerr.Error(); !contains(got, "memory budget exceeded") {
			t.Fatalf("%v: want budget error, got %v", kind, rerr)
		}
	}
}

// reportOf extracts the forensic report a violating run must carry.
func reportOf(t *testing.T, kind bytecode.EngineKind, o runOutcome) *telemetry.ViolationReport {
	t.Helper()
	var ve *vm.ViolationError
	if !errors.As(o.err, &ve) {
		t.Fatalf("%v: expected a violation, got code=%d err=%v", kind, o.code, o.err)
	}
	if ve.Report == nil {
		t.Fatalf("%v: violation carried no forensic report", kind)
	}
	return ve.Report
}

// TestDifferentialForensicReports runs an out-of-bounds program under every
// instrumented configuration with forensics enabled and requires both engines
// to synthesize byte-identical violation reports: same rendered text, same
// JSON serialization, same flight-recorder tail. The report is derived
// entirely from VM state the engines already keep in lockstep (addresses,
// instruction counter, allocator snapshots), so any divergence here means an
// engine recorded an event the other did not.
func TestDifferentialForensicReports(t *testing.T) {
	const oob = `
int main() {
  int *a = (int *)malloc(4 * sizeof(int));
  int i;
  /* Runs far past the end: SoftBound fires at the first out-of-bounds
   * element, Low-Fat once the access leaves the region slot. */
  for (i = 0; i <= 1024; i++) a[i] = i;
  return a[0];
}
`
	for _, cfg := range diffConfigs()[1:] {
		t.Run(cfg.Label, func(t *testing.T) {
			m, vopts, stats := prepareSource(t, "oob", oob, cfg)
			if stats == nil || stats.AllocSites == nil {
				t.Fatal("instrumentation produced no allocation-site table")
			}
			vopts.Forensics = true
			vopts.Sites = stats.Sites
			vopts.AllocSites = stats.AllocSites
			tree := runUnder(t, bytecode.EngineTree, m, vopts)
			tr := reportOf(t, bytecode.EngineTree, tree)
			tj, err := tr.JSON()
			if err != nil {
				t.Fatalf("tree report JSON: %v", err)
			}
			if tr.Alloc == nil || tr.Alloc.Site == 0 {
				t.Errorf("report did not attribute the violation to an allocation site: %+v", tr.Alloc)
			}
			if len(tr.Events) == 0 {
				t.Error("report carried no flight-recorder events")
			}
			for _, kind := range diffEngines() {
				bc := runUnder(t, kind, m, vopts)
				if te, be := describeErr(tree.err), describeErr(bc.err); te != be {
					t.Fatalf("verdict: tree=%s %v=%s", te, kind, be)
				}
				br := reportOf(t, kind, bc)
				if tr.Render() != br.Render() {
					t.Errorf("rendered reports differ:\n--- tree ---\n%s--- %v ---\n%s",
						tr.Render(), kind, br.Render())
				}
				bj, err := br.JSON()
				if err != nil {
					t.Fatalf("%v report JSON: %v", kind, err)
				}
				if string(tj) != string(bj) {
					t.Errorf("JSON reports differ:\n--- tree ---\n%s--- %v ---\n%s", tj, kind, bj)
				}
			}
		})
	}
}

// TestDifferentialForensicCampaignReports replays the fixed-seed fault-matrix
// slice (the same one TestDifferentialFaultMatrix runs) and requires that
// every variant's violation report — synthesized with forensics always on
// inside the campaign — serializes identically under both engines, and that
// the attribution verdicts agree.
func TestDifferentialForensicCampaignReports(t *testing.T) {
	benches := spec.All()[:2]
	run := func(kind bytecode.EngineKind) *faultinject.Report {
		return faultinject.Run(faultinject.Options{Seed: 7, Benches: benches, Engine: kind})
	}
	tree := run(bytecode.EngineTree)
	for _, kind := range diffEngines() {
		bc := run(kind)
		if len(tree.Results) != len(bc.Results) {
			t.Fatalf("result count: tree=%d %v=%d", len(tree.Results), kind, len(bc.Results))
		}
		reports := 0
		for i := range tree.Results {
			tr, br := tree.Results[i], bc.Results[i]
			if (tr.Report == nil) != (br.Report == nil) {
				t.Errorf("variant %d (%s, %v): report presence tree=%t %v=%t",
					i, tr.Fault, tr.Mech, tr.Report != nil, kind, br.Report != nil)
				continue
			}
			if tr.ExpectedAlloc != br.ExpectedAlloc || tr.ReportedAlloc != br.ReportedAlloc ||
				tr.Attributed != br.Attributed {
				t.Errorf("variant %d (%s, %v): attribution tree=(%d->%d %t) %v=(%d->%d %t)",
					i, tr.Fault, tr.Mech,
					tr.ExpectedAlloc, tr.ReportedAlloc, tr.Attributed, kind,
					br.ExpectedAlloc, br.ReportedAlloc, br.Attributed)
			}
			if tr.Report == nil {
				continue
			}
			reports++
			tj, err := tr.Report.JSON()
			if err != nil {
				t.Fatalf("variant %d tree report JSON: %v", i, err)
			}
			bj, err := br.Report.JSON()
			if err != nil {
				t.Fatalf("variant %d %v report JSON: %v", i, kind, err)
			}
			if string(tj) != string(bj) {
				t.Errorf("variant %d (%s, %v): reports differ:\n--- tree ---\n%s--- %v ---\n%s",
					i, tr.Fault, tr.Mech, tj, kind, bj)
			}
		}
		if reports == 0 {
			t.Fatal("campaign slice produced no violation reports to compare")
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
