package bytecode

// The native tier's plugin ABI.
//
// A natively compiled program is a generated Go plugin (native_gen.go emits
// the source, native.go builds and loads it). The plugin deliberately imports
// nothing from this repository: Go's plugin runtime requires every shared
// package to be byte-identical between host and plugin, and test binaries are
// routinely built with flags (-cover, -gcflags) that would break that for
// repo packages. Restricting the plugin to the standard library sidesteps the
// problem entirely — the only types that cross the boundary are unnamed
// composite types of primitives and closures, which are type-identical by
// structure.
//
// natEnv is that boundary. It is an *alias* for an unnamed struct type; the
// generator emits the exact same struct literal under its own alias, so the
// host-side type assertion on the looked-up symbol holds. The first fields
// are per-engine state arrays (counters and a direct-mapped page cache); the
// rest are host closures for everything the generated code cannot do itself:
// interrupt polling, page-table walks, slow-path memory access, metadata trie
// operations, error construction, and a one-op interpreter gate for rare ops
// (calls, allocas, shadow-stack traffic, range checks, dynamic GEPs).
//
// Any change to this struct must be mirrored byte-for-byte in the source the
// generator emits (natEnvDecl in native_gen.go) — the two spellings are
// compared by the compiler's structural identity, so a field rename or
// reorder silently produces "plugin symbol has wrong type" fallbacks.
type natEnv = struct {
	// Cnt is the counter block shared between host and generated code; see
	// the cnt* indices below. The host syncs it with vm.Stats (and the
	// engine's step/countdown state) at native entry/exit and around gate
	// calls, so generated code can batch statistics with plain adds.
	Cnt [16]uint64
	// PageID/Pages form a direct-mapped page cache (natPageWays slots,
	// indexed by low page-number bits; IDs are page number plus one so the
	// zero value never matches). It is per-engine state owned by the host so
	// concurrent engines on the same plugin never share translations.
	PageID [512]uint64
	Pages  [512]*[65536]byte
	// Sites is a flat view of the VM's per-site profile (vm.SiteCount laid
	// out as three uint64 words per site: Execs, Wide, Cost), so generated
	// code for profiled programs can batch site-counter commits with plain
	// adds at compile-time-constant indices. The host points it at the
	// engine's shared profile slice; it is nil (and never referenced by the
	// generated code) for unprofiled programs. Site IDs are validated
	// against the module at VM construction, so generated indices are
	// always in bounds.
	Sites []uint64

	// Poll returns the interrupt flag's raised reason (0 when clear).
	Poll func() uint64
	// PageFor resolves the page backing addr (the fast-path cache fill).
	PageFor func(uint64) (*[65536]byte, error)
	// SlowLoad/SlowStore are the exact slow-path accesses (page-straddling,
	// null-guard and unmapped faults) of the interpreter's memory path.
	SlowLoad  func(uint64, uint64) (uint64, error)
	SlowStore func(uint64, uint64, uint64) error
	// TrieLookup/TrieStore are the SoftBound metadata operations (statistics
	// are batched by the generated code; these do only the table work).
	TrieLookup func(uint64) (uint64, uint64)
	TrieStore  func(uint64, uint64, uint64)
	// SBFail/LFFail construct the exact violation errors of the fused check
	// handlers. LFFail's first argument is 0 for a dereference check, 1 for
	// an invariant (escape) check.
	SBFail func(uint64, uint64, uint64, uint64) error
	LFFail func(uint64, uint64, uint64, uint64) error
	// Rte raises the runtime error belonging to the op at pc (division by
	// zero, deferred compile diagnostics), with the engine backtrace.
	Rte func(uint64) error
	// Gate executes the single op at pc through the host interpreter with
	// exact per-op accounting: calls, allocas, shadow-stack ops, hoisted
	// range checks, dynamic GEPs. The generated code spills the op's operand
	// registers to regs before the call and reloads its results after.
	Gate func(uint64, []uint64) error
}

// natFunc is the signature of one natively compiled function: entry block
// index, the canonical register file (parameters and constants pre-loaded by
// the host, all registers reloaded on entry), and the engine's environment.
// It returns the function's return value; a bail-out back to the interpreter
// is signalled through Cnt[cntBail]/Cnt[cntBailPC] with a nil error.
type natFunc = func(uint64, []uint64, *natEnv) (uint64, error)

// Counter-block indices. cntInstrs..cntMetaStores mirror the identically
// named vm.Stats fields; cntSteps/cntCountdown mirror the engine's step and
// interrupt-poll state; cntMaxSteps is the step limit (read-only for the
// plugin); cntBail/cntBailPC carry the bail-out protocol.
const (
	cntInstrs = iota
	cntCost
	cntLoads
	cntStores
	cntChecks
	cntWide
	cntInv
	cntMetaLoads
	cntMetaStores
	cntSteps
	cntCountdown
	cntMaxSteps
	cntBail
	cntBailPC
)

// natPageWays is the plugin page cache's way count; natBatchMaxSteps caps a
// generated accounting batch so the interrupt countdown (reset stride
// vm.InterruptStride) can cross zero at most once per batch.
const (
	natPageWays      = 512
	natBatchMaxSteps = 256
)

// Word offsets of the vm.SiteCount fields inside the flat natEnv.Sites view
// (natSiteWords words per site).
const (
	natSiteExecs = 0
	natSiteWide  = 1
	natSiteCost  = 2
	natSiteWords = 3
)
