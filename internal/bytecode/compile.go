package bytecode

import (
	"fmt"
	"math"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/rt"
	"repro/internal/vm"
)

// Compile lowers a module to bytecode under a cost model (nil selects the
// default model). The result is immutable and reusable across VMs; it
// references the module's instruction, global and function objects, so it is
// only valid for VMs created on this exact module (not a clone).
func Compile(mod *ir.Module, cm *vm.CostModel) *Program {
	return compileModule(mod, cm, false, false)
}

// compileModule is Compile plus the site-profiling and forensics axes: with
// prof set, check and metadata intrinsics lower to their profiling twin
// opcodes (carrying the SiteID in imm); with rec set, they lower to the
// forensic-recording twins instead (which bump the site profile themselves,
// so the two axes compose) and allocas lower to opAllocaRec; everything else
// is identical.
func compileModule(mod *ir.Module, cm *vm.CostModel, prof, rec bool) *Program {
	return compileTier(mod, cm, prof, rec, EngineBytecode)
}

// compileTier is compileModule plus the engine-tier axis. The lowered
// bytecode is identical across tiers; under EngineCompiler each function
// additionally records the pc geometry of its counted loops (recognized by
// analysis.AnalyzeCountedLoop on the source IR) so the quickening pass can
// trace-fuse them without re-deriving CFG structure from flat ops.
func compileTier(mod *ir.Module, cm *vm.CostModel, prof, rec bool, tier EngineKind) *Program {
	if cm == nil {
		cm = vm.DefaultCostModel()
	}
	if tier != EngineCompiler {
		tier = EngineBytecode
	}
	p := &Program{mod: mod, cm: *cm, prof: prof, rec: rec, tier: tier, byFunc: make(map[*ir.Func]*Fn)}
	for _, f := range mod.Funcs {
		if f.IsDecl() {
			continue
		}
		fn := compileFunc(f, cm, len(p.fns), prof, rec, tier)
		p.fns = append(p.fns, fn)
		p.byFunc[f] = fn
	}
	// Link direct calls now that every function has a Fn.
	for _, fn := range p.fns {
		for i := range fn.intCalls {
			fn.intCalls[i].fn = p.byFunc[fn.intCalls[i].callee]
		}
	}
	if mf := mod.Func("main"); mf != nil {
		p.main = p.byFunc[mf]
	}
	return p
}

// maskFor is the truncation mask for a bit width (parity with vm.truncate).
func maskFor(bits int) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	if bits <= 0 {
		return 0
	}
	return 1<<uint(bits) - 1
}

// shFor is the shift that sign-extends a bits-wide value via
// int64(v<<sh)>>sh (parity with vm.signExtend, including bits<=0 → 0).
func shFor(bits int) uint8 {
	if bits >= 64 {
		return 0
	}
	if bits <= 0 {
		return 64
	}
	return uint8(64 - bits)
}

// fbitsOf mirrors vm's floatBits width selection: 32-bit floats are encoded
// as float32 bit patterns, everything else as float64.
func fwidth(t *ir.Type) uint8 {
	if t.Bits == 32 {
		return 32
	}
	return 64
}

func floatBitsOf(t *ir.Type, f float64) uint64 {
	if t.Bits == 32 {
		return uint64(math.Float32bits(float32(f)))
	}
	return math.Float64bits(f)
}

type fixup struct {
	pc    int
	field uint8 // 0 → op.b, 1 → op.c
	pred  *ir.Block
	succ  *ir.Block
}

type fnc struct {
	f         *ir.Func
	cm        *vm.CostModel
	prof      bool
	rec       bool
	fn        *Fn
	instrReg  map[*ir.Instr]int32
	rawReg    map[uint64]int32
	globalReg map[*ir.Global]int32
	funcReg   map[*ir.Func]int32
	blockPC   map[*ir.Block]int
	fixups    []fixup
	stubs     map[[2]*ir.Block]int
}

func compileFunc(f *ir.Func, cm *vm.CostModel, idx int, prof, rec bool, tier EngineKind) *Fn {
	c := &fnc{
		f:         f,
		cm:        cm,
		prof:      prof,
		rec:       rec,
		fn:        &Fn{idx: idx, ir: f, nparams: len(f.Params)},
		instrReg:  make(map[*ir.Instr]int32),
		rawReg:    make(map[uint64]int32),
		globalReg: make(map[*ir.Global]int32),
		funcReg:   make(map[*ir.Func]int32),
		blockPC:   make(map[*ir.Block]int),
		stubs:     make(map[[2]*ir.Block]int),
	}
	// Pass 1: assign result registers (after the parameter slots).
	n := int32(len(f.Params))
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Ty != ir.Void {
				c.instrReg[in] = n
				n++
			}
		}
	}
	c.fn.constBase = int(n)
	// Pass 2: emit ops block by block; branch targets become fixups.
	for _, b := range f.Blocks {
		c.emitBlock(b)
	}
	// Pass 3: materialize phi-copy edge stubs and patch jump targets.
	c.resolveEdges()
	c.fn.nregs = c.fn.constBase + len(c.fn.consts)
	if tier == EngineCompiler {
		c.recordCountedLoops()
	}
	return c.fn
}

func (c *fnc) push(o op) { c.fn.ops = append(c.fn.ops, o) }

// termPC locates the op lowered from block b's IR terminator (br/condbr
// terminators are never fused, so identity on op.instr is exact). Returns -1
// when the terminator was not lowered (e.g. replaced by a deferred error op).
func (c *fnc) termPC(b *ir.Block) int32 {
	term := b.Terminator()
	if term == nil {
		return -1
	}
	for pc := c.blockPC[b]; pc < len(c.fn.ops); pc++ {
		o := &c.fn.ops[pc]
		if o.instr == term {
			switch o.code {
			case opBr, opCondBr, opRet:
				return int32(pc)
			}
			return -1
		}
	}
	return -1
}

// recordCountedLoops runs the shared counted-loop recognition
// (analysis.AnalyzeCountedLoop — the same analysis the check-hoisting pass
// builds on) over the source IR and records the pc geometry of every loop
// whose shape the quickening pass can trace-fuse: a header that is the only
// exiting block, plus at most one body block (the latch). Op-level
// eligibility (no calls, no deferred errors, no side entries) is re-verified
// against the flat ops when the overlay is built; this pass only hands the
// loop/trace metadata across the IR→bytecode boundary.
func (c *fnc) recordCountedLoops() {
	for _, cl := range analysis.CountedLoops(c.f) {
		l := cl.Loop
		m := loopMeta{hdrPC: -1, hdrTerm: -1, latchPC: -1, latchTerm: -1}
		switch len(l.Body) {
		case 1: // header == latch: the whole body lives in the header block
			if cl.Latch != l.Header {
				continue
			}
		case 2:
			if cl.Latch == l.Header || !l.Contains(cl.Latch) {
				continue
			}
			lp, ok := c.blockPC[cl.Latch]
			if !ok {
				continue
			}
			m.latchPC = int32(lp)
			if m.latchTerm = c.termPC(cl.Latch); m.latchTerm < 0 {
				continue
			}
		default:
			continue
		}
		hp, ok := c.blockPC[l.Header]
		if !ok {
			continue
		}
		m.hdrPC = int32(hp)
		if m.hdrTerm = c.termPC(l.Header); m.hdrTerm < 0 {
			continue
		}
		c.fn.loops = append(c.fn.loops, m)
	}
}

// raw interns a literal constant value into the pool.
func (c *fnc) raw(val uint64) int32 {
	if r, ok := c.rawReg[val]; ok {
		return r
	}
	r := int32(c.fn.constBase + len(c.fn.consts))
	c.fn.consts = append(c.fn.consts, constEntry{kind: constRaw, val: val})
	c.rawReg[val] = r
	return r
}

// regOf resolves an operand to its register, interning constants as needed.
// The caller has already rejected operand kinds the reference interpreter
// cannot evaluate (see knownValue).
func (c *fnc) regOf(v ir.Value) int32 {
	switch y := v.(type) {
	case *ir.Instr:
		if r, ok := c.instrReg[y]; ok {
			return r
		}
		// A void instruction used as an operand reads as zero, like the
		// untouched register slot it would occupy in the reference
		// interpreter.
		return c.raw(0)
	case *ir.Param:
		if y.Index >= 0 && y.Index < c.fn.nparams {
			return int32(y.Index)
		}
		return c.raw(0)
	case *ir.ConstInt:
		return c.raw(y.Unsigned())
	case *ir.ConstFloat:
		return c.raw(floatBitsOf(y.Ty, y.V))
	case *ir.ConstNull:
		return c.raw(0)
	case *ir.ConstPtr:
		return c.raw(y.Addr)
	case *ir.Undef:
		return c.raw(0)
	case *ir.Global:
		if r, ok := c.globalReg[y]; ok {
			return r
		}
		r := int32(c.fn.constBase + len(c.fn.consts))
		c.fn.consts = append(c.fn.consts, constEntry{kind: constGlobal, g: y})
		c.globalReg[y] = r
		return r
	case *ir.Func:
		if r, ok := c.funcReg[y]; ok {
			return r
		}
		r := int32(c.fn.constBase + len(c.fn.consts))
		c.fn.consts = append(c.fn.consts, constEntry{kind: constFunc, f: y})
		c.funcReg[y] = r
		return r
	}
	return c.raw(0)
}

func knownValue(v ir.Value) bool {
	switch v.(type) {
	case *ir.Instr, *ir.Param, *ir.ConstInt, *ir.ConstFloat, *ir.ConstNull,
		*ir.ConstPtr, *ir.Undef, *ir.Global, *ir.Func:
		return true
	}
	return false
}

func (c *fnc) dstOf(in *ir.Instr) int32 {
	if r, ok := c.instrReg[in]; ok {
		return r
	}
	return -1
}

func (c *fnc) errIdx(msg string, trace bool) int32 {
	c.fn.errs = append(c.fn.errs, errInfo{msg: msg, trace: trace})
	return int32(len(c.fn.errs) - 1)
}

// emitErrInstr defers a compile-time diagnosis for a counted instruction to
// execution time: if the op never runs, the module runs exactly as it would
// under the reference interpreter.
func (c *fnc) emitErrInstr(in *ir.Instr, msg string, cost uint64) {
	c.push(op{code: opErrInstr, instr: in, cost: cost, x: c.errIdx(msg, true)})
}

func (c *fnc) emitErrRaw(msg string, trace bool) {
	c.push(op{code: opErrRaw, x: c.errIdx(msg, trace)})
}

func (c *fnc) emitBlock(b *ir.Block) {
	nphi := 0
	for nphi < len(b.Instrs) && b.Instrs[nphi].Op == ir.OpPhi {
		nphi++
	}
	if b == c.f.Entry() && nphi > 0 {
		// Entering the function lands on entry with no predecessor; the
		// reference interpreter faults resolving the phi. Back-edges into
		// entry bypass this stub via their phi-copy stubs, which jump to
		// blockPC (set below, past this op).
		c.emitErrRaw(fmt.Sprintf("phi %s in @%s has no incoming for entry", b.Instrs[0].Ref(), c.f.Name), false)
	}
	c.blockPC[b] = len(c.fn.ops)
	ins := b.Instrs
	for i := nphi; i < len(ins); i++ {
		in := ins[i]
		if i+1 < len(ins) && c.tryFuse(in, ins[i+1]) {
			i++
			continue
		}
		c.emit(in, b)
	}
	if b.Terminator() == nil {
		c.emitErrRaw("block %"+b.Name+" fell through without terminator", true)
	}
}

// tryFuse recognizes a runtime check call that immediately precedes the
// load/store it guards (same pointer register) and fuses the pair into one
// combined opcode. The fused op performs both halves' full accounting, so
// statistics and step-limit behavior are unchanged.
func (c *fnc) tryFuse(in, next *ir.Instr) bool {
	if in.Op != ir.OpCall || in.Ty != ir.Void {
		return false
	}
	callee := in.Callee()
	if callee == nil || !callee.IsDecl() {
		return false
	}
	var lf bool
	switch callee.Name {
	case rt.SBCheck:
		lf = false
	case rt.LFCheck:
		lf = true
	default:
		return false
	}
	args := in.Args()
	if (!lf && len(args) != 4) || (lf && len(args) != 3) {
		return false
	}
	for _, v := range in.Operands {
		if !knownValue(v) {
			return false
		}
	}
	for _, v := range next.Operands {
		if !knownValue(v) {
			return false
		}
	}
	var accessPtr ir.Value
	var width int
	var isLoad bool
	switch next.Op {
	case ir.OpLoad:
		if next.Ty.IsAggregate() {
			return false
		}
		accessPtr, width, isLoad = next.Operands[0], next.Ty.Size(), true
	case ir.OpStore:
		vt := next.Operands[0].Type()
		if vt.IsAggregate() {
			return false
		}
		accessPtr, width, isLoad = next.Operands[1], vt.Size(), false
	default:
		return false
	}
	if width < 1 || width > 8 {
		return false
	}
	ptr := c.regOf(args[0])
	if c.regOf(accessPtr) != ptr {
		return false
	}

	o := op{
		instr: in,
		cost:  c.cm.InstrCost(in),
		imm:   uint64(in.Site),
		a:     ptr,
		b:     c.regOf(args[1]),
		c:     c.regOf(args[2]),
		d:     -1,
		wbits: uint8(width),
		x:     int32(len(c.fn.aux)),
	}
	c.fn.aux = append(c.fn.aux, fusedAux{in2: next, cost2: c.cm.InstrCost(next)})
	if !lf {
		o.d = c.regOf(args[3])
	}
	switch {
	case !lf && isLoad:
		o.code, o.dst = opSBCheckLoad, c.dstOf(next)
	case !lf && !isLoad:
		o.code, o.dst = opSBCheckStore, c.regOf(next.Operands[0])
	case lf && isLoad:
		o.code, o.dst = opLFCheckLoad, c.dstOf(next)
	default:
		o.code, o.dst = opLFCheckStore, c.regOf(next.Operands[0])
	}
	if isLoad && o.dst < 0 {
		return false
	}
	if c.rec {
		o.code = recVariant(o.code)
	} else if c.prof {
		o.code = profVariant(o.code)
	}
	c.push(o)
	return true
}

// profVariant maps a check/metadata opcode to its site-profiling twin;
// opcodes without one pass through unchanged.
func profVariant(code opcode) opcode {
	switch code {
	case opSBStoreMD:
		return opSBStoreMDProf
	case opSBCheck:
		return opSBCheckProf
	case opLFCheck:
		return opLFCheckProf
	case opLFCheckInv:
		return opLFCheckInvProf
	case opSBCheckLoad:
		return opSBCheckLoadProf
	case opSBCheckStore:
		return opSBCheckStoreProf
	case opLFCheckLoad:
		return opLFCheckLoadProf
	case opLFCheckStore:
		return opLFCheckStoreProf
	case opSBCheckRange:
		return opSBCheckRangeProf
	case opLFCheckRange:
		return opLFCheckRangeProf
	}
	return code
}

// recVariant maps a check/metadata/alloca opcode to its forensic-recording
// twin; opcodes without one pass through unchanged. The recording twins bump
// the site profile themselves (through the VM's nil-safe bumpSiteID), so rec
// subsumes prof and no combined twins are needed.
func recVariant(code opcode) opcode {
	switch code {
	case opAlloca:
		return opAllocaRec
	case opSBStoreMD:
		return opSBStoreMDRec
	case opSBCheck:
		return opSBCheckRec
	case opLFCheck:
		return opLFCheckRec
	case opLFCheckInv:
		return opLFCheckInvRec
	case opSBCheckLoad:
		return opSBCheckLoadRec
	case opSBCheckStore:
		return opSBCheckStoreRec
	case opLFCheckLoad:
		return opLFCheckLoadRec
	case opLFCheckStore:
		return opLFCheckStoreRec
	case opSBCheckRange:
		return opSBCheckRangeRec
	case opLFCheckRange:
		return opLFCheckRangeRec
	}
	return code
}

var binOps = map[ir.Op]opcode{
	ir.OpAdd: opAdd, ir.OpSub: opSub, ir.OpMul: opMul,
	ir.OpSDiv: opSDiv, ir.OpSRem: opSRem, ir.OpUDiv: opUDiv, ir.OpURem: opURem,
	ir.OpAnd: opAnd, ir.OpOr: opOr, ir.OpXor: opXor,
	ir.OpShl: opShl, ir.OpLShr: opLShr, ir.OpAShr: opAShr,
}

var fltOps = map[ir.Op]opcode{
	ir.OpFAdd: opFAdd, ir.OpFSub: opFSub, ir.OpFMul: opFMul, ir.OpFDiv: opFDiv,
}

func (c *fnc) emit(in *ir.Instr, b *ir.Block) {
	cost := c.cm.InstrCost(in)
	// Ops outside [OpAdd, OpUnreachable], and phis past the leading run,
	// take the reference interpreter's default case.
	if in.Op < ir.OpAdd || in.Op > ir.OpUnreachable || in.Op == ir.OpPhi {
		c.emitErrInstr(in, "unsupported op "+in.Op.String(), cost)
		return
	}
	if in.Op == ir.OpUnreachable {
		c.emitErrInstr(in, "reached unreachable in @"+c.f.Name, cost)
		return
	}
	for _, v := range in.Operands {
		if !knownValue(v) {
			c.emitErrInstr(in, fmt.Sprintf("cannot evaluate operand of type %T", v), cost)
			return
		}
	}
	dst := c.dstOf(in)

	if code, ok := binOps[in.Op]; ok {
		o := op{code: code, instr: in, cost: cost, dst: dst,
			a: c.regOf(in.Operands[0]), b: c.regOf(in.Operands[1]),
			imm: maskFor(in.Ty.Bits), wbits: shFor(in.Ty.Bits)}
		switch code {
		case opShl, opLShr, opAShr:
			o.x = int32(in.Ty.Bits - 1)
		}
		c.push(o)
		return
	}
	if code, ok := fltOps[in.Op]; ok {
		c.push(op{code: code, instr: in, cost: cost, dst: dst,
			a: c.regOf(in.Operands[0]), b: c.regOf(in.Operands[1]),
			wbits: fwidth(in.Ty)})
		return
	}

	switch in.Op {
	case ir.OpICmp:
		if in.Pred < ir.PredEQ || in.Pred > ir.PredUGE {
			c.emitErrInstr(in, "unsupported op "+in.Op.String(), cost)
			return
		}
		t := in.Operands[0].Type()
		bits := 64
		if t.IsInt() {
			bits = t.Bits
		}
		c.push(op{code: opEQ + opcode(in.Pred-ir.PredEQ), instr: in, cost: cost, dst: dst,
			a: c.regOf(in.Operands[0]), b: c.regOf(in.Operands[1]),
			imm: maskFor(bits), wbits: shFor(bits)})

	case ir.OpFCmp:
		if in.Pred < ir.PredOEQ || in.Pred > ir.PredOGE {
			c.emitErrInstr(in, "unsupported op "+in.Op.String(), cost)
			return
		}
		c.push(op{code: opFOEQ + opcode(in.Pred-ir.PredOEQ), instr: in, cost: cost, dst: dst,
			a: c.regOf(in.Operands[0]), b: c.regOf(in.Operands[1]),
			wbits: fwidth(in.Operands[0].Type())})

	case ir.OpTrunc:
		c.push(op{code: opTrunc, instr: in, cost: cost, dst: dst,
			a: c.regOf(in.Operands[0]), imm: maskFor(in.Ty.Bits)})
	case ir.OpZExt:
		// Reference semantics truncate to the *source* width.
		c.push(op{code: opTrunc, instr: in, cost: cost, dst: dst,
			a: c.regOf(in.Operands[0]), imm: maskFor(in.Operands[0].Type().Bits)})
	case ir.OpSExt:
		c.push(op{code: opSExt, instr: in, cost: cost, dst: dst,
			a: c.regOf(in.Operands[0]), wbits: shFor(in.Operands[0].Type().Bits),
			imm: maskFor(in.Ty.Bits)})
	case ir.OpFPTrunc, ir.OpFPExt:
		c.push(op{code: opFPCvt, instr: in, cost: cost, dst: dst,
			a: c.regOf(in.Operands[0]), wbits: fwidth(in.Operands[0].Type()),
			imm: uint64(fwidth(in.Ty))})
	case ir.OpFPToSI:
		c.push(op{code: opFPToSI, instr: in, cost: cost, dst: dst,
			a: c.regOf(in.Operands[0]), wbits: fwidth(in.Operands[0].Type()),
			imm: maskFor(in.Ty.Bits)})
	case ir.OpSIToFP:
		c.push(op{code: opSIToFP, instr: in, cost: cost, dst: dst,
			a: c.regOf(in.Operands[0]), wbits: shFor(in.Operands[0].Type().Bits),
			imm: uint64(fwidth(in.Ty))})
	case ir.OpPtrToInt, ir.OpIntToPtr, ir.OpBitcast:
		c.push(op{code: opMove, instr: in, cost: cost, dst: dst,
			a: c.regOf(in.Operands[0])})

	case ir.OpAlloca:
		count := int32(-1)
		if len(in.Operands) > 0 {
			count = c.regOf(in.Operands[0])
		}
		align := in.AllocTy.Align()
		if align < 8 {
			align = 8
		}
		code := opAlloca
		if c.rec {
			code = opAllocaRec
		}
		c.push(op{code: code, instr: in, cost: cost, dst: dst, a: count,
			imm: uint64(in.AllocTy.Size()), x: int32(align)})

	case ir.OpLoad:
		if in.Ty.IsAggregate() {
			c.emitErrInstr(in, "aggregate load not supported", cost)
			return
		}
		c.push(op{code: opLoad, instr: in, cost: cost, dst: dst,
			a: c.regOf(in.Operands[0]), wbits: uint8(in.Ty.Size())})

	case ir.OpStore:
		vt := in.Operands[0].Type()
		if vt.IsAggregate() {
			c.emitErrInstr(in, "aggregate store not supported", cost)
			return
		}
		c.push(op{code: opStore, instr: in, cost: cost,
			a: c.regOf(in.Operands[0]), b: c.regOf(in.Operands[1]),
			wbits: uint8(vt.Size())})

	case ir.OpGEP:
		c.emitGEP(in, cost, dst)

	case ir.OpSelect:
		c.push(op{code: opSelect, instr: in, cost: cost, dst: dst,
			a: c.regOf(in.Operands[0]), b: c.regOf(in.Operands[1]),
			c: c.regOf(in.Operands[2])})

	case ir.OpCall:
		c.emitCall(in, cost, dst)

	case ir.OpRet:
		a := int32(-1)
		if len(in.Operands) > 0 {
			a = c.regOf(in.Operands[0])
		}
		c.push(op{code: opRet, instr: in, cost: cost, a: a})

	case ir.OpBr:
		c.push(op{code: opBr, instr: in, cost: cost})
		c.fixups = append(c.fixups, fixup{pc: len(c.fn.ops) - 1, field: 0, pred: b, succ: in.Succs[0]})

	case ir.OpCondBr:
		c.push(op{code: opCondBr, instr: in, cost: cost, a: c.regOf(in.Operands[0])})
		pc := len(c.fn.ops) - 1
		c.fixups = append(c.fixups,
			fixup{pc: pc, field: 0, pred: b, succ: in.Succs[0]},
			fixup{pc: pc, field: 1, pred: b, succ: in.Succs[1]})

	default:
		// Unreachable: every op in [OpAdd, OpUnreachable] is handled above.
		c.emitErrInstr(in, "unsupported op "+in.Op.String(), cost)
	}
}

// emitGEP pre-resolves a GEP into constant offsets and scaled index
// registers. A non-constant struct index forces the dynamic type-walk op.
func (c *fnc) emitGEP(in *ir.Instr, cost uint64, dst int32) {
	base := c.regOf(in.Operands[0])
	ty := in.SrcTy
	var steps []gepStep
	dynamic := false
	for i, idxOp := range in.Operands[1:] {
		ci, isConst := idxOp.(*ir.ConstInt)
		var scale int64
		if i == 0 {
			scale = int64(ty.Size())
		} else {
			switch ty.Kind {
			case ir.ArrayKind:
				ty = ty.Elem
				scale = int64(ty.Size())
			case ir.StructKind:
				if !isConst {
					dynamic = true
				} else {
					idx := ci.Signed()
					if idx < 0 || int(idx) >= len(ty.Fields) {
						// Out-of-range constant field index: the reference
						// interpreter panics when (and only when) this
						// executes, so resolve it at run time too.
						dynamic = true
					} else {
						steps = append(steps, gepStep{reg: -1, off: int64(ty.FieldOffset(int(idx)))})
						ty = ty.Fields[idx]
						continue
					}
				}
			default:
				// Extra index into a scalar type: the reference interpreter
				// silently ignores it.
				continue
			}
		}
		if dynamic {
			break
		}
		if isConst {
			steps = append(steps, gepStep{reg: -1, off: ci.Signed() * scale})
		} else {
			steps = append(steps, gepStep{reg: c.regOf(idxOp), sh: shFor(idxOp.Type().Bits), scale: scale})
		}
	}
	if dynamic {
		pl := gepDynPlan{srcTy: in.SrcTy}
		for _, idxOp := range in.Operands[1:] {
			pl.idx = append(pl.idx, dynIdx{reg: c.regOf(idxOp), sh: shFor(idxOp.Type().Bits)})
		}
		c.fn.gepDyns = append(c.fn.gepDyns, pl)
		c.push(op{code: opGEPDyn, instr: in, cost: cost, dst: dst, a: base,
			x: int32(len(c.fn.gepDyns) - 1)})
		return
	}
	// Merge adjacent constant offsets.
	merged := steps[:0]
	for _, s := range steps {
		if s.reg < 0 && len(merged) > 0 && merged[len(merged)-1].reg < 0 {
			merged[len(merged)-1].off += s.off
			continue
		}
		merged = append(merged, s)
	}
	c.fn.geps = append(c.fn.geps, gepPlan{steps: merged})
	c.push(op{code: opGEP, instr: in, cost: cost, dst: dst, a: base,
		x: int32(len(c.fn.geps) - 1)})
}

func (c *fnc) emitCall(in *ir.Instr, cost uint64, dst int32) {
	callee := in.Callee()
	if callee == nil {
		c.emitErrInstr(in, "indirect call not supported", cost)
		return
	}
	args := in.Args()
	regs := make([]int32, len(args))
	for i, a := range args {
		regs[i] = c.regOf(a)
	}
	if !callee.IsDecl() {
		c.fn.intCalls = append(c.fn.intCalls, intCall{callee: callee, args: regs})
		c.push(op{code: opCallInt, instr: in, cost: cost + c.cm.Call, dst: dst,
			x: int32(len(c.fn.intCalls) - 1)})
		return
	}
	// Runtime intrinsics lower to fused opcodes when the arity matches the
	// registered handler's expectations; anything else goes through the
	// generic external-call op (whose handler faults like the interpreter).
	// imm carries the SiteID for the check/metadata intrinsics (unused by the
	// shadow-stack and witness ops).
	o := op{instr: in, cost: cost, imm: uint64(in.Site), dst: dst, a: -1, b: -1, c: -1, d: -1}
	fused := true
	switch {
	case callee.Name == rt.SBLoadBase && len(regs) == 1:
		o.code, o.a = opSBLoadBase, regs[0]
	case callee.Name == rt.SBLoadBound && len(regs) == 1:
		o.code, o.a = opSBLoadBound, regs[0]
	case callee.Name == rt.SBStoreMD && len(regs) == 3:
		o.code, o.a, o.b, o.c = opSBStoreMD, regs[0], regs[1], regs[2]
	case callee.Name == rt.SBCheck && len(regs) == 4:
		o.code, o.a, o.b, o.c, o.d = opSBCheck, regs[0], regs[1], regs[2], regs[3]
	case callee.Name == rt.SBSSAlloc && len(regs) == 1:
		o.code, o.a = opSBSSAlloc, regs[0]
	case callee.Name == rt.SBSSSetArg && len(regs) == 3:
		o.code, o.a, o.b, o.c = opSBSSSetArg, regs[0], regs[1], regs[2]
	case callee.Name == rt.SBSSArgBase && len(regs) == 1:
		o.code, o.a = opSBSSArgBase, regs[0]
	case callee.Name == rt.SBSSArgBound && len(regs) == 1:
		o.code, o.a = opSBSSArgBound, regs[0]
	case callee.Name == rt.SBSSSetRet && len(regs) == 2:
		o.code, o.a, o.b = opSBSSSetRet, regs[0], regs[1]
	case callee.Name == rt.SBSSRetBase && len(regs) == 0:
		o.code = opSBSSRetBase
	case callee.Name == rt.SBSSRetBound && len(regs) == 0:
		o.code = opSBSSRetBound
	case callee.Name == rt.SBSSPop && len(regs) == 0:
		o.code = opSBSSPop
	case callee.Name == rt.LFBase && len(regs) == 1:
		o.code, o.a = opLFBase, regs[0]
	case callee.Name == rt.LFCheck && len(regs) == 3:
		o.code, o.a, o.b, o.c = opLFCheck, regs[0], regs[1], regs[2]
	case callee.Name == rt.LFCheckInv && len(regs) == 2:
		o.code, o.a, o.b = opLFCheckInv, regs[0], regs[1]
	case callee.Name == rt.SBCheckRange && len(regs) == 6:
		// Void call, so the dst slot is free for the nonempty register.
		o.code, o.a, o.b, o.x, o.c, o.d, o.dst = opSBCheckRange,
			regs[0], regs[1], regs[2], regs[3], regs[4], regs[5]
	case callee.Name == rt.LFCheckRange && len(regs) == 5:
		o.code, o.a, o.b, o.x, o.c, o.dst = opLFCheckRange,
			regs[0], regs[1], regs[2], regs[3], regs[4]
	default:
		fused = false
	}
	if fused {
		if c.rec {
			o.code = recVariant(o.code)
		} else if c.prof {
			o.code = profVariant(o.code)
		}
		c.push(o)
		return
	}
	c.fn.extCalls = append(c.fn.extCalls, extCall{name: callee.Name, instr: in, args: regs})
	c.push(op{code: opCallExt, instr: in, cost: cost, dst: dst,
		x: int32(len(c.fn.extCalls) - 1)})
}

// resolveEdges patches branch targets. Edges into blocks with phis route
// through a per-(pred, succ) parallel-copy stub appended after the function
// body.
func (c *fnc) resolveEdges() {
	for _, fx := range c.fixups {
		t := c.edgeTarget(fx.pred, fx.succ)
		o := &c.fn.ops[fx.pc]
		if fx.field == 0 {
			o.b = int32(t)
		} else {
			o.c = int32(t)
		}
	}
}

func (c *fnc) edgeTarget(pred, succ *ir.Block) int {
	phis := succ.Phis()
	if len(phis) == 0 {
		return c.blockPC[succ]
	}
	key := [2]*ir.Block{pred, succ}
	if t, ok := c.stubs[key]; ok {
		return t
	}
	t := len(c.fn.ops)
	c.stubs[key] = t
	var pl phiPlan
	for _, phi := range phis {
		in := phi.PhiIncomingFor(pred)
		if in == nil {
			c.emitErrRaw(fmt.Sprintf("phi %s in @%s has no incoming for %%%s", phi.Ref(), c.f.Name, pred.Name), false)
			return t
		}
		if !knownValue(in) {
			c.emitErrRaw(fmt.Sprintf("cannot evaluate operand of type %T", in), true)
			return t
		}
		pl.srcs = append(pl.srcs, c.regOf(in))
		pl.dsts = append(pl.dsts, c.regOf(phi))
	}
	c.fn.phis = append(c.fn.phis, pl)
	c.push(op{code: opPhiCopy, x: int32(len(c.fn.phis) - 1), b: int32(c.blockPC[succ])})
	return t
}
