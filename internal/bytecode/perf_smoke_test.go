package bytecode_test

import (
	"testing"
	"time"

	"repro/internal/bytecode"
	"repro/internal/spec"
	"repro/internal/vm"
)

// TestEnginePerfSmoke is the CI perf guard: the bytecode engine exists to be
// faster than the tree interpreter, so a run more than 10x slower on the
// smoke benchmark means the dispatch loop regressed (e.g. per-step
// allocation crept back in) and fails the build. The margin is wide enough
// that CI noise cannot trip it — at parity the engine is ~7x *faster*.
func TestEnginePerfSmoke(t *testing.T) {
	b := spec.All()[0]
	timeFor := func(kind bytecode.EngineKind) time.Duration {
		var total time.Duration
		for _, cfg := range diffConfigs() {
			m, vopts := prepare(t, b, cfg)
			machine, err := vm.New(m, vopts)
			if err != nil {
				t.Fatalf("vm.New: %v", err)
			}
			start := time.Now()
			if _, rerr := bytecode.RunOn(kind, machine, ""); rerr != nil {
				t.Fatalf("%v run: %v", kind, rerr)
			}
			total += time.Since(start)
		}
		return total
	}
	tree := timeFor(bytecode.EngineTree)
	bc := timeFor(bytecode.EngineBytecode)
	t.Logf("smoke %s: tree=%v bytecode=%v (%.2fx)", b.Name, tree, bc,
		float64(tree)/float64(bc))
	if bc > 10*tree {
		t.Fatalf("bytecode engine >10x slower than tree on %s: tree=%v bytecode=%v",
			b.Name, tree, bc)
	}
}
