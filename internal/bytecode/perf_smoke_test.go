package bytecode_test

import (
	"testing"
	"time"

	"repro/internal/bytecode"
	"repro/internal/spec"
	"repro/internal/vm"
)

// TestEnginePerfSmoke is the CI perf guard: the bytecode engine exists to be
// faster than the tree interpreter, so a run more than 10x slower on the
// smoke benchmark means the dispatch loop regressed (e.g. per-step
// allocation crept back in) and fails the build. The margin is wide enough
// that CI noise cannot trip it — at parity the engine is ~7x *faster*.
func TestEnginePerfSmoke(t *testing.T) {
	b := spec.All()[0]
	timeFor := func(kind bytecode.EngineKind) time.Duration {
		var total time.Duration
		for _, cfg := range diffConfigs() {
			m, vopts, _ := prepare(t, b, cfg)
			machine, err := vm.New(m, vopts)
			if err != nil {
				t.Fatalf("vm.New: %v", err)
			}
			start := time.Now()
			if _, rerr := bytecode.RunOn(kind, machine, ""); rerr != nil {
				t.Fatalf("%v run: %v", kind, rerr)
			}
			total += time.Since(start)
		}
		return total
	}
	tree := timeFor(bytecode.EngineTree)
	bc := timeFor(bytecode.EngineBytecode)
	t.Logf("smoke %s: tree=%v bytecode=%v (%.2fx)", b.Name, tree, bc,
		float64(tree)/float64(bc))
	if bc > 10*tree {
		t.Fatalf("bytecode engine >10x slower than tree on %s: tree=%v bytecode=%v",
			b.Name, tree, bc)
	}
}

// TestSiteProfileNeutrality is the CI telemetry guard: enabling -siteprofile
// must not change any verdict, exit code, output or execution statistic, and
// must not slow the smoke benchmark by more than 2x. Site bumps are a single
// array increment on check opcodes only, so at parity the overhead is a few
// percent; timing both modes back-to-back and taking the best of three keeps
// scheduler noise out of the ratio.
func TestSiteProfileNeutrality(t *testing.T) {
	b := spec.All()[0]
	for _, cfg := range diffConfigs() {
		t.Run(cfg.Label, func(t *testing.T) {
			m, vopts, _ := prepare(t, b, cfg)
			timeRun := func(prof bool) (runOutcome, time.Duration) {
				o := vopts
				o.SiteProfile = prof
				best := time.Duration(0)
				var out runOutcome
				for i := 0; i < 3; i++ {
					start := time.Now()
					out = runUnder(t, bytecode.EngineBytecode, m, o)
					if d := time.Since(start); best == 0 || d < best {
						best = d
					}
				}
				return out, best
			}
			plain, plainT := timeRun(false)
			prof, profT := timeRun(true)
			if plain.code != prof.code {
				t.Errorf("exit code changed: off=%d on=%d", plain.code, prof.code)
			}
			if plain.output != prof.output {
				t.Errorf("output changed:\noff: %q\non:  %q", plain.output, prof.output)
			}
			if pe, oe := describeErr(plain.err), describeErr(prof.err); pe != oe {
				t.Errorf("verdict changed: off=%s on=%s", pe, oe)
			}
			if plain.stats != prof.stats {
				t.Errorf("stats changed:\noff: %+v\non:  %+v", plain.stats, prof.stats)
			}
			t.Logf("%s: off=%v on=%v (%.2fx)", cfg.Label, plainT, profT,
				float64(profT)/float64(plainT))
			if profT > 2*plainT {
				t.Errorf("-siteprofile slowed the smoke bench >2x: off=%v on=%v", plainT, profT)
			}
		})
	}
}

// TestForensicsNeutrality is the forensics analogue of
// TestSiteProfileNeutrality: enabling -forensics (allocation tracking, flight
// recorder, report synthesis machinery) must not change any verdict, exit
// code, output or execution statistic, and must not slow the smoke benchmark
// by more than 2x. The disabled path compiles to the exact same opcodes as
// before the feature existed; the enabled path swaps in recorded twins, so
// this test is what keeps the recorder honest about staying off the hot path.
func TestForensicsNeutrality(t *testing.T) {
	b := spec.All()[0]
	for _, cfg := range diffConfigs() {
		t.Run(cfg.Label, func(t *testing.T) {
			m, vopts, stats := prepare(t, b, cfg)
			timeRun := func(on bool) (runOutcome, time.Duration) {
				o := vopts
				o.Forensics = on
				if on && stats != nil {
					o.Sites = stats.Sites
					o.AllocSites = stats.AllocSites
				}
				best := time.Duration(0)
				var out runOutcome
				for i := 0; i < 3; i++ {
					start := time.Now()
					out = runUnder(t, bytecode.EngineBytecode, m, o)
					if d := time.Since(start); best == 0 || d < best {
						best = d
					}
				}
				return out, best
			}
			plain, plainT := timeRun(false)
			rec, recT := timeRun(true)
			if plain.code != rec.code {
				t.Errorf("exit code changed: off=%d on=%d", plain.code, rec.code)
			}
			if plain.output != rec.output {
				t.Errorf("output changed:\noff: %q\non:  %q", plain.output, rec.output)
			}
			if pe, oe := describeErr(plain.err), describeErr(rec.err); pe != oe {
				t.Errorf("verdict changed: off=%s on=%s", pe, oe)
			}
			if plain.stats != rec.stats {
				t.Errorf("stats changed:\noff: %+v\non:  %+v", plain.stats, rec.stats)
			}
			t.Logf("%s: off=%v on=%v (%.2fx)", cfg.Label, plainT, recT,
				float64(recT)/float64(plainT))
			if recT > 2*plainT {
				t.Errorf("-forensics slowed the smoke bench >2x: off=%v on=%v", plainT, recT)
			}
		})
	}
}
