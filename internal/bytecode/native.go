package bytecode

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"plugin"
	"runtime"
	"sync"
	"time"
	"unsafe"

	"repro/internal/ir"
	"repro/internal/lowfat"
	"repro/internal/mem"
	"repro/internal/softbound"
	"repro/internal/vm"
)

// The native tier's runtime: building, caching and loading the generated
// plugin (native_gen.go), and the host half of its ABI (native_env.go) — the
// environment closures, the statistics sync protocol and the one-op gate
// interpreter.
//
// A Program under the compiler tier is lowered to Go source, compiled with
// `go build -buildmode=plugin` into a content-addressed .so under the user
// temp directory, and loaded with the plugin package. Every step can fail —
// no go toolchain, no cgo, unsupported platform, an op shape the generator
// does not handle — and every failure degrades silently to the fused
// interpreter tier, which is semantically complete. The differential harness
// therefore exercises the same observable behavior whether or not native
// execution is available.

// natFn is one loaded native function: its entry point and the pc → entry
// block index map (-1 where native entry is not possible).
type natFn struct {
	code natFunc
	at   []int32
}

// natProg is a loaded plugin bound to a Program's function list.
type natProg struct {
	fns []natFn
}

// natState is the cached build outcome on a Program (prog nil: build failed,
// don't retry).
type natState struct {
	prog *natProg
}

// natBind is an Engine's native binding: the loaded program plus the
// per-engine environment (counters, page cache, closures).
type natBind struct {
	prog *natProg
	env  *natEnv
}

// NativeTierStats counts native-tier build activity for observability.
type NativeTierStats struct {
	// Builds is the number of plugin compilations actually run.
	Builds uint64
	// CacheHits counts programs served from the in-process or on-disk cache.
	CacheHits uint64
	// Failures counts programs that fell back to the interpreter because
	// generation, compilation or loading failed.
	Failures uint64
	// BuildNS is the cumulative wall time spent in `go build` for plugins.
	BuildNS uint64

	// Fallback reasons, one count per Program that could not bind native
	// code. FallbackBuildError: the plugin compilation failed (or had failed
	// before for the same source). FallbackPluginLoad: the built artifact
	// could not be opened or its symbol had the wrong shape (a corrupt or
	// stale cache entry). FallbackDisabled: MI_NATIVE=0 or an unsupported
	// platform. FallbackPolicy: the program's configuration keeps it on the
	// interpreter by policy (forensics recording).
	FallbackBuildError uint64
	FallbackPluginLoad uint64
	FallbackDisabled   uint64
	FallbackPolicy     uint64
}

var natStatsMu sync.Mutex
var natStats NativeTierStats

// NativeStats returns a snapshot of native-tier build counters.
func NativeStats() NativeTierStats {
	natStatsMu.Lock()
	defer natStatsMu.Unlock()
	return natStats
}

func natCount(f func(*NativeTierStats)) {
	natStatsMu.Lock()
	f(&natStats)
	natStatsMu.Unlock()
}

// NativeBuildEvent is one timestamped native-tier build-pipeline event, kept
// for trace rendering: "build" (a plugin compilation, with its wall
// duration), "promote" (a program bound native code, instantaneous), or
// "fallback:<reason>" (a program degraded to the fused interpreter).
type NativeBuildEvent struct {
	Hash   string
	Kind   string
	Start  time.Time
	Dur    time.Duration
	Detail string
}

// natEventCap bounds the in-process build log; campaigns build at most a few
// plugins per distinct program, so the cap only guards pathological churn.
const natEventCap = 256

var natEvents []NativeBuildEvent

// NativeBuildLog returns a copy of the recorded build events, oldest first.
func NativeBuildLog() []NativeBuildEvent {
	natStatsMu.Lock()
	defer natStatsMu.Unlock()
	out := make([]NativeBuildEvent, len(natEvents))
	copy(out, natEvents)
	return out
}

func natEvent(ev NativeBuildEvent) {
	natStatsMu.Lock()
	if len(natEvents) < natEventCap {
		natEvents = append(natEvents, ev)
	}
	natStatsMu.Unlock()
}

// natDisabled gates the tier off: MI_NATIVE=0 in the environment, or a
// platform without plugin support.
var natDisabled = os.Getenv("MI_NATIVE") == "0" ||
	!(runtime.GOOS == "linux" || runtime.GOOS == "darwin" || runtime.GOOS == "freebsd")

// NativeAvailable reports whether the native tier is enabled for this
// process (it can still degrade per program on build or load failures).
func NativeAvailable() bool { return !natDisabled }

// Native fallback reason labels, shared with the telemetry/obs layers.
const (
	NativeFallbackBuildError = "build_error"
	NativeFallbackPluginLoad = "plugin_load"
	NativeFallbackDisabled   = "MI_NATIVE=0"
	NativeFallbackPolicy     = "policy"
)

// native returns the program's loaded native code, building it on first use.
// It returns nil when the native tier is unavailable for this program; the
// result (including failure, with its fallback reason counted exactly once)
// is cached on the Program. Site-profiled programs lower like plain ones —
// the generator bakes their site commits — only forensics recording stays on
// the interpreter by policy.
func (p *Program) native() *natProg {
	if p.tier != EngineCompiler {
		return nil
	}
	if s := p.nat.Load(); s != nil {
		return s.prog
	}
	p.natMu.Lock()
	defer p.natMu.Unlock()
	if s := p.nat.Load(); s != nil {
		return s.prog
	}
	var np *natProg
	switch {
	case natDisabled:
		natCount(func(s *NativeTierStats) { s.FallbackDisabled++ })
		natEvent(NativeBuildEvent{Kind: "fallback:" + NativeFallbackDisabled, Start: time.Now()})
	case p.rec:
		natCount(func(s *NativeTierStats) { s.FallbackPolicy++ })
		natEvent(NativeBuildEvent{Kind: "fallback:" + NativeFallbackPolicy, Start: time.Now()})
	default:
		np = buildNative(p)
	}
	p.nat.Store(&natState{prog: np})
	return np
}

// buildNative generates, compiles and loads the plugin for p.
func buildNative(p *Program) *natProg {
	src, metas := natGenerate(p)
	sum := sha256.Sum256([]byte(src))
	hash := hex.EncodeToString(sum[:])
	fallback := func(reason string, detail string) *natProg {
		natCount(func(s *NativeTierStats) {
			s.Failures++
			if reason == NativeFallbackPluginLoad {
				s.FallbackPluginLoad++
			} else {
				s.FallbackBuildError++
			}
		})
		natEvent(NativeBuildEvent{Hash: hash, Kind: "fallback:" + reason, Start: time.Now(), Detail: detail})
		return nil
	}
	soPath, err := natEnsurePlugin(hash, src)
	if err != nil {
		return fallback(NativeFallbackBuildError, err.Error())
	}
	pl, err := plugin.Open(soPath)
	if err != nil {
		return fallback(NativeFallbackPluginLoad, err.Error())
	}
	sym, err := pl.Lookup("Fns")
	if err != nil {
		return fallback(NativeFallbackPluginLoad, err.Error())
	}
	fns, ok := sym.(*[]natFunc)
	if !ok || len(*fns) != len(p.fns) {
		return fallback(NativeFallbackPluginLoad, "plugin symbol has the wrong shape")
	}
	np := &natProg{fns: make([]natFn, len(p.fns))}
	for i := range p.fns {
		if metas[i].compiled && (*fns)[i] != nil {
			np.fns[i] = natFn{code: (*fns)[i], at: metas[i].at}
		}
	}
	natEvent(NativeBuildEvent{Hash: hash, Kind: "promote", Start: time.Now()})
	return np
}

var natBuildMu sync.Mutex
var natBuilt = map[string]string{} // source hash -> .so path ("" = failed)

// natSuffix distinguishes race-enabled plugin builds: a -race host can only
// load -race plugins and vice versa, so the two populations get separate
// cache files.
func natSuffix() string {
	if raceEnabled {
		return ".race.so"
	}
	return ".so"
}

// natEnsurePlugin returns the path of the compiled plugin for src,
// building it if no cached artifact exists. Builds are serialized; the .so
// is content-addressed by the source hash, so concurrent processes race only
// on an atomic rename of identical artifacts.
func natEnsurePlugin(hash, src string) (string, error) {
	natBuildMu.Lock()
	defer natBuildMu.Unlock()
	if path, ok := natBuilt[hash]; ok {
		if path == "" {
			return "", errors.New("bytecode: native build failed previously")
		}
		natCount(func(s *NativeTierStats) { s.CacheHits++ })
		return path, nil
	}
	path, err := natBuildPlugin(hash, src)
	if err != nil {
		natBuilt[hash] = ""
		return "", err
	}
	natBuilt[hash] = path
	return path, nil
}

func natBuildPlugin(hash, src string) (string, error) {
	dir := filepath.Join(os.TempDir(), "mi-native")
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return "", err
	}
	soPath := filepath.Join(dir, hash+natSuffix())
	if _, err := os.Stat(soPath); err == nil {
		natCount(func(s *NativeTierStats) { s.CacheHits++ })
		return soPath, nil
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		return "", err
	}
	work, err := os.MkdirTemp(dir, "build-")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(work)
	// The module path doubles as the pluginpath; it must be unique per
	// distinct plugin or the runtime refuses to load a second one.
	gomod := fmt.Sprintf("module natplug%s\n\ngo 1.24\n", hash[:16])
	if err := os.WriteFile(filepath.Join(work, "go.mod"), []byte(gomod), 0o666); err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(work, "plug.go"), []byte(src), 0o666); err != nil {
		return "", err
	}
	args := []string{"build", "-buildmode=plugin"}
	if raceEnabled {
		args = append(args, "-race")
	}
	out := filepath.Join(work, "plug"+natSuffix())
	args = append(args, "-o", out, ".")
	cmd := exec.Command(goTool, args...)
	cmd.Dir = work
	cmd.Env = append(os.Environ(), "CGO_ENABLED=1", "GOFLAGS=", "GOWORK=off", "GO111MODULE=on", "GOPROXY=off")
	start := time.Now()
	msg, err := cmd.CombinedOutput()
	dur := time.Since(start)
	natCount(func(s *NativeTierStats) { s.BuildNS += uint64(dur) })
	if err != nil {
		return "", fmt.Errorf("bytecode: native build: %v: %s", err, msg)
	}
	natEvent(NativeBuildEvent{Hash: hash, Kind: "build", Start: start, Dur: dur})
	// Atomic publish: a concurrent process building the same hash renames an
	// identical artifact over ours, which is fine.
	if err := os.Rename(out, soPath); err != nil {
		return "", err
	}
	natCount(func(s *NativeTierStats) { s.Builds++ })
	return soPath, nil
}

// newNatEnv builds the per-engine environment: the counter block, the page
// cache, and the host closures the generated code calls for slow paths,
// faults and gated ops.
// natSiteWordsCheck pins the vm.SiteCount layout the flat Sites view relies
// on: three uint64 words per site (Execs, Wide, Cost), no padding. Either
// array length goes negative — a compile error — if the struct changes size.
var (
	_ [unsafe.Sizeof(vm.SiteCount{}) - natSiteWords*8]byte
	_ [natSiteWords*8 - unsafe.Sizeof(vm.SiteCount{})]byte
)

func (e *Engine) newNatEnv() *natEnv {
	ev := &natEnv{}
	if len(e.prof) > 0 {
		// Zero-copy flat view of the shared per-site profile: generated code
		// for profiled programs commits site counters directly into the same
		// memory the interpreter tiers bump, so profiles stay bit-identical
		// no matter which tier retired each check.
		ev.Sites = unsafe.Slice((*uint64)(unsafe.Pointer(&e.prof[0])), len(e.prof)*natSiteWords)
	}
	ev.Poll = func() uint64 { return uint64(e.intr.Raised()) }
	ev.PageFor = func(addr uint64) (*[mem.PageSize]byte, error) { return e.vm.AS.Page(addr) }
	ev.SlowLoad = func(addr, w uint64) (uint64, error) { return e.vm.AS.Load(addr, int(w)) }
	ev.SlowStore = func(addr, w, val uint64) error { return e.vm.AS.Store(addr, int(w), val) }
	ev.TrieLookup = func(a uint64) (uint64, uint64) {
		b, _ := e.vm.Trie.Lookup(a)
		return b.Base, b.Bound
	}
	ev.TrieStore = func(a, base, bound uint64) {
		e.vm.Trie.Store(a, softbound.Bounds{Base: base, Bound: bound})
	}
	ev.SBFail = func(ptr, width, base, bound uint64) error {
		return &vm.ViolationError{Mechanism: "softbound", Kind: "deref", Ptr: ptr,
			Detail: fmt.Sprintf("access of %d bytes outside bounds [%#x, %#x)", width, base, bound)}
	}
	ev.LFFail = func(kind, ptr, width, base uint64) error {
		if kind == 1 {
			return &vm.ViolationError{Mechanism: "lowfat", Kind: "invariant", Ptr: ptr,
				Detail: fmt.Sprintf("escaping pointer is outside its object at base %#x (size %d)", base, lowfat.AllocSize(lowfat.RegionIndex(base)))}
		}
		return &vm.ViolationError{Mechanism: "lowfat", Kind: "deref", Ptr: ptr,
			Detail: fmt.Sprintf("access of %d bytes outside object at base %#x (size %d)", width, base, lowfat.AllocSize(lowfat.RegionIndex(base)))}
	}
	ev.Rte = func(pc uint64) error { return e.natRte(int(pc)) }
	ev.Gate = func(pc uint64, regs []uint64) error {
		e.natFlush(ev)
		g0 := e.st.Instrs
		err := e.gateOp(e.natFn, int(pc), regs)
		if e.tierFns != nil {
			e.natGateInstrs += e.st.Instrs - g0
			e.tierFns[e.natFn.idx].gates++
		}
		e.natLoad(ev)
		return err
	}
	return ev
}

// natLoad checks engine state out into the counter block (entering native
// code); natFlush checks it back in (leaving it). While native code runs,
// the counter block is authoritative for the mirrored fields.
func (e *Engine) natLoad(ev *natEnv) {
	st := e.st
	ev.Cnt[cntInstrs] = st.Instrs
	ev.Cnt[cntCost] = st.Cost
	ev.Cnt[cntLoads] = st.Loads
	ev.Cnt[cntStores] = st.Stores
	ev.Cnt[cntChecks] = st.Checks
	ev.Cnt[cntWide] = st.WideChecks
	ev.Cnt[cntInv] = st.InvariantChecks
	ev.Cnt[cntMetaLoads] = st.MetaLoads
	ev.Cnt[cntMetaStores] = st.MetaStores
	ev.Cnt[cntSteps] = e.steps
	ev.Cnt[cntCountdown] = e.intrCountdown
	ev.Cnt[cntMaxSteps] = e.maxSteps
}

func (e *Engine) natFlush(ev *natEnv) {
	st := e.st
	st.Instrs = ev.Cnt[cntInstrs]
	st.Cost = ev.Cnt[cntCost]
	st.Loads = ev.Cnt[cntLoads]
	st.Stores = ev.Cnt[cntStores]
	st.Checks = ev.Cnt[cntChecks]
	st.WideChecks = ev.Cnt[cntWide]
	st.InvariantChecks = ev.Cnt[cntInv]
	st.MetaLoads = ev.Cnt[cntMetaLoads]
	st.MetaStores = ev.Cnt[cntMetaStores]
	e.steps = ev.Cnt[cntSteps]
	e.intrCountdown = ev.Cnt[cntCountdown]
}

// natRte reconstructs the runtime error the interpreter raises at pc: the
// generated code reports only the pc, the op identifies the message.
func (e *Engine) natRte(pc int) error {
	fn := e.natFn
	o := &fn.ops[pc]
	switch o.code {
	case opErrInstr:
		return e.rte(pc, o.instr, fn.errs[o.x].msg)
	case opErrRaw:
		ei := &fn.errs[o.x]
		if !ei.trace {
			return &vm.RuntimeError{Msg: ei.msg}
		}
		return e.rte(pc, nil, ei.msg)
	default:
		return e.rte(pc, o.instr, "integer division by zero")
	}
}

// execNative runs fn's native code from the given entry block over the
// canonical register file. It returns either the function's result
// (done=true) or the pc to resume interpretation at after a bail-out.
func (e *Engine) execNative(fn *Fn, nf *natFn, entry int32, regs []uint64) (npc int, ret uint64, done bool, err error) {
	ev := e.nat.env
	savedFn, savedGate := e.natFn, e.natGateInstrs
	e.natFn = fn
	e.natGateInstrs = 0
	i0 := e.st.Instrs
	e.natLoad(ev)
	r, err := nf.code(uint64(entry), regs, ev)
	e.natFlush(ev)
	bailed := err == nil && ev.Cnt[cntBail] != 0
	if e.tierFns != nil {
		tc := &e.tierFns[fn.idx]
		// Gate intervals cover the gated op plus everything nested calls
		// retired (those attribute to their own functions); subtracting
		// them leaves only instructions the generated code retired.
		tc.native += e.st.Instrs - i0 - e.natGateInstrs
		tc.entries++
		if bailed {
			tc.bails++
		}
	}
	e.natFn = savedFn
	e.natGateInstrs = savedGate
	if err != nil {
		return 0, 0, false, err
	}
	if bailed {
		ev.Cnt[cntBail] = 0
		return int(ev.Cnt[cntBailPC]), 0, false, nil
	}
	return 0, r, true, nil
}

// gateOp executes the single op at pc through the interpreter with the exact
// per-op accounting preamble, operating on the canonical register file. The
// generated code routes every op the native tier does not inline through
// here: calls, allocas, shadow-stack ops, hoisted range checks, dynamic
// GEPs. Coverage runs never reach native code, so there is no cover mark.
func (e *Engine) gateOp(fn *Fn, pc int, regs []uint64) error {
	o := &fn.ops[pc]
	st, cm := e.st, e.cm
	e.steps++
	if e.steps > e.maxSteps {
		return e.rte(pc, o.instr, "step limit exceeded")
	}
	e.intrCountdown--
	if e.intrCountdown == 0 {
		e.intrCountdown = vm.InterruptStride
		if r := e.intr.Raised(); r != vm.IntrNone {
			e.intr.MarkObserved()
			return &vm.InterruptError{Reason: r, Steps: e.steps}
		}
	}
	st.Instrs++
	st.Cost += o.cost

	switch o.code {
	case opAlloca:
		count := uint64(1)
		if o.a >= 0 {
			count = regs[o.a]
		}
		size := o.imm * count
		if size == 0 {
			size = 1
		}
		if e.lfStack {
			addr, lowFat, err := e.vm.LF.StackAlloc(size)
			if err != nil {
				return err
			}
			if !lowFat {
				*e.fb = append(*e.fb, addr)
			}
			regs[o.dst] = addr
		} else {
			align := uint64(o.x)
			nsp := (e.vm.StackPointer() - size) &^ (align - 1)
			if nsp < mem.StackLimit {
				return e.rte(pc, o.instr, "stack overflow")
			}
			e.vm.SetStackPointer(nsp)
			regs[o.dst] = nsp
		}

	case opGEPDyn:
		pl := &fn.gepDyns[o.x]
		addr := regs[o.a]
		ty := pl.srcTy
		for i := range pl.idx {
			idx := sext(regs[pl.idx[i].reg], pl.idx[i].sh)
			if i == 0 {
				addr += uint64(idx * int64(ty.Size()))
				continue
			}
			switch ty.Kind {
			case ir.ArrayKind:
				ty = ty.Elem
				addr += uint64(idx * int64(ty.Size()))
			case ir.StructKind:
				addr += uint64(ty.FieldOffset(int(idx)))
				ty = ty.Fields[idx]
			}
		}
		regs[o.dst] = addr

	case opCallInt:
		ic := &fn.intCalls[o.x]
		argv := make([]uint64, len(ic.args))
		for i, r := range ic.args {
			argv[i] = regs[r]
		}
		e.frames[len(e.frames)-1].pc = pc
		ret, err := e.call(ic.fn, argv)
		if err != nil {
			return err
		}
		if o.dst >= 0 {
			regs[o.dst] = ret
		}
	case opCallExt:
		ec := &fn.extCalls[o.x]
		h := e.vm.External(ec.name)
		if h == nil {
			return e.rte(pc, o.instr, "call to unknown external @"+ec.name)
		}
		argv := make([]uint64, len(ec.args))
		for i, r := range ec.args {
			argv[i] = regs[r]
		}
		e.frames[len(e.frames)-1].pc = pc
		ret, err := h(e.vm, ec.instr, argv)
		if err != nil {
			return err
		}
		if o.dst >= 0 {
			regs[o.dst] = ret
		}

	case opSBSSAlloc:
		st.ShadowOps++
		st.Cost += cm.SBShadowOp
		e.vm.Shadow.AllocateFrame(int(regs[o.a]))
	case opSBSSSetArg:
		st.ShadowOps++
		st.Cost += cm.SBShadowOp
		e.vm.Shadow.SetArg(int(regs[o.a]), softbound.Bounds{Base: regs[o.b], Bound: regs[o.c]})
	case opSBSSArgBase:
		st.ShadowOps++
		st.Cost += cm.SBShadowOp
		if o.dst >= 0 {
			regs[o.dst] = e.vm.Shadow.Arg(int(regs[o.a])).Base
		} else {
			_ = e.vm.Shadow.Arg(int(regs[o.a]))
		}
	case opSBSSArgBound:
		st.ShadowOps++
		st.Cost += cm.SBShadowOp
		if o.dst >= 0 {
			regs[o.dst] = e.vm.Shadow.Arg(int(regs[o.a])).Bound
		} else {
			_ = e.vm.Shadow.Arg(int(regs[o.a]))
		}
	case opSBSSSetRet:
		st.ShadowOps++
		st.Cost += cm.SBShadowOp
		e.vm.Shadow.SetRet(softbound.Bounds{Base: regs[o.a], Bound: regs[o.b]})
	case opSBSSRetBase:
		st.ShadowOps++
		st.Cost += cm.SBShadowOp
		if o.dst >= 0 {
			regs[o.dst] = e.vm.Shadow.Ret().Base
		}
	case opSBSSRetBound:
		st.ShadowOps++
		st.Cost += cm.SBShadowOp
		if o.dst >= 0 {
			regs[o.dst] = e.vm.Shadow.Ret().Bound
		}
	case opSBSSPop:
		st.ShadowOps++
		st.Cost += cm.SBShadowOp
		e.vm.Shadow.PopFrame()

	case opSBCheckRange:
		if _, err := vm.SBCheckRangeOp(st, cm, regs[o.a], regs[o.b], regs[o.x], regs[o.c], regs[o.d], regs[o.dst]); err != nil {
			return err
		}
	case opLFCheckRange:
		if _, err := vm.LFCheckRangeOp(st, cm, regs[o.a], regs[o.b], regs[o.x], regs[o.c], regs[o.dst]); err != nil {
			return err
		}

	case opSBCheckRangeProf:
		wide, err := vm.SBCheckRangeOp(st, cm, regs[o.a], regs[o.b], regs[o.x], regs[o.c], regs[o.d], regs[o.dst])
		e.bumpSite(o.imm, wide, cm.SBCheck)
		if err != nil {
			return err
		}
	case opLFCheckRangeProf:
		wide, err := vm.LFCheckRangeOp(st, cm, regs[o.a], regs[o.b], regs[o.x], regs[o.c], regs[o.dst])
		e.bumpSite(o.imm, wide, cm.LFCheck)
		if err != nil {
			return err
		}

	default:
		return &vm.RuntimeError{Msg: fmt.Sprintf("bytecode: native gate on unexpected opcode %d", o.code)}
	}
	return nil
}
