package bytecode

import "sync/atomic"

// The compiler tier's quickening pass.
//
// The bytecode engine already resolved operands and jump targets at compile
// time; what remains per executed op is the dispatch preamble (step count,
// step-limit check, interrupt countdown, instruction count, cost, coverage)
// and the switch dispatch itself. The compiler tier eliminates most of that
// per-op work with a per-function overlay built on the function's first
// execution:
//
//   - quickening: generic opcodes are rewritten to specialized variants with
//     type/width/shape baked in (a 64-bit load no longer switches on width,
//     a one-index GEP becomes a single fused multiply-add, a no-op
//     truncation becomes a move);
//
//   - superinstructions: maximal straight-line opcode runs become segments
//     executed back-to-back with no inter-op dispatch preamble. A segment's
//     step/instruction/cost accounting is batched: steps and the interrupt
//     countdown commit once per segment, instructions and cost once per
//     accounting group. Groups end only at ops that record flight-recorder
//     events (which stamp the live instruction counter); ops that merely
//     fault may sit mid-group because a fault terminates the run and
//     ViolationError/RuntimeError carry no statistics snapshot — the cold
//     fault path rolls back the pre-committed accounting of the unexecuted
//     group suffix, so vm.Stats reads exactly what the reference
//     interpreter would have accumulated at every observable stop point;
//
//   - trace-fused counted loops: loops recognized by
//     analysis.AnalyzeCountedLoop (the same recognition the check-hoisting
//     pass builds on, handed across the IR→bytecode boundary as pc geometry
//     by the compiler) whose body is a single straight-line block run as one
//     mega-op: per iteration one bounded-steps check, the header groups, an
//     inlined exit test, the body groups and an inlined phi copy — no outer
//     dispatch at all.
//
// Exactness of the fast path is guaranteed by entry conditions, not by
// per-op checks: a segment (or loop iteration) only runs fused when the
// interrupt countdown strictly exceeds its step total and the step limit
// cannot be reached inside it. Otherwise the generic dispatch loop executes
// the same ops one at a time with the exact per-op preamble, so interrupt
// polls still occur exactly every vm.InterruptStride steps and step-limit
// faults are raised at exactly the op (and with exactly the statistics) the
// reference interpreter would report. The overlay is built once per
// function under a mutex and published atomically, so Programs shared
// through the compiled-module cache quicken safely under concurrency.

// loopMeta is the compile-time pc geometry of a trace-fusable counted loop
// candidate: header block start and terminator, plus the latch block when it
// is separate (-1 for single-block loops where header == latch).
type loopMeta struct {
	hdrPC     int32
	hdrTerm   int32
	latchPC   int32
	latchTerm int32
}

// Segment terminator kinds.
const (
	termFall uint8 = iota // continue at t via the generic loop (call, error op)
	termJump              // unconditional branch to t
	termCond              // branch to t if regs[a] != 0, else to f
	termRet               // return regs[a] (or 0 when a < 0)
	termPhi               // parallel copy phis[x], then jump to t
)

type qterm struct {
	t, f int32
	a    int32
	x    int32
	kind uint8
}

// qgroup is one accounting group of a superinstruction: its static
// instruction count and cost commit in one add each before the ops run.
// Ops may fault mid-group; rbInstrs[i]/rbCost[i] hold the static accounting
// of the ops after index i, which the fault path subtracts so statistics
// land exactly where the reference interpreter leaves them (the faulting
// op's own preamble stays committed, matching the reference's
// preamble-before-body order).
type qgroup struct {
	instrs   uint64
	cost     uint64
	ops      []op
	rbInstrs []uint64
	rbCost   []uint64
	rbSteps  []uint64
}

// qseg is one superinstruction: a straight-line run of groups plus a
// terminator. steps is the run's total counted-step contribution including
// the terminator; tailInstrs/tailCost are the terminator's instruction
// accounting, committed after the groups (matching reference order).
type qseg struct {
	steps      uint64
	tailInstrs uint64
	tailCost   uint64
	tailSteps  uint64
	groups     []qgroup
	term       qterm
	// fast: exactly one group with no trailing flight-recorder op, so the
	// fused executor commits group + tail statics in one batch and runs the
	// ops inline. Multi-group (recording) segments take the exact
	// group-at-a-time path.
	fast bool
}

// qloop is a trace-fused counted loop.
type qloop struct {
	hdrPC   int32 // bail target: the generic loop resumes here
	exitPC  int32
	condReg int32
	// contOnTrue: the loop continues when regs[condReg] != 0.
	contOnTrue bool
	// phiDirect: back-edge phi sources and destinations are disjoint, so
	// the parallel copy degenerates to sequential moves.
	phiDirect bool

	hdrSteps      uint64 // header ops + condbr
	hdrTailInstrs uint64 // condbr
	hdrTailCost   uint64
	hdrGroups     []qgroup

	bodySteps      uint64 // latch ops + br (0 for single-block loops)
	bodyTailInstrs uint64 // br + phi-copy instruction accounting
	bodyTailCost   uint64
	bodyGroups     []qgroup

	iterSteps uint64 // hdrSteps + bodySteps: one full iteration
	phi       phiPlan

	// Fast-iteration precomputation: when header and body are at most one
	// recording-free group each, the fused executor commits a whole
	// iteration's static accounting up front and rolls back the unexecuted
	// remainder on loop exit (exitRb*) or on a fault (per-op rb arrays plus
	// the phase's xrb constant). fast is false otherwise and the loop runs
	// through the exact group-at-a-time path.
	fast           bool
	hdrOps         []op
	hdrRbI, hdrRbC []uint64
	hdrRbS         []uint64
	bodyOps        []op
	bodyRbI        []uint64
	bodyRbC        []uint64
	bodyRbS        []uint64
	iterInstrs     uint64 // hdr + hdrTail + body + bodyTail statics
	iterCost       uint64
	exitRbInstrs   uint64 // body + bodyTail: never run when the header test exits
	exitRbCost     uint64
	hdrXrbI        uint64 // hdrTail + body + bodyTail: beyond a faulting header op
	hdrXrbC        uint64
	bodyXrbI       uint64 // bodyTail: beyond a faulting body op
	bodyXrbC       uint64
}

// at-slot encoding: >= 0 is a segment index, atNone is empty, <= -2 is a
// fused loop encoded as -(index+2).
const atNone = int32(-1)

func atLoop(idx int) int32 { return -int32(idx) - 2 }
func loopIdx(v int32) int  { return int(-v) - 2 }

// quickFn is the quickened overlay of one function: per-pc dispatch hints
// plus the superinstruction and fused-loop tables they index.
type quickFn struct {
	at    []int32
	segs  []qseg
	loops []qloop
}

// Quickening/fusion counters (process-wide, exported to the observability
// plane through QuickenStats).
var (
	qcFns       atomic.Uint64
	qcRewritten atomic.Uint64
	qcSuperops  atomic.Uint64
	qcLoops     atomic.Uint64
)

// QuickenStats reports cumulative compiler-tier counters: functions
// quickened, generic opcodes rewritten to specialized variants,
// superinstructions formed (trace segments plus fused adjacent pairs —
// each removes at least one dispatch per execution), and counted loops
// trace-fused.
func QuickenStats() (fns, rewritten, superops, loops uint64) {
	return qcFns.Load(), qcRewritten.Load(), qcSuperops.Load(), qcLoops.Load()
}

// quicken returns the function's quickened overlay, building it on first
// use. Build is guarded by a mutex and published atomically: a Program
// shared by concurrent Engines quickens each function exactly once, and
// readers either see the complete overlay or none.
func (fn *Fn) quicken() *quickFn {
	if q := fn.quick.Load(); q != nil {
		return q
	}
	fn.quickGen.Lock()
	defer fn.quickGen.Unlock()
	if q := fn.quick.Load(); q != nil {
		return q
	}
	q := buildQuick(fn)
	fn.quick.Store(q)
	return q
}

// groupBreaker reports ops that cannot run inside a superinstruction at
// all: calls (unbounded nested execution), deferred compile errors, and the
// control ops the segment builder turns into terminators.
func groupBreaker(code opcode) bool {
	switch code {
	case opCallInt, opCallExt, opErrInstr, opErrRaw, opBr, opCondBr, opRet, opPhiCopy:
		return true
	}
	return false
}

// groupEnder reports ops that must close their accounting group: only the
// flight-recorder variants, which stamp the live instruction counter into
// recorded events and therefore must not see accounting pre-committed for
// ops beyond them. Merely-faulting ops (loads, stores, checks, divides,
// allocas) sit mid-group — their cold fault path rolls the unexecuted
// suffix back instead.
func groupEnder(code opcode) bool {
	switch code {
	case opAllocaRec,
		opSBStoreMDRec, opSBCheckRec, opLFCheckRec, opLFCheckInvRec,
		opSBCheckRangeRec, opLFCheckRangeRec,
		opSBCheckLoadRec, opSBCheckStoreRec, opLFCheckLoadRec, opLFCheckStoreRec:
		return true
	}
	return false
}

// fusedAccess reports the fused check+access opcodes, which account as two
// instructions and two steps.
func fusedAccess(code opcode) bool {
	switch code {
	case opSBCheckLoad, opSBCheckStore, opLFCheckLoad, opLFCheckStore,
		opSBCheckLoadProf, opSBCheckStoreProf, opLFCheckLoadProf, opLFCheckStoreProf,
		opSBCheckLoadRec, opSBCheckStoreRec, opLFCheckLoadRec, opLFCheckStoreRec:
		return true
	}
	return false
}

// quickenOp rewrites one generic op to its specialized variant where the
// shape allows, reporting whether it changed. Semantics are identical by
// construction; only dispatch-time work moves to build time.
func quickenOp(fn *Fn, o *op) bool {
	switch o.code {
	case opTrunc:
		if o.imm == ^uint64(0) {
			o.code = opMove
			return true
		}
	case opLoad:
		switch o.wbits {
		case 1:
			o.code = opQLoad8
		case 2:
			o.code = opQLoad16
		case 4:
			o.code = opQLoad32
		case 8:
			o.code = opQLoad64
		default:
			return false
		}
		return true
	case opStore:
		switch o.wbits {
		case 1:
			o.code = opQStore8
		case 2:
			o.code = opQStore16
		case 4:
			o.code = opQStore32
		case 8:
			o.code = opQStore64
		default:
			return false
		}
		return true
	case opGEP:
		pl := &fn.geps[o.x]
		switch len(pl.steps) {
		case 0:
			o.code = opMove
			return true
		case 1:
			s := &pl.steps[0]
			if s.reg < 0 {
				o.code, o.imm, o.x = opQGEPC, uint64(s.off), 0
			} else {
				o.code, o.b, o.wbits, o.imm, o.x = opQGEPRC, s.reg, s.sh, uint64(s.scale), 0
			}
			return true
		case 2:
			var rs, cs *gepStep
			s0, s1 := &pl.steps[0], &pl.steps[1]
			switch {
			case s0.reg >= 0 && s1.reg < 0:
				rs, cs = s0, s1
			case s0.reg < 0 && s1.reg >= 0:
				rs, cs = s1, s0
			default:
				return false
			}
			if cs.off != int64(int32(cs.off)) {
				return false
			}
			o.code, o.b, o.wbits, o.imm, o.x = opQGEPRC, rs.reg, rs.sh, uint64(rs.scale), int32(cs.off)
			return true
		}
	}
	return false
}

// microFuse merges an address computation with the access it feeds: a
// specialized GEP whose result is immediately dereferenced becomes a single
// indexed load/store superinstruction. The GEP result register is still
// written (the fused op's c field), so later uses are unaffected.
func microFuse(prev, cur *op) (op, bool) {
	var f op
	switch prev.code {
	case opQGEPRC:
		switch cur.code {
		case opQLoad8, opQLoad16, opQLoad32, opQLoad64:
			if cur.a != prev.dst {
				return f, false
			}
			f = op{code: opQLoadIdx8 + (cur.code - opQLoad8), instr: cur.instr,
				dst: cur.dst, a: prev.a, b: prev.b, c: prev.dst,
				imm: prev.imm, x: prev.x, wbits: prev.wbits}
			return f, true
		case opQStore8, opQStore16, opQStore32, opQStore64:
			if cur.b != prev.dst {
				return f, false
			}
			f = op{code: opQStoreIdx8 + (cur.code - opQStore8), instr: cur.instr,
				dst: cur.a, a: prev.a, b: prev.b, c: prev.dst,
				imm: prev.imm, x: prev.x, wbits: prev.wbits}
			return f, true
		}
	case opQGEPC:
		switch cur.code {
		case opQLoad8, opQLoad16, opQLoad32, opQLoad64:
			if cur.a != prev.dst {
				return f, false
			}
			f = op{code: opQLoadOff8 + (cur.code - opQLoad8), instr: cur.instr,
				dst: cur.dst, a: prev.a, c: prev.dst, imm: prev.imm}
			return f, true
		case opQStore8, opQStore16, opQStore32, opQStore64:
			if cur.b != prev.dst {
				return f, false
			}
			f = op{code: opQStoreOff8 + (cur.code - opQStore8), instr: cur.instr,
				dst: cur.a, a: prev.a, c: prev.dst, imm: prev.imm}
			return f, true
		}
	}
	return f, false
}

// groupBuilder accumulates superinstruction slots with per-slot static
// accounting (instrs, cost, steps) so the cold paths can roll back exactly
// the unexecuted suffix: faults subtract rbInstrs/rbCost, and mid-trace
// exits (opTExit) additionally subtract rbSteps from the step budget they
// continue running against.
type groupBuilder struct {
	groups              []qgroup
	cur                 qgroup
	slotI, slotC, slotS []uint64
	// pend*: statics of mid-trace unconditional jumps, folded into the
	// next slot. The jump runs exactly when the preceding slot completed,
	// which is the rollback boundary of the slot that follows it.
	pendI, pendC, pendS uint64
	steps               uint64
}

func (b *groupBuilder) flush() {
	if len(b.cur.ops) == 0 && b.cur.instrs == 0 {
		return
	}
	// rbInstrs[i]/rbCost[i]/rbSteps[i] hold the static accounting of slots
	// after i: the amount a fault or trace exit at slot i must subtract,
	// since those ops never ran. The slot's own accounting stays committed
	// (the reference runs the preamble before the op body).
	n := len(b.cur.ops)
	b.cur.rbInstrs = make([]uint64, n)
	b.cur.rbCost = make([]uint64, n)
	b.cur.rbSteps = make([]uint64, n)
	var si, sc, ss uint64
	for i := n - 1; i >= 0; i-- {
		b.cur.rbInstrs[i], b.cur.rbCost[i], b.cur.rbSteps[i] = si, sc, ss
		si += b.slotI[i]
		sc += b.slotC[i]
		ss += b.slotS[i]
	}
	b.groups = append(b.groups, b.cur)
	b.cur = qgroup{}
	b.slotI, b.slotC, b.slotS = nil, nil, nil
}

// slot appends one dispatch slot with explicit statics, absorbing any
// pending jump statics.
func (b *groupBuilder) slot(o op, instrs, cost, steps uint64) {
	instrs += b.pendI
	cost += b.pendC
	steps += b.pendS
	b.pendI, b.pendC, b.pendS = 0, 0, 0
	b.steps += steps
	b.cur.instrs += instrs
	b.cur.cost += cost
	b.cur.ops = append(b.cur.ops, o)
	b.slotI = append(b.slotI, instrs)
	b.slotC = append(b.slotC, cost)
	b.slotS = append(b.slotS, steps)
}

// pend records the statics of a mid-trace unconditional jump for the next
// slot to absorb.
func (b *groupBuilder) pend(instrs, cost, steps uint64) {
	b.pendI += instrs
	b.pendC += cost
	b.pendS += steps
}

// addRange compiles the straight-line op range [start, end): quickening,
// micro-fusion, and per-slot accounting. The caller guarantees the range
// holds no group breakers.
func (b *groupBuilder) addRange(fn *Fn, start, end int) {
	for pc := start; pc < end; pc++ {
		o := fn.ops[pc]
		var steps uint64 = 1
		if fusedAccess(o.code) {
			// Both halves are covered by the step total, but only the
			// check half's instruction/cost accounting is static: the
			// access half commits inside the op, after the check's event or
			// fault point, exactly where the reference interpreter adds it.
			steps = 2
		}
		if quickenOp(fn, &o) {
			qcRewritten.Add(1)
		}
		if n := len(b.cur.ops); n > 0 {
			if f, fok := microFuse(&b.cur.ops[n-1], &o); fok {
				// The fused slot's address half cannot fault, so a fault in
				// the slot is a fault in the access half: everything folded
				// into the slot (including pending jump statics, which sit
				// between the halves) stays committed, as the reference
				// would have it.
				b.cur.ops[n-1] = f
				b.cur.instrs += 1 + b.pendI
				b.cur.cost += o.cost + b.pendC
				b.steps += steps + b.pendS
				b.slotI[n-1] += 1 + b.pendI
				b.slotC[n-1] += o.cost + b.pendC
				b.slotS[n-1] += steps + b.pendS
				b.pendI, b.pendC, b.pendS = 0, 0, 0
				qcRewritten.Add(1)
				continue
			}
		}
		b.slot(o, 1, o.cost, steps)
		if groupEnder(o.code) {
			b.flush()
		}
	}
}

// buildGroups compiles the straight-line op range [start, end) into
// accounting groups, returning the range's counted-step total. ok is false
// when the range contains an op that cannot run inside a superinstruction.
func buildGroups(fn *Fn, start, end int) (groups []qgroup, steps uint64, ok bool) {
	for pc := start; pc < end; pc++ {
		if groupBreaker(fn.ops[pc].code) {
			return nil, 0, false
		}
	}
	var b groupBuilder
	b.addRange(fn, start, end)
	b.flush()
	return b.groups, b.steps, true
}

// isBackStub reports whether pc holds the parallel-copy stub of a loop back
// edge into hdr.
func isBackStub(fn *Fn, pc, hdr int32) bool {
	if pc < 0 || int(pc) >= len(fn.ops) {
		return false
	}
	o := &fn.ops[pc]
	return o.code == opPhiCopy && o.b == hdr
}

func disjointRegs(a, b []int32) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return false
			}
		}
	}
	return true
}

// buildLoop verifies a counted-loop candidate against the flat ops and
// compiles it into a mega-op. It rejects (leaving the loop to plain
// superinstructions) whenever any op-level requirement fails.
func buildLoop(fn *Fn, m loopMeta) (*qloop, bool) {
	ops := fn.ops
	ct := &ops[m.hdrTerm]
	if ct.code != opCondBr {
		return nil, false
	}
	hg, hsteps, ok := buildGroups(fn, int(m.hdrPC), int(m.hdrTerm))
	if !ok {
		return nil, false
	}
	lp := &qloop{hdrPC: m.hdrPC, condReg: ct.a}
	lp.hdrGroups = hg
	lp.hdrSteps = hsteps + 1 // + condbr
	lp.hdrTailInstrs = 1
	lp.hdrTailCost = ct.cost

	// Identify the continue edge: for a two-block loop the condbr must
	// target the latch directly (no phi stub in between); for a
	// single-block loop it must target the back-edge phi stub.
	continues := func(t int32) bool {
		if m.latchPC >= 0 {
			return t == m.latchPC
		}
		return isBackStub(fn, t, m.hdrPC)
	}
	var contPC int32
	switch {
	case continues(ct.b) && !continues(ct.c):
		lp.contOnTrue, contPC, lp.exitPC = true, ct.b, ct.c
	case continues(ct.c) && !continues(ct.b):
		lp.contOnTrue, contPC, lp.exitPC = false, ct.c, ct.b
	default:
		return nil, false
	}

	stubPC := contPC
	if m.latchPC >= 0 {
		bt := &ops[m.latchTerm]
		if bt.code != opBr {
			return nil, false
		}
		bg, bsteps, ok := buildGroups(fn, int(m.latchPC), int(m.latchTerm))
		if !ok {
			return nil, false
		}
		lp.bodyGroups = bg
		lp.bodySteps = bsteps + 1 // + br
		lp.bodyTailInstrs = 1
		lp.bodyTailCost = bt.cost
		stubPC = bt.b
	}
	if !isBackStub(fn, stubPC, m.hdrPC) {
		return nil, false
	}
	pl := &fn.phis[ops[stubPC].x]
	lp.phi = phiPlan{srcs: pl.srcs, dsts: pl.dsts}
	lp.bodyTailInstrs += uint64(len(pl.dsts))
	lp.phiDirect = disjointRegs(pl.srcs, pl.dsts)
	lp.iterSteps = lp.hdrSteps + lp.bodySteps

	lp.fast = groupsFast(lp.hdrGroups) && groupsFast(lp.bodyGroups)
	if lp.fast {
		var hi, hc, bi, bc uint64
		if len(lp.hdrGroups) == 1 {
			g := &lp.hdrGroups[0]
			lp.hdrOps, lp.hdrRbI, lp.hdrRbC, lp.hdrRbS = g.ops, g.rbInstrs, g.rbCost, g.rbSteps
			hi, hc = g.instrs, g.cost
		}
		if len(lp.bodyGroups) == 1 {
			g := &lp.bodyGroups[0]
			lp.bodyOps, lp.bodyRbI, lp.bodyRbC, lp.bodyRbS = g.ops, g.rbInstrs, g.rbCost, g.rbSteps
			bi, bc = g.instrs, g.cost
		}
		lp.iterInstrs = hi + lp.hdrTailInstrs + bi + lp.bodyTailInstrs
		lp.iterCost = hc + lp.hdrTailCost + bc + lp.bodyTailCost
		lp.exitRbInstrs = bi + lp.bodyTailInstrs
		lp.exitRbCost = bc + lp.bodyTailCost
		lp.hdrXrbI = lp.hdrTailInstrs + lp.exitRbInstrs
		lp.hdrXrbC = lp.hdrTailCost + lp.exitRbCost
		lp.bodyXrbI = lp.bodyTailInstrs
		lp.bodyXrbC = lp.bodyTailCost
		fusePairsIn(lp.hdrOps)
		fusePairsIn(lp.bodyOps)
	}
	return lp, true
}

// groupsFast reports whether a group list qualifies for batched-commit
// execution: at most one group, and that group must not end in a
// flight-recorder op (an ender), which would observe the live instruction
// counter before the batch's tail statics were earned.
func groupsFast(gs []qgroup) bool {
	switch len(gs) {
	case 0:
		return true
	case 1:
		ops := gs[0].ops
		return len(ops) == 0 || !groupEnder(ops[len(ops)-1].code)
	}
	return false
}

// Trace-formation caps: a superblock trace stops extending once it spans
// this many blocks or dispatch slots. The caps bound both build cost and
// the all-or-nothing step pre-commitment a trace entry requires.
const (
	maxTraceBlocks = 12
	maxTraceOps    = 96
)

// scanRun returns the end of the straight-line op run starting at pc: the
// pc of the first group breaker (terminator, call, deferred error), or the
// end of the op array.
func scanRun(fn *Fn, pc int32) int32 {
	for int(pc) < len(fn.ops) && !groupBreaker(fn.ops[pc].code) {
		pc++
	}
	return pc
}

// rangeHasEnder reports whether [start, end) holds a flight-recorder op.
// Traces never extend across those: their mid-run reads of the live
// instruction counter must not observe another block's pre-committed
// statics.
func rangeHasEnder(fn *Fn, start, end int32) bool {
	for pc := start; pc < end; pc++ {
		if groupEnder(fn.ops[pc].code) {
			return true
		}
	}
	return false
}

// buildTrace builds the superinstruction starting at start: the block's
// straight-line run, extended across unconditional jumps, phi-copy stubs,
// and conditional branches into a superblock trace while the target block
// keeps the trace a single recording-free group. Mid-trace jumps fold into
// the next slot's statics (no dispatch at all); mid-trace conditional
// branches become opTExit slots that fall through while the branch stays
// on trace and roll back the unexecuted suffix when it leaves. ok is false
// when the block yields no executable segment.
func buildTrace(fn *Fn, q *quickFn, start int32) (qseg, bool) {
	var b groupBuilder
	var seg qseg
	visited := map[int32]bool{start: true}
	cur := start
	blocks := 0
	// canExtend reports whether the trace may continue into block t:
	// unvisited (no cycles — backward control flow re-enters through the
	// overlay at the target's own unit), not a fused loop's header (the
	// mega-op owns it), and a run that keeps the trace one fast group.
	canExtend := func(t int32) bool {
		if int(t) >= len(fn.ops) || visited[t] || q.at[t] <= atLoop(0) {
			return false
		}
		end := scanRun(fn, t)
		return int(end) < len(fn.ops) && !rangeHasEnder(fn, t, end)
	}
	for {
		runEnd := scanRun(fn, cur)
		if int(runEnd) >= len(fn.ops) {
			// A run falling off the end of the op array cannot execute
			// (every block ends in a terminator); don't build a segment.
			return seg, false
		}
		b.addRange(fn, int(cur), int(runEnd))
		blocks++
		to := &fn.ops[runEnd]
		extendable := blocks < maxTraceBlocks && len(b.groups) == 0 &&
			len(b.cur.ops) < maxTraceOps
		switch to.code {
		case opBr:
			if extendable && canExtend(to.b) {
				b.pend(1, to.cost, 1)
				visited[to.b] = true
				cur = to.b
				continue
			}
			seg.term = qterm{kind: termJump, t: to.b}
		case opPhiCopy:
			if extendable && canExtend(to.b) {
				b.slot(op{code: opPhiCopy, x: to.x},
					uint64(len(fn.phis[to.x].dsts)), 0, 0)
				visited[to.b] = true
				cur = to.b
				continue
			}
			seg.term = qterm{kind: termPhi, x: to.x, t: to.b}
		case opCondBr:
			t, f := to.b, to.c
			var on, off int32 = -1, -1
			onTrue := int32(0)
			if extendable {
				canT, canF := canExtend(t), canExtend(f)
				switch {
				case canT && canF:
					// Prefer the layout successor: the block laid out
					// right after the branch is the likelier hot path.
					if f == runEnd+1 {
						on, off = f, t
					} else {
						on, off, onTrue = t, f, 1
					}
				case canT:
					on, off, onTrue = t, f, 1
				case canF:
					on, off = f, t
				}
			}
			if on >= 0 {
				b.slot(op{code: opTExit, a: to.a, b: off, x: onTrue},
					1, to.cost, 1)
				visited[on] = true
				cur = on
				continue
			}
			seg.term = qterm{kind: termCond, a: to.a, t: t, f: f}
		case opRet:
			seg.term = qterm{kind: termRet, a: to.a}
		default: // call or deferred error: hand back to the generic loop
			seg.term = qterm{kind: termFall, t: runEnd}
		}
		break
	}
	b.flush()
	seg.groups = b.groups
	seg.steps = b.steps
	switch seg.term.kind {
	case termJump, termCond, termRet:
		to := &fn.ops[scanRun(fn, cur)]
		seg.steps++
		seg.tailSteps = 1
		seg.tailInstrs = 1
		seg.tailCost = to.cost
	case termPhi:
		seg.tailInstrs = uint64(len(fn.phis[seg.term.x].dsts))
	}
	// Trailing jump statics with no slot to attach to (an empty final
	// block) commit and roll back with the tail.
	seg.tailInstrs += b.pendI
	seg.tailCost += b.pendC
	seg.tailSteps += b.pendS
	seg.steps += b.pendS
	if len(seg.groups) == 0 && seg.term.kind == termFall {
		return seg, false
	}
	seg.fast = len(seg.groups) == 1 && groupsFast(seg.groups)
	if seg.fast {
		fusePairsIn(seg.groups[0].ops)
	}
	return seg, true
}

// fusePairsIn rewrites adjacent opcode pairs in a fast group's dispatch
// stream into single fused superinstructions, greedily left-to-right.
// Only the first slot's code changes; the second slot stays in place, so
// per-slot rollback statics and fault attribution are untouched — the
// fused case executes both halves and indexes the rollback arrays with
// the half's own slot. Fused streams are only ever run by the batched
// fast path; runGroup never sees a fused code.
func fusePairsIn(ops []op) {
	for i := 0; i+1 < len(ops); i++ {
		if f, ok := fusePairs[pairKey(ops[i].code, ops[i+1].code)]; ok {
			ops[i].code = f
			qcSuperops.Add(1)
			i++
		}
	}
}

// buildQuick builds a function's quickened overlay: fused loops first (they
// claim their header pc), then superinstruction traces over every remaining
// straight-line run.
func buildQuick(fn *Fn) *quickFn {
	q := &quickFn{at: make([]int32, len(fn.ops))}
	for i := range q.at {
		q.at[i] = atNone
	}
	for _, m := range fn.loops {
		if lp, ok := buildLoop(fn, m); ok {
			q.loops = append(q.loops, *lp)
			q.at[m.hdrPC] = atLoop(len(q.loops) - 1)
			qcLoops.Add(1)
		}
	}
	pc := 0
	for pc < len(fn.ops) {
		if q.at[pc] != atNone {
			// A fused loop owns this pc; its interior still gets traces
			// below (useful for slow-path re-entries), starting after the
			// header op.
			pc++
			continue
		}
		start := pc
		for pc < len(fn.ops) && !groupBreaker(fn.ops[pc].code) {
			pc++
		}
		if pc < len(fn.ops) {
			switch fn.ops[pc].code {
			case opBr, opCondBr, opRet, opPhiCopy:
				pc++
			default:
				if pc == start {
					pc++
					continue
				}
			}
		}
		seg, ok := buildTrace(fn, q, int32(start))
		if !ok {
			continue
		}
		q.segs = append(q.segs, seg)
		q.at[start] = int32(len(q.segs) - 1)
		qcSuperops.Add(1)
	}
	qcFns.Add(1)
	return q
}
