package bytecode

import (
	"fmt"
	"go/format"
	"sort"
	"strings"

	"repro/internal/vm"
)

// The native tier's code generator.
//
// natGenerate lowers a compiled Program to the source of a Go plugin: one Go
// function per bytecode function, with
//
//   - registers as Go locals (real register allocation instead of a []uint64
//     round-trip per operand),
//   - blocks as labels and branches as direct gotos (no dispatch at all),
//   - statistics batched per accounting run: steps, the interrupt countdown,
//     instruction count, cost and the static check/memory counters commit
//     once per batch with constant adds; fault paths subtract the statically
//     known accounting of the batch suffix the interpreter would not have
//     executed, so vm.Stats is bit-identical at every observable stop point,
//   - the page-cache memory fast path, SoftBound bounds checks and Low-Fat
//     region arithmetic inlined with compile-time constants (widths, masks,
//     cost-model charges),
//   - everything rare routed through host closures (natEnv): calls, allocas,
//     shadow-stack ops, range checks, dynamic GEPs via the one-op gate, and
//     fault construction via dedicated error callbacks.
//
// Exactness follows the same argument as the fused interpreter tier
// (quicken.go): a batch only commits after proving the step limit is not
// reachable inside it and handling at most one interrupt-countdown crossing
// via the poll callback; when either condition fails the function bails out
// to the generic interpreter at a valid op boundary, which then replays the
// ops one at a time with the exact per-op preamble — so step-limit faults and
// interrupt observations land on exactly the op, and with exactly the
// statistics, the reference interpreter reports.

// natEnvDecl must stay byte-identical (modulo the alias name) to the natEnv
// declaration in native_env.go: the plugin and the host assert type identity
// structurally on this unnamed struct.
const natEnvDecl = `type env = struct {
	Cnt    [16]uint64
	PageID [512]uint64
	Pages  [512]*[65536]byte
	Sites  []uint64

	Poll       func() uint64
	PageFor    func(uint64) (*[65536]byte, error)
	SlowLoad   func(uint64, uint64) (uint64, error)
	SlowStore  func(uint64, uint64, uint64) error
	TrieLookup func(uint64) (uint64, uint64)
	TrieStore  func(uint64, uint64, uint64)
	SBFail     func(uint64, uint64, uint64, uint64) error
	LFFail     func(uint64, uint64, uint64, uint64) error
	Rte        func(uint64) error
	Gate       func(uint64, []uint64) error
}
`

// natFnMeta is the host-side description of one generated function.
type natFnMeta struct {
	compiled bool
	// at maps a pc to its block's entry index (-1 when pc is not a block
	// leader); the entry index is the plugin function's dispatch argument.
	at []int32
}

// natContrib is the statically known statistics contribution of one op (or a
// batch of ops): the vm.Stats deltas plus the counted-step total (st) and the
// interrupt-countdown decrement total (po). The two differ for fused
// check+access ops, whose second phase counts a step and an instruction but
// does not touch the countdown. For profiled programs, sites carries the
// per-site Execs/Cost contributions of the batch (wide counts are dynamic
// and bump inline); they commit and roll back with the same suffix
// discipline as the Cnt words, matching the interpreter's bump-before-check
// order — a fault at a profiling op keeps that op's own site commit.
type natContrib struct {
	in, co, st, po, ld, sr, ck, iv, ml, ms uint64
	sites                                  []natSiteContrib
}

// natSiteContrib is one site's static contribution: ex executions charging
// co abstract cost in total.
type natSiteContrib struct {
	id, ex, co uint64
}

func (c *natContrib) add(d natContrib) {
	c.in += d.in
	c.co += d.co
	c.st += d.st
	c.po += d.po
	c.ld += d.ld
	c.sr += d.sr
	c.ck += d.ck
	c.iv += d.iv
	c.ml += d.ml
	c.ms += d.ms
	c.sites = append(c.sites[:len(c.sites):len(c.sites)], d.sites...)
}

// addSite records one profiled execution of site id charging unit cost.
// Site 0 means "no site" and is skipped, mirroring Engine.bumpSite.
func (c *natContrib) addSite(id, unit uint64) {
	if id != 0 {
		c.sites = append(c.sites, natSiteContrib{id: id, ex: 1, co: unit})
	}
}

// natSiteTotals merges a contribution's site list by id, ordered by id, so
// the rendered commits and rollbacks are deterministic.
func natSiteTotals(sites []natSiteContrib) []natSiteContrib {
	if len(sites) == 0 {
		return nil
	}
	byID := map[uint64]*natSiteContrib{}
	var ids []uint64
	for _, s := range sites {
		if t, ok := byID[s.id]; ok {
			t.ex += s.ex
			t.co += s.co
			continue
		}
		cp := s
		byID[s.id] = &cp
		ids = append(ids, s.id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]natSiteContrib, len(ids))
	for i, id := range ids {
		out[i] = *byID[id]
	}
	return out
}

// Op classes for block construction.
const (
	natInline = iota
	natGate
	natTerm
	natUnsupported
)

func natClass(code opcode) int {
	switch code {
	case opAdd, opSub, opMul, opSDiv, opSRem, opUDiv, opURem, opAnd, opOr, opXor,
		opShl, opLShr, opAShr,
		opFAdd, opFSub, opFMul, opFDiv,
		opEQ, opNE, opSLT, opSLE, opSGT, opSGE, opULT, opULE, opUGT, opUGE,
		opFOEQ, opFONE, opFOLT, opFOLE, opFOGT, opFOGE,
		opTrunc, opSExt, opFPCvt, opFPToSI, opSIToFP, opMove,
		opLoad, opStore, opGEP, opSelect,
		opSBLoadBase, opSBLoadBound, opSBStoreMD, opSBCheck,
		opLFBase, opLFCheck, opLFCheckInv,
		opSBCheckLoad, opSBCheckStore, opLFCheckLoad, opLFCheckStore,
		opSBStoreMDProf, opSBCheckProf, opLFCheckProf, opLFCheckInvProf,
		opSBCheckLoadProf, opSBCheckStoreProf, opLFCheckLoadProf, opLFCheckStoreProf:
		return natInline
	case opAlloca, opAllocaRec, opGEPDyn, opCallInt, opCallExt,
		opSBSSAlloc, opSBSSSetArg, opSBSSArgBase, opSBSSArgBound,
		opSBSSSetRet, opSBSSRetBase, opSBSSRetBound, opSBSSPop,
		opSBCheckRange, opLFCheckRange,
		opSBCheckRangeProf, opLFCheckRangeProf:
		return natGate
	case opBr, opCondBr, opRet, opErrInstr, opPhiCopy, opErrRaw:
		return natTerm
	}
	return natUnsupported
}

// natGateIO returns the registers the gate handler for o reads and writes
// (the generated code spills reads before the call and reloads writes after).
func natGateIO(fn *Fn, o *op) (reads, writes []int32, ok bool) {
	addDst := func() {
		if o.dst >= 0 {
			writes = append(writes, o.dst)
		}
	}
	switch o.code {
	case opAlloca, opAllocaRec:
		if o.a >= 0 {
			reads = append(reads, o.a)
		}
		addDst()
	case opGEPDyn:
		reads = append(reads, o.a)
		for _, ix := range fn.gepDyns[o.x].idx {
			reads = append(reads, ix.reg)
		}
		addDst()
	case opCallInt:
		reads = append(reads, fn.intCalls[o.x].args...)
		addDst()
	case opCallExt:
		reads = append(reads, fn.extCalls[o.x].args...)
		addDst()
	case opSBSSAlloc:
		reads = append(reads, o.a)
	case opSBSSSetArg:
		reads = append(reads, o.a, o.b, o.c)
	case opSBSSArgBase, opSBSSArgBound:
		reads = append(reads, o.a)
		addDst()
	case opSBSSSetRet:
		reads = append(reads, o.a, o.b)
	case opSBSSRetBase, opSBSSRetBound:
		addDst()
	case opSBSSPop:
	case opSBCheckRange, opSBCheckRangeProf:
		reads = append(reads, o.a, o.b, o.x, o.c, o.d, o.dst)
	case opLFCheckRange, opLFCheckRangeProf:
		reads = append(reads, o.a, o.b, o.x, o.c, o.dst)
	default:
		return nil, nil, false
	}
	return reads, writes, true
}

// natContribOf computes the static accounting of one inline or terminator op.
func natContribOf(fn *Fn, cm *vm.CostModel, o *op) natContrib {
	if o.code >= opUncountedStart {
		return natContrib{} // PhiCopy/ErrRaw account for themselves
	}
	c := natContrib{in: 1, co: o.cost, st: 1, po: 1}
	switch o.code {
	case opLoad:
		c.ld = 1
	case opStore:
		c.sr = 1
	case opSBLoadBase, opSBLoadBound:
		c.ml, c.co = 1, c.co+cm.SBMetaLoad
	case opSBStoreMD:
		c.ms, c.co = 1, c.co+cm.SBMetaStore
	case opSBCheck:
		c.ck, c.co = 1, c.co+cm.SBCheck
	case opLFCheck:
		c.ck, c.co = 1, c.co+cm.LFCheck
	case opLFCheckInv:
		c.iv, c.co = 1, c.co+cm.LFCheck
	case opLFBase:
		c.co += cm.LFBase
	case opSBCheckLoad:
		c.in, c.st, c.ck, c.ld = 2, 2, 1, 1
		c.co += cm.SBCheck + fn.aux[o.x].cost2
	case opSBCheckStore:
		c.in, c.st, c.ck, c.sr = 2, 2, 1, 1
		c.co += cm.SBCheck + fn.aux[o.x].cost2
	case opLFCheckLoad:
		c.in, c.st, c.ck, c.ld = 2, 2, 1, 1
		c.co += cm.LFCheck + fn.aux[o.x].cost2
	case opLFCheckStore:
		c.in, c.st, c.ck, c.sr = 2, 2, 1, 1
		c.co += cm.LFCheck + fn.aux[o.x].cost2

	case opSBStoreMDProf:
		c.ms, c.co = 1, c.co+cm.SBMetaStore
		c.addSite(o.imm, cm.SBMetaStore)
	case opSBCheckProf:
		c.ck, c.co = 1, c.co+cm.SBCheck
		c.addSite(o.imm, cm.SBCheck)
	case opLFCheckProf:
		c.ck, c.co = 1, c.co+cm.LFCheck
		c.addSite(o.imm, cm.LFCheck)
	case opLFCheckInvProf:
		c.iv, c.co = 1, c.co+cm.LFCheck
		c.addSite(o.imm, cm.LFCheck)
	case opSBCheckLoadProf:
		c.in, c.st, c.ck, c.ld = 2, 2, 1, 1
		c.co += cm.SBCheck + fn.aux[o.x].cost2
		c.addSite(o.imm, cm.SBCheck)
	case opSBCheckStoreProf:
		c.in, c.st, c.ck, c.sr = 2, 2, 1, 1
		c.co += cm.SBCheck + fn.aux[o.x].cost2
		c.addSite(o.imm, cm.SBCheck)
	case opLFCheckLoadProf:
		c.in, c.st, c.ck, c.ld = 2, 2, 1, 1
		c.co += cm.LFCheck + fn.aux[o.x].cost2
		c.addSite(o.imm, cm.LFCheck)
	case opLFCheckStoreProf:
		c.in, c.st, c.ck, c.sr = 2, 2, 1, 1
		c.co += cm.LFCheck + fn.aux[o.x].cost2
		c.addSite(o.imm, cm.LFCheck)
	}
	return c
}

// natFnGen emits one function.
type natFnGen struct {
	fn      *Fn
	cm      *vm.CostModel
	body    strings.Builder
	used    map[int32]bool
	written map[int32]bool
	blockOf map[int]int // leader pc -> block index
	leaders []int
	hasBail bool
	ok      bool
	tmp     int // unique suffix for scoped temporaries
}

func (g *natFnGen) pf(f string, a ...any) { fmt.Fprintf(&g.body, f, a...) }

// r names a register local, marking it used; w additionally marks it written
// (written locals are spilled on bail-out).
func (g *natFnGen) r(i int32) string {
	g.used[i] = true
	return fmt.Sprintf("r%d", i)
}

func (g *natFnGen) w(i int32) string {
	g.used[i] = true
	g.written[i] = true
	return fmt.Sprintf("r%d", i)
}

// rb renders the fault rollback for a statically known unearned contribution.
func natRB(c natContrib) string {
	var b strings.Builder
	sub := func(idx int, v uint64) {
		if v != 0 {
			fmt.Fprintf(&b, "ev.Cnt[%d] -= %d\n", idx, v)
		}
	}
	sub(cntInstrs, c.in)
	sub(cntCost, c.co)
	sub(cntLoads, c.ld)
	sub(cntStores, c.sr)
	sub(cntChecks, c.ck)
	sub(cntInv, c.iv)
	sub(cntMetaLoads, c.ml)
	sub(cntMetaStores, c.ms)
	for _, s := range natSiteTotals(c.sites) {
		fmt.Fprintf(&b, "ev.Sites[%d] -= %d\n", s.id*natSiteWords+natSiteExecs, s.ex)
		if s.co != 0 {
			fmt.Fprintf(&b, "ev.Sites[%d] -= %d\n", s.id*natSiteWords+natSiteCost, s.co)
		}
	}
	return b.String()
}

// sx renders the sign-extension the interpreter's sext(v, sh) performs.
func natSX(expr string, sh uint8) string {
	if sh == 0 {
		return fmt.Sprintf("int64(%s)", expr)
	}
	return fmt.Sprintf("(int64((%s)<<%d) >> %d)", expr, sh, sh)
}

// ff/fb render the interpreter's ffrom/fbits with a constant width.
func natFF(wbits uint8, expr string) string {
	if wbits == 32 {
		return fmt.Sprintf("f32(%s)", expr)
	}
	return fmt.Sprintf("math.Float64frombits(%s)", expr)
}

func natFB(bits uint64, expr string) string {
	if bits == 32 {
		return fmt.Sprintf("b32(%s)", expr)
	}
	return fmt.Sprintf("math.Float64bits(%s)", expr)
}

// findLeaders computes block-leader pcs: entry, branch targets, and the op
// after every terminator.
func (g *natFnGen) findLeaders() {
	ops := g.fn.ops
	set := map[int]bool{0: true}
	mark := func(t int32) {
		if t < 0 || int(t) >= len(ops) {
			g.ok = false
			return
		}
		set[int(t)] = true
	}
	for i := range ops {
		o := &ops[i]
		switch o.code {
		case opBr, opPhiCopy:
			mark(o.b)
		case opCondBr:
			mark(o.b)
			mark(o.c)
		case opRet, opErrInstr, opErrRaw:
		default:
			continue
		}
		if i+1 < len(ops) {
			set[i+1] = true
		}
	}
	g.leaders = make([]int, 0, len(set))
	for pc := range set {
		g.leaders = append(g.leaders, pc)
	}
	sort.Ints(g.leaders)
	g.blockOf = make(map[int]int, len(g.leaders))
	for bi, pc := range g.leaders {
		g.blockOf[pc] = bi
	}
}

func (g *natFnGen) emitBatch(units []int) {
	fn, ops := g.fn, g.fn.ops
	var tot natContrib
	contribs := make([]natContrib, len(units))
	for j, pc := range units {
		contribs[j] = natContribOf(fn, g.cm, &ops[pc])
		tot.add(contribs[j])
	}
	pc0 := units[0]
	if tot.st > 0 {
		g.hasBail = true
		g.pf("if ev.Cnt[%d]+%d > ev.Cnt[%d] {\nbailpc = %d\ngoto bail\n}\n", cntSteps, tot.st, cntMaxSteps, pc0)
		g.pf("if ev.Cnt[%d] <= %d {\nif ev.Poll() != 0 {\nbailpc = %d\ngoto bail\n}\nev.Cnt[%d] = %d - (%d - ev.Cnt[%d])\n} else {\nev.Cnt[%d] -= %d\n}\n",
			cntCountdown, tot.po, pc0, cntCountdown, vm.InterruptStride, tot.po, cntCountdown, cntCountdown, tot.po)
		g.pf("ev.Cnt[%d] += %d\n", cntSteps, tot.st)
	}
	addC := func(idx int, v uint64) {
		if v != 0 {
			g.pf("ev.Cnt[%d] += %d\n", idx, v)
		}
	}
	addC(cntInstrs, tot.in)
	addC(cntCost, tot.co)
	addC(cntLoads, tot.ld)
	addC(cntStores, tot.sr)
	addC(cntChecks, tot.ck)
	addC(cntInv, tot.iv)
	addC(cntMetaLoads, tot.ml)
	addC(cntMetaStores, tot.ms)
	for _, s := range natSiteTotals(tot.sites) {
		g.pf("ev.Sites[%d] += %d\n", s.id*natSiteWords+natSiteExecs, s.ex)
		if s.co != 0 {
			g.pf("ev.Sites[%d] += %d\n", s.id*natSiteWords+natSiteCost, s.co)
		}
	}

	// suffix[j] is the batch accounting after unit j — the part a fault at
	// unit j must roll back (before adding the unit's own unearned part).
	suffix := make([]natContrib, len(units)+1)
	for j := len(units) - 1; j >= 0; j-- {
		suffix[j] = suffix[j+1]
		suffix[j].add(contribs[j])
	}
	for j, pc := range units {
		g.emitOp(pc, suffix[j+1])
		if !g.ok {
			return
		}
	}
}

// emitAccess renders the interpreter's load/store fast path (page cache,
// null guard, in-page aligned width) with the slow path delegated to the
// address space. rb is the rollback owed if the access faults.
func (g *natFnGen) emitAccess(isLoad bool, addr string, width uint8, val string, rb string) {
	t := g.tmp
	g.tmp++
	wide := width == 1 || width == 2 || width == 4 || width == 8
	g.pf("{\na%d := %s\n", t, addr)
	slow := func() {
		if isLoad {
			g.pf("v%d, err%d := ev.SlowLoad(a%d, %d)\nif err%d != nil {\n%sreturn 0, err%d\n}\n%s = v%d\n", t, t, t, width, t, rb, t, val, t)
		} else {
			g.pf("if err%d := ev.SlowStore(a%d, %d, %s); err%d != nil {\n%sreturn 0, err%d\n}\n", t, t, width, val, t, rb, t)
		}
	}
	if !wide {
		slow()
		g.pf("}\n")
		return
	}
	g.pf("if a%d >= %d && a%d&%d <= %d && a%d+%d > a%d {\n", t, 1<<20, t, 65535, 65536-int(width), t, width, t)
	g.pf("pn%d := a%d>>16 + 1\ns%d := pn%d & %d\n", t, t, t, t, natPageWays-1)
	g.pf("if ev.PageID[s%d] != pn%d {\npg%d, err%d := ev.PageFor(a%d)\nif err%d != nil {\n%sreturn 0, err%d\n}\nev.Pages[s%d] = pg%d\nev.PageID[s%d] = pn%d\n}\n",
		t, t, t, t, t, t, rb, t, t, t, t, t)
	off := fmt.Sprintf("a%d&65535", t)
	if isLoad {
		switch width {
		case 8:
			g.pf("%s = binary.LittleEndian.Uint64(ev.Pages[s%d][%s:])\n", val, t, off)
		case 4:
			g.pf("%s = uint64(binary.LittleEndian.Uint32(ev.Pages[s%d][%s:]))\n", val, t, off)
		case 2:
			g.pf("%s = uint64(binary.LittleEndian.Uint16(ev.Pages[s%d][%s:]))\n", val, t, off)
		case 1:
			g.pf("%s = uint64(ev.Pages[s%d][%s])\n", val, t, off)
		}
	} else {
		switch width {
		case 8:
			g.pf("binary.LittleEndian.PutUint64(ev.Pages[s%d][%s:], %s)\n", t, off, val)
		case 4:
			g.pf("binary.LittleEndian.PutUint32(ev.Pages[s%d][%s:], uint32(%s))\n", t, off, val)
		case 2:
			g.pf("binary.LittleEndian.PutUint16(ev.Pages[s%d][%s:], uint16(%s))\n", t, off, val)
		case 1:
			g.pf("ev.Pages[s%d][%s] = byte(%s)\n", t, off, val)
		}
	}
	g.pf("} else {\n")
	slow()
	g.pf("}\n}\n")
}

// natWide renders the wide-bounds elision bumps: vm.Stats.WideChecks, plus
// the profiled site's Wide word when the check carries a site. Wide counts
// are data-dependent, so they commit inline rather than in the batch statics.
func natWide(site uint64) string {
	s := fmt.Sprintf("ev.Cnt[%d]++\n", cntWide)
	if site != 0 {
		s += fmt.Sprintf("ev.Sites[%d]++\n", site*natSiteWords+natSiteWide)
	}
	return s
}

// emitSBCheck renders the SoftBound bounds check (Figure 2): wide-bounds
// elision bumps WideChecks, a violation rolls back rb and fails through the
// host error constructor. Checks/cost (and the site's Execs/Cost for
// profiled checks) are already in the batch statics; the interpreter bumps
// the site before raising a violation, so rb never includes the check's own
// site contribution.
func (g *natFnGen) emitSBCheck(ptr, wd, base, bound, rb string, site uint64) {
	g.pf("if %s == 0 && %s == 0x%x {\n%s} else if !(%s >= %s && %s+%s <= %s && %s+%s >= %s) {\n%sreturn 0, ev.SBFail(%s, %s, %s, %s)\n}\n",
		base, bound, ^uint64(0), natWide(site), ptr, base, ptr, wd, bound, ptr, wd, ptr, rb, ptr, wd, base, bound)
}

// emitLFCheck renders the Low-Fat check (Figure 5): region decode, size
// table as a shift, unsigned offset comparison.
func (g *natFnGen) emitLFCheck(ptr, wd, base, rb string, site uint64) {
	t := g.tmp
	g.tmp++
	g.pf("{\nri%d := %s >> 35\nif ri%d < 1 || ri%d > 27 {\n%s} else {\nsz%d := uint64(16) << (ri%d - 1)\nw%d := %s\nif w%d == 0 {\nw%d = 1\n}\nif %s-%s > sz%d-w%d {\n%sreturn 0, ev.LFFail(0, %s, %s, %s)\n}\n}\n}\n",
		t, base, t, t, natWide(site), t, t, t, wd, t, t, ptr, base, t, t, rb, ptr, wd, base)
}

func (g *natFnGen) emitOp(pc int, suf natContrib) {
	fn := g.fn
	o := &fn.ops[pc]
	rbS := natRB(suf)
	switch o.code {
	case opAdd:
		g.pf("%s = (%s + %s) & 0x%x\n", g.w(o.dst), g.r(o.a), g.r(o.b), o.imm)
	case opSub:
		g.pf("%s = (%s - %s) & 0x%x\n", g.w(o.dst), g.r(o.a), g.r(o.b), o.imm)
	case opMul:
		g.pf("%s = (%s * %s) & 0x%x\n", g.w(o.dst), g.r(o.a), g.r(o.b), o.imm)
	case opSDiv, opSRem:
		t := g.tmp
		g.tmp++
		op := "/"
		if o.code == opSRem {
			op = "%"
		}
		g.pf("{\nd%d := %s\nif d%d == 0 {\n%sreturn 0, ev.Rte(%d)\n}\n%s = uint64(%s %s d%d) & 0x%x\n}\n",
			t, natSX(g.r(o.b), o.wbits), t, rbS, pc, g.w(o.dst), natSX(g.r(o.a), o.wbits), op, t, o.imm)
	case opUDiv, opURem:
		t := g.tmp
		g.tmp++
		op := "/"
		if o.code == opURem {
			op = "%"
		}
		g.pf("{\nd%d := %s & 0x%x\nif d%d == 0 {\n%sreturn 0, ev.Rte(%d)\n}\n%s = ((%s & 0x%x) %s d%d) & 0x%x\n}\n",
			t, g.r(o.b), o.imm, t, rbS, pc, g.w(o.dst), g.r(o.a), o.imm, op, t, o.imm)
	case opAnd:
		g.pf("%s = (%s & %s) & 0x%x\n", g.w(o.dst), g.r(o.a), g.r(o.b), o.imm)
	case opOr:
		g.pf("%s = (%s | %s) & 0x%x\n", g.w(o.dst), g.r(o.a), g.r(o.b), o.imm)
	case opXor:
		g.pf("%s = (%s ^ %s) & 0x%x\n", g.w(o.dst), g.r(o.a), g.r(o.b), o.imm)
	case opShl:
		t := g.tmp
		g.tmp++
		g.pf("{\ns%d := %s & %d\n%s = (%s << s%d) & 0x%x\n}\n", t, g.r(o.b), o.x, g.w(o.dst), g.r(o.a), t, o.imm)
	case opLShr:
		t := g.tmp
		g.tmp++
		g.pf("{\ns%d := %s & %d\n%s = (%s & 0x%x) >> s%d\n}\n", t, g.r(o.b), o.x, g.w(o.dst), g.r(o.a), o.imm, t)
	case opAShr:
		t := g.tmp
		g.tmp++
		g.pf("{\ns%d := %s & %d\n%s = uint64(%s>>s%d) & 0x%x\n}\n", t, g.r(o.b), o.x, g.w(o.dst), natSX(g.r(o.a), o.wbits), t, o.imm)

	case opFAdd, opFSub, opFMul, opFDiv:
		if o.wbits != 32 && o.wbits != 64 {
			g.ok = false
			return
		}
		op := map[opcode]string{opFAdd: "+", opFSub: "-", opFMul: "*", opFDiv: "/"}[o.code]
		g.pf("%s = %s\n", g.w(o.dst), natFB(uint64(o.wbits), natFF(o.wbits, g.r(o.a))+" "+op+" "+natFF(o.wbits, g.r(o.b))))

	case opEQ, opNE, opULT, opULE, opUGT, opUGE:
		op := map[opcode]string{opEQ: "==", opNE: "!=", opULT: "<", opULE: "<=", opUGT: ">", opUGE: ">="}[o.code]
		g.pf("if %s&0x%x %s %s&0x%x {\n%s = 1\n} else {\n%s = 0\n}\n", g.r(o.a), o.imm, op, g.r(o.b), o.imm, g.w(o.dst), g.w(o.dst))
	case opSLT, opSLE, opSGT, opSGE:
		op := map[opcode]string{opSLT: "<", opSLE: "<=", opSGT: ">", opSGE: ">="}[o.code]
		g.pf("if %s %s %s {\n%s = 1\n} else {\n%s = 0\n}\n", natSX(g.r(o.a), o.wbits), op, natSX(g.r(o.b), o.wbits), g.w(o.dst), g.w(o.dst))
	case opFOEQ, opFONE, opFOLT, opFOLE, opFOGT, opFOGE:
		if o.wbits != 32 && o.wbits != 64 {
			g.ok = false
			return
		}
		op := map[opcode]string{opFOEQ: "==", opFONE: "!=", opFOLT: "<", opFOLE: "<=", opFOGT: ">", opFOGE: ">="}[o.code]
		g.pf("if %s %s %s {\n%s = 1\n} else {\n%s = 0\n}\n", natFF(o.wbits, g.r(o.a)), op, natFF(o.wbits, g.r(o.b)), g.w(o.dst), g.w(o.dst))

	case opTrunc:
		g.pf("%s = %s & 0x%x\n", g.w(o.dst), g.r(o.a), o.imm)
	case opSExt:
		g.pf("%s = uint64(%s) & 0x%x\n", g.w(o.dst), natSX(g.r(o.a), o.wbits), o.imm)
	case opFPCvt:
		if (o.wbits != 32 && o.wbits != 64) || (o.imm != 32 && o.imm != 64) {
			g.ok = false
			return
		}
		g.pf("%s = %s\n", g.w(o.dst), natFB(o.imm, natFF(o.wbits, g.r(o.a))))
	case opFPToSI:
		if o.wbits != 32 && o.wbits != 64 {
			g.ok = false
			return
		}
		g.pf("%s = uint64(int64(%s)) & 0x%x\n", g.w(o.dst), natFF(o.wbits, g.r(o.a)), o.imm)
	case opSIToFP:
		if o.imm != 32 && o.imm != 64 {
			g.ok = false
			return
		}
		g.pf("%s = %s\n", g.w(o.dst), natFB(o.imm, fmt.Sprintf("float64(%s)", natSX(g.r(o.a), o.wbits))))
	case opMove:
		g.pf("%s = %s\n", g.w(o.dst), g.r(o.a))

	case opLoad:
		sufL := suf
		sufL.ld++
		g.emitAccess(true, g.r(o.a), o.wbits, g.w(o.dst), natRB(sufL))
	case opStore:
		sufS := suf
		sufS.sr++
		g.emitAccess(false, g.r(o.b), o.wbits, g.r(o.a), natRB(sufS))

	case opGEP:
		pl := &fn.geps[o.x]
		var off uint64
		var terms []string
		for i := range pl.steps {
			s := &pl.steps[i]
			if s.reg < 0 {
				off += uint64(s.off)
			} else {
				terms = append(terms, fmt.Sprintf("uint64(%s*%d)", natSX(g.r(s.reg), s.sh), s.scale))
			}
		}
		expr := g.r(o.a)
		if off != 0 {
			expr += fmt.Sprintf(" + 0x%x", off)
		}
		for _, t := range terms {
			expr += " + " + t
		}
		g.pf("%s = %s\n", g.w(o.dst), expr)

	case opSelect:
		g.pf("if %s != 0 {\n%s = %s\n} else {\n%s = %s\n}\n", g.r(o.a), g.w(o.dst), g.r(o.b), g.w(o.dst), g.r(o.c))

	case opSBLoadBase:
		if o.dst >= 0 {
			t := g.tmp
			g.tmp++
			g.pf("{\nb%d, _ := ev.TrieLookup(%s)\n%s = b%d\n}\n", t, g.r(o.a), g.w(o.dst), t)
		}
	case opSBLoadBound:
		if o.dst >= 0 {
			t := g.tmp
			g.tmp++
			g.pf("{\n_, b%d := ev.TrieLookup(%s)\n%s = b%d\n}\n", t, g.r(o.a), g.w(o.dst), t)
		}
	case opSBStoreMD, opSBStoreMDProf:
		g.pf("ev.TrieStore(%s, %s, %s)\n", g.r(o.a), g.r(o.b), g.r(o.c))
	case opSBCheck:
		g.emitSBCheck(g.r(o.a), g.r(o.b), g.r(o.c), g.r(o.d), rbS, 0)
	case opSBCheckProf:
		g.emitSBCheck(g.r(o.a), g.r(o.b), g.r(o.c), g.r(o.d), rbS, o.imm)

	case opLFBase:
		if o.dst >= 0 {
			t := g.tmp
			g.tmp++
			g.pf("{\nri%d := %s >> 35\nif ri%d < 1 || ri%d > 27 {\n%s = 0\n} else {\n%s = %s &^ ((uint64(16) << (ri%d - 1)) - 1)\n}\n}\n",
				t, g.r(o.a), t, t, g.w(o.dst), g.w(o.dst), g.r(o.a), t)
		}
	case opLFCheck:
		g.emitLFCheck(g.r(o.a), g.r(o.b), g.r(o.c), rbS, 0)
	case opLFCheckProf:
		g.emitLFCheck(g.r(o.a), g.r(o.b), g.r(o.c), rbS, o.imm)
	case opLFCheckInv, opLFCheckInvProf:
		t := g.tmp
		g.tmp++
		g.pf("{\nri%d := %s >> 35\nif ri%d >= 1 && ri%d <= 27 {\nsz%d := uint64(16) << (ri%d - 1)\nif %s-%s > sz%d-1 {\n%sreturn 0, ev.LFFail(1, %s, 0, %s)\n}\n}\n}\n",
			t, g.r(o.b), t, t, t, t, g.r(o.a), g.r(o.b), t, rbS, g.r(o.a), g.r(o.b))

	case opSBCheckLoad, opSBCheckLoadProf:
		site := uint64(0)
		if o.code == opSBCheckLoadProf {
			site = o.imm
		}
		sufC := suf
		sufC.in, sufC.co, sufC.ld = sufC.in+1, sufC.co+fn.aux[o.x].cost2, sufC.ld+1
		g.emitSBCheck(g.r(o.a), g.r(o.b), g.r(o.c), g.r(o.d), natRB(sufC), site)
		sufL := suf
		sufL.ld++
		g.emitAccess(true, g.r(o.a), o.wbits, g.w(o.dst), natRB(sufL))
	case opSBCheckStore, opSBCheckStoreProf:
		site := uint64(0)
		if o.code == opSBCheckStoreProf {
			site = o.imm
		}
		sufC := suf
		sufC.in, sufC.co, sufC.sr = sufC.in+1, sufC.co+fn.aux[o.x].cost2, sufC.sr+1
		g.emitSBCheck(g.r(o.a), g.r(o.b), g.r(o.c), g.r(o.d), natRB(sufC), site)
		sufS := suf
		sufS.sr++
		g.emitAccess(false, g.r(o.a), o.wbits, g.r(o.dst), natRB(sufS))
	case opLFCheckLoad, opLFCheckLoadProf:
		site := uint64(0)
		if o.code == opLFCheckLoadProf {
			site = o.imm
		}
		sufC := suf
		sufC.in, sufC.co, sufC.ld = sufC.in+1, sufC.co+fn.aux[o.x].cost2, sufC.ld+1
		g.emitLFCheck(g.r(o.a), g.r(o.b), g.r(o.c), natRB(sufC), site)
		sufL := suf
		sufL.ld++
		g.emitAccess(true, g.r(o.a), o.wbits, g.w(o.dst), natRB(sufL))
	case opLFCheckStore, opLFCheckStoreProf:
		site := uint64(0)
		if o.code == opLFCheckStoreProf {
			site = o.imm
		}
		sufC := suf
		sufC.in, sufC.co, sufC.sr = sufC.in+1, sufC.co+fn.aux[o.x].cost2, sufC.sr+1
		g.emitLFCheck(g.r(o.a), g.r(o.b), g.r(o.c), natRB(sufC), site)
		sufS := suf
		sufS.sr++
		g.emitAccess(false, g.r(o.a), o.wbits, g.r(o.dst), natRB(sufS))

	case opBr:
		g.pf("goto bb%d\n", o.b)
	case opCondBr:
		g.pf("if %s != 0 {\ngoto bb%d\n}\ngoto bb%d\n", g.r(o.a), o.b, o.c)
	case opRet:
		if o.a >= 0 {
			g.pf("return %s, nil\n", g.r(o.a))
		} else {
			g.pf("return 0, nil\n")
		}
	case opErrInstr, opErrRaw:
		g.pf("return 0, ev.Rte(%d)\n", pc)
	case opPhiCopy:
		pl := &fn.phis[o.x]
		t := g.tmp
		g.tmp++
		g.pf("{\n")
		for i, s := range pl.srcs {
			g.pf("t%d_%d := %s\n", t, i, g.r(s))
		}
		for i, d := range pl.dsts {
			g.pf("%s = t%d_%d\n", g.w(d), t, i)
		}
		g.pf("}\n")
		if n := len(pl.dsts); n > 0 {
			g.pf("ev.Cnt[%d] += %d\n", cntInstrs, n)
		}
		g.pf("goto bb%d\n", o.b)

	default:
		g.ok = false
	}
}

func (g *natFnGen) emitGate(pc int) {
	o := &g.fn.ops[pc]
	reads, writes, ok := natGateIO(g.fn, o)
	if !ok {
		g.ok = false
		return
	}
	seen := map[int32]bool{}
	var spills []int32
	for _, r := range reads {
		if r >= 0 && !seen[r] {
			seen[r] = true
			spills = append(spills, r)
		}
	}
	sort.Slice(spills, func(i, j int) bool { return spills[i] < spills[j] })
	for _, r := range spills {
		g.pf("regs[%d] = %s\n", r, g.r(r))
	}
	t := g.tmp
	g.tmp++
	g.pf("if err%d := ev.Gate(%d, regs); err%d != nil {\nreturn 0, err%d\n}\n", t, pc, t, t)
	for _, r := range writes {
		g.pf("%s = regs[%d]\n", g.w(r), r)
	}
}

func (g *natFnGen) emitBlock(bi int) {
	fn := g.fn
	s := g.leaders[bi]
	e := len(fn.ops)
	if bi+1 < len(g.leaders) {
		e = g.leaders[bi+1]
	}
	g.pf("bb%d:\n", s)
	var units []int
	var steps uint64
	flush := func() {
		if len(units) > 0 {
			g.emitBatch(units)
			units = nil
			steps = 0
		}
	}
	for pc := s; pc < e && g.ok; pc++ {
		o := &fn.ops[pc]
		switch natClass(o.code) {
		case natTerm:
			c := natContribOf(fn, g.cm, o)
			if steps+c.st > natBatchMaxSteps {
				flush()
			}
			units = append(units, pc)
			flush()
			return
		case natGate:
			flush()
			g.emitGate(pc)
		case natInline:
			c := natContribOf(fn, g.cm, o)
			if steps+c.st > natBatchMaxSteps {
				flush()
			}
			units = append(units, pc)
			steps += c.st
		default:
			g.ok = false
			return
		}
	}
	// Fell through to the next leader without a terminator.
	flush()
	if e < len(fn.ops) {
		g.pf("goto bb%d\n", e)
	} else {
		g.ok = false
	}
}

// generate emits the function, returning its source and meta (ok=false when
// the function uses something the native tier does not compile; the host
// falls back to the interpreter for it).
func (g *natFnGen) generate(idx int) (string, natFnMeta, bool) {
	g.used = map[int32]bool{}
	g.written = map[int32]bool{}
	g.ok = true
	g.findLeaders()
	if !g.ok {
		return "", natFnMeta{}, false
	}
	for bi := range g.leaders {
		g.emitBlock(bi)
		if !g.ok {
			return "", natFnMeta{}, false
		}
	}

	var f strings.Builder
	fmt.Fprintf(&f, "func fn%d(entry uint64, regs []uint64, ev *env) (uint64, error) {\n", idx)
	f.WriteString("var bailpc uint64\n_ = bailpc\n")
	var regsUsed []int
	for r := range g.used {
		regsUsed = append(regsUsed, int(r))
	}
	sort.Ints(regsUsed)
	for _, r := range regsUsed {
		fmt.Fprintf(&f, "r%d := regs[%d]\n", r, r)
	}
	for i := 0; i < len(regsUsed); i += 16 {
		end := min(i+16, len(regsUsed))
		blanks := make([]string, 0, 16)
		vars := make([]string, 0, 16)
		for _, r := range regsUsed[i:end] {
			blanks = append(blanks, "_")
			vars = append(vars, fmt.Sprintf("r%d", r))
		}
		fmt.Fprintf(&f, "%s = %s\n", strings.Join(blanks, ", "), strings.Join(vars, ", "))
	}
	f.WriteString("switch entry {\n")
	for bi, pc := range g.leaders {
		fmt.Fprintf(&f, "case %d:\ngoto bb%d\n", bi, pc)
	}
	f.WriteString("}\ngoto bb0\n")
	f.WriteString(g.body.String())
	if g.hasBail {
		f.WriteString("bail:\n")
		var spills []int
		for r := range g.written {
			spills = append(spills, int(r))
		}
		sort.Ints(spills)
		for _, r := range spills {
			fmt.Fprintf(&f, "regs[%d] = r%d\n", r, r)
		}
		fmt.Fprintf(&f, "ev.Cnt[%d] = 1\nev.Cnt[%d] = bailpc\nreturn 0, nil\n", cntBail, cntBailPC)
	}
	f.WriteString("}\n\n")

	meta := natFnMeta{compiled: true, at: make([]int32, len(g.fn.ops))}
	for i := range meta.at {
		meta.at[i] = -1
	}
	for bi, pc := range g.leaders {
		meta.at[pc] = int32(bi)
	}
	return f.String(), meta, true
}

// natGenerate emits the full plugin source for p. The source depends only on
// the program's code shape (ops, plans, baked cost model) — constant values,
// global and function addresses stay in the host-loaded register file — so
// its hash keys the on-disk plugin cache across processes.
func natGenerate(p *Program) (string, []natFnMeta) {
	var b strings.Builder
	b.WriteString("// Code generated by the native execution tier (internal/bytecode/native_gen.go). DO NOT EDIT.\n")
	b.WriteString("package main\n\nimport (\n\"encoding/binary\"\n\"math\"\n)\n\n")
	b.WriteString("var _ = binary.LittleEndian\nvar _ = math.Float64bits\n\n")
	b.WriteString(natEnvDecl)
	b.WriteString("\nfunc f32(v uint64) float64 { return float64(math.Float32frombits(uint32(v))) }\nfunc b32(f float64) uint64 { return uint64(math.Float32bits(float32(f))) }\n\n")

	metas := make([]natFnMeta, len(p.fns))
	var fnsrc strings.Builder
	for i, fn := range p.fns {
		g := &natFnGen{fn: fn, cm: &p.cm}
		src, meta, ok := g.generate(i)
		if ok {
			metas[i] = meta
			fnsrc.WriteString(src)
		}
	}
	b.WriteString("var Fns = []func(uint64, []uint64, *env) (uint64, error){\n")
	for i := range p.fns {
		if metas[i].compiled {
			fmt.Fprintf(&b, "fn%d,\n", i)
		} else {
			b.WriteString("nil,\n")
		}
	}
	b.WriteString("}\n\nfunc main() {}\n\n")
	b.WriteString(fnsrc.String())

	src := b.String()
	if formatted, err := format.Source([]byte(src)); err == nil {
		src = string(formatted)
	}
	return src, metas
}
