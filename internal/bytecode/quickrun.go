package bytecode

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ir"
	"repro/internal/lowfat"
	"repro/internal/mem"
	"repro/internal/softbound"
	"repro/internal/vm"
)

// Fused execution: superinstruction segments and trace-fused counted loops.
// The generic dispatch loop (exec) enters these fast paths only when the
// interrupt countdown strictly exceeds the fused step total and the step
// limit cannot be crossed inside it, so interrupt polls and step-limit
// faults always happen on the generic path at exactly the reference
// interpreter's op. Statistics commit in group-sized batches whose
// boundaries sit only at flight-recorder ops; a mid-group fault rolls the
// pre-committed accounting of the unexecuted suffix back (groupFault),
// keeping vm.Stats bit-identical to the reference at every observable stop
// point.

// qpWays is the associativity of the compiler tier's direct-mapped page
// cache (a power of two). The generic engine keeps a one-entry cache, which
// programs alternating between arrays on different pages thrash straight
// into the address-space map lookup; the quickened memory ops use these
// slots instead, indexed by low page-number bits.
const qpWays = 1024

// qpageFor returns the in-page byte window for a w-byte access at addr when
// the access hits the quickened page cache, sits above the null guard and
// does not straddle the page end; nil sends the caller to the exact slow
// path.
func (e *Engine) qpageFor(addr, w uint64) []byte {
	off := addr & (mem.PageSize - 1)
	pn := addr >> mem.PageBits
	sl := pn & (qpWays - 1)
	if e.qpageID[sl] == pn+1 && addr >= mem.NullGuardSize && off <= mem.PageSize-w {
		return e.qpages[sl][off:]
	}
	return nil
}

// qload is the quickened slow path: Engine.load's exact semantics (same
// guard checks, same materialization and faults), filling the multi-way
// cache slot on success so the next access to this page stays fast.
func (e *Engine) qload(addr uint64, width uint8) (uint64, error) {
	w := uint64(width)
	off := addr & (mem.PageSize - 1)
	if addr >= mem.NullGuardSize && off+w <= mem.PageSize && addr+w > addr {
		pg, err := e.vm.AS.Page(addr)
		if err != nil {
			return 0, err
		}
		pn := addr >> mem.PageBits
		e.qpages[pn&(qpWays-1)], e.qpageID[pn&(qpWays-1)] = pg, pn+1
		d := pg[off:]
		switch width {
		case 8:
			return binary.LittleEndian.Uint64(d), nil
		case 4:
			return uint64(binary.LittleEndian.Uint32(d)), nil
		case 2:
			return uint64(binary.LittleEndian.Uint16(d)), nil
		case 1:
			return uint64(d[0]), nil
		}
	}
	return e.vm.AS.Load(addr, int(width))
}

// qstore is the store counterpart of qload.
func (e *Engine) qstore(addr uint64, width uint8, val uint64) error {
	w := uint64(width)
	off := addr & (mem.PageSize - 1)
	if addr >= mem.NullGuardSize && off+w <= mem.PageSize && addr+w > addr {
		pg, err := e.vm.AS.Page(addr)
		if err != nil {
			return err
		}
		pn := addr >> mem.PageBits
		e.qpages[pn&(qpWays-1)], e.qpageID[pn&(qpWays-1)] = pg, pn+1
		d := pg[off:]
		switch width {
		case 8:
			binary.LittleEndian.PutUint64(d, val)
		case 4:
			binary.LittleEndian.PutUint32(d, uint32(val))
		case 2:
			binary.LittleEndian.PutUint16(d, uint16(val))
		case 1:
			d[0] = byte(val)
		}
		return nil
	}
	return e.vm.AS.Store(addr, int(width), val)
}

// fusedFault unwinds statics pre-committed beyond a faulting op in the
// fused executor: the per-op suffix within the current op array plus the
// phase's fixed remainder (segment tail, or loop tails and the unreached
// body). The faulting op's own preamble accounting stays committed,
// matching the reference's preamble-before-body order.
func (e *Engine) fusedFault(ri, rc uint64, err error) error {
	e.st.Instrs -= ri
	e.st.Cost -= rc
	return err
}

// runFused execution phases: what follows when the current op array ends.
const (
	afterSeg uint8 = iota
	afterHdr
	afterBody
)

// runFused executes a chain of fused units — superinstruction segments and
// trace-fused counted loops — starting at at-slot v, whose entry condition
// the caller verified. It follows branch targets into further fused units
// while their entry conditions hold, so straight-line regions, branchy
// inner loops and counted loops all run without returning to the generic
// dispatch loop. One op array at a time executes under the inline switch at
// run:, with the phase's static accounting batch-committed beforehand and
// rolled back on the cold fault/exit paths. It returns the next generic pc
// or the function's return value (done=true).
func (e *Engine) runFused(fn *Fn, q *quickFn, v int32, regs []uint64) (int, uint64, bool, error) {
	st := e.st
	cm := e.cm
	var (
		s    *qseg
		lp   *qloop
		ops  []op
		rbI  []uint64
		rbC  []uint64
		rbS  []uint64
		xrbI uint64
		xrbC uint64
		xrbS uint64

		after uint8
		pc    int32
		nv    int32
		i     int
		o     *op
	)

unit: // v is a fused unit whose entry condition holds
	if v >= 0 {
		s = &q.segs[v]
		e.steps += s.steps
		e.intrCountdown -= s.steps
		if s.fast {
			g := &s.groups[0]
			st.Instrs += g.instrs + s.tailInstrs
			st.Cost += g.cost + s.tailCost
			ops, rbI, rbC, rbS = g.ops, g.rbInstrs, g.rbCost, g.rbSteps
			xrbI, xrbC, xrbS = s.tailInstrs, s.tailCost, s.tailSteps
			after = afterSeg
			goto run
		}
		// Recording segments: exact group-at-a-time execution, tail after.
		for gi := range s.groups {
			if err := e.runGroup(fn, &s.groups[gi], regs); err != nil {
				return 0, 0, false, err
			}
		}
		st.Instrs += s.tailInstrs
		st.Cost += s.tailCost
		goto segTerm
	}
	lp = &q.loops[loopIdx(v)]
	if !lp.fast {
		// Recording loops: the exact per-iteration path.
		npc, err := e.runLoop(fn, lp, regs)
		if err != nil {
			return 0, 0, false, err
		}
		pc = int32(npc)
		goto advance
	}

iter: // one fast loop iteration: commit the whole iteration, then run
	e.steps += lp.iterSteps
	e.intrCountdown -= lp.iterSteps
	st.Instrs += lp.iterInstrs
	st.Cost += lp.iterCost
	ops, rbI, rbC, rbS = lp.hdrOps, lp.hdrRbI, lp.hdrRbC, lp.hdrRbS
	xrbI, xrbC, xrbS = lp.hdrXrbI, lp.hdrXrbC, 0
	after = afterHdr

run:
	for i = 0; i < len(ops); i++ {
		o = &ops[i]
		switch o.code {
		case opAdd:
			regs[o.dst] = (regs[o.a] + regs[o.b]) & o.imm
		case opSub:
			regs[o.dst] = (regs[o.a] - regs[o.b]) & o.imm
		case opMul:
			regs[o.dst] = (regs[o.a] * regs[o.b]) & o.imm
		case opSDiv, opSRem:
			a := sext(regs[o.a], o.wbits)
			b := sext(regs[o.b], o.wbits)
			if b == 0 {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, e.rte(0, o.instr, "integer division by zero"))
			}
			var r int64
			if o.code == opSDiv {
				r = a / b
			} else {
				r = a % b
			}
			regs[o.dst] = uint64(r) & o.imm
		case opUDiv, opURem:
			a := regs[o.a] & o.imm
			b := regs[o.b] & o.imm
			if b == 0 {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, e.rte(0, o.instr, "integer division by zero"))
			}
			if o.code == opUDiv {
				regs[o.dst] = (a / b) & o.imm
			} else {
				regs[o.dst] = (a % b) & o.imm
			}
		case opAnd:
			regs[o.dst] = (regs[o.a] & regs[o.b]) & o.imm
		case opOr:
			regs[o.dst] = (regs[o.a] | regs[o.b]) & o.imm
		case opXor:
			regs[o.dst] = (regs[o.a] ^ regs[o.b]) & o.imm
		case opShl:
			sh := regs[o.b] & uint64(o.x)
			regs[o.dst] = (regs[o.a] << sh) & o.imm
		case opLShr:
			sh := regs[o.b] & uint64(o.x)
			regs[o.dst] = (regs[o.a] & o.imm) >> sh
		case opAShr:
			sh := regs[o.b] & uint64(o.x)
			regs[o.dst] = uint64(sext(regs[o.a], o.wbits)>>sh) & o.imm

		case opFAdd:
			regs[o.dst] = fbits(uint64(o.wbits), ffrom(o.wbits, regs[o.a])+ffrom(o.wbits, regs[o.b]))
		case opFSub:
			regs[o.dst] = fbits(uint64(o.wbits), ffrom(o.wbits, regs[o.a])-ffrom(o.wbits, regs[o.b]))
		case opFMul:
			regs[o.dst] = fbits(uint64(o.wbits), ffrom(o.wbits, regs[o.a])*ffrom(o.wbits, regs[o.b]))
		case opFDiv:
			regs[o.dst] = fbits(uint64(o.wbits), ffrom(o.wbits, regs[o.a])/ffrom(o.wbits, regs[o.b]))

		case opEQ:
			regs[o.dst] = b2u(regs[o.a]&o.imm == regs[o.b]&o.imm)
		case opNE:
			regs[o.dst] = b2u(regs[o.a]&o.imm != regs[o.b]&o.imm)
		case opSLT:
			regs[o.dst] = b2u(sext(regs[o.a], o.wbits) < sext(regs[o.b], o.wbits))
		case opSLE:
			regs[o.dst] = b2u(sext(regs[o.a], o.wbits) <= sext(regs[o.b], o.wbits))
		case opSGT:
			regs[o.dst] = b2u(sext(regs[o.a], o.wbits) > sext(regs[o.b], o.wbits))
		case opSGE:
			regs[o.dst] = b2u(sext(regs[o.a], o.wbits) >= sext(regs[o.b], o.wbits))
		case opULT:
			regs[o.dst] = b2u(regs[o.a]&o.imm < regs[o.b]&o.imm)
		case opULE:
			regs[o.dst] = b2u(regs[o.a]&o.imm <= regs[o.b]&o.imm)
		case opUGT:
			regs[o.dst] = b2u(regs[o.a]&o.imm > regs[o.b]&o.imm)
		case opUGE:
			regs[o.dst] = b2u(regs[o.a]&o.imm >= regs[o.b]&o.imm)

		case opFOEQ:
			regs[o.dst] = b2u(ffrom(o.wbits, regs[o.a]) == ffrom(o.wbits, regs[o.b]))
		case opFONE:
			regs[o.dst] = b2u(ffrom(o.wbits, regs[o.a]) != ffrom(o.wbits, regs[o.b]))
		case opFOLT:
			regs[o.dst] = b2u(ffrom(o.wbits, regs[o.a]) < ffrom(o.wbits, regs[o.b]))
		case opFOLE:
			regs[o.dst] = b2u(ffrom(o.wbits, regs[o.a]) <= ffrom(o.wbits, regs[o.b]))
		case opFOGT:
			regs[o.dst] = b2u(ffrom(o.wbits, regs[o.a]) > ffrom(o.wbits, regs[o.b]))
		case opFOGE:
			regs[o.dst] = b2u(ffrom(o.wbits, regs[o.a]) >= ffrom(o.wbits, regs[o.b]))

		case opTrunc:
			regs[o.dst] = regs[o.a] & o.imm
		case opSExt:
			regs[o.dst] = uint64(sext(regs[o.a], o.wbits)) & o.imm
		case opFPCvt:
			regs[o.dst] = fbits(o.imm, ffrom(o.wbits, regs[o.a]))
		case opFPToSI:
			regs[o.dst] = uint64(int64(ffrom(o.wbits, regs[o.a]))) & o.imm
		case opSIToFP:
			regs[o.dst] = fbits(o.imm, float64(sext(regs[o.a], o.wbits)))
		case opMove:
			regs[o.dst] = regs[o.a]

		// Quickened address computations. opQGEPRC folds one scaled register
		// index plus a constant offset; opQGEPC is a pure constant offset.
		case opQGEPC:
			regs[o.dst] = regs[o.a] + o.imm
		case opQGEPRC:
			regs[o.dst] = regs[o.a] + uint64(sext(regs[o.b], o.wbits)*int64(o.imm)) + uint64(int64(o.x))
		case opGEP:
			pl := &fn.geps[o.x]
			addr := regs[o.a]
			for i := range pl.steps {
				s := &pl.steps[i]
				if s.reg < 0 {
					addr += uint64(s.off)
				} else {
					addr += uint64(sext(regs[s.reg], s.sh) * s.scale)
				}
			}
			regs[o.dst] = addr
		case opGEPDyn:
			pl := &fn.gepDyns[o.x]
			addr := regs[o.a]
			ty := pl.srcTy
			for i := range pl.idx {
				idx := sext(regs[pl.idx[i].reg], pl.idx[i].sh)
				if i == 0 {
					addr += uint64(idx * int64(ty.Size()))
					continue
				}
				switch ty.Kind {
				case ir.ArrayKind:
					ty = ty.Elem
					addr += uint64(idx * int64(ty.Size()))
				case ir.StructKind:
					addr += uint64(ty.FieldOffset(int(idx)))
					ty = ty.Fields[idx]
				}
			}
			regs[o.dst] = addr

		case opSelect:
			if regs[o.a] != 0 {
				regs[o.dst] = regs[o.b]
			} else {
				regs[o.dst] = regs[o.c]
			}

		// Quickened loads/stores: the page-hit fast path of Engine.load is
		// inlined per width; misses and page-straddling accesses fall back
		// to the generic helpers with their exact fault semantics.
		case opLoad: // non-power-of-two width: generic path
			x, err := e.qload(regs[o.a], o.wbits)
			if err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Loads++
			regs[o.dst] = x
		case opStore:
			if err := e.qstore(regs[o.b], o.wbits, regs[o.a]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Stores++

		// Micro-fused address+access: one op computes base + scaled index +
		// offset (still written to the GEP's register, c, for later uses)
		// and performs the access.
		case opAlloca, opAllocaRec:
			count := uint64(1)
			if o.a >= 0 {
				count = regs[o.a]
			}
			size := o.imm * count
			if size == 0 {
				size = 1
			}
			if e.lfStack {
				addr, lowFat, err := e.vm.LF.StackAlloc(size)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				if !lowFat {
					*e.fb = append(*e.fb, addr)
				}
				if o.code == opAllocaRec {
					e.vm.TrackAlloc(addr, size, o.instr.AllocSite)
				}
				regs[o.dst] = addr
			} else {
				align := uint64(o.x)
				nsp := (e.vm.StackPointer() - size) &^ (align - 1)
				if nsp < mem.StackLimit {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, e.rte(0, o.instr, "stack overflow"))
				}
				e.vm.SetStackPointer(nsp)
				if o.code == opAllocaRec {
					e.vm.TrackAlloc(nsp, size, o.instr.AllocSite)
				}
				regs[o.dst] = nsp
			}

		case opSBLoadBase:
			st.MetaLoads++
			st.Cost += cm.SBMetaLoad
			b, _ := e.vm.Trie.Lookup(regs[o.a])
			if o.dst >= 0 {
				regs[o.dst] = b.Base
			}
		case opSBLoadBound:
			st.MetaLoads++
			st.Cost += cm.SBMetaLoad
			b, _ := e.vm.Trie.Lookup(regs[o.a])
			if o.dst >= 0 {
				regs[o.dst] = b.Bound
			}
		case opSBStoreMD:
			st.MetaStores++
			st.Cost += cm.SBMetaStore
			e.vm.Trie.Store(regs[o.a], softbound.Bounds{Base: regs[o.b], Bound: regs[o.c]})
		case opSBStoreMDProf:
			st.MetaStores++
			st.Cost += cm.SBMetaStore
			e.bumpSite(o.imm, false, cm.SBMetaStore)
			e.vm.Trie.Store(regs[o.a], softbound.Bounds{Base: regs[o.b], Bound: regs[o.c]})
		case opLFBase:
			st.Cost += cm.LFBase
			if o.dst >= 0 {
				regs[o.dst] = lowfat.Base(regs[o.a])
			}

		case opSBCheck:
			if err := e.sbCheck(st, cm, regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
		case opLFCheck:
			if err := lfCheck(st, cm, regs[o.a], regs[o.b], regs[o.c]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
		case opLFCheckInv:
			ptr, base := regs[o.a], regs[o.b]
			st.InvariantChecks++
			st.Cost += cm.LFCheck
			ok, wide := lowfat.Check(ptr, 1, base)
			if !ok && !wide {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, &vm.ViolationError{Mechanism: "lowfat", Kind: "invariant", Ptr: ptr,
					Detail: fmt.Sprintf("escaping pointer is outside its object at base %#x (size %d)", base, lowfat.AllocSize(lowfat.RegionIndex(base)))})
			}
		case opSBCheckProf:
			if err := e.sbCheckProf(st, cm, o.imm, regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
		case opLFCheckProf:
			if err := e.lfCheckProf(st, cm, o.imm, regs[o.a], regs[o.b], regs[o.c]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
		case opLFCheckInvProf:
			ptr, base := regs[o.a], regs[o.b]
			st.InvariantChecks++
			st.Cost += cm.LFCheck
			e.bumpSite(o.imm, false, cm.LFCheck)
			ok, wide := lowfat.Check(ptr, 1, base)
			if !ok && !wide {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, &vm.ViolationError{Mechanism: "lowfat", Kind: "invariant", Ptr: ptr,
					Detail: fmt.Sprintf("escaping pointer is outside its object at base %#x (size %d)", base, lowfat.AllocSize(lowfat.RegionIndex(base)))})
			}

		case opSBCheckRange:
			if _, err := vm.SBCheckRangeOp(st, cm, regs[o.a], regs[o.b], regs[o.x], regs[o.c], regs[o.d], regs[o.dst]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
		case opLFCheckRange:
			if _, err := vm.LFCheckRangeOp(st, cm, regs[o.a], regs[o.b], regs[o.x], regs[o.c], regs[o.dst]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
		case opSBCheckRangeProf:
			wide, err := vm.SBCheckRangeOp(st, cm, regs[o.a], regs[o.b], regs[o.x], regs[o.c], regs[o.d], regs[o.dst])
			e.bumpSite(o.imm, wide, cm.SBCheck)
			if err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
		case opLFCheckRangeProf:
			wide, err := vm.LFCheckRangeOp(st, cm, regs[o.a], regs[o.b], regs[o.x], regs[o.c], regs[o.dst])
			e.bumpSite(o.imm, wide, cm.LFCheck)
			if err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}

		// Fused check+access: the access half's step/instruction/cost
		// accounting is part of the group's static commit, so only the
		// check, the access, and the Loads/Stores counters remain.
		case opSBCheckLoad:
			if err := e.sbCheck(st, cm, regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Instrs++
			st.Cost += fn.aux[o.x].cost2
			x, err := e.qload(regs[o.a], o.wbits)
			if err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Loads++
			regs[o.dst] = x
		case opSBCheckStore:
			if err := e.sbCheck(st, cm, regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Instrs++
			st.Cost += fn.aux[o.x].cost2
			if err := e.qstore(regs[o.a], o.wbits, regs[o.dst]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Stores++
		case opLFCheckLoad:
			if err := lfCheck(st, cm, regs[o.a], regs[o.b], regs[o.c]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Instrs++
			st.Cost += fn.aux[o.x].cost2
			x, err := e.qload(regs[o.a], o.wbits)
			if err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Loads++
			regs[o.dst] = x
		case opLFCheckStore:
			if err := lfCheck(st, cm, regs[o.a], regs[o.b], regs[o.c]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Instrs++
			st.Cost += fn.aux[o.x].cost2
			if err := e.qstore(regs[o.a], o.wbits, regs[o.dst]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Stores++
		case opSBCheckLoadProf:
			if err := e.sbCheckProf(st, cm, o.imm, regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Instrs++
			st.Cost += fn.aux[o.x].cost2
			x, err := e.qload(regs[o.a], o.wbits)
			if err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Loads++
			regs[o.dst] = x
		case opSBCheckStoreProf:
			if err := e.sbCheckProf(st, cm, o.imm, regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Instrs++
			st.Cost += fn.aux[o.x].cost2
			if err := e.qstore(regs[o.a], o.wbits, regs[o.dst]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Stores++
		case opLFCheckLoadProf:
			if err := e.lfCheckProf(st, cm, o.imm, regs[o.a], regs[o.b], regs[o.c]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Instrs++
			st.Cost += fn.aux[o.x].cost2
			x, err := e.qload(regs[o.a], o.wbits)
			if err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Loads++
			regs[o.dst] = x
		case opLFCheckStoreProf:
			if err := e.lfCheckProf(st, cm, o.imm, regs[o.a], regs[o.b], regs[o.c]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Instrs++
			st.Cost += fn.aux[o.x].cost2
			if err := e.qstore(regs[o.a], o.wbits, regs[o.dst]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Stores++

		case opSBStoreMDRec:
			e.vm.SBStoreMDRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.c])
		case opSBCheckRec:
			if err := e.vm.SBCheckRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
		case opLFCheckRec:
			if err := e.vm.LFCheckRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.c]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
		case opLFCheckInvRec:
			if err := e.vm.LFCheckInvRec(int32(o.imm), regs[o.a], regs[o.b]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
		case opSBCheckRangeRec:
			if err := e.vm.SBCheckRangeRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.x], regs[o.c], regs[o.d], regs[o.dst]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
		case opLFCheckRangeRec:
			if err := e.vm.LFCheckRangeRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.x], regs[o.c], regs[o.dst]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
		case opSBCheckLoadRec:
			if err := e.vm.SBCheckRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Instrs++
			st.Cost += fn.aux[o.x].cost2
			x, err := e.qload(regs[o.a], o.wbits)
			if err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Loads++
			regs[o.dst] = x
		case opSBCheckStoreRec:
			if err := e.vm.SBCheckRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Instrs++
			st.Cost += fn.aux[o.x].cost2
			if err := e.qstore(regs[o.a], o.wbits, regs[o.dst]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Stores++
		case opLFCheckLoadRec:
			if err := e.vm.LFCheckRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.c]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Instrs++
			st.Cost += fn.aux[o.x].cost2
			x, err := e.qload(regs[o.a], o.wbits)
			if err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Loads++
			regs[o.dst] = x
		case opLFCheckStoreRec:
			if err := e.vm.LFCheckRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.c]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Instrs++
			st.Cost += fn.aux[o.x].cost2
			if err := e.qstore(regs[o.a], o.wbits, regs[o.dst]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Stores++

		case opSBSSAlloc:
			st.ShadowOps++
			st.Cost += cm.SBShadowOp
			e.vm.Shadow.AllocateFrame(int(regs[o.a]))
		case opSBSSSetArg:
			st.ShadowOps++
			st.Cost += cm.SBShadowOp
			e.vm.Shadow.SetArg(int(regs[o.a]), softbound.Bounds{Base: regs[o.b], Bound: regs[o.c]})
		case opSBSSArgBase:
			st.ShadowOps++
			st.Cost += cm.SBShadowOp
			if o.dst >= 0 {
				regs[o.dst] = e.vm.Shadow.Arg(int(regs[o.a])).Base
			} else {
				_ = e.vm.Shadow.Arg(int(regs[o.a]))
			}
		case opSBSSArgBound:
			st.ShadowOps++
			st.Cost += cm.SBShadowOp
			if o.dst >= 0 {
				regs[o.dst] = e.vm.Shadow.Arg(int(regs[o.a])).Bound
			} else {
				_ = e.vm.Shadow.Arg(int(regs[o.a]))
			}
		case opSBSSSetRet:
			st.ShadowOps++
			st.Cost += cm.SBShadowOp
			e.vm.Shadow.SetRet(softbound.Bounds{Base: regs[o.a], Bound: regs[o.b]})
		case opSBSSRetBase:
			st.ShadowOps++
			st.Cost += cm.SBShadowOp
			if o.dst >= 0 {
				regs[o.dst] = e.vm.Shadow.Ret().Base
			}
		case opSBSSRetBound:
			st.ShadowOps++
			st.Cost += cm.SBShadowOp
			if o.dst >= 0 {
				regs[o.dst] = e.vm.Shadow.Ret().Bound
			}
		case opSBSSPop:
			st.ShadowOps++
			st.Cost += cm.SBShadowOp
			e.vm.Shadow.PopFrame()

		// Quickened loads/stores, one case per width: the multi-way page
		// cache hit is fully inlined; misses and page-straddling accesses
		// take the exact slow path (which also fills the cache).
		case opQLoad8:
			addr := regs[o.a]
			if d := e.qpageFor(addr, 1); d != nil {
				regs[o.dst] = uint64(d[0])
			} else {
				x, err := e.qload(addr, 1)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				regs[o.dst] = x
			}
			st.Loads++
		case opQLoad16:
			addr := regs[o.a]
			if d := e.qpageFor(addr, 2); d != nil {
				regs[o.dst] = uint64(binary.LittleEndian.Uint16(d))
			} else {
				x, err := e.qload(addr, 2)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				regs[o.dst] = x
			}
			st.Loads++
		case opQLoad32:
			addr := regs[o.a]
			if d := e.qpageFor(addr, 4); d != nil {
				regs[o.dst] = uint64(binary.LittleEndian.Uint32(d))
			} else {
				x, err := e.qload(addr, 4)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				regs[o.dst] = x
			}
			st.Loads++
		case opQLoad64:
			addr := regs[o.a]
			if d := e.qpageFor(addr, 8); d != nil {
				regs[o.dst] = binary.LittleEndian.Uint64(d)
			} else {
				x, err := e.qload(addr, 8)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				regs[o.dst] = x
			}
			st.Loads++
		case opQStore8:
			addr := regs[o.b]
			if d := e.qpageFor(addr, 1); d != nil {
				d[0] = byte(regs[o.a])
			} else if err := e.qstore(addr, 1, regs[o.a]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Stores++
		case opQStore16:
			addr := regs[o.b]
			if d := e.qpageFor(addr, 2); d != nil {
				binary.LittleEndian.PutUint16(d, uint16(regs[o.a]))
			} else if err := e.qstore(addr, 2, regs[o.a]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Stores++
		case opQStore32:
			addr := regs[o.b]
			if d := e.qpageFor(addr, 4); d != nil {
				binary.LittleEndian.PutUint32(d, uint32(regs[o.a]))
			} else if err := e.qstore(addr, 4, regs[o.a]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Stores++
		case opQStore64:
			addr := regs[o.b]
			if d := e.qpageFor(addr, 8); d != nil {
				binary.LittleEndian.PutUint64(d, regs[o.a])
			} else if err := e.qstore(addr, 8, regs[o.a]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Stores++

		// Micro-fused address+access, one case per width. The address still
		// lands in the GEP result register (c) for later uses.
		case opQLoadIdx8:
			addr := regs[o.a] + uint64(sext(regs[o.b], o.wbits)*int64(o.imm)) + uint64(int64(o.x))
			regs[o.c] = addr
			if d := e.qpageFor(addr, 1); d != nil {
				regs[o.dst] = uint64(d[0])
			} else {
				x, err := e.qload(addr, 1)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				regs[o.dst] = x
			}
			st.Loads++
		case opQLoadIdx16:
			addr := regs[o.a] + uint64(sext(regs[o.b], o.wbits)*int64(o.imm)) + uint64(int64(o.x))
			regs[o.c] = addr
			if d := e.qpageFor(addr, 2); d != nil {
				regs[o.dst] = uint64(binary.LittleEndian.Uint16(d))
			} else {
				x, err := e.qload(addr, 2)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				regs[o.dst] = x
			}
			st.Loads++
		case opQLoadIdx32:
			addr := regs[o.a] + uint64(sext(regs[o.b], o.wbits)*int64(o.imm)) + uint64(int64(o.x))
			regs[o.c] = addr
			if d := e.qpageFor(addr, 4); d != nil {
				regs[o.dst] = uint64(binary.LittleEndian.Uint32(d))
			} else {
				x, err := e.qload(addr, 4)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				regs[o.dst] = x
			}
			st.Loads++
		case opQLoadIdx64:
			addr := regs[o.a] + uint64(sext(regs[o.b], o.wbits)*int64(o.imm)) + uint64(int64(o.x))
			regs[o.c] = addr
			if d := e.qpageFor(addr, 8); d != nil {
				regs[o.dst] = binary.LittleEndian.Uint64(d)
			} else {
				x, err := e.qload(addr, 8)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				regs[o.dst] = x
			}
			st.Loads++
		case opQStoreIdx8:
			addr := regs[o.a] + uint64(sext(regs[o.b], o.wbits)*int64(o.imm)) + uint64(int64(o.x))
			regs[o.c] = addr
			if d := e.qpageFor(addr, 1); d != nil {
				d[0] = byte(regs[o.dst])
			} else if err := e.qstore(addr, 1, regs[o.dst]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Stores++
		case opQStoreIdx16:
			addr := regs[o.a] + uint64(sext(regs[o.b], o.wbits)*int64(o.imm)) + uint64(int64(o.x))
			regs[o.c] = addr
			if d := e.qpageFor(addr, 2); d != nil {
				binary.LittleEndian.PutUint16(d, uint16(regs[o.dst]))
			} else if err := e.qstore(addr, 2, regs[o.dst]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Stores++
		case opQStoreIdx32:
			addr := regs[o.a] + uint64(sext(regs[o.b], o.wbits)*int64(o.imm)) + uint64(int64(o.x))
			regs[o.c] = addr
			if d := e.qpageFor(addr, 4); d != nil {
				binary.LittleEndian.PutUint32(d, uint32(regs[o.dst]))
			} else if err := e.qstore(addr, 4, regs[o.dst]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Stores++
		case opQStoreIdx64:
			addr := regs[o.a] + uint64(sext(regs[o.b], o.wbits)*int64(o.imm)) + uint64(int64(o.x))
			regs[o.c] = addr
			if d := e.qpageFor(addr, 8); d != nil {
				binary.LittleEndian.PutUint64(d, regs[o.dst])
			} else if err := e.qstore(addr, 8, regs[o.dst]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Stores++
		case opQLoadOff8:
			addr := regs[o.a] + o.imm
			regs[o.c] = addr
			if d := e.qpageFor(addr, 1); d != nil {
				regs[o.dst] = uint64(d[0])
			} else {
				x, err := e.qload(addr, 1)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				regs[o.dst] = x
			}
			st.Loads++
		case opQLoadOff16:
			addr := regs[o.a] + o.imm
			regs[o.c] = addr
			if d := e.qpageFor(addr, 2); d != nil {
				regs[o.dst] = uint64(binary.LittleEndian.Uint16(d))
			} else {
				x, err := e.qload(addr, 2)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				regs[o.dst] = x
			}
			st.Loads++
		case opQLoadOff32:
			addr := regs[o.a] + o.imm
			regs[o.c] = addr
			if d := e.qpageFor(addr, 4); d != nil {
				regs[o.dst] = uint64(binary.LittleEndian.Uint32(d))
			} else {
				x, err := e.qload(addr, 4)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				regs[o.dst] = x
			}
			st.Loads++
		case opQLoadOff64:
			addr := regs[o.a] + o.imm
			regs[o.c] = addr
			if d := e.qpageFor(addr, 8); d != nil {
				regs[o.dst] = binary.LittleEndian.Uint64(d)
			} else {
				x, err := e.qload(addr, 8)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				regs[o.dst] = x
			}
			st.Loads++
		case opQStoreOff8:
			addr := regs[o.a] + o.imm
			regs[o.c] = addr
			if d := e.qpageFor(addr, 1); d != nil {
				d[0] = byte(regs[o.dst])
			} else if err := e.qstore(addr, 1, regs[o.dst]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Stores++
		case opQStoreOff16:
			addr := regs[o.a] + o.imm
			regs[o.c] = addr
			if d := e.qpageFor(addr, 2); d != nil {
				binary.LittleEndian.PutUint16(d, uint16(regs[o.dst]))
			} else if err := e.qstore(addr, 2, regs[o.dst]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Stores++
		case opQStoreOff32:
			addr := regs[o.a] + o.imm
			regs[o.c] = addr
			if d := e.qpageFor(addr, 4); d != nil {
				binary.LittleEndian.PutUint32(d, uint32(regs[o.dst]))
			} else if err := e.qstore(addr, 4, regs[o.dst]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Stores++
		case opQStoreOff64:
			addr := regs[o.a] + o.imm
			regs[o.c] = addr
			if d := e.qpageFor(addr, 8); d != nil {
				binary.LittleEndian.PutUint64(d, regs[o.dst])
			} else if err := e.qstore(addr, 8, regs[o.dst]); err != nil {
				return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
			}
			st.Stores++

		case opPhiCopy:
			// In-stream phi-copy stub of a trace: the parallel copy runs
			// here, mid-trace; its instruction accounting is static.
			{
				pl := &fn.phis[o.x]
				buf := e.phibuf[:0]
				for _, r := range pl.srcs {
					buf = append(buf, regs[r])
				}
				e.phibuf = buf
				for j, d := range pl.dsts {
					regs[d] = buf[j]
				}
			}
		case opTExit:
			if (regs[o.a] != 0) != (o.x != 0) {
				// The branch leaves the trace: the pre-committed suffix
				// (everything after this slot, plus the tail) never runs.
				st.Instrs -= rbI[i] + xrbI
				st.Cost -= rbC[i] + xrbC
				rs := rbS[i] + xrbS
				e.steps -= rs
				e.intrCountdown += rs
				pc = o.b
				goto advance
			}
		// BEGIN GENERATED PAIR CASES
		case opF_SLT_TExit: // SLT ; TExit
			{
				regs[o.dst] = b2u(sext(regs[o.a], o.wbits) < sext(regs[o.b], o.wbits))
			}
			{
				o2 := &ops[i+1]
				if (regs[o2.a] != 0) != (o2.x != 0) {
					st.Instrs -= rbI[i+1] + xrbI
					st.Cost -= rbC[i+1] + xrbC
					rs := rbS[i+1] + xrbS
					e.steps -= rs
					e.intrCountdown += rs
					pc = o2.b
					goto advance
				}
			}
			i++
		case opF_Add_SExt: // Add ; SExt
			{
				regs[o.dst] = (regs[o.a] + regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = uint64(sext(regs[o2.a], o2.wbits)) & o2.imm
			}
			i++
		case opF_QGEPRC_SBCheckLoad: // QGEPRC ; SBCheckLoad
			{
				regs[o.dst] = regs[o.a] + uint64(sext(regs[o.b], o.wbits)*int64(o.imm)) + uint64(int64(o.x))
			}
			{
				o2 := &ops[i+1]
				if err := e.sbCheck(st, cm, regs[o2.a], regs[o2.b], regs[o2.c], regs[o2.d]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i+1]+xrbI, rbC[i+1]+xrbC, err)
				}
				st.Instrs++
				st.Cost += fn.aux[o2.x].cost2
				x, err := e.qload(regs[o2.a], o2.wbits)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i+1]+xrbI, rbC[i+1]+xrbC, err)
				}
				st.Loads++
				regs[o2.dst] = x
			}
			i++
		case opF_QGEPRC_LFCheckLoad: // QGEPRC ; LFCheckLoad
			{
				regs[o.dst] = regs[o.a] + uint64(sext(regs[o.b], o.wbits)*int64(o.imm)) + uint64(int64(o.x))
			}
			{
				o2 := &ops[i+1]
				if err := lfCheck(st, cm, regs[o2.a], regs[o2.b], regs[o2.c]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i+1]+xrbI, rbC[i+1]+xrbC, err)
				}
				st.Instrs++
				st.Cost += fn.aux[o2.x].cost2
				x, err := e.qload(regs[o2.a], o2.wbits)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i+1]+xrbI, rbC[i+1]+xrbC, err)
				}
				st.Loads++
				regs[o2.dst] = x
			}
			i++
		case opF_PhiCopy_SLT: // PhiCopy ; SLT
			{
				{
					pl := &fn.phis[o.x]
					buf := e.phibuf[:0]
					for _, r := range pl.srcs {
						buf = append(buf, regs[r])
					}
					e.phibuf = buf
					for j, d := range pl.dsts {
						regs[d] = buf[j]
					}
				}
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = b2u(sext(regs[o2.a], o2.wbits) < sext(regs[o2.b], o2.wbits))
			}
			i++
		case opF_Add_PhiCopy: // Add ; PhiCopy
			{
				regs[o.dst] = (regs[o.a] + regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				{
					pl := &fn.phis[o2.x]
					buf := e.phibuf[:0]
					for _, r := range pl.srcs {
						buf = append(buf, regs[r])
					}
					e.phibuf = buf
					for j, d := range pl.dsts {
						regs[d] = buf[j]
					}
				}
			}
			i++
		case opF_TExit_PhiCopy: // TExit ; PhiCopy
			{
				if (regs[o.a] != 0) != (o.x != 0) {
					st.Instrs -= rbI[i] + xrbI
					st.Cost -= rbC[i] + xrbC
					rs := rbS[i] + xrbS
					e.steps -= rs
					e.intrCountdown += rs
					pc = o.b
					goto advance
				}
			}
			{
				o2 := &ops[i+1]
				{
					pl := &fn.phis[o2.x]
					buf := e.phibuf[:0]
					for _, r := range pl.srcs {
						buf = append(buf, regs[r])
					}
					e.phibuf = buf
					for j, d := range pl.dsts {
						regs[d] = buf[j]
					}
				}
			}
			i++
		case opF_NE_TExit: // NE ; TExit
			{
				regs[o.dst] = b2u(regs[o.a]&o.imm != regs[o.b]&o.imm)
			}
			{
				o2 := &ops[i+1]
				if (regs[o2.a] != 0) != (o2.x != 0) {
					st.Instrs -= rbI[i+1] + xrbI
					st.Cost -= rbC[i+1] + xrbC
					rs := rbS[i+1] + xrbS
					e.steps -= rs
					e.intrCountdown += rs
					pc = o2.b
					goto advance
				}
			}
			i++
		case opF_PhiCopy_Add: // PhiCopy ; Add
			{
				{
					pl := &fn.phis[o.x]
					buf := e.phibuf[:0]
					for _, r := range pl.srcs {
						buf = append(buf, regs[r])
					}
					e.phibuf = buf
					for j, d := range pl.dsts {
						regs[d] = buf[j]
					}
				}
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] + regs[o2.b]) & o2.imm
			}
			i++
		case opF_TExit_SExt: // TExit ; SExt
			{
				if (regs[o.a] != 0) != (o.x != 0) {
					st.Instrs -= rbI[i] + xrbI
					st.Cost -= rbC[i] + xrbC
					rs := rbS[i] + xrbS
					e.steps -= rs
					e.intrCountdown += rs
					pc = o.b
					goto advance
				}
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = uint64(sext(regs[o2.a], o2.wbits)) & o2.imm
			}
			i++
		case opF_SGT_TExit: // SGT ; TExit
			{
				regs[o.dst] = b2u(sext(regs[o.a], o.wbits) > sext(regs[o.b], o.wbits))
			}
			{
				o2 := &ops[i+1]
				if (regs[o2.a] != 0) != (o2.x != 0) {
					st.Instrs -= rbI[i+1] + xrbI
					st.Cost -= rbC[i+1] + xrbC
					rs := rbS[i+1] + xrbS
					e.steps -= rs
					e.intrCountdown += rs
					pc = o2.b
					goto advance
				}
			}
			i++
		case opF_TExit_Sub: // TExit ; Sub
			{
				if (regs[o.a] != 0) != (o.x != 0) {
					st.Instrs -= rbI[i] + xrbI
					st.Cost -= rbC[i] + xrbC
					rs := rbS[i] + xrbS
					e.steps -= rs
					e.intrCountdown += rs
					pc = o.b
					goto advance
				}
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] - regs[o2.b]) & o2.imm
			}
			i++
		case opF_TExit_Add: // TExit ; Add
			{
				if (regs[o.a] != 0) != (o.x != 0) {
					st.Instrs -= rbI[i] + xrbI
					st.Cost -= rbC[i] + xrbC
					rs := rbS[i] + xrbS
					e.steps -= rs
					e.intrCountdown += rs
					pc = o.b
					goto advance
				}
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] + regs[o2.b]) & o2.imm
			}
			i++
		case opF_QLoad32_QLoad32: // QLoad32 ; QLoad32
			{
				addr := regs[o.a]
				if d := e.qpageFor(addr, 4); d != nil {
					regs[o.dst] = uint64(binary.LittleEndian.Uint32(d))
				} else {
					x, err := e.qload(addr, 4)
					if err != nil {
						return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
					}
					regs[o.dst] = x
				}
				st.Loads++
			}
			{
				o2 := &ops[i+1]
				addr := regs[o2.a]
				if d := e.qpageFor(addr, 4); d != nil {
					regs[o2.dst] = uint64(binary.LittleEndian.Uint32(d))
				} else {
					x, err := e.qload(addr, 4)
					if err != nil {
						return 0, 0, false, e.fusedFault(rbI[i+1]+xrbI, rbC[i+1]+xrbC, err)
					}
					regs[o2.dst] = x
				}
				st.Loads++
			}
			i++
		case opF_FSub_FMul: // FSub ; FMul
			{
				regs[o.dst] = fbits(uint64(o.wbits), ffrom(o.wbits, regs[o.a])-ffrom(o.wbits, regs[o.b]))
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = fbits(uint64(o2.wbits), ffrom(o2.wbits, regs[o2.a])*ffrom(o2.wbits, regs[o2.b]))
			}
			i++
		case opF_And_Add: // And ; Add
			{
				regs[o.dst] = (regs[o.a] & regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] + regs[o2.b]) & o2.imm
			}
			i++
		case opF_Trunc_NE: // Trunc ; NE
			{
				regs[o.dst] = regs[o.a] & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = b2u(regs[o2.a]&o2.imm != regs[o2.b]&o2.imm)
			}
			i++
		case opF_LFCheckLoad_Trunc: // LFCheckLoad ; Trunc
			{
				if err := lfCheck(st, cm, regs[o.a], regs[o.b], regs[o.c]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Instrs++
				st.Cost += fn.aux[o.x].cost2
				x, err := e.qload(regs[o.a], o.wbits)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Loads++
				regs[o.dst] = x
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = regs[o2.a] & o2.imm
			}
			i++
		case opF_SBCheckLoad_Trunc: // SBCheckLoad ; Trunc
			{
				if err := e.sbCheck(st, cm, regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Instrs++
				st.Cost += fn.aux[o.x].cost2
				x, err := e.qload(regs[o.a], o.wbits)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Loads++
				regs[o.dst] = x
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = regs[o2.a] & o2.imm
			}
			i++
		case opF_Sub_PhiCopy: // Sub ; PhiCopy
			{
				regs[o.dst] = (regs[o.a] - regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				{
					pl := &fn.phis[o2.x]
					buf := e.phibuf[:0]
					for _, r := range pl.srcs {
						buf = append(buf, regs[r])
					}
					e.phibuf = buf
					for j, d := range pl.dsts {
						regs[d] = buf[j]
					}
				}
			}
			i++
		case opF_QLoadIdx8_Trunc: // QLoadIdx8 ; Trunc
			{
				addr := regs[o.a] + uint64(sext(regs[o.b], o.wbits)*int64(o.imm)) + uint64(int64(o.x))
				regs[o.c] = addr
				if d := e.qpageFor(addr, 1); d != nil {
					regs[o.dst] = uint64(d[0])
				} else {
					x, err := e.qload(addr, 1)
					if err != nil {
						return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
					}
					regs[o.dst] = x
				}
				st.Loads++
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = regs[o2.a] & o2.imm
			}
			i++
		case opF_FMul_FSub: // FMul ; FSub
			{
				regs[o.dst] = fbits(uint64(o.wbits), ffrom(o.wbits, regs[o.a])*ffrom(o.wbits, regs[o.b]))
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = fbits(uint64(o2.wbits), ffrom(o2.wbits, regs[o2.a])-ffrom(o2.wbits, regs[o2.b]))
			}
			i++
		case opF_SExt_QLoadIdx8: // SExt ; QLoadIdx8
			{
				regs[o.dst] = uint64(sext(regs[o.a], o.wbits)) & o.imm
			}
			{
				o2 := &ops[i+1]
				addr := regs[o2.a] + uint64(sext(regs[o2.b], o2.wbits)*int64(o2.imm)) + uint64(int64(o2.x))
				regs[o2.c] = addr
				if d := e.qpageFor(addr, 1); d != nil {
					regs[o2.dst] = uint64(d[0])
				} else {
					x, err := e.qload(addr, 1)
					if err != nil {
						return 0, 0, false, e.fusedFault(rbI[i+1]+xrbI, rbC[i+1]+xrbC, err)
					}
					regs[o2.dst] = x
				}
				st.Loads++
			}
			i++
		case opF_Trunc_Add: // Trunc ; Add
			{
				regs[o.dst] = regs[o.a] & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] + regs[o2.b]) & o2.imm
			}
			i++
		case opF_SLE_TExit: // SLE ; TExit
			{
				regs[o.dst] = b2u(sext(regs[o.a], o.wbits) <= sext(regs[o.b], o.wbits))
			}
			{
				o2 := &ops[i+1]
				if (regs[o2.a] != 0) != (o2.x != 0) {
					st.Instrs -= rbI[i+1] + xrbI
					st.Cost -= rbC[i+1] + xrbC
					rs := rbS[i+1] + xrbS
					e.steps -= rs
					e.intrCountdown += rs
					pc = o2.b
					goto advance
				}
			}
			i++
		case opF_PhiCopy_SLE: // PhiCopy ; SLE
			{
				{
					pl := &fn.phis[o.x]
					buf := e.phibuf[:0]
					for _, r := range pl.srcs {
						buf = append(buf, regs[r])
					}
					e.phibuf = buf
					for j, d := range pl.dsts {
						regs[d] = buf[j]
					}
				}
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = b2u(sext(regs[o2.a], o2.wbits) <= sext(regs[o2.b], o2.wbits))
			}
			i++
		case opF_QGEPC_SBCheckLoad: // QGEPC ; SBCheckLoad
			{
				regs[o.dst] = regs[o.a] + o.imm
			}
			{
				o2 := &ops[i+1]
				if err := e.sbCheck(st, cm, regs[o2.a], regs[o2.b], regs[o2.c], regs[o2.d]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i+1]+xrbI, rbC[i+1]+xrbC, err)
				}
				st.Instrs++
				st.Cost += fn.aux[o2.x].cost2
				x, err := e.qload(regs[o2.a], o2.wbits)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i+1]+xrbI, rbC[i+1]+xrbC, err)
				}
				st.Loads++
				regs[o2.dst] = x
			}
			i++
		case opF_QGEPC_LFCheckLoad: // QGEPC ; LFCheckLoad
			{
				regs[o.dst] = regs[o.a] + o.imm
			}
			{
				o2 := &ops[i+1]
				if err := lfCheck(st, cm, regs[o2.a], regs[o2.b], regs[o2.c]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i+1]+xrbI, rbC[i+1]+xrbC, err)
				}
				st.Instrs++
				st.Cost += fn.aux[o2.x].cost2
				x, err := e.qload(regs[o2.a], o2.wbits)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i+1]+xrbI, rbC[i+1]+xrbC, err)
				}
				st.Loads++
				regs[o2.dst] = x
			}
			i++
		case opF_And_SExt: // And ; SExt
			{
				regs[o.dst] = (regs[o.a] & regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = uint64(sext(regs[o2.a], o2.wbits)) & o2.imm
			}
			i++
		case opF_Add_And: // Add ; And
			{
				regs[o.dst] = (regs[o.a] + regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] & regs[o2.b]) & o2.imm
			}
			i++
		case opF_FSub_FSub: // FSub ; FSub
			{
				regs[o.dst] = fbits(uint64(o.wbits), ffrom(o.wbits, regs[o.a])-ffrom(o.wbits, regs[o.b]))
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = fbits(uint64(o2.wbits), ffrom(o2.wbits, regs[o2.a])-ffrom(o2.wbits, regs[o2.b]))
			}
			i++
		case opF_TExit_And: // TExit ; And
			{
				if (regs[o.a] != 0) != (o.x != 0) {
					st.Instrs -= rbI[i] + xrbI
					st.Cost -= rbC[i] + xrbC
					rs := rbS[i] + xrbS
					e.steps -= rs
					e.intrCountdown += rs
					pc = o.b
					goto advance
				}
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] & regs[o2.b]) & o2.imm
			}
			i++
		case opF_LShr_And: // LShr ; And
			{
				sh := regs[o.b] & uint64(o.x)
				regs[o.dst] = (regs[o.a] & o.imm) >> sh
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] & regs[o2.b]) & o2.imm
			}
			i++
		case opF_Add_Add: // Add ; Add
			{
				regs[o.dst] = (regs[o.a] + regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] + regs[o2.b]) & o2.imm
			}
			i++
		case opF_And_QGEPRC: // And ; QGEPRC
			{
				regs[o.dst] = (regs[o.a] & regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = regs[o2.a] + uint64(sext(regs[o2.b], o2.wbits)*int64(o2.imm)) + uint64(int64(o2.x))
			}
			i++
		case opF_SBCheckLoad_Add: // SBCheckLoad ; Add
			{
				if err := e.sbCheck(st, cm, regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Instrs++
				st.Cost += fn.aux[o.x].cost2
				x, err := e.qload(regs[o.a], o.wbits)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Loads++
				regs[o.dst] = x
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] + regs[o2.b]) & o2.imm
			}
			i++
		case opF_LFCheckLoad_Add: // LFCheckLoad ; Add
			{
				if err := lfCheck(st, cm, regs[o.a], regs[o.b], regs[o.c]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Instrs++
				st.Cost += fn.aux[o.x].cost2
				x, err := e.qload(regs[o.a], o.wbits)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Loads++
				regs[o.dst] = x
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] + regs[o2.b]) & o2.imm
			}
			i++
		case opF_FMul_FAdd: // FMul ; FAdd
			{
				regs[o.dst] = fbits(uint64(o.wbits), ffrom(o.wbits, regs[o.a])*ffrom(o.wbits, regs[o.b]))
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = fbits(uint64(o2.wbits), ffrom(o2.wbits, regs[o2.a])+ffrom(o2.wbits, regs[o2.b]))
			}
			i++
		case opF_QGEPRC_SBCheckStore: // QGEPRC ; SBCheckStore
			{
				regs[o.dst] = regs[o.a] + uint64(sext(regs[o.b], o.wbits)*int64(o.imm)) + uint64(int64(o.x))
			}
			{
				o2 := &ops[i+1]
				if err := e.sbCheck(st, cm, regs[o2.a], regs[o2.b], regs[o2.c], regs[o2.d]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i+1]+xrbI, rbC[i+1]+xrbC, err)
				}
				st.Instrs++
				st.Cost += fn.aux[o2.x].cost2
				if err := e.qstore(regs[o2.a], o2.wbits, regs[o2.dst]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i+1]+xrbI, rbC[i+1]+xrbC, err)
				}
				st.Stores++
			}
			i++
		case opF_QGEPRC_LFCheckStore: // QGEPRC ; LFCheckStore
			{
				regs[o.dst] = regs[o.a] + uint64(sext(regs[o.b], o.wbits)*int64(o.imm)) + uint64(int64(o.x))
			}
			{
				o2 := &ops[i+1]
				if err := lfCheck(st, cm, regs[o2.a], regs[o2.b], regs[o2.c]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i+1]+xrbI, rbC[i+1]+xrbC, err)
				}
				st.Instrs++
				st.Cost += fn.aux[o2.x].cost2
				if err := e.qstore(regs[o2.a], o2.wbits, regs[o2.dst]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i+1]+xrbI, rbC[i+1]+xrbC, err)
				}
				st.Stores++
			}
			i++
		case opF_Sub_SLT: // Sub ; SLT
			{
				regs[o.dst] = (regs[o.a] - regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = b2u(sext(regs[o2.a], o2.wbits) < sext(regs[o2.b], o2.wbits))
			}
			i++
		case opF_PhiCopy_SGT: // PhiCopy ; SGT
			{
				{
					pl := &fn.phis[o.x]
					buf := e.phibuf[:0]
					for _, r := range pl.srcs {
						buf = append(buf, regs[r])
					}
					e.phibuf = buf
					for j, d := range pl.dsts {
						regs[d] = buf[j]
					}
				}
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = b2u(sext(regs[o2.a], o2.wbits) > sext(regs[o2.b], o2.wbits))
			}
			i++
		case opF_SBCheckStore_Add: // SBCheckStore ; Add
			{
				if err := e.sbCheck(st, cm, regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Instrs++
				st.Cost += fn.aux[o.x].cost2
				if err := e.qstore(regs[o.a], o.wbits, regs[o.dst]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Stores++
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] + regs[o2.b]) & o2.imm
			}
			i++
		case opF_LFCheckStore_Add: // LFCheckStore ; Add
			{
				if err := lfCheck(st, cm, regs[o.a], regs[o.b], regs[o.c]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Instrs++
				st.Cost += fn.aux[o.x].cost2
				if err := e.qstore(regs[o.a], o.wbits, regs[o.dst]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Stores++
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] + regs[o2.b]) & o2.imm
			}
			i++
		case opF_QGEPRC_QGEPC: // QGEPRC ; QGEPC
			{
				regs[o.dst] = regs[o.a] + uint64(sext(regs[o.b], o.wbits)*int64(o.imm)) + uint64(int64(o.x))
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = regs[o2.a] + o2.imm
			}
			i++
		case opF_Add_AShr: // Add ; AShr
			{
				regs[o.dst] = (regs[o.a] + regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				sh := regs[o2.b] & uint64(o2.x)
				regs[o2.dst] = uint64(sext(regs[o2.a], o2.wbits)>>sh) & o2.imm
			}
			i++
		case opF_Add_LShr: // Add ; LShr
			{
				regs[o.dst] = (regs[o.a] + regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				sh := regs[o2.b] & uint64(o2.x)
				regs[o2.dst] = (regs[o2.a] & o2.imm) >> sh
			}
			i++
		case opF_SExt_QLoadIdx32: // SExt ; QLoadIdx32
			{
				regs[o.dst] = uint64(sext(regs[o.a], o.wbits)) & o.imm
			}
			{
				o2 := &ops[i+1]
				addr := regs[o2.a] + uint64(sext(regs[o2.b], o2.wbits)*int64(o2.imm)) + uint64(int64(o2.x))
				regs[o2.c] = addr
				if d := e.qpageFor(addr, 4); d != nil {
					regs[o2.dst] = uint64(binary.LittleEndian.Uint32(d))
				} else {
					x, err := e.qload(addr, 4)
					if err != nil {
						return 0, 0, false, e.fusedFault(rbI[i+1]+xrbI, rbC[i+1]+xrbC, err)
					}
					regs[o2.dst] = x
				}
				st.Loads++
			}
			i++
		case opF_Sub_And: // Sub ; And
			{
				regs[o.dst] = (regs[o.a] - regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] & regs[o2.b]) & o2.imm
			}
			i++
		case opF_SGE_TExit: // SGE ; TExit
			{
				regs[o.dst] = b2u(sext(regs[o.a], o.wbits) >= sext(regs[o.b], o.wbits))
			}
			{
				o2 := &ops[i+1]
				if (regs[o2.a] != 0) != (o2.x != 0) {
					st.Instrs -= rbI[i+1] + xrbI
					st.Cost -= rbC[i+1] + xrbC
					rs := rbS[i+1] + xrbS
					e.steps -= rs
					e.intrCountdown += rs
					pc = o2.b
					goto advance
				}
			}
			i++
		case opF_Mul_Add: // Mul ; Add
			{
				regs[o.dst] = (regs[o.a] * regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] + regs[o2.b]) & o2.imm
			}
			i++
		case opF_LFCheckLoad_Sub: // LFCheckLoad ; Sub
			{
				if err := lfCheck(st, cm, regs[o.a], regs[o.b], regs[o.c]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Instrs++
				st.Cost += fn.aux[o.x].cost2
				x, err := e.qload(regs[o.a], o.wbits)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Loads++
				regs[o.dst] = x
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] - regs[o2.b]) & o2.imm
			}
			i++
		case opF_SBCheckLoad_Sub: // SBCheckLoad ; Sub
			{
				if err := e.sbCheck(st, cm, regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Instrs++
				st.Cost += fn.aux[o.x].cost2
				x, err := e.qload(regs[o.a], o.wbits)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Loads++
				regs[o.dst] = x
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] - regs[o2.b]) & o2.imm
			}
			i++
		case opF_FSub_FPCvt: // FSub ; FPCvt
			{
				regs[o.dst] = fbits(uint64(o.wbits), ffrom(o.wbits, regs[o.a])-ffrom(o.wbits, regs[o.b]))
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = fbits(o2.imm, ffrom(o2.wbits, regs[o2.a]))
			}
			i++
		case opF_Sub_SGT: // Sub ; SGT
			{
				regs[o.dst] = (regs[o.a] - regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = b2u(sext(regs[o2.a], o2.wbits) > sext(regs[o2.b], o2.wbits))
			}
			i++
		case opF_FAdd_FPCvt: // FAdd ; FPCvt
			{
				regs[o.dst] = fbits(uint64(o.wbits), ffrom(o.wbits, regs[o.a])+ffrom(o.wbits, regs[o.b]))
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = fbits(o2.imm, ffrom(o2.wbits, regs[o2.a]))
			}
			i++
		case opF_SExt_Add: // SExt ; Add
			{
				regs[o.dst] = uint64(sext(regs[o.a], o.wbits)) & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] + regs[o2.b]) & o2.imm
			}
			i++
		case opF_QLoad32_FSub: // QLoad32 ; FSub
			{
				addr := regs[o.a]
				if d := e.qpageFor(addr, 4); d != nil {
					regs[o.dst] = uint64(binary.LittleEndian.Uint32(d))
				} else {
					x, err := e.qload(addr, 4)
					if err != nil {
						return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
					}
					regs[o.dst] = x
				}
				st.Loads++
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = fbits(uint64(o2.wbits), ffrom(o2.wbits, regs[o2.a])-ffrom(o2.wbits, regs[o2.b]))
			}
			i++
		case opF_FPCvt_FOGE: // FPCvt ; FOGE
			{
				regs[o.dst] = fbits(o.imm, ffrom(o.wbits, regs[o.a]))
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = b2u(ffrom(o2.wbits, regs[o2.a]) >= ffrom(o2.wbits, regs[o2.b]))
			}
			i++
		case opF_FOGE_Trunc: // FOGE ; Trunc
			{
				regs[o.dst] = b2u(ffrom(o.wbits, regs[o.a]) >= ffrom(o.wbits, regs[o.b]))
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = regs[o2.a] & o2.imm
			}
			i++
		case opF_Add_SLT: // Add ; SLT
			{
				regs[o.dst] = (regs[o.a] + regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = b2u(sext(regs[o2.a], o2.wbits) < sext(regs[o2.b], o2.wbits))
			}
			i++
		case opF_Trunc_QGEPRC: // Trunc ; QGEPRC
			{
				regs[o.dst] = regs[o.a] & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = regs[o2.a] + uint64(sext(regs[o2.b], o2.wbits)*int64(o2.imm)) + uint64(int64(o2.x))
			}
			i++
		case opF_SExt_QStoreIdx32: // SExt ; QStoreIdx32
			{
				regs[o.dst] = uint64(sext(regs[o.a], o.wbits)) & o.imm
			}
			{
				o2 := &ops[i+1]
				addr := regs[o2.a] + uint64(sext(regs[o2.b], o2.wbits)*int64(o2.imm)) + uint64(int64(o2.x))
				regs[o2.c] = addr
				if d := e.qpageFor(addr, 4); d != nil {
					binary.LittleEndian.PutUint32(d, uint32(regs[o2.dst]))
				} else if err := e.qstore(addr, 4, regs[o2.dst]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i+1]+xrbI, rbC[i+1]+xrbC, err)
				}
				st.Stores++
			}
			i++
		case opF_SBLoadBase_SBLoadBound: // SBLoadBase ; SBLoadBound
			{
				st.MetaLoads++
				st.Cost += cm.SBMetaLoad
				b, _ := e.vm.Trie.Lookup(regs[o.a])
				if o.dst >= 0 {
					regs[o.dst] = b.Base
				}
			}
			{
				o2 := &ops[i+1]
				st.MetaLoads++
				st.Cost += cm.SBMetaLoad
				b, _ := e.vm.Trie.Lookup(regs[o2.a])
				if o2.dst >= 0 {
					regs[o2.dst] = b.Bound
				}
			}
			i++
		case opF_PhiCopy_SGE: // PhiCopy ; SGE
			{
				{
					pl := &fn.phis[o.x]
					buf := e.phibuf[:0]
					for _, r := range pl.srcs {
						buf = append(buf, regs[r])
					}
					e.phibuf = buf
					for j, d := range pl.dsts {
						regs[d] = buf[j]
					}
				}
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = b2u(sext(regs[o2.a], o2.wbits) >= sext(regs[o2.b], o2.wbits))
			}
			i++
		case opF_QLoadIdx32_Add: // QLoadIdx32 ; Add
			{
				addr := regs[o.a] + uint64(sext(regs[o.b], o.wbits)*int64(o.imm)) + uint64(int64(o.x))
				regs[o.c] = addr
				if d := e.qpageFor(addr, 4); d != nil {
					regs[o.dst] = uint64(binary.LittleEndian.Uint32(d))
				} else {
					x, err := e.qload(addr, 4)
					if err != nil {
						return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
					}
					regs[o.dst] = x
				}
				st.Loads++
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] + regs[o2.b]) & o2.imm
			}
			i++
		case opF_Add_QGEPC: // Add ; QGEPC
			{
				regs[o.dst] = (regs[o.a] + regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = regs[o2.a] + o2.imm
			}
			i++
		case opF_Add_QStore64: // Add ; QStore64
			{
				regs[o.dst] = (regs[o.a] + regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				addr := regs[o2.b]
				if d := e.qpageFor(addr, 8); d != nil {
					binary.LittleEndian.PutUint64(d, regs[o2.a])
				} else if err := e.qstore(addr, 8, regs[o2.a]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i+1]+xrbI, rbC[i+1]+xrbC, err)
				}
				st.Stores++
				// lands in the GEP result register (c) for later uses.
			}
			i++
		case opF_SExt_QLoadIdx64: // SExt ; QLoadIdx64
			{
				regs[o.dst] = uint64(sext(regs[o.a], o.wbits)) & o.imm
			}
			{
				o2 := &ops[i+1]
				addr := regs[o2.a] + uint64(sext(regs[o2.b], o2.wbits)*int64(o2.imm)) + uint64(int64(o2.x))
				regs[o2.c] = addr
				if d := e.qpageFor(addr, 8); d != nil {
					regs[o2.dst] = binary.LittleEndian.Uint64(d)
				} else {
					x, err := e.qload(addr, 8)
					if err != nil {
						return 0, 0, false, e.fusedFault(rbI[i+1]+xrbI, rbC[i+1]+xrbC, err)
					}
					regs[o2.dst] = x
				}
				st.Loads++
			}
			i++
		case opF_QStoreIdx32_Add: // QStoreIdx32 ; Add
			{
				addr := regs[o.a] + uint64(sext(regs[o.b], o.wbits)*int64(o.imm)) + uint64(int64(o.x))
				regs[o.c] = addr
				if d := e.qpageFor(addr, 4); d != nil {
					binary.LittleEndian.PutUint32(d, uint32(regs[o.dst]))
				} else if err := e.qstore(addr, 4, regs[o.dst]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Stores++
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] + regs[o2.b]) & o2.imm
			}
			i++
		case opF_TExit_QLoad32: // TExit ; QLoad32
			{
				if (regs[o.a] != 0) != (o.x != 0) {
					st.Instrs -= rbI[i] + xrbI
					st.Cost -= rbC[i] + xrbC
					rs := rbS[i] + xrbS
					e.steps -= rs
					e.intrCountdown += rs
					pc = o.b
					goto advance
				}
			}
			{
				o2 := &ops[i+1]
				addr := regs[o2.a]
				if d := e.qpageFor(addr, 4); d != nil {
					regs[o2.dst] = uint64(binary.LittleEndian.Uint32(d))
				} else {
					x, err := e.qload(addr, 4)
					if err != nil {
						return 0, 0, false, e.fusedFault(rbI[i+1]+xrbI, rbC[i+1]+xrbC, err)
					}
					regs[o2.dst] = x
				}
				st.Loads++
			}
			i++
		case opF_FAdd_Add: // FAdd ; Add
			{
				regs[o.dst] = fbits(uint64(o.wbits), ffrom(o.wbits, regs[o.a])+ffrom(o.wbits, regs[o.b]))
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] + regs[o2.b]) & o2.imm
			}
			i++
		case opF_Trunc_Sub: // Trunc ; Sub
			{
				regs[o.dst] = regs[o.a] & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] - regs[o2.b]) & o2.imm
			}
			i++
		case opF_And_QLoadIdx32: // And ; QLoadIdx32
			{
				regs[o.dst] = (regs[o.a] & regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				addr := regs[o2.a] + uint64(sext(regs[o2.b], o2.wbits)*int64(o2.imm)) + uint64(int64(o2.x))
				regs[o2.c] = addr
				if d := e.qpageFor(addr, 4); d != nil {
					regs[o2.dst] = uint64(binary.LittleEndian.Uint32(d))
				} else {
					x, err := e.qload(addr, 4)
					if err != nil {
						return 0, 0, false, e.fusedFault(rbI[i+1]+xrbI, rbC[i+1]+xrbC, err)
					}
					regs[o2.dst] = x
				}
				st.Loads++
			}
			i++
		case opF_EQ_TExit: // EQ ; TExit
			{
				regs[o.dst] = b2u(regs[o.a]&o.imm == regs[o.b]&o.imm)
			}
			{
				o2 := &ops[i+1]
				if (regs[o2.a] != 0) != (o2.x != 0) {
					st.Instrs -= rbI[i+1] + xrbI
					st.Cost -= rbC[i+1] + xrbC
					rs := rbS[i+1] + xrbS
					e.steps -= rs
					e.intrCountdown += rs
					pc = o2.b
					goto advance
				}
			}
			i++
		case opF_Xor_And: // Xor ; And
			{
				regs[o.dst] = (regs[o.a] ^ regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] & regs[o2.b]) & o2.imm
			}
			i++
		case opF_Trunc_SExt: // Trunc ; SExt
			{
				regs[o.dst] = regs[o.a] & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = uint64(sext(regs[o2.a], o2.wbits)) & o2.imm
			}
			i++
		case opF_SBCheckLoad_SBLoadBase: // SBCheckLoad ; SBLoadBase
			{
				if err := e.sbCheck(st, cm, regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Instrs++
				st.Cost += fn.aux[o.x].cost2
				x, err := e.qload(regs[o.a], o.wbits)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Loads++
				regs[o.dst] = x
			}
			{
				o2 := &ops[i+1]
				st.MetaLoads++
				st.Cost += cm.SBMetaLoad
				b, _ := e.vm.Trie.Lookup(regs[o2.a])
				if o2.dst >= 0 {
					regs[o2.dst] = b.Base
				}
			}
			i++
		case opF_FPCvt_FMul: // FPCvt ; FMul
			{
				regs[o.dst] = fbits(o.imm, ffrom(o.wbits, regs[o.a]))
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = fbits(uint64(o2.wbits), ffrom(o2.wbits, regs[o2.a])*ffrom(o2.wbits, regs[o2.b]))
			}
			i++
		case opF_SBCheckLoad_QGEPC: // SBCheckLoad ; QGEPC
			{
				if err := e.sbCheck(st, cm, regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Instrs++
				st.Cost += fn.aux[o.x].cost2
				x, err := e.qload(regs[o.a], o.wbits)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Loads++
				regs[o.dst] = x
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = regs[o2.a] + o2.imm
			}
			i++
		case opF_LFCheckLoad_QGEPC: // LFCheckLoad ; QGEPC
			{
				if err := lfCheck(st, cm, regs[o.a], regs[o.b], regs[o.c]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Instrs++
				st.Cost += fn.aux[o.x].cost2
				x, err := e.qload(regs[o.a], o.wbits)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Loads++
				regs[o.dst] = x
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = regs[o2.a] + o2.imm
			}
			i++
		case opF_FPCvt_FAdd: // FPCvt ; FAdd
			{
				regs[o.dst] = fbits(o.imm, ffrom(o.wbits, regs[o.a]))
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = fbits(uint64(o2.wbits), ffrom(o2.wbits, regs[o2.a])+ffrom(o2.wbits, regs[o2.b]))
			}
			i++
		case opF_LFCheckLoad_LFBase: // LFCheckLoad ; LFBase
			{
				if err := lfCheck(st, cm, regs[o.a], regs[o.b], regs[o.c]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Instrs++
				st.Cost += fn.aux[o.x].cost2
				x, err := e.qload(regs[o.a], o.wbits)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Loads++
				regs[o.dst] = x
			}
			{
				o2 := &ops[i+1]
				st.Cost += cm.LFBase
				if o2.dst >= 0 {
					regs[o2.dst] = lowfat.Base(regs[o2.a])
				}
			}
			i++
		case opF_FMul_FPCvt: // FMul ; FPCvt
			{
				regs[o.dst] = fbits(uint64(o.wbits), ffrom(o.wbits, regs[o.a])*ffrom(o.wbits, regs[o.b]))
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = fbits(o2.imm, ffrom(o2.wbits, regs[o2.a]))
			}
			i++
		case opF_PhiCopy_QGEPRC: // PhiCopy ; QGEPRC
			{
				{
					pl := &fn.phis[o.x]
					buf := e.phibuf[:0]
					for _, r := range pl.srcs {
						buf = append(buf, regs[r])
					}
					e.phibuf = buf
					for j, d := range pl.dsts {
						regs[d] = buf[j]
					}
				}
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = regs[o2.a] + uint64(sext(regs[o2.b], o2.wbits)*int64(o2.imm)) + uint64(int64(o2.x))
			}
			i++
		case opF_TExit_Mul: // TExit ; Mul
			{
				if (regs[o.a] != 0) != (o.x != 0) {
					st.Instrs -= rbI[i] + xrbI
					st.Cost -= rbC[i] + xrbC
					rs := rbS[i] + xrbS
					e.steps -= rs
					e.intrCountdown += rs
					pc = o.b
					goto advance
				}
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] * regs[o2.b]) & o2.imm
			}
			i++
		case opF_QLoadIdx32_Sub: // QLoadIdx32 ; Sub
			{
				addr := regs[o.a] + uint64(sext(regs[o.b], o.wbits)*int64(o.imm)) + uint64(int64(o.x))
				regs[o.c] = addr
				if d := e.qpageFor(addr, 4); d != nil {
					regs[o.dst] = uint64(binary.LittleEndian.Uint32(d))
				} else {
					x, err := e.qload(addr, 4)
					if err != nil {
						return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
					}
					regs[o.dst] = x
				}
				st.Loads++
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] - regs[o2.b]) & o2.imm
			}
			i++
		case opF_QLoad32_SExt: // QLoad32 ; SExt
			{
				addr := regs[o.a]
				if d := e.qpageFor(addr, 4); d != nil {
					regs[o.dst] = uint64(binary.LittleEndian.Uint32(d))
				} else {
					x, err := e.qload(addr, 4)
					if err != nil {
						return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
					}
					regs[o.dst] = x
				}
				st.Loads++
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = uint64(sext(regs[o2.a], o2.wbits)) & o2.imm
			}
			i++
		case opF_QStore32_Add: // QStore32 ; Add
			{
				addr := regs[o.b]
				if d := e.qpageFor(addr, 4); d != nil {
					binary.LittleEndian.PutUint32(d, uint32(regs[o.a]))
				} else if err := e.qstore(addr, 4, regs[o.a]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Stores++
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] + regs[o2.b]) & o2.imm
			}
			i++
		case opF_Add_QStore32: // Add ; QStore32
			{
				regs[o.dst] = (regs[o.a] + regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				addr := regs[o2.b]
				if d := e.qpageFor(addr, 4); d != nil {
					binary.LittleEndian.PutUint32(d, uint32(regs[o2.a]))
				} else if err := e.qstore(addr, 4, regs[o2.a]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i+1]+xrbI, rbC[i+1]+xrbC, err)
				}
				st.Stores++
			}
			i++
		case opF_SBCheckLoad_FMul: // SBCheckLoad ; FMul
			{
				if err := e.sbCheck(st, cm, regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Instrs++
				st.Cost += fn.aux[o.x].cost2
				x, err := e.qload(regs[o.a], o.wbits)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Loads++
				regs[o.dst] = x
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = fbits(uint64(o2.wbits), ffrom(o2.wbits, regs[o2.a])*ffrom(o2.wbits, regs[o2.b]))
			}
			i++
		case opF_LFCheckLoad_FMul: // LFCheckLoad ; FMul
			{
				if err := lfCheck(st, cm, regs[o.a], regs[o.b], regs[o.c]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Instrs++
				st.Cost += fn.aux[o.x].cost2
				x, err := e.qload(regs[o.a], o.wbits)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Loads++
				regs[o.dst] = x
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = fbits(uint64(o2.wbits), ffrom(o2.wbits, regs[o2.a])*ffrom(o2.wbits, regs[o2.b]))
			}
			i++
		case opF_QGEPC_QGEPC: // QGEPC ; QGEPC
			{
				regs[o.dst] = regs[o.a] + o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = regs[o2.a] + o2.imm
			}
			i++
		case opF_QStore64_QLoad32: // QStore64 ; QLoad32
			{
				addr := regs[o.b]
				if d := e.qpageFor(addr, 8); d != nil {
					binary.LittleEndian.PutUint64(d, regs[o.a])
				} else if err := e.qstore(addr, 8, regs[o.a]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Stores++
				// lands in the GEP result register (c) for later uses.
			}
			{
				o2 := &ops[i+1]
				addr := regs[o2.a]
				if d := e.qpageFor(addr, 4); d != nil {
					regs[o2.dst] = uint64(binary.LittleEndian.Uint32(d))
				} else {
					x, err := e.qload(addr, 4)
					if err != nil {
						return 0, 0, false, e.fusedFault(rbI[i+1]+xrbI, rbC[i+1]+xrbC, err)
					}
					regs[o2.dst] = x
				}
				st.Loads++
			}
			i++
		case opF_Trunc_Xor: // Trunc ; Xor
			{
				regs[o.dst] = regs[o.a] & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] ^ regs[o2.b]) & o2.imm
			}
			i++
		case opF_Trunc_EQ: // Trunc ; EQ
			{
				regs[o.dst] = regs[o.a] & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = b2u(regs[o2.a]&o2.imm == regs[o2.b]&o2.imm)
			}
			i++
		case opF_Shl_Add: // Shl ; Add
			{
				sh := regs[o.b] & uint64(o.x)
				regs[o.dst] = (regs[o.a] << sh) & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] + regs[o2.b]) & o2.imm
			}
			i++
		case opF_LFBase_QGEPC: // LFBase ; QGEPC
			{
				st.Cost += cm.LFBase
				if o.dst >= 0 {
					regs[o.dst] = lowfat.Base(regs[o.a])
				}
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = regs[o2.a] + o2.imm
			}
			i++
		case opF_Sub_SExt: // Sub ; SExt
			{
				regs[o.dst] = (regs[o.a] - regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = uint64(sext(regs[o2.a], o2.wbits)) & o2.imm
			}
			i++
		case opF_And_Trunc: // And ; Trunc
			{
				regs[o.dst] = (regs[o.a] & regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = regs[o2.a] & o2.imm
			}
			i++
		case opF_SBLoadBound_QGEPC: // SBLoadBound ; QGEPC
			{
				st.MetaLoads++
				st.Cost += cm.SBMetaLoad
				b, _ := e.vm.Trie.Lookup(regs[o.a])
				if o.dst >= 0 {
					regs[o.dst] = b.Bound
				}
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = regs[o2.a] + o2.imm
			}
			i++
		case opF_And_NE: // And ; NE
			{
				regs[o.dst] = (regs[o.a] & regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = b2u(regs[o2.a]&o2.imm != regs[o2.b]&o2.imm)
			}
			i++
		case opF_And_And: // And ; And
			{
				regs[o.dst] = (regs[o.a] & regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = (regs[o2.a] & regs[o2.b]) & o2.imm
			}
			i++
		case opF_SBCheckLoad_QGEPRC: // SBCheckLoad ; QGEPRC
			{
				if err := e.sbCheck(st, cm, regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Instrs++
				st.Cost += fn.aux[o.x].cost2
				x, err := e.qload(regs[o.a], o.wbits)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Loads++
				regs[o.dst] = x
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = regs[o2.a] + uint64(sext(regs[o2.b], o2.wbits)*int64(o2.imm)) + uint64(int64(o2.x))
			}
			i++
		case opF_LFCheckLoad_QGEPRC: // LFCheckLoad ; QGEPRC
			{
				if err := lfCheck(st, cm, regs[o.a], regs[o.b], regs[o.c]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Instrs++
				st.Cost += fn.aux[o.x].cost2
				x, err := e.qload(regs[o.a], o.wbits)
				if err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Loads++
				regs[o.dst] = x
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = regs[o2.a] + uint64(sext(regs[o2.b], o2.wbits)*int64(o2.imm)) + uint64(int64(o2.x))
			}
			i++
		case opF_Add_QGEPRC: // Add ; QGEPRC
			{
				regs[o.dst] = (regs[o.a] + regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = regs[o2.a] + uint64(sext(regs[o2.b], o2.wbits)*int64(o2.imm)) + uint64(int64(o2.x))
			}
			i++
		case opF_FAdd_FMul: // FAdd ; FMul
			{
				regs[o.dst] = fbits(uint64(o.wbits), ffrom(o.wbits, regs[o.a])+ffrom(o.wbits, regs[o.b]))
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = fbits(uint64(o2.wbits), ffrom(o2.wbits, regs[o2.a])*ffrom(o2.wbits, regs[o2.b]))
			}
			i++
		case opF_SIToFP_FPCvt: // SIToFP ; FPCvt
			{
				regs[o.dst] = fbits(o.imm, float64(sext(regs[o.a], o.wbits)))
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = fbits(o2.imm, ffrom(o2.wbits, regs[o2.a]))
			}
			i++
		case opF_Sub_QGEPRC: // Sub ; QGEPRC
			{
				regs[o.dst] = (regs[o.a] - regs[o.b]) & o.imm
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = regs[o2.a] + uint64(sext(regs[o2.b], o2.wbits)*int64(o2.imm)) + uint64(int64(o2.x))
			}
			i++
		case opF_QLoadOff64_QLoadOff64: // QLoadOff64 ; QLoadOff64
			{
				addr := regs[o.a] + o.imm
				regs[o.c] = addr
				if d := e.qpageFor(addr, 8); d != nil {
					regs[o.dst] = binary.LittleEndian.Uint64(d)
				} else {
					x, err := e.qload(addr, 8)
					if err != nil {
						return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
					}
					regs[o.dst] = x
				}
				st.Loads++
			}
			{
				o2 := &ops[i+1]
				addr := regs[o2.a] + o2.imm
				regs[o2.c] = addr
				if d := e.qpageFor(addr, 8); d != nil {
					regs[o2.dst] = binary.LittleEndian.Uint64(d)
				} else {
					x, err := e.qload(addr, 8)
					if err != nil {
						return 0, 0, false, e.fusedFault(rbI[i+1]+xrbI, rbC[i+1]+xrbC, err)
					}
					regs[o2.dst] = x
				}
				st.Loads++
			}
			i++
		case opF_QStore32_QGEPRC: // QStore32 ; QGEPRC
			{
				addr := regs[o.b]
				if d := e.qpageFor(addr, 4); d != nil {
					binary.LittleEndian.PutUint32(d, uint32(regs[o.a]))
				} else if err := e.qstore(addr, 4, regs[o.a]); err != nil {
					return 0, 0, false, e.fusedFault(rbI[i]+xrbI, rbC[i]+xrbC, err)
				}
				st.Stores++
			}
			{
				o2 := &ops[i+1]
				regs[o2.dst] = regs[o2.a] + uint64(sext(regs[o2.b], o2.wbits)*int64(o2.imm)) + uint64(int64(o2.x))
			}
			i++
		case opF_Trunc_PhiCopy: // Trunc ; PhiCopy
			{
				regs[o.dst] = regs[o.a] & o.imm
			}
			{
				o2 := &ops[i+1]
				{
					pl := &fn.phis[o2.x]
					buf := e.phibuf[:0]
					for _, r := range pl.srcs {
						buf = append(buf, regs[r])
					}
					e.phibuf = buf
					for j, d := range pl.dsts {
						regs[d] = buf[j]
					}
				}
			}
			i++
		case opF_QGEPRC_QLoad32: // QGEPRC ; QLoad32
			{
				regs[o.dst] = regs[o.a] + uint64(sext(regs[o.b], o.wbits)*int64(o.imm)) + uint64(int64(o.x))
			}
			{
				o2 := &ops[i+1]
				addr := regs[o2.a]
				if d := e.qpageFor(addr, 4); d != nil {
					regs[o2.dst] = uint64(binary.LittleEndian.Uint32(d))
				} else {
					x, err := e.qload(addr, 4)
					if err != nil {
						return 0, 0, false, e.fusedFault(rbI[i+1]+xrbI, rbC[i+1]+xrbC, err)
					}
					regs[o2.dst] = x
				}
				st.Loads++
			}
			i++
		// END GENERATED PAIR CASES
		default:
			panic(fmt.Sprintf("bytecode: opcode %d escaped quickening classification", o.code))
		}
	}
	switch after {
	case afterSeg:
		goto segTerm
	case afterHdr:
		goto hdrDone
	}
	goto bodyDone

segTerm:
	switch s.term.kind {
	case termCond:
		if regs[s.term.a] != 0 {
			pc = s.term.t
		} else {
			pc = s.term.f
		}
	case termRet:
		if s.term.a >= 0 {
			return 0, regs[s.term.a], true, nil
		}
		return 0, 0, true, nil
	case termPhi:
		pl := &fn.phis[s.term.x]
		buf := e.phibuf[:0]
		for _, r := range pl.srcs {
			buf = append(buf, regs[r])
		}
		e.phibuf = buf
		for j, d := range pl.dsts {
			regs[d] = buf[j]
		}
		pc = s.term.t
	case termFall:
		return int(s.term.t), 0, false, nil
	default: // termJump
		pc = s.term.t
	}
	goto advance

hdrDone:
	if (regs[lp.condReg] != 0) != lp.contOnTrue {
		// Loop exit at the header test: this iteration's body statics never
		// run; roll them back.
		e.steps -= lp.bodySteps
		e.intrCountdown += lp.bodySteps
		st.Instrs -= lp.exitRbInstrs
		st.Cost -= lp.exitRbCost
		pc = lp.exitPC
		goto advance
	}
	ops, rbI, rbC, rbS = lp.bodyOps, lp.bodyRbI, lp.bodyRbC, lp.bodyRbS
	xrbI, xrbC, xrbS = lp.bodyXrbI, lp.bodyXrbC, 0
	after = afterBody
	goto run

bodyDone:
	if lp.phiDirect {
		for j, d := range lp.phi.dsts {
			regs[d] = regs[lp.phi.srcs[j]]
		}
	} else {
		buf := e.phibuf[:0]
		for _, r := range lp.phi.srcs {
			buf = append(buf, regs[r])
		}
		e.phibuf = buf
		for j, d := range lp.phi.dsts {
			regs[d] = buf[j]
		}
	}
	if e.intrCountdown > lp.iterSteps && e.steps+lp.iterSteps <= e.maxSteps {
		goto iter
	}
	pc = lp.hdrPC
	goto advance

advance:
	nv = q.at[pc]
	if nv >= 0 {
		if ns := &q.segs[nv]; e.intrCountdown > ns.steps && e.steps+ns.steps <= e.maxSteps {
			v = nv
			goto unit
		}
	} else if nv != atNone {
		if nl := &q.loops[loopIdx(nv)]; e.intrCountdown > nl.iterSteps && e.steps+nl.iterSteps <= e.maxSteps {
			v = nv
			goto unit
		}
	}
	return int(pc), 0, false, nil
}

// runLoop executes a trace-fused counted loop. The caller guaranteed the
// entry condition for the first iteration; every subsequent iteration
// re-checks it and bails back to the header pc when it no longer holds, so
// the generic loop takes over with exact per-op accounting (and, once the
// countdown resets at the next poll, re-enters the fast path).
func (e *Engine) runLoop(fn *Fn, lp *qloop, regs []uint64) (int, error) {
	st := e.st
	for {
		e.steps += lp.hdrSteps
		e.intrCountdown -= lp.hdrSteps
		for gi := range lp.hdrGroups {
			if err := e.runGroup(fn, &lp.hdrGroups[gi], regs); err != nil {
				return 0, err
			}
		}
		st.Instrs += lp.hdrTailInstrs
		st.Cost += lp.hdrTailCost
		if (regs[lp.condReg] != 0) != lp.contOnTrue {
			return int(lp.exitPC), nil
		}
		e.steps += lp.bodySteps
		e.intrCountdown -= lp.bodySteps
		for gi := range lp.bodyGroups {
			if err := e.runGroup(fn, &lp.bodyGroups[gi], regs); err != nil {
				return 0, err
			}
		}
		st.Instrs += lp.bodyTailInstrs
		st.Cost += lp.bodyTailCost
		if lp.phiDirect {
			for i, d := range lp.phi.dsts {
				regs[d] = regs[lp.phi.srcs[i]]
			}
		} else {
			buf := e.phibuf[:0]
			for _, r := range lp.phi.srcs {
				buf = append(buf, regs[r])
			}
			e.phibuf = buf
			for i, d := range lp.phi.dsts {
				regs[d] = buf[i]
			}
		}
		if e.intrCountdown <= lp.iterSteps || e.steps+lp.iterSteps > e.maxSteps {
			return int(lp.hdrPC), nil
		}
	}
}

// groupFault unwinds the static accounting pre-committed for the ops after
// slot i, none of which will run: the fault terminates the whole run, and
// ViolationError/RuntimeError carry no statistics snapshot, so vm.Stats is
// next observed after propagation — where it must read exactly what the
// reference interpreter accumulated up to and including the faulting op's
// preamble (which stays committed).
func (e *Engine) groupFault(g *qgroup, i int, err error) error {
	e.st.Instrs -= g.rbInstrs[i]
	e.st.Cost -= g.rbCost[i]
	return err
}

// runGroup executes one accounting group: commit the group's static
// instruction count and cost, then run its ops with no per-op preamble. Ops
// that fault mid-group divert to groupFault, which rolls back the committed
// accounting of the ops that never ran.
func (e *Engine) runGroup(fn *Fn, g *qgroup, regs []uint64) error {
	st := e.st
	cm := e.cm
	st.Instrs += g.instrs
	st.Cost += g.cost
	for i := range g.ops {
		o := &g.ops[i]
		switch o.code {
		case opAdd:
			regs[o.dst] = (regs[o.a] + regs[o.b]) & o.imm
		case opSub:
			regs[o.dst] = (regs[o.a] - regs[o.b]) & o.imm
		case opMul:
			regs[o.dst] = (regs[o.a] * regs[o.b]) & o.imm
		case opSDiv, opSRem:
			a := sext(regs[o.a], o.wbits)
			b := sext(regs[o.b], o.wbits)
			if b == 0 {
				return e.groupFault(g, i, e.rte(0, o.instr, "integer division by zero"))
			}
			var r int64
			if o.code == opSDiv {
				r = a / b
			} else {
				r = a % b
			}
			regs[o.dst] = uint64(r) & o.imm
		case opUDiv, opURem:
			a := regs[o.a] & o.imm
			b := regs[o.b] & o.imm
			if b == 0 {
				return e.groupFault(g, i, e.rte(0, o.instr, "integer division by zero"))
			}
			if o.code == opUDiv {
				regs[o.dst] = (a / b) & o.imm
			} else {
				regs[o.dst] = (a % b) & o.imm
			}
		case opAnd:
			regs[o.dst] = (regs[o.a] & regs[o.b]) & o.imm
		case opOr:
			regs[o.dst] = (regs[o.a] | regs[o.b]) & o.imm
		case opXor:
			regs[o.dst] = (regs[o.a] ^ regs[o.b]) & o.imm
		case opShl:
			sh := regs[o.b] & uint64(o.x)
			regs[o.dst] = (regs[o.a] << sh) & o.imm
		case opLShr:
			sh := regs[o.b] & uint64(o.x)
			regs[o.dst] = (regs[o.a] & o.imm) >> sh
		case opAShr:
			sh := regs[o.b] & uint64(o.x)
			regs[o.dst] = uint64(sext(regs[o.a], o.wbits)>>sh) & o.imm

		case opFAdd:
			regs[o.dst] = fbits(uint64(o.wbits), ffrom(o.wbits, regs[o.a])+ffrom(o.wbits, regs[o.b]))
		case opFSub:
			regs[o.dst] = fbits(uint64(o.wbits), ffrom(o.wbits, regs[o.a])-ffrom(o.wbits, regs[o.b]))
		case opFMul:
			regs[o.dst] = fbits(uint64(o.wbits), ffrom(o.wbits, regs[o.a])*ffrom(o.wbits, regs[o.b]))
		case opFDiv:
			regs[o.dst] = fbits(uint64(o.wbits), ffrom(o.wbits, regs[o.a])/ffrom(o.wbits, regs[o.b]))

		case opEQ:
			regs[o.dst] = b2u(regs[o.a]&o.imm == regs[o.b]&o.imm)
		case opNE:
			regs[o.dst] = b2u(regs[o.a]&o.imm != regs[o.b]&o.imm)
		case opSLT:
			regs[o.dst] = b2u(sext(regs[o.a], o.wbits) < sext(regs[o.b], o.wbits))
		case opSLE:
			regs[o.dst] = b2u(sext(regs[o.a], o.wbits) <= sext(regs[o.b], o.wbits))
		case opSGT:
			regs[o.dst] = b2u(sext(regs[o.a], o.wbits) > sext(regs[o.b], o.wbits))
		case opSGE:
			regs[o.dst] = b2u(sext(regs[o.a], o.wbits) >= sext(regs[o.b], o.wbits))
		case opULT:
			regs[o.dst] = b2u(regs[o.a]&o.imm < regs[o.b]&o.imm)
		case opULE:
			regs[o.dst] = b2u(regs[o.a]&o.imm <= regs[o.b]&o.imm)
		case opUGT:
			regs[o.dst] = b2u(regs[o.a]&o.imm > regs[o.b]&o.imm)
		case opUGE:
			regs[o.dst] = b2u(regs[o.a]&o.imm >= regs[o.b]&o.imm)

		case opFOEQ:
			regs[o.dst] = b2u(ffrom(o.wbits, regs[o.a]) == ffrom(o.wbits, regs[o.b]))
		case opFONE:
			regs[o.dst] = b2u(ffrom(o.wbits, regs[o.a]) != ffrom(o.wbits, regs[o.b]))
		case opFOLT:
			regs[o.dst] = b2u(ffrom(o.wbits, regs[o.a]) < ffrom(o.wbits, regs[o.b]))
		case opFOLE:
			regs[o.dst] = b2u(ffrom(o.wbits, regs[o.a]) <= ffrom(o.wbits, regs[o.b]))
		case opFOGT:
			regs[o.dst] = b2u(ffrom(o.wbits, regs[o.a]) > ffrom(o.wbits, regs[o.b]))
		case opFOGE:
			regs[o.dst] = b2u(ffrom(o.wbits, regs[o.a]) >= ffrom(o.wbits, regs[o.b]))

		case opTrunc:
			regs[o.dst] = regs[o.a] & o.imm
		case opSExt:
			regs[o.dst] = uint64(sext(regs[o.a], o.wbits)) & o.imm
		case opFPCvt:
			regs[o.dst] = fbits(o.imm, ffrom(o.wbits, regs[o.a]))
		case opFPToSI:
			regs[o.dst] = uint64(int64(ffrom(o.wbits, regs[o.a]))) & o.imm
		case opSIToFP:
			regs[o.dst] = fbits(o.imm, float64(sext(regs[o.a], o.wbits)))
		case opMove:
			regs[o.dst] = regs[o.a]

		// Quickened address computations. opQGEPRC folds one scaled register
		// index plus a constant offset; opQGEPC is a pure constant offset.
		case opQGEPC:
			regs[o.dst] = regs[o.a] + o.imm
		case opQGEPRC:
			regs[o.dst] = regs[o.a] + uint64(sext(regs[o.b], o.wbits)*int64(o.imm)) + uint64(int64(o.x))
		case opGEP:
			pl := &fn.geps[o.x]
			addr := regs[o.a]
			for i := range pl.steps {
				s := &pl.steps[i]
				if s.reg < 0 {
					addr += uint64(s.off)
				} else {
					addr += uint64(sext(regs[s.reg], s.sh) * s.scale)
				}
			}
			regs[o.dst] = addr
		case opGEPDyn:
			pl := &fn.gepDyns[o.x]
			addr := regs[o.a]
			ty := pl.srcTy
			for i := range pl.idx {
				idx := sext(regs[pl.idx[i].reg], pl.idx[i].sh)
				if i == 0 {
					addr += uint64(idx * int64(ty.Size()))
					continue
				}
				switch ty.Kind {
				case ir.ArrayKind:
					ty = ty.Elem
					addr += uint64(idx * int64(ty.Size()))
				case ir.StructKind:
					addr += uint64(ty.FieldOffset(int(idx)))
					ty = ty.Fields[idx]
				}
			}
			regs[o.dst] = addr

		case opSelect:
			if regs[o.a] != 0 {
				regs[o.dst] = regs[o.b]
			} else {
				regs[o.dst] = regs[o.c]
			}

		// Quickened loads/stores: the page-hit fast path of Engine.load is
		// inlined per width; misses and page-straddling accesses fall back
		// to the generic helpers with their exact fault semantics.
		case opQLoad8:
			addr := regs[o.a]
			if addr>>mem.PageBits+1 == e.pageID && addr >= mem.NullGuardSize {
				regs[o.dst] = uint64(e.page[addr&(mem.PageSize-1)])
			} else {
				x, err := e.load(addr, 1)
				if err != nil {
					return e.groupFault(g, i, err)
				}
				regs[o.dst] = x
			}
			st.Loads++
		case opQLoad16:
			addr := regs[o.a]
			off := addr & (mem.PageSize - 1)
			if addr>>mem.PageBits+1 == e.pageID && addr >= mem.NullGuardSize && off <= mem.PageSize-2 {
				regs[o.dst] = uint64(binary.LittleEndian.Uint16(e.page[off:]))
			} else {
				x, err := e.load(addr, 2)
				if err != nil {
					return e.groupFault(g, i, err)
				}
				regs[o.dst] = x
			}
			st.Loads++
		case opQLoad32:
			addr := regs[o.a]
			off := addr & (mem.PageSize - 1)
			if addr>>mem.PageBits+1 == e.pageID && addr >= mem.NullGuardSize && off <= mem.PageSize-4 {
				regs[o.dst] = uint64(binary.LittleEndian.Uint32(e.page[off:]))
			} else {
				x, err := e.load(addr, 4)
				if err != nil {
					return e.groupFault(g, i, err)
				}
				regs[o.dst] = x
			}
			st.Loads++
		case opQLoad64:
			addr := regs[o.a]
			off := addr & (mem.PageSize - 1)
			if addr>>mem.PageBits+1 == e.pageID && addr >= mem.NullGuardSize && off <= mem.PageSize-8 {
				regs[o.dst] = binary.LittleEndian.Uint64(e.page[off:])
			} else {
				x, err := e.load(addr, 8)
				if err != nil {
					return e.groupFault(g, i, err)
				}
				regs[o.dst] = x
			}
			st.Loads++
		case opQStore8:
			addr := regs[o.b]
			if addr>>mem.PageBits+1 == e.pageID && addr >= mem.NullGuardSize {
				e.page[addr&(mem.PageSize-1)] = byte(regs[o.a])
			} else if err := e.store(addr, 1, regs[o.a]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Stores++
		case opQStore16:
			addr := regs[o.b]
			off := addr & (mem.PageSize - 1)
			if addr>>mem.PageBits+1 == e.pageID && addr >= mem.NullGuardSize && off <= mem.PageSize-2 {
				binary.LittleEndian.PutUint16(e.page[off:], uint16(regs[o.a]))
			} else if err := e.store(addr, 2, regs[o.a]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Stores++
		case opQStore32:
			addr := regs[o.b]
			off := addr & (mem.PageSize - 1)
			if addr>>mem.PageBits+1 == e.pageID && addr >= mem.NullGuardSize && off <= mem.PageSize-4 {
				binary.LittleEndian.PutUint32(e.page[off:], uint32(regs[o.a]))
			} else if err := e.store(addr, 4, regs[o.a]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Stores++
		case opQStore64:
			addr := regs[o.b]
			off := addr & (mem.PageSize - 1)
			if addr>>mem.PageBits+1 == e.pageID && addr >= mem.NullGuardSize && off <= mem.PageSize-8 {
				binary.LittleEndian.PutUint64(e.page[off:], regs[o.a])
			} else if err := e.store(addr, 8, regs[o.a]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Stores++
		case opLoad: // non-power-of-two width: generic path
			x, err := e.load(regs[o.a], o.wbits)
			if err != nil {
				return e.groupFault(g, i, err)
			}
			st.Loads++
			regs[o.dst] = x
		case opStore:
			if err := e.store(regs[o.b], o.wbits, regs[o.a]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Stores++

		// Micro-fused address+access: one op computes base + scaled index +
		// offset (still written to the GEP's register, c, for later uses)
		// and performs the access.
		case opQLoadIdx8, opQLoadIdx16, opQLoadIdx32, opQLoadIdx64:
			addr := regs[o.a] + uint64(sext(regs[o.b], o.wbits)*int64(o.imm)) + uint64(int64(o.x))
			regs[o.c] = addr
			w := uint8(1) << (o.code - opQLoadIdx8)
			off := addr & (mem.PageSize - 1)
			if addr>>mem.PageBits+1 == e.pageID && addr >= mem.NullGuardSize && off <= mem.PageSize-uint64(w) {
				d := e.page[off:]
				switch o.code {
				case opQLoadIdx8:
					regs[o.dst] = uint64(d[0])
				case opQLoadIdx16:
					regs[o.dst] = uint64(binary.LittleEndian.Uint16(d))
				case opQLoadIdx32:
					regs[o.dst] = uint64(binary.LittleEndian.Uint32(d))
				default:
					regs[o.dst] = binary.LittleEndian.Uint64(d)
				}
			} else {
				x, err := e.load(addr, w)
				if err != nil {
					return e.groupFault(g, i, err)
				}
				regs[o.dst] = x
			}
			st.Loads++
		case opQStoreIdx8, opQStoreIdx16, opQStoreIdx32, opQStoreIdx64:
			addr := regs[o.a] + uint64(sext(regs[o.b], o.wbits)*int64(o.imm)) + uint64(int64(o.x))
			regs[o.c] = addr
			w := uint8(1) << (o.code - opQStoreIdx8)
			off := addr & (mem.PageSize - 1)
			if addr>>mem.PageBits+1 == e.pageID && addr >= mem.NullGuardSize && off <= mem.PageSize-uint64(w) {
				d := e.page[off:]
				switch o.code {
				case opQStoreIdx8:
					d[0] = byte(regs[o.dst])
				case opQStoreIdx16:
					binary.LittleEndian.PutUint16(d, uint16(regs[o.dst]))
				case opQStoreIdx32:
					binary.LittleEndian.PutUint32(d, uint32(regs[o.dst]))
				default:
					binary.LittleEndian.PutUint64(d, regs[o.dst])
				}
			} else if err := e.store(addr, w, regs[o.dst]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Stores++
		case opQLoadOff8, opQLoadOff16, opQLoadOff32, opQLoadOff64:
			addr := regs[o.a] + o.imm
			regs[o.c] = addr
			w := uint8(1) << (o.code - opQLoadOff8)
			off := addr & (mem.PageSize - 1)
			if addr>>mem.PageBits+1 == e.pageID && addr >= mem.NullGuardSize && off <= mem.PageSize-uint64(w) {
				d := e.page[off:]
				switch o.code {
				case opQLoadOff8:
					regs[o.dst] = uint64(d[0])
				case opQLoadOff16:
					regs[o.dst] = uint64(binary.LittleEndian.Uint16(d))
				case opQLoadOff32:
					regs[o.dst] = uint64(binary.LittleEndian.Uint32(d))
				default:
					regs[o.dst] = binary.LittleEndian.Uint64(d)
				}
			} else {
				x, err := e.load(addr, w)
				if err != nil {
					return e.groupFault(g, i, err)
				}
				regs[o.dst] = x
			}
			st.Loads++
		case opQStoreOff8, opQStoreOff16, opQStoreOff32, opQStoreOff64:
			addr := regs[o.a] + o.imm
			regs[o.c] = addr
			w := uint8(1) << (o.code - opQStoreOff8)
			off := addr & (mem.PageSize - 1)
			if addr>>mem.PageBits+1 == e.pageID && addr >= mem.NullGuardSize && off <= mem.PageSize-uint64(w) {
				d := e.page[off:]
				switch o.code {
				case opQStoreOff8:
					d[0] = byte(regs[o.dst])
				case opQStoreOff16:
					binary.LittleEndian.PutUint16(d, uint16(regs[o.dst]))
				case opQStoreOff32:
					binary.LittleEndian.PutUint32(d, uint32(regs[o.dst]))
				default:
					binary.LittleEndian.PutUint64(d, regs[o.dst])
				}
			} else if err := e.store(addr, w, regs[o.dst]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Stores++

		case opAlloca, opAllocaRec:
			count := uint64(1)
			if o.a >= 0 {
				count = regs[o.a]
			}
			size := o.imm * count
			if size == 0 {
				size = 1
			}
			if e.lfStack {
				addr, lowFat, err := e.vm.LF.StackAlloc(size)
				if err != nil {
					return e.groupFault(g, i, err)
				}
				if !lowFat {
					*e.fb = append(*e.fb, addr)
				}
				if o.code == opAllocaRec {
					e.vm.TrackAlloc(addr, size, o.instr.AllocSite)
				}
				regs[o.dst] = addr
			} else {
				align := uint64(o.x)
				nsp := (e.vm.StackPointer() - size) &^ (align - 1)
				if nsp < mem.StackLimit {
					return e.groupFault(g, i, e.rte(0, o.instr, "stack overflow"))
				}
				e.vm.SetStackPointer(nsp)
				if o.code == opAllocaRec {
					e.vm.TrackAlloc(nsp, size, o.instr.AllocSite)
				}
				regs[o.dst] = nsp
			}

		case opSBLoadBase:
			st.MetaLoads++
			st.Cost += cm.SBMetaLoad
			b, _ := e.vm.Trie.Lookup(regs[o.a])
			if o.dst >= 0 {
				regs[o.dst] = b.Base
			}
		case opSBLoadBound:
			st.MetaLoads++
			st.Cost += cm.SBMetaLoad
			b, _ := e.vm.Trie.Lookup(regs[o.a])
			if o.dst >= 0 {
				regs[o.dst] = b.Bound
			}
		case opSBStoreMD:
			st.MetaStores++
			st.Cost += cm.SBMetaStore
			e.vm.Trie.Store(regs[o.a], softbound.Bounds{Base: regs[o.b], Bound: regs[o.c]})
		case opSBStoreMDProf:
			st.MetaStores++
			st.Cost += cm.SBMetaStore
			e.bumpSite(o.imm, false, cm.SBMetaStore)
			e.vm.Trie.Store(regs[o.a], softbound.Bounds{Base: regs[o.b], Bound: regs[o.c]})
		case opLFBase:
			st.Cost += cm.LFBase
			if o.dst >= 0 {
				regs[o.dst] = lowfat.Base(regs[o.a])
			}

		case opSBCheck:
			if err := e.sbCheck(st, cm, regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
				return e.groupFault(g, i, err)
			}
		case opLFCheck:
			if err := lfCheck(st, cm, regs[o.a], regs[o.b], regs[o.c]); err != nil {
				return e.groupFault(g, i, err)
			}
		case opLFCheckInv:
			ptr, base := regs[o.a], regs[o.b]
			st.InvariantChecks++
			st.Cost += cm.LFCheck
			ok, wide := lowfat.Check(ptr, 1, base)
			if !ok && !wide {
				return e.groupFault(g, i, &vm.ViolationError{Mechanism: "lowfat", Kind: "invariant", Ptr: ptr,
					Detail: fmt.Sprintf("escaping pointer is outside its object at base %#x (size %d)", base, lowfat.AllocSize(lowfat.RegionIndex(base)))})
			}
		case opSBCheckProf:
			if err := e.sbCheckProf(st, cm, o.imm, regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
				return e.groupFault(g, i, err)
			}
		case opLFCheckProf:
			if err := e.lfCheckProf(st, cm, o.imm, regs[o.a], regs[o.b], regs[o.c]); err != nil {
				return e.groupFault(g, i, err)
			}
		case opLFCheckInvProf:
			ptr, base := regs[o.a], regs[o.b]
			st.InvariantChecks++
			st.Cost += cm.LFCheck
			e.bumpSite(o.imm, false, cm.LFCheck)
			ok, wide := lowfat.Check(ptr, 1, base)
			if !ok && !wide {
				return e.groupFault(g, i, &vm.ViolationError{Mechanism: "lowfat", Kind: "invariant", Ptr: ptr,
					Detail: fmt.Sprintf("escaping pointer is outside its object at base %#x (size %d)", base, lowfat.AllocSize(lowfat.RegionIndex(base)))})
			}

		case opSBCheckRange:
			if _, err := vm.SBCheckRangeOp(st, cm, regs[o.a], regs[o.b], regs[o.x], regs[o.c], regs[o.d], regs[o.dst]); err != nil {
				return e.groupFault(g, i, err)
			}
		case opLFCheckRange:
			if _, err := vm.LFCheckRangeOp(st, cm, regs[o.a], regs[o.b], regs[o.x], regs[o.c], regs[o.dst]); err != nil {
				return e.groupFault(g, i, err)
			}
		case opSBCheckRangeProf:
			wide, err := vm.SBCheckRangeOp(st, cm, regs[o.a], regs[o.b], regs[o.x], regs[o.c], regs[o.d], regs[o.dst])
			e.bumpSite(o.imm, wide, cm.SBCheck)
			if err != nil {
				return e.groupFault(g, i, err)
			}
		case opLFCheckRangeProf:
			wide, err := vm.LFCheckRangeOp(st, cm, regs[o.a], regs[o.b], regs[o.x], regs[o.c], regs[o.dst])
			e.bumpSite(o.imm, wide, cm.LFCheck)
			if err != nil {
				return e.groupFault(g, i, err)
			}

		// Fused check+access: the access half's step/instruction/cost
		// accounting is part of the group's static commit, so only the
		// check, the access, and the Loads/Stores counters remain.
		case opSBCheckLoad:
			if err := e.sbCheck(st, cm, regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Instrs++
			st.Cost += fn.aux[o.x].cost2
			x, err := e.load(regs[o.a], o.wbits)
			if err != nil {
				return e.groupFault(g, i, err)
			}
			st.Loads++
			regs[o.dst] = x
		case opSBCheckStore:
			if err := e.sbCheck(st, cm, regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Instrs++
			st.Cost += fn.aux[o.x].cost2
			if err := e.store(regs[o.a], o.wbits, regs[o.dst]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Stores++
		case opLFCheckLoad:
			if err := lfCheck(st, cm, regs[o.a], regs[o.b], regs[o.c]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Instrs++
			st.Cost += fn.aux[o.x].cost2
			x, err := e.load(regs[o.a], o.wbits)
			if err != nil {
				return e.groupFault(g, i, err)
			}
			st.Loads++
			regs[o.dst] = x
		case opLFCheckStore:
			if err := lfCheck(st, cm, regs[o.a], regs[o.b], regs[o.c]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Instrs++
			st.Cost += fn.aux[o.x].cost2
			if err := e.store(regs[o.a], o.wbits, regs[o.dst]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Stores++
		case opSBCheckLoadProf:
			if err := e.sbCheckProf(st, cm, o.imm, regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Instrs++
			st.Cost += fn.aux[o.x].cost2
			x, err := e.load(regs[o.a], o.wbits)
			if err != nil {
				return e.groupFault(g, i, err)
			}
			st.Loads++
			regs[o.dst] = x
		case opSBCheckStoreProf:
			if err := e.sbCheckProf(st, cm, o.imm, regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Instrs++
			st.Cost += fn.aux[o.x].cost2
			if err := e.store(regs[o.a], o.wbits, regs[o.dst]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Stores++
		case opLFCheckLoadProf:
			if err := e.lfCheckProf(st, cm, o.imm, regs[o.a], regs[o.b], regs[o.c]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Instrs++
			st.Cost += fn.aux[o.x].cost2
			x, err := e.load(regs[o.a], o.wbits)
			if err != nil {
				return e.groupFault(g, i, err)
			}
			st.Loads++
			regs[o.dst] = x
		case opLFCheckStoreProf:
			if err := e.lfCheckProf(st, cm, o.imm, regs[o.a], regs[o.b], regs[o.c]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Instrs++
			st.Cost += fn.aux[o.x].cost2
			if err := e.store(regs[o.a], o.wbits, regs[o.dst]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Stores++

		case opSBStoreMDRec:
			e.vm.SBStoreMDRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.c])
		case opSBCheckRec:
			if err := e.vm.SBCheckRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
				return e.groupFault(g, i, err)
			}
		case opLFCheckRec:
			if err := e.vm.LFCheckRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.c]); err != nil {
				return e.groupFault(g, i, err)
			}
		case opLFCheckInvRec:
			if err := e.vm.LFCheckInvRec(int32(o.imm), regs[o.a], regs[o.b]); err != nil {
				return e.groupFault(g, i, err)
			}
		case opSBCheckRangeRec:
			if err := e.vm.SBCheckRangeRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.x], regs[o.c], regs[o.d], regs[o.dst]); err != nil {
				return e.groupFault(g, i, err)
			}
		case opLFCheckRangeRec:
			if err := e.vm.LFCheckRangeRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.x], regs[o.c], regs[o.dst]); err != nil {
				return e.groupFault(g, i, err)
			}
		case opSBCheckLoadRec:
			if err := e.vm.SBCheckRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Instrs++
			st.Cost += fn.aux[o.x].cost2
			x, err := e.load(regs[o.a], o.wbits)
			if err != nil {
				return e.groupFault(g, i, err)
			}
			st.Loads++
			regs[o.dst] = x
		case opSBCheckStoreRec:
			if err := e.vm.SBCheckRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Instrs++
			st.Cost += fn.aux[o.x].cost2
			if err := e.store(regs[o.a], o.wbits, regs[o.dst]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Stores++
		case opLFCheckLoadRec:
			if err := e.vm.LFCheckRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.c]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Instrs++
			st.Cost += fn.aux[o.x].cost2
			x, err := e.load(regs[o.a], o.wbits)
			if err != nil {
				return e.groupFault(g, i, err)
			}
			st.Loads++
			regs[o.dst] = x
		case opLFCheckStoreRec:
			if err := e.vm.LFCheckRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.c]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Instrs++
			st.Cost += fn.aux[o.x].cost2
			if err := e.store(regs[o.a], o.wbits, regs[o.dst]); err != nil {
				return e.groupFault(g, i, err)
			}
			st.Stores++

		case opSBSSAlloc:
			st.ShadowOps++
			st.Cost += cm.SBShadowOp
			e.vm.Shadow.AllocateFrame(int(regs[o.a]))
		case opSBSSSetArg:
			st.ShadowOps++
			st.Cost += cm.SBShadowOp
			e.vm.Shadow.SetArg(int(regs[o.a]), softbound.Bounds{Base: regs[o.b], Bound: regs[o.c]})
		case opSBSSArgBase:
			st.ShadowOps++
			st.Cost += cm.SBShadowOp
			if o.dst >= 0 {
				regs[o.dst] = e.vm.Shadow.Arg(int(regs[o.a])).Base
			} else {
				_ = e.vm.Shadow.Arg(int(regs[o.a]))
			}
		case opSBSSArgBound:
			st.ShadowOps++
			st.Cost += cm.SBShadowOp
			if o.dst >= 0 {
				regs[o.dst] = e.vm.Shadow.Arg(int(regs[o.a])).Bound
			} else {
				_ = e.vm.Shadow.Arg(int(regs[o.a]))
			}
		case opSBSSSetRet:
			st.ShadowOps++
			st.Cost += cm.SBShadowOp
			e.vm.Shadow.SetRet(softbound.Bounds{Base: regs[o.a], Bound: regs[o.b]})
		case opSBSSRetBase:
			st.ShadowOps++
			st.Cost += cm.SBShadowOp
			if o.dst >= 0 {
				regs[o.dst] = e.vm.Shadow.Ret().Base
			}
		case opSBSSRetBound:
			st.ShadowOps++
			st.Cost += cm.SBShadowOp
			if o.dst >= 0 {
				regs[o.dst] = e.vm.Shadow.Ret().Bound
			}
		case opSBSSPop:
			st.ShadowOps++
			st.Cost += cm.SBShadowOp
			e.vm.Shadow.PopFrame()

		default:
			panic(fmt.Sprintf("bytecode: opcode %d escaped quickening classification", o.code))
		}
	}
	return nil
}
