package bytecode

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cc"
	"repro/internal/vm"
)

// Native-tier fallback paths: every way the tier can be unavailable must
// degrade silently to the fused interpreter — same exit code, same output —
// while counting the matching fallback reason exactly once per program.
// These tests poke the package internals (the disabled flag, the in-process
// build cache, the content-addressed artifact) to force each path
// deterministically.

// natFallbackProgram compiles one structurally distinct C program per
// scenario (the plugin cache is keyed by code shape, so scenarios must not
// share a hash) into a compiler-tier Program plus a VM to run it on.
func natFallbackProgram(t *testing.T, name, code string) (*Program, *vm.VM) {
	t.Helper()
	m, err := cc.Compile(name, cc.Source{Name: name + ".c", Code: code})
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	machine, err := vm.New(m, vm.Options{})
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	return compileTier(m, machine.CostModel(), false, false, EngineCompiler), machine
}

// runExpectingFallback runs prog on machine and asserts the engine executed
// without native code and produced the expected exit code.
func runExpectingFallback(t *testing.T, prog *Program, machine *vm.VM, wantCode int32) {
	t.Helper()
	eng, err := NewEngine(prog, machine)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if eng.nat != nil {
		t.Fatal("engine bound native code, expected a fallback")
	}
	code, rerr := eng.Run()
	if rerr != nil {
		t.Fatalf("run under fallback failed: %v", rerr)
	}
	if code != wantCode {
		t.Fatalf("exit code %d, want %d", code, wantCode)
	}
}

func TestNativeFallbackDisabled(t *testing.T) {
	prog, machine := natFallbackProgram(t, "natfbdis", `
int main(void) {
  int s = 0;
  for (int i = 0; i < 100; i++) s += i;
  return s & 127;
}
`)
	saved := natDisabled
	natDisabled = true
	defer func() { natDisabled = saved }()
	before := NativeStats()
	runExpectingFallback(t, prog, machine, 4950&127)
	after := NativeStats()
	if d := after.FallbackDisabled - before.FallbackDisabled; d != 1 {
		t.Errorf("FallbackDisabled delta = %d, want 1", d)
	}
	// The cached outcome must not recount on re-binding.
	if prog.native() != nil {
		t.Error("cached native() result should stay nil")
	}
	if d := NativeStats().FallbackDisabled - before.FallbackDisabled; d != 1 {
		t.Errorf("FallbackDisabled recounted on cached lookup: delta %d", d)
	}
}

func TestNativeFallbackBuildError(t *testing.T) {
	if !NativeAvailable() {
		t.Skip("native tier disabled on this platform")
	}
	prog, machine := natFallbackProgram(t, "natfberr", `
int main(void) {
  int s = 1;
  for (int i = 0; i < 50; i++) { s += i; s ^= 3; }
  return s & 127;
}
`)
	src, _ := natGenerate(prog)
	sum := sha256.Sum256([]byte(src))
	hash := hex.EncodeToString(sum[:])
	natBuildMu.Lock()
	natBuilt[hash] = "" // poison: "this source failed to build before"
	natBuildMu.Unlock()
	defer func() {
		natBuildMu.Lock()
		delete(natBuilt, hash)
		natBuildMu.Unlock()
	}()
	before := NativeStats()
	wantCode := int32(func() int {
		s := 1
		for i := 0; i < 50; i++ {
			s += i
			s ^= 3
		}
		return s & 127
	}())
	runExpectingFallback(t, prog, machine, wantCode)
	after := NativeStats()
	if d := after.FallbackBuildError - before.FallbackBuildError; d != 1 {
		t.Errorf("FallbackBuildError delta = %d, want 1", d)
	}
	if d := after.Failures - before.Failures; d != 1 {
		t.Errorf("Failures delta = %d, want 1", d)
	}
}

func TestNativeFallbackCorruptPlugin(t *testing.T) {
	if !NativeAvailable() {
		t.Skip("native tier disabled on this platform")
	}
	prog, machine := natFallbackProgram(t, "natfbcorrupt", `
int main(void) {
  int s = 2;
  for (int i = 0; i < 60; i++) { s += i * 2; }
  for (int i = 0; i < 10; i++) { s -= i; }
  return s & 127;
}
`)
	src, _ := natGenerate(prog)
	sum := sha256.Sum256([]byte(src))
	hash := hex.EncodeToString(sum[:])
	dir := filepath.Join(os.TempDir(), "mi-native")
	if err := os.MkdirAll(dir, 0o777); err != nil {
		t.Fatal(err)
	}
	soPath := filepath.Join(dir, hash+natSuffix())
	// A corrupt cached artifact: the on-disk stat succeeds (counted as a
	// cache hit), the plugin load fails.
	if err := os.WriteFile(soPath, []byte("not an ELF shared object"), 0o666); err != nil {
		t.Fatal(err)
	}
	defer os.Remove(soPath)
	natBuildMu.Lock()
	delete(natBuilt, hash)
	natBuildMu.Unlock()
	defer func() {
		natBuildMu.Lock()
		delete(natBuilt, hash)
		natBuildMu.Unlock()
	}()
	before := NativeStats()
	wantCode := int32(func() int {
		s := 2
		for i := 0; i < 60; i++ {
			s += i * 2
		}
		for i := 0; i < 10; i++ {
			s -= i
		}
		return s & 127
	}())
	runExpectingFallback(t, prog, machine, wantCode)
	after := NativeStats()
	if d := after.FallbackPluginLoad - before.FallbackPluginLoad; d != 1 {
		t.Errorf("FallbackPluginLoad delta = %d, want 1", d)
	}
	if d := after.CacheHits - before.CacheHits; d != 1 {
		t.Errorf("CacheHits delta = %d, want 1 (corrupt artifact must be found via the cache)", d)
	}
}

func TestNativeFallbackPolicy(t *testing.T) {
	m, err := cc.Compile("natfbpol", cc.Source{Name: "natfbpol.c", Code: `
int main(void) { return 7; }
`})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prog := compileTier(m, vm.DefaultCostModel(), false, true, EngineCompiler)
	before := NativeStats()
	if prog.native() != nil {
		t.Fatal("forensics program must not lower natively")
	}
	if d := NativeStats().FallbackPolicy - before.FallbackPolicy; d != 1 {
		t.Errorf("FallbackPolicy delta = %d, want 1", d)
	}
}
