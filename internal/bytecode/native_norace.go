//go:build !race

package bytecode

// raceEnabled mirrors the host binary's -race flag so native plugin builds
// match it: a race-enabled host can only load race-enabled plugins.
const raceEnabled = false
