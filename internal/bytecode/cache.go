package bytecode

import (
	"sync"

	"repro/internal/ir"
	"repro/internal/vm"
)

// The compiled-module cache. Campaign code runs the same (benchmark, config)
// module many times — once per figure that includes the cell, plus the fault
// campaign's coverage pass — and compilation is pure, so programs are cached
// under a caller-chosen key. A hit requires the same module *instance*, cost
// model and engine tier: the key alone is a claim, the identity check is the
// proof (harness clones modules per config, and a re-instrumented clone
// under a reused key must not resurrect stale bytecode).
//
// Concurrent lookups of the same key are singleflighted: the first caller
// compiles while later callers block on the entry's once and share the
// resulting program, so a replay-load server hitting one campaign from many
// goroutines compiles each module exactly once.

type cacheEntry struct {
	mod  *ir.Module
	cm   vm.CostModel
	prof bool
	rec  bool
	tier EngineKind

	once sync.Once
	prog *Program
}

var (
	cacheMu sync.Mutex
	cache   = make(map[string]*cacheEntry)
	hits    uint64
	misses  uint64
)

// cacheLimit bounds retained programs; the whole campaign needs well under
// this many (20 benchmarks x a dozen configs).
const cacheLimit = 1024

// CompileCached returns the compiled program for (key, mod, cm, prof, rec,
// tier), compiling and caching on miss. cm may be nil for the default model;
// prof selects the site-profiling opcode variants, rec the forensic-recording
// ones, and tier the execution engine the program is compiled for (the
// compiler tier records trace-fusable loop geometry and quickens lazily; any
// other tier normalizes to plain bytecode).
func CompileCached(key string, mod *ir.Module, cm *vm.CostModel, prof, rec bool, tier EngineKind) *Program {
	if cm == nil {
		cm = vm.DefaultCostModel()
	}
	if tier != EngineCompiler {
		tier = EngineBytecode
	}
	cacheMu.Lock()
	e, ok := cache[key]
	if ok && !(e.mod == mod && e.cm == *cm && e.prof == prof && e.rec == rec && e.tier == tier) {
		// Same key, different inputs: replace the entry (stale clone reuse).
		ok = false
	}
	if !ok {
		misses++
		if len(cache) >= cacheLimit {
			// Arbitrary eviction; the cache is a campaign-scoped working set
			// and overflowing it only costs recompiles.
			for k := range cache {
				delete(cache, k)
				if len(cache) < cacheLimit {
					break
				}
			}
		}
		e = &cacheEntry{mod: mod, cm: *cm, prof: prof, rec: rec, tier: tier}
		cache[key] = e
	} else {
		hits++
	}
	cacheMu.Unlock()

	e.once.Do(func() {
		e.prog = compileTier(mod, cm, prof, rec, tier)
	})
	return e.prog
}

// CacheStats reports cumulative hit/miss counts (tests, diagnostics). A
// caller that joined an in-flight compile counts as a hit.
func CacheStats() (h, m uint64) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	return hits, misses
}

// ClearCache empties the compiled-module cache (tests).
func ClearCache() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	cache = make(map[string]*cacheEntry)
	hits, misses = 0, 0
}
