package bytecode

import (
	"sync"

	"repro/internal/ir"
	"repro/internal/vm"
)

// The compiled-module cache. Campaign code runs the same (benchmark, config)
// module many times — once per figure that includes the cell, plus the fault
// campaign's coverage pass — and compilation is pure, so programs are cached
// under a caller-chosen key. A hit requires the same module *instance* and
// cost model: the key alone is a claim, the identity check is the proof
// (harness clones modules per config, and a re-instrumented clone under a
// reused key must not resurrect stale bytecode).

type cacheEntry struct {
	mod  *ir.Module
	cm   vm.CostModel
	prof bool
	rec  bool
	prog *Program
}

var (
	cacheMu sync.Mutex
	cache   = make(map[string]*cacheEntry)
	hits    uint64
	misses  uint64
)

// cacheLimit bounds retained programs; the whole campaign needs well under
// this many (20 benchmarks x a dozen configs).
const cacheLimit = 1024

// CompileCached returns the compiled program for (key, mod, cm, prof, rec),
// compiling and caching on miss. cm may be nil for the default model; prof
// selects the site-profiling opcode variants, rec the forensic-recording
// ones.
func CompileCached(key string, mod *ir.Module, cm *vm.CostModel, prof, rec bool) *Program {
	if cm == nil {
		cm = vm.DefaultCostModel()
	}
	cacheMu.Lock()
	if e, ok := cache[key]; ok && e.mod == mod && e.cm == *cm && e.prof == prof && e.rec == rec {
		hits++
		cacheMu.Unlock()
		return e.prog
	}
	misses++
	cacheMu.Unlock()

	prog := compileModule(mod, cm, prof, rec)

	cacheMu.Lock()
	if len(cache) >= cacheLimit {
		// Arbitrary eviction; the cache is a campaign-scoped working set and
		// overflowing it only costs recompiles.
		for k := range cache {
			delete(cache, k)
			if len(cache) < cacheLimit {
				break
			}
		}
	}
	cache[key] = &cacheEntry{mod: mod, cm: *cm, prof: prof, rec: rec, prog: prog}
	cacheMu.Unlock()
	return prog
}

// CacheStats reports cumulative hit/miss counts (tests, diagnostics).
func CacheStats() (h, m uint64) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	return hits, misses
}

// ClearCache empties the compiled-module cache (tests).
func ClearCache() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	cache = make(map[string]*cacheEntry)
	hits, misses = 0, 0
}
